#!/usr/bin/env bash
# Runs a real networked LHT cluster on localhost: N lht_noded daemon
# processes (one UDP port each), then lht_net_trace — a multi-threaded
# ClientFleet speaking the binary wire protocol through NetDht — preloads
# an oracle data set, replays a mixed trace, and verifies every surviving
# record against the oracle. Exit 0 means the whole distributed run was
# verified correct.
#
# Usage: scripts/run_cluster.sh [NODES] [CLIENTS] [OPS]
#   NODES    daemon processes to launch   (default 8)
#   CLIENTS  fleet client threads         (default 8)
#   OPS      trace operations             (default 2000)
#
# Environment:
#   BUILD_DIR    build tree holding the binaries (default: build)
#   BASE_PORT    first UDP port (default 9301; daemon i gets BASE_PORT+i)
#   REPLICATION  total copies per key (default 2)
#
# Teardown guard: an EXIT/INT/TERM trap SIGTERMs every daemon this script
# spawned and then VERIFIES each one actually died (escalating to SIGKILL
# after a grace period) — a wedged daemon fails the run instead of leaking
# a process that holds the port and poisons the next invocation.
set -euo pipefail
cd "$(dirname "$0")/.."

nodes="${1:-8}"
clients="${2:-8}"
ops="${3:-2000}"
build_dir="${BUILD_DIR:-build}"
base_port="${BASE_PORT:-9301}"
replication="${REPLICATION:-2}"

noded="$build_dir/src/rpc/lht_noded"
trace="$build_dir/src/rpc/lht_net_trace"
for bin in "$noded" "$trace"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_cluster: missing $bin (build first: cmake --build $build_dir)" >&2
    exit 2
  fi
done

pids=()

teardown() {
  local status=$?
  trap - EXIT INT TERM
  if [[ "${#pids[@]}" -gt 0 ]]; then
    for pid in "${pids[@]}"; do
      kill -TERM "$pid" 2> /dev/null || true
    done
    # Verify every daemon actually exits; escalate to SIGKILL after ~2s.
    local leaked=0
    for pid in "${pids[@]}"; do
      for _ in $(seq 1 20); do
        kill -0 "$pid" 2> /dev/null || break
        sleep 0.1
      done
      if kill -0 "$pid" 2> /dev/null; then
        echo "run_cluster: daemon pid $pid ignored SIGTERM, killing" >&2
        kill -KILL "$pid" 2> /dev/null || true
        leaked=1
      fi
      wait "$pid" 2> /dev/null || true
    done
    if [[ "$leaked" -eq 1 && "$status" -eq 0 ]]; then
      status=3
    fi
  fi
  exit "$status"
}
trap teardown EXIT INT TERM

echo "run_cluster: launching $nodes daemons on 127.0.0.1:$base_port..." >&2
ports=()
for i in $(seq 0 $((nodes - 1))); do
  port=$((base_port + i))
  "$noded" --port="$port" --name="node-$i" --quiet=true &
  pids+=($!)
  ports+=("$port")
done

node_list="$(IFS=,; echo "${ports[*]}")"
echo "run_cluster: $clients clients x $ops ops against $node_list" >&2
"$trace" --nodes="$node_list" --clients="$clients" --ops="$ops" \
  --replication="$replication"
echo "run_cluster: verified OK" >&2
