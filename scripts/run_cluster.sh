#!/usr/bin/env bash
# Runs a real networked LHT cluster on localhost: N lht_noded daemon
# processes (one UDP port each), then lht_net_trace — a multi-threaded
# ClientFleet speaking the binary wire protocol — preloads an oracle data
# set, replays a mixed trace, and verifies every surviving record against
# the oracle. Exit 0 means the whole distributed run was verified correct.
#
# Usage: scripts/run_cluster.sh [NODES] [CLIENTS] [OPS] [flags]
#   NODES    daemon processes to launch   (default 8)
#   CLIENTS  fleet client threads         (default 8)
#   OPS      trace operations             (default 2000)
# Flags (anywhere on the command line):
#   --overlay  run the self-routing overlay: daemons gossip membership and
#              forward/redirect misrouted ops; the client is a
#              RoutedNetDht that bootstraps from the first node only
#   --churn    after the trace, grow and shrink the LIVE cluster —
#              join a new daemon, SIGUSR1 one member (graceful leave),
#              SIGKILL another (crash) — re-verifying the full oracle
#              after every step. Implies --overlay.
#
# Environment:
#   BUILD_DIR    build tree holding the binaries (default: build)
#   BASE_PORT    fixed first UDP port (default: unset — every daemon binds
#                an ephemeral port and reports it through a port file in a
#                per-run mktemp dir, so concurrent invocations never
#                collide)
#   REPLICATION  total copies per key (default 2)
#
# Teardown guard: an EXIT/INT/TERM trap SIGTERMs every daemon this script
# spawned and then VERIFIES each one actually died (escalating to SIGKILL
# after a grace period) — a wedged daemon fails the run instead of leaking
# a process that holds the port and poisons the next invocation. The
# per-run temp dir is removed on the way out.
set -euo pipefail
cd "$(dirname "$0")/.."

nodes=""
clients=""
ops=""
overlay=0
churn=0
for arg in "$@"; do
  case "$arg" in
    --overlay) overlay=1 ;;
    --churn) overlay=1; churn=1 ;;
    --*) echo "run_cluster: unknown flag $arg" >&2; exit 2 ;;
    *)
      if [[ -z "$nodes" ]]; then nodes="$arg"
      elif [[ -z "$clients" ]]; then clients="$arg"
      elif [[ -z "$ops" ]]; then ops="$arg"
      else echo "run_cluster: too many positional args" >&2; exit 2
      fi
      ;;
  esac
done
nodes="${nodes:-8}"
clients="${clients:-8}"
ops="${ops:-2000}"
build_dir="${BUILD_DIR:-build}"
base_port="${BASE_PORT:-}"
replication="${REPLICATION:-2}"

noded="$build_dir/src/rpc/lht_noded"
trace="$build_dir/src/rpc/lht_net_trace"
for bin in "$noded" "$trace"; do
  if [[ ! -x "$bin" ]]; then
    echo "run_cluster: missing $bin (build first: cmake --build $build_dir)" >&2
    exit 2
  fi
done

rundir="$(mktemp -d "${TMPDIR:-/tmp}/lht_cluster.XXXXXX")"
pids=()

teardown() {
  local status=$?
  trap - EXIT INT TERM
  if [[ "${#pids[@]}" -gt 0 ]]; then
    for pid in "${pids[@]}"; do
      kill -TERM "$pid" 2> /dev/null || true
    done
    # Verify every daemon actually exits; escalate to SIGKILL after ~2s.
    local leaked=0
    for pid in "${pids[@]}"; do
      for _ in $(seq 1 20); do
        kill -0 "$pid" 2> /dev/null || break
        sleep 0.1
      done
      if kill -0 "$pid" 2> /dev/null; then
        echo "run_cluster: daemon pid $pid ignored SIGTERM, killing" >&2
        kill -KILL "$pid" 2> /dev/null || true
        leaked=1
      fi
      wait "$pid" 2> /dev/null || true
    done
    if [[ "$leaked" -eq 1 && "$status" -eq 0 ]]; then
      status=3
    fi
  fi
  rm -rf "$rundir"
  exit "$status"
}
trap teardown EXIT INT TERM

# launch_daemon INDEX [extra lht_noded flags...]
# Starts daemon INDEX (ephemeral port unless BASE_PORT pins it), records
# its pid, and leaves its bound port in $rundir/node<INDEX>.port.
launch_daemon() {
  local i="$1"; shift
  local port=0
  if [[ -n "$base_port" ]]; then port=$((base_port + i)); fi
  "$noded" --port="$port" --port-file="$rundir/node$i.port" \
    --name="node-$i" --quiet=true "$@" &
  pids+=($!)
}

# wait_port INDEX -> echoes the daemon's bound port (fails after ~10s).
wait_port() {
  local i="$1"
  local f="$rundir/node$i.port"
  for _ in $(seq 1 100); do
    if [[ -s "$f" ]]; then cat "$f"; return 0; fi
    sleep 0.1
  done
  echo "run_cluster: daemon $i never wrote $f" >&2
  return 1
}

overlay_flags=()
if [[ "$overlay" -eq 1 ]]; then
  overlay_flags=(--overlay=true --replication="$replication")
fi

echo "run_cluster: launching $nodes daemons (rundir $rundir)..." >&2
ports=()
if [[ "$overlay" -eq 1 ]]; then
  # Seed node first; everyone else joins through it, so the cluster forms
  # the same way a live deployment grows.
  launch_daemon 0 "${overlay_flags[@]}"
  seed="$(wait_port 0)"
  ports+=("$seed")
  for i in $(seq 1 $((nodes - 1))); do
    launch_daemon "$i" "${overlay_flags[@]}" --seed-port="$seed"
  done
  for i in $(seq 1 $((nodes - 1))); do
    ports+=("$(wait_port "$i")")
  done
else
  for i in $(seq 0 $((nodes - 1))); do
    launch_daemon "$i"
  done
  for i in $(seq 0 $((nodes - 1))); do
    ports+=("$(wait_port "$i")")
  done
fi

node_list="$(IFS=,; echo "${ports[*]}")"
routed_flag="false"
if [[ "$overlay" -eq 1 ]]; then routed_flag="true"; fi
echo "run_cluster: $clients clients x $ops ops against $node_list (routed=$routed_flag)" >&2
"$trace" --nodes="$node_list" --clients="$clients" --ops="$ops" \
  --replication="$replication" --routed="$routed_flag"

if [[ "$churn" -eq 1 ]]; then
  verify() {
    local label="$1"
    echo "run_cluster: verifying oracle after $label..." >&2
    "$trace" --nodes="$seed" --routed=true --mode=verify \
      --replication="$replication" --retry-for-ms=15000
  }

  echo "run_cluster: churn step 1 — JOIN a new daemon" >&2
  joiner=$nodes
  launch_daemon "$joiner" "${overlay_flags[@]}" --seed-port="$seed"
  wait_port "$joiner" > /dev/null
  verify "join"

  echo "run_cluster: churn step 2 — graceful LEAVE (SIGUSR1 node-1)" >&2
  leaver_pid="${pids[1]}"
  kill -USR1 "$leaver_pid"
  for _ in $(seq 1 150); do
    kill -0 "$leaver_pid" 2> /dev/null || break
    sleep 0.1
  done
  if kill -0 "$leaver_pid" 2> /dev/null; then
    echo "run_cluster: node-1 did not exit after SIGUSR1" >&2
    exit 4
  fi
  verify "leave"

  echo "run_cluster: churn step 3 — CRASH (SIGKILL node-2)" >&2
  kill -KILL "${pids[2]}" 2> /dev/null || true
  wait "${pids[2]}" 2> /dev/null || true
  # Survivors need a few gossip rounds to mark the node dead and promote
  # replicas; the verify pass retries through that window.
  verify "crash"
fi

echo "run_cluster: verified OK" >&2
