#!/usr/bin/env python3
"""Plot the paper figures from the bench binaries' --csv output.

Usage:
    python3 scripts/plot_figures.py [--build-dir build] [--out-dir plots]

Runs each figure bench with --csv, parses the series, and renders one PNG
per paper figure (requires matplotlib; prints the parsed tables and exits
gracefully if it is unavailable).
"""
import argparse
import csv
import io
import os
import subprocess
import sys

FIGURES = {
    "fig6_alpha": {"x": "data_size", "logx": True, "title": "Fig. 6a: average alpha"},
    "fig7_maintenance": {"x": "data_size", "logx": True, "logy": True,
                          "title": "Fig. 7: cumulative maintenance"},
    "fig8_lookup": {"x": "data_size", "logx": True, "title": "Fig. 8: lookup cost"},
    "fig9_range_bandwidth": {"x": "data_size", "logx": True,
                              "title": "Fig. 9: range bandwidth"},
    "fig10_range_latency": {"x": "data_size", "logx": True,
                             "title": "Fig. 10: range latency"},
}


def run_bench(path):
    out = subprocess.run([path, "--csv", "true"], capture_output=True, text=True,
                         check=True)
    return out.stdout


def parse_blocks(text):
    """Splits multi-table CSV output into a list of (header, rows)."""
    blocks, current = [], []
    for line in text.splitlines():
        line = line.strip()
        if not line or not ("," in line):
            if current:
                blocks.append(current)
                current = []
            continue
        current.append(line)
    if current:
        blocks.append(current)
    tables = []
    for block in blocks:
        reader = csv.reader(io.StringIO("\n".join(block)))
        rows = list(reader)
        if len(rows) >= 2:
            tables.append((rows[0], rows[1:]))
    return tables


def numeric(v):
    try:
        return float(v)
    except ValueError:
        return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out-dir", default="plots")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable: printing parsed tables only",
              file=sys.stderr)

    os.makedirs(args.out_dir, exist_ok=True)
    for name, spec in FIGURES.items():
        binary = os.path.join(args.build_dir, "bench", name)
        if not os.path.exists(binary):
            print(f"skip {name}: {binary} not built", file=sys.stderr)
            continue
        tables = parse_blocks(run_bench(binary))
        for ti, (header, rows) in enumerate(tables):
            if spec["x"] not in header:
                continue
            xi = header.index(spec["x"])
            xs = [numeric(r[xi]) for r in rows]
            if plt is None:
                print(f"{name}[{ti}]: {header}")
                for r in rows:
                    print("   ", r)
                continue
            fig, ax = plt.subplots(figsize=(6, 4))
            for ci, col in enumerate(header):
                if ci == xi:
                    continue
                ys = [numeric(r[ci]) for r in rows]
                if any(y is None for y in ys):
                    continue
                ax.plot(xs, ys, marker="o", label=col)
            if spec.get("logx"):
                ax.set_xscale("log", base=2)
            if spec.get("logy"):
                ax.set_yscale("log")
            ax.set_xlabel(spec["x"])
            ax.set_title(spec["title"] + (f" (table {ti + 1})" if ti else ""))
            ax.legend(fontsize=8)
            ax.grid(True, alpha=0.3)
            out = os.path.join(args.out_dir, f"{name}_{ti}.png")
            fig.tight_layout()
            fig.savefig(out, dpi=130)
            plt.close(fig)
            print(f"wrote {out}")


if __name__ == "__main__":
    main()
