#!/usr/bin/env bash
# Pre-merge gate: build and run the test suite in the normal configuration
# AND under AddressSanitizer + UndefinedBehaviorSanitizer (the serializers,
# decoders, and repair paths are exactly the code where silent memory bugs
# would hide). Presets live in CMakePresets.json.
#
# After the test passes, builds the release preset and re-runs the JSON
# perf bench, diffing its key metrics against the committed BENCH_PR2.json
# baseline (warn-only: perf drift is reported, never fails the gate).
#
# Usage: scripts/check.sh [--fast] [--no-bench] [--coverage] [--tsan]
#                         [--durability] [--churn] [--skew] [--net]
#                         [--overlay]
#   --fast      skip the sanitizer pass (normal build + tests only)
#   --no-bench  skip the release build + perf-baseline diff
#   --coverage  also build the coverage preset, run the tests under it, and
#               report line coverage for src/ (warn-only; needs gcov, and
#               lcov when available for the per-directory summary)
#   --tsan      also build the tsan preset and run the concurrency suites
#               (execution engine, shard-locked substrates, obs merging)
#               under ThreadSanitizer; a reported race fails the gate
#   --durability  also run the release durability bench (WAL overhead vs
#               MemEngine + recovery-time curve) into
#               build-release/BENCH_PR5.json, diffed warn-only against the
#               committed BENCH_PR5.json
#   --churn     also run the 16-seed churn-storm campaign under ASan (the
#               slow.storm_campaign ctest) and the release storm bench
#               (availability with failover/hedging on vs off) into
#               build-release/BENCH_PR6.json, diffed warn-only against the
#               committed BENCH_PR6.json
#   --skew      also run the 16-seed lease-linearizability campaign and the
#               full skew balance gate under ASan (the slow.lease_campaign
#               and slow.skew_campaign ctests; with --tsan the lease
#               campaign repeats under ThreadSanitizer) and the release
#               skew bench (read balance with leases + adaptive splits on
#               vs off) into build-release/BENCH_PR8.json, diffed warn-only
#               against the committed BENCH_PR8.json
#   --net       also run the wire-format, transport, NetDht, and two-process
#               loopback suites under ASan+UBSan (the fuzz decoders' no-
#               over-read guarantee is only meaningful with ASan watching),
#               then the release networked bench (in-process vs N-process
#               throughput + batching economy) into
#               build-release/BENCH_PR9.json, diffed warn-only against the
#               committed BENCH_PR9.json, and an 8-node run_cluster.sh
#               smoke run with oracle verification
#   --overlay   also run the overlay membership/routing/elasticity suites
#               under ASan+UBSan (gossip merge, forward/redirect, live
#               join/leave/crash in the sim twin, RoutedNetDht, dedup
#               bounds, rpc.* exporters), then the release overlay bench
#               (warm hops ceiling + live-join availability floor + zero
#               lost keys over real UDP daemons) into
#               build-release/BENCH_PR10.json, diffed warn-only against
#               the committed BENCH_PR10.json, and an 8-node
#               run_cluster.sh --churn run (live join, graceful leave,
#               crash — oracle-verified after every step)
#
# The full crash-restart campaigns (ctest label `slow`, excluded from a
# plain ctest run) execute here under the AddressSanitizer preset: every
# injected kill, torn write, and recovery replay runs with memory checking
# on. --fast skips them along with the rest of the sanitizer pass.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
bench=1
coverage=0
tsan=0
durability=0
churn=0
skew=0
net=0
overlay=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --no-bench) bench=0 ;;
    --coverage) coverage=1 ;;
    --tsan) tsan=1 ;;
    --durability) durability=1 ;;
    --churn) churn=1 ;;
    --skew) skew=1 ;;
    --net) net=1 ;;
    --overlay) overlay=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

# Build trees must never be committed: .gitignore covers build*/, and this
# guard catches anything force-added in spite of it.
if git ls-files -- 'build/*' 'build-*/*' | grep -q .; then
  echo "check.sh: ERROR: build tree files are tracked by git:" >&2
  git ls-files -- 'build/*' 'build-*/*' | head >&2
  exit 1
fi

echo "== configure + build (default) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
echo "== ctest (default) =="
ctest --preset default -j "$jobs"

if [[ "$fast" -eq 0 ]]; then
  echo "== configure + build (asan-ubsan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  echo "== ctest (asan-ubsan) =="
  ctest --preset asan-ubsan -j "$jobs"
  echo "== full crash-restart campaigns under ASan (ctest label: slow) =="
  ctest --test-dir build-asan -C slow -L slow -j "$jobs" --output-on-failure
fi

if [[ "$tsan" -eq 1 ]]; then
  echo "== configure + build (tsan) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" --target lht_tests
  echo "== concurrency suites under ThreadSanitizer =="
  ctest --preset tsan -j "$jobs" -R \
    'ThreadPoolTest|LinearizabilityTest|ConcurrentSubstrateTest|ClientFleetTest|ObsConcurrentTest|LoggingConcurrentTest'
fi

if [[ "$bench" -eq 1 ]]; then
  echo "== configure + build (release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_json \
    --target bench_scaling
  echo "== perf bench (release) vs committed BENCH_PR2.json (warn-only) =="
  ./build-release/bench/bench_json --out=build-release/BENCH_PR2.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR2.json build-release/BENCH_PR2.json \
    || echo "check.sh: WARNING: perf metrics drifted from the committed" \
            "baseline (warn-only, see above)"
  echo "== fleet scaling sweep (simulated-time domain, gates on >2.5x) =="
  ./build-release/bench/bench_scaling --out=build-release/BENCH_PR4.json \
    > /dev/null
fi

if [[ "$durability" -eq 1 ]]; then
  echo "== durability bench (WAL overhead + recovery curve, release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_durability
  ./build-release/bench/bench_durability \
    --out=build-release/BENCH_PR5.json > /dev/null
  python3 scripts/diff_bench.py BENCH_PR5.json build-release/BENCH_PR5.json \
    || echo "check.sh: WARNING: durability metrics drifted from the" \
            "committed baseline (warn-only, see above)"
fi

if [[ "$churn" -eq 1 ]]; then
  echo "== 16-seed churn-storm campaign under ASan (ctest: slow.storm_campaign) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target lht_slow_tests
  ctest --test-dir build-asan -C slow -L slow -R slow.storm_campaign \
    -j "$jobs" --output-on-failure
  echo "== churn-storm bench (availability + convergence, release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_storm
  ./build-release/bench/bench_storm --out=build-release/BENCH_PR6.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR6.json build-release/BENCH_PR6.json \
    || echo "check.sh: WARNING: churn-storm metrics drifted from the" \
            "committed baseline (warn-only, see above)"
fi

if [[ "$skew" -eq 1 ]]; then
  echo "== 16-seed lease-linearizability + skew campaigns under ASan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target lht_slow_tests
  ctest --test-dir build-asan -C slow -L slow \
    -R 'slow.lease_campaign|slow.skew_campaign' \
    -j "$jobs" --output-on-failure
  if [[ "$tsan" -eq 1 ]]; then
    echo "== 16-seed lease-linearizability campaign under TSan =="
    cmake --preset tsan
    cmake --build --preset tsan -j "$jobs" --target lht_slow_tests
    # Same TSAN_OPTIONS as the tsan test preset (AllGuard exceeds TSan's
    # 64-lock deadlock-detector cap; races still fail the gate).
    TSAN_OPTIONS="halt_on_error=1:detect_deadlocks=0" \
      ctest --test-dir build-tsan -C slow -L slow -R slow.lease_campaign \
      -j "$jobs" --output-on-failure
  fi
  echo "== skew bench (read balance + lease accounting, release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_skew
  ./build-release/bench/bench_skew --out=build-release/BENCH_PR8.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR8.json build-release/BENCH_PR8.json \
    || echo "check.sh: WARNING: skew metrics drifted from the committed" \
            "baseline (warn-only, see above)"
fi

if [[ "$net" -eq 1 ]]; then
  echo "== wire/transport/NetDht/loopback suites under ASan+UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target lht_tests \
    --target lht_noded
  ctest --test-dir build-asan -j "$jobs" --output-on-failure \
    -R 'Varint|RpcWire|SimTransport|RpcClient|NodeServer|NetDht|NetLoopback'
  echo "== networked bench (in-process vs N-process + batching, release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_net \
    --target lht_net_trace
  ./build-release/bench/bench_net --out=build-release/BENCH_PR9.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR9.json build-release/BENCH_PR9.json \
    || echo "check.sh: WARNING: networked metrics drifted from the" \
            "committed baseline (warn-only, see above)"
  echo "== 8-node localhost cluster smoke (run_cluster.sh) =="
  BUILD_DIR=build-release scripts/run_cluster.sh 8 8 2000
fi

if [[ "$overlay" -eq 1 ]]; then
  echo "== overlay membership/routing/elasticity suites under ASan+UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs" --target lht_tests \
    --target lht_noded
  ctest --test-dir build-asan -j "$jobs" --output-on-failure \
    -R 'NodeId|MembershipTable|MemberRing|OverlayNode|RoutedNetDht|NodeServerDedup|RpcMetrics|RpcWire'
  echo "== overlay bench (warm hops + live-join availability, release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_overlay \
    --target lht_net_trace
  ./build-release/bench/bench_overlay --out=build-release/BENCH_PR10.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR10.json build-release/BENCH_PR10.json \
    || echo "check.sh: WARNING: overlay metrics drifted from the" \
            "committed baseline (warn-only, see above)"
  echo "== 8-node live grow/shrink cluster run (run_cluster.sh --churn) =="
  BUILD_DIR=build-release scripts/run_cluster.sh 8 8 2000 --churn
fi

if [[ "$coverage" -eq 1 ]]; then
  echo "== coverage build + tests (warn-only) =="
  if ! command -v gcov > /dev/null; then
    echo "check.sh: WARNING: gcov not found, skipping coverage pass"
  else
    cmake --preset coverage
    cmake --build --preset coverage -j "$jobs" --target lht_tests
    # Examples are not built in this tree (and run in the other passes);
    # coverage comes from the unit/property suite alone.
    ctest --preset coverage -j "$jobs" -E '^example_'
    if command -v lcov > /dev/null; then
      lcov --capture --directory build-coverage --output-file \
        build-coverage/coverage.info --ignore-errors mismatch 2> /dev/null \
        || true
      lcov --extract build-coverage/coverage.info "*/src/*" --output-file \
        build-coverage/coverage-src.info 2> /dev/null || true
      lcov --summary build-coverage/coverage-src.info \
        || echo "check.sh: WARNING: lcov summary failed (warn-only)"
    else
      # Raw gcov fallback: overall line rate across all src/ objects.
      find build-coverage/src -name '*.gcda' \
        -execdir gcov -n {} + 2> /dev/null \
        | awk '/^Lines executed:/ {
                 split($2, pct, ":"); sub(/%/, "", pct[2]);
                 covered += pct[2] * $4 / 100; total += $4 }
               END { if (total > 0)
                 printf "check.sh: coverage (gcov, src/): %.1f%% of %d lines\n",
                        100 * covered / total, total }'
    fi
    echo "check.sh: coverage pass is informational only (never gates)"
  fi
fi

echo "check.sh: all green"
