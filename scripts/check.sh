#!/usr/bin/env bash
# Pre-merge gate: build and run the test suite in the normal configuration
# AND under AddressSanitizer + UndefinedBehaviorSanitizer (the serializers,
# decoders, and repair paths are exactly the code where silent memory bugs
# would hide). Presets live in CMakePresets.json.
#
# After the test passes, builds the release preset and re-runs the JSON
# perf bench, diffing its key metrics against the committed BENCH_PR2.json
# baseline (warn-only: perf drift is reported, never fails the gate).
#
# Usage: scripts/check.sh [--fast] [--no-bench]
#   --fast      skip the sanitizer pass (normal build + tests only)
#   --no-bench  skip the release build + perf-baseline diff
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
bench=1
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --no-bench) bench=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (default) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
echo "== ctest (default) =="
ctest --preset default -j "$jobs"

if [[ "$fast" -eq 0 ]]; then
  echo "== configure + build (asan-ubsan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  echo "== ctest (asan-ubsan) =="
  ctest --preset asan-ubsan -j "$jobs"
fi

if [[ "$bench" -eq 1 ]]; then
  echo "== configure + build (release) =="
  cmake --preset release
  cmake --build --preset release -j "$jobs" --target bench_json
  echo "== perf bench (release) vs committed BENCH_PR2.json (warn-only) =="
  ./build-release/bench/bench_json --out=build-release/BENCH_PR2.json \
    > /dev/null
  python3 scripts/diff_bench.py BENCH_PR2.json build-release/BENCH_PR2.json \
    || echo "check.sh: WARNING: perf metrics drifted from the committed" \
            "baseline (warn-only, see above)"
fi

echo "check.sh: all green"
