#!/usr/bin/env bash
# Pre-merge gate: build and run the test suite in the normal configuration
# AND under AddressSanitizer + UndefinedBehaviorSanitizer (the serializers,
# decoders, and repair paths are exactly the code where silent memory bugs
# would hide). Presets live in CMakePresets.json.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer pass (normal build + tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (default) =="
cmake --preset default
cmake --build --preset default -j "$jobs"
echo "== ctest (default) =="
ctest --preset default -j "$jobs"

if [[ "$fast" -eq 0 ]]; then
  echo "== configure + build (asan-ubsan) =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$jobs"
  echo "== ctest (asan-ubsan) =="
  ctest --preset asan-ubsan -j "$jobs"
fi

echo "check.sh: all green"
