#!/usr/bin/env python3
"""Compares a fresh bench run against its committed baseline.

Usage: diff_bench.py BASELINE.json FRESH.json

Understands the bench_json (BENCH_PR2), bench_durability (BENCH_PR5),
bench_storm (BENCH_PR6), bench_skew (BENCH_PR8), bench_net (BENCH_PR9),
and bench_overlay (BENCH_PR10) output shapes, dispatching on the "bench"
field.
Exits 1 (for the caller to warn on) when a key metric regressed beyond
tolerance or an invariant (the B+3 range bound, the >=2x lookup speedup,
the <=2.5x WAL overhead gate, the 0.99 availability floor, the 3x
read-imbalance improvement) no longer holds. Wall-clock metrics get a generous tolerance — machines differ; the
protocol-level counters must match exactly.
"""
import json
import sys

# (path, kind): "exact" counters must be bit-identical run to run;
# "ratio" wall-clock metrics may drift by the given factor either way.
CLIENT_CHECKS = [
    (("baseline", "lookup", "dht_lookups_per_op"), "exact", None),
    (("optimized", "lookup", "dht_lookups_per_op"), "exact", None),
    (("baseline", "range", "dht_lookups_per_op"), "exact", None),
    (("optimized", "range", "dht_lookups_per_op"), "exact", None),
    (("optimized", "range", "max_rounds"), "exact", None),
    (("speedup", "lookup_ns"), "ratio", 2.0),
    (("speedup", "range_ns"), "ratio", 2.0),
    (("speedup", "bulk_ns"), "ratio", 2.0),
]

DURABILITY_CHECKS = [
    (("insert", "mem_ns_per_op"), "ratio", 4.0),
    (("insert", "durable_buffered_ns_per_op"), "ratio", 4.0),
    (("insert", "buffered_overhead_vs_mem"), "ratio", 2.0),
]

# The storm campaign runs in simulated time, so every metric is a
# deterministic protocol-level counter: all exact.
STORM_CHECKS = [
    (("failover_on", "availability"), "exact", None),
    (("failover_on", "ops_total"), "exact", None),
    (("failover_on", "ops_failed"), "exact", None),
    (("failover_on", "rescues"), "exact", None),
    (("failover_on", "lost_keys"), "exact", None),
    (("failover_off", "availability"), "exact", None),
    (("failover_off", "ops_failed"), "exact", None),
    (("failover_off", "lost_keys"), "exact", None),
]


# The skew campaign also runs in simulated time: deterministic counters
# are exact, the per-peer load summaries are doubles computed from them
# (exact too — same seeds, same traces, same arithmetic).
SKEW_CHECKS = [
    (("balanced_on", "ops_total"), "exact", None),
    (("balanced_on", "ops_failed"), "exact", None),
    (("balanced_on", "reads_total"), "exact", None),
    (("balanced_on", "node_reads_max_sum"), "exact", None),
    (("balanced_on", "lease_grants"), "exact", None),
    (("balanced_on", "lease_reads"), "exact", None),
    (("balanced_on", "splits"), "exact", None),
    (("balanced_off", "ops_total"), "exact", None),
    (("balanced_off", "ops_failed"), "exact", None),
    (("balanced_off", "reads_total"), "exact", None),
    (("balanced_off", "node_reads_max_sum"), "exact", None),
    (("balanced_off", "lease_reads"), "exact", None),
]


# The batching comparison runs over the clean in-process hub, so its
# datagram counts are deterministic protocol facts: exact. Throughput is
# wall-clock (and the networked phase crosses the kernel): generous ratios.
NET_CHECKS = [
    (("batching", "unbatched_datagrams"), "exact", None),
    (("batching", "batched_datagrams"), "exact", None),
    (("in_process", "ops_failed"), "exact", None),
    (("networked", "ops_failed"), "exact", None),
    (("in_process", "ns_per_op"), "ratio", 5.0),
    (("networked", "ns_per_op"), "ratio", 5.0),
]


# The overlay bench runs over real UDP daemons with live churn, so most
# of its numbers are wall-clock-adjacent; what must hold run to run are
# the correctness counters (zero failed ops, zero lost keys — exact) and
# the gates themselves (hops ceiling, availability floor). sweep_lookups
# is one read per oracle key, a deterministic function of the seed.
OVERLAY_CHECKS = [
    (("warm_routing", "ops"), "exact", None),
    (("warm_routing", "ops_failed"), "exact", None),
    (("warm_routing", "sweep_lookups"), "exact", None),
    (("warm_routing", "ns_per_op"), "ratio", 5.0),
    (("live_join", "lost_keys"), "exact", None),
    (("graceful_leave", "lost_keys"), "exact", None),
]


def lookup(doc, path):
    for key in path:
        doc = doc[key]
    return doc


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    kind = fresh.get("bench")
    durability = kind == "lht_durability"
    storm = kind == "lht_churn_storm"
    skew = kind == "lht_skew"
    net = kind == "lht_net"
    overlay = kind == "lht_overlay"
    if durability:
        checks = DURABILITY_CHECKS
    elif storm:
        checks = STORM_CHECKS
    elif skew:
        checks = SKEW_CHECKS
    elif net:
        checks = NET_CHECKS
    elif overlay:
        checks = OVERLAY_CHECKS
    else:
        checks = CLIENT_CHECKS

    bad = 0
    for path, kind, tol in checks:
        name = ".".join(path)
        try:
            b, f_ = lookup(base, path), lookup(fresh, path)
        except KeyError:
            print(f"diff_bench: {name}: missing from one side")
            bad += 1
            continue
        if kind == "exact":
            if b != f_:
                print(f"diff_bench: {name}: baseline {b} != fresh {f_}")
                bad += 1
        else:
            if f_ <= 0 or b / f_ > tol or f_ / b > tol:
                print(f"diff_bench: {name}: baseline {b:.1f} vs fresh {f_:.1f} "
                      f"(beyond {tol}x tolerance)")
                bad += 1

    if storm:
        gates = fresh.get("gates", {})
        on = fresh.get("failover_on", {})
        off = fresh.get("failover_off", {})
        if not gates.get("on_meets_floor", False):
            print(f"diff_bench: failover-on availability "
                  f"{on.get('availability', 0):.4f} fell below the "
                  f"{gates.get('availability_floor', 0.99)} floor")
            bad += 1
        if not gates.get("off_measurably_worse", False):
            print("diff_bench: the failover-off baseline is not measurably "
                  "below the failover-on run (feature not load-bearing?)")
            bad += 1
        for side, rep in (("failover_on", on), ("failover_off", off)):
            if not rep.get("converged_every_wave", False):
                print(f"diff_bench: {side} failed to repair to zero "
                      "replica deficit after some wave")
                bad += 1
            if rep.get("lost_keys", 1) != 0:
                print(f"diff_bench: {side} lost {rep.get('lost_keys')} keys "
                      "despite replication")
                bad += 1
    elif skew:
        gates = fresh.get("gates", {})
        if not gates.get("improvement_meets_floor", False):
            print(f"diff_bench: read-imbalance improvement "
                  f"{gates.get('imbalance_improvement', 0):.2f}x fell below "
                  f"the {gates.get('improvement_floor', 3.0)}x gate")
            bad += 1
        if not gates.get("on_ok", False):
            print("diff_bench: the leases+adaptive-splits run failed its "
                  "oracle check or served no lease reads")
            bad += 1
        if not gates.get("off_ok", False):
            print("diff_bench: the baseline run failed its oracle check or "
                  "unexpectedly served lease reads")
            bad += 1
        for side in ("balanced_on", "balanced_off"):
            if not fresh.get(side, {}).get("oracle_ok", False):
                print(f"diff_bench: {side} failed oracle verification")
                bad += 1
    elif net:
        gates = fresh.get("gates", {})
        if not gates.get("oracle_ok", False):
            print("diff_bench: a bench_net phase failed oracle verification")
            bad += 1
        if not gates.get("batch_ratio_ok", False):
            print(f"diff_bench: batching ratio "
                  f"{gates.get('batch_ratio', 0):.2f}x fell below the "
                  f"{gates.get('batch_ratio_floor', 3.0)}x gate")
            bad += 1
        if fresh.get("networked", {}).get("timeouts", 1) != 0:
            print(f"diff_bench: the networked phase saw "
                  f"{fresh['networked'].get('timeouts')} request timeouts "
                  "on loopback")
            bad += 1
    elif overlay:
        gates = fresh.get("gates", {})
        if not gates.get("warm_hops_ok", False):
            print(f"diff_bench: warm mean hops "
                  f"{gates.get('warm_mean_hops', 0):.3f} exceeded the "
                  f"{gates.get('warm_mean_hops_ceiling', 1.2)} ceiling")
            bad += 1
        if not gates.get("availability_ok", False):
            print(f"diff_bench: read availability during the live join "
                  f"{gates.get('join_availability', 0):.4f} fell below the "
                  f"{gates.get('join_availability_floor', 0.99)} floor "
                  "(or the client view never healed)")
            bad += 1
        if not gates.get("lost_keys_ok", False):
            print(f"diff_bench: {gates.get('lost_keys', '?')} keys lost "
                  "across the join/leave churn (or the leaver exited dirty)")
            bad += 1
        if not gates.get("oracle_ok", False):
            print("diff_bench: the overlay warm phase failed oracle "
                  "verification")
            bad += 1
    elif durability:
        if not fresh["insert"].get("overhead_gate_passed", False):
            print(f"diff_bench: buffered WAL overhead "
                  f"{fresh['insert']['buffered_overhead_vs_mem']:.2f}x "
                  "exceeds the 2.5x acceptance gate")
            bad += 1
        for point in fresh.get("recovery", []):
            if point["replayed_records"] != point["records"]:
                print(f"diff_bench: recovery at {point['records']} records "
                      f"replayed {point['replayed_records']} WAL records")
                bad += 1
    else:
        if not fresh.get("range_bound_holds", False):
            print("diff_bench: fresh run violates the B+3 range-round bound")
            bad += 1
        if fresh["speedup"]["lookup_ns"] < 2.0:
            print(f"diff_bench: lookup speedup "
                  f"{fresh['speedup']['lookup_ns']:.2f}x "
                  "fell below the 2x acceptance floor")
            bad += 1

    if bad:
        return 1
    print("diff_bench: fresh run consistent with the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
