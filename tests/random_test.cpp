#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lht::common {
namespace {

TEST(Pcg32, DeterministicPerSeed) {
  Pcg32 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    u32 va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool anyDiff = false;
  Pcg32 a2(123);
  for (int i = 0; i < 100; ++i) anyDiff |= (a2.next() != c.next());
  EXPECT_TRUE(anyDiff);
}

TEST(Pcg32, DoublesInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, BelowIsInRangeAndRoughlyUniform) {
  Pcg32 rng(9);
  int counts[7] = {};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    u32 v = rng.below(7);
    ASSERT_LT(v, 7u);
    counts[v] += 1;
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 70);
}

TEST(Gaussian, MomentsMatch) {
  Pcg32 rng(17);
  Gaussian g(0.5, 1.0 / 6.0);
  const int n = 200000;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = g.sample(rng);
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(std::sqrt(var), 1.0 / 6.0, 0.005);
}

TEST(Gaussian, MostMassInUnitInterval) {
  // Paper Sec. 9.1: N(1/2, 1/6) puts ~97%+ of keys in [0, 1].
  Pcg32 rng(23);
  Gaussian g(0.5, 1.0 / 6.0);
  const int n = 100000;
  int inside = 0;
  for (int i = 0; i < n; ++i) {
    double v = g.sample(rng);
    if (v >= 0.0 && v <= 1.0) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) / n, 0.97);
}

TEST(Zipf, RanksInRangeAndSkewed) {
  Pcg32 rng(31);
  Zipf z(100, 1.2);
  int first = 0, last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    u32 r = z.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    if (r == 1) ++first;
    if (r == 100) ++last;
  }
  EXPECT_GT(first, 20 * (last + 1));  // rank 1 vastly more popular
}

}  // namespace
}  // namespace lht::common
