// Tests for the metrics half of the observability layer: counters, gauges,
// fixed-bucket histograms with quantile export, and the registry exporters.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/types.h"
#include "obs/obs.h"
#include "store/durable_engine.h"

namespace lht::obs {
namespace {

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("a").add();
  reg.counter("a").add(4);
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(2.5);  // last write wins
  EXPECT_EQ(reg.counterValue("a"), 5u);
  EXPECT_EQ(reg.counterValue("never-touched"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("g").value, 2.5);
}

TEST(Metrics, HistogramStatsOnKnownData) {
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Bounds enumerate every decade, so the estimates are exact decades.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);  // rank clamps to the first sample
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Metrics, HistogramQuantileNeverExceedsObservedMax) {
  Histogram h({10, 100, 1000});
  h.observe(3);
  h.observe(4);
  // Both samples land in the <=10 bucket; the bound (10) overstates the
  // data, so the estimate is clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);
}

TEST(Metrics, HistogramOverflowBucket) {
  Histogram h({1, 2});
  h.observe(50);
  ASSERT_EQ(h.bucketCounts().size(), 3u);
  EXPECT_EQ(h.bucketCounts()[2], 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);  // overflow reports the max
}

TEST(Metrics, HistogramEmptyIsZero) {
  Histogram h(defaultCountBounds());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Metrics, DefaultBoundsAreStrictlyAscending) {
  for (const auto& bounds : {defaultCountBounds(), defaultLatencyBoundsMs()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]) << i;
    }
  }
}

TEST(Metrics, FirstHistogramCallFixesBounds) {
  MetricsRegistry reg;
  reg.histogram("h", {1, 2, 3});
  reg.histogram("h", {100});  // ignored: layout already fixed
  EXPECT_EQ(reg.histograms().at("h").bounds().size(), 3u);
}

TEST(Metrics, CsvExportListsEverySeries) {
  MetricsRegistry reg;
  reg.counter("dht.get.raw").add(7);
  reg.gauge("lht.depth").set(3);
  reg.histogram("lht.find.dht_lookups").observe(2);
  std::ostringstream os;
  reg.writeCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("dht.get.raw"), std::string::npos);
  EXPECT_NE(csv.find("lht.depth"), std::string::npos);
  EXPECT_NE(csv.find("lht.find.dht_lookups"), std::string::npos);
  EXPECT_NE(csv.find("counter"), std::string::npos);
  EXPECT_NE(csv.find("gauge"), std::string::npos);
  EXPECT_NE(csv.find("histogram"), std::string::npos);
}

TEST(Metrics, JsonExportShape) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.histogram("h").observe(5);
  std::ostringstream os;
  reg.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"c\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.histogram("h").observe(5);
  reg.reset();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

// --- Ambient helpers -------------------------------------------------------

TEST(Metrics, AmbientHelpersNoOpWhenUninstalled) {
  ASSERT_EQ(metrics(), nullptr);
  count("x");          // must not crash
  gaugeSet("y", 1.0);  // must not crash
  observe("z", 2.0);   // must not crash
}

TEST(Metrics, ScopedObservabilityInstallsAndRestores) {
  MetricsRegistry reg;
  {
    ScopedObservability install(&reg, nullptr);
    EXPECT_EQ(metrics(), &reg);
    count("scoped", 2);
    MetricsRegistry inner;
    {
      ScopedObservability nested(&inner, nullptr);
      count("scoped", 5);  // goes to the nested registry
    }
    EXPECT_EQ(metrics(), &reg);  // nesting restores the outer sink
    count("scoped");
  }
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(reg.counterValue("scoped"), 3u);
}

// --- Durable-store metrics (DESIGN.md §11) ---------------------------------

TEST(Metrics, StoreMetricsFlowThroughRegistryAndExporter) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "lht_obs_store_metrics")
          .string();
  std::filesystem::remove_all(dir);

  MetricsRegistry reg;
  {
    ScopedObservability install(&reg, nullptr);
    store::DurableOptions opts;
    opts.dir = dir;
    opts.spillValueBytes = 32;  // force the spilled-value path
    {
      store::DurableEngine engine(opts);
      engine.put("small", "v");
      engine.put("large", std::string(64, 'x'));
      engine.sync();
      engine.compact();
    }
    // Reopen: recovery replays the post-snapshot WAL tail (here none) and
    // still bumps the replay counter series into existence.
    store::DurableEngine reopened(opts);
    reopened.put("tail", "after-snapshot");
    reopened.sync();
  }
  {
    ScopedObservability install(&reg, nullptr);
    store::DurableEngine replayer({.dir = dir});  // replays "tail"
    EXPECT_EQ(replayer.recoveryInfo().replayedRecords, 1u);
  }
  std::filesystem::remove_all(dir);

  EXPECT_GE(reg.counterValue("store.wal.appended_records"), 3u);
  EXPECT_GT(reg.counterValue("store.wal.appended_bytes"), 0u);
  EXPECT_GE(reg.counterValue("store.wal.fsyncs"), 2u);
  EXPECT_GE(reg.counterValue("store.wal.group_commits"), 2u);
  EXPECT_EQ(reg.counterValue("store.engine.spilled_values"), 1u);
  EXPECT_EQ(reg.counterValue("store.snapshot.count"), 1u);
  EXPECT_EQ(reg.counterValue("store.recovery.replayed_records"), 1u);
  ASSERT_EQ(reg.histograms().count("store.snapshot.duration_ms"), 1u);
  EXPECT_EQ(reg.histograms().at("store.snapshot.duration_ms").count(), 1u);

  // Both exporters carry the new series.
  std::ostringstream csv, json;
  reg.writeCsv(csv);
  reg.writeJson(json);
  for (const char* name :
       {"store.wal.appended_records", "store.wal.fsyncs",
        "store.engine.spilled_values", "store.snapshot.duration_ms",
        "store.recovery.replayed_records"}) {
    EXPECT_NE(csv.str().find(name), std::string::npos) << name;
    EXPECT_NE(json.str().find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace lht::obs
