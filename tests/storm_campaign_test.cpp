// Tier-1 smoke slice of the churn-storm campaign (the 16-seed full run
// lives behind the `slow` ctest label, see slow_campaign_test.cpp): two
// seeds, both decorator configurations, asserting the headline claim —
// with replica failover + hedging ON every mid-storm query survives the
// dark peers, while the baseline measurably fails some, and both
// configurations repair to full replication after every wave.
#include <gtest/gtest.h>

#include "sim/storm_campaign.h"

namespace lht::sim {
namespace {

StormConfig smokeConfig(bool resilient) {
  StormConfig cfg;
  cfg.seeds = 2;
  cfg.peers = 16;
  cfg.replication = 3;
  cfg.keys = 96;
  cfg.waves = 2;
  cfg.wave = {/*joins=*/1, /*leaves=*/1, /*crashes=*/2};
  cfg.queriesPerWave = 64;
  cfg.clients = 2;
  cfg.failover = resilient;
  cfg.hedging = resilient;
  return cfg;
}

TEST(StormCampaignSmoke, FailoverOnKeepsEveryQueryAlive) {
  const StormReport rep = runStormCampaign(smokeConfig(true));
  for (const auto& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.seeds, 2u);
  EXPECT_EQ(rep.waves, 4u);
  EXPECT_GT(rep.crashesApplied, 0u);
  EXPECT_EQ(rep.opsFailed, 0u);
  EXPECT_EQ(rep.availability, 1.0);
  EXPECT_GT(rep.rescues, 0u);  // dark owners were actually hit
  EXPECT_EQ(rep.lostKeys, 0u);
  EXPECT_GT(rep.repairTicks, 0u);
  EXPECT_GT(rep.maxTicksToConverge, 0u);
}

TEST(StormCampaignSmoke, BaselineWithoutFailoverLosesAvailability) {
  const StormReport rep = runStormCampaign(smokeConfig(false));
  // Repair still converges and no data is lost — only *availability*
  // during the storm suffers without failover.
  for (const auto& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.crashesApplied, 0u);
  EXPECT_GT(rep.opsFailed, 0u);
  EXPECT_LT(rep.availability, 1.0);
  EXPECT_EQ(rep.rescues, 0u);
  EXPECT_EQ(rep.lostKeys, 0u);
}

}  // namespace
}  // namespace lht::sim
