// Tests for the DST ablation baseline: replication invariants, canonical
// segment covers, and the insert-cost / query-latency trade-off.
#include "dst/dst_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "workload/generators.h"

namespace lht::dst {
namespace {

using common::Label;

TEST(DstIndex, InsertReplicatesOnAllAncestors) {
  dht::LocalDht d;
  DstIndex idx(d, {.depth = 8});
  idx.insert({0.3, "a"});
  // Every prefix of mu(0.3, 8) holds the record.
  const Label mu = Label::fromKey(0.3, 8);
  for (common::u32 len = 1; len <= 8; ++len) {
    EXPECT_TRUE(d.get(mu.prefix(len).str()).has_value()) << len;
  }
  EXPECT_EQ(idx.meters().insertion.dhtLookups, 8u);
  EXPECT_EQ(idx.meters().insertion.recordsMoved, 8u);
}

TEST(DstIndex, FindAndErase) {
  dht::LocalDht d;
  DstIndex idx(d, {.depth = 10});
  idx.insert({0.42, "answer"});
  EXPECT_EQ(idx.find(0.42).record->payload, "answer");
  EXPECT_EQ(idx.find(0.42).stats.dhtLookups, 1u);
  EXPECT_TRUE(idx.erase(0.42).ok);
  EXPECT_FALSE(idx.find(0.42).record.has_value());
  EXPECT_FALSE(idx.erase(0.42).ok);
  EXPECT_EQ(idx.recordCount(), 0u);
}

TEST(DstIndex, CanonicalSegmentsAreDisjointCover) {
  dht::LocalDht d;
  DstIndex idx(d, {.depth = 10});
  common::Pcg32 rng(5);
  for (int q = 0; q < 100; ++q) {
    double lo = rng.nextDouble();
    double hi = rng.nextDouble();
    if (lo > hi) std::swap(lo, hi);
    if (hi <= lo) continue;
    auto segs = idx.canonicalSegments(lo, hi);
    ASSERT_FALSE(segs.empty());
    // Segments are sorted, disjoint, and their union covers [lo, hi).
    for (size_t i = 1; i < segs.size(); ++i) {
      EXPECT_DOUBLE_EQ(segs[i].interval().lo, segs[i - 1].interval().hi);
    }
    EXPECT_LE(segs.front().interval().lo, lo);
    EXPECT_GE(segs.back().interval().hi, hi);
    // O(log) segments: at most 2 per level.
    EXPECT_LE(segs.size(), 2u * 10u);
  }
}

TEST(DstIndex, RangeMatchesOracleWithOneStepLatency) {
  dht::LocalDht d;
  DstIndex idx(d, {.depth = 12});
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 800, 6);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  common::Pcg32 rng(7);
  for (int q = 0; q < 40; ++q) {
    auto spec = workload::makeRange(0.2, rng);
    auto mine = idx.rangeQuery(spec.lo, spec.hi);
    auto truth = oracle.rangeQuery(spec.lo, spec.hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(mine.records.size(), truth.records.size());
    for (size_t i = 0; i < truth.records.size(); ++i) {
      EXPECT_EQ(mine.records[i], truth.records[i]);
    }
    EXPECT_EQ(mine.stats.parallelSteps, 1u);
  }
}

TEST(DstIndex, MinMaxFromRoot) {
  dht::LocalDht d;
  DstIndex idx(d, {.depth = 10});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 200, 8);
  double lo = 2.0, hi = -1.0;
  for (const auto& r : data) {
    idx.insert(r);
    lo = std::min(lo, r.key);
    hi = std::max(hi, r.key);
  }
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, lo);
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, hi);
  EXPECT_EQ(idx.minRecord().stats.dhtLookups, 1u);
}

TEST(DstIndex, InsertCostScalesWithDepthUnlikeLht) {
  // The ablation point: DST pays `depth` lookups per insert.
  for (common::u32 depth : {6u, 12u}) {
    dht::LocalDht d;
    DstIndex idx(d, {.depth = depth});
    for (int i = 0; i < 50; ++i) idx.insert({(i + 0.5) / 50.0, "x"});
    EXPECT_EQ(idx.meters().insertion.dhtLookups, 50u * depth);
  }
}

}  // namespace
}  // namespace lht::dst
