// Tests for the local tree summarization (paper Fig. 3 / Fig. 5a).
#include "lht/local_tree.h"

#include <gtest/gtest.h>

#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {
namespace {

using common::Label;

Label L(const char* text) { return *Label::parse(text); }

TEST(LocalTree, AncestorsOfPaperExampleLeaf) {
  // Fig. 3b: leaf #0100.
  LocalTree t(L("#0100"));
  auto anc = t.ancestors();
  ASSERT_EQ(anc.size(), 4u);
  EXPECT_EQ(anc[0], Label());        // virtual root #
  EXPECT_EQ(anc[1], L("#0"));
  EXPECT_EQ(anc[2], L("#01"));
  EXPECT_EQ(anc[3], L("#010"));
}

TEST(LocalTree, BranchNodesAreSiblingsAlongThePath) {
  LocalTree t(L("#0100"));
  auto right = t.rightBranches();
  // f_rn(#0100) = #0101, then f_rn(#0101) = #011 (rightmost reached).
  ASSERT_EQ(right.size(), 2u);
  EXPECT_EQ(right[0], L("#0101"));
  EXPECT_EQ(right[1], L("#011"));
  auto left = t.leftBranches();
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0], L("#00"));
}

TEST(LocalTree, BranchIntervalsTileTheRestOfSpace) {
  // The leaf's interval plus all branch intervals partition [0, 1).
  for (const char* text : {"#0100", "#00110", "#01111", "#0000", "#01"}) {
    LocalTree t(L(text));
    double total = t.leaf().interval().width();
    for (const Label& b : t.rightBranches()) total += b.interval().width();
    for (const Label& b : t.leftBranches()) total += b.interval().width();
    EXPECT_DOUBLE_EQ(total, 1.0) << text;
  }
}

TEST(LocalTree, RightPartitionValuesAscend) {
  LocalTree t(L("#0100"));
  auto pv = t.rightPartitionValues();
  ASSERT_GE(pv.size(), 2u);
  EXPECT_DOUBLE_EQ(pv.front(), t.leaf().interval().hi);
  for (size_t i = 1; i < pv.size(); ++i) EXPECT_GT(pv[i], pv[i - 1]);
  EXPECT_DOUBLE_EQ(pv.back(), 1.0);
}

TEST(LocalTree, RootLeafHasNoBranches) {
  LocalTree t(Label::root());
  EXPECT_TRUE(t.rightBranches().empty());
  EXPECT_TRUE(t.leftBranches().empty());
  EXPECT_EQ(t.ancestors().size(), 1u);  // just "#"
}

TEST(LocalTree, AllKnownNodesContainsEverything) {
  LocalTree t(L("#0100"));
  auto all = t.allKnownNodes();
  for (const char* expect : {"#", "#0", "#01", "#010", "#0100", "#0101", "#011", "#00"}) {
    EXPECT_NE(std::find(all.begin(), all.end(), L(expect)), all.end()) << expect;
  }
  EXPECT_EQ(all.size(), 8u);
}

TEST(LocalTree, RenderMentionsTheLeaf) {
  LocalTree t(L("#0100"));
  EXPECT_NE(t.render().find("#0100"), std::string::npos);
}

TEST(LocalTree, RejectsVirtualRoot) {
  EXPECT_THROW(LocalTree{Label()}, common::InvariantError);
}

}  // namespace
}  // namespace lht::core
