#include "common/codec.h"

#include <gtest/gtest.h>

namespace lht::common {
namespace {

TEST(Codec, PrimitivesRoundTrip) {
  Encoder enc;
  enc.putU8(7);
  enc.putU32(123456u);
  enc.putU64(0xDEADBEEFCAFEBABEull);
  enc.putDouble(0.62137);
  enc.putString("hello world");
  enc.putLabel(*Label::parse("#0110"));
  std::string bytes = std::move(enc).take();

  Decoder dec(bytes);
  EXPECT_EQ(dec.getU8(), u8{7});
  EXPECT_EQ(dec.getU32(), 123456u);
  EXPECT_EQ(dec.getU64(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(dec.getDouble(), 0.62137);
  EXPECT_EQ(dec.getString(), "hello world");
  EXPECT_EQ(dec.getLabel(), *Label::parse("#0110"));
  EXPECT_TRUE(dec.atEnd());
}

TEST(Codec, EmptyStringRoundTrip) {
  Encoder enc;
  enc.putString("");
  std::string bytes = std::move(enc).take();
  Decoder dec(bytes);
  EXPECT_EQ(dec.getString(), "");
  EXPECT_TRUE(dec.atEnd());
}

TEST(Codec, UnderflowReturnsNullopt) {
  Decoder dec("ab");
  EXPECT_FALSE(dec.getU32().has_value());
  Decoder dec2("");
  EXPECT_FALSE(dec2.getU8().has_value());
  EXPECT_FALSE(dec2.getDouble().has_value());
  EXPECT_FALSE(dec2.getString().has_value());
  EXPECT_FALSE(dec2.getLabel().has_value());
}

TEST(Codec, TruncatedStringRejected) {
  Encoder enc;
  enc.putString("hello");
  std::string bytes = std::move(enc).take();
  bytes.resize(bytes.size() - 2);
  Decoder dec(bytes);
  EXPECT_FALSE(dec.getString().has_value());
}

TEST(Codec, MalformedLabelRejected) {
  // A label claiming bits above its declared length must be rejected.
  Encoder enc;
  enc.putU32(2);             // length 2
  enc.putU64(0b101);         // three bits set
  std::string bytes = std::move(enc).take();
  Decoder dec(bytes);
  EXPECT_FALSE(dec.getLabel().has_value());

  Encoder enc2;
  enc2.putU32(Label::kMaxBits + 1);
  enc2.putU64(0);
  std::string bytes2 = std::move(enc2).take();
  Decoder dec2(bytes2);
  EXPECT_FALSE(dec2.getLabel().has_value());
}

TEST(Codec, RemainingTracksPosition) {
  Encoder enc;
  enc.putU32(1);
  enc.putU32(2);
  std::string bytes = std::move(enc).take();
  Decoder dec(bytes);
  EXPECT_EQ(dec.remaining(), 8u);
  dec.getU32();
  EXPECT_EQ(dec.remaining(), 4u);
  dec.getU32();
  EXPECT_TRUE(dec.atEnd());
}

}  // namespace
}  // namespace lht::common
