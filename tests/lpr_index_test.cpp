// Tests for the locality-preserving ring baseline and the load-balance
// claim the paper makes against that paradigm.
#include "lpr/lpr_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "index/reference_index.h"
#include "workload/generators.h"

namespace lht::lpr {
namespace {

TEST(LprIndex, MatchesOracleOnAllQueryTypes) {
  LprIndex idx({.peers = 24, .seed = 2});
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Uniform, 800, 3);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  common::Pcg32 rng(4);
  for (int q = 0; q < 60; ++q) {
    auto spec = workload::makeRange(0.2, rng);
    auto mine = idx.rangeQuery(spec.lo, spec.hi);
    auto truth = oracle.rangeQuery(spec.lo, spec.hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(mine.records.size(), truth.records.size());
    for (size_t i = 0; i < truth.records.size(); ++i) {
      EXPECT_EQ(mine.records[i], truth.records[i]);
    }
  }
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, oracle.minRecord().record->key);
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, oracle.maxRecord().record->key);
  EXPECT_TRUE(idx.find(data[5].key).record.has_value());
  EXPECT_TRUE(idx.erase(data[5].key).ok);
  EXPECT_EQ(idx.recordCount(), oracle.recordCount() - 1);
}

TEST(LprIndex, RangeCostIsArcWalk) {
  LprIndex idx({.peers = 32, .seed = 5});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 6);
  for (const auto& r : data) idx.insert(r);
  // Inserts are a single lookup: no tree, no splits, no maintenance.
  EXPECT_EQ(idx.meters().insertion.dhtLookups, 2000u);
  EXPECT_EQ(idx.meters().maintenance.dhtLookups, 0u);
  auto rr = idx.rangeQuery(0.25, 0.5);
  // ~1/4 of 32 arcs walked.
  EXPECT_LE(rr.stats.dhtLookups, 14u);
  EXPECT_GE(rr.stats.dhtLookups, 3u);
}

TEST(LprIndex, UniformKeysBalanceReasonably) {
  LprIndex idx({.peers = 32, .seed = 7});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 20000, 8);
  for (const auto& r : data) idx.insert(r);
  // Random arc lengths give an O(log N / N) worst arc — bounded, if not
  // perfect (fair share here is ~3.1%).
  EXPECT_LT(idx.maxPeerShare(), 0.25);
}

TEST(LprIndex, SkewedKeysBreakLoadBalance) {
  // The paper's claim against the LSH paradigm: under skew, the peers
  // owning the dense arcs take a grossly unfair share.
  LprIndex uniformIdx({.peers = 32, .seed = 9});
  LprIndex skewIdx({.peers = 32, .seed = 9});
  auto uniformData = workload::makeDataset(workload::Distribution::Uniform, 20000, 10);
  auto skewData = workload::makeDataset(workload::Distribution::Zipf, 20000, 10);
  for (const auto& r : uniformData) uniformIdx.insert(r);
  for (const auto& r : skewData) skewIdx.insert(r);
  // The dense-arc owner under zipf holds several times the uniform maximum.
  EXPECT_GT(skewIdx.maxPeerShare(), 2.0 * uniformIdx.maxPeerShare());
  EXPECT_GT(skewIdx.maxPeerShare(), 0.3);  // one peer drowns
}

TEST(LprIndex, EmptyAndBoundary) {
  LprIndex idx({.peers = 8, .seed = 11});
  EXPECT_FALSE(idx.minRecord().record.has_value());
  EXPECT_TRUE(idx.rangeQuery(0.0, 1.0).records.empty());
  idx.insert({0.0, "zero"});
  idx.insert({1.0, "one"});
  EXPECT_TRUE(idx.find(0.0).record.has_value());
  EXPECT_TRUE(idx.find(1.0).record.has_value());
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, 1.0);
}

}  // namespace
}  // namespace lht::lpr
