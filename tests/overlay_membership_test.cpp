// Membership-table and ring unit tests: SWIM-style merge order (higher
// incarnation wins, worse state breaks ties), self-refutation, the local
// failure-detector transitions, and the ring-is-a-pure-function property
// the whole overlay routing scheme rests on (DESIGN.md §15).
#include "overlay/membership.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lht::overlay {
namespace {

using rpc::wire::NodeEntry;

NodeEntry entryFor(u16 port, u64 incarnation = 1,
                   NodeState state = NodeState::Alive) {
  const NetAddr addr{0, port};
  NodeEntry e;
  e.id = nodeIdFor(addr);
  e.host = addr.host;
  e.port = addr.port;
  e.incarnation = incarnation;
  e.state = static_cast<u8>(state);
  e.ringBase = e.id;
  return e;
}

TEST(NodeId, StableNonZeroDistinct) {
  const u64 a = nodeIdFor(NetAddr{0, 7001});
  const u64 b = nodeIdFor(NetAddr{0, 7002});
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, nodeIdFor(NetAddr{0, 7001}));  // pure function of the addr
  EXPECT_NE(a, nodeIdFor(NetAddr{1, 7001}));  // host participates too
}

TEST(MembershipTable, StartsWithSelfAlive) {
  MembershipTable t(entryFor(7001));
  EXPECT_EQ(t.selfId(), nodeIdFor(NetAddr{0, 7001}));
  EXPECT_EQ(t.knownCount(), 1u);
  EXPECT_EQ(t.ringMemberCount(), 1u);
  EXPECT_TRUE(t.peerIds().empty());
  auto self = t.find(t.selfId());
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->state, static_cast<u8>(NodeState::Alive));
}

TEST(MembershipTable, MergeAddsAndIsIdempotent) {
  MembershipTable t(entryFor(7001));
  const u64 v0 = t.version();
  EXPECT_TRUE(t.merge(entryFor(7002)));
  EXPECT_GT(t.version(), v0);
  EXPECT_EQ(t.knownCount(), 2u);
  const u64 v1 = t.version();
  // Same entry again: no structural change, no version bump.
  EXPECT_FALSE(t.merge(entryFor(7002)));
  EXPECT_EQ(t.version(), v1);
}

TEST(MembershipTable, HigherIncarnationWinsOutright) {
  MembershipTable t(entryFor(7001));
  t.merge(entryFor(7002, /*incarnation=*/2, NodeState::Suspect));
  // A fresher incarnation overrides even a "better" state losing...
  EXPECT_TRUE(t.merge(entryFor(7002, /*incarnation=*/3, NodeState::Alive)));
  EXPECT_EQ(t.find(nodeIdFor(NetAddr{0, 7002}))->state,
            static_cast<u8>(NodeState::Alive));
  // ...and a stale incarnation is ignored no matter how bad its news.
  EXPECT_FALSE(t.merge(entryFor(7002, /*incarnation=*/1, NodeState::Dead)));
  EXPECT_EQ(t.find(nodeIdFor(NetAddr{0, 7002}))->incarnation, 3u);
}

TEST(MembershipTable, EqualIncarnationWorseStateWins) {
  MembershipTable t(entryFor(7001));
  t.merge(entryFor(7002, 5, NodeState::Alive));
  EXPECT_TRUE(t.merge(entryFor(7002, 5, NodeState::Suspect)));
  EXPECT_FALSE(t.merge(entryFor(7002, 5, NodeState::Alive)));  // no downgrade
  EXPECT_TRUE(t.merge(entryFor(7002, 5, NodeState::Dead)));
  EXPECT_TRUE(t.merge(entryFor(7002, 5, NodeState::Left)));
  EXPECT_EQ(t.find(nodeIdFor(NetAddr{0, 7002}))->state,
            static_cast<u8>(NodeState::Left));
}

TEST(MembershipTable, RefutesRumorsAboutSelf) {
  MembershipTable t(entryFor(7001), /*incarnation=*/1);
  const u64 refutationsBefore = t.refutations();
  // A peer gossips that WE are dead at our own incarnation. Merge must
  // jump our incarnation past the claim and stay Alive, so the next
  // round's push overrides the rumor everywhere.
  EXPECT_TRUE(t.merge(entryFor(7001, 1, NodeState::Dead)));
  auto self = t.find(t.selfId());
  EXPECT_EQ(self->state, static_cast<u8>(NodeState::Alive));
  EXPECT_GT(t.selfIncarnation(), 1u);
  EXPECT_GT(t.refutations(), refutationsBefore);
}

TEST(MembershipTable, FailureDetectorTransitions) {
  MembershipTable t(entryFor(7001));
  const u64 peer = nodeIdFor(NetAddr{0, 7002});
  t.merge(entryFor(7002));
  EXPECT_EQ(t.ringMemberCount(), 2u);

  EXPECT_TRUE(t.markSuspect(peer));
  EXPECT_FALSE(t.markSuspect(peer));  // already there
  EXPECT_EQ(t.ringMemberCount(), 2u);  // Suspect still owns its keys

  EXPECT_TRUE(t.markDead(peer));
  EXPECT_EQ(t.ringMemberCount(), 1u);

  // The accused refutes with a bumped incarnation: back on the ring.
  EXPECT_TRUE(t.merge(entryFor(7002, /*incarnation=*/2)));
  EXPECT_EQ(t.ringMemberCount(), 2u);

  // Self transitions are refused — a node never suspects itself.
  EXPECT_FALSE(t.markSuspect(t.selfId()));
  EXPECT_FALSE(t.markDead(t.selfId()));
}

TEST(MembershipTable, LeftIsTerminal) {
  MembershipTable t(entryFor(7001));
  t.merge(entryFor(7002, 3));
  EXPECT_TRUE(t.markLeft(nodeIdFor(NetAddr{0, 7002}), 4));
  // Even a fresher Alive announcement cannot resurrect a Left node at or
  // below the departure incarnation.
  EXPECT_FALSE(t.merge(entryFor(7002, 4, NodeState::Alive)));
  EXPECT_EQ(t.ringMemberCount(), 1u);
}

TEST(MembershipTable, LeaveSelfBumpsIncarnation) {
  MembershipTable t(entryFor(7001), /*incarnation=*/7);
  t.leaveSelf();
  auto self = t.find(t.selfId());
  EXPECT_EQ(self->state, static_cast<u8>(NodeState::Left));
  EXPECT_GT(t.selfIncarnation(), 7u);  // the rumor must beat Alive@7
}

TEST(MembershipTable, MergeAllCountsChanges) {
  MembershipTable t(entryFor(7001));
  std::vector<NodeEntry> batch = {entryFor(7002), entryFor(7003),
                                  entryFor(7001)};  // self: no-op
  EXPECT_EQ(t.mergeAll(batch), 2u);
  EXPECT_EQ(t.mergeAll(batch), 0u);  // idempotent
}

TEST(MemberRing, PureFunctionOfTheTable) {
  // Two participants with byte-equal tables must compute the identical
  // key → owner map — the property that replaces routing coordination.
  std::vector<NodeEntry> table = {entryFor(7001), entryFor(7002),
                                  entryFor(7003)};
  MemberRing a(table, 32);
  MemberRing b(table, 32);
  EXPECT_EQ(a.memberCount(), 3u);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "leaf/" + std::to_string(i);
    EXPECT_EQ(a.owner(key), b.owner(key));
    EXPECT_NE(a.owner(key), 0u);
  }
}

TEST(MemberRing, DeadAndLeftContributeNothing) {
  std::vector<NodeEntry> full = {entryFor(7001), entryFor(7002),
                                 entryFor(7003)};
  std::vector<NodeEntry> shrunk = {entryFor(7001),
                                   entryFor(7002, 2, NodeState::Dead),
                                   entryFor(7003, 2, NodeState::Left)};
  MemberRing ring(shrunk, 32);
  EXPECT_EQ(ring.memberCount(), 1u);
  const u64 survivor = nodeIdFor(NetAddr{0, 7001});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.owner("k" + std::to_string(i)), survivor);
  }
  // Suspect members still own keys (they may yet refute).
  std::vector<NodeEntry> suspect = {entryFor(7001),
                                    entryFor(7002, 1, NodeState::Suspect)};
  EXPECT_EQ(MemberRing(suspect, 32).memberCount(), 2u);
}

TEST(MemberRing, OwnerExcludingPredictsDeparture) {
  std::vector<NodeEntry> table = {entryFor(7001), entryFor(7002),
                                  entryFor(7003)};
  MemberRing ring(table, 32);
  std::vector<NodeEntry> without = {entryFor(7001), entryFor(7003)};
  MemberRing shrunk(without, 32);
  const u64 leaving = nodeIdFor(NetAddr{0, 7002});
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    // ownerExcluding on the full ring == owner on the ring without the
    // excluded node: the leave handoff targets exactly the future owners.
    EXPECT_EQ(ring.ownerExcluding(key, leaving), shrunk.owner(key));
  }
}

TEST(MemberRing, HoldersDistinctAndLedByOwner) {
  std::vector<NodeEntry> table = {entryFor(7001), entryFor(7002),
                                  entryFor(7003), entryFor(7004)};
  MemberRing ring(table, 32);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto holders = ring.holders(key, 2);
    ASSERT_EQ(holders.size(), 3u);
    EXPECT_EQ(holders[0], ring.owner(key));
    EXPECT_NE(holders[0], holders[1]);
    EXPECT_NE(holders[0], holders[2]);
    EXPECT_NE(holders[1], holders[2]);
  }
  // Asking for more replicas than peers exist degrades gracefully.
  MemberRing pair({entryFor(7001), entryFor(7002)}, 32);
  EXPECT_EQ(pair.holders("k", 5).size(), 2u);
  EXPECT_TRUE(MemberRing().holders("k", 2).empty());
}

}  // namespace
}  // namespace lht::overlay
