#include "workload/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lht::workload {
namespace {

TEST(Workload, ParseDistributionNames) {
  EXPECT_EQ(parseDistribution("uniform"), Distribution::Uniform);
  EXPECT_EQ(parseDistribution("gaussian"), Distribution::Gaussian);
  EXPECT_EQ(parseDistribution("zipf"), Distribution::Zipf);
  EXPECT_THROW(parseDistribution("nope"), common::InvariantError);
  EXPECT_EQ(distributionName(Distribution::Gaussian), "gaussian");
}

TEST(Workload, DatasetsAreDeterministicPerSeed) {
  auto a = makeDataset(Distribution::Uniform, 100, 7);
  auto b = makeDataset(Distribution::Uniform, 100, 7);
  auto c = makeDataset(Distribution::Uniform, 100, 8);
  ASSERT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Workload, AllKeysInUnitInterval) {
  for (auto dist : {Distribution::Uniform, Distribution::Gaussian, Distribution::Zipf}) {
    auto data = makeDataset(dist, 5000, 11);
    for (const auto& r : data) {
      ASSERT_GE(r.key, 0.0) << distributionName(dist);
      ASSERT_LT(r.key, 1.0) << distributionName(dist);
    }
  }
}

TEST(Workload, GaussianConcentratesAtCenter) {
  auto data = makeDataset(Distribution::Gaussian, 20000, 13);
  int center = 0;
  for (const auto& r : data) {
    if (r.key >= 1.0 / 3 && r.key < 2.0 / 3) ++center;  // within 1 sigma
  }
  // ~68% within one sigma of the mean.
  EXPECT_NEAR(static_cast<double>(center) / data.size(), 0.683, 0.02);
}

TEST(Workload, UniformIsFlat) {
  auto data = makeDataset(Distribution::Uniform, 40000, 17);
  int buckets[8] = {};
  for (const auto& r : data) buckets[static_cast<int>(r.key * 8)] += 1;
  for (int b : buckets) EXPECT_NEAR(b, 5000, 350);
}

TEST(Workload, RangeSpecRespectsSpan) {
  common::Pcg32 rng(19);
  for (int i = 0; i < 1000; ++i) {
    auto spec = makeRange(0.25, rng);
    EXPECT_GE(spec.lo, 0.0);
    EXPECT_LE(spec.hi, 1.0);
    EXPECT_NEAR(spec.hi - spec.lo, 0.25, 1e-12);
  }
  EXPECT_THROW(makeRange(0.0, rng), common::InvariantError);
  EXPECT_THROW(makeRange(1.5, rng), common::InvariantError);
}

TEST(Workload, PayloadsAreDistinct) {
  auto data = makeDataset(Distribution::Uniform, 50, 23);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_NE(data[i].payload, data[i - 1].payload);
  }
}

}  // namespace
}  // namespace lht::workload
