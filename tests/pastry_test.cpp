#include "dht/pastry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "workload/generators.h"

namespace lht::dht {
namespace {

PastryDht makePastry(net::SimNetwork& net, size_t peers, common::u64 seed = 1) {
  PastryDht::Options o;
  o.initialPeers = peers;
  o.seed = seed;
  return PastryDht(net, o);
}

TEST(PastryDht, BasicPutGet) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 16);
  d.put("key1", "value1");
  EXPECT_EQ(d.get("key1"), "value1");
  EXPECT_FALSE(d.get("missing").has_value());
  EXPECT_TRUE(d.remove("key1"));
  EXPECT_FALSE(d.get("key1").has_value());
}

TEST(PastryDht, RoutingReachesExactOwnerForManyKeys) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 128);
  for (int i = 0; i < 600; ++i) {
    d.storeDirect("k" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < 600; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
  EXPECT_TRUE(d.checkTables());
}

TEST(PastryDht, HopsAreLogarithmic) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 256);
  d.resetStats();
  for (int i = 0; i < 400; ++i) d.put("k" + std::to_string(i), "v");
  const double meanHops =
      static_cast<double>(d.stats().hops) / static_cast<double>(d.stats().lookups);
  // Prefix routing resolves ~1 hex digit per hop: far below log2(N).
  EXPECT_LT(meanHops, std::log2(256.0));
  EXPECT_GT(meanHops, 1.0);
}

TEST(PastryDht, JoinAndLeavePreserveData) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 8);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  d.join("late-1");
  d.join("late-2");
  auto ids = d.nodeIds();
  d.leave(ids[4]);
  EXPECT_TRUE(d.checkTables());
  EXPECT_EQ(d.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(PastryDht, ChurnStormStaysConsistent) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 12);
  for (int i = 0; i < 100; ++i) d.put("k" + std::to_string(i), "v");
  common::Pcg32 rng(5);
  for (int round = 0; round < 25; ++round) {
    if (rng.below(2) == 0 || d.nodeIds().size() < 4) {
      d.join("churn-" + std::to_string(round));
    } else {
      auto ids = d.nodeIds();
      d.leave(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    }
    ASSERT_TRUE(d.checkTables()) << round;
    ASSERT_EQ(d.size(), 100u) << round;
  }
}

TEST(PastryDht, ApplySemantics) {
  net::SimNetwork net;
  PastryDht d = makePastry(net, 8);
  EXPECT_FALSE(d.apply("k", [](std::optional<Value>& v) { v = "a"; }));
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { *v += "b"; }));
  EXPECT_EQ(d.get("k"), "ab");
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { v.reset(); }));
  EXPECT_EQ(d.size(), 0u);
}

TEST(PastryDht, SmallRingsWork) {
  for (size_t peers : {1u, 2u, 3u}) {
    net::SimNetwork net;
    PastryDht d = makePastry(net, peers);
    for (int i = 0; i < 30; ++i) d.put("k" + std::to_string(i), "v");
    EXPECT_EQ(d.size(), 30u) << peers;
    for (int i = 0; i < 30; ++i) EXPECT_TRUE(d.get("k" + std::to_string(i)).has_value());
  }
}

TEST(LhtOnPastry, FullOracleAgreement) {
  // The paper's "adaptable to any DHT substrate": the identical index code
  // runs over Pastry with zero changes.
  net::SimNetwork net;
  PastryDht d = makePastry(net, 24);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 400, 9);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto mine = idx.rangeQuery(0.2, 0.8);
  auto truth = oracle.rangeQuery(0.2, 0.8);
  EXPECT_EQ(mine.records.size(), truth.records.size());
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, oracle.minRecord().record->key);
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, oracle.maxRecord().record->key);
}

}  // namespace
}  // namespace lht::dht
