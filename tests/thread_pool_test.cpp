#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace lht::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 500);
  EXPECT_EQ(pool.threadCount(), 4u);
}

TEST(ThreadPoolTest, SelfResubmittingChainPreservesOrder) {
  WorkStealingPool pool(3);
  std::vector<int> order;  // appended only by the single live chain task
  std::function<void(int)> step = [&](int i) {
    order.push_back(i);
    if (i + 1 < 200) pool.submit([&step, i] { step(i + 1); });
  };
  pool.submit([&step] { step(0); });
  pool.wait();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, TasksSubmittedFromTasksAllRun) {
  WorkStealingPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 10; ++j) {
        pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 200);
  // Steal accounting stays within the number of executed tasks.
  EXPECT_LE(pool.stealCount(), 220u);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskExceptionAndPoolSurvives) {
  WorkStealingPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The exception slot was cleared; the pool still runs work.
  std::atomic<int> done{0};
  pool.submit([&] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  WorkStealingPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(pool.stealCount(), 0u);
}

}  // namespace
}  // namespace lht::exec
