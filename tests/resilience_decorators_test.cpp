// Tests for the resilience decorator stack (dht/decorators.h): lost-reply
// semantics, simulated-clock latency and deadlines, backoff, the circuit
// breaker, client crashes, stacking order, and cross-substrate determinism
// of the injection streams. Companion to decorators_test.cpp (which covers
// the original FlakyDht/RetryingDht pair).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dht/chord.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "net/sim_clock.h"
#include "net/sim_network.h"
#include "sim/churn.h"

namespace lht::dht {
namespace {

/// Fails the first `failures` routed operations with DhtError, then lets
/// everything through — the minimal scriptable inner for breaker/retry
/// lifecycle tests.
class ScriptedDht final : public Dht {
 public:
  ScriptedDht(Dht& inner, size_t failures) : inner_(inner), left_(failures) {}

  void put(const Key& key, Value value) override {
    step();
    inner_.put(key, std::move(value));
  }
  std::optional<Value> get(const Key& key) override {
    step();
    return inner_.get(key);
  }
  bool remove(const Key& key) override {
    step();
    return inner_.remove(key);
  }
  bool apply(const Key& key, const Mutator& fn) override {
    step();
    return inner_.apply(key, fn);
  }
  void storeDirect(const Key& key, Value value) override {
    inner_.storeDirect(key, std::move(value));
  }
  [[nodiscard]] size_t size() const override { return inner_.size(); }

 private:
  void step() {
    if (left_ == 0) return;
    left_ -= 1;
    throw DhtError("ScriptedDht: scripted failure");
  }

  Dht& inner_;
  size_t left_;
};

// ---------------------------------------------------------------------------
// Lost replies
// ---------------------------------------------------------------------------

TEST(LostReply, MutationExecutesEvenThoughCallerSeesError) {
  LocalDht store;
  LostReplyDht lossy(store, /*lossProbability=*/1.0, /*seed=*/7);

  EXPECT_THROW(lossy.put("k", "v"), DhtError);
  // The defining property: the caller got an error, the write landed.
  EXPECT_EQ(store.get("k"), std::optional<Value>("v"));

  bool ran = false;
  EXPECT_THROW(lossy.apply("k",
                           [&](std::optional<Value>& v) {
                             ran = true;
                             v = "v2";
                           }),
               DhtError);
  EXPECT_TRUE(ran);
  EXPECT_EQ(store.get("k"), std::optional<Value>("v2"));

  EXPECT_THROW(lossy.remove("k"), DhtError);
  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(lossy.injectedLostReplies(), 3u);
}

TEST(LostReply, NaiveRetryDuplicatesAppends) {
  // The motivating failure: retrying a lost-reply append without
  // idempotence tokens applies it twice.
  LocalDht store;
  LostReplyDht lossy(store, 1.0, 3);
  store.storeDirect("list", "");

  const auto append = [](Dht& d) {
    d.apply("list", [](std::optional<Value>& v) { *v += "x"; });
  };
  EXPECT_THROW(append(lossy), DhtError);  // executed, reply lost
  append(store);                          // the naive "retry"
  EXPECT_EQ(store.get("list"), std::optional<Value>("xx"));
}

// ---------------------------------------------------------------------------
// Latency + timeouts on the simulated clock
// ---------------------------------------------------------------------------

TEST(Latency, ChargesClockPerRoutedOperation) {
  net::SimClock clock;
  LocalDht store;
  LatencyDht lat(store, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});

  lat.put("a", "1");
  lat.get("a");
  lat.storeDirect("b", "2");  // administrative: free
  EXPECT_EQ(clock.nowMs(), 20u);
  EXPECT_EQ(lat.injectedLatencyMs(), 20u);
}

TEST(Timeout, SlowWriteTimesOutButStillLands) {
  net::SimClock clock;
  LocalDht store;
  LatencyDht slow(store, clock, {.baseMs = 50, .jitterMs = 0, .seed = 1});
  TimeoutDht bounded(slow, clock, /*deadlineMs=*/20);

  EXPECT_THROW(bounded.put("k", "v"), DhtTimeoutError);
  EXPECT_EQ(store.get("k"), std::optional<Value>("v"));  // lost-reply shape
  EXPECT_EQ(bounded.timeouts(), 1u);

  TimeoutDht generous(slow, clock, /*deadlineMs=*/100);
  EXPECT_NO_THROW(generous.put("k2", "v2"));
  EXPECT_EQ(generous.timeouts(), 0u);
}

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

TEST(Backoff, ExponentialDelaysAdvanceTheClockDeterministically) {
  net::SimClock clock;
  LocalDht store;
  ScriptedDht inner(store, /*failures=*/3);

  RetryingDht::Options o;
  o.maxAttempts = 4;
  o.baseBackoffMs = 10;
  o.backoffMultiplier = 2.0;
  o.jitter = 0.0;  // pure exponential: 10, 20, 40
  o.clock = &clock;
  RetryingDht retry(inner, o);

  retry.put("k", "v");
  EXPECT_EQ(store.get("k"), std::optional<Value>("v"));
  EXPECT_EQ(retry.retries(), 3u);
  EXPECT_EQ(retry.backoffWaitedMs(), 70u);
  EXPECT_EQ(clock.nowMs(), 70u);
}

TEST(Backoff, JitteredDelaysAreSeedDeterministic) {
  auto run = [](common::u64 seed) {
    LocalDht store;
    ScriptedDht inner(store, 5);
    RetryingDht::Options o;
    o.maxAttempts = 8;
    o.baseBackoffMs = 16;
    o.jitter = 0.5;
    o.seed = seed;
    RetryingDht retry(inner, o);
    retry.put("k", "v");
    return retry.backoffWaitedMs();
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // jitter actually depends on the seed
}

TEST(Retrying, ExhaustionDiagnosticsSurviveTheThrow) {
  LocalDht store;
  FlakyDht dead(store, 1.0, 5);
  RetryingDht retry(dead, /*maxAttempts=*/3);

  try {
    retry.put("k", "v");
    FAIL() << "expected DhtRetriesExhausted";
  } catch (const DhtRetriesExhausted& e) {
    EXPECT_EQ(e.op(), "put");
    EXPECT_EQ(e.attempts(), 3u);
    EXPECT_FALSE(e.lastError().empty());
  }
  EXPECT_EQ(retry.exhausted(), 1u);
  EXPECT_EQ(retry.retriesFor(DhtOp::Put), 2u);
  EXPECT_FALSE(retry.lastError().empty());
}

TEST(Retrying, AttemptHistogramCountsSuccessesByAttempt) {
  LocalDht store;
  ScriptedDht inner(store, 2);  // first op needs 3 attempts, rest succeed
  RetryingDht retry(inner, 8);

  retry.put("a", "1");
  retry.put("b", "2");
  retry.get("a");

  const auto& h = retry.attemptHistogram();
  EXPECT_EQ(h[0], 2u);  // two first-attempt successes
  EXPECT_EQ(h[2], 1u);  // one third-attempt success
  EXPECT_EQ(retry.retries(), 2u);
  EXPECT_EQ(retry.retriesFor(DhtOp::Put), 2u);
  EXPECT_EQ(retry.retriesFor(DhtOp::Get), 0u);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, OpensFastFailsAndRecloses) {
  net::SimClock clock;
  LocalDht store;
  ScriptedDht inner(store, /*failures=*/3);
  CircuitBreakerDht breaker(inner, clock,
                            {.failureThreshold = 3, .cooldownMs = 100});

  for (int i = 0; i < 3; ++i) EXPECT_THROW(breaker.get("k"), DhtError);
  EXPECT_EQ(breaker.state(), CircuitBreakerDht::State::Open);
  EXPECT_EQ(breaker.timesOpened(), 1u);

  // Open: rejected without touching the inner DHT.
  EXPECT_THROW(breaker.put("k", "v"), DhtCircuitOpenError);
  EXPECT_EQ(breaker.fastFailures(), 1u);
  EXPECT_FALSE(store.get("k").has_value());

  // After the cooldown a half-open probe goes through and re-closes.
  clock.advance(100);
  EXPECT_NO_THROW(breaker.put("k", "v"));
  EXPECT_EQ(breaker.state(), CircuitBreakerDht::State::Closed);
  EXPECT_EQ(store.get("k"), std::optional<Value>("v"));
}

// ---------------------------------------------------------------------------
// Client crashes
// ---------------------------------------------------------------------------

TEST(Crash, KillsTheClientAfterTheConfiguredWrite) {
  LocalDht store;
  CrashDht crash(store);

  crash.armAfterWrites(1);
  crash.put("a", "1");  // allowed
  EXPECT_THROW(crash.put("b", "2"), CrashError);
  EXPECT_TRUE(crash.crashed());
  EXPECT_THROW(crash.get("a"), CrashError);  // dead clients read nothing
  EXPECT_EQ(store.get("a"), std::optional<Value>("1"));
  EXPECT_FALSE(store.get("b").has_value());

  crash.disarm();
  EXPECT_NO_THROW(crash.put("b", "2"));
  EXPECT_EQ(crash.writesCompleted(), 1u);
}

// ---------------------------------------------------------------------------
// Stacking order
// ---------------------------------------------------------------------------

TEST(Stacking, FlakyAboveLatencyChargesOnlyExecutedAttempts) {
  // Retrying over Flaky over Latency: a lost *request* never reaches the
  // network, so failed attempts cost no simulated time and the N logical
  // ops cost exactly N latency charges no matter how many retries ran.
  net::SimClock clock;
  LocalDht store;
  LatencyDht lat(store, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});
  FlakyDht flaky(lat, 0.3, 21);
  RetryingDht retry(flaky, 64);

  const size_t kOps = 50;
  for (size_t i = 0; i < kOps; ++i) retry.put("k" + std::to_string(i), "v");

  EXPECT_GT(retry.retries(), 0u);  // the flaky layer really did fail ops
  EXPECT_EQ(lat.injectedLatencyMs(), 10u * kOps);
}

TEST(Stacking, FlakyBelowLatencyChargesEveryAttempt) {
  // Same layers, swapped: Retrying over Latency over Flaky. Now every
  // attempt — including the ones the flaky layer kills — pays for the
  // network round-trip first.
  net::SimClock clock;
  LocalDht store;
  FlakyDht flaky(store, 0.3, 21);
  LatencyDht lat(flaky, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});
  RetryingDht retry(lat, 64);

  const size_t kOps = 50;
  for (size_t i = 0; i < kOps; ++i) retry.put("k" + std::to_string(i), "v");

  EXPECT_GT(retry.retries(), 0u);
  EXPECT_EQ(lat.injectedLatencyMs(), 10u * (kOps + retry.retries()));
}

// ---------------------------------------------------------------------------
// Cross-substrate determinism
// ---------------------------------------------------------------------------

TEST(Determinism, FlakyFailurePatternIsSubstrateIndependent) {
  // The injection stream depends only on (seed, op sequence), never on
  // what the substrate underneath does — the same experiment on LocalDht
  // and on a Chord ring sees byte-identical fault schedules.
  auto failurePattern = [](Dht& substrate) {
    FlakyDht flaky(substrate, 0.4, /*seed=*/77);
    std::vector<bool> failed;
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(i);
      try {
        flaky.put(key, "v");
        failed.push_back(false);
      } catch (const DhtError&) {
        failed.push_back(true);
      }
    }
    return failed;
  };

  LocalDht local;
  net::SimNetwork net;
  ChordDht::Options co;
  co.initialPeers = 16;
  co.seed = 5;
  ChordDht chord(net, co);

  EXPECT_EQ(failurePattern(local), failurePattern(chord));
}

TEST(Determinism, LostReplyPatternIsSeedDeterministic) {
  auto lossCount = [](common::u64 seed) {
    LocalDht store;
    LostReplyDht lossy(store, 0.25, seed);
    size_t losses = 0;
    for (int i = 0; i < 300; ++i) {
      try {
        lossy.put("k" + std::to_string(i), "v");
      } catch (const DhtError&) {
        losses += 1;
      }
    }
    return losses;
  };
  EXPECT_EQ(lossCount(9), lossCount(9));
  EXPECT_NE(lossCount(9), lossCount(10));
}

// ---------------------------------------------------------------------------
// Churn configuration validation
// ---------------------------------------------------------------------------

TEST(ChurnValidation, RejectsFailuresOnUnreplicatedRing) {
  net::SimNetwork net;
  ChordDht::Options co;
  co.initialPeers = 8;
  co.replication = 1;
  ChordDht unreplicated(net, co);

  sim::ChurnConfig cfg;
  cfg.failWeight = 1.0;
  EXPECT_THROW(sim::ChurnDriver(unreplicated, cfg), common::InvariantError);

  net::SimNetwork net2;
  co.replication = 2;
  ChordDht replicated(net2, co);
  EXPECT_NO_THROW(sim::ChurnDriver(replicated, cfg));

  cfg.failWeight = 0.0;  // no fail events: replication 1 is fine
  EXPECT_NO_THROW(sim::ChurnDriver(unreplicated, cfg));

  cfg.failWeight = -0.5;  // negative weights are always invalid
  EXPECT_THROW(sim::ChurnDriver(replicated, cfg), common::InvariantError);
}

// ---------------------------------------------------------------------------
// Batch rounds through the decorator stack
// ---------------------------------------------------------------------------

TEST(BatchRounds, FlakyFailsEntriesIndependently) {
  LocalDht store;
  for (int i = 0; i < 10; ++i) store.storeDirect("k" + std::to_string(i), "v");
  FlakyDht flaky(store, 0.5, /*seed=*/42);

  std::vector<Key> keys;
  for (int i = 0; i < 10; ++i) keys.push_back("k" + std::to_string(i));
  auto out = flaky.multiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  size_t ok = 0;
  size_t failed = 0;
  for (const auto& o : out) {
    if (o.ok) {
      ok += 1;
      EXPECT_EQ(o.value, std::optional<Value>("v"));
    } else {
      failed += 1;
      EXPECT_FALSE(o.error.empty());
      EXPECT_FALSE(o.value.has_value());
    }
  }
  // At p=0.5 over ten entries both outcomes appear: partial failure is
  // per-entry, never all-or-nothing.
  EXPECT_GT(ok, 0u);
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(flaky.injectedFailures(), failed);
}

TEST(BatchRounds, LostReplyExecutesEntriesWhoseAcksDrop) {
  LocalDht store;
  LostReplyDht lossy(store, /*lossProbability=*/1.0, /*seed=*/5);

  std::vector<ApplyRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(ApplyRequest{
        "k" + std::to_string(i),
        [i](std::optional<Value>& v) { v = "v" + std::to_string(i); }});
  }
  auto out = lossy.multiApply(reqs);
  ASSERT_EQ(out.size(), reqs.size());
  for (const auto& o : out) EXPECT_FALSE(o.ok);  // every reply dropped
  // ... but every mutation executed: the lost-reply shape, batched.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(store.get("k" + std::to_string(i)),
              std::optional<Value>("v" + std::to_string(i)));
  }
  EXPECT_EQ(lossy.injectedLostReplies(), 4u);
}

TEST(BatchRounds, RetryingRetriesOnlyTheFailedSubset) {
  LocalDht store;
  std::vector<Key> keys;
  for (int i = 0; i < 5; ++i) {
    keys.push_back("k" + std::to_string(i));
    store.storeDirect(keys.back(), "v" + std::to_string(i));
  }
  ScriptedDht inner(store, /*failures=*/2);  // first two entries of round 1
  RetryingDht retry(inner, 8);

  auto out = retry.multiGet(keys);
  ASSERT_EQ(out.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(out[i].ok);
    EXPECT_EQ(out[i].value, std::optional<Value>("v" + std::to_string(i)));
  }
  // Round 1 succeeded for three entries; only the two scripted failures
  // rode the second round.
  EXPECT_EQ(retry.retries(), 2u);
  const auto& h = retry.attemptHistogram();
  EXPECT_EQ(h[0], 3u);
  EXPECT_EQ(h[1], 2u);
}

TEST(BatchRounds, TimeoutTimesTheWholeRoundOnce) {
  net::SimClock clock;
  LocalDht store;
  LatencyDht slow(store, clock, {.baseMs = 50, .jitterMs = 0, .seed = 1});
  TimeoutDht bounded(slow, clock, /*deadlineMs=*/20);

  std::vector<ApplyRequest> reqs;
  reqs.push_back(ApplyRequest{"a", [](std::optional<Value>& v) { v = "1"; }});
  reqs.push_back(ApplyRequest{"b", [](std::optional<Value>& v) { v = "2"; }});
  auto out = bounded.multiApply(reqs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].ok);
  EXPECT_FALSE(out[1].ok);
  // One deadline covers the round — a missed round is one timeout, not one
  // per entry — and the writes still landed (lost-reply shape).
  EXPECT_EQ(bounded.timeouts(), 1u);
  EXPECT_EQ(store.get("a"), std::optional<Value>("1"));
  EXPECT_EQ(store.get("b"), std::optional<Value>("2"));
}

TEST(BatchRounds, OpenBreakerFastFailsEveryEntry) {
  net::SimClock clock;
  LocalDht store;
  store.storeDirect("k0", "v");
  ScriptedDht inner(store, /*failures=*/3);
  CircuitBreakerDht breaker(inner, clock,
                            {.failureThreshold = 3, .cooldownMs = 100});
  for (int i = 0; i < 3; ++i) EXPECT_THROW(breaker.get("k0"), DhtError);
  ASSERT_EQ(breaker.state(), CircuitBreakerDht::State::Open);

  auto out = breaker.multiGet({"k0", "k1", "k2", "k3"});
  ASSERT_EQ(out.size(), 4u);
  for (const auto& o : out) {
    EXPECT_FALSE(o.ok);
    EXPECT_FALSE(o.value.has_value());
  }
  EXPECT_EQ(breaker.fastFailures(), 4u);
  EXPECT_EQ(breaker.state(), CircuitBreakerDht::State::Open);
}

TEST(BatchRounds, CrashMidBatchAppliesThePrefix) {
  LocalDht store;
  CrashDht crash(store);
  crash.armAfterWrites(2);

  std::vector<ApplyRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(ApplyRequest{
        "k" + std::to_string(i),
        [i](std::optional<Value>& v) { v = "v" + std::to_string(i); }});
  }
  // The client dies partway through shipping the round: the entries it got
  // out the door are applied, the rest never happened.
  EXPECT_THROW(crash.multiApply(reqs), CrashError);
  EXPECT_TRUE(crash.crashed());
  EXPECT_EQ(store.get("k0"), std::optional<Value>("v0"));
  EXPECT_EQ(store.get("k1"), std::optional<Value>("v1"));
  EXPECT_FALSE(store.get("k2").has_value());
  EXPECT_FALSE(store.get("k3").has_value());
}

TEST(BatchRounds, LatencyChargesOncePerRound) {
  net::SimClock clock;
  LocalDht store;
  LatencyDht lat(store, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});

  std::vector<Key> keys;
  for (int i = 0; i < 10; ++i) {
    keys.push_back("k" + std::to_string(i));
    store.storeDirect(keys.back(), "v");
  }
  lat.multiGet(keys);
  EXPECT_EQ(clock.nowMs(), 10u);  // ten keys, one round-trip

  std::vector<ApplyRequest> reqs;
  for (int i = 0; i < 5; ++i) {
    reqs.push_back(
        ApplyRequest{"a" + std::to_string(i),
                     [](std::optional<Value>& v) { v = "x"; }});
  }
  lat.multiApply(reqs);
  EXPECT_EQ(clock.nowMs(), 20u);  // five applies, one more round-trip
}

TEST(BatchRounds, StackedFlakyOverLatencyChargesSurvivorsOneRound) {
  // Entries the flaky layer kills never reach the network; the survivors
  // ship together and cost one round-trip total.
  net::SimClock clock;
  LocalDht store;
  LatencyDht lat(store, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});
  FlakyDht flaky(lat, 0.5, /*seed=*/42);

  std::vector<Key> keys;
  for (int i = 0; i < 10; ++i) {
    keys.push_back("k" + std::to_string(i));
    store.storeDirect(keys.back(), "v");
  }
  auto out = flaky.multiGet(keys);
  size_t ok = 0;
  for (const auto& o : out) ok += o.ok ? 1 : 0;
  ASSERT_GT(ok, 0u);
  ASSERT_LT(ok, keys.size());
  EXPECT_EQ(clock.nowMs(), 10u);
  EXPECT_EQ(lat.injectedLatencyMs(), 10u);
}

}  // namespace
}  // namespace lht::dht
