// End-to-end tests of the LHT index against the in-memory oracle, on both
// the LocalDht and the Chord substrate (the paper's "adaptable to any DHT").
#include "lht/lht_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/naming.h"
#include "net/sim_network.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

using common::Label;

LhtIndex::Options smallOpts(common::u32 theta = 8, common::u32 depth = 20) {
  LhtIndex::Options o;
  o.thetaSplit = theta;
  o.maxDepth = depth;
  return o;
}

TEST(LhtIndex, EmptyIndexIsSingleRootLeaf) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts());
  EXPECT_EQ(idx.recordCount(), 0u);
  // The root leaf "#0" is stored under its name "#".
  EXPECT_TRUE(d.get("#").has_value());
  size_t buckets = 0;
  idx.forEachBucket([&](const LeafBucket& b) {
    EXPECT_EQ(b.label, Label::root());
    ++buckets;
  });
  EXPECT_EQ(buckets, 1u);
}

TEST(LhtIndex, FindOnEmptyIndex) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts());
  EXPECT_FALSE(idx.find(0.5).record.has_value());
  EXPECT_FALSE(idx.minRecord().record.has_value());
  EXPECT_FALSE(idx.maxRecord().record.has_value());
  EXPECT_TRUE(idx.rangeQuery(0.0, 1.0).records.empty());
}

TEST(LhtIndex, InsertThenFind) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts());
  idx.insert({0.3, "a"});
  idx.insert({0.7, "b"});
  EXPECT_EQ(idx.recordCount(), 2u);
  auto fa = idx.find(0.3);
  ASSERT_TRUE(fa.record.has_value());
  EXPECT_EQ(fa.record->payload, "a");
  EXPECT_FALSE(idx.find(0.5).record.has_value());
}

TEST(LhtIndex, BoundaryKeysAccepted) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts());
  idx.insert({0.0, "zero"});
  idx.insert({1.0, "one"});
  EXPECT_TRUE(idx.find(0.0).record.has_value());
  EXPECT_TRUE(idx.find(1.0).record.has_value());
  EXPECT_THROW(idx.insert({1.5, "bad"}), common::InvariantError);
  EXPECT_THROW(idx.insert({-0.1, "bad"}), common::InvariantError);
}

/// Structural invariants after arbitrary growth: leaf intervals tile [0, 1)
/// exactly (double-root fullness), every bucket is stored under its name,
/// and every record sits in the leaf covering its key.
void checkStructure(dht::Dht& d, LhtIndex& idx) {
  std::vector<LeafBucket> buckets;
  idx.forEachBucket([&](const LeafBucket& b) { buckets.push_back(b); });
  ASSERT_FALSE(buckets.empty());
  double edge = 0.0;
  std::set<std::string> names;
  size_t records = 0;
  for (const auto& b : buckets) {
    const auto iv = b.label.interval();
    EXPECT_DOUBLE_EQ(iv.lo, edge) << b.label.str();
    edge = iv.hi;
    auto stored = d.get(dhtKeyFor(b.label));
    ASSERT_TRUE(stored.has_value()) << b.label.str();
    auto decoded = LeafBucket::deserialize(*stored);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->label, b.label);
    EXPECT_TRUE(names.insert(dhtKeyFor(b.label)).second) << "duplicate name";
    for (const auto& r : b.records) {
      EXPECT_TRUE(b.covers(r.key)) << b.label.str() << " " << r.key;
      ++records;
    }
  }
  EXPECT_DOUBLE_EQ(edge, 1.0);
  EXPECT_EQ(records, idx.recordCount());
}

TEST(LhtIndex, StructureInvariantsUnderUniformGrowth) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 3);
  for (const auto& r : data) idx.insert(r);
  checkStructure(d, idx);
}

TEST(LhtIndex, StructureInvariantsUnderGaussianGrowth) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(8, 30));
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 500, 4);
  for (const auto& r : data) idx.insert(r);
  checkStructure(d, idx);
}

TEST(LhtIndex, LookupMatchesBinaryAndLinear) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 400, 5);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(6);
  for (int i = 0; i < 200; ++i) {
    const double key = rng.nextDouble();
    auto bin = idx.lookup(key);
    auto lin = idx.lookupLinear(key);
    ASSERT_TRUE(bin.bucket.has_value());
    ASSERT_TRUE(lin.bucket.has_value());
    EXPECT_EQ(bin.bucket->label, lin.bucket->label) << key;
    EXPECT_EQ(bin.dhtKey, lin.dhtKey);
    EXPECT_TRUE(bin.bucket->covers(key));
  }
}

TEST(LhtIndex, LookupCostIsLogOfHalfD) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(8, 20));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 8);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(9);
  double total = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(idx.lookup(rng.nextDouble()).stats.dhtLookups);
  }
  // Sec. 5: ~log2(D/2) ~ 3.3 for D=20; allow generous slack but far below D.
  EXPECT_LT(total / n, 6.0);
  EXPECT_GE(total / n, 1.0);
}

TEST(LhtIndex, AgreesWithOracleOnMixedWorkload) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(6));
  index::ReferenceIndex oracle;
  common::Pcg32 rng(12);
  for (int step = 0; step < 1500; ++step) {
    const double key = rng.nextDouble();
    if (rng.below(4) != 0) {
      index::Record r{key, "p" + std::to_string(step)};
      idx.insert(r);
      oracle.insert(r);
    } else {
      // Erase a key that may or may not exist: pick an existing one half
      // the time through the oracle's nearest record.
      auto probe = oracle.rangeQuery(key, 1.0);
      const double victim = probe.records.empty() ? key : probe.records.front().key;
      EXPECT_EQ(idx.erase(victim).ok, oracle.erase(victim).ok) << step;
    }
    ASSERT_EQ(idx.recordCount(), oracle.recordCount()) << step;
  }
  // Full content equality via a whole-space range query.
  auto mine = idx.rangeQuery(0.0, 1.0);
  auto truth = oracle.rangeQuery(0.0, 1.0);
  ASSERT_EQ(mine.records.size(), truth.records.size());
  std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
  for (size_t i = 0; i < mine.records.size(); ++i) {
    EXPECT_EQ(mine.records[i], truth.records[i]) << i;
  }
  checkStructure(d, idx);
}

TEST(LhtIndex, MinMaxMatchTheorem3) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 600, 15);
  double lo = 2.0, hi = -1.0;
  for (const auto& r : data) {
    idx.insert(r);
    lo = std::min(lo, r.key);
    hi = std::max(hi, r.key);
  }
  auto mn = idx.minRecord();
  auto mx = idx.maxRecord();
  ASSERT_TRUE(mn.record.has_value());
  ASSERT_TRUE(mx.record.has_value());
  EXPECT_DOUBLE_EQ(mn.record->key, lo);
  EXPECT_DOUBLE_EQ(mx.record->key, hi);
  // Theorem 3: one DHT-lookup each once the tree has grown.
  EXPECT_EQ(mn.stats.dhtLookups, 1u);
  EXPECT_EQ(mx.stats.dhtLookups, 1u);
}

TEST(LhtIndex, MinMaxOnSingleLeafTree) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(100));
  idx.insert({0.4, "a"});
  idx.insert({0.6, "b"});
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, 0.4);
  // "#0" is not a name yet; maxRecord falls back to "#".
  auto mx = idx.maxRecord();
  EXPECT_DOUBLE_EQ(mx.record->key, 0.6);
  EXPECT_EQ(mx.stats.dhtLookups, 2u);
}

TEST(LhtIndex, MinSurvivesEmptiedLeftmostLeaf) {
  dht::LocalDht d;
  LhtIndex::Options o = smallOpts(4);
  o.enableMerge = false;  // keep the empty leaf around
  LhtIndex idx(d, o);
  for (double k : {0.01, 0.02, 0.03, 0.6, 0.7, 0.8, 0.9}) idx.insert({k, "x"});
  for (double k : {0.01, 0.02, 0.03}) idx.erase(k);
  auto mn = idx.minRecord();
  ASSERT_TRUE(mn.record.has_value());
  EXPECT_DOUBLE_EQ(mn.record->key, 0.6);
}

TEST(LhtIndex, WorksOnChordSubstrate) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 24;
  dht::ChordDht d(net, copts);
  LhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 300, 21);
  index::ReferenceIndex oracle;
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto mine = idx.rangeQuery(0.2, 0.8);
  auto truth = oracle.rangeQuery(0.2, 0.8);
  EXPECT_EQ(mine.records.size(), truth.records.size());
  EXPECT_TRUE(d.checkRing());
}

TEST(LhtIndex, WorksOnKademliaSubstrate) {
  net::SimNetwork net;
  dht::KademliaDht::Options kopts;
  kopts.initialPeers = 24;
  dht::KademliaDht d(net, kopts);
  LhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 300, 22);
  index::ReferenceIndex oracle;
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto mine = idx.rangeQuery(0.3, 0.7);
  auto truth = oracle.rangeQuery(0.3, 0.7);
  EXPECT_EQ(mine.records.size(), truth.records.size());
}

TEST(LhtIndex, SurvivesChordChurnBetweenOperations) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 12;
  dht::ChordDht d(net, copts);
  LhtIndex idx(d, smallOpts(8));
  index::ReferenceIndex oracle;
  common::Pcg32 rng(33);
  for (int step = 0; step < 400; ++step) {
    index::Record r{rng.nextDouble(), "p" + std::to_string(step)};
    idx.insert(r);
    oracle.insert(r);
    if (step % 40 == 20) d.join("late-" + std::to_string(step));
    if (step % 40 == 39) {
      auto ids = d.nodeIds();
      d.leave(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    }
  }
  EXPECT_TRUE(d.checkRing());
  auto mine = idx.rangeQuery(0.0, 1.0);
  EXPECT_EQ(mine.records.size(), oracle.recordCount());
}

TEST(LhtIndex, DuplicateKeysSupported) {
  dht::LocalDht d;
  LhtIndex idx(d, smallOpts(4));
  for (int i = 0; i < 10; ++i) idx.insert({0.5, "dup" + std::to_string(i)});
  EXPECT_EQ(idx.recordCount(), 10u);
  auto rr = idx.rangeQuery(0.5, 0.500001);
  EXPECT_EQ(rr.records.size(), 10u);
  EXPECT_TRUE(idx.erase(0.5).ok);
  EXPECT_EQ(idx.recordCount(), 0u);
}

}  // namespace
}  // namespace lht::core
