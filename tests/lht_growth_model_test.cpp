// Differential test of incremental tree growth (paper Sec. 4): the
// distributed index, driven through DHT operations, must produce exactly
// the partition tree that a direct in-memory simulation of the growth
// rules produces — same leaf labels, same per-leaf record contents —
// for any insertion order and distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dht/local_dht.h"
#include "lht/bucket.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

using common::Label;

/// Centralized reference model of the growth rules: one-split-per-insert,
/// median partition, effective-size trigger.
class ReferenceTree {
 public:
  ReferenceTree(common::u32 theta, common::u32 maxDepth)
      : theta_(theta), maxDepth_(maxDepth) {
    leaves_.emplace(Label::root(), std::vector<index::Record>{});
  }

  void insert(const index::Record& r) {
    const double k = common::clampToUnit(r.key);
    auto it = findLeaf(k);
    it->second.push_back(r);
    const size_t effective = it->second.size() + 1;  // label slot
    if (effective >= theta_ && it->first.length() < maxDepth_) {
      const Label label = it->first;
      const auto iv = label.interval();
      const double mid = 0.5 * (iv.lo + iv.hi);
      std::vector<index::Record> left, right;
      for (auto& rec : it->second) {
        (rec.key < mid ? left : right).push_back(std::move(rec));
      }
      leaves_.erase(it);
      leaves_.emplace(label.child(0), std::move(left));
      leaves_.emplace(label.child(1), std::move(right));
    }
  }

  [[nodiscard]] const std::map<Label, std::vector<index::Record>>& leaves() const {
    return leaves_;
  }

 private:
  std::map<Label, std::vector<index::Record>>::iterator findLeaf(double k) {
    const Label probe = Label::fromKey(k, Label::kMaxBits);
    auto it = leaves_.upper_bound(probe);
    EXPECT_NE(it, leaves_.begin());
    --it;
    EXPECT_TRUE(it->first.covers(k));
    return it;
  }

  common::u32 theta_;
  common::u32 maxDepth_;
  std::map<Label, std::vector<index::Record>> leaves_;
};

class GrowthModel
    : public ::testing::TestWithParam<std::tuple<workload::Distribution, int>> {};

TEST_P(GrowthModel, DistributedGrowthMatchesReferenceExactly) {
  auto [dist, seed] = GetParam();
  const common::u32 theta = 8;
  const common::u32 depth = 30;

  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = theta, .maxDepth = depth});
  ReferenceTree ref(theta, depth);

  auto data = workload::makeDataset(dist, 1200, static_cast<common::u64>(seed));
  for (const auto& r : data) {
    idx.insert(r);
    ref.insert(r);
  }

  // Collect the distributed tree's leaves left-to-right.
  std::map<Label, std::vector<index::Record>> mine;
  idx.forEachBucket([&](const LeafBucket& b) { mine.emplace(b.label, b.records); });

  ASSERT_EQ(mine.size(), ref.leaves().size());
  auto a = mine.begin();
  auto b = ref.leaves().begin();
  for (; a != mine.end(); ++a, ++b) {
    ASSERT_EQ(a->first, b->first) << "leaf label mismatch";
    auto ra = a->second;
    auto rb = b->second;
    std::sort(ra.begin(), ra.end(), index::recordLess);
    std::sort(rb.begin(), rb.end(), index::recordLess);
    ASSERT_EQ(ra.size(), rb.size()) << a->first.str();
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i], rb[i]) << a->first.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrowthModel,
    ::testing::Values(std::tuple{workload::Distribution::Uniform, 1},
                      std::tuple{workload::Distribution::Uniform, 2},
                      std::tuple{workload::Distribution::Gaussian, 3},
                      std::tuple{workload::Distribution::Gaussian, 4},
                      std::tuple{workload::Distribution::Zipf, 5},
                      std::tuple{workload::Distribution::Zipf, 6}),
    [](const auto& info) {
      return workload::distributionName(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GrowthModel, SplitTimingMatchesTrigger) {
  // The n-th insert splits iff the reference model says so: verified by
  // comparing cumulative split counts step by step.
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 30});
  ReferenceTree ref(8, 30);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 600, 7);
  size_t refLeaves = 1;
  for (const auto& r : data) {
    idx.insert(r);
    ref.insert(r);
    refLeaves = ref.leaves().size();
    // splits = leaves - 1 in a full binary tree grown by splits only.
    ASSERT_EQ(idx.meters().maintenance.splits, refLeaves - 1);
  }
}

}  // namespace
}  // namespace lht::core
