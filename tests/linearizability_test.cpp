#include "exec/linearizability.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/history.h"

namespace lht::exec {
namespace {

OpRecord put(const std::string& key, const std::string& v, common::u64 inv,
             common::u64 ret, bool ok = true) {
  OpRecord r;
  r.kind = OpKind::Put;
  r.dhtKey = key;
  r.value = v;
  r.invokeMs = inv;
  r.returnMs = ret;
  r.ok = ok;
  return r;
}

OpRecord get(const std::string& key, std::optional<std::string> observed,
             common::u64 inv, common::u64 ret, bool ok = true) {
  OpRecord r;
  r.kind = OpKind::Get;
  r.dhtKey = key;
  r.value = std::move(observed);
  r.invokeMs = inv;
  r.returnMs = ret;
  r.ok = ok;
  return r;
}

OpRecord removeOp(const std::string& key, common::u64 inv, common::u64 ret,
                  bool ok = true) {
  OpRecord r;
  r.kind = OpKind::Remove;
  r.dhtKey = key;
  r.invokeMs = inv;
  r.returnMs = ret;
  r.ok = ok;
  return r;
}

TEST(LinearizabilityTest, SequentialHistoryPasses) {
  std::vector<OpRecord> h{
      put("k", "a", 1, 2),
      get("k", "a", 3, 4),
      put("k", "b", 5, 6),
      get("k", "b", 7, 8),
      removeOp("k", 9, 10),
      get("k", std::nullopt, 11, 12),
  };
  EXPECT_TRUE(checkLinearizableRegister(h).ok);
}

TEST(LinearizabilityTest, ConcurrentWritesAllowEitherOrder) {
  // Two overlapping writes; a later read may see either winner.
  std::vector<OpRecord> seesA{
      put("k", "a", 1, 10),
      put("k", "b", 2, 9),
      get("k", "a", 11, 12),
  };
  std::vector<OpRecord> seesB{
      put("k", "a", 1, 10),
      put("k", "b", 2, 9),
      get("k", "b", 11, 12),
  };
  EXPECT_TRUE(checkLinearizableRegister(seesA).ok);
  EXPECT_TRUE(checkLinearizableRegister(seesB).ok);
}

TEST(LinearizabilityTest, ReadOfNeverWrittenValueFails) {
  std::vector<OpRecord> h{
      put("k", "a", 1, 2),
      get("k", "z", 3, 4),
  };
  const auto r = checkLinearizableRegister(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("NOT linearizable"), std::string::npos);
}

TEST(LinearizabilityTest, StaleReadAfterCompletedOverwriteFails) {
  // w(a) finished, then w(b) finished, then a read returns a: the read
  // started after w(b) completed, so "a" is stale — not linearizable.
  std::vector<OpRecord> h{
      put("k", "a", 1, 2),
      put("k", "b", 3, 4),
      get("k", "a", 5, 6),
  };
  EXPECT_FALSE(checkLinearizableRegister(h).ok);
}

TEST(LinearizabilityTest, ConcurrentReadMaySeeOldOrNewValue) {
  // The read overlaps w(b): both observations are legal.
  std::vector<OpRecord> oldV{put("k", "a", 1, 2), put("k", "b", 3, 10),
                             get("k", "a", 4, 5)};
  std::vector<OpRecord> newV{put("k", "a", 1, 2), put("k", "b", 3, 10),
                             get("k", "b", 4, 5)};
  EXPECT_TRUE(checkLinearizableRegister(oldV).ok);
  EXPECT_TRUE(checkLinearizableRegister(newV).ok);
}

TEST(LinearizabilityTest, FailedWriteMayOrMayNotTakeEffect) {
  // The failed put's effect is indeterminate: both a later read of "a"
  // (it landed) and of <absent> (it evaporated) are legal.
  std::vector<OpRecord> landed{put("k", "a", 1, 2, /*ok=*/false),
                               get("k", "a", 3, 4)};
  std::vector<OpRecord> evaporated{put("k", "a", 1, 2, /*ok=*/false),
                                   get("k", std::nullopt, 3, 4)};
  EXPECT_TRUE(checkLinearizableRegister(landed).ok);
  EXPECT_TRUE(checkLinearizableRegister(evaporated).ok);
}

TEST(LinearizabilityTest, FailedWriteMayLandLate) {
  // A failed write has no response: it may linearize after reads that
  // started later, so absent-then-present is fine, but once observed the
  // value cannot revert (present-then-absent fails).
  std::vector<OpRecord> lateLanding{
      put("k", "a", 1, 2, /*ok=*/false),
      get("k", std::nullopt, 3, 4),
      get("k", "a", 5, 6),
  };
  EXPECT_TRUE(checkLinearizableRegister(lateLanding).ok);
  std::vector<OpRecord> revert{
      put("k", "a", 1, 2, /*ok=*/false),
      get("k", "a", 3, 4),
      get("k", std::nullopt, 5, 6),
  };
  EXPECT_FALSE(checkLinearizableRegister(revert).ok);
}

TEST(LinearizabilityTest, FailedReadCarriesNoObservation) {
  std::vector<OpRecord> h{
      put("k", "a", 1, 2),
      get("k", std::nullopt, 3, 4, /*ok=*/false),  // threw, observed nothing
      get("k", "a", 5, 6),
  };
  EXPECT_TRUE(checkLinearizableRegister(h).ok);
}

TEST(LinearizabilityTest, OversizedHistoryFailsLoudly) {
  std::vector<OpRecord> h;
  for (common::u64 i = 0; i < 70; ++i) {
    h.push_back(put("k", "v", 2 * i + 1, 2 * i + 2));
  }
  const auto r = checkLinearizableRegister(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("cap"), std::string::npos);
}

TEST(LinearizabilityTest, MultiKeyHistoriesCheckIndependently) {
  std::vector<OpRecord> h{
      put("a", "1", 1, 2), put("b", "2", 1, 2),
      get("a", "1", 3, 4), get("b", "2", 3, 4),
  };
  EXPECT_TRUE(checkSingleKeyHistories(h).ok);
  h.push_back(get("b", "1", 5, 6));  // value from the wrong key
  EXPECT_FALSE(checkSingleKeyHistories(h).ok);
}

// ---------------------------------------------------------------------------
// Grow-only set checker
// ---------------------------------------------------------------------------

OpRecord insertOp(double key, common::u64 inv, common::u64 ret,
                  bool ok = true) {
  OpRecord r;
  r.kind = OpKind::Insert;
  r.key = key;
  r.value = "p";
  r.invokeMs = inv;
  r.returnMs = ret;
  r.ok = ok;
  return r;
}

OpRecord findOp(double key, bool found, common::u64 inv, common::u64 ret,
                bool ok = true) {
  OpRecord r;
  r.kind = OpKind::Find;
  r.key = key;
  if (found) r.value = "p";
  r.invokeMs = inv;
  r.returnMs = ret;
  r.ok = ok;
  return r;
}

TEST(LinearizabilityTest, GrowOnlySetAcceptsConsistentRun) {
  std::vector<OpRecord> h{
      insertOp(0.25, 1, 2),
      findOp(0.25, true, 3, 4),
      findOp(0.75, false, 3, 4),   // never inserted
      insertOp(0.75, 5, 9),
      findOp(0.75, true, 6, 7),    // concurrent with its insert: may see it
  };
  EXPECT_TRUE(checkGrowOnlySet(h).ok);
}

TEST(LinearizabilityTest, GrowOnlySetRejectsReadFromTheFuture) {
  std::vector<OpRecord> h{
      findOp(0.5, true, 1, 2),  // observed before any insert was invoked
      insertOp(0.5, 3, 4),
  };
  const auto r = checkGrowOnlySet(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("no insert"), std::string::npos);
}

TEST(LinearizabilityTest, GrowOnlySetRejectsMissAfterCompletedInsert) {
  std::vector<OpRecord> h{
      insertOp(0.5, 1, 2),
      findOp(0.5, false, 3, 4),
  };
  const auto r = checkGrowOnlySet(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("missed"), std::string::npos);
}

TEST(LinearizabilityTest, GrowOnlySetRejectsNonMonotonicReads) {
  // The insert never completed (indeterminate), but one find saw the key;
  // a strictly later find must keep seeing it.
  std::vector<OpRecord> h{
      insertOp(0.5, 1, 2, /*ok=*/false),
      findOp(0.5, true, 3, 4),
      findOp(0.5, false, 5, 6),
  };
  const auto r = checkGrowOnlySet(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("monotonic"), std::string::npos);
}

TEST(LinearizabilityTest, DefiniteAndMaybeKeySets) {
  std::vector<OpRecord> h{
      insertOp(0.1, 1, 2, true),
      insertOp(0.2, 3, 4, false),
      insertOp(0.3, 5, 6, true),
  };
  EXPECT_EQ(definiteKeys(h), (std::set<double>{0.1, 0.3}));
  EXPECT_EQ(maybeKeys(h), (std::set<double>{0.2}));
}

}  // namespace
}  // namespace lht::exec
