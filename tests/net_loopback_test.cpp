// Real-socket smoke tests: fork/exec lht_noded daemons on ephemeral UDP
// ports and drive them through UdpTransport — the only tests that cross a
// process boundary, so they pin the parts the SimHub twin cannot: the
// epoll loop, real sockaddr round-trips, the daemon's ready-line contract,
// and clean SIGTERM shutdown. Skipped (not failed) when the lht_noded
// binary is not where the build puts it.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "dht/net_dht.h"
#include "rpc/rpc_client.h"
#include "rpc/udp_transport.h"

namespace lht::rpc {
namespace {

/// Path to the lht_noded binary: $LHT_NODED_PATH, else next to this test
/// binary's build tree (build/tests/lht_tests -> build/src/rpc/lht_noded).
std::string findNoded() {
  if (const char* env = std::getenv("LHT_NODED_PATH")) {
    if (::access(env, X_OK) == 0) return env;
  }
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) return {};
  exe[n] = '\0';
  std::string dir(exe);
  const size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return {};
  dir.resize(slash);
  for (const char* rel : {"/../src/rpc/lht_noded", "/lht_noded"}) {
    const std::string candidate = dir + rel;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

/// One spawned daemon; SIGTERMs and reaps it on destruction.
struct Daemon {
  pid_t pid = -1;
  u16 port = 0;

  Daemon() = default;
  Daemon(Daemon&& o) noexcept : pid(o.pid), port(o.port) { o.pid = -1; }
  Daemon& operator=(Daemon&&) = delete;
  ~Daemon() { (void)stop(); }

  /// SIGTERM + reap; returns the exit status (-1 if not running).
  int stop() {
    if (pid <= 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }
};

/// fork/execs `binary --port=0 --quiet=true` and parses the ready line.
bool spawnDaemon(const std::string& binary, const std::string& name,
                 Daemon& out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    const std::string nameArg = "--name=" + name;
    char* argv[] = {const_cast<char*>(binary.c_str()),
                    const_cast<char*>("--port=0"),
                    const_cast<char*>("--quiet=true"),
                    const_cast<char*>(nameArg.c_str()), nullptr};
    ::execv(binary.c_str(), argv);
    _exit(127);
  }
  ::close(fds[1]);
  FILE* pipe = ::fdopen(fds[0], "r");
  char line[256] = {0};
  const bool gotLine = pipe != nullptr && std::fgets(line, sizeof(line), pipe);
  if (pipe != nullptr) std::fclose(pipe);  // daemon keeps running; we only
                                           // needed the ready line
  unsigned parsedPort = 0;
  if (!gotLine ||
      std::sscanf(line, "lht_noded: ready on 127.0.0.1:%u", &parsedPort) != 1 ||
      parsedPort == 0 || parsedPort > 65535) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return false;
  }
  out.pid = pid;
  out.port = static_cast<u16>(parsedPort);
  return true;
}

TEST(NetLoopback, DaemonAnswersOverRealSockets) {
  const std::string binary = findNoded();
  if (binary.empty()) GTEST_SKIP() << "lht_noded binary not found";
  Daemon daemon;
  ASSERT_TRUE(spawnDaemon(binary, "loopback-a", daemon));
  const NetAddr server{kLoopbackHost, daemon.port};

  UdpTransport transport{UdpTransport::Options{}};  // ephemeral client port
  RpcClient cli(transport);
  auto ping = cli.callOne(server, wire::PingReq{});
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(std::get<wire::PingRep>(ping.body).nodeName, "loopback-a");

  auto put = cli.callOne(server, wire::PutReq{"k", "loopback-value"});
  ASSERT_TRUE(put.ok());
  auto get = cli.callOne(server, wire::GetReq{"k"});
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(std::get<wire::GetRep>(get.body).present);
  EXPECT_EQ(std::get<wire::GetRep>(get.body).value, "loopback-value");

  // Clean shutdown on SIGTERM is part of the daemon contract.
  const int status = daemon.stop();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(NetLoopback, NetDhtAcrossTwoProcesses) {
  const std::string binary = findNoded();
  if (binary.empty()) GTEST_SKIP() << "lht_noded binary not found";
  Daemon a, b;
  ASSERT_TRUE(spawnDaemon(binary, "proc-a", a));
  ASSERT_TRUE(spawnDaemon(binary, "proc-b", b));

  dht::NetDht::Options o;
  o.nodes = {NetAddr{kLoopbackHost, a.port}, NetAddr{kLoopbackHost, b.port}};
  o.replication = 2;
  dht::NetDht dht(
      o, [] { return std::make_unique<UdpTransport>(UdpTransport::Options{}); });
  ASSERT_TRUE(dht.pingAll(5000));

  for (int i = 0; i < 20; ++i) {
    dht.put("key" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dht.get("key" + std::to_string(i)), "v" + std::to_string(i));
    EXPECT_EQ(dht.getReplica("key" + std::to_string(i), 0),
              "v" + std::to_string(i));
  }
  EXPECT_TRUE(dht.apply("key0", [](std::optional<dht::Value>& v) {
    ASSERT_TRUE(v.has_value());
    *v += "+applied";
  }));
  EXPECT_EQ(dht.get("key0"), "v0+applied");

  std::vector<dht::Key> keys;
  for (int i = 0; i < 20; ++i) keys.push_back("key" + std::to_string(i));
  auto outcomes = dht.multiGet(keys);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok) << keys[i] << ": " << outcomes[i].error;
    ASSERT_TRUE(outcomes[i].value.has_value());
  }
  EXPECT_EQ(dht.size(), 20u);
  EXPECT_EQ(dht.netStats().timeouts, 0u);

  for (Daemon* d : {&a, &b}) {
    const int status = d->stop();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
}

}  // namespace
}  // namespace lht::rpc
