// Tests for the P2P table layer: multi-column secondary indexes over one
// shared DHT, with SQL-flavoured selections.
#include "db/table.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/local_dht.h"
#include "net/sim_network.h"

namespace lht::db {
namespace {

Row makeRow(double price, double rating, const std::string& name) {
  Row r;
  r.values["price"] = price;
  r.values["rating"] = rating;
  r.payload = name;
  return r;
}

Table::Options twoColumnOpts() {
  Table::Options o;
  o.indexedColumns = {"price", "rating"};
  o.index.thetaSplit = 8;
  o.index.maxDepth = 24;
  return o;
}

TEST(Normalizer, MapsDomainToUnit) {
  Normalizer n(10.0, 110.0);
  EXPECT_DOUBLE_EQ(n.toKey(10.0), 0.0);
  EXPECT_DOUBLE_EQ(n.toKey(110.0), 1.0);
  EXPECT_DOUBLE_EQ(n.toKey(60.0), 0.5);
  EXPECT_DOUBLE_EQ(n.fromKey(0.5), 60.0);
  EXPECT_THROW(n.toKey(9.0), common::InvariantError);
  EXPECT_THROW(Normalizer(5.0, 5.0), common::InvariantError);
}

TEST(Table, InsertAndSelectOnBothColumns) {
  dht::LocalDht d;
  Table t(d, twoColumnOpts());
  common::Pcg32 rng(1);
  std::vector<Row> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(makeRow(rng.nextDouble(), rng.nextDouble(),
                           "item-" + std::to_string(i)));
    t.insert(rows.back());
  }
  EXPECT_EQ(t.rowCount(), 300u);

  // Range on price: compare against a brute-force filter.
  auto sel = t.selectRange("price", 0.25, 0.5);
  size_t expect = 0;
  for (const auto& r : rows) {
    if (r.values.at("price") >= 0.25 && r.values.at("price") < 0.5) ++expect;
  }
  EXPECT_EQ(sel.rows.size(), expect);
  for (const auto& r : sel.rows) {
    EXPECT_GE(r.values.at("price"), 0.25);
    EXPECT_LT(r.values.at("price"), 0.5);
  }

  // Same data through the rating index.
  auto byRating = t.selectRange("rating", 0.9, 1.0);
  for (const auto& r : byRating.rows) EXPECT_GE(r.values.at("rating"), 0.9);

  // Point select returns the full original row.
  auto eq = t.selectEquals("price", rows[17].values.at("price"));
  ASSERT_FALSE(eq.empty());
  EXPECT_EQ(eq.front(), rows[17]);
}

TEST(Table, MinMaxAreOneLookup) {
  dht::LocalDht d;
  Table t(d, twoColumnOpts());
  common::Pcg32 rng(2);
  double minPrice = 2.0, maxRating = -1.0;
  std::string minName, maxName;
  for (int i = 0; i < 200; ++i) {
    auto row = makeRow(rng.nextDouble(), rng.nextDouble(), "r" + std::to_string(i));
    if (row.values["price"] < minPrice) {
      minPrice = row.values["price"];
      minName = row.payload;
    }
    if (row.values["rating"] > maxRating) {
      maxRating = row.values["rating"];
      maxName = row.payload;
    }
    t.insert(row);
  }
  auto mn = t.selectMin("price");
  auto mx = t.selectMax("rating");
  ASSERT_TRUE(mn.has_value());
  ASSERT_TRUE(mx.has_value());
  EXPECT_EQ(mn->payload, minName);
  EXPECT_EQ(mx->payload, maxName);
}

TEST(Table, EraseWhereCleansEveryIndex) {
  dht::LocalDht d;
  Table t(d, twoColumnOpts());
  t.insert(makeRow(0.2, 0.9, "keep"));
  t.insert(makeRow(0.5, 0.5, "victim"));
  EXPECT_EQ(t.eraseWhere("price", 0.5), 1u);
  EXPECT_EQ(t.rowCount(), 1u);
  EXPECT_TRUE(t.selectEquals("price", 0.5).empty());
  // The rating index must not still carry the victim.
  EXPECT_TRUE(t.selectEquals("rating", 0.5).empty());
  EXPECT_FALSE(t.selectEquals("rating", 0.9).empty());
  EXPECT_EQ(t.eraseWhere("price", 0.5), 0u);
}

TEST(Table, CountRange) {
  dht::LocalDht d;
  Table t(d, twoColumnOpts());
  for (int i = 0; i < 100; ++i) {
    t.insert(makeRow((i + 0.5) / 100.0, 0.5, "r" + std::to_string(i)));
  }
  EXPECT_EQ(t.countRange("price", 0.0, 0.5), 50u);
  EXPECT_EQ(t.countRange("price", 0.25, 0.26), 1u);
  EXPECT_EQ(t.countRange("price", 0.0, 1.0), 100u);
}

TEST(Table, IndexesShareOneDhtWithoutCollisions) {
  // Both columns' bucket trees live in the same DHT, disambiguated by key
  // namespace; structural invariants hold for each independently.
  dht::LocalDht d;
  Table t(d, twoColumnOpts());
  common::Pcg32 rng(3);
  for (int i = 0; i < 200; ++i) {
    t.insert(makeRow(rng.nextDouble(), 0.5 + 0.4 * rng.nextDouble(),
                     "x" + std::to_string(i)));
  }
  EXPECT_GT(t.indexOf("price").meters().maintenance.splits, 0u);
  EXPECT_GT(t.indexOf("rating").meters().maintenance.splits, 0u);
  EXPECT_EQ(t.indexOf("price").recordCount(), 200u);
  EXPECT_EQ(t.indexOf("rating").recordCount(), 200u);
}

TEST(Table, WorksOverChord) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 16;
  dht::ChordDht d(net, copts);
  Table t(d, twoColumnOpts());
  common::Pcg32 rng(4);
  for (int i = 0; i < 150; ++i) {
    t.insert(makeRow(rng.nextDouble(), rng.nextDouble(), "c" + std::to_string(i)));
  }
  EXPECT_EQ(t.selectRange("price", 0.0, 1.0).rows.size(), 150u);
  EXPECT_TRUE(d.checkRing());
}

TEST(Table, RejectsBadUsage) {
  dht::LocalDht d;
  EXPECT_THROW(Table(d, Table::Options{}), common::InvariantError);
  Table t(d, twoColumnOpts());
  EXPECT_THROW(t.selectRange("nope", 0.0, 1.0), common::InvariantError);
  Row incomplete;
  incomplete.values["price"] = 0.5;  // missing "rating"
  EXPECT_THROW(t.insert(incomplete), common::InvariantError);
}

}  // namespace
}  // namespace lht::db
