// Client-side leaf-location cache + decoded-bucket store: warm lookups
// cost one DHT-lookup, stale entries (another client split or merged the
// leaf) self-correct instead of returning wrong answers, and the decoded
// store never changes observable behavior — only wall-clock cost.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/local_dht.h"
#include "dht/pastry.h"
#include "lht/leaf_cache.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"

namespace lht::core {
namespace {

using common::Label;

LhtIndex::Options cachedOpts(common::u32 theta = 8) {
  LhtIndex::Options o;
  o.thetaSplit = theta;
  o.useLeafCache = true;
  o.cacheDecodedBuckets = true;
  return o;
}

std::vector<index::Record> distinctRecords(size_t n, common::u64 seed) {
  common::Pcg32 rng(seed);
  std::set<double> used;
  std::vector<index::Record> recs;
  while (recs.size() < n) {
    const double k = rng.nextDouble();
    if (k <= 0.0 || k >= 1.0 || !used.insert(k).second) continue;
    recs.push_back(index::Record{k, "p" + std::to_string(recs.size())});
  }
  return recs;
}

// ---------------------------------------------------------------------------
// LeafCache in isolation
// ---------------------------------------------------------------------------

TEST(LeafCacheUnit, NoteFindInvalidateRoundTrip) {
  LeafCache cache(8);
  const Label l = *Label::parse("#001");  // [0.25, 0.5)
  cache.note(l, 3);
  auto e = cache.find(0.3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->label, l);
  EXPECT_EQ(e->epoch, 3u);
  EXPECT_FALSE(cache.find(0.7).has_value());
  cache.invalidate(l.interval());
  EXPECT_FALSE(cache.find(0.3).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(LeafCacheUnit, NotingAnAncestorDropsOverlappingEntries) {
  LeafCache cache(8);
  cache.note(*Label::parse("#000"), 1);  // [0, 0.25)
  cache.note(*Label::parse("#001"), 1);  // [0.25, 0.5)
  cache.note(*Label::parse("#01"), 1);   // [0.5, 1)
  EXPECT_EQ(cache.size(), 3u);
  // The two left leaves merged into their parent: noting it must evict both.
  cache.note(*Label::parse("#00"), 2);  // [0, 0.5)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(0.3)->label, *Label::parse("#00"));
}

TEST(LeafCacheUnit, ReGrantPreservesReplicaCursor) {
  // A lease re-grant for the SAME leaf must not reset the rotation
  // cursor: on a transport-timeout substrate the next primary read
  // re-grants immediately, and a reset would pin rotation back onto the
  // holder that just timed out.
  LeafCache cache(8);
  const Label l = *Label::parse("#001");
  cache.note(l, 3, /*leaseExpiresAtMs=*/100);
  cache.bumpReplicaCursor(l);
  cache.bumpReplicaCursor(l);
  ASSERT_EQ(cache.find(0.3)->replicaCursor, 2u);
  cache.note(l, 3, /*leaseExpiresAtMs=*/200);  // renewal, same label
  EXPECT_EQ(cache.find(0.3)->replicaCursor, 2u);
  EXPECT_EQ(cache.find(0.3)->leaseExpiresAtMs, 200u);
  // A different label covering the interval is a different leaf (split or
  // merge happened): its rotation state starts fresh.
  cache.note(*Label::parse("#00"), 4, /*leaseExpiresAtMs=*/300);
  EXPECT_EQ(cache.find(0.3)->replicaCursor, 0u);
}

TEST(LeafCacheUnit, TimeoutDropAccounting) {
  LeafCache cache(8);
  const Label l = *Label::parse("#001");
  cache.note(l, 1, /*leaseExpiresAtMs=*/100);
  EXPECT_EQ(cache.leaseTimeouts(), 0u);
  cache.noteLeaseTimeout();
  cache.dropLease(l.interval());
  EXPECT_EQ(cache.leaseTimeouts(), 1u);
  EXPECT_EQ(cache.leaseDrops(), 1u);
  // Location survives; only the lease is gone.
  auto e = cache.find(0.3);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->leased());
}

TEST(LeafCacheUnit, OverflowFlushesInsteadOfEvicting) {
  LeafCache cache(2);
  cache.note(*Label::parse("#000"), 1);
  cache.note(*Label::parse("#001"), 1);
  cache.note(*Label::parse("#01"), 1);  // third entry: capacity valve fires
  EXPECT_EQ(cache.flushes(), 1u);
  EXPECT_EQ(cache.size(), 1u);  // only the entry noted after the flush
}

// ---------------------------------------------------------------------------
// BucketStore in isolation
// ---------------------------------------------------------------------------

TEST(BucketStoreUnit, RevalidatesByRawBytes) {
  BucketStore store(/*enabled=*/true, 16);
  LeafBucket b;
  b.label = *Label::parse("#001");
  b.records = {{0.3, "x"}};
  const std::string raw = b.serialize();
  auto r1 = store.decode("k", raw);
  auto r2 = store.decode("k", raw);
  EXPECT_EQ(r1.get(), r2.get());  // same shared decoded value, no reparse
  EXPECT_EQ(store.hits(), 1u);

  b.records.push_back({0.31, "y"});
  auto r3 = store.decode("k", b.serialize());  // bytes changed: fresh decode
  EXPECT_NE(r1.get(), r3.get());
  EXPECT_EQ(r3->records.size(), 2u);
  EXPECT_EQ(r1->records.size(), 1u);  // the old shared value is untouched
}

TEST(BucketStoreUnit, DisabledStoreStillDecodes) {
  BucketStore store(/*enabled=*/false, 16);
  LeafBucket b;
  b.label = *Label::parse("#001");
  b.records = {{0.3, "x"}};
  const std::string raw = b.serialize();
  auto r1 = store.decode("k", raw);
  auto r2 = store.decode("k", raw);
  ASSERT_TRUE(r1 && r2);
  EXPECT_NE(r1.get(), r2.get());
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// Cache-enabled index behavior
// ---------------------------------------------------------------------------

TEST(LeafCacheIndex, WarmLookupCostsOneDhtLookup) {
  dht::LocalDht store;
  LhtIndex idx(store, cachedOpts());
  const auto recs = distinctRecords(200, 7);
  for (const auto& r : recs) idx.insert(r);

  // First pass self-corrects any entries staled by the splits above.
  for (const auto& r : recs) ASSERT_TRUE(idx.lookup(r.key).bucket.has_value());
  // Second pass: every lookup is a single validated get.
  for (const auto& r : recs) {
    auto out = idx.lookup(r.key);
    ASSERT_TRUE(out.bucket.has_value());
    EXPECT_TRUE(out.bucket->covers(common::clampToUnit(r.key)));
    EXPECT_EQ(out.stats.dhtLookups, 1u) << "key " << r.key;
  }
  EXPECT_GT(idx.leafCache().hits(), 0u);
  EXPECT_GT(idx.bucketStore().hits(), 0u);
}

TEST(LeafCacheIndex, StaleEntryAcrossForeignSplitSelfCorrects) {
  dht::LocalDht store;
  LhtIndex::Options writerOpts;
  writerOpts.thetaSplit = 8;
  LhtIndex writer(store, writerOpts);
  LhtIndex::Options readerOpts = cachedOpts(8);
  readerOpts.attachExisting = true;
  readerOpts.clientSeed = 99;
  LhtIndex reader(store, readerOpts);

  // Few records: one root leaf, which the reader caches for every key.
  std::map<double, std::string> oracle;
  for (const auto& r : distinctRecords(6, 3)) {
    writer.insert(r);
    oracle[r.key] = r.payload;
  }
  for (const auto& [k, v] : oracle) {
    auto f = reader.find(k);
    ASSERT_TRUE(f.record.has_value());
  }
  EXPECT_GT(reader.leafCache().size(), 0u);

  // The writer splits the tree out from under the reader's cache.
  for (const auto& r : distinctRecords(60, 4)) {
    writer.insert(r);
    oracle[r.key] = r.payload;
  }
  ASSERT_GT(writer.meters().maintenance.splits, 0u);

  // Every lookup still lands on the right record; stale entries are dropped
  // rather than trusted.
  for (const auto& [k, v] : oracle) {
    auto f = reader.find(k);
    ASSERT_TRUE(f.record.has_value()) << "key " << k;
    EXPECT_EQ(f.record->payload, v);
  }
  EXPECT_GE(reader.leafCache().invalidations(), 1u);
}

TEST(LeafCacheIndex, StaleEntryAcrossForeignMergeSelfCorrects) {
  dht::LocalDht store;
  LhtIndex::Options writerOpts;
  writerOpts.thetaSplit = 6;
  LhtIndex writer(store, writerOpts);
  LhtIndex::Options readerOpts = cachedOpts(6);
  readerOpts.attachExisting = true;
  readerOpts.clientSeed = 17;
  LhtIndex reader(store, readerOpts);

  std::map<double, std::string> oracle;
  const auto recs = distinctRecords(40, 11);
  for (const auto& r : recs) {
    writer.insert(r);
    oracle[r.key] = r.payload;
  }
  // Warm the reader's cache against the fully split tree.
  for (const auto& [k, v] : oracle) ASSERT_TRUE(reader.find(k).record.has_value());

  // Drain the tree: merges delete donor leaves the reader has cached.
  for (size_t i = 5; i < recs.size(); ++i) {
    writer.erase(recs[i].key);
    oracle.erase(recs[i].key);
  }
  ASSERT_GT(writer.meters().maintenance.merges, 0u);

  for (const auto& [k, v] : oracle) {
    auto f = reader.find(k);
    ASSERT_TRUE(f.record.has_value()) << "key " << k;
    EXPECT_EQ(f.record->payload, v);
  }
  // Erased keys stay gone through the reader's cache too.
  for (size_t i = 5; i < recs.size(); ++i) {
    EXPECT_FALSE(reader.find(recs[i].key).record.has_value());
  }
  EXPECT_GE(reader.leafCache().invalidations(), 1u);
}

TEST(LeafCacheIndex, OracleDifferentialWithAllFeaturesOn) {
  dht::LocalDht store;
  LhtIndex::Options o = cachedOpts(8);
  o.batchFanout = true;
  LhtIndex idx(store, o);

  std::map<double, std::string> oracle;
  common::Pcg32 rng(21);
  for (int step = 0; step < 500; ++step) {
    const double roll = rng.nextDouble();
    const double key = common::clampToUnit(rng.nextDouble());
    if (roll < 0.55) {
      const std::string payload = "p" + std::to_string(step);
      idx.insert(index::Record{key, payload});
      oracle[key] = payload;
    } else if (roll < 0.75 && !oracle.empty()) {
      auto it = oracle.lower_bound(key);
      if (it == oracle.end()) it = oracle.begin();
      idx.erase(it->first);
      oracle.erase(it);
    } else if (roll < 0.9) {
      auto f = idx.find(key);
      auto it = oracle.find(key);
      EXPECT_EQ(f.record.has_value(), it != oracle.end());
      if (f.record && it != oracle.end()) {
        EXPECT_EQ(f.record->payload, it->second);
      }
    } else {
      const double lo = std::min(key, 0.9);
      const double hi = std::min(1.0, lo + rng.nextDouble() * 0.3);
      auto rr = idx.rangeQuery(lo, hi);
      std::vector<double> expect;
      for (auto it = oracle.lower_bound(lo); it != oracle.end() && it->first < hi; ++it) {
        expect.push_back(it->first);
      }
      ASSERT_EQ(rr.records.size(), expect.size()) << "[" << lo << "," << hi << ")";
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(rr.records[i].key, expect[i]);
      }
    }
  }
  // The features actually ran: cache hits and batch rounds both nonzero.
  EXPECT_GT(idx.leafCache().hits(), 0u);
  EXPECT_GT(store.stats().batchRounds, 0u);
}

// ---------------------------------------------------------------------------
// Read leases (DESIGN.md §13)
// ---------------------------------------------------------------------------

TEST(LeafCacheUnit, LeaseGrantRotateAndDropKeepLocation) {
  LeafCache cache(8);
  const Label l = *Label::parse("#001");  // [0.25, 0.5)

  // A plain note is a location only; a note with an expiry grants a lease.
  cache.note(l, 3);
  EXPECT_FALSE(cache.find(0.3)->leased());
  cache.note(l, 3, /*leaseExpiresAtMs=*/500);
  ASSERT_TRUE(cache.find(0.3)->leased());
  EXPECT_EQ(cache.find(0.3)->leaseExpiresAtMs, 500u);

  // The rotation cursor post-increments per read turn (find() never
  // advances it); a label with no entry reports slot 0 — the caller's
  // read then revalidates.
  EXPECT_EQ(cache.bumpReplicaCursor(l), 0u);
  EXPECT_EQ(cache.bumpReplicaCursor(l), 1u);
  EXPECT_EQ(cache.bumpReplicaCursor(l), 2u);
  EXPECT_EQ(cache.bumpReplicaCursor(*Label::parse("#01")), 0u);

  // dropLease revokes the lease but keeps the location: the leaf did not
  // move just because a replica holder died.
  cache.dropLease(l.interval());
  ASSERT_TRUE(cache.find(0.3).has_value());
  EXPECT_FALSE(cache.find(0.3)->leased());
  EXPECT_EQ(cache.leaseDrops(), 1u);

  // Served-read accounting is explicit and separate.
  cache.notePrimaryServed();
  cache.noteLeaseServed();
  cache.noteLeaseServed();
  cache.noteLeaseStale();
  cache.noteLeaseExpired();
  EXPECT_EQ(cache.primaryHits(), 1u);
  EXPECT_EQ(cache.leaseHits(), 2u);
  EXPECT_EQ(cache.leaseStale(), 1u);
  EXPECT_EQ(cache.leaseExpired(), 1u);
}

LhtIndex::Options leasedOpts(common::u32 theta = 16) {
  LhtIndex::Options o = cachedOpts(theta);
  o.leasedReads = true;
  o.leaseTtlMs = 60'000;
  return o;
}

TEST(LeafCacheIndex, LeaseHitsCountedSeparatelyFromPrimaryHits) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 8;
  copts.seed = 9;
  copts.replication = 2;  // fanout 1: turns alternate replica / primary
  dht::ChordDht chord(net, copts);
  LhtIndex idx(chord, leasedOpts());
  const auto recs = distinctRecords(64, 21);
  for (const auto& r : recs) idx.insert(r);

  // Warm pass: primary reads re-anchor every leaf's entry at the current
  // epoch and grant leases. (During the inserts above, each insert bumps
  // its leaf's epoch ahead of the client's cached lease, so some earlier
  // replica turns legitimately went stale — cumulative counters include
  // those.)
  for (const auto& r : recs) ASSERT_TRUE(idx.find(r.key).record.has_value());
  const common::u64 primaryBefore = idx.leafCache().primaryHits();
  const common::u64 leaseBefore = idx.leafCache().leaseHits();
  const common::u64 staleBefore = idx.leafCache().leaseStale();
  const common::u64 dropsBefore = idx.leafCache().leaseDrops();
  for (int round = 0; round < 4; ++round) {
    for (const auto& r : recs) {
      ASSERT_TRUE(idx.find(r.key).record.has_value());
    }
  }
  const auto& cache = idx.leafCache();
  EXPECT_GT(cache.leaseHits(), leaseBefore);
  EXPECT_GT(cache.primaryHits(), primaryBefore);
  // Every location-cache hit resolved to exactly one of the two buckets.
  EXPECT_LE(cache.leaseHits() + cache.primaryHits(), cache.hits());
  // Read-only traffic: epochs never moved, so no lease went stale and
  // none was dropped during the rotation rounds.
  EXPECT_EQ(cache.leaseStale(), staleBefore);
  EXPECT_EQ(cache.leaseDrops(), dropsBefore);
}

TEST(LeafCacheIndex, DeadReplicaHolderDropsLeaseNotLocation) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 8;
  copts.seed = 4;
  copts.replication = 3;
  dht::ChordDht chord(net, copts);
  LhtIndex idx(chord, leasedOpts());
  const auto recs = distinctRecords(48, 33);
  for (const auto& r : recs) idx.insert(r);
  const double hotKey = recs[0].key;
  ASSERT_TRUE(idx.find(hotKey).record.has_value());  // location + lease

  // Crash the first replica holder of the hot leaf (its owner's first
  // distinct ring successor — virtualNodes defaults to 1).
  const std::string leafKey = idx.lookup(hotKey).dhtKey;
  const common::u64 ownerId = chord.ownerOf(leafKey);
  const auto ids = chord.nodeIds();
  auto it = std::upper_bound(ids.begin(), ids.end(), ownerId);
  bool crashed = false;
  for (size_t probe = 0; probe + 1 < ids.size() && !crashed; ++probe) {
    if (it == ids.end()) it = ids.begin();
    const common::u64 victim = *it;
    ++it;
    if (victim == ownerId || chord.crashWouldLoseData(victim)) continue;
    chord.crash(victim);
    crashed = true;
  }
  ASSERT_TRUE(crashed);

  // Reads keep succeeding: a replica turn that hits the dark holder
  // drops the lease (not the location) and the primary serves instead.
  const common::u64 missesBefore = idx.leafCache().misses();
  for (int i = 0; i < 12; ++i) {
    auto r = idx.find(hotKey);
    ASSERT_TRUE(r.record.has_value()) << "read " << i << " failed";
    EXPECT_EQ(r.record->payload, recs[0].payload);
  }
  EXPECT_GT(idx.leafCache().leaseDrops(), 0u);
  // The location survived every drop: no full binary-search re-resolve
  // was ever needed (misses only grow when the location is gone).
  EXPECT_EQ(idx.leafCache().misses(), missesBefore);
}

// On substrates without replica-read support (Kademlia, Pastry, CAN keep
// replicas for durability but expose no getReplica path), enabling
// leasedReads must be safely inert: replicaFanout() == 0 means no lease
// is ever granted and every read is a correct primary read.
TEST(LeafCacheIndex, LeasesSafelyInertWithoutReplicaReadSupport) {
  const auto exercise = [](dht::Dht& d) {
    ASSERT_EQ(d.replicaFanout(), 0u);
    LhtIndex idx(d, leasedOpts());
    const auto recs = distinctRecords(48, 55);
    for (const auto& r : recs) idx.insert(r);
    for (int round = 0; round < 2; ++round) {
      for (const auto& r : recs) {
        auto res = idx.find(r.key);
        ASSERT_TRUE(res.record.has_value());
        EXPECT_EQ(res.record->payload, r.payload);
      }
    }
    EXPECT_EQ(idx.leafCache().leaseHits(), 0u);
    EXPECT_EQ(idx.leafCache().leaseDrops(), 0u);
    EXPECT_GT(idx.leafCache().primaryHits(), 0u);
  };
  {
    net::SimNetwork net;
    dht::KademliaDht::Options o;
    o.initialPeers = 8;
    o.replication = 2;
    dht::KademliaDht d(net, o);
    exercise(d);
  }
  {
    net::SimNetwork net;
    dht::PastryDht::Options o;
    o.initialPeers = 8;
    o.replication = 2;
    dht::PastryDht d(net, o);
    exercise(d);
  }
  {
    net::SimNetwork net;
    dht::CanDht::Options o;
    o.initialPeers = 8;
    o.replication = 2;
    dht::CanDht d(net, o);
    exercise(d);
  }
}

}  // namespace
}  // namespace lht::core
