// Tests for the Z-order multi-dimensional extension (paper footnote 1).
#include "lht/zorder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dht/local_dht.h"
#include "common/random.h"

namespace lht::core {
namespace {

TEST(ZOrder, EncodeDecodeRoundTripOnGrid) {
  const common::u32 bits = 6;
  for (common::u32 xi = 0; xi < (1u << bits); xi += 5) {
    for (common::u32 yi = 0; yi < (1u << bits); yi += 7) {
      const double x = static_cast<double>(xi) / (1 << bits);
      const double y = static_cast<double>(yi) / (1 << bits);
      auto [dx, dy] = zDecode(zEncode(x, y, bits), bits);
      EXPECT_DOUBLE_EQ(dx, x);
      EXPECT_DOUBLE_EQ(dy, y);
    }
  }
}

TEST(ZOrder, LocalityOfFirstBits) {
  // Points in the same quadrant share the leading two z-bits: their z keys
  // fall in the same quarter of [0,1).
  EXPECT_LT(zEncode(0.1, 0.2, 10), 0.25);       // (lo, lo) quadrant -> 00
  EXPECT_GE(zEncode(0.9, 0.9, 10), 0.75);       // (hi, hi) -> 11
  const double z = zEncode(0.1, 0.9, 10);       // (lo-x, hi-y) -> 01
  EXPECT_GE(z, 0.25);
  EXPECT_LT(z, 0.5);
}

TEST(ZOrder, RangesCoverExactlyTheRectCells) {
  common::Pcg32 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    Rect rect;
    rect.xlo = rng.nextDouble() * 0.8;
    rect.xhi = rect.xlo + 0.05 + rng.nextDouble() * 0.15;
    rect.ylo = rng.nextDouble() * 0.8;
    rect.yhi = rect.ylo + 0.05 + rng.nextDouble() * 0.15;
    const common::u32 bits = 6;
    auto ranges = zRangesForRect(rect, bits, /*maxRanges=*/10000);
    // Property: a grid point is inside the rect iff its z key is covered.
    for (common::u32 xi = 0; xi < (1u << bits); ++xi) {
      for (common::u32 yi = 0; yi < (1u << bits); ++yi) {
        const double x = (xi + 0.5) / (1 << bits);
        const double y = (yi + 0.5) / (1 << bits);
        const double z = zEncode(x, y, bits);
        const bool covered = std::any_of(ranges.begin(), ranges.end(),
                                         [&](const auto& iv) { return iv.contains(z); });
        const bool cellOverlapsRect =
            rect.xlo < (xi + 1.0) / (1 << bits) && x - 0.5 / (1 << bits) < rect.xhi &&
            rect.ylo < (yi + 1.0) / (1 << bits) && y - 0.5 / (1 << bits) < rect.yhi;
        ASSERT_EQ(covered, cellOverlapsRect)
            << "cell (" << xi << "," << yi << ") trial " << trial;
      }
    }
  }
}

TEST(ZOrder, RangeBudgetCoarsensButStillCovers) {
  Rect rect{0.11, 0.37, 0.52, 0.81};
  auto fine = zRangesForRect(rect, 8, 100000);
  auto coarse = zRangesForRect(rect, 8, 8);
  EXPECT_LE(coarse.size(), fine.size());
  // Every fine range must be inside some coarse range (over-approximation).
  for (const auto& f : fine) {
    EXPECT_TRUE(std::any_of(coarse.begin(), coarse.end(),
                            [&](const auto& c) { return f.subsetOf(c); }))
        << f.str();
  }
}

TEST(Lht2dIndex, RectQueryMatchesBruteForce) {
  dht::LocalDht d;
  Lht2dIndex::Options o;
  o.lht.thetaSplit = 8;
  o.lht.maxDepth = 24;
  o.bitsPerDim = 10;
  Lht2dIndex idx(d, o);

  common::Pcg32 rng(9);
  std::vector<Point2D> points;
  for (int i = 0; i < 600; ++i) {
    Point2D p{rng.nextDouble(), rng.nextDouble(), "p" + std::to_string(i)};
    points.push_back(p);
    idx.insert(p);
  }
  for (int q = 0; q < 30; ++q) {
    Rect rect;
    rect.xlo = rng.nextDouble() * 0.7;
    rect.xhi = rect.xlo + 0.05 + rng.nextDouble() * 0.25;
    rect.ylo = rng.nextDouble() * 0.7;
    rect.yhi = rect.ylo + 0.05 + rng.nextDouble() * 0.25;
    auto res = idx.rectQuery(rect);
    size_t expect = 0;
    for (const auto& p : points) {
      if (rect.contains(p.x, p.y)) ++expect;
    }
    ASSERT_EQ(res.points.size(), expect) << q;
    EXPECT_GE(res.curveRanges, 1u);
    for (const auto& p : res.points) EXPECT_TRUE(rect.contains(p.x, p.y));
  }
}

TEST(Lht2dIndex, KnnMatchesBruteForce) {
  dht::LocalDht d;
  Lht2dIndex::Options o;
  o.lht.thetaSplit = 8;
  o.lht.maxDepth = 24;
  o.bitsPerDim = 10;
  Lht2dIndex idx(d, o);

  common::Pcg32 rng(21);
  std::vector<Point2D> points;
  for (int i = 0; i < 500; ++i) {
    Point2D p{rng.nextDouble(), rng.nextDouble(), "p" + std::to_string(i)};
    points.push_back(p);
    idx.insert(p);
  }
  for (int q = 0; q < 25; ++q) {
    const double x = rng.nextDouble();
    const double y = rng.nextDouble();
    for (size_t k : {1u, 5u, 17u}) {
      auto res = idx.knnQuery(x, y, k);
      ASSERT_EQ(res.points.size(), k) << q;
      // Brute-force the same k nearest.
      auto byDist = points;
      std::sort(byDist.begin(), byDist.end(), [&](const auto& a, const auto& b) {
        const double da = (a.x - x) * (a.x - x) + (a.y - y) * (a.y - y);
        const double db = (b.x - x) * (b.x - x) + (b.y - y) * (b.y - y);
        return da < db;
      });
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(res.points[i].payload, byDist[i].payload)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Lht2dIndex, KnnEdgeCases) {
  dht::LocalDht d;
  Lht2dIndex::Options o;
  o.lht.thetaSplit = 8;
  o.bitsPerDim = 8;
  Lht2dIndex idx(d, o);
  EXPECT_TRUE(idx.knnQuery(0.5, 0.5, 0).points.empty());
  // k exceeding the population returns everything.
  idx.insert({0.1, 0.1, "a"});
  idx.insert({0.9, 0.9, "b"});
  auto res = idx.knnQuery(0.0, 0.0, 10);
  ASSERT_EQ(res.points.size(), 2u);
  EXPECT_EQ(res.points[0].payload, "a");
  EXPECT_EQ(res.points[1].payload, "b");
}

TEST(ZOrder, RejectsBadInput) {
  EXPECT_THROW(zEncode(1.5, 0.5, 8), common::InvariantError);
  EXPECT_THROW(zEncode(0.5, 0.5, 0), common::InvariantError);
  EXPECT_THROW(zRangesForRect(Rect{0.5, 0.5, 0.1, 0.2}, 8), common::InvariantError);
}

}  // namespace
}  // namespace lht::core
