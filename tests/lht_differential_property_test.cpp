// Property-based differential test: LhtIndex with EVERY opt-in feature
// enabled (leaf cache, batched fan-out, crash-consistent splits, decoded-
// bucket cache) behind a fault-injecting decorator stack must stay
// observably equivalent to the in-memory ReferenceIndex on random mixed
// workloads. Seeds are PCG32-derived and printed on failure so any
// divergence replays deterministically.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "workload/trace.h"

namespace lht {
namespace {

using common::u64;
using workload::Operation;

std::string describeKeys(const index::RangeResult& r) {
  std::ostringstream os;
  for (const auto& rec : r.records) os << rec.key << " ";
  return os.str();
}

void runSeed(u64 seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun: LhtDifferentialProperty with this seed)");

  dht::LocalDht store;
  dht::FlakyDht flaky(store, 0.02, seed ^ 0xF1A6u);
  dht::LostReplyDht lossy(flaky, 0.05, seed ^ 0x10057u);
  dht::RetryingDht retrying(lossy, /*maxAttempts=*/16);

  core::LhtIndex::Options opts;
  opts.thetaSplit = 8;  // small leaves: plenty of splits and merges
  opts.useLeafCache = true;
  opts.batchFanout = true;
  opts.crashConsistentSplits = true;
  opts.cacheDecodedBuckets = true;
  opts.clientSeed = seed;
  core::LhtIndex idx(retrying, opts);
  index::ReferenceIndex ref;

  // Bulk phase: exercise the batched insert path with a seed dataset.
  workload::TraceMix bulkMix;
  bulkMix.insert = 1.0;
  bulkMix.erase = bulkMix.find = bulkMix.range = 0.0;
  std::vector<index::Record> bulk;
  for (const Operation& op :
       workload::makeMixedTrace(workload::Distribution::Uniform, 64, bulkMix,
                                seed ^ 0xB01Du)) {
    bulk.push_back(index::Record{op.key, op.payload});
  }
  idx.insertBatch(bulk);
  for (const auto& r : bulk) ref.insert(r);

  // Mixed phase: one op at a time, compared after every step.
  workload::TraceMix mix;
  mix.insert = 0.45;
  mix.erase = 0.20;
  mix.find = 0.20;
  mix.range = 0.10;
  mix.minmax = 0.05;
  const auto ops = workload::makeMixedTrace(workload::Distribution::Uniform,
                                            500, mix, seed);
  for (size_t i = 0; i < ops.size(); ++i) {
    SCOPED_TRACE("op=" + std::to_string(i));
    const Operation& op = ops[i];
    switch (op.kind) {
      case Operation::Kind::Insert: {
        idx.insert(index::Record{op.key, op.payload});
        ref.insert(index::Record{op.key, op.payload});
        break;
      }
      case Operation::Kind::Erase: {
        auto mine = idx.erase(op.key);
        auto oracle = ref.erase(op.key);
        EXPECT_EQ(mine.ok, oracle.ok) << "erase " << op.key;
        break;
      }
      case Operation::Kind::Find: {
        auto mine = idx.find(op.key);
        auto oracle = ref.find(op.key);
        ASSERT_EQ(mine.record.has_value(), oracle.record.has_value())
            << "find " << op.key;
        if (mine.record) {
          EXPECT_EQ(mine.record->key, oracle.record->key);
          EXPECT_EQ(mine.record->payload, oracle.record->payload);
        }
        break;
      }
      case Operation::Kind::Range: {
        auto mine = idx.rangeQuery(op.key, op.hi);
        auto oracle = ref.rangeQuery(op.key, op.hi);
        ASSERT_EQ(mine.records.size(), oracle.records.size())
            << "range [" << op.key << ", " << op.hi << ") mine: "
            << describeKeys(mine) << "oracle: " << describeKeys(oracle);
        for (size_t k = 0; k < mine.records.size(); ++k) {
          EXPECT_EQ(mine.records[k].key, oracle.records[k].key) << k;
        }
        break;
      }
      case Operation::Kind::Min:
      case Operation::Kind::Max: {
        const bool isMin = op.kind == Operation::Kind::Min;
        auto mine = isMin ? idx.minRecord() : idx.maxRecord();
        auto oracle = isMin ? ref.minRecord() : ref.maxRecord();
        ASSERT_EQ(mine.record.has_value(), oracle.record.has_value());
        if (mine.record) EXPECT_EQ(mine.record->key, oracle.record->key);
        break;
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(idx.recordCount(), ref.recordCount());

  // Faults must actually have fired for the run to mean anything.
  EXPECT_GT(flaky.injectedFailures() + lossy.injectedLostReplies(), 0u);
}

TEST(LhtDifferentialProperty, AllFeaturesOnUnderFaultsMatchesReference) {
  // PCG32-derived seed schedule: deterministic, and each seed is printed by
  // SCOPED_TRACE on any failure.
  common::Pcg32 seeder(0xD1FFu);
  for (int run = 0; run < 8; ++run) {
    runSeed(seeder.next64());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace lht
