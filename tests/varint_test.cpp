#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/random.h"

namespace lht::common {
namespace {

u64 roundTrip(u64 v) {
  std::string buf;
  appendVarint(buf, v);
  EXPECT_EQ(buf.size(), varintSize(v));
  size_t pos = 0;
  auto back = decodeVarint(buf, &pos);
  EXPECT_TRUE(back.has_value());
  EXPECT_EQ(pos, buf.size());
  return *back;
}

TEST(Varint, KnownEncodings) {
  std::string buf;
  appendVarint(buf, 0);
  EXPECT_EQ(buf, std::string(1, '\0'));
  buf.clear();
  appendVarint(buf, 127);
  EXPECT_EQ(buf, "\x7f");
  buf.clear();
  appendVarint(buf, 128);
  EXPECT_EQ(buf, std::string("\x80\x01", 2));
  buf.clear();
  appendVarint(buf, 300);
  EXPECT_EQ(buf, std::string("\xac\x02", 2));
}

TEST(Varint, RoundTripBoundaries) {
  // All the 7-bit group boundaries, +/- 1.
  for (int shift = 0; shift <= 63; shift += 7) {
    const u64 v = u64{1} << shift;
    EXPECT_EQ(roundTrip(v - 1), v - 1);
    EXPECT_EQ(roundTrip(v), v);
    EXPECT_EQ(roundTrip(v + 1), v + 1);
  }
  EXPECT_EQ(roundTrip(std::numeric_limits<u64>::max()),
            std::numeric_limits<u64>::max());
}

TEST(Varint, RoundTripRandom) {
  Pcg32 rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Mix widths: pure 32-bit draws rarely exercise long encodings.
    u64 v = (u64{rng.next()} << 32) | rng.next();
    v >>= rng.below(64);
    EXPECT_EQ(roundTrip(v), v);
  }
}

TEST(Varint, SizeMonotonic) {
  EXPECT_EQ(varintSize(0), 1u);
  EXPECT_EQ(varintSize(127), 1u);
  EXPECT_EQ(varintSize(128), 2u);
  EXPECT_EQ(varintSize(std::numeric_limits<u64>::max()), kMaxVarintBytes);
}

TEST(Varint, TruncatedFails) {
  std::string buf;
  appendVarint(buf, u64{1} << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    EXPECT_FALSE(decodeVarint(std::string_view(buf).substr(0, cut), &pos));
    EXPECT_EQ(pos, 0u) << "failed decode must not advance pos";
  }
}

TEST(Varint, OverlongRejected) {
  // 0 encoded in two bytes (continuation + zero payload) is non-canonical.
  const std::string overlong("\x80\x00", 2);
  size_t pos = 0;
  EXPECT_FALSE(decodeVarint(overlong, &pos));
  // 11 continuation bytes exceed the 10-byte cap.
  std::string tooLong(11, '\x80');
  pos = 0;
  EXPECT_FALSE(decodeVarint(tooLong, &pos));
  // Max value's encoding is accepted; a 10th byte > 1 overflows u64.
  std::string maxEnc;
  appendVarint(maxEnc, std::numeric_limits<u64>::max());
  ASSERT_EQ(maxEnc.size(), kMaxVarintBytes);
  pos = 0;
  EXPECT_TRUE(decodeVarint(maxEnc, &pos));
  maxEnc.back() = static_cast<char>(maxEnc.back() | 0x02);
  pos = 0;
  EXPECT_FALSE(decodeVarint(maxEnc, &pos));
}

TEST(Varint, DecodeConsumesExactly) {
  std::string buf;
  appendVarint(buf, 5);
  appendVarint(buf, 1000);
  appendVarint(buf, 0);
  buf += "tail";
  size_t pos = 0;
  EXPECT_EQ(decodeVarint(buf, &pos), 5u);
  EXPECT_EQ(decodeVarint(buf, &pos), 1000u);
  EXPECT_EQ(decodeVarint(buf, &pos), 0u);
  EXPECT_EQ(buf.substr(pos), "tail");
}

TEST(Varint, CodecIntegration) {
  Encoder e;
  e.putVarint(0);
  e.putVarint(300);
  e.putVarBytes("hello");
  e.putVarBytes("");
  const std::string bytes = std::move(e).take();

  Decoder d(bytes);
  EXPECT_EQ(d.getVarint(), 0u);
  EXPECT_EQ(d.getVarint(), 300u);
  EXPECT_EQ(d.getVarBytes(), "hello");
  EXPECT_EQ(d.getVarBytes(), "");
  EXPECT_TRUE(d.atEnd());
}

TEST(Varint, CodecVarBytesTruncated) {
  Encoder e;
  e.putVarBytes("payload");
  const std::string bytes = std::move(e).take();
  // Length varint claims 7 bytes; give it fewer.
  Decoder d(std::string_view(bytes).substr(0, bytes.size() - 2));
  EXPECT_FALSE(d.getVarBytes().has_value());
}

}  // namespace
}  // namespace lht::common
