#include "store/durable_engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "dht/local_dht.h"
#include "store/io_file.h"
#include "store/snapshot.h"

namespace lht::store {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "lht_durable_" + name;
  fs::remove_all(dir);
  return dir;
}

DurableOptions optionsFor(const std::string& dir) {
  DurableOptions o;
  o.dir = dir;
  return o;
}

TEST(DurableEngine, BehavesLikeMemEngine) {
  const auto dir = freshDir("basic");
  DurableEngine e(optionsFor(dir));
  EXPECT_STREQ(e.name(), "durable");
  EXPECT_FALSE(e.get("k").has_value());
  e.put("k", "v1");
  EXPECT_EQ(e.get("k"), "v1");
  e.put("k", "v2");
  EXPECT_EQ(e.get("k"), "v2");
  EXPECT_FALSE(e.apply("fresh", [](std::optional<Value>& v) { v = "new"; }));
  EXPECT_TRUE(e.apply("fresh", [](std::optional<Value>& v) { *v += "!"; }));
  EXPECT_EQ(e.get("fresh"), "new!");
  EXPECT_TRUE(e.erase("k"));
  EXPECT_FALSE(e.erase("k"));
  EXPECT_EQ(e.size(), 1u);
  e.clear();
  EXPECT_EQ(e.size(), 0u);
}

TEST(DurableEngine, SurvivesRestartFromWalAlone) {
  const auto dir = freshDir("restart_wal");
  {
    DurableEngine e(optionsFor(dir));
    for (int i = 0; i < 100; ++i) {
      e.put("key-" + std::to_string(i), "value-" + std::to_string(i));
    }
    e.erase("key-7");
    e.apply("key-8", [](std::optional<Value>& v) { *v += "-edited"; });
    e.sync();
  }
  DurableEngine e(optionsFor(dir));
  EXPECT_EQ(e.size(), 99u);
  EXPECT_FALSE(e.get("key-7").has_value());
  EXPECT_EQ(e.get("key-8"), "value-8-edited");
  EXPECT_EQ(e.get("key-42"), "value-42");
  EXPECT_EQ(e.recoveryInfo().snapshotLsn, 0u);
  EXPECT_GE(e.recoveryInfo().replayedRecords, 100u);
}

TEST(DurableEngine, CompactionSnapshotsAndTruncatesLog) {
  const auto dir = freshDir("compact");
  {
    DurableEngine e(optionsFor(dir));
    for (int i = 0; i < 50; ++i) e.put("a" + std::to_string(i), "1");
    e.compact();
    for (int i = 0; i < 20; ++i) e.put("b" + std::to_string(i), "2");
    e.erase("a0");
    e.sync();
    // One snapshot, and only the post-compaction segment.
    EXPECT_EQ(listSnapshots(dir).size(), 1u);
    EXPECT_EQ(listFiles(dir, "wal-", ".log").size(), 1u);
  }
  DurableEngine e(optionsFor(dir));
  EXPECT_EQ(e.size(), 69u);
  EXPECT_FALSE(e.get("a0").has_value());
  EXPECT_EQ(e.get("a49"), "1");
  EXPECT_EQ(e.get("b19"), "2");
  EXPECT_GT(e.recoveryInfo().snapshotLsn, 0u);
  // Only the 21 post-snapshot records replay.
  EXPECT_EQ(e.recoveryInfo().replayedRecords, 21u);
}

TEST(DurableEngine, ClearIsLogged) {
  const auto dir = freshDir("clear");
  {
    DurableEngine e(optionsFor(dir));
    e.put("gone", "x");
    e.clear();
    e.put("kept", "y");
    e.sync();
  }
  DurableEngine e(optionsFor(dir));
  EXPECT_EQ(e.size(), 1u);
  EXPECT_FALSE(e.get("gone").has_value());
  EXPECT_EQ(e.get("kept"), "y");
}

TEST(DurableEngine, TornTailIsDroppedOnRecovery) {
  const auto dir = freshDir("torn");
  {
    DurableEngine e(optionsFor(dir));
    e.put("a", "1");
    e.put("b", "2");
    e.sync();
  }
  const auto segs = listFiles(dir, "wal-", ".log");
  ASSERT_FALSE(segs.empty());
  {
    std::ofstream out(dir + "/" + segs.back(),
                      std::ios::binary | std::ios::app);
    out.write("\x30\x00\x00\x00partial-record", 18);
  }
  DurableEngine e(optionsFor(dir));
  EXPECT_EQ(e.size(), 2u);
  EXPECT_EQ(e.get("a"), "1");
  EXPECT_GT(e.recoveryInfo().tornBytesTruncated, 0u);
}

TEST(DurableEngine, FallsBackToOlderSnapshotWhenNewestIsCorrupt) {
  const auto dir = freshDir("fallback");
  u64 goodLsn = 0;
  {
    DurableEngine e(optionsFor(dir));
    for (int i = 0; i < 30; ++i) e.put("k" + std::to_string(i), "v");
    e.compact();
    goodLsn = e.appendedLsn();
    e.put("after", "snapshot");
    e.sync();
  }
  // Plant a "newer" snapshot that is pure garbage — as if a later
  // compaction crashed after publishing a damaged file but before cleanup.
  {
    std::ofstream out(dir + "/" + snapshotName(goodLsn + 1000),
                      std::ios::binary);
    out << "not a snapshot";
  }
  DurableEngine e(optionsFor(dir));
  EXPECT_TRUE(e.recoveryInfo().usedFallbackSnapshot);
  EXPECT_EQ(e.recoveryInfo().snapshotLsn, goodLsn);
  EXPECT_EQ(e.size(), 31u);
  EXPECT_EQ(e.get("after"), "snapshot");
  EXPECT_EQ(e.get("k12"), "v");
}

TEST(DurableEngine, SyncEachCommitAdvancesDurableLsnPerOp) {
  const auto dir = freshDir("synceach");
  DurableOptions o = optionsFor(dir);
  o.syncEachCommit = true;
  DurableEngine e(o);
  e.put("a", "1");
  EXPECT_EQ(e.durableLsn(), e.appendedLsn());
  e.put("b", "2");
  EXPECT_EQ(e.durableLsn(), e.appendedLsn());
}

TEST(DurableEngine, GroupCommitUnderConcurrentWriters) {
  const auto dir = freshDir("group");
  DurableOptions o = optionsFor(dir);
  o.syncEachCommit = true;
  DurableEngine e(o);
  constexpr int kThreads = 8;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        e.put("t" + std::to_string(t) + "-" + std::to_string(i), "v");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(e.size(), static_cast<size_t>(kThreads * kOps));
  EXPECT_EQ(e.durableLsn(), e.appendedLsn());
}

// The ISSUE's "records exceeding RAM" path: with a tiny spill threshold
// every value lives on disk (WAL segment, then snapshot) and is served
// through the mmap reader; the inline table only holds slot refs.
TEST(DurableEngine, SpilledValuesAreServedViaMmapAcrossCompactionAndRestart) {
  const auto dir = freshDir("spill");
  DurableOptions o = optionsFor(dir);
  o.spillValueBytes = 64;
  constexpr int kRecords = 300;  // far above any snapshot/spill threshold
  auto bigValue = [](int i) {
    return "payload-" + std::to_string(i) + "-" +
           std::string(100 + (i % 7), static_cast<char>('a' + i % 26));
  };
  {
    DurableEngine e(o);
    for (int i = 0; i < kRecords; ++i) {
      e.put("big-" + std::to_string(i), bigValue(i));
    }
    e.put("small", "tiny");  // below the threshold: stays inline
    EXPECT_EQ(e.spilledCount(), static_cast<size_t>(kRecords));
    // Served back from the WAL segments through the mmap reader.
    for (int i = 0; i < kRecords; i += 37) {
      EXPECT_EQ(e.get("big-" + std::to_string(i)), bigValue(i));
    }
    // Compaction re-homes every spilled value into the snapshot file.
    e.compact();
    EXPECT_EQ(e.spilledCount(), static_cast<size_t>(kRecords));
    for (int i = 0; i < kRecords; i += 23) {
      EXPECT_EQ(e.get("big-" + std::to_string(i)), bigValue(i));
    }
    // apply() must materialize the spilled value for its mutator.
    e.apply("big-0", [&](std::optional<Value>& v) {
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, bigValue(0));
      *v += "-mutated";
    });
  }
  DurableEngine e(o);
  EXPECT_EQ(e.size(), static_cast<size_t>(kRecords) + 1);
  EXPECT_EQ(e.spilledCount(), static_cast<size_t>(kRecords));
  EXPECT_EQ(e.get("big-0"), bigValue(0) + "-mutated");
  EXPECT_EQ(e.get("small"), "tiny");
  for (int i = 1; i < kRecords; i += 41) {
    EXPECT_EQ(e.get("big-" + std::to_string(i)), bigValue(i));
  }
  // forEach materializes spilled values too (consistent cut).
  size_t seen = 0;
  e.forEach([&](const Key&, const Value& v) {
    seen += 1;
    EXPECT_FALSE(v.empty());
  });
  EXPECT_EQ(seen, static_cast<size_t>(kRecords) + 1);
}

TEST(LocalDhtDurable, EnginePlugsIntoSubstrateAndSurvivesRestart) {
  const auto dir = freshDir("localdht");
  {
    dht::LocalDht d(makeDurableEngine(optionsFor(dir)));
    d.put("name(x)", "bucket-bytes");
    d.apply("name(x)", [](std::optional<dht::Value>& v) { *v += "!"; });
    d.storeDirect("root", "seed");
    d.syncStorage();     // Dht-level durability barrier
    d.compactStorage();  // Dht-level snapshot + truncate
    EXPECT_EQ(d.size(), 2u);
  }
  dht::LocalDht d(makeDurableEngine(optionsFor(dir)));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.get("name(x)"), "bucket-bytes!");
  EXPECT_EQ(d.get("root"), "seed");
}

}  // namespace
}  // namespace lht::store
