// Exhaustive structural validation: enumerate EVERY full binary partition
// tree up to depth 4 (677 shapes) plus a sample of deeper random trees,
// materialize each directly in a DHT via the naming function, and check
// that lookup, range queries, min/max and the leaf scan are exact on every
// shape. Random-workload tests can miss pathological shapes (lopsided
// chains, single leaves, full trees); enumeration cannot.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "lht/naming.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

using common::Label;

/// Enumerates all full binary trees rooted at "#0" with depth <= maxDepth,
/// invoking fn with each tree's leaf-label set (sorted left to right).
void enumerateTrees(common::u32 maxDepth,
                    const std::function<void(const std::vector<Label>&)>& fn) {
  // shapes(label, d) = all leaf sets of subtrees rooted at `label` with
  // remaining depth d.
  std::function<std::vector<std::vector<Label>>(Label, common::u32)> shapes =
      [&](Label node, common::u32 depth) {
        std::vector<std::vector<Label>> out;
        out.push_back({node});  // node stays a leaf
        if (depth > 0) {
          auto lefts = shapes(node.child(0), depth - 1);
          auto rights = shapes(node.child(1), depth - 1);
          for (const auto& l : lefts) {
            for (const auto& r : rights) {
              std::vector<Label> combined = l;
              combined.insert(combined.end(), r.begin(), r.end());
              out.push_back(std::move(combined));
            }
          }
        }
        return out;
      };
  for (const auto& tree : shapes(Label::root(), maxDepth)) fn(tree);
}

/// Materializes `leaves` as an LHT state: every leaf bucket stored under
/// its name, with two records just inside its interval edges.
struct MaterializedTree {
  dht::LocalDht dht;
  std::unique_ptr<LhtIndex> index;
  std::vector<index::Record> allRecords;

  explicit MaterializedTree(const std::vector<Label>& leaves) {
    index = std::make_unique<LhtIndex>(dht, LhtIndex::Options{
                                                .thetaSplit = 100,
                                                .maxDepth = 20,
                                            });
    for (const Label& leaf : leaves) {
      const auto iv = leaf.interval();
      LeafBucket b{leaf, {}};
      b.records.push_back({iv.lo, "lo@" + leaf.str()});
      b.records.push_back({iv.lo + iv.width() / 2, "mid@" + leaf.str()});
      for (const auto& r : b.records) allRecords.push_back(r);
      // The leftmost leaf's name is "#", overwriting the constructor's
      // bootstrap root bucket — exactly as if the tree had grown to here.
      dht.storeDirect(dhtKeyFor(leaf), b.serialize());
    }
    std::sort(allRecords.begin(), allRecords.end(), index::recordLess);
  }
};

TEST(ExhaustiveTrees, LookupFindsTheCoveringLeafOnEveryShape) {
  size_t treesChecked = 0;
  enumerateTrees(4, [&](const std::vector<Label>& leaves) {
    MaterializedTree t(leaves);
    for (const Label& leaf : leaves) {
      const auto iv = leaf.interval();
      // Probe the interval's left edge, midpoint, and a point near the
      // right edge: the lookup must land exactly on this leaf.
      for (double key : {iv.lo, iv.lo + iv.width() / 2, iv.hi - iv.width() / 4}) {
        auto out = t.index->lookup(key);
        ASSERT_TRUE(out.bucket.has_value())
            << "leaf " << leaf.str() << " key " << key;
        ASSERT_EQ(out.bucket->label, leaf)
            << "leaf " << leaf.str() << " key " << key << " tree #"
            << treesChecked;
        // Binary and linear lookup agree everywhere.
        auto lin = t.index->lookupLinear(key);
        ASSERT_EQ(lin.bucket->label, leaf);
      }
    }
    ++treesChecked;
  });
  EXPECT_EQ(treesChecked, 677u);  // 1 + f(3)^2 with f(d) = 1 + f(d-1)^2
}

TEST(ExhaustiveTrees, LeafScanVisitsEveryLeafInOrder) {
  enumerateTrees(3, [&](const std::vector<Label>& leaves) {
    MaterializedTree t(leaves);
    std::vector<Label> seen;
    t.index->forEachBucket([&](const LeafBucket& b) { seen.push_back(b.label); });
    ASSERT_EQ(seen, leaves);
  });
}

TEST(ExhaustiveTrees, RangeQueriesExactOnEveryShape) {
  enumerateTrees(3, [&](const std::vector<Label>& leaves) {
    MaterializedTree t(leaves);
    // Probe ranges: every pair of 1/8-grid points, covering single-leaf,
    // multi-leaf, full-space, and boundary-aligned ranges.
    for (int a = 0; a < 8; ++a) {
      for (int b = a + 1; b <= 8; ++b) {
        const double lo = a / 8.0;
        const double hi = b / 8.0;
        auto mine = t.index->rangeQuery(lo, hi);
        std::vector<index::Record> expect;
        for (const auto& r : t.allRecords) {
          if (r.key >= lo && r.key < hi) expect.push_back(r);
        }
        ASSERT_EQ(mine.records.size(), expect.size())
            << "[" << lo << "," << hi << ")";
        for (size_t i = 0; i < expect.size(); ++i) {
          ASSERT_EQ(mine.records[i], expect[i]);
        }
        if (mine.stats.bucketsTouched >= 2) {
          ASSERT_LE(mine.stats.dhtLookups, mine.stats.bucketsTouched + 3);
        }
      }
    }
  });
}

TEST(ExhaustiveTrees, MinMaxOnEveryShape) {
  enumerateTrees(3, [&](const std::vector<Label>& leaves) {
    MaterializedTree t(leaves);
    auto mn = t.index->minRecord();
    auto mx = t.index->maxRecord();
    ASSERT_TRUE(mn.record.has_value());
    ASSERT_TRUE(mx.record.has_value());
    EXPECT_EQ(*mn.record, t.allRecords.front());
    EXPECT_EQ(*mx.record, t.allRecords.back());
    EXPECT_EQ(mn.stats.dhtLookups, 1u);
    // Max costs 1 lookup except on the single-leaf tree (fallback to "#").
    EXPECT_LE(mx.stats.dhtLookups, leaves.size() == 1 ? 2u : 1u);
  });
}

TEST(ExhaustiveTrees, DeepRandomChainsResolve) {
  // Deep lopsided chains (the worst case for the binary search bounds):
  // left and right combs plus random zig-zags to depth 18.
  common::Pcg32 rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Label> leaves;
    Label spine = Label::root();
    const common::u32 depth = 10 + rng.below(8);
    while (spine.length() < depth) {
      int bit = trial == 0 ? 0 : (trial == 1 ? 1 : static_cast<int>(rng.below(2)));
      leaves.push_back(spine.child(1 - bit));  // the off-spine leaf
      spine = spine.child(bit);
    }
    leaves.push_back(spine);
    std::sort(leaves.begin(), leaves.end());
    MaterializedTree t(leaves);
    for (const Label& leaf : leaves) {
      const auto iv = leaf.interval();
      auto out = t.index->lookup(iv.lo + iv.width() / 2);
      ASSERT_TRUE(out.bucket.has_value());
      ASSERT_EQ(out.bucket->label, leaf) << trial;
    }
  }
}

}  // namespace
}  // namespace lht::core
