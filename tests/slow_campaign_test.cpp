// Full-size crash campaigns, gated behind the `slow` ctest configuration
// (plain `ctest` skips them; `ctest -C slow` or scripts/check.sh runs
// them). Tier-1 keeps fast slices of both campaigns for every-build signal.
#include <gtest/gtest.h>

#include <filesystem>

#include "sim/fault_campaign.h"
#include "sim/restart_campaign.h"
#include "sim/skew_campaign.h"
#include "sim/storm_campaign.h"

namespace lht::sim {
namespace {

TEST(SlowRestartCampaign, SixteenSeedsEveryBoundary) {
  RestartCampaignConfig cfg;  // defaults: 16 seeds, kills everywhere
  cfg.scratchRoot =
      (std::filesystem::temp_directory_path() / "lht_restart_slow").string();
  ASSERT_GE(cfg.seeds, 16u);

  const RestartCampaignReport report = runRestartCampaign(cfg);

  for (const auto& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());

  // The full campaign must cover every phase it can kill in, produce
  // genuinely torn tails, and drive structural repair on recovery.
  EXPECT_GT(report.scenarios, 1000u);
  EXPECT_GT(report.opCrashes, 0u);
  EXPECT_GT(report.compactionCrashes, 0u);
  EXPECT_GT(report.bootstrapCrashes, 0u);
  EXPECT_GT(report.tornTailRecoveries, 0u);
  EXPECT_GT(report.replayedRecords, 0u);
  EXPECT_GT(report.splitRepairs + report.mergeRepairs, 0u);
}

TEST(SlowFaultCampaign, LargerWorkloadWithClientFeatures) {
  // A heavier variant of the tier-1 fault campaign: bigger workload per
  // seed, all client-side performance features enabled.
  FaultCampaignConfig cfg;
  cfg.seeds = 8;
  cfg.inserts = 64;
  cfg.erases = 48;
  cfg.useLeafCache = true;
  cfg.batchFanout = true;
  cfg.cacheDecodedBuckets = true;

  const FaultCampaignReport report = runFaultCampaign(cfg);

  for (const auto& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.splitCrashes, 0u);
  EXPECT_GT(report.mergeCrashes, 0u);
  EXPECT_GT(report.splitRepairs + report.mergeRepairs, 0u);
}

TEST(SlowStormCampaign, SixteenSeedFullStorm) {
  // The full-size gate (BENCH_PR6.json mirrors this run): 16 seeds of the
  // default storm, both configurations. Failover + hedging must keep
  // availability at 1.0 against an availability floor of 0.99, the
  // baseline must be measurably below it, and every wave must repair to
  // zero replica deficit.
  StormConfig on;  // defaults: 16 seeds, 24 peers, replication 3
  ASSERT_GE(on.seeds, 16u);
  on.failover = true;
  on.hedging = true;
  const StormReport repOn = runStormCampaign(on);
  for (const auto& f : repOn.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(repOn.ok());
  EXPECT_GT(repOn.crashesApplied, 0u);
  EXPECT_GE(repOn.availability, 0.99);
  EXPECT_EQ(repOn.opsFailed, 0u);
  EXPECT_GT(repOn.rescues, 0u);
  EXPECT_GT(repOn.hedgesFired, 0u);
  EXPECT_EQ(repOn.lostKeys, 0u);

  StormConfig off = on;
  off.failover = false;
  off.hedging = false;
  const StormReport repOff = runStormCampaign(off);
  for (const auto& f : repOff.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(repOff.ok());
  EXPECT_LT(repOff.availability, repOn.availability);
  EXPECT_GT(repOff.opsFailed, 0u);
  EXPECT_EQ(repOff.lostKeys, 0u);
}

TEST(SlowSkewCampaign, FullSkewGateLeasesBeatBaselineThreeFold) {
  // The full-size balance gate (BENCH_PR8.json mirrors this run): default
  // 8-seed zipfian campaign, both arms on identical traces. Leases +
  // adaptive splits must cut the busiest peer's max/mean read imbalance
  // by at least 3x and every seed must oracle-verify in both arms.
  SkewCampaignConfig on;  // defaults: 8 seeds, 16 peers, replication 4
  ASSERT_GE(on.seeds, 8u);
  const SkewReport repOn = runSkewCampaign(on);
  for (const auto& f : repOn.failures) ADD_FAILURE() << "ON: " << f;
  EXPECT_TRUE(repOn.ok());
  EXPECT_EQ(repOn.opsFailed, 0u);
  EXPECT_GT(repOn.leaseGrants, 0u);
  EXPECT_GT(repOn.leaseReads, 0u);
  EXPECT_GT(repOn.splits, 0u);

  SkewCampaignConfig off = on;
  off.leasedReads = false;
  off.adaptiveSplits = false;
  const SkewReport repOff = runSkewCampaign(off);
  for (const auto& f : repOff.failures) ADD_FAILURE() << "OFF: " << f;
  EXPECT_TRUE(repOff.ok());
  EXPECT_EQ(repOff.leaseReads, 0u);

  EXPECT_GE(repOff.maxOverMeanAvg / repOn.maxOverMeanAvg, 3.0)
      << "imbalance improvement below the 3x gate: on="
      << repOn.maxOverMeanAvg << " off=" << repOff.maxOverMeanAvg;
  EXPECT_GT(repOn.effectiveParallelism, repOff.effectiveParallelism);
}

TEST(SlowLeaseCampaign, SixteenSeedLeaseLinearizability) {
  // The full-size safety gate: 16 seeds of lease reads racing concurrent
  // inserts/splits, with a lease-holding replica crashed mid-campaign in
  // every seed. The merged histories (plus synthesized preload inserts)
  // must pass the grow-only-set checker — a lease-served read returning a
  // snapshot older than a completed insert would fail it — and every
  // dead-peer lease read must drop its lease.
  LeaseLinConfig cfg;  // defaults: 16 seeds, 12 peers, replication 3
  ASSERT_GE(cfg.seeds, 16u);
  const LeaseLinReport rep = runLeaseLinCampaign(cfg);
  for (const auto& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.crashes, cfg.seeds);
  EXPECT_GT(rep.leaseGrants, 0u);
  EXPECT_GT(rep.leaseReads, 0u);
  EXPECT_GT(rep.leaseStale + rep.leaseExpired, 0u);
  EXPECT_GT(rep.leaseDrops, 0u);
  EXPECT_GT(rep.repairTicks, 0u);
}

}  // namespace
}  // namespace lht::sim
