// Tests for failure injection (FlakyDht) and recovery (RetryingDht), and
// for the index's behaviour over an unreliable-but-retried substrate.
#include "dht/decorators.h"

#include <gtest/gtest.h>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

namespace lht::dht {
namespace {

TEST(FlakyDht, InjectsFailuresAtTheConfiguredRate) {
  LocalDht inner;
  FlakyDht flaky(inner, 0.3, /*seed=*/1);
  size_t failures = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    try {
      flaky.put("k" + std::to_string(i), "v");
    } catch (const DhtError&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, flaky.injectedFailures());
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.3, 0.04);
  // Failed puts must not have reached the inner store.
  EXPECT_EQ(inner.size(), static_cast<size_t>(n) - failures);
}

TEST(FlakyDht, ZeroProbabilityNeverFails) {
  LocalDht inner;
  FlakyDht flaky(inner, 0.0);
  for (int i = 0; i < 100; ++i) flaky.put("k" + std::to_string(i), "v");
  EXPECT_EQ(flaky.injectedFailures(), 0u);
  EXPECT_EQ(flaky.size(), 100u);
}

TEST(FlakyDht, FailuresHappenBeforeExecution) {
  // A lost apply must not have executed its mutation (at-most-once).
  LocalDht inner;
  inner.storeDirect("k", "original");
  FlakyDht flaky(inner, 0.5, /*seed=*/3);
  int mutations = 0;
  int successes = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      flaky.apply("k", [&](std::optional<Value>& v) {
        ++mutations;
        *v = "m" + std::to_string(i);
      });
      ++successes;
    } catch (const DhtError&) {
    }
  }
  EXPECT_EQ(mutations, successes);
}

TEST(RetryingDht, AbsorbsFailures) {
  LocalDht inner;
  FlakyDht flaky(inner, 0.4, /*seed=*/5);
  RetryingDht retrying(flaky, /*maxAttempts=*/32);
  for (int i = 0; i < 500; ++i) retrying.put("k" + std::to_string(i), "v");
  EXPECT_EQ(inner.size(), 500u);
  EXPECT_GT(retrying.retries(), 100u);  // ~0.4/(1-0.4) * 500
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(retrying.get("k" + std::to_string(i)).has_value());
  }
}

TEST(RetryingDht, GivesUpAfterMaxAttempts) {
  LocalDht inner;
  FlakyDht flaky(inner, 0.99, /*seed=*/7);
  RetryingDht retrying(flaky, /*maxAttempts=*/3);
  EXPECT_THROW(
      {
        for (int i = 0; i < 50; ++i) retrying.put("k" + std::to_string(i), "v");
      },
      DhtError);
}

TEST(LhtOverFlakySubstrate, RetriesMakeItExactlyCorrect) {
  // The paper's robustness split: index integrity is the DHT's job. With
  // client-side retries over a 25%-lossy substrate, every index operation
  // behaves exactly as over a reliable one.
  LocalDht inner;
  FlakyDht flaky(inner, 0.25, /*seed=*/11);
  RetryingDht retrying(flaky, /*maxAttempts=*/64);
  core::LhtIndex idx(retrying, {.thetaSplit = 8, .maxDepth = 24});
  index::ReferenceIndex oracle;

  auto data = workload::makeDataset(workload::Distribution::Uniform, 600, 13);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  EXPECT_GT(flaky.injectedFailures(), 200u);

  auto mine = idx.rangeQuery(0.0, 1.0);
  ASSERT_EQ(mine.records.size(), oracle.recordCount());
  common::Pcg32 rng(17);
  for (int q = 0; q < 50; ++q) {
    auto spec = workload::makeRange(0.1, rng);
    EXPECT_EQ(idx.rangeQuery(spec.lo, spec.hi).records.size(),
              oracle.rangeQuery(spec.lo, spec.hi).records.size());
  }
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, oracle.minRecord().record->key);
}

}  // namespace
}  // namespace lht::dht
