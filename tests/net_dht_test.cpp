// NetDht over the SimHub transport twin: Dht conformance (put/get/
// remove/apply/batches/replica reads), failure mapping (offline node ->
// DhtTimeoutError, silent replica holder -> DhtPeerDownError), decorator
// stacking, and the full LhtIndex running end-to-end against an oracle —
// byte-for-byte the same wire protocol the UDP cluster speaks, but
// deterministic and in-process.
#include "dht/net_dht.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dht/decorators.h"
#include "lht/lht_index.h"
#include "net/sim_clock.h"
#include "rpc/node_server.h"
#include "rpc/sim_transport.h"

namespace lht::dht {
namespace {

/// N NodeServers living inline in one SimHub, ports 5000..5000+N-1.
struct Cluster {
  rpc::SimHub hub;
  std::vector<std::unique_ptr<rpc::NodeServer>> servers;
  std::vector<rpc::NetAddr> addrs;

  explicit Cluster(size_t n, rpc::SimHub::Options hopts = {}) : hub(hopts) {
    for (size_t i = 0; i < n; ++i) {
      rpc::NodeServer::Options sopts;
      sopts.name = "n" + std::to_string(i);
      auto server = std::make_unique<rpc::NodeServer>(sopts);
      const auto port = static_cast<rpc::u16>(5000 + i);
      hub.registerHandler(
          port, [srv = server.get()](const rpc::Datagram& d,
                                     const std::function<void(std::string)>& reply) {
            std::string out = srv->handle(d.from, d.payload);
            if (!out.empty()) reply(std::move(out));
          });
      servers.push_back(std::move(server));
      addrs.push_back(rpc::NetAddr{0, port});
    }
  }

  std::unique_ptr<NetDht> makeDht(size_t replication = 1,
                                  common::u64 deadlineMs = 2000) {
    NetDht::Options o;
    o.nodes = addrs;
    o.replication = replication;
    o.rpc.requestDeadlineMs = deadlineMs;
    o.rpc.initialRetransmitMs = 20;
    return std::make_unique<NetDht>(o, [this] { return hub.makeEndpoint(); });
  }

  /// Index of the server holding `key` in its primary map (put it first).
  size_t primaryOf(const std::string& key) const {
    for (size_t i = 0; i < servers.size(); ++i) {
      if (servers[i]->primaryValue(key).has_value()) return i;
    }
    ADD_FAILURE() << "no primary holds " << key;
    return 0;
  }

  /// Index of the first server holding anything in its replica map.
  size_t replicaHolder() const {
    for (size_t i = 0; i < servers.size(); ++i) {
      if (servers[i]->replicaKeyCount() > 0) return i;
    }
    ADD_FAILURE() << "no server holds a replica";
    return 0;
  }
};

TEST(NetDht, PutGetRemove) {
  Cluster c(4);
  auto dht = c.makeDht();
  EXPECT_FALSE(dht->get("a").has_value());
  dht->put("a", "1");
  dht->put("b", std::string("\x00\xff", 2));
  EXPECT_EQ(dht->get("a"), "1");
  EXPECT_EQ(dht->get("b"), std::string("\x00\xff", 2));
  EXPECT_EQ(dht->size(), 2u);
  EXPECT_TRUE(dht->remove("a"));
  EXPECT_FALSE(dht->remove("a"));
  EXPECT_FALSE(dht->get("a").has_value());
  EXPECT_EQ(dht->size(), 1u);
}

TEST(NetDht, ConcurrentClientsGrowPoolSafely) {
  // A cluster whose servers hold each RPC open for ~1ms of wall time, so
  // concurrent callers' leases genuinely overlap: the pool must grow, and
  // every thread's first Lease push_back can reallocate conns_ while
  // other threads are mid-RPC — the reallocation window each Lease must
  // pin its Conn* across (the fleet-warmup shape lht_net_trace drives).
  rpc::SimHub hub;
  std::vector<std::unique_ptr<rpc::NodeServer>> servers;
  std::vector<rpc::NetAddr> addrs;
  for (rpc::u16 port : {5100, 5101}) {
    servers.push_back(std::make_unique<rpc::NodeServer>());
    hub.registerHandler(
        port, [srv = servers.back().get()](
                  const rpc::Datagram& d,
                  const std::function<void(std::string)>& reply) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          std::string out = srv->handle(d.from, d.payload);
          if (!out.empty()) reply(std::move(out));
        });
    addrs.push_back(rpc::NetAddr{0, port});
  }
  NetDht::Options o;
  o.nodes = addrs;
  auto dht =
      std::make_unique<NetDht>(o, [&hub] { return hub.makeEndpoint(); });

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dht, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        dht->put(key, key);
        EXPECT_EQ(dht->get(key), key);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dht->size(), size_t{kThreads} * kOpsPerThread);
  EXPECT_GE(dht->netStats().connections, 2u);
}

TEST(NetDht, PingAllReportsClusterHealthWithinDeadline) {
  Cluster c(4);
  auto dht = c.makeDht(1, /*deadlineMs=*/200);
  EXPECT_TRUE(dht->pingAll(1000));
  // Half the cluster dark: pings go out concurrently, so giving up costs
  // the deadline plus at most ONE request deadline — not one per down
  // node. The requests-started delta stays a few rounds' worth.
  c.hub.setOnline(5002, false);
  c.hub.setOnline(5003, false);
  const auto before = dht->netStats().requestsStarted;
  EXPECT_FALSE(dht->pingAll(500));
  const auto after = dht->netStats().requestsStarted;
  // Round 1 pings all 4 nodes; later rounds only the 2 still-silent
  // ones; ceil(500 / 200) = 3 rounds before the deadline check fires.
  EXPECT_LE(after - before, 12u);
  c.hub.setOnline(5002, true);
  c.hub.setOnline(5003, true);
  EXPECT_TRUE(dht->pingAll(1000));
}

TEST(NetDht, ApplyCreatesMutatesErases) {
  Cluster c(4);
  auto dht = c.makeDht();
  // Create through apply (expect-absent CAS).
  EXPECT_FALSE(dht->apply("k", [](std::optional<Value>& v) {
    EXPECT_FALSE(v.has_value());
    v = "1";
  }));
  EXPECT_EQ(dht->get("k"), "1");
  // Mutate.
  EXPECT_TRUE(dht->apply("k", [](std::optional<Value>& v) {
    ASSERT_TRUE(v.has_value());
    *v += "+2";
  }));
  EXPECT_EQ(dht->get("k"), "1+2");
  // A mutator that leaves the value untouched is a no-op round.
  EXPECT_TRUE(dht->apply("k", [](std::optional<Value>&) {}));
  // Erase through apply.
  EXPECT_TRUE(dht->apply("k", [](std::optional<Value>& v) { v.reset(); }));
  EXPECT_FALSE(dht->get("k").has_value());
}

TEST(NetDht, ApplyRetriesCasConflict) {
  Cluster c(2);
  auto dht = c.makeDht();
  auto rival = c.makeDht();
  dht->put("k", "base");
  // The mutator's first run races a rival write between the GET snapshot
  // and the CAS: the CAS conflicts, the conflict reply carries the
  // rival's value, and the retried mutator sees it.
  int runs = 0;
  EXPECT_TRUE(dht->apply("k", [&](std::optional<Value>& v) {
    ASSERT_TRUE(v.has_value());
    if (runs++ == 0) {
      EXPECT_EQ(*v, "base");
      rival->put("k", "rival");
    }
    *v += "+applied";
  }));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(dht->get("k"), "rival+applied");
}

TEST(NetDht, MultiGetBatchesOneDatagramPerNode) {
  Cluster c(4);
  auto dht = c.makeDht();
  std::vector<Key> keys;
  for (int i = 0; i < 32; ++i) {
    keys.push_back("key" + std::to_string(i));
    if (i % 2 == 0) dht->put(keys.back(), "v" + std::to_string(i));
  }
  const auto before = dht->netStats();
  auto outcomes = dht->multiGet(keys);
  const auto after = dht->netStats();
  ASSERT_EQ(outcomes.size(), keys.size());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error;
    if (i % 2 == 0) {
      EXPECT_EQ(outcomes[i].value, "v" + std::to_string(i));
    } else {
      EXPECT_FALSE(outcomes[i].value.has_value());
    }
  }
  // The whole 32-key round cost at most one datagram per node (no
  // retransmits in a clean hub) — not one per key.
  EXPECT_EQ(after.retransmits, before.retransmits);
  EXPECT_LE(after.datagramsSent - before.datagramsSent, c.servers.size());
}

TEST(NetDht, MultiApplyBatchesAndReportsExistence) {
  Cluster c(4);
  auto dht = c.makeDht();
  dht->put("old0", "x");
  dht->put("old1", "y");
  std::vector<ApplyRequest> reqs;
  for (const char* k : {"old0", "old1", "new0", "new1"}) {
    reqs.push_back(ApplyRequest{
        k, [](std::optional<Value>& v) { v = v.value_or("") + "!"; }});
  }
  const auto before = dht->netStats();
  auto outcomes = dht->multiApply(reqs);
  const auto after = dht->netStats();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_TRUE(outcomes[0].ok && outcomes[0].existed);
  EXPECT_TRUE(outcomes[1].ok && outcomes[1].existed);
  EXPECT_TRUE(outcomes[2].ok && !outcomes[2].existed);
  EXPECT_TRUE(outcomes[3].ok && !outcomes[3].existed);
  EXPECT_EQ(dht->get("old0"), "x!");
  EXPECT_EQ(dht->get("new1"), "!");
  // One GET round + one CAS round, each <= one datagram per node.
  EXPECT_LE(after.datagramsSent - before.datagramsSent, 2 * c.servers.size());
}

TEST(NetDht, ReplicationServesReplicaReads) {
  Cluster c(4);
  auto dht = c.makeDht(/*replication=*/3);
  EXPECT_EQ(dht->replicaFanout(), 2u);
  dht->put("k", "v");
  EXPECT_EQ(dht->getReplica("k", 0), "v");
  EXPECT_EQ(dht->getReplica("k", 1), "v");
  EXPECT_THROW((void)dht->getReplica("k", 2), DhtError);
  // Exactly one primary and two replica copies across the cluster.
  size_t primaries = 0, replicas = 0;
  for (const auto& s : c.servers) {
    primaries += s->primaryKeyCount();
    replicas += s->replicaKeyCount();
  }
  EXPECT_EQ(primaries, 1u);
  EXPECT_EQ(replicas, 2u);
  // remove() drops the replica copies too.
  EXPECT_TRUE(dht->remove("k"));
  EXPECT_FALSE(dht->getReplica("k", 0).has_value());
  EXPECT_FALSE(dht->getReplica("k", 1).has_value());
}

TEST(NetDht, OfflineClusterTimesOut) {
  Cluster c(2);
  auto dht = c.makeDht(/*replication=*/1, /*deadlineMs=*/200);
  dht->put("k", "v");
  for (const auto& a : c.addrs) c.hub.setOnline(a.port, false);
  EXPECT_THROW((void)dht->get("k"), DhtTimeoutError);
  EXPECT_THROW(dht->put("k", "w"), DhtTimeoutError);
  EXPECT_GT(dht->netStats().timeouts, 0u);
  // Batch entries fail individually instead of throwing.
  auto outcomes = dht->multiGet({"k", "other"});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  // Back online: the same NetDht recovers with no reconnection step.
  for (const auto& a : c.addrs) c.hub.setOnline(a.port, true);
  EXPECT_EQ(dht->get("k"), "v");
}

TEST(NetDht, SilentReplicaHolderIsPeerDown) {
  Cluster c(3);
  auto dht = c.makeDht(/*replication=*/2, /*deadlineMs=*/200);
  dht->put("k", "v");
  c.hub.setOnline(c.addrs[c.replicaHolder()].port, false);
  EXPECT_THROW((void)dht->getReplica("k", 0), DhtPeerDownError);
  // The primary is untouched.
  EXPECT_EQ(dht->get("k"), "v");
}

TEST(NetDht, FailoverRescuesReadsFromDeadOwner) {
  Cluster c(3);
  auto dht = c.makeDht(/*replication=*/2, /*deadlineMs=*/200);
  dht->put("k", "v");
  net::SimClock clock;
  FailoverDht::Options fopts;
  fopts.failover = true;
  FailoverDht failover(*dht, clock, fopts);
  c.hub.setOnline(c.addrs[c.primaryOf("k")].port, false);
  // The primary read times out; the replica holder answers the rescue.
  EXPECT_EQ(failover.get("k"), "v");
  EXPECT_EQ(failover.rescues(), 1u);
  EXPECT_GE(failover.failoverAttempts(), 1u);
}

TEST(NetDht, RetryingStackSurvivesHeavyLoss) {
  rpc::SimHub::Options hopts;
  hopts.dropProbability = 0.15;
  hopts.duplicateProbability = 0.05;
  hopts.reorderProbability = 0.1;
  hopts.seed = 7;
  Cluster c(3, hopts);
  auto dht = c.makeDht(/*replication=*/2, /*deadlineMs=*/5000);
  RetryingDht retrying(*dht, /*maxAttempts=*/4);
  for (int i = 0; i < 60; ++i) {
    const std::string k = "k" + std::to_string(i);
    retrying.put(k, std::to_string(i));
    EXPECT_EQ(retrying.get(k), std::to_string(i)) << k;
  }
  // The loss was real (the RPC layer absorbed it below the Dht surface).
  EXPECT_GT(dht->netStats().retransmits, 0u);
}

// ---------------------------------------------------------------------------
// LhtIndex end-to-end over the networked substrate
// ---------------------------------------------------------------------------

std::vector<index::Record> distinctRecords(size_t n, common::u64 seed) {
  common::Pcg32 rng(seed);
  std::set<double> used;
  std::vector<index::Record> recs;
  while (recs.size() < n) {
    const double k = rng.nextDouble();
    if (k <= 0.0 || k >= 1.0 || !used.insert(k).second) continue;
    recs.push_back(index::Record{k, "p" + std::to_string(recs.size())});
  }
  return recs;
}

TEST(NetDhtIndex, LhtMatchesOracle) {
  Cluster c(4);
  auto dht = c.makeDht(/*replication=*/2);
  core::LhtIndex::Options iopts;
  iopts.thetaSplit = 8;
  iopts.useLeafCache = true;
  iopts.cacheDecodedBuckets = true;
  iopts.batchFanout = true;
  core::LhtIndex idx(*dht, iopts);

  const auto recs = distinctRecords(150, 91);
  std::map<double, std::string> oracle;
  for (const auto& r : recs) {
    ASSERT_TRUE(idx.insert(r).ok);
    oracle[r.key] = r.payload;
  }
  // Erase every third record.
  for (size_t i = 0; i < recs.size(); i += 3) {
    EXPECT_TRUE(idx.erase(recs[i].key).ok);
    oracle.erase(recs[i].key);
  }
  EXPECT_EQ(idx.recordCount(), oracle.size());
  for (const auto& r : recs) {
    auto found = idx.find(r.key);
    auto it = oracle.find(r.key);
    if (it == oracle.end()) {
      EXPECT_FALSE(found.record.has_value()) << r.key;
    } else {
      ASSERT_TRUE(found.record.has_value()) << r.key;
      EXPECT_EQ(found.record->payload, it->second);
    }
  }
  // Range query versus the oracle.
  auto range = idx.rangeQuery(0.25, 0.75);
  std::vector<double> want;
  for (const auto& [k, v] : oracle) {
    if (k >= 0.25 && k < 0.75) want.push_back(k);
  }
  ASSERT_EQ(range.records.size(), want.size());
  std::sort(range.records.begin(), range.records.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(range.records[i].key, want[i]);
  }
  EXPECT_EQ(idx.minRecord().record->key, oracle.begin()->first);
  EXPECT_EQ(idx.maxRecord().record->key, oracle.rbegin()->first);
}

TEST(NetDhtIndex, DeadReplicaHolderDropsLeaseKeepsLocation) {
  Cluster c(3);
  auto dht = c.makeDht(/*replication=*/2, /*deadlineMs=*/200);
  core::LhtIndex::Options iopts;
  iopts.thetaSplit = 8;
  iopts.useLeafCache = true;
  iopts.leasedReads = true;
  iopts.leaseTtlMs = 1'000'000;  // no clock: epoch validation only
  core::LhtIndex idx(*dht, iopts);
  const auto recs = distinctRecords(40, 5);
  for (const auto& r : recs) idx.insert(r);
  const double hotKey = recs[0].key;
  ASSERT_TRUE(idx.find(hotKey).record.has_value());  // location + lease

  // Kill exactly the server holding the hot leaf's replica copy: the
  // lease's replica turns now hit silence and surface as DhtPeerDownError
  // from NetDht::getReplica, while the leaf's primary stays up.
  const std::string leafKey = idx.lookup(hotKey).dhtKey;
  bool killed = false;
  for (size_t i = 0; i < c.servers.size(); ++i) {
    if (c.servers[i]->replicaValue(leafKey).has_value()) {
      c.hub.setOnline(c.addrs[i].port, false);
      killed = true;
    }
  }
  ASSERT_TRUE(killed);
  // Reads keep succeeding: the replica turn drops the lease (not the
  // location) and the primary turn serves and re-grants.
  const common::u64 missesBefore = idx.leafCache().misses();
  for (int i = 0; i < 8; ++i) {
    auto r = idx.find(hotKey);
    ASSERT_TRUE(r.record.has_value()) << "read " << i;
    EXPECT_EQ(r.record->payload, recs[0].payload);
  }
  EXPECT_GT(idx.leafCache().leaseDrops(), 0u);
  EXPECT_EQ(idx.leafCache().misses(), missesBefore);
}

/// Forwards everything to an inner Dht but makes every replica read hit a
/// transport-style deadline — the substrate shape the DhtTimeoutError
/// branch of tryLeaseRead exists for (a TimeoutDht-over-NetDht stack,
/// where the replica deadline surfaces as DhtTimeoutError, not PeerDown).
class TimeoutReplicaDht final : public Dht {
 public:
  explicit TimeoutReplicaDht(Dht& inner) : inner_(inner) {}
  void put(const Key& key, Value value) override {
    inner_.put(key, std::move(value));
  }
  std::optional<Value> get(const Key& key) override { return inner_.get(key); }
  bool remove(const Key& key) override { return inner_.remove(key); }
  bool apply(const Key& key, const Mutator& fn) override {
    return inner_.apply(key, fn);
  }
  void storeDirect(const Key& key, Value value) override {
    inner_.storeDirect(key, std::move(value));
  }
  [[nodiscard]] size_t replicaFanout() const override {
    return inner_.replicaFanout();
  }
  std::optional<Value> getReplica(const Key& key, size_t) override {
    throw DhtTimeoutError("replica read deadline for \"" + key + "\"");
  }
  [[nodiscard]] size_t size() const override { return inner_.size(); }

 private:
  Dht& inner_;
};

TEST(NetDhtIndex, ReplicaTimeoutDropsLeaseAndAdvancesRotation) {
  Cluster c(3);
  auto dht = c.makeDht(/*replication=*/2);
  TimeoutReplicaDht flaky(*dht);
  core::LhtIndex::Options iopts;
  iopts.thetaSplit = 8;
  iopts.useLeafCache = true;
  iopts.leasedReads = true;
  iopts.leaseTtlMs = 1'000'000;
  core::LhtIndex idx(flaky, iopts);
  const auto recs = distinctRecords(40, 6);
  for (const auto& r : recs) idx.insert(r);
  const double hotKey = recs[0].key;
  ASSERT_TRUE(idx.find(hotKey).record.has_value());  // location + lease
  const common::u64 missesBefore = idx.leafCache().misses();
  for (int i = 0; i < 10; ++i) {
    auto r = idx.find(hotKey);
    ASSERT_TRUE(r.record.has_value()) << "read " << i;
    EXPECT_EQ(r.record->payload, recs[0].payload);
  }
  // Timeouts were counted on their own ledger, the lease was dropped each
  // time (never the location), and because note() preserves the rotation
  // cursor across re-grants the cursor kept moving instead of hammering
  // slot 0 forever.
  EXPECT_GT(idx.leafCache().leaseTimeouts(), 0u);
  EXPECT_EQ(idx.leafCache().leaseTimeouts(), idx.leafCache().leaseDrops());
  EXPECT_EQ(idx.leafCache().misses(), missesBefore);
  EXPECT_EQ(idx.leafCache().leaseHits(), 0u);  // every replica turn timed out
  EXPECT_GT(idx.leafCache().primaryHits(), 0u);
}

}  // namespace
}  // namespace lht::dht
