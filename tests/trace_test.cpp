// Tests for workload traces: encode/decode, file round-trip, generation
// invariants, and replay equivalence across index implementations.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "pht/pht_index.h"

namespace lht::workload {
namespace {

std::vector<Operation> sampleOps() {
  return {
      {Operation::Kind::Insert, 0.25, 0.0, "a"},
      {Operation::Kind::Insert, 0.75, 0.0, "b"},
      {Operation::Kind::Find, 0.25, 0.0, ""},
      {Operation::Kind::Range, 0.2, 0.8, ""},
      {Operation::Kind::Erase, 0.25, 0.0, ""},
      {Operation::Kind::Min, 0.0, 0.0, ""},
      {Operation::Kind::Max, 0.0, 0.0, ""},
  };
}

TEST(Trace, EncodeDecodeRoundTrip) {
  auto ops = sampleOps();
  auto back = decodeTrace(encodeTrace(ops));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ops);
}

TEST(Trace, DecodeRejectsGarbage) {
  EXPECT_FALSE(decodeTrace("").has_value());
  EXPECT_FALSE(decodeTrace("not a trace").has_value());
  auto bytes = encodeTrace(sampleOps());
  EXPECT_FALSE(decodeTrace(bytes.substr(0, bytes.size() - 3)).has_value());
  EXPECT_FALSE(decodeTrace(bytes + "x").has_value());
  // Wrong magic.
  bytes[0] = static_cast<char>(~bytes[0]);
  EXPECT_FALSE(decodeTrace(bytes).has_value());
}

TEST(Trace, FileRoundTrip) {
  const std::string path = "/tmp/lht_trace_test.bin";
  auto ops = makeMixedTrace(Distribution::Uniform, 500, TraceMix{}, 3);
  ASSERT_TRUE(writeTrace(path, ops));
  auto back = readTrace(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ops);
  std::remove(path.c_str());
  EXPECT_FALSE(readTrace(path).has_value());
}

TEST(Trace, MixedTraceRespectsInvariants) {
  TraceMix mix;
  mix.insert = 0.5;
  mix.erase = 0.2;
  mix.find = 0.2;
  mix.range = 0.1;
  auto ops = makeMixedTrace(Distribution::Gaussian, 2000, mix, 7);
  ASSERT_EQ(ops.size(), 2000u);
  size_t liveCount = 0;
  for (const auto& op : ops) {
    if (op.kind == Operation::Kind::Insert) {
      EXPECT_GE(op.key, 0.0);
      EXPECT_LT(op.key, 1.0);
      liveCount += 1;
    } else if (op.kind == Operation::Kind::Erase) {
      // Erases only ever target previously inserted keys.
      ASSERT_GT(liveCount, 0u);
      liveCount -= 1;
    } else if (op.kind == Operation::Kind::Range) {
      EXPECT_LT(op.key, op.hi);
      EXPECT_NEAR(op.hi - op.key, mix.rangeSpan, 1e-12);
    }
  }
  // Deterministic per seed.
  EXPECT_EQ(makeMixedTrace(Distribution::Gaussian, 2000, mix, 7), ops);
  EXPECT_NE(makeMixedTrace(Distribution::Gaussian, 2000, mix, 8), ops);
}

TEST(Trace, ReplayAgreesAcrossImplementations) {
  TraceMix mix;
  mix.erase = 0.15;
  mix.range = 0.15;
  mix.minmax = 0.05;
  auto ops = makeMixedTrace(Distribution::Uniform, 1500, mix, 11);

  dht::LocalDht d1, d2;
  core::LhtIndex lht(d1, {.thetaSplit = 8, .maxDepth = 24});
  pht::PhtIndex::Options po;
  po.thetaSplit = 8;
  po.maxDepth = 24;
  pht::PhtIndex pht(d2, po);
  index::ReferenceIndex oracle;

  auto a = replay(lht, ops);
  auto b = replay(pht, ops);
  auto c = replay(oracle, ops);

  // All three implementations must return identical result counts.
  EXPECT_EQ(a.recordsReturned, c.recordsReturned);
  EXPECT_EQ(b.recordsReturned, c.recordsReturned);
  EXPECT_EQ(lht.recordCount(), oracle.recordCount());
  EXPECT_EQ(pht.recordCount(), oracle.recordCount());
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.ranges, c.ranges);
  // The distributed indexes actually paid for their lookups.
  EXPECT_GT(a.totals.dhtLookups, 0u);
  EXPECT_GT(b.totals.dhtLookups, 0u);
}

TEST(Trace, ReplayOnEmptyTrace) {
  dht::LocalDht d;
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  auto s = replay(idx, {});
  EXPECT_EQ(s.inserts + s.erases + s.finds + s.ranges + s.minmaxes, 0u);
}

}  // namespace
}  // namespace lht::workload
