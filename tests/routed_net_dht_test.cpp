// RoutedNetDht against a live (sim-transport) overlay cluster: bootstrap
// from a single seed, warm one-hop routing, redirect-following across a
// membership change, and crash failover through replica promotion — the
// deterministic twin of the kernel-UDP paths bench_overlay measures.
//
// The overlay nodes run real serve() loops on background threads (the
// client's calls block inside settle(), so somebody must pump the
// servers); virtual clocks make that spin fast without wall-clock sleeps.
#include "dht/routed_net_dht.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "overlay/overlay_node.h"
#include "rpc/sim_transport.h"

namespace lht::dht {
namespace {

using overlay::OverlayNode;
using rpc::NetAddr;
using rpc::SimHub;
using rpc::SimTransport;

constexpr rpc::u16 kBasePort = 6100;

/// Wall-throttled sim endpoint. A SimTransport's idle receive() advances
/// its PRIVATE virtual clock by the full wait instantly, so a blocked
/// thread can spin through any virtual deadline before the threads
/// serving the other endpoints get scheduled even once. Charging a
/// sliver of real time per idle wait makes every endpoint's virtual
/// clock advance at a comparable wall rate, which is what lets finite
/// timeouts (needed by the crash-failover test) behave across threads.
class ThrottledSim final : public rpc::Transport {
 public:
  explicit ThrottledSim(std::unique_ptr<SimTransport> inner)
      : inner_(std::move(inner)) {}
  bool send(const NetAddr& to, std::string_view payload) override {
    return inner_->send(to, payload);
  }
  size_t receive(std::vector<rpc::Datagram>& out, rpc::u64 timeoutMs) override {
    const size_t n = inner_->receive(out, timeoutMs);
    if (n == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    return n;
  }
  rpc::u64 nowMs() override { return inner_->nowMs(); }
  [[nodiscard]] NetAddr localAddr() const override {
    return inner_->localAddr();
  }

 private:
  std::unique_ptr<SimTransport> inner_;
};

struct ServedCluster {
  SimHub hub;
  std::vector<std::unique_ptr<ThrottledSim>> tx;
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  explicit ServedCluster(size_t n, OverlayNode::Options base = {}) {
    std::vector<rpc::wire::NodeEntry> entries;
    for (size_t i = 0; i < n; ++i) {
      tx.push_back(std::make_unique<ThrottledSim>(
          hub.makeEndpoint(static_cast<rpc::u16>(kBasePort + i))));
      const NetAddr addr = tx.back()->localAddr();
      rpc::wire::NodeEntry e;
      e.id = overlay::nodeIdFor(addr);
      e.host = addr.host;
      e.port = addr.port;
      e.incarnation = 1;
      e.ringBase = e.id;
      entries.push_back(e);
    }
    for (size_t i = 0; i < n; ++i) {
      OverlayNode::Options opts = base;
      opts.name = "served-" + std::to_string(i);
      nodes.push_back(std::make_unique<OverlayNode>(opts, *tx[i]));
      nodes[i]->seedMembership(entries);
    }
  }

  ~ServedCluster() {
    stop.store(true);
    for (std::thread& t : threads) t.join();
  }

  void serveAll() {
    for (auto& n : nodes) {
      OverlayNode* p = n.get();
      threads.emplace_back([this, p] { p->serve(stop); });
    }
  }

  void serveOne(OverlayNode* p) {
    threads.emplace_back([this, p] { p->serve(stop); });
  }

  [[nodiscard]] NetAddr addr(size_t i) const { return tx[i]->localAddr(); }
};

RoutedNetDht::Options clientOptions(const ServedCluster& c,
                                    size_t replication = 1) {
  RoutedNetDht::Options ro;
  ro.seed = c.addr(0);
  ro.replication = replication;
  return ro;
}

/// get() with churn tolerance: a topology change mid-read surfaces as a
/// timeout or a transient miss; retry until the wall deadline — only a
/// key still wrong then is actually lost (the run_cluster verify model).
bool eventuallyReads(RoutedNetDht& dht, const std::string& key,
                     const std::string& expect, int deadlineSeconds = 30) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadlineSeconds);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      auto got = dht.get(key);
      if (got.has_value() && *got == expect) return true;
    } catch (const DhtError&) {
      // timed out / exhausted attempts mid-churn: retryable
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(RoutedNetDht, BootstrapsFromOneSeedAndRoutesWarmOpsInOneHop) {
  ServedCluster c(3);
  c.serveAll();
  RoutedNetDht dht(clientOptions(c), [&] {
    return std::make_unique<ThrottledSim>(c.hub.makeEndpoint());
  });
  ASSERT_TRUE(dht.bootstrap(/*deadlineMs=*/20000));
  EXPECT_EQ(dht.knownMembers(), 3u);
  EXPECT_GE(dht.routedStats().bootstraps, 1u);

  for (int i = 0; i < 25; ++i) {
    dht.put("key-" + std::to_string(i), "val-" + std::to_string(i));
  }
  for (int i = 0; i < 25; ++i) {
    auto got = dht.get("key-" + std::to_string(i));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "val-" + std::to_string(i));
  }

  // A stable view routes every op straight to its owner: exactly one hop
  // per lookup, zero redirects — the bench gate (≤ 1.2 warm mean hops)
  // with the slack removed.
  const auto& ds = dht.stats();
  EXPECT_EQ(ds.hops.load(), ds.lookups.load());
  EXPECT_EQ(dht.routedStats().redirectsFollowed, 0u);
  EXPECT_EQ(dht.routedStats().retriesAfterTimeout, 0u);

  // Batched reads keep the one-hop-per-key accounting.
  std::vector<Key> keys;
  for (int i = 0; i < 25; ++i) keys.push_back("key-" + std::to_string(i));
  auto outcomes = dht.multiGet(keys);
  ASSERT_EQ(outcomes.size(), keys.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].value.has_value()) << keys[i];
    EXPECT_EQ(*outcomes[i].value, "val-" + std::to_string(i));
  }
  EXPECT_EQ(ds.hops.load(), ds.lookups.load());
}

TEST(RoutedNetDht, FollowsRedirectsAcrossAliveJoin) {
  // Forwarding off: every stale-view op comes back as an explicit
  // Redirect, so this pins the client's follow-and-refresh path.
  OverlayNode::Options base;
  base.forwardData = false;
  ServedCluster c(2, base);
  c.serveAll();
  RoutedNetDht dht(clientOptions(c), [&] {
    return std::make_unique<ThrottledSim>(c.hub.makeEndpoint());
  });
  ASSERT_TRUE(dht.bootstrap(20000));
  EXPECT_EQ(dht.knownMembers(), 2u);

  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) {
    keys.push_back("key-" + std::to_string(i));
    dht.put(keys.back(), "val-" + std::to_string(i));
  }

  // A third node joins the LIVE cluster (its own thread; the incumbents
  // keep serving). The client's view is now stale.
  auto joinTx = std::make_unique<ThrottledSim>(
      c.hub.makeEndpoint(static_cast<rpc::u16>(kBasePort + 2)));
  OverlayNode::Options jo = base;
  jo.name = "joiner";
  auto joiner = std::make_unique<OverlayNode>(jo, *joinTx);
  ASSERT_TRUE(joiner->joinCluster(c.addr(0), /*deadlineMs=*/60000));
  c.serveOne(joiner.get());

  // Every preloaded record stays readable through the churn — redirects
  // and hint-triggered refreshes heal the view instead of failing ops.
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(eventuallyReads(dht, keys[i], "val-" + std::to_string(i)))
        << keys[i];
  }
  EXPECT_EQ(dht.knownMembers(), 3u);  // the view healed to the new ring
  const auto rs = dht.routedStats();
  EXPECT_GE(rs.redirectsFollowed + rs.refreshes, 1u);

  // Writes after the heal land on the three-node ring and read back.
  dht.put("post-join", "fresh");
  EXPECT_TRUE(eventuallyReads(dht, "post-join", "fresh"));

  c.tx.push_back(std::move(joinTx));
  c.nodes.push_back(std::move(joiner));  // joined threads outlive the test body
}

TEST(RoutedNetDht, CrashFailoverPromotesReplicasBehindTheClient) {
  OverlayNode::Options base;
  base.replication = 2;  // overlay promotes one replica per key on crash
  ServedCluster c(3, base);
  c.serveAll();
  // replication=2 on the client too: every put fans a replica copy to the
  // key's ring successor, which is what the survivors promote from.
  RoutedNetDht dht(clientOptions(c, /*replication=*/2), [&] {
    return std::make_unique<ThrottledSim>(c.hub.makeEndpoint());
  });
  ASSERT_TRUE(dht.bootstrap(20000));

  std::vector<std::string> keys;
  for (int i = 0; i < 20; ++i) {
    keys.push_back("key-" + std::to_string(i));
    dht.put(keys.back(), "val-" + std::to_string(i));
  }

  // Node 2 drops off the network without a goodbye. The survivors'
  // failure detector marks it Dead, reconcile promotes their replica
  // copies, and the client heals through timeouts + refreshes.
  c.hub.setOnline(static_cast<rpc::u16>(kBasePort + 2), false);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(eventuallyReads(dht, keys[i], "val-" + std::to_string(i)))
        << keys[i];
  }

  // Once the failure detector settles, a refresh drops the dead node
  // from the client's view. (Reads can heal earlier, off a view that
  // still lists it as Suspect, so poll with forced refreshes.)
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (dht.knownMembers() != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    dht.bootstrap(/*deadlineMs=*/2000);  // acts as a forced refresh
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dht.knownMembers(), 2u);  // the dead node fell out of the view
}

}  // namespace
}  // namespace lht::dht
