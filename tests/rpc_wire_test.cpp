// Wire-format tests: round-trip every message kind, then hold the codec
// to its "decoding is total" promise by truncating and bit-flipping real
// datagrams — typed DecodeErrors only, never a crash or an over-read
// (ASan enforces the latter in the asan-ubsan preset).
#include "rpc/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "common/random.h"

namespace lht::rpc::wire {
namespace {

// Every request body, one of each opcode, with representative payloads
// (empty strings, binary bytes, multi-entry batches).
std::vector<RequestBody> sampleRequests() {
  std::vector<RequestBody> out;
  out.push_back(PingReq{});
  out.push_back(PutReq{"leaf/0101", std::string("\x00\xff\x7f bucket", 9)});
  out.push_back(PutReq{"", ""});
  out.push_back(GetReq{"leaf/0101"});
  out.push_back(RemoveReq{"k"});
  out.push_back(CasReq{"leaf/1", 41, true, "new-bytes"});
  out.push_back(CasReq{"leaf/2", 0, false, ""});  // expect-absent erase
  MultiGetReq mg;
  for (int i = 0; i < 40; ++i) mg.entries.push_back(GetReq{"k" + std::to_string(i)});
  out.push_back(std::move(mg));
  MultiCasReq mc;
  for (int i = 0; i < 7; ++i) {
    mc.entries.push_back(CasReq{"k" + std::to_string(i), u64(i), i % 2 == 0,
                                std::string(i * 3, 'v')});
  }
  out.push_back(std::move(mc));
  out.push_back(ReplicaPutReq{"leaf/0", "copy", 17});
  out.push_back(ReplicaRemoveReq{"leaf/0"});
  out.push_back(ReplicaGetReq{"leaf/0"});
  out.push_back(SizeReq{});
  out.push_back(SyncReq{});
  out.push_back(CompactReq{});
  // Overlay membership protocol (DESIGN.md §15).
  GossipSyncReq gs;
  gs.senderId = 0xAB54A98CEB1F0AD2ull;
  gs.version = 17;
  gs.entries.push_back(NodeEntry{0x1111, 0x7F000001u, 9001, 3, 1, 0x1111});
  gs.entries.push_back(NodeEntry{0x2222, 0, 9002, 1, 0, 0x2222});
  out.push_back(std::move(gs));
  out.push_back(GossipSyncReq{});  // a client pull: senderId 0, no entries
  out.push_back(JoinReq{NodeEntry{0x3333, 0x7F000001u, 9003, 1, 0, 0x3333}});
  out.push_back(LeaveReq{0x4444, 12});
  HandoffReq ho;
  ho.entries.push_back(HandoffEntry{"leaf/0101", 5, std::string("\x00z", 2)});
  ho.entries.push_back(HandoffEntry{"", 0, ""});
  out.push_back(std::move(ho));
  return out;
}

struct SampleReply {
  Op op;
  ReplyBody body;
};

std::vector<SampleReply> sampleReplies() {
  std::vector<SampleReply> out;
  out.push_back({Op::Ping, PingRep{"node-3"}});
  out.push_back({Op::Put, PutRep{9}});
  out.push_back({Op::Get, GetRep{true, 4, std::string("\x01\x02", 2)}});
  out.push_back({Op::Get, GetRep{false, 0, ""}});
  out.push_back({Op::Remove, RemoveRep{true}});
  out.push_back({Op::Cas, CasRep{true, false, 1, true, ""}});
  out.push_back({Op::Cas, CasRep{false, true, 12, true, "current"}});
  MultiGetRep mg;
  mg.entries.push_back(GetRep{true, 2, "a"});
  mg.entries.push_back(GetRep{false, 0, ""});
  out.push_back({Op::MultiGet, std::move(mg)});
  MultiCasRep mc;
  mc.entries.push_back(CasRep{true, true, 3, true, ""});
  mc.entries.push_back(CasRep{false, false, 8, true, "cur"});
  out.push_back({Op::MultiCas, std::move(mc)});
  out.push_back({Op::ReplicaPut, ReplicaPutRep{}});
  out.push_back({Op::ReplicaRemove, ReplicaRemoveRep{false}});
  out.push_back({Op::ReplicaGet, GetRep{true, 7, "replica"}});
  out.push_back({Op::Size, SizeRep{123456}});
  out.push_back({Op::Sync, SyncRep{}});
  out.push_back({Op::Compact, CompactRep{}});
  GossipSyncRep gs;
  gs.version = 9;
  gs.entries.push_back(NodeEntry{0x5555, 0x7F000001u, 9005, 2, 2, 0x5555});
  out.push_back({Op::GossipSync, std::move(gs)});
  JoinRep jr;
  jr.accepted = true;
  jr.keysStreamed = 40;
  jr.version = 11;
  jr.entries.push_back(NodeEntry{0x6666, 0, 9006, 1, 0, 0x6666});
  out.push_back({Op::Join, std::move(jr)});
  out.push_back({Op::Leave, LeaveRep{true}});
  out.push_back({Op::Handoff, HandoffRep{32}});
  return out;
}

TEST(RpcWire, RequestRoundTrip) {
  u64 id = 1;
  for (const RequestBody& body : sampleRequests()) {
    const std::string bytes = encodeRequest(id, body);
    auto decoded = decodeRequest(bytes);
    ASSERT_TRUE(std::holds_alternative<Request>(decoded))
        << "req id " << id << " failed: "
        << decodeErrorName(std::get<DecodeError>(decoded));
    const Request& req = std::get<Request>(decoded);
    EXPECT_EQ(req.header.requestId, id);
    EXPECT_FALSE(req.header.isReply);
    EXPECT_EQ(req.body.index(), body.index());
    id += 0x1234567;  // sweep through multi-byte varint ids
  }
}

TEST(RpcWire, RequestFieldFidelity) {
  const std::string bytes =
      encodeRequest(77, CasReq{"key-π", 0xDEADBEEFCAFEull, true, "value"});
  auto decoded = decodeRequest(bytes);
  ASSERT_TRUE(std::holds_alternative<Request>(decoded));
  const auto& cas = std::get<CasReq>(std::get<Request>(decoded).body);
  EXPECT_EQ(cas.key, "key-π");
  EXPECT_EQ(cas.expectedVersion, 0xDEADBEEFCAFEull);
  EXPECT_TRUE(cas.present);
  EXPECT_EQ(cas.value, "value");
}

TEST(RpcWire, ReplyRoundTrip) {
  u64 id = 3;
  for (const SampleReply& s : sampleReplies()) {
    const std::string bytes = encodeReply(id, s.op, Status::Ok, s.body);
    auto decoded = decodeReply(bytes);
    ASSERT_TRUE(std::holds_alternative<Reply>(decoded))
        << opName(s.op) << " failed: "
        << decodeErrorName(std::get<DecodeError>(decoded));
    const Reply& rep = std::get<Reply>(decoded);
    EXPECT_EQ(rep.header.requestId, id);
    EXPECT_TRUE(rep.header.isReply);
    EXPECT_EQ(rep.header.op, s.op);
    EXPECT_EQ(rep.body.index(), s.body.index());
    id = id * 31 + 7;
  }
}

TEST(RpcWire, NonOkReplyCarriesEmptyBody) {
  const std::string bytes =
      encodeReply(5, Op::Get, Status::BadRequest, EmptyRep{});
  auto decoded = decodeReply(bytes);
  ASSERT_TRUE(std::holds_alternative<Reply>(decoded));
  const Reply& rep = std::get<Reply>(decoded);
  EXPECT_EQ(rep.header.status, Status::BadRequest);
  EXPECT_TRUE(std::holds_alternative<EmptyRep>(rep.body));
}

TEST(RpcWire, RequestRejectsReplyBit) {
  std::string bytes = encodeReply(9, Op::Get, Status::Ok, GetRep{});
  EXPECT_TRUE(std::holds_alternative<DecodeError>(decodeRequest(bytes)));
  bytes = encodeRequest(9, GetReq{"k"});
  EXPECT_TRUE(std::holds_alternative<DecodeError>(decodeReply(bytes)));
}

TEST(RpcWire, TrailingBytesRejected) {
  std::string bytes = encodeRequest(1, GetReq{"k"});
  bytes += '\x00';
  auto decoded = decodeRequest(bytes);
  ASSERT_TRUE(std::holds_alternative<DecodeError>(decoded));
  EXPECT_EQ(std::get<DecodeError>(decoded), DecodeError::TrailingBytes);
}

TEST(RpcWire, BadMagicAndVersion) {
  std::string bytes = encodeRequest(1, PingReq{});
  std::string wrongMagic = bytes;
  wrongMagic[0] = '\x55';
  auto d1 = decodeRequest(wrongMagic);
  ASSERT_TRUE(std::holds_alternative<DecodeError>(d1));
  EXPECT_EQ(std::get<DecodeError>(d1), DecodeError::BadMagic);
  std::string wrongVersion = bytes;
  wrongVersion[1] = '\x09';
  auto d2 = decodeRequest(wrongVersion);
  ASSERT_TRUE(std::holds_alternative<DecodeError>(d2));
  EXPECT_EQ(std::get<DecodeError>(d2), DecodeError::BadVersion);
}

// Every proper prefix of every sample message must decode to a typed
// error — never crash, never succeed (the full message has no redundant
// tail, so any cut loses information).
TEST(RpcWireFuzz, TruncationIsTyped) {
  u64 id = 11;
  for (const RequestBody& body : sampleRequests()) {
    const std::string bytes = encodeRequest(id++, body);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = decodeRequest(std::string_view(bytes).substr(0, cut));
      EXPECT_TRUE(std::holds_alternative<DecodeError>(decoded))
          << "prefix " << cut << "/" << bytes.size() << " decoded";
    }
  }
  for (const SampleReply& s : sampleReplies()) {
    const std::string bytes = encodeReply(id++, s.op, Status::Ok, s.body);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = decodeReply(std::string_view(bytes).substr(0, cut));
      EXPECT_TRUE(std::holds_alternative<DecodeError>(decoded))
          << "prefix " << cut << "/" << bytes.size() << " decoded";
    }
  }
}

// Bit-flip fuzz: decode must terminate with either a valid message or a
// typed error for every single-bit corruption of every sample message,
// and additionally for bursts of random byte garbage. ASan/UBSan turn
// any over-read into a hard failure.
TEST(RpcWireFuzz, BitFlipsNeverCrash) {
  size_t decodedOk = 0, decodedErr = 0;
  u64 id = 21;
  for (const RequestBody& body : sampleRequests()) {
    const std::string bytes = encodeRequest(id++, body);
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::string mutated = bytes;
      mutated[bit / 8] = static_cast<char>(mutated[bit / 8] ^ (1u << (bit % 8)));
      auto decoded = decodeRequest(mutated);
      if (std::holds_alternative<Request>(decoded)) {
        decodedOk += 1;  // a flip in a value byte is still a valid message
      } else {
        decodedErr += 1;
      }
    }
  }
  // Sanity: the fuzz actually exercised both outcomes.
  EXPECT_GT(decodedOk, 0u);
  EXPECT_GT(decodedErr, 0u);
}

TEST(RpcWireFuzz, RandomGarbageNeverCrashes) {
  common::Pcg32 rng(0xF00D);
  for (int i = 0; i < 5000; ++i) {
    std::string junk(rng.below(64), '\0');
    for (char& c : junk) c = static_cast<char>(rng.below(256));
    // Half the probes get a valid magic+version prefix so the fuzz
    // reaches the body decoders, not just the header checks.
    if (i % 2 == 0 && junk.size() >= 2) {
      junk[0] = static_cast<char>(kMagic);
      junk[1] = static_cast<char>(kVersion);
    }
    (void)decodeRequest(junk);
    (void)decodeReply(junk);
    (void)decodeHeader(junk);
  }
  SUCCEED();
}

TEST(RpcWire, CompactEncoding) {
  // The design claim: a small GET is ~20 bytes on the wire.
  const std::string bytes = encodeRequest(1, GetReq{"leaf/01011010"});
  EXPECT_LE(bytes.size(), 4 + 1 + 1 + 13u);  // header + id + len + key
}

TEST(RpcWire, NoForwardBitRoundTrips) {
  const std::string plain = encodeRequest(5, GetReq{"k"});
  const std::string marked = encodeRequest(5, GetReq{"k"}, /*noForward=*/true);
  auto d1 = decodeRequest(plain);
  auto d2 = decodeRequest(marked);
  ASSERT_TRUE(std::holds_alternative<Request>(d1));
  ASSERT_TRUE(std::holds_alternative<Request>(d2));
  EXPECT_FALSE(std::get<Request>(d1).header.noForward);
  EXPECT_TRUE(std::get<Request>(d2).header.noForward);
}

TEST(RpcWire, UndefinedRequestFlagBitsRejected) {
  // Byte 3 of a request is the flags field; only kNoForwardBit is
  // defined, so any other set bit is a future protocol — reject, don't
  // guess.
  std::string bytes = encodeRequest(5, GetReq{"k"}, /*noForward=*/true);
  bytes[3] = static_cast<char>(static_cast<u8>(bytes[3]) | 0x02);
  auto decoded = decodeRequest(bytes);
  ASSERT_TRUE(std::holds_alternative<DecodeError>(decoded));
  EXPECT_EQ(std::get<DecodeError>(decoded), DecodeError::BadField);
}

TEST(RpcWire, GossipHintTrailerRoundTrips) {
  std::string bytes = encodeReply(9, Op::Get, Status::Ok,
                                  GetRep{true, 4, "value"});
  const std::string withoutHint = bytes;
  appendGossipHint(bytes, GossipHint{0xFEEDu, 23});

  auto plain = decodeReply(withoutHint);
  ASSERT_TRUE(std::holds_alternative<Reply>(plain));
  EXPECT_FALSE(std::get<Reply>(plain).hint.has_value());

  auto hinted = decodeReply(bytes);
  ASSERT_TRUE(std::holds_alternative<Reply>(hinted));
  const Reply& rep = std::get<Reply>(hinted);
  EXPECT_EQ(rep.header.status, Status::Ok);  // hint bit masked back out
  ASSERT_TRUE(rep.hint.has_value());
  EXPECT_EQ(rep.hint->senderId, 0xFEEDu);
  EXPECT_EQ(rep.hint->version, 23u);
  const auto& body = std::get<GetRep>(rep.body);  // body survives the trailer
  EXPECT_TRUE(body.present);
  EXPECT_EQ(body.value, "value");

  // A hinted reply with the trailer torn off mid-varint is Truncated.
  auto torn = decodeReply(std::string_view(bytes).substr(0, bytes.size() - 1));
  if (std::holds_alternative<DecodeError>(torn)) {
    EXPECT_EQ(std::get<DecodeError>(torn), DecodeError::Truncated);
  }
}

TEST(RpcWire, RedirectCarriesOwnerAndHint) {
  // Status::Redirect is the one non-Ok status with a body: the fresh
  // owner endpoint. The gossip trailer composes with it.
  std::string bytes = encodeReply(
      4, Op::Put, Status::Redirect, RedirectRep{0xABCDu, 0x7F000001u, 9007, 6});
  appendGossipHint(bytes, GossipHint{0x1234u, 6});
  auto decoded = decodeReply(bytes);
  ASSERT_TRUE(std::holds_alternative<Reply>(decoded));
  const Reply& rep = std::get<Reply>(decoded);
  EXPECT_EQ(rep.header.status, Status::Redirect);
  const auto& body = std::get<RedirectRep>(rep.body);
  EXPECT_EQ(body.ownerId, 0xABCDu);
  EXPECT_EQ(body.host, 0x7F000001u);
  EXPECT_EQ(body.port, 9007u);
  EXPECT_EQ(body.version, 6u);
  ASSERT_TRUE(rep.hint.has_value());
  EXPECT_EQ(rep.hint->senderId, 0x1234u);
}

TEST(RpcWire, NodeEntryBadStateRejected) {
  // NodeState stops at Left (3); a table entry claiming state 7 is a
  // corrupted or future datagram, typed BadField.
  GossipSyncReq gs;
  gs.senderId = 1;
  gs.version = 1;
  NodeEntry bad;
  bad.id = 42;
  bad.port = 9001;
  bad.state = 7;
  gs.entries.push_back(bad);
  auto decoded = decodeRequest(encodeRequest(3, gs));
  ASSERT_TRUE(std::holds_alternative<DecodeError>(decoded));
  EXPECT_EQ(std::get<DecodeError>(decoded), DecodeError::BadField);
}

TEST(RpcWire, OverlayFieldFidelity) {
  JoinReq in{NodeEntry{0x77, 0x7F000001u, 9010, 3, 1, 0x78}};
  auto decoded = decodeRequest(encodeRequest(11, in));
  ASSERT_TRUE(std::holds_alternative<Request>(decoded));
  const auto& join = std::get<JoinReq>(std::get<Request>(decoded).body);
  EXPECT_EQ(join.joiner, in.joiner);

  HandoffReq ho;
  ho.entries.push_back(HandoffEntry{"leaf/0", 9, std::string("\x00\x01", 2)});
  auto hod = decodeRequest(encodeRequest(12, ho));
  ASSERT_TRUE(std::holds_alternative<Request>(hod));
  const auto& entries =
      std::get<HandoffReq>(std::get<Request>(hod).body).entries;
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "leaf/0");
  EXPECT_EQ(entries[0].version, 9u);
  EXPECT_EQ(entries[0].value, std::string("\x00\x01", 2));
}

}  // namespace
}  // namespace lht::rpc::wire
