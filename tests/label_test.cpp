// Unit tests for the Label bit-string algebra (paper Sec. 3.2 conventions).
#include "common/label.h"

#include <gtest/gtest.h>
#include <cmath>

#include "common/types.h"

namespace lht::common {
namespace {

TEST(Label, VirtualRootIsEmpty) {
  Label l;
  EXPECT_TRUE(l.isVirtualRoot());
  EXPECT_EQ(l.length(), 0u);
  EXPECT_EQ(l.str(), "#");
}

TEST(Label, RootIsHashZero) {
  Label r = Label::root();
  EXPECT_EQ(r.str(), "#0");
  EXPECT_EQ(r.length(), 1u);
  EXPECT_EQ(r.bit(0), 0);
}

TEST(Label, ChildAndParentRoundTrip) {
  Label l = Label::root().child(1).child(0).child(1);
  EXPECT_EQ(l.str(), "#0101");
  EXPECT_EQ(l.parent().str(), "#010");
  EXPECT_EQ(l.parent().parent().parent(), Label::root());
}

TEST(Label, ParseAndStrRoundTrip) {
  for (const char* text : {"#", "#0", "#01", "#0110", "#01001110001"}) {
    auto l = Label::parse(text);
    ASSERT_TRUE(l.has_value()) << text;
    EXPECT_EQ(l->str(), text);
  }
}

TEST(Label, ParseRejectsMalformed) {
  EXPECT_FALSE(Label::parse("").has_value());
  EXPECT_FALSE(Label::parse("01").has_value());
  EXPECT_FALSE(Label::parse("#012").has_value());
  EXPECT_FALSE(Label::parse("#0 1").has_value());
  EXPECT_FALSE(Label::parse(std::string("#") + std::string(60, '0')).has_value());
}

TEST(Label, BitAccess) {
  auto l = *Label::parse("#0110");
  EXPECT_EQ(l.bit(0), 0);
  EXPECT_EQ(l.bit(1), 1);
  EXPECT_EQ(l.bit(2), 1);
  EXPECT_EQ(l.bit(3), 0);
  EXPECT_EQ(l.lastBit(), 0);
}

TEST(Label, Sibling) {
  EXPECT_EQ(Label::parse("#010")->sibling().str(), "#011");
  EXPECT_EQ(Label::parse("#011")->sibling().str(), "#010");
  EXPECT_THROW(Label::root().sibling(), InvariantError);
}

TEST(Label, PrefixAndIsPrefixOf) {
  auto l = *Label::parse("#01101");
  EXPECT_EQ(l.prefix(0).str(), "#");
  EXPECT_EQ(l.prefix(3).str(), "#011");
  EXPECT_TRUE(Label::parse("#011")->isPrefixOf(l));
  EXPECT_TRUE(l.isPrefixOf(l));
  EXPECT_FALSE(Label::parse("#010")->isPrefixOf(l));
  EXPECT_FALSE(l.isPrefixOf(*Label::parse("#011")));
}

TEST(Label, TrailingRunLength) {
  EXPECT_EQ(Label().trailingRunLength(), 0u);
  EXPECT_EQ(Label::parse("#0")->trailingRunLength(), 1u);
  EXPECT_EQ(Label::parse("#00")->trailingRunLength(), 2u);
  EXPECT_EQ(Label::parse("#011")->trailingRunLength(), 2u);
  EXPECT_EQ(Label::parse("#0110")->trailingRunLength(), 1u);
  EXPECT_EQ(Label::parse("#0111")->trailingRunLength(), 3u);
}

TEST(Label, LeftmostRightmostPaths) {
  EXPECT_TRUE(Label::parse("#00")->isLeftmostPath());
  EXPECT_TRUE(Label::parse("#0")->isLeftmostPath());
  EXPECT_FALSE(Label::parse("#001")->isLeftmostPath());
  EXPECT_TRUE(Label::parse("#0")->isRightmostPath());
  EXPECT_TRUE(Label::parse("#011")->isRightmostPath());
  EXPECT_FALSE(Label::parse("#0110")->isRightmostPath());
  EXPECT_FALSE(Label().isRightmostPath());
}

TEST(Label, IntervalsAreDyadic) {
  EXPECT_EQ(Label().interval(), unitInterval());
  EXPECT_EQ(Label::root().interval(), unitInterval());
  EXPECT_EQ(Label::parse("#00")->interval(), (Interval{0.0, 0.5}));
  EXPECT_EQ(Label::parse("#01")->interval(), (Interval{0.5, 1.0}));
  EXPECT_EQ(Label::parse("#0110")->interval(), (Interval{0.75, 0.875}));
}

TEST(Label, ChildrenPartitionTheInterval) {
  for (const char* text : {"#0", "#01", "#0010", "#01101"}) {
    Label node = *Label::parse(text);
    Interval iv = node.interval();
    Interval l = node.child(0).interval();
    Interval r = node.child(1).interval();
    EXPECT_DOUBLE_EQ(l.lo, iv.lo);
    EXPECT_DOUBLE_EQ(l.hi, r.lo);
    EXPECT_DOUBLE_EQ(r.hi, iv.hi);
  }
}

TEST(Label, FromKeyMatchesPaperExample) {
  // Paper Sec. 5: mu(0.4, 6) = #00110 — root prefix "#0" then 0110, the
  // binary of 0.4. The paper's length 6 counts the '#'; our depth counts
  // bits only, so depth 5 yields the same string.
  EXPECT_EQ(Label::fromKey(0.4, 5).str(), "#00110");
}

TEST(Label, FromKeyCoversKey) {
  for (double key : {0.0, 0.1, 0.25, 0.5, 0.7321, 0.999, 1.0}) {
    for (u32 depth : {2u, 5u, 20u}) {
      Label mu = Label::fromKey(key, depth);
      EXPECT_EQ(mu.length(), depth);
      // Every prefix of mu covers key (with key==1.0 clamped to the last cell).
      const double k = key == 1.0 ? std::nextafter(1.0, 0.0) : key;
      for (u32 n = 1; n <= depth; ++n) {
        EXPECT_TRUE(mu.prefix(n).covers(k))
            << "key=" << key << " depth=" << depth << " n=" << n;
      }
    }
  }
}

TEST(Label, OrderingFollowsTreePosition) {
  EXPECT_LT(*Label::parse("#00"), *Label::parse("#01"));
  EXPECT_LT(*Label::parse("#0"), *Label::parse("#00"));   // prefix first
  EXPECT_LT(*Label::parse("#001"), *Label::parse("#01"));
  EXPECT_EQ(*Label::parse("#010"), *Label::parse("#010"));
}

TEST(Label, HashDistinguishesLengths) {
  EXPECT_NE(Label::parse("#0")->hashValue(), Label::parse("#00")->hashValue());
  EXPECT_NE(Label::parse("#01")->hashValue(), Label::parse("#001")->hashValue());
}

TEST(Label, FromBitsRejectsStrayBits) {
  EXPECT_THROW(Label::fromBits(0b100, 2), InvariantError);
  EXPECT_THROW(Label::fromBits(0, Label::kMaxBits + 1), InvariantError);
}

}  // namespace
}  // namespace lht::common
