#include "dht/local_dht.h"

#include <gtest/gtest.h>

namespace lht::dht {
namespace {

TEST(LocalDht, PutGetRemove) {
  LocalDht d;
  EXPECT_FALSE(d.get("k").has_value());
  d.put("k", "v1");
  EXPECT_EQ(d.get("k"), "v1");
  d.put("k", "v2");
  EXPECT_EQ(d.get("k"), "v2");
  EXPECT_TRUE(d.remove("k"));
  EXPECT_FALSE(d.remove("k"));
  EXPECT_FALSE(d.get("k").has_value());
}

TEST(LocalDht, ApplyCreatesMutatesErases) {
  LocalDht d;
  // Create from absent.
  EXPECT_FALSE(d.apply("k", [](std::optional<Value>& v) {
    EXPECT_FALSE(v.has_value());
    v = "fresh";
  }));
  EXPECT_EQ(d.get("k"), "fresh");
  // Mutate existing.
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { *v += "!"; }));
  EXPECT_EQ(d.get("k"), "fresh!");
  // Erase via reset.
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { v.reset(); }));
  EXPECT_FALSE(d.get("k").has_value());
  EXPECT_EQ(d.size(), 0u);
}

TEST(LocalDht, EveryRoutedOpCountsOneLookup) {
  LocalDht d;
  d.put("a", "1");
  d.get("a");
  d.get("missing");
  d.apply("a", [](std::optional<Value>& v) { *v = "2"; });
  d.remove("a");
  const auto& st = d.stats();
  EXPECT_EQ(st.lookups, 5u);
  EXPECT_EQ(st.puts, 1u);
  EXPECT_EQ(st.gets, 2u);
  EXPECT_EQ(st.applies, 1u);
  EXPECT_EQ(st.removes, 1u);
  EXPECT_EQ(st.hops, 5u);
}

TEST(LocalDht, StoreDirectBypassesAccounting) {
  LocalDht d;
  d.storeDirect("boot", "strap");
  EXPECT_EQ(d.stats().lookups, 0u);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.get("boot"), "strap");
}

TEST(LocalDht, ResetStats) {
  LocalDht d;
  d.put("a", "1");
  d.resetStats();
  EXPECT_EQ(d.stats().lookups, 0u);
  EXPECT_EQ(d.size(), 1u);
}

}  // namespace
}  // namespace lht::dht
