// Maintenance-cost behaviour (paper Secs. 4, 8, 9.2): split cost accounting,
// Theorem 2 locality, merge as the dual of split, and the alpha statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "dht/local_dht.h"
#include "lht/bucket.h"
#include "lht/lht_index.h"
#include "lht/naming.h"
#include "pht/pht_index.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

using common::Label;

TEST(Split, AlgorithmOneLabels) {
  // lambda = p011*: remote gets lambda·0, local keeps lambda·1.
  LeafBucket b{*Label::parse("#011"), {}};
  for (double k : {0.76, 0.8, 0.9, 0.99}) b.records.push_back({k, "x"});
  LeafBucket remote = splitBucket(b);
  EXPECT_EQ(remote.label, *Label::parse("#0110"));
  EXPECT_EQ(b.label, *Label::parse("#0111"));
  // lambda ends in 0: remote gets lambda·1, local keeps lambda·0.
  LeafBucket c{*Label::parse("#010"), {}};
  for (double k : {0.26, 0.3, 0.4, 0.45}) c.records.push_back({k, "x"});
  LeafBucket remote2 = splitBucket(c);
  EXPECT_EQ(remote2.label, *Label::parse("#0101"));
  EXPECT_EQ(c.label, *Label::parse("#0100"));
}

TEST(Split, PartitionsAtIntervalMedian) {
  LeafBucket b{*Label::parse("#01"), {}};  // covers [0.5, 1)
  for (double k : {0.55, 0.6, 0.74, 0.75, 0.8, 0.95}) b.records.push_back({k, "x"});
  LeafBucket remote = splitBucket(b);  // median 0.75
  // local = #011 covers [0.75, 1); remote = #010 covers [0.5, 0.75).
  for (const auto& r : b.records) EXPECT_GE(r.key, 0.75);
  for (const auto& r : remote.records) EXPECT_LT(r.key, 0.75);
  EXPECT_EQ(b.records.size() + remote.records.size(), 6u);
}

TEST(Split, RootSplit) {
  LeafBucket b{Label::root(), {}};
  for (double k : {0.1, 0.6}) b.records.push_back({k, "x"});
  LeafBucket remote = splitBucket(b);
  EXPECT_EQ(b.label, *Label::parse("#00"));
  EXPECT_EQ(remote.label, *Label::parse("#01"));
  EXPECT_EQ(dhtKeyFor(b.label), "#");          // stays at the root's key
  EXPECT_EQ(dhtKeyFor(remote.label), "#0");    // moves to the old label
}

TEST(Maintenance, LhtSplitCostsOneLookupAndHalfBucket) {
  dht::LocalDht d;
  LhtIndex::Options o;
  o.thetaSplit = 20;
  o.maxDepth = 20;
  LhtIndex idx(d, o);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 42);
  for (const auto& r : data) idx.insert(r);

  const auto& m = idx.meters().maintenance;
  ASSERT_GT(m.splits, 20u);
  // Eq. 1: exactly one DHT-lookup per split.
  EXPECT_EQ(m.dhtLookups, m.splits);
  // ~theta/2 records moved per split.
  const double movedPerSplit =
      static_cast<double>(m.recordsMoved) / static_cast<double>(m.splits);
  EXPECT_NEAR(movedPerSplit, 10.0, 2.5);
}

TEST(Maintenance, PhtSplitCostsFourLookupsAndWholeBucket) {
  dht::LocalDht d;
  pht::PhtIndex::Options o;
  o.thetaSplit = 20;
  o.maxDepth = 20;
  pht::PhtIndex idx(d, o);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 42);
  for (const auto& r : data) idx.insert(r);

  const auto& m = idx.meters().maintenance;
  ASSERT_GT(m.splits, 20u);
  // Eq. 2: ~4 lookups per split (boundary leaves lack one link).
  const double lookupsPerSplit =
      static_cast<double>(m.dhtLookups) / static_cast<double>(m.splits);
  EXPECT_GT(lookupsPerSplit, 3.5);
  EXPECT_LE(lookupsPerSplit, 4.0);
  // The whole saturated bucket moves: ~theta records per split.
  const double movedPerSplit =
      static_cast<double>(m.recordsMoved) / static_cast<double>(m.splits);
  EXPECT_NEAR(movedPerSplit, 20.0, 2.5);
}

TEST(Maintenance, LhtVsPhtSavingsMatchEq3) {
  // Fig. 7 shape: LHT moves ~1/2 the records and pays ~1/4 the lookups.
  dht::LocalDht d1, d2;
  LhtIndex::Options lo;
  lo.thetaSplit = 50;
  LhtIndex lht(d1, lo);
  pht::PhtIndex::Options po;
  po.thetaSplit = 50;
  pht::PhtIndex pht(d2, po);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 5000, 7);
  for (const auto& r : data) {
    lht.insert(r);
    pht.insert(r);
  }
  const auto& ml = lht.meters().maintenance;
  const auto& mp = pht.meters().maintenance;
  const double movedRatio =
      static_cast<double>(ml.recordsMoved) / static_cast<double>(mp.recordsMoved);
  const double lookupRatio =
      static_cast<double>(ml.dhtLookups) / static_cast<double>(mp.dhtLookups);
  EXPECT_NEAR(movedRatio, 0.5, 0.1);
  EXPECT_NEAR(lookupRatio, 0.25, 0.08);
}

TEST(Maintenance, AverageAlphaMatchesClosedForm) {
  // Sec. 9.2: with the label occupying one record slot, uniform data gives
  // average alpha = 1/2 + 1/(2 theta).
  for (common::u32 theta : {40u, 160u}) {
    dht::LocalDht d;
    LhtIndex::Options o;
    o.thetaSplit = theta;
    o.countLabelSlot = true;
    LhtIndex idx(d, o);
    auto data =
        workload::makeDataset(workload::Distribution::Uniform, 40 * theta, 99);
    for (const auto& r : data) idx.insert(r);
    const double expect = 0.5 + 0.5 / static_cast<double>(theta);
    EXPECT_GT(idx.meters().alpha.samples, 10u);
    EXPECT_NEAR(idx.meters().alpha.mean(), expect, 0.03) << theta;
  }
}

TEST(Maintenance, AlphaWithoutLabelSlotIsHalf) {
  dht::LocalDht d;
  LhtIndex::Options o;
  o.thetaSplit = 64;
  o.countLabelSlot = false;
  LhtIndex idx(d, o);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 4096, 5);
  for (const auto& r : data) idx.insert(r);
  EXPECT_NEAR(idx.meters().alpha.mean(), 0.5, 0.03);
}

TEST(Maintenance, MergeIsDualOfSplit) {
  dht::LocalDht d;
  LhtIndex::Options o;
  o.thetaSplit = 8;
  LhtIndex idx(d, o);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 400, 13);
  for (const auto& r : data) idx.insert(r);
  const size_t splitsBefore = idx.meters().maintenance.splits;
  ASSERT_GT(splitsBefore, 0u);
  // Delete everything; the tree must shrink via merges.
  for (const auto& r : data) idx.erase(r.key);
  EXPECT_EQ(idx.recordCount(), 0u);
  const auto& m = idx.meters().maintenance;
  EXPECT_GT(m.merges, m.splits / 2);
  // The tree collapses back toward a single bucket (one merge per erase, so
  // a short residual chain may remain once the records run out).
  size_t buckets = 0;
  idx.forEachBucket([&](const LeafBucket&) { ++buckets; });
  EXPECT_LE(buckets, 16u);
}

TEST(Maintenance, OneSplitPerInsert) {
  // Even with heavily clustered input, a single insert performs at most one
  // split (paper Sec. 5's anti-cascading rule).
  dht::LocalDht d;
  LhtIndex::Options o;
  o.thetaSplit = 8;
  LhtIndex idx(d, o);
  size_t lastSplits = 0;
  common::Pcg32 rng(17);
  for (int i = 0; i < 400; ++i) {
    // Cluster keys inside a narrow band to force deep, lopsided splits.
    idx.insert({0.40625 + rng.nextDouble() / 1024.0, "c"});
    const size_t s = idx.meters().maintenance.splits;
    EXPECT_LE(s - lastSplits, 1u) << i;
    lastSplits = s;
  }
}

TEST(Maintenance, InsertionLookupsSeparateFromMaintenance) {
  dht::LocalDht d;
  LhtIndex idx(d, LhtIndex::Options{.thetaSplit = 16, .maxDepth = 20});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 3);
  for (const auto& r : data) idx.insert(r);
  const auto& m = idx.meters();
  // Insertion lookups = locate + ship per record; far more than maintenance.
  EXPECT_GT(m.insertion.dhtLookups, m.maintenance.dhtLookups);
  EXPECT_EQ(m.insertion.recordsMoved, 500u);
  // Cross-check against the substrate's own accounting.
  EXPECT_EQ(d.stats().lookups,
            m.insertion.dhtLookups + m.maintenance.dhtLookups);
}

}  // namespace
}  // namespace lht::core
