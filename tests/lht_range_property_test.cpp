// Property tests for range queries (paper Sec. 6): completeness against the
// oracle on randomized trees and workloads, plus the B+3 bandwidth bound.
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

struct RangeCase {
  workload::Distribution dist;
  size_t n;
  common::u32 theta;
  common::u64 seed;
};

class LhtRangeProperty : public ::testing::TestWithParam<RangeCase> {};

TEST_P(LhtRangeProperty, MatchesOracleOnRandomRanges) {
  const RangeCase& c = GetParam();
  dht::LocalDht d;
  LhtIndex::Options o;
  o.thetaSplit = c.theta;
  o.maxDepth = 30;
  LhtIndex idx(d, o);
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(c.dist, c.n, c.seed);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }

  common::Pcg32 rng(c.seed ^ 0xABCDu);
  for (int q = 0; q < 120; ++q) {
    // Random spans across four orders of magnitude, plus boundary-aligned
    // and degenerate ranges.
    double lo, hi;
    switch (q % 5) {
      case 0: {
        const double span = std::pow(2.0, -1.0 - static_cast<double>(rng.below(10)));
        auto spec = workload::makeRange(span, rng);
        lo = spec.lo;
        hi = spec.hi;
        break;
      }
      case 1:  // dyadic-aligned bounds, the tree's own cut points
        lo = static_cast<double>(rng.below(16)) / 16.0;
        hi = lo + static_cast<double>(1 + rng.below(4)) / 16.0;
        hi = std::min(hi, 1.0);
        break;
      case 2:  // whole space
        lo = 0.0;
        hi = 1.0;
        break;
      case 3:  // tiny range around an existing key
        lo = data[rng.below(static_cast<common::u32>(data.size()))].key;
        hi = std::min(1.0, lo + 1e-9);
        break;
      default:  // random pair
        lo = rng.nextDouble();
        hi = rng.nextDouble();
        if (lo > hi) std::swap(lo, hi);
        break;
    }
    if (hi <= lo) continue;
    auto mine = idx.rangeQuery(lo, hi);
    auto truth = oracle.rangeQuery(lo, hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(mine.records.size(), truth.records.size())
        << "[" << lo << ", " << hi << ") q=" << q;
    for (size_t i = 0; i < mine.records.size(); ++i) {
      ASSERT_EQ(mine.records[i], truth.records[i]) << i;
    }
    // Paper Sec. 6.3: at most B + 3 DHT-lookups for B >= 2 result buckets
    // (a single-leaf range degenerates to an exact-match lookup instead).
    if (mine.stats.bucketsTouched >= 2) {
      EXPECT_LE(mine.stats.dhtLookups, mine.stats.bucketsTouched + 3)
          << "[" << lo << ", " << hi << ")";
    }
    // Latency never exceeds bandwidth, and both are positive.
    EXPECT_LE(mine.stats.parallelSteps, mine.stats.dhtLookups);
    EXPECT_GE(mine.stats.dhtLookups, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LhtRangeProperty,
    ::testing::Values(
        RangeCase{workload::Distribution::Uniform, 100, 4, 1},
        RangeCase{workload::Distribution::Uniform, 1000, 8, 2},
        RangeCase{workload::Distribution::Uniform, 3000, 16, 3},
        RangeCase{workload::Distribution::Gaussian, 100, 4, 4},
        RangeCase{workload::Distribution::Gaussian, 1000, 8, 5},
        RangeCase{workload::Distribution::Gaussian, 3000, 16, 6},
        RangeCase{workload::Distribution::Zipf, 1000, 8, 7},
        RangeCase{workload::Distribution::Uniform, 1, 4, 8},
        RangeCase{workload::Distribution::Uniform, 20000, 64, 9}),
    [](const auto& info) {
      const RangeCase& c = info.param;
      return workload::distributionName(c.dist) + "_n" + std::to_string(c.n) +
             "_t" + std::to_string(c.theta);
    });

TEST(LhtRange, EmptyAndDegenerateRanges) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 200, 10);
  for (const auto& r : data) idx.insert(r);
  EXPECT_TRUE(idx.rangeQuery(0.5, 0.5).records.empty());
  EXPECT_TRUE(idx.rangeQuery(0.7, 0.3).records.empty());
  EXPECT_EQ(idx.rangeQuery(0.5, 0.5).stats.dhtLookups, 0u);
}

TEST(LhtRange, SingleLeafRangeIsCheap) {
  // Case 1 of Algorithm 4: range within one leaf resolves via exact lookup.
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 11);
  for (const auto& r : data) idx.insert(r);
  auto rr = idx.rangeQuery(0.5, 0.5 + 1e-12);
  EXPECT_LE(rr.stats.dhtLookups, 8u);  // ~1 + log(D/2)
}

TEST(LhtRange, ResultsAreSortedByKey) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 800, 12);
  for (const auto& r : data) idx.insert(r);
  auto rr = idx.rangeQuery(0.1, 0.9);
  EXPECT_TRUE(std::is_sorted(
      rr.records.begin(), rr.records.end(),
      [](const auto& a, const auto& b) { return a.key < b.key; }));
}

TEST(LhtRange, LatencyIsLogarithmicNotLinear) {
  // A wide range over many buckets must resolve in far fewer parallel steps
  // than buckets (the whole point of the local-tree fan-out).
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 8000, 13);
  for (const auto& r : data) idx.insert(r);
  auto rr = idx.rangeQuery(0.05, 0.95);
  ASSERT_GT(rr.stats.bucketsTouched, 100u);
  EXPECT_LT(rr.stats.parallelSteps, rr.stats.bucketsTouched / 4);
}

}  // namespace
}  // namespace lht::core
