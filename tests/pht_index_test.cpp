// Tests for the PHT baseline: trie structure, B+ links, both range
// algorithms, and oracle agreement.
#include "pht/pht_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dht/chord.h"
#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "net/sim_network.h"
#include "workload/generators.h"

namespace lht::pht {
namespace {

using common::Label;

PhtIndex::Options smallOpts(common::u32 theta = 8,
                            PhtIndex::RangeMode mode = PhtIndex::RangeMode::Sequential) {
  PhtIndex::Options o;
  o.thetaSplit = theta;
  o.maxDepth = 24;
  o.rangeMode = mode;
  return o;
}

TEST(PhtIndex, EmptyIndexIsRootLeaf) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts());
  EXPECT_TRUE(d.get("#0").has_value());
  EXPECT_FALSE(idx.find(0.5).record.has_value());
  EXPECT_EQ(idx.recordCount(), 0u);
}

TEST(PhtIndex, InsertFindErase) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts());
  idx.insert({0.25, "a"});
  idx.insert({0.75, "b"});
  EXPECT_EQ(idx.find(0.25).record->payload, "a");
  EXPECT_TRUE(idx.erase(0.25).ok);
  EXPECT_FALSE(idx.find(0.25).record.has_value());
  EXPECT_FALSE(idx.erase(0.25).ok);
}

TEST(PhtIndex, SplitLeavesInternalMarker) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(4));
  for (double k : {0.1, 0.2, 0.6, 0.7, 0.8}) idx.insert({k, "x"});
  // The root must have split: "#0" is now an internal marker.
  auto v = d.get("#0");
  ASSERT_TRUE(v.has_value());
  auto node = PhtNode::deserialize(*v);
  ASSERT_TRUE(node.has_value());
  EXPECT_FALSE(node->isLeaf());
  EXPECT_TRUE(d.get("#00").has_value());
  EXPECT_TRUE(d.get("#01").has_value());
}

TEST(PhtIndex, LeafChainIsConsistent) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(6));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 600, 31);
  for (const auto& r : data) idx.insert(r);

  // Walk the chain: intervals must tile [0,1) and links must be symmetric.
  std::vector<PhtNode> leaves;
  idx.forEachLeaf([&](const PhtNode& n) { leaves.push_back(n); });
  ASSERT_GT(leaves.size(), 4u);
  double edge = 0.0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_DOUBLE_EQ(leaves[i].label.interval().lo, edge);
    edge = leaves[i].label.interval().hi;
    if (i > 0) {
      ASSERT_TRUE(leaves[i].prevLeaf.has_value());
      EXPECT_EQ(*leaves[i].prevLeaf, leaves[i - 1].label);
      ASSERT_TRUE(leaves[i - 1].nextLeaf.has_value());
      EXPECT_EQ(*leaves[i - 1].nextLeaf, leaves[i].label);
    }
  }
  EXPECT_FALSE(leaves.front().prevLeaf.has_value());
  EXPECT_FALSE(leaves.back().nextLeaf.has_value());
  EXPECT_DOUBLE_EQ(edge, 1.0);
}

TEST(PhtIndex, LookupCostIsLogD) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 32);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(33);
  double total = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i)
    total += static_cast<double>(idx.lookup(rng.nextDouble()).stats.dhtLookups);
  // log2(24) ~ 4.6; must stay well below D.
  EXPECT_LT(total / n, 7.0);
}

class PhtOracleTest
    : public ::testing::TestWithParam<std::pair<workload::Distribution, int>> {};

TEST_P(PhtOracleTest, RangeQueriesMatchOracleBothModes) {
  auto [dist, seed] = GetParam();
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(8));
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(dist, 1200, static_cast<common::u64>(seed));
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  common::Pcg32 rng(static_cast<common::u64>(seed) + 100);
  for (int q = 0; q < 60; ++q) {
    auto spec = workload::makeRange(0.01 + 0.4 * rng.nextDouble(), rng);
    auto seq = idx.rangeSequential(spec.lo, spec.hi);
    auto par = idx.rangeParallel(spec.lo, spec.hi);
    auto truth = oracle.rangeQuery(spec.lo, spec.hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(seq.records.size(), truth.records.size()) << q;
    ASSERT_EQ(par.records.size(), truth.records.size()) << q;
    for (size_t i = 0; i < truth.records.size(); ++i) {
      EXPECT_EQ(seq.records[i], truth.records[i]);
      EXPECT_EQ(par.records[i], truth.records[i]);
    }
    // Sequential: latency == bandwidth. Parallel: latency <= bandwidth.
    EXPECT_EQ(seq.stats.parallelSteps, seq.stats.dhtLookups);
    EXPECT_LE(par.stats.parallelSteps, par.stats.dhtLookups);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, PhtOracleTest,
    ::testing::Values(std::pair{workload::Distribution::Uniform, 1},
                      std::pair{workload::Distribution::Uniform, 2},
                      std::pair{workload::Distribution::Gaussian, 3},
                      std::pair{workload::Distribution::Gaussian, 4},
                      std::pair{workload::Distribution::Zipf, 5}),
    [](const auto& info) {
      return workload::distributionName(info.param.first) + "_s" +
             std::to_string(info.param.second);
    });

TEST(PhtIndex, ParallelCostsMoreBandwidthButLessLatency) {
  // Fig. 9/10 shape on one instance.
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 4000, 40);
  for (const auto& r : data) idx.insert(r);
  auto seq = idx.rangeSequential(0.2, 0.7);
  auto par = idx.rangeParallel(0.2, 0.7);
  EXPECT_GT(par.stats.dhtLookups, seq.stats.dhtLookups);
  EXPECT_LT(par.stats.parallelSteps, seq.stats.parallelSteps / 4);
}

TEST(PhtIndex, MinMax) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(8));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 41);
  double lo = 2.0, hi = -1.0;
  for (const auto& r : data) {
    idx.insert(r);
    lo = std::min(lo, r.key);
    hi = std::max(hi, r.key);
  }
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, lo);
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, hi);
}

TEST(PhtIndex, MergeRestoresLeaf) {
  dht::LocalDht d;
  PhtIndex idx(d, smallOpts(6));
  auto data = workload::makeDataset(workload::Distribution::Uniform, 300, 42);
  for (const auto& r : data) idx.insert(r);
  ASSERT_GT(idx.meters().maintenance.splits, 0u);
  for (const auto& r : data) idx.erase(r.key);
  EXPECT_EQ(idx.recordCount(), 0u);
  EXPECT_GT(idx.meters().maintenance.merges, 0u);
  // The chain still tiles [0,1).
  std::vector<PhtNode> leaves;
  idx.forEachLeaf([&](const PhtNode& n) { leaves.push_back(n); });
  double edge = 0.0;
  for (const auto& n : leaves) {
    EXPECT_DOUBLE_EQ(n.label.interval().lo, edge);
    edge = n.label.interval().hi;
  }
  EXPECT_DOUBLE_EQ(edge, 1.0);
}

TEST(PhtIndex, WorksOnChordSubstrate) {
  net::SimNetwork net;
  dht::ChordDht::Options copts;
  copts.initialPeers = 16;
  dht::ChordDht d(net, copts);
  PhtIndex idx(d, smallOpts(8, PhtIndex::RangeMode::Parallel));
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Uniform, 300, 43);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto mine = idx.rangeQuery(0.1, 0.6);
  EXPECT_EQ(mine.records.size(), oracle.rangeQuery(0.1, 0.6).records.size());
}

}  // namespace
}  // namespace lht::pht
