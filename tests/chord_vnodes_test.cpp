// Tests for Chord virtual nodes: load-balance improvement and peer-scoped
// membership semantics (all of a peer's ring points join/leave together).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dht/chord.h"
#include "net/sim_network.h"

namespace lht::dht {
namespace {

ChordDht makeRing(net::SimNetwork& net, size_t peers, size_t vnodes,
                  size_t replication = 1) {
  ChordDht::Options o;
  o.initialPeers = peers;
  o.virtualNodes = vnodes;
  o.replication = replication;
  o.seed = 7;
  return ChordDht(net, o);
}

/// Largest share of all keys held by a single ring point. Virtual nodes cut
/// every long arc, so this shrinks as vnodes grow.
double maxPeerShare(const ChordDht& d, size_t totalKeys) {
  size_t maxKeys = 0;
  for (auto id : d.nodeIds()) maxKeys = std::max(maxKeys, d.keysOn(id));
  return static_cast<double>(maxKeys) / static_cast<double>(totalKeys);
}

TEST(ChordVirtualNodes, RingHasVnodeTimesPeers) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 10, 8);
  EXPECT_EQ(d.nodeIds().size(), 80u);
  EXPECT_EQ(d.peerCount(), 10u);
  EXPECT_TRUE(d.checkRing());
}

TEST(ChordVirtualNodes, ImproveKeyBalance) {
  const int keys = 4000;
  net::SimNetwork net1, net2;
  ChordDht flat = makeRing(net1, 16, 1);
  ChordDht smooth = makeRing(net2, 16, 16);
  for (int i = 0; i < keys; ++i) {
    flat.put("k" + std::to_string(i), "v");
    smooth.put("k" + std::to_string(i), "v");
  }
  // With 16 peers the fair share is 1/16 = 6.25%. A single ring point per
  // peer routinely gives some peer several times that; 16 vnodes per peer
  // divide every arc, so the largest *ring-point* share shrinks sharply.
  EXPECT_LT(maxPeerShare(smooth, keys), maxPeerShare(flat, keys));
  EXPECT_TRUE(smooth.checkRing());
}

TEST(ChordVirtualNodes, LeaveRemovesAllRingPoints) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 6, 4);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  auto ids = d.nodeIds();
  d.leave(ids[5]);
  EXPECT_EQ(d.peerCount(), 5u);
  EXPECT_EQ(d.nodeIds().size(), 20u);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_TRUE(d.checkRing());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(ChordVirtualNodes, ReplicasLandOnDistinctPeers) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8, 8, /*replication=*/3);
  for (int i = 0; i < 300; ++i) d.put("k" + std::to_string(i), "v");
  ASSERT_TRUE(d.checkReplication());
  // Kill any peer: every key must survive, because its replicas live on
  // other *peers*, not merely other ring points of the same peer.
  auto ids = d.nodeIds();
  d.fail(ids[3]);
  EXPECT_EQ(d.size(), 300u);
  EXPECT_TRUE(d.checkReplication());
}

TEST(ChordVirtualNodes, FailWithVnodesLosesNothingWithReplication) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 10, 4, /*replication=*/2);
  for (int i = 0; i < 250; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  common::Pcg32 rng(9);
  for (int round = 0; round < 4; ++round) {
    auto ids = d.nodeIds();
    d.fail(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    d.join("fresh-" + std::to_string(round));
    ASSERT_EQ(d.size(), 250u) << round;
    ASSERT_TRUE(d.checkRing()) << round;
    ASSERT_TRUE(d.checkReplication()) << round;
  }
}

}  // namespace
}  // namespace lht::dht
