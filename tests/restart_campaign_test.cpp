// Tier-1 smoke slice of the restart campaign (DESIGN.md §11): a couple of
// seeds, every I/O boundary killed, every kill reopened cold and verified
// against the oracle. The full 16-seed campaign lives in the `slow` ctest
// configuration (slow_campaign_test.cpp) and runs from scripts/check.sh.
#include <gtest/gtest.h>

#include <filesystem>

#include "sim/restart_campaign.h"

namespace lht::sim {
namespace {

// Each test gets its own scratch root: ctest runs discovered tests in
// parallel, and two campaigns sharing a directory would trample each other.
RestartCampaignConfig smokeConfig(const std::string& scratch) {
  RestartCampaignConfig cfg;
  cfg.seeds = 2;
  cfg.inserts = 8;
  cfg.erases = 4;
  cfg.compactEvery = 4;
  cfg.scratchRoot =
      (std::filesystem::temp_directory_path() / scratch).string();
  return cfg;
}

TEST(RestartCampaign, SmokeEveryBoundaryRecovers) {
  const RestartCampaignReport report =
      runRestartCampaign(smokeConfig("lht_restart_smoke"));

  for (const auto& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());

  // Even the smoke slice must reach the states it exists to test: kills
  // inside index ops, inside compactions, and before bootstrap finished;
  // and at least some reopens must have truncated a genuinely torn tail.
  EXPECT_GT(report.scenarios, 50u);
  EXPECT_GT(report.opCrashes, 0u);
  EXPECT_GT(report.compactionCrashes, 0u);
  EXPECT_GT(report.bootstrapCrashes, 0u);
  EXPECT_GT(report.tornTailRecoveries, 0u);
  EXPECT_GT(report.replayedRecords, 0u);
}

TEST(RestartCampaign, ReportIsDeterministic) {
  const RestartCampaignReport a =
      runRestartCampaign(smokeConfig("lht_restart_det"));
  const RestartCampaignReport b =
      runRestartCampaign(smokeConfig("lht_restart_det"));

  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.opCrashes, b.opCrashes);
  EXPECT_EQ(a.compactionCrashes, b.compactionCrashes);
  EXPECT_EQ(a.bootstrapCrashes, b.bootstrapCrashes);
  EXPECT_EQ(a.tornTailRecoveries, b.tornTailRecoveries);
  EXPECT_EQ(a.replayedRecords, b.replayedRecords);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_TRUE(a.ok());
}

}  // namespace
}  // namespace lht::sim
