// Cross-substrate churn coverage: both index designs stay oracle-correct
// while peers join and leave on every simulated overlay (the paper's
// "robustness is the DHT's job" division of labour, exercised everywhere).
#include <gtest/gtest.h>

#include <string>

#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/pastry.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "pht/pht_index.h"
#include "workload/generators.h"

namespace lht {
namespace {

/// Drives inserts interleaved with join/leave events, then checks a full
/// range query against the oracle.
template <typename DhtT, typename JoinFn, typename LeaveFn>
void runChurnWorkload(DhtT& d, index::OrderedIndex& idx, JoinFn join,
                      LeaveFn leave, common::u64 seed) {
  index::ReferenceIndex oracle;
  common::Pcg32 rng(seed);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 350, seed);
  for (size_t i = 0; i < data.size(); ++i) {
    idx.insert(data[i]);
    oracle.insert(data[i]);
    if (i % 50 == 25) join("churn-" + std::to_string(i));
    if (i % 50 == 49) leave();
  }
  auto mine = idx.rangeQuery(0.0, 1.0);
  ASSERT_EQ(mine.records.size(), oracle.recordCount());
  auto mid = idx.rangeQuery(0.3, 0.7);
  ASSERT_EQ(mid.records.size(), oracle.rangeQuery(0.3, 0.7).records.size());
}

TEST(CrossSubstrateChurn, LhtOnPastry) {
  net::SimNetwork net;
  dht::PastryDht::Options o;
  o.initialPeers = 12;
  dht::PastryDht d(net, o);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  common::Pcg32 pick(1);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.nodeIds();
        if (ids.size() > 4) d.leave(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      11);
  EXPECT_TRUE(d.checkTables());
}

TEST(CrossSubstrateChurn, LhtOnCan) {
  net::SimNetwork net;
  dht::CanDht::Options o;
  o.initialPeers = 12;
  dht::CanDht d(net, o);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  common::Pcg32 pick(2);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.peerIds();
        if (ids.size() > 4) d.leave(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      12);
  EXPECT_TRUE(d.checkZones());
}

TEST(CrossSubstrateChurn, LhtOnKademlia) {
  net::SimNetwork net;
  dht::KademliaDht::Options o;
  o.initialPeers = 12;
  dht::KademliaDht d(net, o);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  common::Pcg32 pick(3);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.nodeIds();
        if (ids.size() > 4) d.leave(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      13);
  EXPECT_TRUE(d.checkTables());
}

TEST(CrossSubstrateChurn, PhtOnChord) {
  // The baseline's B+ links must also survive churn: link targets are DHT
  // keys, not peer addresses, so hand-offs are invisible to the index.
  net::SimNetwork net;
  dht::ChordDht::Options o;
  o.initialPeers = 12;
  dht::ChordDht d(net, o);
  pht::PhtIndex::Options po;
  po.thetaSplit = 8;
  po.maxDepth = 24;
  pht::PhtIndex idx(d, po);
  common::Pcg32 pick(4);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.nodeIds();
        if (d.peerCount() > 4) d.leave(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      14);
  EXPECT_TRUE(d.checkRing());
}

/// Ungraceful-failure coverage for the non-Chord substrates: with
/// replication >= 2 a fail() must lose nothing (surviving replicas are
/// promoted onto the new owners), and with replication == 1 — and only
/// then — the victim's keys are genuinely gone.
template <typename DhtT, typename IdsFn, typename CheckFn>
void runFailThenRead(DhtT& d, IdsFn ids, CheckFn check, size_t replication,
                     common::u64 seed) {
  constexpr size_t kKeys = 120;
  for (size_t i = 0; i < kKeys; ++i) {
    d.put("k" + std::to_string(i), "v" + std::to_string(i));
  }
  common::Pcg32 pick(seed);
  for (int round = 0; round < 4; ++round) {
    auto victims = ids();
    ASSERT_GT(victims.size(), 4u);
    d.fail(victims[pick.below(static_cast<common::u32>(victims.size()))]);
  }
  size_t alive = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    auto v = d.get("k" + std::to_string(i));
    if (!v.has_value()) continue;
    EXPECT_EQ(*v, "v" + std::to_string(i));
    alive += 1;
  }
  if (replication >= 2) {
    // Four spaced single-peer failures can never outrun one spare copy.
    EXPECT_EQ(alive, kKeys);
  } else {
    EXPECT_LT(alive, kKeys);  // unreplicated: the victims' keys are gone
  }
  EXPECT_TRUE(check());
}

TEST(CrossSubstrateFail, KademliaReplicatedSurvivesUnreplicatedLoses) {
  for (size_t replication : {size_t{3}, size_t{1}}) {
    net::SimNetwork net;
    dht::KademliaDht::Options o;
    o.initialPeers = 12;
    o.replication = replication;
    dht::KademliaDht d(net, o);
    SCOPED_TRACE("replication=" + std::to_string(replication));
    runFailThenRead(
        d, [&] { return d.nodeIds(); }, [&] { return d.checkTables(); },
        replication, 31);
  }
}

TEST(CrossSubstrateFail, PastryReplicatedSurvivesUnreplicatedLoses) {
  for (size_t replication : {size_t{3}, size_t{1}}) {
    net::SimNetwork net;
    dht::PastryDht::Options o;
    o.initialPeers = 12;
    o.replication = replication;
    dht::PastryDht d(net, o);
    SCOPED_TRACE("replication=" + std::to_string(replication));
    runFailThenRead(
        d, [&] { return d.nodeIds(); }, [&] { return d.checkTables(); },
        replication, 32);
  }
}

TEST(CrossSubstrateFail, CanReplicatedSurvivesUnreplicatedLoses) {
  for (size_t replication : {size_t{3}, size_t{1}}) {
    net::SimNetwork net;
    dht::CanDht::Options o;
    o.initialPeers = 12;
    o.replication = replication;
    dht::CanDht d(net, o);
    SCOPED_TRACE("replication=" + std::to_string(replication));
    runFailThenRead(
        d, [&] { return d.peerIds(); }, [&] { return d.checkZones(); },
        replication, 33);
  }
}

TEST(CrossSubstrateFail, LhtStaysOracleCorrectOverReplicatedKademlia) {
  // The full index over a replicated XOR substrate under fail()-churn:
  // the "robustness is the DHT's job" division of labour, now including
  // ungraceful exits.
  net::SimNetwork net;
  dht::KademliaDht::Options o;
  o.initialPeers = 12;
  o.replication = 3;
  dht::KademliaDht d(net, o);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  common::Pcg32 pick(6);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.nodeIds();
        if (ids.size() > 4) d.fail(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      16);
  EXPECT_TRUE(d.checkTables());
}

TEST(CrossSubstrateChurn, PhtOnPastry) {
  net::SimNetwork net;
  dht::PastryDht::Options o;
  o.initialPeers = 12;
  dht::PastryDht d(net, o);
  pht::PhtIndex::Options po;
  po.thetaSplit = 8;
  po.maxDepth = 24;
  pht::PhtIndex idx(d, po);
  common::Pcg32 pick(5);
  runChurnWorkload(
      d, idx, [&](const std::string& n) { d.join(n); },
      [&] {
        auto ids = d.nodeIds();
        if (ids.size() > 4) d.leave(ids[pick.below(static_cast<common::u32>(ids.size()))]);
      },
      15);
  EXPECT_TRUE(d.checkTables());
}

}  // namespace
}  // namespace lht
