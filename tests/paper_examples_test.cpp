// Reproduces the paper's worked examples verbatim, on the exact trees the
// paper draws, asserting the same intermediate probes and results.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "lht/naming.h"

namespace lht::core {
namespace {

using common::Label;

Label L(const char* text) { return *Label::parse(text); }

/// Stores the given leaves (with `payloadsAtMidpoints`) into a fresh index.
std::unique_ptr<LhtIndex> materialize(dht::LocalDht& d,
                                      const std::vector<const char*>& leaves,
                                      common::u32 maxDepth) {
  auto idx = std::make_unique<LhtIndex>(
      d, LhtIndex::Options{.thetaSplit = 100, .maxDepth = maxDepth});
  for (const char* text : leaves) {
    LeafBucket b{L(text), {}};
    const auto iv = b.label.interval();
    b.records.push_back({iv.lo, std::string("lo@") + text});
    b.records.push_back({iv.lo + iv.width() / 2, std::string("mid@") + text});
    d.storeDirect(dhtKeyFor(b.label), b.serialize());
  }
  return idx;
}

TEST(PaperExamples, Figure2TreeLambdaOfKey) {
  // Sec. 5: "In Fig. 2, lambda(0.4) = #001" — on the Fig. 2 tree the leaf
  // covering 0.4 is #001.
  EXPECT_TRUE(L("#001").covers(0.4));
  // And mu(0.4, paper-length 6) = #00110 (see label_test for the string).
  EXPECT_TRUE(L("#001").isPrefixOf(Label::fromKey(0.4, 5)));
}

TEST(PaperExamples, Section5LookupWalkthrough) {
  // Sec. 5 example: lookup of 0.9 with paper-D = 14 on a tree whose target
  // bucket is leaf #01110; the binary search resolves in exactly three
  // DHT-gets: f_n(#0111001) = #011100 (fails), f_n(#011) = #0 (returns
  // bucket #01111, not covering), then #0111 (returns the target #01110).
  dht::LocalDht d;
  // A tree consistent with Fig. 2: lambda(0.4) = #001, target leaf #01110.
  auto idx = materialize(
      d, {"#000", "#001", "#010", "#0110", "#01110", "#01111"}, /*bits=*/13);

  auto out = idx->lookup(0.9);
  ASSERT_TRUE(out.bucket.has_value());
  EXPECT_EQ(out.bucket->label, L("#01110"));
  EXPECT_EQ(out.dhtKey, "#0111");
  EXPECT_EQ(out.stats.dhtLookups, 3u);  // the paper's three probes
}

TEST(PaperExamples, Section5NextNameSkip) {
  // The walkthrough's note: "#0111 is also named to #0 and need not try
  // again" — the next-name jump from #011 lands directly on #01110.
  const Label mu = Label::fromKey(0.9, 13);
  EXPECT_EQ(name(L("#0111")), L("#0"));
  EXPECT_EQ(name(L("#011")), L("#0"));
  auto nn = nextName(L("#011"), mu);
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(*nn, L("#01110"));
}

TEST(PaperExamples, Section62RangeQueryWalkthrough) {
  // Sec. 6.2 example: range [0.2, 0.6) on the Fig. 5b tree. Any initiator
  // computes LCA = #0 and looks up f_n(#0) = #; the returned bucket #000
  // contains the lower bound; forwarding reaches names #00 and #01 (leaf
  // buckets #0011 and #0100), and #0011 forwards leftward to #001 (bucket
  // #0010). All four buckets in range are found.
  dht::LocalDht d;
  auto idx = materialize(
      d, {"#000", "#0010", "#0011", "#0100", "#0101", "#011"}, /*bits=*/13);

  EXPECT_EQ(dhtKeyFor(L("#000")), "#");          // LCA entry point
  EXPECT_EQ(dhtKeyFor(L("#0011")), "#00");       // rightmost under #001
  EXPECT_EQ(dhtKeyFor(L("#0100")), "#01");       // leftmost under #01
  EXPECT_EQ(dhtKeyFor(L("#0010")), "#001");      // the leftward forward

  auto rr = idx->rangeQuery(0.2, 0.6);
  // Exactly the four buckets of the example, one DHT-lookup each (B
  // lookups, the optimum; the bound is B + 3).
  EXPECT_EQ(rr.stats.bucketsTouched, 4u);
  EXPECT_EQ(rr.stats.dhtLookups, 4u);
  // Every record of those buckets inside [0.2, 0.6) is returned; #000's
  // records (keys 0.0 and 0.125) fall below the range and are filtered.
  std::set<std::string> payloads;
  for (const auto& r : rr.records) payloads.insert(r.payload);
  EXPECT_TRUE(payloads.count("lo@#0010"));
  EXPECT_TRUE(payloads.count("mid@#0010"));
  EXPECT_TRUE(payloads.count("lo@#0011"));
  EXPECT_TRUE(payloads.count("mid@#0011"));
  EXPECT_TRUE(payloads.count("lo@#0100"));
  EXPECT_TRUE(payloads.count("mid@#0100"));
  EXPECT_FALSE(payloads.count("lo@#000"));
  EXPECT_FALSE(payloads.count("mid@#000"));
  EXPECT_EQ(rr.records.size(), 6u);
}

TEST(PaperExamples, Theorem3MinMaxKeys) {
  // Sec. 7: "a DHT-lookup of # returns the result of a min query;
  // a DHT-lookup of #0 returns the result of a max query."
  dht::LocalDht d;
  auto idx = materialize(
      d, {"#000", "#001", "#010", "#0110", "#01110", "#01111"}, /*bits=*/13);
  EXPECT_EQ(name(L("#000")), L("#"));     // leftmost leaf named #
  EXPECT_EQ(name(L("#01111")), L("#0"));  // rightmost leaf named #0
  auto mn = idx->minRecord();
  auto mx = idx->maxRecord();
  EXPECT_EQ(mn.stats.dhtLookups, 1u);
  EXPECT_EQ(mx.stats.dhtLookups, 1u);
  EXPECT_EQ(mn.record->payload, "lo@#000");
  EXPECT_EQ(mx.record->payload, "mid@#01111");
}

}  // namespace
}  // namespace lht::core
