// Tier-1 smoke slices of the zipfian skew campaigns (the 16-seed full
// runs live behind the `slow` ctest label, see slow_campaign_test.cpp):
// two seeds each.
//
// SkewCampaignSmoke — the balance claim in miniature: with leases +
// adaptive splits ON the busiest peer's share of the read load drops
// versus the OFF arm on identical traces, every seed oracle-verifies,
// and the lease counters show the protocol actually ran.
//
// LeaseLinSmoke — the safety claim: racing lease reads against
// concurrent inserts/splits plus a mid-campaign crash of a lease-holding
// replica passes the grow-only-set linearizability checker, and the
// dead-peer reads provably dropped their leases.
#include <gtest/gtest.h>

#include "sim/skew_campaign.h"

namespace lht::sim {
namespace {

SkewCampaignConfig smokeConfig(bool featured) {
  SkewCampaignConfig cfg;
  cfg.seeds = 2;
  cfg.opsPerSeed = 1500;
  cfg.leasedReads = featured;
  cfg.adaptiveSplits = featured;
  return cfg;
}

TEST(SkewCampaignSmoke, LeasesAndAdaptiveSplitsFlattenHotLeafLoad) {
  const SkewReport on = runSkewCampaign(smokeConfig(true));
  for (const auto& f : on.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(on.ok());
  EXPECT_EQ(on.seeds, 2u);
  EXPECT_EQ(on.opsFailed, 0u);
  EXPECT_GT(on.leaseGrants, 0u);
  EXPECT_GT(on.leaseReads, 0u);
  EXPECT_GT(on.splits, 0u);  // adaptive splits fired on hot leaves
  EXPECT_GT(on.effectiveParallelism, 1.0);

  const SkewReport off = runSkewCampaign(smokeConfig(false));
  for (const auto& f : off.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(off.ok());
  EXPECT_EQ(off.leaseGrants, 0u);
  EXPECT_EQ(off.leaseReads, 0u);

  // Identical traces, same ring: the featured arm must spread reads
  // measurably better. The full >= 3x gate lives in the slow campaign
  // and the bench; the smoke slice just requires a real improvement.
  EXPECT_LT(on.maxOverMeanAvg, off.maxOverMeanAvg / 1.5);
  EXPECT_GT(on.effectiveParallelism, off.effectiveParallelism);
}

TEST(LeaseLinSmoke, LeaseReadsRacingSplitsAndCrashStayLinearizable) {
  LeaseLinConfig cfg;
  cfg.seeds = 2;
  cfg.opsPerPhase = 400;

  const LeaseLinReport rep = runLeaseLinCampaign(cfg);
  for (const auto& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.seeds, 2u);
  EXPECT_EQ(rep.opsTotal, 2u * 2u * 400u);  // two phases per seed
  EXPECT_GT(rep.leaseGrants, 0u);
  EXPECT_GT(rep.leaseReads, 0u);
  // Epoch bumps from the racing inserts/splits invalidated live leases.
  EXPECT_GT(rep.leaseStale + rep.leaseExpired, 0u);
  // One replica holder of the hottest leaf crashed per seed, and lease
  // reads that hit it dropped the lease instead of hanging or lying.
  EXPECT_EQ(rep.crashes, 2u);
  EXPECT_GT(rep.leaseDrops, 0u);
  EXPECT_GT(rep.repairTicks, 0u);
}

TEST(LeaseLinSmoke, NoCrashVariantRunsCleanly) {
  LeaseLinConfig cfg;
  cfg.seeds = 1;
  cfg.opsPerPhase = 300;
  cfg.crashReplica = false;

  const LeaseLinReport rep = runLeaseLinCampaign(cfg);
  for (const auto& f : rep.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.crashes, 0u);
  EXPECT_EQ(rep.opsFailed, 0u);  // nothing dark, nothing fails
  EXPECT_GT(rep.leaseReads, 0u);
}

}  // namespace
}  // namespace lht::sim
