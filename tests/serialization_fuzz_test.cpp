// Robustness fuzzing: values cross a (simulated) network boundary, so
// decoding must be total — corrupted, truncated, or random bytes must
// yield a clean failure (nullopt), never a crash, hang, or wild read.
#include <gtest/gtest.h>

#include <string>

#include "common/codec.h"
#include "common/random.h"
#include "dst/dst_index.h"
#include "lht/bucket.h"
#include "pht/pht_node.h"

namespace lht {
namespace {

core::LeafBucket sampleBucket() {
  core::LeafBucket b{*common::Label::parse("#01101"), {}};
  for (int i = 0; i < 20; ++i) {
    b.records.push_back({0.84 + i * 0.001, "payload-" + std::to_string(i)});
  }
  return b;
}

pht::PhtNode sampleNode() {
  pht::PhtNode n;
  n.kind = pht::PhtNode::Kind::Leaf;
  n.label = *common::Label::parse("#0010");
  n.prevLeaf = *common::Label::parse("#000");
  n.nextLeaf = *common::Label::parse("#0011");
  for (int i = 0; i < 10; ++i) n.records.push_back({0.26 + i * 0.002, "r"});
  return n;
}

TEST(SerializationFuzz, BucketSurvivesSingleByteCorruption) {
  const std::string bytes = sampleBucket().serialize();
  common::Pcg32 rng(1);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng.below(static_cast<common::u32>(mutated.size()));
    mutated[pos] = static_cast<char>(rng.next() & 0xFF);
    // Must decode cleanly to *something* or fail cleanly; either is fine —
    // the requirement is totality, checked by simply not crashing, plus
    // label sanity when it does decode.
    auto out = core::LeafBucket::deserialize(mutated);
    if (out) {
      EXPECT_LE(out->label.length(), common::Label::kMaxBits);
    }
  }
}

TEST(SerializationFuzz, BucketRejectsEveryTruncation) {
  const std::string bytes = sampleBucket().serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto out = core::LeafBucket::deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(out.has_value()) << "truncation at " << cut;
  }
  // Trailing garbage must also be rejected (atEnd() check).
  EXPECT_FALSE(core::LeafBucket::deserialize(bytes + "x").has_value());
}

TEST(SerializationFuzz, BucketRandomBytesNeverCrash) {
  common::Pcg32 rng(2);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string junk;
    const size_t len = rng.below(200);
    junk.reserve(len);
    for (size_t i = 0; i < len; ++i) junk.push_back(static_cast<char>(rng.next() & 0xFF));
    auto out = core::LeafBucket::deserialize(junk);
    if (out) {
      EXPECT_LE(out->label.length(), common::Label::kMaxBits);
    }
  }
}

TEST(SerializationFuzz, PhtNodeTruncationAndCorruption) {
  const std::string bytes = sampleNode().serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(pht::PhtNode::deserialize(bytes.substr(0, cut)).has_value());
  }
  common::Pcg32 rng(3);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = bytes;
    mutated[rng.below(static_cast<common::u32>(mutated.size()))] =
        static_cast<char>(rng.next() & 0xFF);
    (void)pht::PhtNode::deserialize(mutated);  // totality only
  }
}

TEST(SerializationFuzz, RoundTripIsIdentity) {
  // The positive side of the contract, on a spread of record counts.
  for (int n : {0, 1, 7, 100}) {
    core::LeafBucket b{*common::Label::parse("#010"), {}};
    for (int i = 0; i < n; ++i) {
      b.records.push_back({0.25 + i * 1e-4, std::string(i % 30, 'x')});
    }
    const std::string bytes = b.serialize();
    EXPECT_EQ(b.serializedSize(), bytes.size());
    auto back = core::LeafBucket::deserialize(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->label, b.label);
    ASSERT_EQ(back->records.size(), b.records.size());
    for (size_t i = 0; i < b.records.size(); ++i) {
      EXPECT_EQ(back->records[i], b.records[i]);
    }
  }
}

TEST(SerializationFuzz, SerializedSizeMatchesWithIntents) {
  // The reserve pre-pass must stay exact for every optional section.
  core::LeafBucket b = sampleBucket();
  b.appliedOps = {7, 9, 11};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
  b.splitIntent = core::SplitIntent{*common::Label::parse("#011010"),
                                    {{0.85, "moving"}},
                                    42};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
  b.mergeIntent = core::MergeIntent{*common::Label::parse("#01100"),
                                    {{0.84, "staged"}, {0.841, ""}},
                                    43};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
}

// --- Typed decode errors (wire format v2) ----------------------------------

core::LeafBucket randomBucket(common::Pcg32& rng) {
  const common::u32 depth = 1 + rng.below(12);
  common::u64 bits = 0;
  for (common::u32 i = 0; i < depth; ++i) bits = (bits << 1) | (rng.next() & 1);
  core::LeafBucket b{common::Label::fromBits(bits, depth), {}};
  b.epoch = rng.next64();
  const auto randomRecords = [&](size_t maxCount) {
    std::vector<index::Record> out;
    const size_t n = rng.below(static_cast<common::u32>(maxCount + 1));
    for (size_t i = 0; i < n; ++i) {
      std::string payload(rng.below(40), 'p');
      for (auto& c : payload) c = static_cast<char>(rng.next() & 0xFF);
      out.push_back({rng.nextDouble(), std::move(payload)});
    }
    return out;
  };
  b.records = randomRecords(30);
  const size_t tokens = rng.below(
      static_cast<common::u32>(core::LeafBucket::kAppliedOpsWindow + 1));
  for (size_t i = 0; i < tokens; ++i) b.appliedOps.push_back(1 + rng.next64());
  if (rng.below(3) == 0) {
    b.splitIntent =
        core::SplitIntent{b.label.child(rng.next() & 1), randomRecords(10),
                          rng.next64()};
  }
  if (rng.below(3) == 0) {
    b.mergeIntent =
        core::MergeIntent{b.label.child(rng.next() & 1), randomRecords(10),
                          rng.next64()};
  }
  return b;
}

TEST(SerializationFuzz, RandomBucketsRoundTripThroughDeserializeEx) {
  common::Pcg32 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const core::LeafBucket b = randomBucket(rng);
    const std::string bytes = b.serialize();
    EXPECT_EQ(b.serializedSize(), bytes.size());
    auto res = core::LeafBucket::deserializeEx(bytes);
    ASSERT_TRUE(res) << core::toString(res.error);
    EXPECT_EQ(res.error, core::BucketDecodeError::None);
    EXPECT_EQ(res.bucket->label, b.label);
    EXPECT_EQ(res.bucket->epoch, b.epoch);
    EXPECT_EQ(res.bucket->appliedOps, b.appliedOps);
    EXPECT_EQ(res.bucket->records, b.records);
    EXPECT_EQ(res.bucket->splitIntent, b.splitIntent);
    EXPECT_EQ(res.bucket->mergeIntent, b.mergeIntent);
    // Decode-then-encode is the identity on accepted bytes.
    EXPECT_EQ(res.bucket->serialize(), bytes);
  }
}

TEST(SerializationFuzz, EveryTruncationYieldsATypedError) {
  common::Pcg32 rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string bytes = randomBucket(rng).serialize();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      auto res = core::LeafBucket::deserializeEx(bytes.substr(0, cut));
      ASSERT_FALSE(res) << "truncation at " << cut;
      // Cutting bytes can only starve a field or orphan a count; it can
      // never manufacture trailing bytes or bad flags.
      EXPECT_TRUE(res.error == core::BucketDecodeError::Truncated ||
                  res.error == core::BucketDecodeError::BadRecordCount)
          << "cut " << cut << " -> " << core::toString(res.error);
    }
  }
}

TEST(SerializationFuzz, BitFlipsAreTypedOrAccepted) {
  common::Pcg32 rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes = randomBucket(rng).serialize();
    const size_t pos = rng.below(static_cast<common::u32>(bytes.size()));
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << rng.below(8)));
    auto res = core::LeafBucket::deserializeEx(bytes);
    if (res) {
      // A flip in payload bytes can still be a valid bucket; acceptance
      // must then be self-consistent.
      EXPECT_EQ(res.bucket->serialize(), bytes);
    } else {
      EXPECT_NE(res.error, core::BucketDecodeError::None);
      EXPECT_STRNE(core::toString(res.error), "unknown");
    }
  }
}

TEST(SerializationFuzz, DecodeErrorsAreSpecific) {
  const std::string bytes = sampleBucket().serialize();

  // Version byte is first on the wire.
  std::string wrongVersion = bytes;
  wrongVersion[0] = 99;
  EXPECT_EQ(core::LeafBucket::deserializeEx(wrongVersion).error,
            core::BucketDecodeError::BadVersion);

  // Label length field (right after the version byte) beyond kMaxBits.
  std::string badLabel = bytes;
  badLabel[1] = static_cast<char>(0xFF);
  EXPECT_EQ(core::LeafBucket::deserializeEx(badLabel).error,
            core::BucketDecodeError::BadLabel);

  // Token-window count lives after version + label + epoch.
  std::string hugeWindow = bytes;
  hugeWindow[1 + 12 + 8] = static_cast<char>(0xFF);
  EXPECT_EQ(core::LeafBucket::deserializeEx(hugeWindow).error,
            core::BucketDecodeError::TokenWindowOverflow);

  // Record count follows the (empty) token window.
  std::string hugeCount = bytes;
  hugeCount[1 + 12 + 8 + 4 + 2] = static_cast<char>(0xFF);
  EXPECT_EQ(core::LeafBucket::deserializeEx(hugeCount).error,
            core::BucketDecodeError::BadRecordCount);

  EXPECT_EQ(core::LeafBucket::deserializeEx(bytes + "x").error,
            core::BucketDecodeError::TrailingBytes);
  EXPECT_EQ(core::LeafBucket::deserializeEx({}).error,
            core::BucketDecodeError::Truncated);

  // Unknown intent flag bits: flags are the last byte of a clean bucket.
  std::string badFlags = bytes;
  badFlags.back() = static_cast<char>(0xF0);
  EXPECT_EQ(core::LeafBucket::deserializeEx(badFlags).error,
            core::BucketDecodeError::BadIntentFlags);
}

TEST(SerializationFuzz, DecoderNeverReadsPastEnd) {
  // Adversarial length prefix: a string claiming 4GB of payload.
  common::Encoder enc;
  enc.putU32(0xFFFFFFFFu);
  std::string bytes = std::move(enc).take();
  bytes += "short";
  common::Decoder dec(bytes);
  EXPECT_FALSE(dec.getString().has_value());
}

}  // namespace
}  // namespace lht
