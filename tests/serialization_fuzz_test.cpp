// Robustness fuzzing: values cross a (simulated) network boundary, so
// decoding must be total — corrupted, truncated, or random bytes must
// yield a clean failure (nullopt), never a crash, hang, or wild read.
#include <gtest/gtest.h>

#include <string>

#include "common/codec.h"
#include "common/random.h"
#include "dst/dst_index.h"
#include "lht/bucket.h"
#include "pht/pht_node.h"

namespace lht {
namespace {

core::LeafBucket sampleBucket() {
  core::LeafBucket b{*common::Label::parse("#01101"), {}};
  for (int i = 0; i < 20; ++i) {
    b.records.push_back({0.84 + i * 0.001, "payload-" + std::to_string(i)});
  }
  return b;
}

pht::PhtNode sampleNode() {
  pht::PhtNode n;
  n.kind = pht::PhtNode::Kind::Leaf;
  n.label = *common::Label::parse("#0010");
  n.prevLeaf = *common::Label::parse("#000");
  n.nextLeaf = *common::Label::parse("#0011");
  for (int i = 0; i < 10; ++i) n.records.push_back({0.26 + i * 0.002, "r"});
  return n;
}

TEST(SerializationFuzz, BucketSurvivesSingleByteCorruption) {
  const std::string bytes = sampleBucket().serialize();
  common::Pcg32 rng(1);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng.below(static_cast<common::u32>(mutated.size()));
    mutated[pos] = static_cast<char>(rng.next() & 0xFF);
    // Must decode cleanly to *something* or fail cleanly; either is fine —
    // the requirement is totality, checked by simply not crashing, plus
    // label sanity when it does decode.
    auto out = core::LeafBucket::deserialize(mutated);
    if (out) {
      EXPECT_LE(out->label.length(), common::Label::kMaxBits);
    }
  }
}

TEST(SerializationFuzz, BucketRejectsEveryTruncation) {
  const std::string bytes = sampleBucket().serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto out = core::LeafBucket::deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(out.has_value()) << "truncation at " << cut;
  }
  // Trailing garbage must also be rejected (atEnd() check).
  EXPECT_FALSE(core::LeafBucket::deserialize(bytes + "x").has_value());
}

TEST(SerializationFuzz, BucketRandomBytesNeverCrash) {
  common::Pcg32 rng(2);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string junk;
    const size_t len = rng.below(200);
    junk.reserve(len);
    for (size_t i = 0; i < len; ++i) junk.push_back(static_cast<char>(rng.next() & 0xFF));
    auto out = core::LeafBucket::deserialize(junk);
    if (out) {
      EXPECT_LE(out->label.length(), common::Label::kMaxBits);
    }
  }
}

TEST(SerializationFuzz, PhtNodeTruncationAndCorruption) {
  const std::string bytes = sampleNode().serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(pht::PhtNode::deserialize(bytes.substr(0, cut)).has_value());
  }
  common::Pcg32 rng(3);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = bytes;
    mutated[rng.below(static_cast<common::u32>(mutated.size()))] =
        static_cast<char>(rng.next() & 0xFF);
    (void)pht::PhtNode::deserialize(mutated);  // totality only
  }
}

TEST(SerializationFuzz, RoundTripIsIdentity) {
  // The positive side of the contract, on a spread of record counts.
  for (int n : {0, 1, 7, 100}) {
    core::LeafBucket b{*common::Label::parse("#010"), {}};
    for (int i = 0; i < n; ++i) {
      b.records.push_back({0.25 + i * 1e-4, std::string(i % 30, 'x')});
    }
    const std::string bytes = b.serialize();
    EXPECT_EQ(b.serializedSize(), bytes.size());
    auto back = core::LeafBucket::deserialize(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->label, b.label);
    ASSERT_EQ(back->records.size(), b.records.size());
    for (size_t i = 0; i < b.records.size(); ++i) {
      EXPECT_EQ(back->records[i], b.records[i]);
    }
  }
}

TEST(SerializationFuzz, SerializedSizeMatchesWithIntents) {
  // The reserve pre-pass must stay exact for every optional section.
  core::LeafBucket b = sampleBucket();
  b.appliedOps = {7, 9, 11};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
  b.splitIntent = core::SplitIntent{*common::Label::parse("#011010"),
                                    {{0.85, "moving"}},
                                    42};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
  b.mergeIntent = core::MergeIntent{*common::Label::parse("#01100"),
                                    {{0.84, "staged"}, {0.841, ""}},
                                    43};
  EXPECT_EQ(b.serializedSize(), b.serialize().size());
}

TEST(SerializationFuzz, DecoderNeverReadsPastEnd) {
  // Adversarial length prefix: a string claiming 4GB of payload.
  common::Encoder enc;
  enc.putU32(0xFFFFFFFFu);
  std::string bytes = std::move(enc).take();
  bytes += "short";
  common::Decoder dec(bytes);
  EXPECT_FALSE(dec.getString().has_value());
}

}  // namespace
}  // namespace lht
