// Observability under concurrency: per-thread registries/tracers merged at
// join must be exact (no lost counts, well-formed traces), and the logging
// sink must receive whole records even under concurrent writers.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/obs.h"

namespace lht {
namespace {

TEST(ObsConcurrentTest, MergedCountersAndHistogramsAreExact) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 1000;
  std::vector<obs::MetricsRegistry> regs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&regs, t] {
      obs::ScopedObservability install(&regs[t], nullptr);
      for (size_t i = 0; i < kPerThread; ++i) {
        obs::count("work.ops");
        obs::count("work.bytes", 10);
        obs::observe("work.batch", static_cast<double>(i % 7));
        obs::observeMs("work.latency_ms", static_cast<double>(t + 1));
      }
      obs::gaugeSet("work.last_thread", static_cast<double>(t));
    });
  }
  for (auto& t : threads) t.join();

  obs::MetricsRegistry global;
  for (const auto& r : regs) global.mergeFrom(r);

  EXPECT_EQ(global.counterValue("work.ops"), kThreads * kPerThread);
  EXPECT_EQ(global.counterValue("work.bytes"), kThreads * kPerThread * 10);
  const auto* batch = global.findHistogram("work.batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->count(), kThreads * kPerThread);
  const auto* lat = global.findHistogram("work.latency_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), kThreads * kPerThread);
  // Sum is exact: each thread observed (t+1) a thousand times.
  EXPECT_DOUBLE_EQ(lat->sum(), 1000.0 * (1 + 2 + 3 + 4));
  EXPECT_DOUBLE_EQ(lat->min(), 1.0);
  EXPECT_DOUBLE_EQ(lat->max(), 4.0);
}

TEST(ObsConcurrentTest, HistogramMergeRejectsMismatchedBounds) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram b({1.0, 3.0});
  EXPECT_THROW(a.mergeFrom(b), common::InvariantError);
}

TEST(ObsConcurrentTest, MergedTracersKeepEverySpanWithUniqueIds) {
  constexpr size_t kThreads = 4;
  constexpr size_t kSpans = 50;
  std::vector<obs::Tracer> tracers(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracers, t] {
      obs::ScopedObservability install(nullptr, &tracers[t]);
      for (size_t i = 0; i < kSpans; ++i) {
        obs::SpanScope outer("outer", "test");
        obs::SpanScope inner("inner", "test");
        inner.arg("thread", static_cast<common::u64>(t));
        obs::instantEvent("tick", "test");
      }
    });
  }
  for (auto& t : threads) t.join();

  obs::Tracer global;
  for (const auto& t : tracers) global.mergeFrom(t);

  ASSERT_EQ(global.spans().size(), kThreads * kSpans * 2);
  EXPECT_EQ(global.instants().size(), kThreads * kSpans);
  EXPECT_EQ(global.openSpanCount(), 0u);
  std::set<common::u64> ids;
  for (const auto& s : global.spans()) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    EXPECT_GT(s.endNs, s.startNs);
    if (s.name == "inner") {
      // Parent edges survived the id remap.
      const auto* parent = global.findSpan(s.parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->name, "outer");
    }
  }
  // The merged trace still exports as one well-formed JSON document.
  std::ostringstream os;
  global.writeChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\n],\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  size_t depth = 0;
  bool balanced = true;
  for (char c : json) {
    if (c == '{') depth += 1;
    if (c == '}') {
      if (depth == 0) {
        balanced = false;
        break;
      }
      depth -= 1;
    }
  }
  EXPECT_TRUE(balanced);
  EXPECT_EQ(depth, 0u);
}

TEST(LoggingConcurrentTest, SinkReceivesWholeRecordsOnly) {
  std::mutex mu;
  std::vector<std::string> records;
  common::setLogSink([&](std::string_view rec) {
    std::lock_guard<std::mutex> lock(mu);
    records.emplace_back(rec);
  });
  const common::LogLevel prev = common::logLevel();
  common::setLogLevel(common::LogLevel::Info);

  constexpr size_t kThreads = 4;
  constexpr size_t kLines = 200;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string chunk(64, static_cast<char>('a' + t));
      for (size_t i = 0; i < kLines; ++i) {
        LHT_LOG(Info) << "t" << t << " " << chunk << " #" << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  common::setLogLevel(prev);
  common::setLogSink(nullptr);

  ASSERT_EQ(records.size(), kThreads * kLines);
  for (const auto& rec : records) {
    // One complete record per sink call: single prefix, single trailing
    // newline, the 64-char run unbroken (an interleaved write would split
    // or splice it).
    EXPECT_EQ(rec.rfind("[INFO] ", 0), 0u) << rec;
    EXPECT_EQ(rec.find('\n'), rec.size() - 1) << rec;
    const size_t runStart = rec.find(' ', 7);
    ASSERT_NE(runStart, std::string::npos);
    const char runChar = rec[runStart + 1];
    EXPECT_EQ(rec.substr(runStart + 1, 64), std::string(64, runChar)) << rec;
  }
}

}  // namespace
}  // namespace lht
