// Tests for the top-k extension of Theorem 3's min/max queries.
#include <gtest/gtest.h>

#include <algorithm>

#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

TEST(TopK, MatchesSortedOracle) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 700, 1);
  for (const auto& r : data) idx.insert(r);
  std::sort(data.begin(), data.end(), index::recordLess);

  for (size_t k : {1u, 5u, 23u, 100u}) {
    auto mins = idx.topMin(k);
    ASSERT_EQ(mins.records.size(), k);
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(mins.records[i], data[i]) << k;

    auto maxs = idx.topMax(k);
    ASSERT_EQ(maxs.records.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(maxs.records[i], data[data.size() - k + i]) << k;
    }
  }
}

TEST(TopK, KLargerThanIndexReturnsEverything) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  for (double key : {0.3, 0.5, 0.9}) idx.insert({key, "x"});
  EXPECT_EQ(idx.topMin(100).records.size(), 3u);
  EXPECT_EQ(idx.topMax(100).records.size(), 3u);
}

TEST(TopK, ZeroKIsFree) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  idx.insert({0.5, "x"});
  auto r = idx.topMin(0);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.stats.dhtLookups, 0u);
}

TEST(TopK, CostScalesWithAnswerNotIndex) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 4000, 2);
  for (const auto& r : data) idx.insert(r);
  // k smaller than one bucket: a single DHT-lookup, like Theorem 3.
  EXPECT_EQ(idx.topMin(3).stats.dhtLookups, 1u);
  EXPECT_EQ(idx.topMax(3).stats.dhtLookups, 1u);
  // k spanning a few buckets: a handful of lookups, far below the ~500
  // buckets in the index.
  auto r = idx.topMin(40);
  EXPECT_LE(r.stats.dhtLookups, 16u);
}

TEST(TopK, ResultsAscendByKey) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 4, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 300, 3);
  for (const auto& r : data) idx.insert(r);
  for (auto res : {idx.topMin(50), idx.topMax(50)}) {
    EXPECT_TRUE(std::is_sorted(
        res.records.begin(), res.records.end(),
        [](const auto& a, const auto& b) { return a.key < b.key; }));
  }
}

}  // namespace
}  // namespace lht::core
