// Churn-storm survival building blocks: Chord's crash mode (dark peers,
// replica reads, bounded anti-entropy repair), the FailoverDht decorator
// (replica failover + hedged reads, composing with retry/breaker), the
// leaf-location cache's dead-peer invalidation, the churn event log with
// deterministic replay, and the RepairScheduler's bounded convergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dht/chord.h"
#include "dht/decorators.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "sim/churn.h"
#include "sim/repair_scheduler.h"

namespace lht {
namespace {

using dht::ChordDht;

ChordDht::Options chordOpts(size_t peers, size_t replication,
                            common::u64 seed = 7) {
  ChordDht::Options o;
  o.initialPeers = peers;
  o.seed = seed;
  o.replication = replication;
  return o;
}

std::vector<std::string> preload(ChordDht& d, size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("key-" + std::to_string(i));
    d.put(keys.back(), "v" + std::to_string(i));
  }
  return keys;
}

/// A node id whose crash is currently safe (spaced by crashWouldLoseData).
common::u64 safeVictim(const ChordDht& d) {
  for (common::u64 id : d.liveNodeIds()) {
    if (!d.crashWouldLoseData(id)) return id;
  }
  ADD_FAILURE() << "no safe crash victim on the ring";
  return 0;
}

// ---------------------------------------------------------------------------
// Chord crash mode
// ---------------------------------------------------------------------------

TEST(ChordCrashMode, ReadsToDarkOwnerThrowAndReplicasRescue) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 64);

  // Crash the owner of some key and read through both paths.
  const std::string& k = keys[5];
  d.crash(d.ownerOf(k));
  EXPECT_EQ(d.crashedPeerCount(), 1u);
  EXPECT_EQ(d.livePeerCount(), 9u);
  EXPECT_THROW(d.get(k), dht::DhtPeerDownError);

  // With replication 3 the two successors hold copies; at least one is
  // live (crash spacing would have vetoed otherwise), so a replica read
  // succeeds with the exact value.
  bool rescued = false;
  for (size_t i = 0; i < d.replicaFanout() && !rescued; ++i) {
    try {
      auto v = d.getReplica(k, i);
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, "v5");
      rescued = true;
    } catch (const dht::DhtError&) {
      // this holder is dark too — try the next
    }
  }
  EXPECT_TRUE(rescued);

  // A key whose owner is up is unaffected mid-crash.
  for (const auto& key : keys) {
    if (d.ownerOf(key) == d.ownerOf(k)) continue;
    EXPECT_TRUE(d.get(key).has_value());
    break;
  }
}

TEST(ChordCrashMode, MembershipRejectedWhileCrashesPending) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(8, 2));
  preload(d, 32);
  d.crash(safeVictim(d));

  EXPECT_THROW(d.join("late"), common::InvariantError);
  const auto live = d.liveNodeIds();
  EXPECT_THROW(d.leave(live.front()), common::InvariantError);
  EXPECT_THROW(d.fail(live.front()), common::InvariantError);

  // repairStep excises the dark peer; membership reopens.
  while (!d.repairConverged()) d.repairStep(16);
  EXPECT_NO_THROW(d.join("late"));
  EXPECT_TRUE(d.checkReplication());
}

TEST(ChordCrashMode, RepairConvergesWithoutLossAndPromotesReplicas) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(12, 3));
  const auto keys = preload(d, 128);
  const size_t before = d.size();

  d.crash(safeVictim(d));
  d.crash(safeVictim(d));
  EXPECT_FALSE(d.repairConverged());
  EXPECT_GT(d.replicaDeficit(), 0u);

  // Bounded slices: each call does at most maxKeys fix-ups, and the
  // sequence must terminate at zero deficit.
  size_t guard = 0;
  while (!d.repairConverged()) {
    ASSERT_LT(++guard, 10'000u);
    d.repairStep(8);
  }
  EXPECT_EQ(d.replicaDeficit(), 0u);
  EXPECT_EQ(d.lostKeys(), 0u);
  EXPECT_EQ(d.size(), before);
  EXPECT_TRUE(d.checkRing());
  EXPECT_TRUE(d.checkReplication());
  for (const auto& k : keys) EXPECT_TRUE(d.get(k).has_value());
}

TEST(ChordCrashMode, UnreplicatedCrashIsVetoedByLossCheck) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(6, 1));
  const auto keys = preload(d, 64);
  // Nothing is replicated, so crashing any key's owner would destroy its
  // only copy. (Ring nodes that happen to own no keys may still crash.)
  for (const auto& k : keys) {
    EXPECT_TRUE(d.crashWouldLoseData(d.ownerOf(k)));
  }
}

// ---------------------------------------------------------------------------
// FailoverDht
// ---------------------------------------------------------------------------

TEST(FailoverDht, RescuesReadsFromCrashedOwner) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 64);

  dht::FailoverDht failover(d, clock, {});
  const std::string& k = keys[9];
  d.crash(d.ownerOf(k));

  auto v = failover.get(k);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v9");
  EXPECT_GE(failover.failoverAttempts(), 1u);
  EXPECT_EQ(failover.rescues(), 1u);

  // Reads of healthy keys never touch the replica path.
  for (const auto& key : keys) {
    if (d.ownerOf(key) == d.ownerOf(k)) continue;
    EXPECT_TRUE(failover.get(key).has_value());
    break;
  }
  EXPECT_EQ(failover.rescues(), 1u);
}

TEST(FailoverDht, DisabledFailoverSurfacesThePrimaryError) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 32);

  dht::FailoverDht::Options fo;
  fo.failover = false;
  fo.hedging = false;
  dht::FailoverDht off(d, clock, fo);
  d.crash(d.ownerOf(keys[0]));
  EXPECT_THROW(off.get(keys[0]), dht::DhtPeerDownError);
  EXPECT_EQ(off.rescues(), 0u);
}

TEST(FailoverDht, RescueReadsAbsentKeyAsAuthoritativeMiss) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  preload(d, 32);

  dht::FailoverDht failover(d, clock, {});
  // A key that was never written, owned by a dark peer: the rescue must
  // return "absent", not an error — LHT's binary search steers on misses.
  const std::string ghost = "never-written";
  d.crash(d.ownerOf(ghost));
  auto v = failover.get(ghost);
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(failover.rescues(), 1u);
}

TEST(FailoverDht, HedgedReadsFireOnSlowPrimariesAndWinOnDeadOnes) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 64);

  // Latency under the hedger so every primary read takes >= baseMs.
  dht::LatencyDht latency(d, clock,
                          dht::LatencyDht::Options{.baseMs = 10, .jitterMs = 0});
  dht::FailoverDht::Options fo;
  fo.failover = false;  // isolate the hedge path
  fo.hedging = true;
  fo.hedgeMinMs = 5;  // below baseMs: every read crosses the threshold
  dht::FailoverDht hedged(latency, clock, fo);

  // Healthy read slower than the threshold: the backup fired and was
  // cancelled by the primary's answer.
  EXPECT_TRUE(hedged.get(keys[0]).has_value());
  EXPECT_EQ(hedged.hedgesFired(), 1u);
  EXPECT_EQ(hedged.hedgesCancelled(), 1u);
  EXPECT_EQ(hedged.hedgeWins(), 0u);

  // Dead primary past the threshold: the backup IS the rescue — a win.
  const std::string& k = keys[3];
  d.crash(d.ownerOf(k));
  auto v = hedged.get(k);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v3");
  EXPECT_EQ(hedged.hedgesFired(), 2u);
  EXPECT_EQ(hedged.hedgeWins(), 1u);
  EXPECT_EQ(hedged.hedgesCancelled(), 1u);
}

TEST(FailoverDht, ComposesUnderRetryAndCircuitBreaker) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 64);

  // Stack order from DESIGN.md §12: breaker and retry sit ABOVE the
  // failover layer, so a rescued read is simply a success to both.
  dht::FailoverDht failover(d, clock, {});
  dht::CircuitBreakerDht::Options bo;
  bo.failureThreshold = 3;
  dht::CircuitBreakerDht breaker(failover, clock, bo);
  dht::RetryingDht::Options ro;
  ro.maxAttempts = 4;
  ro.clock = &clock;
  dht::RetryingDht retry(breaker, ro);

  const std::string& k = keys[7];
  d.crash(d.ownerOf(k));
  for (int i = 0; i < 8; ++i) {
    auto v = retry.get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "v7");
  }
  // Every read was rescued on the first attempt: nothing tripped.
  EXPECT_EQ(failover.rescues(), 8u);
  EXPECT_EQ(breaker.timesOpened(), 0u);
  EXPECT_EQ(retry.retries(), 0u);
}

TEST(FailoverDht, MultiGetRescuesFailedEntries) {
  net::SimNetwork net;
  net::SimClock clock;
  ChordDht d(net, chordOpts(10, 3));
  const auto keys = preload(d, 48);

  dht::FailoverDht failover(d, clock, {});
  d.crash(d.ownerOf(keys[0]));

  std::vector<dht::Key> batch(keys.begin(), keys.begin() + 16);
  auto out = failover.multiGet(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].ok) << "entry " << i << ": " << out[i].error;
    ASSERT_TRUE(out[i].value.has_value());
    EXPECT_EQ(*out[i].value, "v" + std::to_string(i));
  }
  EXPECT_GE(failover.rescues(), 1u);
}

// ---------------------------------------------------------------------------
// Leaf-location cache: dead-peer invalidation (S2)
// ---------------------------------------------------------------------------

TEST(LeafCacheDeadPeer, CachedLocationDroppedWhenItsPeerIsDark) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(10, 3));
  core::LhtIndex idx(d, {.thetaSplit = 8, .useLeafCache = true});
  for (int i = 0; i < 60; ++i) {
    idx.insert({(i + 0.5) / 60.0, "p" + std::to_string(i)});
  }

  const double probe = (30 + 0.5) / 60.0;  // an actually-inserted key
  ASSERT_TRUE(idx.find(probe).record.has_value());
  ASSERT_TRUE(idx.leafCache().find(probe).has_value());  // cache primed

  // Crash the peer storing the cached leaf. The next find must throw
  // (failover is not in this stack) AND drop the stale cache entry.
  auto out = idx.lookup(probe);
  d.crash(d.ownerOf(out.dhtKey));
  EXPECT_THROW(idx.find(probe), dht::DhtPeerDownError);
  EXPECT_FALSE(idx.leafCache().find(probe).has_value());

  // After anti-entropy repair the re-homed leaf is found from scratch.
  while (!d.repairConverged()) d.repairStep(32);
  auto found = idx.find(probe);
  ASSERT_TRUE(found.record.has_value());
  EXPECT_TRUE(idx.leafCache().find(probe).has_value());  // re-primed
}

// ---------------------------------------------------------------------------
// Churn event log + replay (S1)
// ---------------------------------------------------------------------------

TEST(ChurnDriverLog, EveryEventIsLoggedWithSimTime) {
  net::SimNetwork net;
  net::SimClock clock;
  net.attachClock(&clock, 1);
  ChordDht d(net, chordOpts(8, 2));
  preload(d, 48);

  sim::ChurnConfig cc;
  cc.failWeight = 1.0;
  cc.seed = 3;
  cc.clock = net.clock();
  sim::ChurnDriver driver(d, cc);
  for (int i = 0; i < 12; ++i) driver.churnOnce();

  const auto& log = driver.eventLog();
  ASSERT_EQ(log.size(), driver.events());
  EXPECT_EQ(log.size(), driver.joins() + driver.leaves() + driver.fails());
  // Sim time is monotone over the log (churn interleaves with routed
  // traffic that advances the clock).
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].simTimeMs, log[i - 1].simTimeMs);
  }
}

TEST(ChurnDriverLog, ReplayReproducesTheTopologyExactly) {
  net::SimNetwork netA;
  ChordDht a(netA, chordOpts(8, 2, /*seed=*/21));
  preload(a, 40);
  net::SimNetwork netB;
  ChordDht b(netB, chordOpts(8, 2, /*seed=*/21));
  preload(b, 40);

  sim::ChurnConfig cc;
  cc.failWeight = 0.5;
  cc.seed = 9;
  sim::ChurnDriver driverA(a, cc);
  for (int i = 0; i < 10; ++i) driverA.churnOnce();
  driverA.wave({/*joins=*/2, /*leaves=*/1, /*crashes=*/2});

  // Replay the recorded log on the twin substrate: same joins (ids are a
  // pure function of the canonical names), same victims, same crashes.
  sim::ChurnDriver driverB(b, sim::ChurnConfig{.seed = 999});
  driverB.replay(driverA.eventLog());

  EXPECT_EQ(a.nodeIds(), b.nodeIds());
  EXPECT_EQ(a.liveNodeIds(), b.liveNodeIds());
  EXPECT_EQ(a.crashedPeerCount(), b.crashedPeerCount());
  ASSERT_EQ(driverB.eventLog().size(), driverA.eventLog().size());
  for (size_t i = 0; i < driverA.eventLog().size(); ++i) {
    EXPECT_EQ(driverA.eventLog()[i].type, driverB.eventLog()[i].type);
    EXPECT_EQ(driverA.eventLog()[i].nodeId, driverB.eventLog()[i].nodeId);
  }

  // Both rings repair to the same converged state.
  while (!a.repairConverged()) a.repairStep(64);
  while (!b.repairConverged()) b.repairStep(64);
  EXPECT_EQ(a.nodeIds(), b.nodeIds());
  EXPECT_TRUE(a.checkReplication());
  EXPECT_TRUE(b.checkReplication());
}

// ---------------------------------------------------------------------------
// RepairScheduler
// ---------------------------------------------------------------------------

TEST(RepairScheduler, BoundedTicksConvergeDhtAndIndex) {
  net::SimNetwork net;
  ChordDht d(net, chordOpts(12, 3));
  core::LhtIndex idx(d, {.thetaSplit = 8, .useLeafCache = true});
  for (int i = 0; i < 80; ++i) {
    idx.insert({(i + 0.5) / 80.0, "p" + std::to_string(i)});
  }

  d.crash(safeVictim(d));
  d.crash(safeVictim(d));

  sim::RepairSchedulerConfig rc;
  rc.dhtKeysPerTick = 4;  // tiny slices: convergence must still terminate
  rc.indexBucketsPerTick = 2;
  sim::RepairScheduler sched(d, &idx, rc);
  sched.noteChurn();
  EXPECT_FALSE(sched.converged());

  const size_t ticks = sched.runToConvergence();
  EXPECT_GT(ticks, 1u);  // bounded slices => more than one tick
  EXPECT_TRUE(sched.converged());
  EXPECT_TRUE(d.checkReplication());
  EXPECT_EQ(d.lostKeys(), 0u);
  EXPECT_GE(sched.progress().dhtActions, 1u);
  EXPECT_EQ(sched.progress().sweepPasses, 1u);

  // A converged system ticks for free.
  EXPECT_EQ(sched.tick(), 0u);

  // All data is still reachable through normal lookups.
  for (int i = 0; i < 80; ++i) {
    EXPECT_TRUE(idx.find((i + 0.5) / 80.0).record.has_value());
  }
}

}  // namespace
}  // namespace lht
