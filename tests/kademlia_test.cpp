#include "dht/kademlia.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "net/sim_network.h"

namespace lht::dht {
namespace {

KademliaDht makeKad(net::SimNetwork& net, size_t peers, common::u64 seed = 1) {
  KademliaDht::Options o;
  o.initialPeers = peers;
  o.seed = seed;
  return KademliaDht(net, o);
}

TEST(KademliaDht, BasicPutGet) {
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 16);
  d.put("key1", "value1");
  EXPECT_EQ(d.get("key1"), "value1");
  EXPECT_FALSE(d.get("missing").has_value());
  EXPECT_TRUE(d.remove("key1"));
  EXPECT_FALSE(d.get("key1").has_value());
}

TEST(KademliaDht, GreedyRoutingReachesExactOwner) {
  // The route must terminate at the globally XOR-closest peer for every key
  // (storeDirect places at the exact owner; get must find it).
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 128);
  for (int i = 0; i < 500; ++i) {
    d.storeDirect("k" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(KademliaDht, TablesConsistent) {
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 64);
  for (int i = 0; i < 100; ++i) d.put("k" + std::to_string(i), "v");
  EXPECT_TRUE(d.checkTables());
  EXPECT_EQ(d.size(), 100u);
}

TEST(KademliaDht, HopsLogarithmic) {
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 256);
  d.resetStats();
  for (int i = 0; i < 400; ++i) d.put("k" + std::to_string(i), "v");
  const double meanHops =
      static_cast<double>(d.stats().hops) / static_cast<double>(d.stats().lookups);
  EXPECT_LT(meanHops, 2.0 * std::log2(256.0));
}

TEST(KademliaDht, JoinAndLeavePreserveData) {
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 8);
  for (int i = 0; i < 150; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  d.join("newcomer-1");
  d.join("newcomer-2");
  auto ids = d.nodeIds();
  d.leave(ids[2]);
  EXPECT_TRUE(d.checkTables());
  EXPECT_EQ(d.size(), 150u);
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(KademliaDht, ApplySemantics) {
  net::SimNetwork net;
  KademliaDht d = makeKad(net, 8);
  EXPECT_FALSE(d.apply("k", [](std::optional<Value>& v) { v = "x"; }));
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { *v += "y"; }));
  EXPECT_EQ(d.get("k"), "xy");
}

}  // namespace
}  // namespace lht::dht
