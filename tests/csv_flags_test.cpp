#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/flags.h"

namespace lht::common {
namespace {

TEST(Table, PrettyAndCsvOutput) {
  Table t({"n", "lht", "pht"});
  t.row().add(i64{1024}).add(3.5).add(std::string("x"));
  t.addRow({i64{2048}, 4.25, std::string("y")});
  EXPECT_EQ(t.rowCount(), 2u);

  std::ostringstream csv;
  t.printCsv(csv);
  EXPECT_EQ(csv.str(), "n,lht,pht\n1024,3.5000,x\n2048,4.2500,y\n");

  std::ostringstream pretty;
  t.printPretty(pretty, "demo");
  EXPECT_NE(pretty.str().find("== demo =="), std::string::npos);
  EXPECT_NE(pretty.str().find("1024"), std::string::npos);
}

TEST(Table, ArityEnforced) {
  Table t({"a", "b"});
  t.row().add(i64{1}).add(i64{2});
  EXPECT_THROW(t.add(i64{3}), InvariantError);
  EXPECT_THROW(t.addRow({i64{1}}), InvariantError);
}

TEST(Flags, ParsesAllForms) {
  Flags f("prog", "test");
  f.define("n", "10", "count");
  f.define("dist", "uniform", "distribution");
  f.define("verbose", "false", "chatty");
  const char* argv[] = {"prog", "--n=32", "--dist", "gaussian", "--verbose", "pos1"};
  ASSERT_TRUE(f.parse(6, argv));
  EXPECT_EQ(f.getInt("n"), 32);
  EXPECT_EQ(f.getString("dist"), "gaussian");
  EXPECT_TRUE(f.getBool("verbose"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(Flags, DefaultsApply) {
  Flags f("prog", "test");
  f.define("span", "0.25", "range span");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_DOUBLE_EQ(f.getDouble("span"), 0.25);
}

TEST(Flags, UnknownFlagFails) {
  Flags f("prog", "test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.parse(2, argv));
}

}  // namespace
}  // namespace lht::common
