#include "dht/can.h"

#include <gtest/gtest.h>

#include <string>

#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "workload/generators.h"

namespace lht::dht {
namespace {

CanDht makeCan(net::SimNetwork& net, size_t peers, common::u64 seed = 1) {
  CanDht::Options o;
  o.initialPeers = peers;
  o.seed = seed;
  return CanDht(net, o);
}

TEST(CanDht, BasicPutGet) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 16);
  d.put("key1", "value1");
  EXPECT_EQ(d.get("key1"), "value1");
  EXPECT_FALSE(d.get("missing").has_value());
  EXPECT_TRUE(d.remove("key1"));
  EXPECT_FALSE(d.get("key1").has_value());
}

TEST(CanDht, ZonesTileTheTorus) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 40);
  for (int i = 0; i < 300; ++i) d.put("k" + std::to_string(i), "v");
  EXPECT_TRUE(d.checkZones());
  EXPECT_EQ(d.size(), 300u);
  EXPECT_EQ(d.peerCount(), 40u);
}

TEST(CanDht, RoutingReachesExactOwner) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 64);
  for (int i = 0; i < 400; ++i) {
    d.storeDirect("k" + std::to_string(i), "v" + std::to_string(i));
  }
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(CanDht, HopsScaleLikeSqrtN) {
  // CAN's signature: O(d * N^(1/d)) hops — for d=2, ~sqrt(N), well above
  // the logarithmic substrates but far below N.
  net::SimNetwork net;
  CanDht d = makeCan(net, 144);
  d.resetStats();
  for (int i = 0; i < 300; ++i) d.put("k" + std::to_string(i), "v");
  const double meanHops =
      static_cast<double>(d.stats().hops) / static_cast<double>(d.stats().lookups);
  EXPECT_LT(meanHops, 4.0 * 12.0);  // well under a multiple of sqrt(144)
  EXPECT_GT(meanHops, 2.0);         // and clearly above the log substrates
}

TEST(CanDht, JoinSplitsLeaveMerges) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 8);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  d.join("late-1");
  EXPECT_EQ(d.peerCount(), 9u);
  EXPECT_TRUE(d.checkZones());
  auto ids = d.peerIds();
  d.leave(ids[3]);
  d.leave(ids[5]);
  EXPECT_EQ(d.peerCount(), 7u);
  EXPECT_TRUE(d.checkZones());
  EXPECT_EQ(d.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(CanDht, ChurnStormKeepsPartitionConsistent) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 10);
  for (int i = 0; i < 120; ++i) d.put("k" + std::to_string(i), "v");
  common::Pcg32 rng(5);
  for (int round = 0; round < 30; ++round) {
    if (rng.below(2) == 0 || d.peerCount() < 4) {
      d.join("churn-" + std::to_string(round));
    } else {
      auto ids = d.peerIds();
      d.leave(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    }
    ASSERT_TRUE(d.checkZones()) << round;
    ASSERT_EQ(d.size(), 120u) << round;
  }
  for (int i = 0; i < 120; ++i) EXPECT_TRUE(d.get("k" + std::to_string(i)).has_value());
}

TEST(CanDht, ApplySemantics) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 8);
  EXPECT_FALSE(d.apply("k", [](std::optional<Value>& v) { v = "a"; }));
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { *v += "b"; }));
  EXPECT_EQ(d.get("k"), "ab");
}

TEST(CanDht, SinglePeer) {
  net::SimNetwork net;
  CanDht d = makeCan(net, 1);
  d.put("k", "v");
  EXPECT_EQ(d.get("k"), "v");
  EXPECT_TRUE(d.checkZones());
}

TEST(LhtOnCan, FullOracleAgreement) {
  // The fifth substrate the identical index runs on unchanged.
  net::SimNetwork net;
  CanDht d = makeCan(net, 20);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Uniform, 400, 9);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto mine = idx.rangeQuery(0.25, 0.75);
  auto truth = oracle.rangeQuery(0.25, 0.75);
  EXPECT_EQ(mine.records.size(), truth.records.size());
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, oracle.minRecord().record->key);
}

}  // namespace
}  // namespace lht::dht
