#include "common/interval.h"

#include <gtest/gtest.h>

namespace lht::common {
namespace {

TEST(Interval, ContainsHalfOpen) {
  Interval iv{0.25, 0.5};
  EXPECT_TRUE(iv.contains(0.25));
  EXPECT_TRUE(iv.contains(0.4999));
  EXPECT_FALSE(iv.contains(0.5));
  EXPECT_FALSE(iv.contains(0.2));
}

TEST(Interval, EmptyAndWidth) {
  EXPECT_TRUE((Interval{0.5, 0.5}).empty());
  EXPECT_TRUE((Interval{0.6, 0.5}).empty());
  EXPECT_FALSE((Interval{0.0, 1.0}).empty());
  EXPECT_DOUBLE_EQ((Interval{0.25, 0.75}).width(), 0.5);
  EXPECT_DOUBLE_EQ((Interval{0.75, 0.25}).width(), 0.0);
}

TEST(Interval, Overlaps) {
  Interval a{0.0, 0.5};
  EXPECT_TRUE(a.overlaps({0.25, 0.75}));
  EXPECT_FALSE(a.overlaps({0.5, 1.0}));  // touching only
  EXPECT_FALSE(a.overlaps({0.6, 0.7}));
  EXPECT_FALSE(a.overlaps({0.3, 0.3}));  // empty never overlaps
}

TEST(Interval, SubsetOf) {
  EXPECT_TRUE((Interval{0.25, 0.5}).subsetOf({0.0, 1.0}));
  EXPECT_TRUE((Interval{0.25, 0.5}).subsetOf({0.25, 0.5}));
  EXPECT_FALSE((Interval{0.25, 0.6}).subsetOf({0.25, 0.5}));
  EXPECT_TRUE((Interval{0.5, 0.5}).subsetOf({0.9, 1.0}));  // empty subset of anything
}

TEST(Interval, Intersect) {
  Interval a{0.2, 0.8};
  EXPECT_EQ(a.intersect({0.5, 1.0}), (Interval{0.5, 0.8}));
  EXPECT_EQ(a.intersect({0.0, 0.1}).width(), 0.0);
  EXPECT_EQ(a.intersect({0.0, 1.0}), a);
}

TEST(Interval, Str) {
  EXPECT_EQ((Interval{0.0, 1.0}).str(), "[0, 1)");
}

}  // namespace
}  // namespace lht::common
