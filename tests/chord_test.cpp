#include "dht/chord.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "net/sim_network.h"

namespace lht::dht {
namespace {

ChordDht makeRing(net::SimNetwork& net, size_t peers, common::u64 seed = 1) {
  ChordDht::Options o;
  o.initialPeers = peers;
  o.seed = seed;
  return ChordDht(net, o);
}

TEST(ChordDht, BasicPutGet) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 16);
  d.put("key1", "value1");
  EXPECT_EQ(d.get("key1"), "value1");
  EXPECT_FALSE(d.get("missing").has_value());
  EXPECT_TRUE(d.remove("key1"));
  EXPECT_FALSE(d.get("key1").has_value());
}

TEST(ChordDht, RingInvariantsHold) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 32);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v");
  EXPECT_TRUE(d.checkRing());
  EXPECT_EQ(d.size(), 200u);
}

TEST(ChordDht, ApplySameSemanticsAsLocal) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8);
  EXPECT_FALSE(d.apply("k", [](std::optional<Value>& v) { v = "a"; }));
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { *v += "b"; }));
  EXPECT_EQ(d.get("k"), "ab");
  EXPECT_TRUE(d.apply("k", [](std::optional<Value>& v) { v.reset(); }));
  EXPECT_EQ(d.size(), 0u);
}

TEST(ChordDht, LookupHopsAreLogarithmic) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 256);
  d.resetStats();
  const int n = 500;
  for (int i = 0; i < n; ++i) d.put("k" + std::to_string(i), "v");
  const double meanHops =
      static_cast<double>(d.stats().hops) / static_cast<double>(d.stats().lookups);
  // O(log N): for 256 peers expect on the order of log2(256)/2 = 4 hops,
  // certainly far below N.
  EXPECT_LT(meanHops, 2.0 * std::log2(256.0));
  EXPECT_GT(meanHops, 1.0);
}

TEST(ChordDht, JoinMovesOnlyOwedKeys) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8);
  for (int i = 0; i < 300; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  d.join("late-joiner");
  EXPECT_TRUE(d.checkRing());
  EXPECT_EQ(d.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(ChordDht, LeaveHandsKeysToSuccessor) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  auto ids = d.nodeIds();
  d.leave(ids[3]);
  d.leave(ids[5]);
  EXPECT_TRUE(d.checkRing());
  EXPECT_EQ(d.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(ChordDht, ChurnStorm) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 16);
  for (int i = 0; i < 100; ++i) d.put("k" + std::to_string(i), "v");
  common::Pcg32 rng(99);
  for (int round = 0; round < 30; ++round) {
    if (rng.below(2) == 0 || d.nodeIds().size() < 4) {
      d.join("churn-" + std::to_string(round));
    } else {
      auto ids = d.nodeIds();
      d.leave(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    }
    ASSERT_TRUE(d.checkRing()) << "round " << round;
    ASSERT_EQ(d.size(), 100u) << "round " << round;
  }
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(d.get("k" + std::to_string(i)).has_value());
}

TEST(ChordDht, OwnerIsDeterministic) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 32);
  EXPECT_EQ(d.ownerOf("some-key"), d.ownerOf("some-key"));
  d.put("some-key", "v");
  EXPECT_EQ(d.keysOn(d.ownerOf("some-key")), 1u);
}

TEST(ChordDht, SinglePeerRingWorks) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 1);
  d.put("k", "v");
  EXPECT_EQ(d.get("k"), "v");
  EXPECT_TRUE(d.checkRing());
}

TEST(ChordDht, NetworkTrafficRecorded) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 64);
  net.resetStats();
  for (int i = 0; i < 50; ++i) d.put("k" + std::to_string(i), "payload");
  EXPECT_GT(net.stats().messages, 0u);
  EXPECT_GT(net.stats().bytes, 0u);
}

}  // namespace
}  // namespace lht::dht
