#include "net/sim_network.h"

#include <gtest/gtest.h>

namespace lht::net {
namespace {

TEST(SimNetwork, AccountsMessagesAndBytes) {
  SimNetwork net;
  PeerId a = net.addPeer("a");
  PeerId b = net.addPeer("b");
  EXPECT_TRUE(net.send(a, b, 100));
  EXPECT_TRUE(net.send(b, a, 50));
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 150u);
  EXPECT_EQ(net.peerStats(a).messagesOut, 1u);
  EXPECT_EQ(net.peerStats(a).bytesIn, 50u);
  EXPECT_EQ(net.peerStats(b).messagesIn, 1u);
}

TEST(SimNetwork, OfflinePeerDropsMessages) {
  SimNetwork net;
  PeerId a = net.addPeer("a");
  PeerId b = net.addPeer("b");
  net.setOnline(b, false);
  EXPECT_FALSE(net.isOnline(b));
  EXPECT_FALSE(net.send(a, b, 10));
  EXPECT_EQ(net.stats().messages, 0u);
  net.setOnline(b, true);
  EXPECT_TRUE(net.send(a, b, 10));
}

TEST(SimNetwork, LoadStats) {
  SimNetwork net;
  PeerId a = net.addPeer("a");
  PeerId b = net.addPeer("b");
  PeerId c = net.addPeer("c");
  net.send(a, b, 1);
  net.send(a, b, 1);
  net.send(a, c, 1);
  EXPECT_EQ(net.maxPeerLoad(), 2u);
  EXPECT_DOUBLE_EQ(net.meanPeerLoad(), 1.0);
  net.resetStats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.maxPeerLoad(), 0u);
}

TEST(SimNetwork, BadPeerIdRejected) {
  SimNetwork net;
  PeerId a = net.addPeer("a");
  EXPECT_THROW(net.send(a, 99, 1), common::InvariantError);
  EXPECT_THROW(net.peerName(99), common::InvariantError);
}

}  // namespace
}  // namespace lht::net
