// RPC layer over the deterministic SimHub twin: retransmit-on-drop,
// deadline timeouts, reordering tolerance, and at-most-once execution
// (server dedup replaying a lost reply instead of re-executing).
#include "rpc/rpc_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rpc/node_server.h"
#include "rpc/sim_transport.h"

namespace lht::rpc {
namespace {

using namespace wire;

/// A NodeServer living "in" the hub at `port` (handler endpoint).
void attachServer(SimHub& hub, NodeServer& server, u16 port) {
  hub.registerHandler(port, [&server](const Datagram& d,
                                      const std::function<void(std::string)>& reply) {
    std::string out = server.handle(d.from, d.payload);
    if (!out.empty()) reply(std::move(out));
  });
}

TEST(SimTransport, DeliversAndCounts) {
  SimHub hub;
  auto a = hub.makeEndpoint(100);
  auto b = hub.makeEndpoint(200);
  EXPECT_TRUE(a->send(NetAddr{0, 200}, "hello"));
  std::vector<Datagram> got;
  EXPECT_EQ(b->receive(got, 0), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, "hello");
  EXPECT_EQ(got[0].from.port, 100);
  EXPECT_EQ(a->stats().datagramsSent.load(), 1u);
  EXPECT_EQ(b->stats().datagramsReceived.load(), 1u);
}

TEST(SimTransport, EmptyWaitAdvancesVirtualClock) {
  SimHub hub;
  auto a = hub.makeEndpoint();
  std::vector<Datagram> got;
  const u64 before = a->nowMs();
  EXPECT_EQ(a->receive(got, 250), 0u);
  EXPECT_EQ(a->nowMs(), before + 250);
}

TEST(SimTransport, OversizedSendRejected) {
  SimHub hub;
  auto a = hub.makeEndpoint();
  std::string big(kMaxDatagramBytes + 1, 'x');
  EXPECT_FALSE(a->send(NetAddr{0, 999}, big));
  EXPECT_EQ(a->stats().sendErrors.load(), 1u);
}

TEST(RpcClient, BasicCall) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 1000);
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);
  auto r = cli.callOne(NetAddr{0, 1000}, PutReq{"k", "v"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<PutRep>(r.body).version, 1u);
  r = cli.callOne(NetAddr{0, 1000}, GetReq{"k"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::get<GetRep>(r.body).present);
  EXPECT_EQ(std::get<GetRep>(r.body).value, "v");
  EXPECT_EQ(r.sends, 1u);
}

TEST(RpcClient, RetransmitRecoversDroppedRequest) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 1000);
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);
  hub.dropNext(1);  // lose the first request datagram
  auto r = cli.callOne(NetAddr{0, 1000}, PutReq{"k", "v"});
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.sends, 2u);
  EXPECT_GE(cli.stats().retransmits.load(), 1u);
  EXPECT_EQ(server.primaryValue("k"), "v");
}

TEST(RpcClient, LostReplyDoesNotReExecute) {
  SimHub hub;
  NodeServer server;
  // A handler that executes every request but swallows its first reply:
  // the "request arrived, reply lost" half of the at-most-once problem.
  int replyDrops = 1;
  hub.registerHandler(
      1000, [&](const Datagram& d, const std::function<void(std::string)>& reply) {
        std::string out = server.handle(d.from, d.payload);
        if (out.empty()) return;
        if (replyDrops > 0) {
          --replyDrops;
          return;
        }
        reply(std::move(out));
      });
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);

  // CAS at expectedVersion 0 (expect-absent). The first request executes
  // (version -> 1) but its reply is lost; the retransmit must be answered
  // from the dedup cache, NOT re-executed — a re-execution would see
  // version 1 != expected 0 and spuriously conflict.
  auto r = cli.callOne(NetAddr{0, 1000}, CasReq{"k", 0, true, "v1"});
  ASSERT_TRUE(r.ok());
  const auto& rep = std::get<CasRep>(r.body);
  EXPECT_TRUE(rep.applied);
  EXPECT_GE(r.sends, 2u);
  EXPECT_GE(server.stats().dedupHits.load(), 1u);
  EXPECT_EQ(server.primaryValue("k"), "v1");
}

TEST(RpcClient, DeadEndpointTimesOut) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 1000);
  hub.setOnline(1000, false);
  auto endpoint = hub.makeEndpoint();
  RpcClient::Options opts;
  opts.requestDeadlineMs = 500;
  RpcClient cli(*endpoint, opts);
  auto r = cli.callOne(NetAddr{0, 1000}, GetReq{"k"});
  EXPECT_TRUE(r.timedOut);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.sends, 2u);  // it kept trying until the deadline
  EXPECT_EQ(cli.stats().timeouts.load(), 1u);
  // Virtual time advanced past the deadline, not unboundedly.
  EXPECT_GE(endpoint->nowMs(), 500u);
  EXPECT_LT(endpoint->nowMs(), 5000u);
}

TEST(RpcClient, ManyInFlightSettleTogether) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 1000);
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);
  std::vector<RpcClient::Token> tokens;
  for (int i = 0; i < 64; ++i) {
    tokens.push_back(cli.call(NetAddr{0, 1000},
                              PutReq{"k" + std::to_string(i), "v"}));
  }
  // Replies are already queued (inline hub) but not yet processed.
  EXPECT_EQ(cli.pendingCount(), 64u);
  cli.settle();
  EXPECT_EQ(cli.pendingCount(), 0u);
  for (auto t : tokens) EXPECT_TRUE(cli.take(t).ok());
  EXPECT_EQ(server.primaryKeyCount(), 64u);
}

TEST(RpcClient, SeededLossStillCompletes) {
  SimHub::Options hopts;
  hopts.dropProbability = 0.2;
  hopts.duplicateProbability = 0.05;
  hopts.reorderProbability = 0.1;
  hopts.seed = 99;
  SimHub hub(hopts);
  NodeServer server;
  attachServer(hub, server, 1000);
  auto endpoint = hub.makeEndpoint();
  RpcClient::Options opts;
  opts.initialRetransmitMs = 10;
  opts.requestDeadlineMs = 60'000;
  RpcClient cli(*endpoint, opts);
  for (int i = 0; i < 200; ++i) {
    auto r = cli.callOne(NetAddr{0, 1000},
                         PutReq{"k" + std::to_string(i), std::to_string(i)});
    ASSERT_TRUE(r.ok()) << "op " << i;
  }
  EXPECT_EQ(server.primaryKeyCount(), 200u);
  EXPECT_GT(cli.stats().retransmits.load(), 0u);
  EXPECT_GT(hub.datagramsDropped(), 0u);
  // At-most-once held under duplicates+retransmits: every stored value
  // is the one its own put wrote.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(server.primaryValue("k" + std::to_string(i)),
              std::to_string(i));
  }
}

TEST(RpcClient, OversizedRequestFailsFastLocally) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 1000);
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);
  const u64 before = endpoint->nowMs();
  auto r = cli.callOne(NetAddr{0, 1000},
                       PutReq{"k", std::string(kMaxDatagramBytes, 'x')});
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.timedOut);  // a local failure, not a fake remote timeout
  EXPECT_EQ(r.status, Status::TooLarge);
  EXPECT_EQ(r.sends, 0u);  // never touched the wire
  EXPECT_EQ(cli.stats().oversized.load(), 1u);
  EXPECT_EQ(endpoint->stats().datagramsSent.load(), 0u);
  // Resolved immediately: no request deadline burned waiting on silence.
  EXPECT_EQ(endpoint->nowMs(), before);
  // The client stays usable for normal traffic afterwards.
  EXPECT_TRUE(cli.callOne(NetAddr{0, 1000}, PutReq{"k", "v"}).ok());
}

TEST(RpcClient, MismatchedOpReplyIgnored) {
  SimHub hub;
  // A peer that echoes our ids under the wrong op — the shape a dedup
  // cache replaying a previous incarnation's reply takes. Accepting it
  // would hand a GetRep to a caller that sent a Put (bad_variant_access
  // downstream); the client must drop it as stale and time out instead.
  hub.registerHandler(
      1000, [](const Datagram& d, const std::function<void(std::string)>& reply) {
        auto decoded = decodeRequest(d.payload);
        if (!std::holds_alternative<Request>(decoded)) return;
        reply(encodeReply(std::get<Request>(decoded).header.requestId, Op::Get,
                          Status::Ok, GetRep{}));
      });
  auto endpoint = hub.makeEndpoint();
  RpcClient::Options opts;
  opts.requestDeadlineMs = 300;
  RpcClient cli(*endpoint, opts);
  auto r = cli.callOne(NetAddr{0, 1000}, PutReq{"k", "v"});
  EXPECT_TRUE(r.timedOut);
  EXPECT_EQ(r.op, Op::Put);  // the request's op survives the timeout
  EXPECT_GE(cli.stats().staleReplies.load(), 1u);
}

TEST(NodeServer, UnknownOpcodeGetsUnknownOpReply) {
  NodeServer server;
  // Hand-build a framed request carrying a future opcode (99): a newer
  // client must get a fast UnknownOp echo, not a silent timeout.
  std::string req = encodeRequest(7, PingReq{});
  req[2] = static_cast<char>(99);
  std::string reply = server.handle(NetAddr{0, 7}, req);
  ASSERT_FALSE(reply.empty());
  auto h = decodeHeader(reply);  // lenient peek: unknown op passes through
  ASSERT_TRUE(std::holds_alternative<Header>(h));
  const Header& hd = std::get<Header>(h);
  EXPECT_TRUE(hd.isReply);
  EXPECT_EQ(hd.status, Status::UnknownOp);
  EXPECT_EQ(hd.requestId, 7u);
  EXPECT_EQ(static_cast<u8>(hd.op), 99u);
}

TEST(NodeServer, SilentOnGarbageRepliesOnBrokenBody) {
  NodeServer server;
  // Pure noise: silence.
  EXPECT_TRUE(server.handle(NetAddr{0, 7}, "not-a-message").empty());
  // Valid header, truncated body: a BadRequest reply.
  std::string req = encodeRequest(42, PutReq{"key", "value"});
  std::string truncated = req.substr(0, req.size() - 3);
  std::string reply = server.handle(NetAddr{0, 7}, truncated);
  ASSERT_FALSE(reply.empty());
  auto decoded = decodeReply(reply);
  ASSERT_TRUE(std::holds_alternative<Reply>(decoded));
  EXPECT_EQ(std::get<Reply>(decoded).header.status, Status::BadRequest);
  EXPECT_EQ(std::get<Reply>(decoded).header.requestId, 42u);
}

TEST(NodeServer, VersionsAdvancePerKey) {
  SimHub hub;
  NodeServer server;
  attachServer(hub, server, 10);
  auto endpoint = hub.makeEndpoint();
  RpcClient cli(*endpoint);
  auto call = [&](const RequestBody& body) -> ReplyBody {
    auto res = cli.callOne(NetAddr{0, 10}, body);
    EXPECT_TRUE(res.ok());
    return res.body;
  };
  EXPECT_EQ(std::get<PutRep>(call(PutReq{"a", "1"})).version, 1u);
  EXPECT_EQ(std::get<PutRep>(call(PutReq{"a", "2"})).version, 2u);
  auto cas = std::get<CasRep>(call(CasReq{"a", 2, true, "3"}));
  EXPECT_TRUE(cas.applied);
  EXPECT_EQ(cas.currentVersion, 3u);
  auto conflict = std::get<CasRep>(call(CasReq{"a", 1, true, "x"}));
  EXPECT_FALSE(conflict.applied);
  EXPECT_EQ(conflict.currentVersion, 3u);
  EXPECT_EQ(conflict.currentValue, "3");
}

}  // namespace
}  // namespace lht::rpc
