// Tests for the analytical cost model (paper Sec. 8, Eqs. 1-3).
#include "cost/cost_model.h"

#include <gtest/gtest.h>

namespace lht::cost {
namespace {

TEST(CostModel, PsiFormulas) {
  CostModel m{.i = 2.0, .j = 5.0, .thetaSplit = 100};
  EXPECT_DOUBLE_EQ(m.psiLht(), 0.5 * 100 * 2.0 + 5.0);    // Eq. 1
  EXPECT_DOUBLE_EQ(m.psiPht(), 100 * 2.0 + 4 * 5.0);      // Eq. 2
  EXPECT_DOUBLE_EQ(m.gamma(), 100 * 2.0 / 5.0);
}

TEST(CostModel, SavingRatioEquivalentForms) {
  // Eq. 3: 1 - Psi_LHT/Psi_PHT == (gamma/2 + 3) / (gamma + 4).
  for (double gamma : {0.01, 0.5, 1.0, 10.0, 100.0, 10000.0}) {
    CostModel m{.i = gamma, .j = 1.0, .thetaSplit = 1};
    EXPECT_NEAR(m.savingRatio(), 1.0 - m.psiLht() / m.psiPht(), 1e-12) << gamma;
  }
}

TEST(CostModel, SavingRatioBounds) {
  // The paper's claim: savings of up to 75% and at least 50%.
  // gamma -> 0 (tiny records / huge network): ratio -> 3/4.
  CostModel tiny{.i = 1e-9, .j = 1.0, .thetaSplit = 1};
  EXPECT_NEAR(tiny.savingRatio(), 0.75, 1e-6);
  // gamma -> inf (huge records / free lookups): ratio -> 1/2.
  CostModel huge{.i = 1e9, .j = 1.0, .thetaSplit = 1};
  EXPECT_NEAR(huge.savingRatio(), 0.5, 1e-6);
  // Monotone in between, always within (0.5, 0.75).
  double prev = 0.76;
  for (double gamma = 0.125; gamma <= 4096.0; gamma *= 2.0) {
    CostModel m{.i = gamma, .j = 1.0, .thetaSplit = 1};
    const double s = m.savingRatio();
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 0.75);
    EXPECT_LT(s, prev);  // strictly decreasing in gamma
    prev = s;
  }
}

TEST(CostModel, PriceCounters) {
  CostModel m{.i = 3.0, .j = 7.0, .thetaSplit = 10};
  Counters c;
  c.recordsMoved = 4;
  c.dhtLookups = 2;
  EXPECT_DOUBLE_EQ(m.price(c), 4 * 3.0 + 2 * 7.0);
}

TEST(Counters, Arithmetic) {
  Counters a{.dhtLookups = 1, .recordsMoved = 2, .splits = 3, .merges = 4};
  Counters b{.dhtLookups = 10, .recordsMoved = 20, .splits = 30, .merges = 40};
  Counters c = a + b;
  EXPECT_EQ(c.dhtLookups, 11u);
  EXPECT_EQ(c.recordsMoved, 22u);
  EXPECT_EQ(c.splits, 33u);
  EXPECT_EQ(c.merges, 44u);
  c.reset();
  EXPECT_EQ(c, Counters{});
}

TEST(AlphaStats, MeanOfSamples) {
  AlphaStats a;
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  a.record(0.5);
  a.record(0.7);
  EXPECT_EQ(a.samples, 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.6);
  a.reset();
  EXPECT_EQ(a.samples, 0u);
}

TEST(OpStats, Accumulate) {
  OpStats a{.dhtLookups = 2, .parallelSteps = 1, .bucketsTouched = 1};
  OpStats b{.dhtLookups = 3, .parallelSteps = 2, .bucketsTouched = 4};
  a += b;
  EXPECT_EQ(a.dhtLookups, 5u);
  EXPECT_EQ(a.parallelSteps, 3u);
  EXPECT_EQ(a.bucketsTouched, 5u);
}

}  // namespace
}  // namespace lht::cost
