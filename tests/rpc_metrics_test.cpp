// rpc.* metrics exporters (S-task of the overlay PR): the RPC layer's
// raw RelaxedCounters must land in a MetricsRegistry under the dotted
// naming scheme, so bench/daemon JSON carries the wire-level story next
// to the index metrics.
#include "rpc/rpc_metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "rpc/sim_transport.h"

namespace lht::rpc {
namespace {

TEST(RpcMetrics, ClientCountersLand) {
  RpcClient::Stats stats;
  stats.requestsStarted += 5;
  stats.retransmits += 4;
  stats.timeouts += 3;
  stats.staleReplies += 2;
  stats.oversized += 1;
  obs::MetricsRegistry reg;
  exportRpcClientMetrics(stats, reg);
  EXPECT_EQ(reg.counterValue("rpc.client.requests_started"), 5u);
  EXPECT_EQ(reg.counterValue("rpc.client.retransmits"), 4u);
  EXPECT_EQ(reg.counterValue("rpc.client.timeouts"), 3u);
  EXPECT_EQ(reg.counterValue("rpc.client.stale_replies"), 2u);
  EXPECT_EQ(reg.counterValue("rpc.client.oversized"), 1u);
}

TEST(RpcMetrics, ServerCountersLand) {
  NodeServer::Stats stats;
  stats.requestsHandled += 7;
  stats.dedupHits += 6;
  stats.badRequests += 5;
  stats.oversizedReplies += 4;
  obs::MetricsRegistry reg;
  exportNodeServerMetrics(stats, reg);
  EXPECT_EQ(reg.counterValue("rpc.server.requests_handled"), 7u);
  EXPECT_EQ(reg.counterValue("rpc.server.dedup_hits"), 6u);
  EXPECT_EQ(reg.counterValue("rpc.server.bad_requests"), 5u);
  EXPECT_EQ(reg.counterValue("rpc.server.oversized_replies"), 4u);
}

TEST(RpcMetrics, TransportCountersLand) {
  TransportStats stats;
  stats.datagramsSent += 11;
  stats.datagramsReceived += 10;
  stats.bytesSent += 999;
  stats.bytesReceived += 888;
  stats.sendErrors += 1;
  obs::MetricsRegistry reg;
  exportTransportMetrics(stats, reg);
  EXPECT_EQ(reg.counterValue("rpc.transport.datagrams_sent"), 11u);
  EXPECT_EQ(reg.counterValue("rpc.transport.datagrams_received"), 10u);
  EXPECT_EQ(reg.counterValue("rpc.transport.bytes_sent"), 999u);
  EXPECT_EQ(reg.counterValue("rpc.transport.bytes_received"), 888u);
  EXPECT_EQ(reg.counterValue("rpc.transport.send_errors"), 1u);
}

TEST(RpcMetrics, LiveCountersSurviveIntoJson) {
  // End to end: drive one real RPC through the sim, export both sides,
  // and check the values show up in the registry's JSON dump — the form
  // the daemon's shutdown summary and the benches emit.
  SimHub hub;
  NodeServer server;
  hub.registerHandler(9000, [&](const Datagram& d,
                                const std::function<void(std::string)>& reply) {
    std::string out = server.handle(d.from, d.payload);
    if (!out.empty()) reply(std::move(out));
  });
  auto transport = hub.makeEndpoint();
  RpcClient client(*transport);
  auto r = client.callOne(NetAddr{0, 9000}, wire::PutReq{"k", "v"});
  ASSERT_TRUE(r.ok());
  // A duplicate id is manufactured by the transport layer in real life;
  // here a second call suffices to light up requestsHandled further.
  (void)client.callOne(NetAddr{0, 9000}, wire::GetReq{"k"});

  obs::MetricsRegistry reg;
  exportRpcClientMetrics(client.stats(), reg);
  exportNodeServerMetrics(server.stats(), reg);
  EXPECT_EQ(reg.counterValue("rpc.client.requests_started"), 2u);
  EXPECT_EQ(reg.counterValue("rpc.server.requests_handled"), 2u);

  std::ostringstream os;
  reg.writeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rpc.client.requests_started\": 2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rpc.server.requests_handled\": 2"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace lht::rpc
