// Tests for the extensions beyond the paper's core operation set: bulk
// loading, successor/predecessor queries, and tree statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "lht/tree_stats.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

TEST(BulkLoad, RecursiveSplitProducesLegalBuckets) {
  LeafBucket b{common::Label::root(), {}};
  for (int i = 0; i < 100; ++i) b.records.push_back({(i + 0.5) / 100.0, "x"});
  SplitPolicy policy{8, true, 20};
  std::vector<LeafBucket> remotes;
  splitBucketRecursively(b, policy, remotes);
  EXPECT_FALSE(policy.shouldSplit(b));
  for (const auto& rb : remotes) {
    EXPECT_FALSE(policy.shouldSplit(rb));
    for (const auto& r : rb.records) EXPECT_TRUE(rb.covers(r.key));
  }
  size_t total = b.records.size();
  for (const auto& rb : remotes) total += rb.records.size();
  EXPECT_EQ(total, 100u);
}

TEST(BulkLoad, MatchesIncrementalContent) {
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 2000, 5);

  dht::LocalDht d1, d2;
  LhtIndex one(d1, {.thetaSplit = 16, .maxDepth = 24});
  LhtIndex bulk(d2, {.thetaSplit = 16, .maxDepth = 24});
  for (const auto& r : data) one.insert(r);
  bulk.insertBatch(data);

  EXPECT_EQ(one.recordCount(), bulk.recordCount());
  auto a = one.rangeQuery(0.0, 1.0);
  auto b = bulk.rangeQuery(0.0, 1.0);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) EXPECT_EQ(a.records[i], b.records[i]);
}

TEST(BulkLoad, FarCheaperThanIncremental) {
  auto data = workload::makeDataset(workload::Distribution::Uniform, 5000, 6);
  dht::LocalDht d1, d2;
  LhtIndex one(d1, {.thetaSplit = 50, .maxDepth = 24});
  LhtIndex bulk(d2, {.thetaSplit = 50, .maxDepth = 24});
  for (const auto& r : data) one.insert(r);
  bulk.insertBatch(data);
  const auto oneCost = one.meters().insertion.dhtLookups;
  const auto bulkCost = bulk.meters().insertion.dhtLookups;
  // One lookup+apply per *leaf* instead of per record: >5x cheaper here.
  EXPECT_LT(bulkCost * 5, oneCost);
  // Structural work (splits) is also cheaper or equal per record.
  EXPECT_LE(bulk.meters().maintenance.dhtLookups,
            one.meters().maintenance.dhtLookups);
}

TEST(BulkLoad, EmptyAndSingleBatch) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  EXPECT_TRUE(idx.insertBatch({}).ok);
  EXPECT_EQ(idx.recordCount(), 0u);
  EXPECT_TRUE(idx.insertBatch({{0.5, "solo"}}).ok);
  EXPECT_EQ(idx.recordCount(), 1u);
  EXPECT_TRUE(idx.find(0.5).record.has_value());
}

TEST(BulkLoad, IntoExistingTree) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  index::ReferenceIndex oracle;
  auto first = workload::makeDataset(workload::Distribution::Uniform, 300, 7);
  for (const auto& r : first) {
    idx.insert(r);
    oracle.insert(r);
  }
  auto second = workload::makeDataset(workload::Distribution::Gaussian, 700, 8);
  idx.insertBatch(second);
  for (const auto& r : second) oracle.insert(r);
  auto mine = idx.rangeQuery(0.0, 1.0);
  EXPECT_EQ(mine.records.size(), oracle.recordCount());
}

TEST(CascadingSplits, ClearsOverflowImmediately) {
  dht::LocalDht d;
  LhtIndex::Options o{.thetaSplit = 8, .maxDepth = 30};
  o.allowCascadingSplits = true;
  LhtIndex idx(d, o);
  index::ReferenceIndex oracle;
  common::Pcg32 rng(19);
  common::u64 lastSplits = 0;
  bool sawBurst = false;
  for (int i = 0; i < 600; ++i) {
    // Clustered keys provoke multi-level splits.
    index::Record r{0.40625 + rng.nextDouble() / 2048.0, "c" + std::to_string(i)};
    idx.insert(r);
    oracle.insert(r);
    const common::u64 s = idx.meters().maintenance.splits;
    if (s - lastSplits > 1) sawBurst = true;
    lastSplits = s;
    // No leaf may stay saturated under the cascading policy.
    idx.forEachBucket([&](const LeafBucket& b) {
      EXPECT_TRUE(b.effectiveSize(true) < 8 || b.label.length() >= 30);
    });
  }
  EXPECT_TRUE(sawBurst);  // the policy actually differed from one-split
  auto mine = idx.rangeQuery(0.0, 1.0);
  EXPECT_EQ(mine.records.size(), oracle.recordCount());
}

TEST(SuccessorQuery, MatchesOracle) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  std::multimap<double, std::string> oracle;
  auto data = workload::makeDataset(workload::Distribution::Uniform, 800, 9);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.emplace(r.key, r.payload);
  }
  common::Pcg32 rng(10);
  for (int q = 0; q < 200; ++q) {
    const double key = rng.nextDouble();
    auto mine = idx.successorQuery(key);
    auto it = oracle.lower_bound(key);
    if (it == oracle.end()) {
      EXPECT_FALSE(mine.record.has_value()) << key;
    } else {
      ASSERT_TRUE(mine.record.has_value()) << key;
      EXPECT_DOUBLE_EQ(mine.record->key, it->first) << key;
    }
  }
}

TEST(PredecessorQuery, MatchesOracle) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  std::multimap<double, std::string> oracle;
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 800, 11);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.emplace(r.key, r.payload);
  }
  common::Pcg32 rng(12);
  for (int q = 0; q < 200; ++q) {
    const double key = rng.nextDouble();
    auto mine = idx.predecessorQuery(key);
    auto it = oracle.lower_bound(key);
    if (it == oracle.begin()) {
      EXPECT_FALSE(mine.record.has_value()) << key;
    } else {
      ASSERT_TRUE(mine.record.has_value()) << key;
      EXPECT_DOUBLE_EQ(mine.record->key, std::prev(it)->first) << key;
    }
  }
}

TEST(SuccessorQuery, CrossesEmptyLeaves) {
  dht::LocalDht d;
  LhtIndex::Options o{.thetaSplit = 4, .maxDepth = 20};
  o.enableMerge = false;
  LhtIndex idx(d, o);
  for (double k : {0.1, 0.12, 0.13, 0.15, 0.9, 0.95}) idx.insert({k, "x"});
  for (double k : {0.1, 0.12, 0.13, 0.15}) idx.erase(k);
  auto s = idx.successorQuery(0.05);
  ASSERT_TRUE(s.record.has_value());
  EXPECT_DOUBLE_EQ(s.record->key, 0.9);
  auto p = idx.predecessorQuery(0.5);
  EXPECT_FALSE(p.record.has_value());
}

TEST(SuccessorQuery, BoundaryBehaviour) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  idx.insert({0.5, "mid"});
  // successor(key) is inclusive; predecessor(key) is strict.
  EXPECT_DOUBLE_EQ(idx.successorQuery(0.5).record->key, 0.5);
  EXPECT_FALSE(idx.predecessorQuery(0.5).record.has_value());
  EXPECT_DOUBLE_EQ(idx.predecessorQuery(1.0).record->key, 0.5);
  EXPECT_DOUBLE_EQ(idx.successorQuery(0.0).record->key, 0.5);
}

TEST(DepthHint, SameAnswersFewerLookups) {
  dht::LocalDht d1, d2;
  LhtIndex::Options base{.thetaSplit = 8, .maxDepth = 26};
  LhtIndex plain(d1, base);
  base.useDepthHint = true;
  LhtIndex hinted(d2, base);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 2000, 21);
  for (const auto& r : data) {
    plain.insert(r);
    hinted.insert(r);
  }
  common::Pcg32 rng(22);
  double plainCost = 0, hintedCost = 0;
  for (int q = 0; q < 300; ++q) {
    const double key = rng.nextDouble();
    auto a = plain.lookup(key);
    auto b = hinted.lookup(key);
    ASSERT_EQ(a.bucket->label, b.bucket->label) << key;  // same answer
    plainCost += static_cast<double>(a.stats.dhtLookups);
    hintedCost += static_cast<double>(b.stats.dhtLookups);
  }
  // Uniform data concentrates leaf depths, so the hint usually hits first.
  EXPECT_LT(hintedCost, plainCost);
  EXPECT_LT(hintedCost / 300.0, 2.0);
}

TEST(DepthHint, StaysCorrectOnSkewedDepths) {
  // Gaussian trees have widely varying depths; the hint may miss but must
  // never change results.
  dht::LocalDht d1, d2;
  LhtIndex::Options base{.thetaSplit = 8, .maxDepth = 30};
  LhtIndex plain(d1, base);
  base.useDepthHint = true;
  LhtIndex hinted(d2, base);
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 1500, 23);
  for (const auto& r : data) {
    plain.insert(r);
    hinted.insert(r);
  }
  common::Pcg32 rng(24);
  for (int q = 0; q < 300; ++q) {
    const double key = rng.nextDouble();
    ASSERT_EQ(plain.lookup(key).bucket->label, hinted.lookup(key).bucket->label);
  }
}

TEST(TreeStats, CountsMatchIndex) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 1000, 13);
  for (const auto& r : data) idx.insert(r);
  auto s = TreeStats::collect(idx);
  EXPECT_EQ(s.totalRecords, idx.recordCount());
  EXPECT_GT(s.leafCount, 50u);
  EXPECT_GE(s.maxDepth, s.minDepth);
  EXPECT_GE(s.meanDepth, static_cast<double>(s.minDepth));
  EXPECT_LE(s.meanDepth, static_cast<double>(s.maxDepth));
  size_t fromHistogram = 0;
  for (size_t c : s.depthHistogram) fromHistogram += c;
  EXPECT_EQ(fromHistogram, s.leafCount);
  EXPECT_FALSE(s.summary().empty());
}

TEST(TreeStats, EmptyIndex) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  auto s = TreeStats::collect(idx);
  EXPECT_EQ(s.leafCount, 1u);
  EXPECT_EQ(s.totalRecords, 0u);
  EXPECT_EQ(s.emptyLeaves, 1u);
  EXPECT_EQ(s.minDepth, 1u);
  EXPECT_EQ(s.maxDepth, 1u);
}

TEST(TreeStats, GaussianTreeIsDeeperInTheMiddle) {
  // The space-partition strategy adapts depth to density (paper Fig. 2).
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 30});
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 2000, 14);
  for (const auto& r : data) idx.insert(r);
  common::u32 centerDepth = 0, edgeDepth = 0;
  idx.forEachBucket([&](const LeafBucket& b) {
    if (b.covers(0.5)) centerDepth = b.label.length();
    if (b.covers(0.01)) edgeDepth = b.label.length();
  });
  EXPECT_GT(centerDepth, edgeDepth);
}

}  // namespace
}  // namespace lht::core
