// Tests for the RST baseline: one-hop queries, structure replication, and
// the broadcast-on-split cost that motivates LHT.
#include "rst/rst_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dht/local_dht.h"
#include "index/reference_index.h"
#include "workload/generators.h"

namespace lht::rst {
namespace {

RstIndex::Options smallOpts(common::u32 theta = 8, size_t peers = 32) {
  RstIndex::Options o;
  o.thetaSplit = theta;
  o.maxDepth = 24;
  o.peerCount = peers;
  return o;
}

TEST(RstIndex, ExactMatchIsOneHop) {
  dht::LocalDht d;
  RstIndex idx(d, smallOpts());
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 1);
  for (const auto& r : data) idx.insert(r);
  common::Pcg32 rng(2);
  for (int q = 0; q < 100; ++q) {
    auto res = idx.find(rng.nextDouble());
    EXPECT_EQ(res.stats.dhtLookups, 1u);  // globally known structure
  }
  EXPECT_TRUE(idx.find(data[7].key).record.has_value());
}

TEST(RstIndex, RangeIsOneParallelStep) {
  dht::LocalDht d;
  RstIndex idx(d, smallOpts());
  index::ReferenceIndex oracle;
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 800, 3);
  for (const auto& r : data) {
    idx.insert(r);
    oracle.insert(r);
  }
  common::Pcg32 rng(4);
  for (int q = 0; q < 60; ++q) {
    auto spec = workload::makeRange(0.15, rng);
    auto mine = idx.rangeQuery(spec.lo, spec.hi);
    auto truth = oracle.rangeQuery(spec.lo, spec.hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(mine.records.size(), truth.records.size()) << q;
    for (size_t i = 0; i < truth.records.size(); ++i) {
      EXPECT_EQ(mine.records[i], truth.records[i]);
    }
    EXPECT_EQ(mine.stats.parallelSteps, 1u);
    EXPECT_EQ(mine.stats.dhtLookups, mine.stats.bucketsTouched);
  }
}

TEST(RstIndex, SplitBroadcastsToAllPeers) {
  // The paper's complaint made concrete: every split costs N structure
  // messages, so maintenance scales with the network size.
  for (size_t peers : {16u, 256u}) {
    dht::LocalDht d;
    RstIndex idx(d, smallOpts(8, peers));
    auto data = workload::makeDataset(workload::Distribution::Uniform, 400, 5);
    for (const auto& r : data) idx.insert(r);
    const auto splits = idx.meters().maintenance.splits;
    ASSERT_GT(splits, 10u);
    EXPECT_EQ(idx.broadcasts(), splits * peers);
    // Maintenance lookups = broadcast + 2 re-keyed children per split.
    EXPECT_EQ(idx.meters().maintenance.dhtLookups, splits * (peers + 2));
  }
}

TEST(RstIndex, StructureMatchesLeafSetInvariants) {
  dht::LocalDht d;
  RstIndex idx(d, smallOpts());
  auto data = workload::makeDataset(workload::Distribution::Zipf, 600, 6);
  for (const auto& r : data) idx.insert(r);
  // The replicated leaf set tiles [0,1) exactly.
  double edge = 0.0;
  for (const auto& leaf : idx.leaves()) {
    EXPECT_DOUBLE_EQ(leaf.interval().lo, edge);
    edge = leaf.interval().hi;
  }
  EXPECT_DOUBLE_EQ(edge, 1.0);
}

TEST(RstIndex, MinMaxAndErase) {
  dht::LocalDht d;
  RstIndex idx(d, smallOpts());
  auto data = workload::makeDataset(workload::Distribution::Uniform, 300, 7);
  double lo = 2.0, hi = -1.0;
  for (const auto& r : data) {
    idx.insert(r);
    lo = std::min(lo, r.key);
    hi = std::max(hi, r.key);
  }
  EXPECT_DOUBLE_EQ(idx.minRecord().record->key, lo);
  EXPECT_DOUBLE_EQ(idx.maxRecord().record->key, hi);
  EXPECT_TRUE(idx.erase(data[0].key).ok);
  EXPECT_FALSE(idx.erase(data[0].key).ok);
  EXPECT_EQ(idx.recordCount(), data.size() - 1);
}

TEST(RstIndex, BoundaryKeys) {
  dht::LocalDht d;
  RstIndex idx(d, smallOpts());
  idx.insert({0.0, "zero"});
  idx.insert({1.0, "one"});
  EXPECT_TRUE(idx.find(0.0).record.has_value());
  EXPECT_TRUE(idx.find(1.0).record.has_value());
}

}  // namespace
}  // namespace lht::rst
