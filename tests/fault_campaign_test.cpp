// The resilience tentpole's enforcement test: the fault campaign kills a
// crash-consistent LHT client at *every* intermediate DHT-write of every
// split and merge it performs (with lost replies injected throughout), and
// a fresh client must recover the index to exactly the oracle's contents —
// no lost records, no duplicates, no stranded intent markers.
#include <gtest/gtest.h>

#include "sim/fault_campaign.h"

namespace lht::sim {
namespace {

TEST(FaultCampaign, EveryCrashStepRecoversToOracle) {
  FaultCampaignConfig cfg;  // defaults: 16 seeds, lost replies at 10%
  ASSERT_GE(cfg.seeds, 16u);
  ASSERT_GT(cfg.lostReplyRate, 0.0);

  const FaultCampaignReport report = runFaultCampaign(cfg);

  for (const auto& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());

  // The campaign must actually have exercised what it claims to: both
  // protocols crashed mid-flight, both kinds of repair ran, and the
  // lost-reply channel injected real losses.
  EXPECT_GT(report.scenarios, 100u);
  EXPECT_GT(report.splitCrashes, 0u);
  EXPECT_GT(report.mergeCrashes, 0u);
  EXPECT_GT(report.splitRepairs, 0u);
  EXPECT_GT(report.mergeRepairs, 0u);
  EXPECT_GT(report.lostRepliesInjected, 0u);
}

TEST(FaultCampaign, PassesWithClientCacheAndBatchingEnabled) {
  // The PR-2 client-side performance features (leaf-location cache, batched
  // rounds, decoded-bucket store) must not weaken crash recovery: the same
  // campaign, with every feature on for both the crashing and the
  // recovering client, still converges to the oracle.
  FaultCampaignConfig cfg;
  cfg.seeds = 6;  // fewer seeds: this variant rides alongside the main run
  cfg.useLeafCache = true;
  cfg.batchFanout = true;
  cfg.cacheDecodedBuckets = true;

  const FaultCampaignReport report = runFaultCampaign(cfg);

  for (const auto& f : report.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.splitCrashes, 0u);
  EXPECT_GT(report.mergeCrashes, 0u);
  EXPECT_GT(report.splitRepairs + report.mergeRepairs, 0u);
}

TEST(FaultCampaign, ReportIsDeterministic) {
  FaultCampaignConfig cfg;
  cfg.seeds = 2;
  cfg.inserts = 24;
  cfg.erases = 16;

  const FaultCampaignReport a = runFaultCampaign(cfg);
  const FaultCampaignReport b = runFaultCampaign(cfg);

  EXPECT_EQ(a.scenarios, b.scenarios);
  EXPECT_EQ(a.splitCrashes, b.splitCrashes);
  EXPECT_EQ(a.mergeCrashes, b.mergeCrashes);
  EXPECT_EQ(a.splitRepairs, b.splitRepairs);
  EXPECT_EQ(a.mergeRepairs, b.mergeRepairs);
  EXPECT_EQ(a.lostRepliesInjected, b.lostRepliesInjected);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_TRUE(a.ok());
}

}  // namespace
}  // namespace lht::sim
