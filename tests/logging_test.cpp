#include "common/logging.h"

#include <gtest/gtest.h>

namespace lht::common {
namespace {

TEST(Logging, LevelGateControlsEmission) {
  const LogLevel old = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  int evaluations = 0;
  // The macro must not evaluate its stream arguments below the gate.
  LHT_LOG(Debug) << "dropped " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  LHT_LOG(Error) << "emitted " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
  setLogLevel(old);
}

TEST(Logging, AllLevelsRoundTrip) {
  const LogLevel old = logLevel();
  for (LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                     LogLevel::Warn, LogLevel::Error}) {
    setLogLevel(l);
    EXPECT_EQ(logLevel(), l);
  }
  setLogLevel(old);
}

}  // namespace
}  // namespace lht::common
