// OverlayNode tests over the deterministic sim transport: server-side
// forwarding and redirects, relay dedup, the join handshake with key
// streaming, graceful leave, and gossip-driven crash detection with
// replica promotion — the in-process twin of what run_cluster.sh --churn
// exercises over kernel UDP (DESIGN.md §15).
#include "overlay/overlay_node.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "overlay/membership.h"
#include "rpc/rpc_client.h"
#include "rpc/sim_transport.h"
#include "rpc/wire.h"

namespace lht::overlay {
namespace {

using rpc::Datagram;
using rpc::RpcClient;
using rpc::SimHub;
using rpc::SimTransport;
using rpc::wire::GetRep;
using rpc::wire::GetReq;
using rpc::wire::NodeEntry;
using rpc::wire::PutRep;
using rpc::wire::PutReq;
using rpc::wire::RedirectRep;
using rpc::wire::Status;

constexpr u16 kBasePort = 6000;

/// N overlay nodes on one SimHub, statically seeded with each other —
/// the sim twin of a fixed-list cluster launch.
struct OverlayCluster {
  SimHub hub;
  std::vector<std::unique_ptr<SimTransport>> tx;
  std::vector<std::unique_ptr<OverlayNode>> nodes;
  std::vector<NodeEntry> entries;

  explicit OverlayCluster(size_t n, OverlayNode::Options base = {}) {
    for (size_t i = 0; i < n; ++i) {
      tx.push_back(hub.makeEndpoint(static_cast<u16>(kBasePort + i)));
      const NetAddr addr = tx.back()->localAddr();
      NodeEntry e;
      e.id = nodeIdFor(addr);
      e.host = addr.host;
      e.port = addr.port;
      e.incarnation = 1;
      e.ringBase = e.id;
      entries.push_back(e);
    }
    for (size_t i = 0; i < n; ++i) {
      OverlayNode::Options opts = base;
      opts.name = "sim-" + std::to_string(i);
      nodes.push_back(std::make_unique<OverlayNode>(opts, *tx[i]));
      nodes[i]->seedMembership(entries);
    }
  }

  [[nodiscard]] NetAddr addr(size_t i) const { return tx[i]->localAddr(); }

  /// One cooperative turn for every node. wait=0 keeps the virtual
  /// clocks frozen (no gossip, no timeouts): pure request-path tests
  /// stay deterministic.
  void pumpAll(u64 wait = 0) {
    for (auto& n : nodes) n->pumpOnce(wait);
  }
};

/// A client endpoint on the hub with a cooperative call helper: spins
/// the cluster and its own transport until the call resolves.
struct TestClient {
  std::unique_ptr<SimTransport> tx;
  RpcClient cli;

  explicit TestClient(SimHub& hub) : tx(hub.makeEndpoint()), cli(*tx) {}

  RpcClient::Result call(OverlayCluster& c, const NetAddr& to,
                         rpc::wire::RequestBody body, bool noForward = false,
                         u64 nodeWait = 0) {
    const RpcClient::Token t = cli.call(to, std::move(body), noForward);
    std::vector<Datagram> in;
    for (int spin = 0; spin < 2000 && !cli.resolved(t); ++spin) {
      c.pumpAll(nodeWait);
      in.clear();
      tx->receive(in, 1);
      for (const Datagram& d : in) cli.deliver(d);
      cli.pump(tx->nowMs());
    }
    if (!cli.resolved(t)) cli.pump(~u64{0});  // force-expire: test failure
    return cli.take(t);
  }
};

/// The key → node-index map every participant must agree on.
size_t ownerIndex(const OverlayCluster& c, const std::string& key) {
  MemberRing ring(c.entries, OverlayNode::Options{}.virtualNodes);
  const u64 owner = ring.owner(key);
  for (size_t i = 0; i < c.entries.size(); ++i) {
    if (c.entries[i].id == owner) return i;
  }
  ADD_FAILURE() << "no owner for " << key;
  return 0;
}

/// Some key owned by node `want` (scans a counter namespace).
std::string keyOwnedBy(const OverlayCluster& c, size_t want) {
  for (int i = 0; i < 10000; ++i) {
    std::string key = "key-" + std::to_string(i);
    if (ownerIndex(c, key) == want) return key;
  }
  ADD_FAILURE() << "no key found for node " << want;
  return "";
}

TEST(OverlayNode, ForwardsToOwnerAndRelaysTheReply) {
  OverlayCluster c(2);
  TestClient client(c.hub);
  const std::string key = keyOwnedBy(c, 1);

  // Put sent to the WRONG node: forwarded one hop, answered under the
  // origin's request id, stored on the owner only.
  auto put = client.call(c, c.addr(0), PutReq{key, "v1"});
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(std::get<PutRep>(put.body).version, 1u);
  EXPECT_EQ(c.nodes[0]->overlayStats().forwards, 1u);
  EXPECT_TRUE(c.nodes[1]->server().primaryRecord(key).has_value());
  EXPECT_FALSE(c.nodes[0]->server().primaryRecord(key).has_value());

  // The relayed reply is re-stamped by the forwarder: the hint names
  // node 0, so the client learns about staleness from the node it spoke to.
  ASSERT_TRUE(put.hint.has_value());
  EXPECT_EQ(put.hint->senderId, c.nodes[0]->selfId());

  auto get = client.call(c, c.addr(0), GetReq{key});
  ASSERT_TRUE(get.ok());
  const auto& rep = std::get<GetRep>(get.body);
  EXPECT_TRUE(rep.present);
  EXPECT_EQ(rep.value, "v1");
}

TEST(OverlayNode, RedirectsWhenForwardingDisabled) {
  OverlayNode::Options base;
  base.forwardData = false;
  OverlayCluster c(2, base);
  TestClient client(c.hub);
  const std::string key = keyOwnedBy(c, 1);

  auto r = client.call(c, c.addr(0), PutReq{key, "v"});
  EXPECT_FALSE(r.timedOut);
  ASSERT_EQ(r.status, Status::Redirect);
  const auto& redirect = std::get<RedirectRep>(r.body);
  EXPECT_EQ(redirect.ownerId, c.nodes[1]->selfId());
  EXPECT_EQ(redirect.port, c.addr(1).port);
  EXPECT_EQ(c.nodes[0]->overlayStats().redirects, 1u);
  EXPECT_EQ(c.nodes[0]->overlayStats().forwards, 0u);

  // Following the redirect lands the op.
  auto r2 = client.call(c, c.addr(1), PutReq{key, "v"});
  EXPECT_TRUE(r2.ok());
}

TEST(OverlayNode, NoForwardIsAnsweredLocally) {
  OverlayCluster c(2);
  TestClient client(c.hub);
  const std::string key = keyOwnedBy(c, 1);

  // The no-forward bit is the loop-breaker: even a misrouted op executes
  // where it lands instead of bouncing again.
  auto r = client.call(c, c.addr(0), PutReq{key, "local"},
                       /*noForward=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(c.nodes[0]->overlayStats().forwards, 0u);
  EXPECT_TRUE(c.nodes[0]->server().primaryRecord(key).has_value());
  EXPECT_FALSE(c.nodes[1]->server().primaryRecord(key).has_value());
}

TEST(OverlayNode, NoForwardGetFallsBackToReplica) {
  OverlayCluster c(2);
  TestClient client(c.hub);
  const std::string key = keyOwnedBy(c, 1);

  // Node 0 holds only a replica copy (the state right after it demoted
  // the key, or a fanout write landed here). A forwarded read that
  // arrives anyway must serve it rather than answer "absent".
  auto rp = client.call(c, c.addr(0), rpc::wire::ReplicaPutReq{key, "copy", 7});
  ASSERT_TRUE(rp.ok());
  auto r = client.call(c, c.addr(0), GetReq{key}, /*noForward=*/true);
  ASSERT_TRUE(r.ok());
  const auto& rep = std::get<GetRep>(r.body);
  EXPECT_TRUE(rep.present);
  EXPECT_EQ(rep.version, 7u);
  EXPECT_EQ(rep.value, "copy");
}

TEST(OverlayNode, RelayAbsorbsOriginRetransmits) {
  OverlayCluster c(2);
  const std::string key = keyOwnedBy(c, 1);

  // Raw datagrams with a pinned request id stand in for an origin
  // retransmitting into a slow forward.
  auto origin = c.hub.makeEndpoint();
  const std::string wire = rpc::wire::encodeRequest(777, PutReq{key, "v"});
  origin->send(c.addr(0), wire);
  for (int i = 0; i < 10; ++i) c.pumpAll();
  origin->send(c.addr(0), wire);  // retransmit after the relay completed
  for (int i = 0; i < 10; ++i) c.pumpAll();

  std::vector<Datagram> got;
  origin->receive(got, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].payload, got[1].payload);  // replayed bytes, verbatim
  EXPECT_EQ(c.nodes[0]->overlayStats().relayDedupHits, 1u);
  EXPECT_EQ(c.nodes[0]->overlayStats().forwards, 1u);  // relayed only once
  // And the mutation ran once on the owner.
  EXPECT_EQ(c.nodes[1]->server().primaryRecord(key)->first, 1u);
}

TEST(OverlayNode, BatchesRedirectInsteadOfForwarding) {
  OverlayCluster c(2);
  TestClient client(c.hub);
  const std::string mine = keyOwnedBy(c, 0);
  const std::string theirs = keyOwnedBy(c, 1);

  rpc::wire::MultiGetReq mixed;
  mixed.entries.push_back(GetReq{mine});
  mixed.entries.push_back(GetReq{theirs});
  auto r = client.call(c, c.addr(0), std::move(mixed));
  // A single foreign key fails the whole batch over to the client: the
  // packing must be regrouped against a fresh table, not split server-side.
  EXPECT_EQ(r.status, Status::Redirect);
  EXPECT_EQ(c.nodes[0]->overlayStats().forwards, 0u);

  rpc::wire::MultiGetReq local;
  local.entries.push_back(GetReq{mine});
  auto r2 = client.call(c, c.addr(0), std::move(local));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(std::get<rpc::wire::MultiGetRep>(r2.body).entries.size(), 1u);
}

// Preloads `n` records through node 0 (forwarding spreads them to their
// owners) and returns the keys.
std::vector<std::string> preload(OverlayCluster& c, TestClient& client,
                                 size_t n) {
  std::vector<std::string> keys;
  for (size_t i = 0; i < n; ++i) {
    std::string key = "key-" + std::to_string(i);
    auto r = client.call(c, c.addr(0), PutReq{key, "val-" + std::to_string(i)});
    EXPECT_TRUE(r.ok()) << key;
    keys.push_back(std::move(key));
  }
  return keys;
}

void expectAllReadable(OverlayCluster& c, TestClient& client,
                       const std::vector<std::string>& keys,
                       const std::vector<size_t>& viaNodes) {
  for (size_t i = 0; i < keys.size(); ++i) {
    const NetAddr via = c.addr(viaNodes[i % viaNodes.size()]);
    auto r = client.call(c, via, GetReq{keys[i]});
    ASSERT_TRUE(r.ok()) << keys[i];
    const auto& rep = std::get<GetRep>(r.body);
    EXPECT_TRUE(rep.present) << keys[i];
    EXPECT_EQ(rep.value, "val-" + std::to_string(i)) << keys[i];
  }
}

TEST(OverlayNode, JoinStreamsKeysAndKeepsEveryReadServed) {
  // Sim clocks on different threads advance at unrelated wall rates (an
  // empty receive charges its full wait to virtual time), so the joiner
  // could spin through any realistic virtual deadline before the main
  // thread pumps the incumbents once. Effectively-unbounded deadlines
  // make completion depend only on the actual message exchange.
  constexpr u64 kNoDeadline = u64{1} << 40;
  OverlayNode::Options base;
  base.rpc.requestDeadlineMs = kNoDeadline;
  OverlayCluster c(2, base);
  TestClient client(c.hub);
  const auto keys = preload(c, client, 40);

  // A third node joins through node 0 while the incumbents keep serving.
  auto joinTx = c.hub.makeEndpoint(kBasePort + 2);
  OverlayNode::Options jo = base;
  jo.name = "joiner";
  auto joiner = std::make_unique<OverlayNode>(jo, *joinTx);
  std::atomic<bool> done{false};
  bool joined = false;
  std::thread joinThread([&] {
    joined = joiner->joinCluster(c.addr(0), /*deadlineMs=*/kNoDeadline);
    done.store(true);
  });
  while (!done.load()) c.pumpAll(1);
  joinThread.join();
  ASSERT_TRUE(joined);

  // Drain the handoff streams (the joiner pumps from this thread now).
  c.tx.push_back(std::move(joinTx));
  c.nodes.push_back(std::move(joiner));
  for (int i = 0; i < 4000 && (c.nodes[0]->pendingHandoffJobs() > 0 ||
                               c.nodes[1]->pendingHandoffJobs() > 0);
       ++i) {
    c.pumpAll(1);
  }
  EXPECT_EQ(c.nodes[0]->pendingHandoffJobs(), 0u);
  EXPECT_EQ(c.nodes[1]->pendingHandoffJobs(), 0u);

  // Everyone agrees the cluster is three nodes now.
  EXPECT_EQ(c.nodes[0]->membership().ringMemberCount(), 3u);
  EXPECT_EQ(c.nodes[1]->membership().ringMemberCount(), 3u);
  EXPECT_EQ(c.nodes[2]->membership().ringMemberCount(), 3u);

  // The joiner took over a share of the range, the incumbents demoted
  // their streamed copies, and NOT ONE record became unreadable: every
  // key answers through every entry point — including the joiner, whose
  // warm-window misses fall back to the previous owner.
  EXPECT_GT(c.nodes[2]->server().primaryKeyCount(), 0u);
  const size_t totalPrimaries = c.nodes[0]->server().primaryKeyCount() +
                                c.nodes[1]->server().primaryKeyCount() +
                                c.nodes[2]->server().primaryKeyCount();
  EXPECT_EQ(totalPrimaries, keys.size());
  expectAllReadable(c, client, keys, {0, 1, 2});
}

TEST(OverlayNode, GracefulLeaveStreamsEverythingOut) {
  // Unbounded deadlines for the same cross-thread virtual-clock reason
  // as the join test.
  constexpr u64 kNoDeadline = u64{1} << 40;
  OverlayNode::Options base;
  base.rpc.requestDeadlineMs = kNoDeadline;
  OverlayCluster c(3, base);
  TestClient client(c.hub);
  const auto keys = preload(c, client, 40);
  const size_t leaverPrimaries = c.nodes[2]->server().primaryKeyCount();
  ASSERT_GT(leaverPrimaries, 0u);  // 40 keys across 3 nodes: owns some

  std::atomic<bool> done{false};
  size_t streamed = 0;
  std::thread leaveThread([&] {
    streamed = c.nodes[2]->leaveGracefully(/*deadlineMs=*/kNoDeadline);
    done.store(true);
  });
  while (!done.load()) {
    c.nodes[0]->pumpOnce(1);
    c.nodes[1]->pumpOnce(1);
  }
  leaveThread.join();
  EXPECT_EQ(streamed, leaverPrimaries);

  // Survivors saw the announcement: the leaver is Left and off the ring.
  for (size_t i = 0; i < 2; ++i) {
    auto entry = c.nodes[i]->membership().find(c.entries[2].id);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->state, static_cast<u8>(NodeState::Left));
    EXPECT_EQ(c.nodes[i]->membership().ringMemberCount(), 2u);
  }

  // Every record reads back through the survivors.
  auto leaver = std::move(c.nodes[2]);  // keep alive, but stop pumping it
  c.nodes.pop_back();
  expectAllReadable(c, client, keys, {0, 1});
}

TEST(OverlayNode, CrashIsDetectedAndReplicasPromoted) {
  OverlayNode::Options base;
  base.replication = 2;
  OverlayCluster c(3, base);
  TestClient client(c.hub);

  // Write primary + one replica exactly where the ring says they belong —
  // what a replication=2 RoutedNetDht does on every put.
  MemberRing ring(c.entries, base.virtualNodes);
  std::vector<std::string> keys;
  for (size_t i = 0; i < 30; ++i) {
    std::string key = "key-" + std::to_string(i);
    const std::string value = "val-" + std::to_string(i);
    const auto holders = ring.holders(key, 1);
    ASSERT_EQ(holders.size(), 2u);
    size_t ownerIdx = 0;
    size_t replicaIdx = 0;
    for (size_t j = 0; j < c.entries.size(); ++j) {
      if (c.entries[j].id == holders[0]) ownerIdx = j;
      if (c.entries[j].id == holders[1]) replicaIdx = j;
    }
    auto put = client.call(c, c.addr(ownerIdx), PutReq{key, value});
    ASSERT_TRUE(put.ok());
    auto rp = client.call(
        c, c.addr(replicaIdx),
        rpc::wire::ReplicaPutReq{key, value,
                                 std::get<PutRep>(put.body).version});
    ASSERT_TRUE(rp.ok());
    keys.push_back(std::move(key));
  }

  // Node 2 crashes (no goodbye). Gossip rounds to it now time out;
  // Alive → Suspect → Dead, then reconcile promotes the survivors'
  // replica copies of its range.
  c.hub.setOnline(static_cast<u16>(kBasePort + 2), false);
  const u64 deadId = c.entries[2].id;
  auto isDeadAt = [&](size_t i) {
    auto e = c.nodes[i]->membership().find(deadId);
    return e.has_value() && e->state >= static_cast<u8>(NodeState::Dead);
  };
  for (int i = 0; i < 50000 && !(isDeadAt(0) && isDeadAt(1)); ++i) {
    c.nodes[0]->pumpOnce(50);  // real waits: virtual clocks advance,
    c.nodes[1]->pumpOnce(50);  // gossip fires, timeouts accumulate
  }
  ASSERT_TRUE(isDeadAt(0) && isDeadAt(1));
  EXPECT_EQ(c.nodes[0]->membership().ringMemberCount(), 2u);
  EXPECT_GE(c.nodes[0]->overlayStats().gossipTimeouts +
                c.nodes[1]->overlayStats().gossipTimeouts,
            1u);
  EXPECT_GE(c.nodes[0]->overlayStats().replicasPromoted +
                c.nodes[1]->overlayStats().replicasPromoted,
            1u);

  // Zero lost keys: everything the dead node owned answers from the
  // promoted copies on the survivors.
  auto crashed = std::move(c.nodes[2]);
  c.nodes.pop_back();
  expectAllReadable(c, client, keys, {0, 1});
}

}  // namespace
}  // namespace lht::overlay
