// Hammers every substrate from multiple threads and feeds the recorded
// per-thread histories to the single-key linearizability checker: with the
// striped-lock substrates (DESIGN.md §10) every interleaving must be
// linearizable per key, under both a quiet topology and concurrent churn.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dht/can.h"
#include "dht/chord.h"
#include "dht/kademlia.h"
#include "dht/local_dht.h"
#include "dht/pastry.h"
#include "exec/history.h"
#include "exec/linearizability.h"
#include "net/sim_network.h"

namespace lht {
namespace {

constexpr size_t kThreads = 4;
constexpr size_t kRounds = 12;
const std::vector<std::string> kKeys = {"alpha", "beta",  "gamma",
                                        "delta", "kappa", "omega"};

/// Runs the standard put/get/remove hammer against `dht` and returns the
/// merged history. Each (thread, round) writes a unique value, so the
/// register checker can distinguish every write.
std::vector<exec::OpRecord> hammer(dht::Dht& dht) {
  std::vector<exec::History> histories;
  histories.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) histories.emplace_back(t);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dht, &histories, t] {
      exec::History& h = histories[t];
      for (size_t r = 0; r < kRounds; ++r) {
        const std::string& key = kKeys[(t + r) % kKeys.size()];
        exec::OpRecord rec;
        rec.dhtKey = key;
        rec.invokeMs = exec::nextTick();
        switch (r % 3) {
          case 0: {
            rec.kind = exec::OpKind::Put;
            rec.value = "t" + std::to_string(t) + "-r" + std::to_string(r);
            dht.put(key, *rec.value);
            rec.ok = true;
            break;
          }
          case 1: {
            rec.kind = exec::OpKind::Get;
            rec.value = dht.get(key);
            rec.ok = true;
            break;
          }
          default: {
            rec.kind = exec::OpKind::Remove;
            dht.remove(key);
            rec.ok = true;
            break;
          }
        }
        rec.returnMs = exec::nextTick();
        h.append(std::move(rec));
      }
    });
  }
  for (auto& t : threads) t.join();
  return exec::mergeHistories(histories);
}

TEST(ConcurrentSubstrateTest, LocalDhtIsLinearizablePerKey) {
  dht::LocalDht dht;
  const auto merged = hammer(dht);
  const auto r = exec::checkSingleKeyHistories(merged);
  EXPECT_TRUE(r.ok) << r.explanation;
}

TEST(ConcurrentSubstrateTest, ChordIsLinearizablePerKey) {
  net::SimNetwork net;
  dht::ChordDht dht(net, {.initialPeers = 16, .seed = 7, .replication = 3});
  const auto merged = hammer(dht);
  const auto r = exec::checkSingleKeyHistories(merged);
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_TRUE(dht.checkRing());
  EXPECT_TRUE(dht.checkReplication());
}

TEST(ConcurrentSubstrateTest, KademliaIsLinearizablePerKey) {
  net::SimNetwork net;
  dht::KademliaDht dht(net, {.initialPeers = 16, .seed = 7});
  const auto merged = hammer(dht);
  const auto r = exec::checkSingleKeyHistories(merged);
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_TRUE(dht.checkTables());
}

TEST(ConcurrentSubstrateTest, PastryIsLinearizablePerKey) {
  net::SimNetwork net;
  dht::PastryDht dht(net, {.initialPeers = 16, .seed = 7});
  const auto merged = hammer(dht);
  const auto r = exec::checkSingleKeyHistories(merged);
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_TRUE(dht.checkTables());
}

TEST(ConcurrentSubstrateTest, CanIsLinearizablePerKey) {
  net::SimNetwork net;
  dht::CanDht dht(net, {.initialPeers = 16, .seed = 7});
  const auto merged = hammer(dht);
  const auto r = exec::checkSingleKeyHistories(merged);
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_TRUE(dht.checkZones());
}

TEST(ConcurrentSubstrateTest, ChordStaysLinearizableUnderConcurrentChurn) {
  net::SimNetwork net;
  dht::ChordDht dht(net, {.initialPeers = 16, .seed = 11, .replication = 2});
  std::vector<exec::History> histories;
  for (size_t t = 0; t < kThreads; ++t) histories.emplace_back(t);
  std::atomic<bool> stopChurn{false};
  std::thread churn([&] {
    size_t n = 0;
    while (!stopChurn.load(std::memory_order_acquire)) {
      const common::u64 id = dht.join("churn-" + std::to_string(n++));
      dht.leave(id);  // graceful: keys rehome, nothing is lost
    }
  });
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dht, &histories, t] {
      exec::History& h = histories[t];
      for (size_t r = 0; r < kRounds; ++r) {
        const std::string& key = kKeys[(t + r) % kKeys.size()];
        exec::OpRecord rec;
        rec.dhtKey = key;
        rec.invokeMs = exec::nextTick();
        if (r % 2 == 0) {
          rec.kind = exec::OpKind::Put;
          rec.value = "t" + std::to_string(t) + "-r" + std::to_string(r);
          dht.put(key, *rec.value);
        } else {
          rec.kind = exec::OpKind::Get;
          rec.value = dht.get(key);
        }
        rec.ok = true;
        rec.returnMs = exec::nextTick();
        h.append(std::move(rec));
      }
    });
  }
  for (auto& w : workers) w.join();
  stopChurn.store(true, std::memory_order_release);
  churn.join();
  const auto r = exec::checkSingleKeyHistories(exec::mergeHistories(histories));
  EXPECT_TRUE(r.ok) << r.explanation;
  EXPECT_TRUE(dht.checkRing());
  EXPECT_TRUE(dht.checkReplication());
}

TEST(ConcurrentSubstrateTest, CanSurvivesConcurrentChurn) {
  net::SimNetwork net;
  dht::CanDht dht(net, {.initialPeers = 12, .seed = 3});
  std::atomic<bool> stopChurn{false};
  std::thread churn([&] {
    size_t n = 0;
    while (!stopChurn.load(std::memory_order_acquire)) {
      const common::u64 id = dht.join("churn-" + std::to_string(n++));
      dht.leave(id);
    }
  });
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&dht, t] {
      for (size_t r = 0; r < kRounds; ++r) {
        const std::string key = "k" + std::to_string((t + r) % 5);
        dht.put(key, "v");
        (void)dht.get(key);
      }
    });
  }
  for (auto& w : workers) w.join();
  stopChurn.store(true, std::memory_order_release);
  churn.join();
  EXPECT_TRUE(dht.checkZones());
}

}  // namespace
}  // namespace lht
