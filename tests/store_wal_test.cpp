#include "store/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "store/io_file.h"

namespace lht::store {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "lht_wal_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<WalRecord> scanAll(const std::string& dir, u64 snapLsn = 0) {
  std::vector<WalRecord> out;
  scanWal(dir, snapLsn, [&](const WalRecord& r) { out.push_back(r); });
  return out;
}

TEST(Wal, AppendScanRoundTrip) {
  const auto dir = freshDir("roundtrip");
  {
    WalWriter w({.dir = dir}, /*segmentSeq=*/1, /*nextLsn=*/1);
    EXPECT_EQ(w.append(WalOp::Put, "a", "1").lsn, 1u);
    EXPECT_EQ(w.append(WalOp::Put, "b", "22").lsn, 2u);
    EXPECT_EQ(w.append(WalOp::Erase, "a", {}).lsn, 3u);
    EXPECT_EQ(w.append(WalOp::Clear, {}, {}).lsn, 4u);
    w.waitDurable(4);
    EXPECT_EQ(w.durableLsn(), 4u);
  }
  const auto recs = scanAll(dir);
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs[0].op, WalOp::Put);
  EXPECT_EQ(recs[0].key, "a");
  EXPECT_EQ(recs[0].value, "1");
  EXPECT_EQ(recs[1].value, "22");
  EXPECT_EQ(recs[2].op, WalOp::Erase);
  EXPECT_EQ(recs[2].key, "a");
  EXPECT_EQ(recs[3].op, WalOp::Clear);
  EXPECT_EQ(recs[3].lsn, 4u);
}

TEST(Wal, SnapLsnSkipsCoveredRecords) {
  const auto dir = freshDir("skip");
  {
    WalWriter w({.dir = dir}, 1, 1);
    for (int i = 0; i < 10; ++i) {
      w.append(WalOp::Put, "k" + std::to_string(i), "v");
    }
  }
  WalScanResult res;
  std::vector<WalRecord> replayed;
  res = scanWal(dir, /*snapLsn=*/7,
                [&](const WalRecord& r) { replayed.push_back(r); });
  EXPECT_EQ(res.scannedRecords, 10u);
  EXPECT_EQ(res.replayedRecords, 3u);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed.front().lsn, 8u);
  EXPECT_EQ(res.lastLsn, 10u);
}

TEST(Wal, RotatesAcrossSegmentsAndScansInOrder) {
  const auto dir = freshDir("rotate");
  {
    WalWriter w({.dir = dir, .segmentBytes = 128}, 1, 1);
    for (int i = 0; i < 50; ++i) {
      w.append(WalOp::Put, "key-" + std::to_string(i), std::string(16, 'x'));
    }
    EXPECT_GT(w.currentSegmentSeq(), 1u);
  }
  EXPECT_GT(listFiles(dir, "wal-", ".log").size(), 1u);
  const auto recs = scanAll(dir);
  ASSERT_EQ(recs.size(), 50u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].lsn, i + 1);
    EXPECT_EQ(recs[i].key, "key-" + std::to_string(i));
  }
}

TEST(Wal, TornTailIsTruncatedNotFatal) {
  const auto dir = freshDir("torn");
  {
    WalWriter w({.dir = dir}, 1, 1);
    w.append(WalOp::Put, "a", "1");
    w.append(WalOp::Put, "b", "2");
  }
  const auto segs = listFiles(dir, "wal-", ".log");
  ASSERT_EQ(segs.size(), 1u);
  const std::string path = dir + "/" + segs[0];
  const u64 before = *fileSize(path);
  {
    // A torn append: a record header promising more payload than exists.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\xff\xff\x00\x00garbage", 11);
  }
  const auto res = scanWal(dir, 0, [](const WalRecord&) {});
  EXPECT_EQ(res.scannedRecords, 2u);
  EXPECT_EQ(res.tornBytesTruncated, 11u);
  EXPECT_EQ(*fileSize(path), before);  // tail cut back to the valid prefix
  // A second scan sees a clean log.
  EXPECT_EQ(scanAll(dir).size(), 2u);
}

TEST(Wal, CorruptionInNonLastSegmentIsFatal) {
  const auto dir = freshDir("corrupt");
  {
    WalWriter w({.dir = dir, .segmentBytes = 64}, 1, 1);
    for (int i = 0; i < 20; ++i) {
      w.append(WalOp::Put, "key-" + std::to_string(i), std::string(16, 'x'));
    }
  }
  auto segs = listFiles(dir, "wal-", ".log");
  ASSERT_GT(segs.size(), 1u);
  // Flip a byte in the middle of the FIRST segment's record area.
  const std::string path = dir + "/" + segs.front();
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(kWalHeaderBytes + 25));
  char c;
  f.seekg(static_cast<std::streamoff>(kWalHeaderBytes + 25));
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(kWalHeaderBytes + 25));
  f.write(&c, 1);
  f.close();
  EXPECT_THROW(scanAll(dir), StoreCorruptionError);
}

TEST(Wal, GapAfterSnapshotIsFatal) {
  const auto dir = freshDir("gap");
  {
    // A segment starting at lsn 100 with nothing covering lsn 1..99.
    WalWriter w({.dir = dir}, 5, 100);
    w.append(WalOp::Put, "k", "v");
  }
  EXPECT_THROW(scanAll(dir, /*snapLsn=*/50), StoreCorruptionError);
  // With a snapshot covering lsn 99 the same log is fine.
  EXPECT_EQ(scanAll(dir, /*snapLsn=*/99).size(), 1u);
}

TEST(Wal, InjectedCrashTearsExactlyOneWrite) {
  const auto dir = freshDir("inject");
  CrashInjector injector;
  injector.disarm();
  u64 events = 0;
  {
    WalWriter w({.dir = dir, .injector = &injector}, 1, 1);
    w.append(WalOp::Put, "a", "aaaa");
    w.append(WalOp::Put, "b", "bbbb");
    w.waitDurable(2);
    events = injector.eventsObserved();
  }
  ASSERT_GT(events, 0u);

  // Crash at every boundary with a torn write; recovery must always yield
  // a prefix of the appends.
  for (u64 at = 0; at < events; ++at) {
    const auto cdir = freshDir("inject_" + std::to_string(at));
    CrashInjector inj;
    inj.arm(at, /*tornFraction=*/0.5);
    bool crashed = false;
    try {
      WalWriter w({.dir = cdir, .injector = &inj}, 1, 1);
      w.append(WalOp::Put, "a", "aaaa");
      w.append(WalOp::Put, "b", "bbbb");
      w.waitDurable(2);
    } catch (const StoreCrashError&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << "boundary " << at;
    const auto recs = scanAll(cdir);
    ASSERT_LE(recs.size(), 2u);
    if (!recs.empty()) {
      EXPECT_EQ(recs[0].key, "a");
      EXPECT_EQ(recs[0].value, "aaaa");
    }
    if (recs.size() == 2) {
      EXPECT_EQ(recs[1].key, "b");
    }
  }
}

TEST(Wal, CrashedWriterRefusesFurtherIo) {
  const auto dir = freshDir("dead");
  CrashInjector inj;
  inj.arm(1, -1.0);
  // Write-through (no log buffer), so the append itself hits the boundary.
  WalWriter w({.dir = dir, .bufferBytes = 0, .injector = &inj}, 1, 1);
  EXPECT_THROW(w.append(WalOp::Put, "a", "1"), StoreCrashError);
  EXPECT_TRUE(inj.crashed());
  EXPECT_THROW(w.append(WalOp::Put, "b", "2"), StoreCrashError);
  EXPECT_THROW(w.waitDurable(1), StoreCrashError);
}

}  // namespace
}  // namespace lht::store
