// Tests for the naming machinery: Definitions 1-3 and Theorems 1-2.
#include "lht/naming.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace lht::core {
namespace {

using common::Label;
using common::u32;

Label L(const char* text) {
  auto l = Label::parse(text);
  EXPECT_TRUE(l.has_value()) << text;
  return *l;
}

TEST(Naming, PaperExamples) {
  // Sec. 3.4: f_n(#01100) = #011, f_n(#01011) = #010.
  EXPECT_EQ(name(L("#01100")), L("#011"));
  EXPECT_EQ(name(L("#01011")), L("#010"));
  // Fig. 4: f_n(#01111) = #0.
  EXPECT_EQ(name(L("#01111")), L("#0"));
  // Def. 1's third case: #00* maps to the virtual root #.
  EXPECT_EQ(name(L("#00")), L("#"));
  EXPECT_EQ(name(L("#0")), L("#"));
  EXPECT_EQ(name(L("#000")), L("#"));
}

TEST(Naming, DhtKeyIsNameString) {
  EXPECT_EQ(dhtKeyFor(L("#01100")), "#011");
  EXPECT_EQ(dhtKeyFor(L("#0")), "#");
}

TEST(Naming, NextNamePaperExample) {
  // Sec. 5: f_nn(#0011, #0011100) = #001110.
  auto nn = nextName(L("#0011"), L("#0011100"));
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(*nn, L("#001110"));
}

TEST(Naming, NextNameSkipsSharedNames) {
  // Every prefix between x and f_nn(x, mu) must share x's name.
  const Label mu = L("#0011100110");
  const Label x = L("#0011");
  const Label nn = *nextName(x, mu);
  for (u32 len = x.length() + 1; len < nn.length(); ++len) {
    EXPECT_EQ(name(mu.prefix(len)), name(x)) << len;
  }
  EXPECT_NE(name(nn), name(x));
}

TEST(Naming, NextNameNoneWhenRunReachesEnd) {
  EXPECT_FALSE(nextName(L("#01"), L("#0111")).has_value());
  EXPECT_FALSE(nextName(L("#00"), L("#0000")).has_value());
}

TEST(Naming, RightNeighborDefinition) {
  // Def. 3: x = p01* -> p1; the rightmost path maps to itself.
  EXPECT_EQ(rightNeighbor(L("#00")), L("#01"));
  EXPECT_EQ(rightNeighbor(L("#0011")), L("#01"));
  EXPECT_EQ(rightNeighbor(L("#0100")), L("#0101"));
  EXPECT_EQ(rightNeighbor(L("#01101")), L("#0111"));
  EXPECT_EQ(rightNeighbor(L("#011")), L("#011"));  // rightmost
  EXPECT_EQ(rightNeighbor(L("#0")), L("#0"));      // root is rightmost
}

TEST(Naming, LeftNeighborDefinition) {
  EXPECT_EQ(leftNeighbor(L("#01")), L("#00"));
  EXPECT_EQ(leftNeighbor(L("#0100")), L("#00"));
  EXPECT_EQ(leftNeighbor(L("#0110")), L("#010"));
  EXPECT_EQ(leftNeighbor(L("#000")), L("#000"));  // leftmost
  EXPECT_EQ(leftNeighbor(L("#0")), L("#0"));
}

TEST(Naming, NeighborsCoverAdjacentIntervals) {
  // rightNeighbor's subtree starts exactly where x's interval ends.
  for (const char* text : {"#00", "#0011", "#0100", "#01010"}) {
    const Label x = L(text);
    const Label rn = rightNeighbor(x);
    EXPECT_DOUBLE_EQ(rn.interval().lo, x.interval().hi) << text;
  }
  for (const char* text : {"#01", "#0110", "#0101", "#01011"}) {
    const Label x = L(text);
    const Label ln = leftNeighbor(x);
    EXPECT_DOUBLE_EQ(ln.interval().hi, x.interval().lo) << text;
  }
}

// --- Theorem 2: split keeps one child's name, names the other to the leaf --

TEST(Naming, Theorem2SplitNames) {
  common::Pcg32 rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    // Random leaf label of random depth.
    const u32 len = 1 + rng.below(20);
    Label leaf = Label::root();
    while (leaf.length() < len) leaf = leaf.child(static_cast<int>(rng.below(2)));
    const Label n0 = name(leaf.child(0));
    const Label n1 = name(leaf.child(1));
    // One child is named name(leaf), the other is named leaf itself.
    if (leaf.lastBit() == 1) {
      EXPECT_EQ(n0, leaf);
      EXPECT_EQ(n1, name(leaf));
    } else {
      EXPECT_EQ(n0, name(leaf));
      EXPECT_EQ(n1, leaf);
    }
  }
}

// --- Theorem 1: f_n is a bijection from leaves to internal nodes ----------

/// Builds a random full binary tree (every internal node has 2 children)
/// and returns (leaves, internals).
std::pair<std::vector<Label>, std::vector<Label>> randomFullTree(
    common::Pcg32& rng, u32 maxDepth, double splitProb) {
  std::vector<Label> leaves;
  std::vector<Label> internals;
  std::vector<Label> frontier{Label::root()};
  while (!frontier.empty()) {
    Label node = frontier.back();
    frontier.pop_back();
    const bool split =
        node.length() < maxDepth && rng.nextDouble() < splitProb;
    if (split) {
      internals.push_back(node);
      frontier.push_back(node.child(0));
      frontier.push_back(node.child(1));
    } else {
      leaves.push_back(node);
    }
  }
  return {leaves, internals};
}

TEST(Naming, Theorem1BijectionOnRandomTrees) {
  common::Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto [leaves, internals] = randomFullTree(rng, 14, 0.6);
    // Omega = the internal labels plus the virtual root "#" (double-root).
    std::set<Label> omega(internals.begin(), internals.end());
    omega.insert(Label());

    std::set<Label> images;
    for (const Label& leaf : leaves) {
      auto [it, fresh] = images.insert(name(leaf));
      EXPECT_TRUE(fresh) << "duplicate name " << it->str();
    }
    // f_n maps Lambda onto Omega exactly (injective + same size + subset).
    EXPECT_EQ(images.size(), leaves.size());
    EXPECT_EQ(images, omega);
  }
}

TEST(Naming, NamedLeafInverse) {
  common::Pcg32 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 len = 1 + rng.below(18);
    Label leaf = Label::root();
    while (leaf.length() < len) leaf = leaf.child(static_cast<int>(rng.below(2)));
    const Label omega = name(leaf);
    EXPECT_EQ(namedLeafAtDepth(omega, leaf.length()), leaf);
  }
}

TEST(Naming, NameRejectsVirtualRoot) {
  EXPECT_THROW(name(Label()), common::InvariantError);
  EXPECT_THROW(rightNeighbor(Label()), common::InvariantError);
  EXPECT_THROW(leftNeighbor(Label()), common::InvariantError);
}

}  // namespace
}  // namespace lht::core
