// Tests for the naming machinery: Definitions 1-3 and Theorems 1-2.
#include "lht/naming.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace lht::core {
namespace {

using common::Label;
using common::u32;

Label L(const char* text) {
  auto l = Label::parse(text);
  EXPECT_TRUE(l.has_value()) << text;
  return *l;
}

TEST(Naming, PaperExamples) {
  // Sec. 3.4: f_n(#01100) = #011, f_n(#01011) = #010.
  EXPECT_EQ(name(L("#01100")), L("#011"));
  EXPECT_EQ(name(L("#01011")), L("#010"));
  // Fig. 4: f_n(#01111) = #0.
  EXPECT_EQ(name(L("#01111")), L("#0"));
  // Def. 1's third case: #00* maps to the virtual root #.
  EXPECT_EQ(name(L("#00")), L("#"));
  EXPECT_EQ(name(L("#0")), L("#"));
  EXPECT_EQ(name(L("#000")), L("#"));
}

TEST(Naming, DhtKeyIsNameString) {
  EXPECT_EQ(dhtKeyFor(L("#01100")), "#011");
  EXPECT_EQ(dhtKeyFor(L("#0")), "#");
}

TEST(Naming, NextNamePaperExample) {
  // Sec. 5: f_nn(#0011, #0011100) = #001110.
  auto nn = nextName(L("#0011"), L("#0011100"));
  ASSERT_TRUE(nn.has_value());
  EXPECT_EQ(*nn, L("#001110"));
}

TEST(Naming, NextNameSkipsSharedNames) {
  // Every prefix between x and f_nn(x, mu) must share x's name.
  const Label mu = L("#0011100110");
  const Label x = L("#0011");
  const Label nn = *nextName(x, mu);
  for (u32 len = x.length() + 1; len < nn.length(); ++len) {
    EXPECT_EQ(name(mu.prefix(len)), name(x)) << len;
  }
  EXPECT_NE(name(nn), name(x));
}

TEST(Naming, NextNameNoneWhenRunReachesEnd) {
  EXPECT_FALSE(nextName(L("#01"), L("#0111")).has_value());
  EXPECT_FALSE(nextName(L("#00"), L("#0000")).has_value());
}

TEST(Naming, RightNeighborDefinition) {
  // Def. 3: x = p01* -> p1; the rightmost path maps to itself.
  EXPECT_EQ(rightNeighbor(L("#00")), L("#01"));
  EXPECT_EQ(rightNeighbor(L("#0011")), L("#01"));
  EXPECT_EQ(rightNeighbor(L("#0100")), L("#0101"));
  EXPECT_EQ(rightNeighbor(L("#01101")), L("#0111"));
  EXPECT_EQ(rightNeighbor(L("#011")), L("#011"));  // rightmost
  EXPECT_EQ(rightNeighbor(L("#0")), L("#0"));      // root is rightmost
}

TEST(Naming, LeftNeighborDefinition) {
  EXPECT_EQ(leftNeighbor(L("#01")), L("#00"));
  EXPECT_EQ(leftNeighbor(L("#0100")), L("#00"));
  EXPECT_EQ(leftNeighbor(L("#0110")), L("#010"));
  EXPECT_EQ(leftNeighbor(L("#000")), L("#000"));  // leftmost
  EXPECT_EQ(leftNeighbor(L("#0")), L("#0"));
}

TEST(Naming, NeighborsCoverAdjacentIntervals) {
  // rightNeighbor's subtree starts exactly where x's interval ends.
  for (const char* text : {"#00", "#0011", "#0100", "#01010"}) {
    const Label x = L(text);
    const Label rn = rightNeighbor(x);
    EXPECT_DOUBLE_EQ(rn.interval().lo, x.interval().hi) << text;
  }
  for (const char* text : {"#01", "#0110", "#0101", "#01011"}) {
    const Label x = L(text);
    const Label ln = leftNeighbor(x);
    EXPECT_DOUBLE_EQ(ln.interval().hi, x.interval().lo) << text;
  }
}

// --- Theorem 2: split keeps one child's name, names the other to the leaf --

TEST(Naming, Theorem2SplitNames) {
  common::Pcg32 rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    // Random leaf label of random depth.
    const u32 len = 1 + rng.below(20);
    Label leaf = Label::root();
    while (leaf.length() < len) leaf = leaf.child(static_cast<int>(rng.below(2)));
    const Label n0 = name(leaf.child(0));
    const Label n1 = name(leaf.child(1));
    // One child is named name(leaf), the other is named leaf itself.
    if (leaf.lastBit() == 1) {
      EXPECT_EQ(n0, leaf);
      EXPECT_EQ(n1, name(leaf));
    } else {
      EXPECT_EQ(n0, name(leaf));
      EXPECT_EQ(n1, leaf);
    }
  }
}

// --- Theorem 1: f_n is a bijection from leaves to internal nodes ----------

/// Builds a random full binary tree (every internal node has 2 children)
/// and returns (leaves, internals).
std::pair<std::vector<Label>, std::vector<Label>> randomFullTree(
    common::Pcg32& rng, u32 maxDepth, double splitProb) {
  std::vector<Label> leaves;
  std::vector<Label> internals;
  std::vector<Label> frontier{Label::root()};
  while (!frontier.empty()) {
    Label node = frontier.back();
    frontier.pop_back();
    const bool split =
        node.length() < maxDepth && rng.nextDouble() < splitProb;
    if (split) {
      internals.push_back(node);
      frontier.push_back(node.child(0));
      frontier.push_back(node.child(1));
    } else {
      leaves.push_back(node);
    }
  }
  return {leaves, internals};
}

TEST(Naming, Theorem1BijectionOnRandomTrees) {
  common::Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto [leaves, internals] = randomFullTree(rng, 14, 0.6);
    // Omega = the internal labels plus the virtual root "#" (double-root).
    std::set<Label> omega(internals.begin(), internals.end());
    omega.insert(Label());

    std::set<Label> images;
    for (const Label& leaf : leaves) {
      auto [it, fresh] = images.insert(name(leaf));
      EXPECT_TRUE(fresh) << "duplicate name " << it->str();
    }
    // f_n maps Lambda onto Omega exactly (injective + same size + subset).
    EXPECT_EQ(images.size(), leaves.size());
    EXPECT_EQ(images, omega);
  }
}

TEST(Naming, NamedLeafInverse) {
  common::Pcg32 rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const u32 len = 1 + rng.below(18);
    Label leaf = Label::root();
    while (leaf.length() < len) leaf = leaf.child(static_cast<int>(rng.below(2)));
    const Label omega = name(leaf);
    EXPECT_EQ(namedLeafAtDepth(omega, leaf.length()), leaf);
  }
}

TEST(Naming, NameRejectsVirtualRoot) {
  EXPECT_THROW(name(Label()), common::InvariantError);
  EXPECT_THROW(rightNeighbor(Label()), common::InvariantError);
  EXPECT_THROW(leftNeighbor(Label()), common::InvariantError);
}

// --- Exhaustive Theorem-1 machinery checks to depth 12 ---------------------
//
// The random-tree tests above sample the label space; these enumerate it:
// every real label (first bit 0, per the "#0" regular root convention) up
// to 12 bits — all 2^12 - 1 of them — through f_n, f_nn, f_rn, and f_ln.

constexpr u32 kExhaustiveDepth = 12;

/// The real label of `len` bits whose bits after the leading 0 are the low
/// len-1 bits of `rest`. Requires rest < 2^(len-1).
Label realLabel(u32 len, common::u64 rest) { return Label::fromBits(rest, len); }

TEST(Naming, Theorem1ExhaustiveBijectionPerDepth) {
  // In the perfect tree whose leaves all sit at depth d, f_n must map the
  // 2^(d-1) leaves one-to-one onto the 2^(d-1) - 1 internal labels (every
  // real label shorter than d) plus the virtual root "#" (the "double
  // root" of Theorem 1).
  for (u32 d = 1; d <= kExhaustiveDepth; ++d) {
    std::set<Label> omega;
    omega.insert(Label());  // virtual root
    for (u32 len = 1; len < d; ++len) {
      for (common::u64 rest = 0; rest < (1ull << (len - 1)); ++rest) {
        omega.insert(realLabel(len, rest));
      }
    }

    std::set<Label> images;
    for (common::u64 rest = 0; rest < (1ull << (d - 1)); ++rest) {
      const Label leaf = realLabel(d, rest);
      const Label omegaLabel = name(leaf);
      EXPECT_TRUE(images.insert(omegaLabel).second)
          << "depth " << d << ": duplicate name " << omegaLabel.str();
      // f_n inverts exactly through namedLeafAtDepth.
      EXPECT_EQ(namedLeafAtDepth(omegaLabel, d), leaf) << leaf.str();
    }
    EXPECT_EQ(images, omega) << "depth " << d;
  }
}

TEST(Naming, ExhaustiveNextNameConsistency) {
  // f_nn(x, mu) is the shortest prefix of mu longer than x whose name
  // differs from x's; every prefix in between shares x's name, and when
  // f_nn is empty no longer prefix of mu changes name at all.
  for (u32 muLen = 2; muLen <= kExhaustiveDepth; ++muLen) {
    for (common::u64 rest = 0; rest < (1ull << (muLen - 1)); ++rest) {
      const Label mu = realLabel(muLen, rest);
      for (u32 xLen = 1; xLen < muLen; ++xLen) {
        const Label x = mu.prefix(xLen);
        const auto nn = nextName(x, mu);
        if (nn) {
          ASSERT_GT(nn->length(), xLen);
          ASSERT_LE(nn->length(), muLen);
          EXPECT_EQ(*nn, mu.prefix(nn->length()));
          EXPECT_NE(name(*nn), name(x)) << mu.str() << " from " << x.str();
          for (u32 len = xLen + 1; len < nn->length(); ++len) {
            EXPECT_EQ(name(mu.prefix(len)), name(x)) << mu.str();
          }
        } else {
          for (u32 len = xLen + 1; len <= muLen; ++len) {
            EXPECT_EQ(name(mu.prefix(len)), name(x))
                << mu.str() << " from " << x.str();
          }
        }
      }
    }
  }
}

TEST(Naming, ExhaustiveNeighborsMatchBruteForceAndIntervals) {
  // Def. 3 brute force: strip trailing 1s (right) / 0s (left), then flip
  // the exposed last bit. If stripping reaches the root edge the label is
  // on the tree's rightmost/leftmost path and maps to itself.
  for (u32 len = 1; len <= kExhaustiveDepth; ++len) {
    for (common::u64 rest = 0; rest < (1ull << (len - 1)); ++rest) {
      const common::u64 bits = rest;  // full bit string, leading 0 implicit
      const Label x = realLabel(len, rest);

      u32 rLen = len;
      while (rLen > 1 && ((bits >> (len - rLen)) & 1u) == 1u) --rLen;
      const bool rightEdge = rLen == 1;  // x was #01...1 (or #0)
      const Label expectedRight =
          rightEdge ? x : realLabel(rLen, (bits >> (len - rLen)) | 1u);
      EXPECT_EQ(rightNeighbor(x), expectedRight) << x.str();
      EXPECT_EQ(x.isRightmostPath(), rightEdge) << x.str();
      if (!rightEdge) {
        EXPECT_DOUBLE_EQ(expectedRight.interval().lo, x.interval().hi)
            << x.str();
      }

      u32 lLen = len;
      while (lLen > 1 && ((bits >> (len - lLen)) & 1u) == 0u) --lLen;
      const bool leftEdge = lLen == 1 && ((bits >> (len - 1)) & 1u) == 0u;
      const Label expectedLeft =
          leftEdge ? x : realLabel(lLen, (bits >> (len - lLen)) & ~1ull);
      EXPECT_EQ(leftNeighbor(x), expectedLeft) << x.str();
      EXPECT_EQ(x.isLeftmostPath(), leftEdge) << x.str();
      if (!leftEdge) {
        EXPECT_DOUBLE_EQ(expectedLeft.interval().hi, x.interval().lo)
            << x.str();
      }
    }
  }
}

}  // namespace
}  // namespace lht::core
