// Concurrent fault campaigns over the client fleet (DESIGN.md §10): for a
// spread of PCG32 seeds, several clients with lossy, latency-charged,
// retrying decorator stacks — and in half the runs a client that crashes
// mid-stream — hammer one shared LHT index concurrently. After the fleet
// joins, the run must satisfy the grow-only-set checker (history level)
// and the atomic-split scan (structure level): a torn split or a lost
// acknowledged insert fails the seed, which is printed via SCOPED_TRACE.
#include "exec/client_fleet.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "exec/linearizability.h"
#include "exec/thread_pool.h"

namespace lht {
namespace {

/// Insert/find-only trace (the vocabulary the grow-only checker covers).
std::vector<workload::Operation> makeInsertFindTrace(size_t ops,
                                                     common::u64 seed) {
  common::Pcg32 rng(seed, 77);
  std::vector<workload::Operation> trace;
  std::vector<double> inserted;
  trace.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    workload::Operation op;
    if (inserted.empty() || rng.nextDouble() < 0.65) {
      op.kind = workload::Operation::Kind::Insert;
      op.key = rng.nextDouble();
      op.payload = "p" + std::to_string(i);
      inserted.push_back(op.key);
    } else {
      op.kind = workload::Operation::Kind::Find;
      op.key = inserted[rng.below(static_cast<common::u32>(inserted.size()))];
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

struct CampaignConfig {
  common::u64 seed = 0;
  bool crashClient = false;
};

void runCampaign(const CampaignConfig& cfg) {
  dht::LocalDht base;
  std::vector<dht::CrashDht*> crashers;

  exec::FleetOptions opts;
  opts.clients = 4;
  opts.chunkSize = 8;
  opts.clientSeedBase = 10'000 + cfg.seed * 100;
  opts.index.thetaSplit = 8;  // small leaves: plenty of concurrent splits
  opts.index.crashConsistentSplits = true;

  exec::ClientFleet fleet(
      [&](size_t i, net::SimClock& clock) {
        exec::ClientStack stack;
        auto latency = std::make_unique<dht::LatencyDht>(
            base, clock,
            dht::LatencyDht::Options{
                .baseMs = 5, .jitterMs = 3, .seed = cfg.seed * 31 + i});
        auto lossy = std::make_unique<dht::LostReplyDht>(
            *latency, /*lossProbability=*/0.15, cfg.seed * 17 + i + 1);
        dht::RetryingDht::Options ro;
        ro.maxAttempts = 10;
        ro.baseBackoffMs = 2;
        ro.seed = cfg.seed * 13 + i + 1;
        ro.clock = &clock;
        auto retry = std::make_unique<dht::RetryingDht>(*lossy, ro);
        stack.top = retry.get();
        if (cfg.crashClient && i == 1) {
          auto crash = std::make_unique<dht::CrashDht>(*retry);
          crashers.push_back(crash.get());
          stack.top = crash.get();
          stack.layers.push_back(std::move(crash));
        }
        stack.layers.insert(stack.layers.begin(), std::move(latency));
        stack.layers.insert(stack.layers.begin() + 1, std::move(lossy));
        stack.layers.insert(stack.layers.begin() + 2, std::move(retry));
        return stack;
      },
      opts);
  // Arm after construction so the bootstrap-attach reads survive; the
  // client then dies mid-workload.
  for (auto* c : crashers) c->armAfterWrites(12);

  const auto trace = makeInsertFindTrace(240, cfg.seed + 1);
  exec::WorkStealingPool pool(4);
  exec::FleetResult result = fleet.run(trace, pool);

  EXPECT_EQ(result.opsTotal, trace.size());
  EXPECT_GT(result.elapsedSimMs, 0u);
  if (cfg.crashClient) EXPECT_GT(result.opsFailed, 0u);

  const auto merged = exec::mergeHistories(result.histories);
  const auto grow = exec::checkGrowOnlySet(merged);
  EXPECT_TRUE(grow.ok) << grow.explanation;

  // Structure check: a surviving client repairs any half-finished
  // structural change the faults left behind, then the leaves must tile
  // [0,1) with no intents and the record set must be bracketed by the
  // histories.
  fleet.clientIndex(0).repairSweep();
  const auto scan = exec::scanAtomicSplits(fleet.clientIndex(0),
                                           exec::definiteKeys(merged),
                                           exec::maybeKeys(merged));
  EXPECT_TRUE(scan.ok) << scan.explanation;
  EXPECT_GE(scan.leaves, 1u);
}

TEST(ClientFleetTest, FaultCampaignsHoldAcrossSeeds) {
  // >= 16 seeded runs; half include a mid-stream client crash.
  for (common::u64 seed = 0; seed < 16; ++seed) {
    SCOPED_TRACE("campaign seed " + std::to_string(seed) +
                 (seed % 2 == 1 ? " (with crash)" : ""));
    runCampaign({.seed = seed, .crashClient = seed % 2 == 1});
  }
}

TEST(ClientFleetTest, MergesPerClientMetricsExactly) {
  dht::LocalDht base;
  exec::FleetOptions opts;
  opts.clients = 3;
  opts.index.crashConsistentSplits = true;
  exec::ClientFleet fleet(
      [&](size_t, net::SimClock&) {
        exec::ClientStack stack;
        stack.top = &base;
        return stack;
      },
      opts);
  const auto trace = makeInsertFindTrace(90, 5);
  exec::WorkStealingPool pool(2);
  exec::FleetResult result = fleet.run(trace, pool);
  size_t historyOps = 0;
  for (const auto& h : result.histories) historyOps += h.size();
  EXPECT_EQ(historyOps, trace.size());
  // Every op charged its per-kind latency histogram exactly once.
  common::u64 observed = 0;
  for (const char* series :
       {"fleet.op.insert.sim_ms", "fleet.op.find.sim_ms"}) {
    if (const auto* h = result.metrics.findHistogram(series)) {
      observed += h->count();
    }
  }
  EXPECT_EQ(observed, trace.size());
  EXPECT_EQ(result.opsFailed, 0u);
}

TEST(ClientFleetTest, OpenLoopArrivalPacesClientClocks) {
  dht::LocalDht base;
  exec::FleetOptions opts;
  opts.clients = 2;
  opts.openLoopInterarrivalMs = 50;
  exec::ClientFleet fleet(
      [&](size_t, net::SimClock&) {
        exec::ClientStack stack;
        stack.top = &base;
        return stack;
      },
      opts);
  const auto trace = makeInsertFindTrace(40, 9);
  exec::WorkStealingPool pool(2);
  exec::FleetResult result = fleet.run(trace, pool);
  // 20 ops per client, due times 0, 50, ..., 950: each clock advanced at
  // least to the last op's due time.
  EXPECT_GE(result.elapsedSimMs, 950u);
}

}  // namespace
}  // namespace lht
