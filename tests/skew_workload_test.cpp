// Property tests for the zipfian + flash-crowd workload family
// (DESIGN.md §13): the rank distribution must actually be zipf-shaped
// (chi-square goodness of fit), flash-crowd shifts must land at exactly
// the configured draw indexes and rotate the hot set by exactly the
// configured jump, and both the generator and makeSkewedTrace must be
// bit-exact deterministic — the skew campaign replays the same trace
// against both arms and relies on it.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "workload/generators.h"
#include "workload/trace.h"

namespace lht::workload {
namespace {

using common::u32;
using common::u64;

// --- Zipf shape --------------------------------------------------------------

TEST(SkewedKeys, RankFrequenciesAreZipfChiSquare) {
  const SkewConfig cfg{/*s=*/0.99, /*universe=*/16, /*flashEvery=*/0,
                       /*flashJump=*/0};
  SkewedKeyGenerator gen(cfg, /*seed=*/42);

  const size_t draws = 40'000;
  std::vector<u64> rankCount(cfg.universe + 1, 0);
  std::map<double, u64> keyCount;
  for (size_t i = 0; i < draws; ++i) {
    const double k = gen.next();
    ASSERT_GE(gen.lastRank(), 1u);
    ASSERT_LE(gen.lastRank(), cfg.universe);
    rankCount[gen.lastRank()] += 1;
    keyCount[k] += 1;
  }

  // Expected counts from the zipf pmf p(r) = r^-s / H_{n,s}.
  double harmonic = 0.0;
  for (u32 r = 1; r <= cfg.universe; ++r)
    harmonic += 1.0 / std::pow(static_cast<double>(r), cfg.s);
  double chi2 = 0.0;
  for (u32 r = 1; r <= cfg.universe; ++r) {
    const double expected = static_cast<double>(draws) /
                            (std::pow(static_cast<double>(r), cfg.s) * harmonic);
    ASSERT_GT(expected, 5.0);  // chi-square validity (all cells well fed)
    const double diff = static_cast<double>(rankCount[r]) - expected;
    chi2 += diff * diff / expected;
  }
  // df = 15; the alpha = 0.001 critical value is 37.70. The generator is
  // deterministic, so this never flakes — the margin covers nothing but
  // the fixed seed's luck.
  EXPECT_LT(chi2, 37.70) << "rank distribution is not zipf(s=0.99)";

  // The rank->key mapping is a bijection under a static hot set: the key
  // observed for rank r is exactly keyOfRank(r), and emitted keys are
  // cell centers (so campaigns can preload precisely the queried keys).
  EXPECT_EQ(keyCount.size(), static_cast<size_t>(cfg.universe));
  for (u32 r = 1; r <= cfg.universe; ++r) {
    if (rankCount[r] == 0) continue;
    const double key = gen.keyOfRank(r);
    ASSERT_TRUE(keyCount.count(key)) << "rank " << r;
    EXPECT_EQ(keyCount[key], rankCount[r]) << "rank " << r;
    const double cell = key * cfg.universe - 0.5;
    EXPECT_DOUBLE_EQ(cell, std::round(cell)) << "key not a cell center";
  }
}

// --- Flash-crowd shift timing ------------------------------------------------

TEST(SkewedKeys, FlashShiftsLandExactlyOnSchedule) {
  const SkewConfig cfg{/*s=*/0.99, /*universe=*/16, /*flashEvery=*/100,
                       /*flashJump=*/3};
  SkewedKeyGenerator gen(cfg, /*seed=*/7);

  // Draw 0..99 are pre-shift.
  const double hot0 = gen.keyOfRank(1);
  for (size_t i = 0; i < 100; ++i) gen.next();
  EXPECT_EQ(gen.shifts(), 0u);
  EXPECT_EQ(gen.keyOfRank(1), hot0);

  // Draw index 100 applies the first shift before emitting.
  gen.next();
  EXPECT_EQ(gen.shifts(), 1u);
  const double hot1 = gen.keyOfRank(1);
  EXPECT_NE(hot1, hot0);
  // The whole mapping rotated by exactly flashJump cells.
  const auto cellOf = [&](double key) {
    return static_cast<u32>(std::llround(key * cfg.universe - 0.5));
  };
  EXPECT_EQ(cellOf(hot1), (cellOf(hot0) + cfg.flashJump) % cfg.universe);

  // Next shift at draw index 200: 99 more draws stay put, the 100th moves.
  for (size_t i = 0; i < 99; ++i) gen.next();
  EXPECT_EQ(gen.shifts(), 1u);
  gen.next();
  EXPECT_EQ(gen.shifts(), 2u);
  EXPECT_EQ(cellOf(gen.keyOfRank(1)), (cellOf(hot0) + 2 * cfg.flashJump) % cfg.universe);
}

TEST(SkewedKeys, DefaultFlashJumpIsOddHalfUniverse) {
  // flashJump = 0 picks universe/2 + 1 — odd, so consecutive hot ranks
  // never map to the same cell twice in a row.
  const SkewConfig cfg{/*s=*/0.99, /*universe=*/16, /*flashEvery=*/10,
                       /*flashJump=*/0};
  SkewedKeyGenerator gen(cfg, /*seed=*/3);
  const double hot0 = gen.keyOfRank(1);
  for (size_t i = 0; i <= 10; ++i) gen.next();
  EXPECT_EQ(gen.shifts(), 1u);
  const auto cellOf = [&](double key) {
    return static_cast<u32>(std::llround(key * cfg.universe - 0.5));
  };
  EXPECT_EQ(cellOf(gen.keyOfRank(1)), (cellOf(hot0) + 9) % cfg.universe);
}

// --- Determinism -------------------------------------------------------------

TEST(SkewedKeys, SameSeedIsBitExactDifferentSeedDiverges) {
  const SkewConfig cfg{/*s=*/0.99, /*universe=*/64, /*flashEvery=*/500,
                       /*flashJump=*/0};
  SkewedKeyGenerator a(cfg, /*seed=*/99);
  SkewedKeyGenerator b(cfg, /*seed=*/99);
  SkewedKeyGenerator c(cfg, /*seed=*/100);
  bool diverged = false;
  for (size_t i = 0; i < 5000; ++i) {
    const double ka = a.next();
    ASSERT_EQ(ka, b.next()) << "draw " << i;  // bit-exact, not approx
    ASSERT_EQ(a.lastRank(), b.lastRank());
    if (ka != c.next()) diverged = true;
  }
  EXPECT_EQ(a.shifts(), b.shifts());
  EXPECT_EQ(a.draws(), b.draws());
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

TEST(SkewedTrace, IsDeterministicAndRespectsMixAndCells) {
  const SkewConfig skew{/*s=*/0.99, /*universe=*/32, /*flashEvery=*/0,
                        /*flashJump=*/0};
  const SkewMix mix{/*find=*/0.9, /*insert=*/0.1};
  const auto trace = makeSkewedTrace(4000, skew, mix, /*seed=*/11);
  const auto again = makeSkewedTrace(4000, skew, mix, /*seed=*/11);
  EXPECT_EQ(trace, again);  // Operation has operator==: bit-exact replay

  const double cellWidth = 1.0 / skew.universe;
  size_t finds = 0, inserts = 0;
  for (const auto& op : trace) {
    if (op.kind == Operation::Kind::Find) {
      finds += 1;
      // Finds target exact cell centers (the preloaded oracle keys).
      const double cell = op.key * skew.universe - 0.5;
      EXPECT_DOUBLE_EQ(cell, std::round(cell));
    } else {
      ASSERT_EQ(op.kind, Operation::Kind::Insert);
      inserts += 1;
      EXPECT_FALSE(op.payload.empty());
      // Inserts jitter inside the drawn cell but never hit its center, so
      // they cannot collide with (or overwrite) the preloaded records.
      const u32 cell = std::min(static_cast<u32>(op.key * skew.universe),
                                skew.universe - 1);
      const double center = (cell + 0.5) * cellWidth;
      EXPECT_NE(op.key, center);
      EXPECT_LE(std::abs(op.key - center), cellWidth * 0.5);
      EXPECT_GE(op.key, 0.0);
      EXPECT_LE(op.key, 1.0);
    }
  }
  EXPECT_EQ(finds + inserts, trace.size());
  // 90/10 mix with 4000 ops: both kinds present in sensible proportion.
  EXPECT_GT(finds, inserts * 4);
  EXPECT_GT(inserts, 100u);
}

}  // namespace
}  // namespace lht::workload
