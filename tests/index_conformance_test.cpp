// OrderedIndex conformance suite: one parameterized battery of contract
// checks run against EVERY index implementation in the library (LHT, both
// PHT modes, DST, RST, LPR) on every key distribution. Whatever their cost
// profiles, all implementations must answer identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "dht/local_dht.h"
#include "dst/dst_index.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "lpr/lpr_index.h"
#include "pht/pht_index.h"
#include "rst/rst_index.h"
#include "workload/generators.h"

namespace lht {
namespace {

struct Fixture {
  std::unique_ptr<dht::LocalDht> dht;
  std::unique_ptr<index::OrderedIndex> index;
};

using Factory = std::function<Fixture()>;

struct ConformanceCase {
  std::string name;
  Factory make;
  workload::Distribution dist;
};

Fixture makeLht() {
  Fixture f;
  f.dht = std::make_unique<dht::LocalDht>();
  f.index = std::make_unique<core::LhtIndex>(
      *f.dht, core::LhtIndex::Options{.thetaSplit = 8, .maxDepth = 26});
  return f;
}

Fixture makePht(pht::PhtIndex::RangeMode mode) {
  Fixture f;
  f.dht = std::make_unique<dht::LocalDht>();
  pht::PhtIndex::Options o;
  o.thetaSplit = 8;
  o.maxDepth = 26;
  o.rangeMode = mode;
  f.index = std::make_unique<pht::PhtIndex>(*f.dht, o);
  return f;
}

Fixture makeDst() {
  Fixture f;
  f.dht = std::make_unique<dht::LocalDht>();
  f.index = std::make_unique<dst::DstIndex>(*f.dht, dst::DstIndex::Options{.depth = 14});
  return f;
}

Fixture makeRst() {
  Fixture f;
  f.dht = std::make_unique<dht::LocalDht>();
  rst::RstIndex::Options o;
  o.thetaSplit = 8;
  o.maxDepth = 26;
  o.peerCount = 16;
  f.index = std::make_unique<rst::RstIndex>(*f.dht, o);
  return f;
}

Fixture makeLpr() {
  Fixture f;  // LPR is its own overlay; no DHT needed.
  f.index = std::make_unique<lpr::LprIndex>(lpr::LprIndex::Options{.peers = 16, .seed = 3});
  return f;
}

class IndexConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(IndexConformance, FullContractAgainstOracle) {
  auto fixture = GetParam().make();
  index::OrderedIndex& idx = *fixture.index;
  index::ReferenceIndex oracle;

  // Mixed mutate phase.
  auto data = workload::makeDataset(GetParam().dist, 700, 42);
  common::Pcg32 rng(43);
  for (size_t i = 0; i < data.size(); ++i) {
    idx.insert(data[i]);
    oracle.insert(data[i]);
    if (i % 5 == 4) {
      const double victim = data[rng.below(static_cast<common::u32>(i + 1))].key;
      EXPECT_EQ(idx.erase(victim).ok, oracle.erase(victim).ok) << i;
    }
  }
  ASSERT_EQ(idx.recordCount(), oracle.recordCount());

  // Exact-match conformance (hits and misses).
  for (int q = 0; q < 100; ++q) {
    const double key =
        q % 2 == 0 ? data[rng.below(700)].key : rng.nextDouble();
    auto mine = idx.find(key);
    auto truth = oracle.find(key);
    ASSERT_EQ(mine.record.has_value(), truth.record.has_value()) << key;
    if (mine.record) EXPECT_DOUBLE_EQ(mine.record->key, truth.record->key);
  }

  // Range conformance across spans, including degenerate and full-space.
  for (int q = 0; q < 60; ++q) {
    double lo = rng.nextDouble();
    double hi = rng.nextDouble();
    if (lo > hi) std::swap(lo, hi);
    auto mine = idx.rangeQuery(lo, hi);
    auto truth = oracle.rangeQuery(lo, hi);
    std::sort(truth.records.begin(), truth.records.end(), index::recordLess);
    ASSERT_EQ(mine.records.size(), truth.records.size())
        << "[" << lo << "," << hi << ")";
    for (size_t i = 0; i < truth.records.size(); ++i) {
      ASSERT_EQ(mine.records[i], truth.records[i]);
    }
  }
  EXPECT_TRUE(idx.rangeQuery(0.5, 0.5).records.empty());
  EXPECT_EQ(idx.rangeQuery(0.0, 1.0).records.size(), oracle.recordCount());

  // Min/max conformance.
  auto mn = idx.minRecord();
  auto mx = idx.maxRecord();
  ASSERT_TRUE(mn.record.has_value());
  ASSERT_TRUE(mx.record.has_value());
  EXPECT_DOUBLE_EQ(mn.record->key, oracle.minRecord().record->key);
  EXPECT_DOUBLE_EQ(mx.record->key, oracle.maxRecord().record->key);

  // Drain everything; the index must empty cleanly.
  auto all = oracle.rangeQuery(0.0, 1.0);
  for (const auto& r : all.records) idx.erase(r.key);
  EXPECT_EQ(idx.recordCount(), 0u);
  EXPECT_FALSE(idx.minRecord().record.has_value());
  EXPECT_TRUE(idx.rangeQuery(0.0, 1.0).records.empty());
}

std::vector<ConformanceCase> allCases() {
  std::vector<ConformanceCase> out;
  const std::pair<std::string, Factory> impls[] = {
      {"lht", makeLht},
      {"pht_seq", [] { return makePht(pht::PhtIndex::RangeMode::Sequential); }},
      {"pht_par", [] { return makePht(pht::PhtIndex::RangeMode::Parallel); }},
      {"dst", makeDst},
      {"rst", makeRst},
      {"lpr", makeLpr},
  };
  for (const auto& [name, make] : impls) {
    for (auto dist : {workload::Distribution::Uniform,
                      workload::Distribution::Gaussian,
                      workload::Distribution::Zipf}) {
      out.push_back({name + "_" + workload::distributionName(dist), make, dist});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllImplementations, IndexConformance,
                         ::testing::ValuesIn(allCases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace lht
