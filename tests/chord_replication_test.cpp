// Tests for Chord replication and ungraceful-failure recovery, plus the
// churn driver — the robustness properties the paper's intro attributes to
// DHT substrates ("DHTs are resistant to node failures").
#include <gtest/gtest.h>

#include <string>

#include "dht/chord.h"
#include "index/reference_index.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "sim/churn.h"
#include "workload/generators.h"

namespace lht::dht {
namespace {

ChordDht makeRing(net::SimNetwork& net, size_t peers, size_t replication) {
  ChordDht::Options o;
  o.initialPeers = peers;
  o.replication = replication;
  o.seed = 3;
  return ChordDht(net, o);
}

TEST(ChordReplication, ReplicasPlacedOnSuccessors) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 16, 3);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  EXPECT_TRUE(d.checkRing());
  EXPECT_TRUE(d.checkReplication());
}

TEST(ChordReplication, SurvivesUngracefulFailure) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 12, 3);
  for (int i = 0; i < 300; ++i) d.put("k" + std::to_string(i), "v" + std::to_string(i));
  common::Pcg32 rng(4);
  for (int round = 0; round < 6; ++round) {
    auto ids = d.nodeIds();
    d.fail(ids[rng.below(static_cast<common::u32>(ids.size()))]);
    ASSERT_TRUE(d.checkRing()) << round;
    ASSERT_TRUE(d.checkReplication()) << round;
    ASSERT_EQ(d.size(), 300u) << round;
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)), "v" + std::to_string(i)) << i;
  }
}

TEST(ChordReplication, WithoutReplicationFailureLosesData) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8, 1);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v");
  auto ids = d.nodeIds();
  // Fail the peer holding the most keys: data must actually disappear.
  common::u64 victim = ids[0];
  for (auto id : ids) {
    if (d.keysOn(id) > d.keysOn(victim)) victim = id;
  }
  ASSERT_GT(d.keysOn(victim), 0u);
  const size_t before = d.size();
  d.fail(victim);
  EXPECT_LT(d.size(), before);
  EXPECT_TRUE(d.checkRing());
}

TEST(ChordReplication, RemoveAlsoDropsReplicas) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8, 3);
  d.put("k", "v");
  EXPECT_TRUE(d.remove("k"));
  EXPECT_TRUE(d.checkReplication());
  // After a failure, the removed key must not resurrect from a stale copy.
  auto ids = d.nodeIds();
  d.fail(ids[2]);
  EXPECT_FALSE(d.get("k").has_value());
}

TEST(ChordReplication, ApplyRefreshesReplicas) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8, 2);
  d.put("k", "v1");
  d.apply("k", [](std::optional<Value>& v) { *v = "v2"; });
  EXPECT_TRUE(d.checkReplication());
  // Kill the owner; the surviving replica must carry the *new* value.
  d.fail(d.ownerOf("k"));
  EXPECT_EQ(d.get("k"), "v2");
}

TEST(ChordReplication, JoinAndLeaveKeepReplicationInvariant) {
  net::SimNetwork net;
  ChordDht d = makeRing(net, 8, 3);
  for (int i = 0; i < 150; ++i) d.put("k" + std::to_string(i), "v");
  d.join("late-a");
  ASSERT_TRUE(d.checkReplication());
  d.join("late-b");
  auto ids = d.nodeIds();
  d.leave(ids[1]);
  ASSERT_TRUE(d.checkReplication());
  EXPECT_EQ(d.size(), 150u);
}

TEST(LhtOnReplicatedChord, IndexSurvivesPeerFailures) {
  net::SimNetwork net;
  ChordDht::Options o;
  o.initialPeers = 16;
  o.replication = 3;
  ChordDht d(net, o);
  core::LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  index::ReferenceIndex oracle;
  common::Pcg32 rng(7);
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 8);
  for (size_t i = 0; i < data.size(); ++i) {
    idx.insert(data[i]);
    oracle.insert(data[i]);
    if (i % 100 == 50) {
      auto ids = d.nodeIds();
      d.fail(ids[rng.below(static_cast<common::u32>(ids.size()))]);
      d.join("replacement-" + std::to_string(i));
    }
  }
  auto mine = idx.rangeQuery(0.0, 1.0);
  EXPECT_EQ(mine.records.size(), oracle.recordCount());
  EXPECT_TRUE(d.checkReplication());
}

}  // namespace
}  // namespace lht::dht

namespace lht::sim {
namespace {

TEST(ChurnDriver, FiresRoughlyOncePerPeriod) {
  net::SimNetwork net;
  dht::ChordDht::Options o;
  o.initialPeers = 8;
  dht::ChordDht d(net, o);
  ChurnConfig cfg;
  cfg.period = 10;
  cfg.seed = 5;
  ChurnDriver driver(d, cfg);
  for (int i = 0; i < 1000; ++i) driver.maybeChurn();
  EXPECT_NEAR(static_cast<double>(driver.events()), 100.0, 35.0);
  EXPECT_TRUE(d.checkRing());
}

TEST(ChurnDriver, RespectsMinPeers) {
  net::SimNetwork net;
  dht::ChordDht::Options o;
  o.initialPeers = 5;
  dht::ChordDht d(net, o);
  ChurnConfig cfg;
  cfg.joinWeight = 0.0;  // leave-only pressure
  cfg.leaveWeight = 1.0;
  cfg.minPeers = 4;
  ChurnDriver driver(d, cfg);
  for (int i = 0; i < 50; ++i) driver.churnOnce();
  EXPECT_GE(d.nodeIds().size(), 4u);
}

TEST(ChurnDriver, FailEventsNeedReplicationToBeLossless) {
  net::SimNetwork net;
  dht::ChordDht::Options o;
  o.initialPeers = 12;
  o.replication = 3;
  dht::ChordDht d(net, o);
  for (int i = 0; i < 200; ++i) d.put("k" + std::to_string(i), "v");
  ChurnConfig cfg;
  cfg.joinWeight = 1.0;
  cfg.leaveWeight = 0.5;
  cfg.failWeight = 1.0;
  cfg.minPeers = 6;
  cfg.seed = 11;
  ChurnDriver driver(d, cfg);
  for (int i = 0; i < 40; ++i) driver.churnOnce();
  EXPECT_GT(driver.fails(), 0u);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_TRUE(d.checkReplication());
}

}  // namespace
}  // namespace lht::sim
