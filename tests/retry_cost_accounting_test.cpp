// Regression for the retry double-counting bug: a retried operation is ONE
// logical DHT-lookup no matter how many attempts it takes. The Retrying
// decorator splits the ledger into three series per op type:
//
//   dht.<op>.logical   caller-visible operations (the cost-model unit)
//   dht.<op>.attempts  issues against the inner DHT (logical + retries)
//   dht.<op>.raw       executions that reached a routed substrate
//
// Lost *replies* execute before failing (raw == attempts); lost *requests*
// fail before executing (raw == logical successes only).
#include <gtest/gtest.h>

#include <string>

#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "obs/obs.h"

namespace lht::dht {
namespace {

using common::u64;

TEST(RetryCostAccounting, LostRepliesDoNotInflateLogicalCount) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  LocalDht store;
  LostReplyDht lossy(store, 0.25, /*seed=*/3);
  RetryingDht retrying(lossy, /*maxAttempts=*/12);

  const size_t kOps = 200;
  for (size_t i = 0; i < kOps; ++i) {
    retrying.put("k" + std::to_string(i), "v");
  }
  for (size_t i = 0; i < kOps; ++i) {
    auto v = retrying.get("k" + std::to_string(i));
    ASSERT_TRUE(v.has_value()) << i;
  }
  ASSERT_GT(retrying.retries(), 0u);

  // Logical counts are pinned to the caller-visible op count.
  EXPECT_EQ(reg.counterValue("dht.put.logical"), kOps);
  EXPECT_EQ(reg.counterValue("dht.get.logical"), kOps);

  // Attempts = logical + retries, per op type.
  EXPECT_EQ(reg.counterValue("dht.put.attempts"),
            kOps + retrying.retriesFor(DhtOp::Put));
  EXPECT_EQ(reg.counterValue("dht.get.attempts"),
            kOps + retrying.retriesFor(DhtOp::Get));

  // A lost reply executes on the substrate before the failure surfaces, so
  // every attempt shows up in the raw (substrate-side) series.
  EXPECT_EQ(reg.counterValue("dht.put.raw"),
            reg.counterValue("dht.put.attempts"));
  EXPECT_EQ(reg.counterValue("dht.get.raw"),
            reg.counterValue("dht.get.attempts"));

  EXPECT_EQ(reg.counterValue("dht.retries"),
            static_cast<u64>(retrying.retries()));
  EXPECT_EQ(reg.counterValue("dht.retries_exhausted"), 0u);
  EXPECT_EQ(reg.counterValue("fault.lost_reply"),
            static_cast<u64>(lossy.injectedLostReplies()));
}

TEST(RetryCostAccounting, LostRequestsNeverReachTheSubstrate) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  LocalDht store;
  FlakyDht flaky(store, 0.25, /*seed=*/9);
  RetryingDht retrying(flaky, /*maxAttempts=*/12);

  const size_t kOps = 200;
  for (size_t i = 0; i < kOps; ++i) {
    retrying.put("k" + std::to_string(i), "v");
  }
  ASSERT_GT(flaky.injectedFailures(), 0u);

  EXPECT_EQ(reg.counterValue("dht.put.logical"), kOps);
  EXPECT_EQ(reg.counterValue("dht.put.attempts"),
            kOps + retrying.retriesFor(DhtOp::Put));
  // A lost request fails before execution: only the successful attempt per
  // op reaches the substrate.
  EXPECT_EQ(reg.counterValue("dht.put.raw"), kOps);
  EXPECT_EQ(reg.counterValue("fault.lost_request"),
            static_cast<u64>(flaky.injectedFailures()));
}

TEST(RetryCostAccounting, BatchRoundsCountLogicalPerEntry) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  LocalDht store;
  LostReplyDht lossy(store, 0.25, /*seed=*/17);
  RetryingDht retrying(lossy, /*maxAttempts=*/12);

  std::vector<Key> keys;
  for (size_t i = 0; i < 64; ++i) {
    const Key k = "k" + std::to_string(i);
    store.storeDirect(k, "v");
    keys.push_back(k);
  }
  auto out = retrying.multiGet(keys);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_TRUE(out[i].ok) << i;

  // One logical get per entry, attempts grow with the re-issued subsets.
  EXPECT_EQ(reg.counterValue("dht.get.logical"), keys.size());
  EXPECT_GT(reg.counterValue("dht.get.attempts"), keys.size());
  EXPECT_EQ(reg.counterValue("dht.get.raw"),
            reg.counterValue("dht.get.attempts"));
}

TEST(RetryCostAccounting, ExhaustionIsCountedSeparately) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  LocalDht store;
  LostReplyDht lossy(store, 1.0, /*seed=*/1);  // every reply lost
  RetryingDht retrying(lossy, /*maxAttempts=*/3);

  EXPECT_THROW(retrying.put("k", "v"), DhtRetriesExhausted);
  EXPECT_EQ(reg.counterValue("dht.put.logical"), 1u);
  EXPECT_EQ(reg.counterValue("dht.put.attempts"), 3u);
  EXPECT_EQ(reg.counterValue("dht.retries_exhausted"), 1u);
}

}  // namespace
}  // namespace lht::dht
