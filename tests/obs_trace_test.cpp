// Tests for the tracing half of the observability layer: span nesting,
// instants, flows, and the Chrome trace-event exporter.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "obs/obs.h"

namespace lht::obs {
namespace {

// Minimal JSON syntax checker: enough grammar to certify that the exported
// trace is loadable (balanced structures, quoted strings, legal literals).
// Not a validator of Chrome's schema — the schema bits are asserted
// separately by substring.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) return false;
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(Trace, SpanLifecycleAndParentage) {
  Tracer t;
  const u64 outer = t.beginSpan("outer", "test", 0);
  const u64 inner = t.beginSpan("inner", "test", outer);
  EXPECT_EQ(t.openSpanCount(), 2u);
  t.endSpan(inner);
  t.endSpan(outer);
  EXPECT_EQ(t.openSpanCount(), 0u);

  ASSERT_EQ(t.spans().size(), 2u);
  const Tracer::Span* in = t.findSpan(inner);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->parent, outer);
  EXPECT_GE(in->endNs, in->startNs);
  EXPECT_GT(in->endNs, 0u);
}

TEST(Trace, SpanScopeThreadsParentAutomatically) {
  Tracer t;
  MetricsRegistry reg;
  u64 outerId = 0;
  u64 innerId = 0;
  {
    ScopedObservability install(&reg, &t);
    SpanScope outer("outer", "test");
    outerId = outer.id();
    EXPECT_TRUE(outer.enabled());
    EXPECT_EQ(currentSpan(), outerId);
    {
      SpanScope inner("inner", "test");
      innerId = inner.id();
      inner.arg("k", static_cast<u64>(7));
    }
    EXPECT_EQ(currentSpan(), outerId);  // inner close restores the parent
  }
  const Tracer::Span* in = t.findSpan(innerId);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->parent, outerId);
  ASSERT_EQ(in->args.size(), 1u);
  EXPECT_EQ(in->args[0].key, "k");
  EXPECT_EQ(in->args[0].value, "7");
}

TEST(Trace, SpanScopeDisabledIsInert) {
  ASSERT_EQ(tracer(), nullptr);
  SpanScope span("nothing", "test");
  EXPECT_FALSE(span.enabled());
  EXPECT_EQ(span.id(), 0u);
  span.arg("k", 1.0);  // must not crash
  flow(1, 2);          // must not crash
  instantEvent("e", "test");
}

TEST(Trace, InstantsAndFlowsRecorded) {
  Tracer t;
  const u64 a = t.beginSpan("a", "test", 0);
  const u64 b = t.beginSpan("b", "test", 0);
  t.instant("tick", "test", a, {arg("why", "because")});
  t.flow(a, b);
  t.endSpan(b);
  t.endSpan(a);
  ASSERT_EQ(t.instants().size(), 1u);
  EXPECT_EQ(t.instants()[0].parent, a);
  ASSERT_EQ(t.flows().size(), 1u);
  EXPECT_EQ(t.flows()[0].fromSpan, a);
  EXPECT_EQ(t.flows()[0].toSpan, b);
}

TEST(Trace, ChromeTraceIsValidJsonWithSchemaMarkers) {
  Tracer t;
  const u64 round = t.beginSpan("dht.multiGet", "dht", 0);
  const u64 entry = t.beginSpan("dht.round.entry", "dht", round);
  t.flow(round, entry);
  t.instant("dht.retry", "dht", entry, {arg("op", "get"), arg("attempt", u64(2))});
  t.addSpanArg(round, arg("entries", u64(3)));
  t.addSpanArg(round, arg("note", "quote\"and\\slash\n"));
  t.endSpan(entry);
  t.endSpan(round);

  std::ostringstream os;
  t.writeChromeTrace(os);
  const std::string json = os.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // complete spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // instant
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);   // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);   // flow finish
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);   // flows bind to
                                                             // enclosing slice
  EXPECT_NE(json.find("dht.multiGet"), std::string::npos);
}

TEST(Trace, CsvExportOneRowPerSpan) {
  Tracer t;
  t.endSpan(t.beginSpan("one", "test", 0));
  t.endSpan(t.beginSpan("two", "test", 0));
  std::ostringstream os;
  t.writeCsv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("one"), std::string::npos);
  EXPECT_NE(csv.find("two"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Tracer t;
  t.endSpan(t.beginSpan("s", "test", 0));
  t.clear();
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.instants().empty());
  EXPECT_TRUE(t.flows().empty());
  EXPECT_EQ(t.openSpanCount(), 0u);
}

}  // namespace
}  // namespace lht::obs
