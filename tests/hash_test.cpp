#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace lht::common::hash {
namespace {

TEST(Hash, Deterministic) {
  EXPECT_EQ(xxhash64("hello"), xxhash64("hello"));
  EXPECT_EQ(xxhash64(u64{42}), xxhash64(u64{42}));
  EXPECT_EQ(fnv1a64("hello"), fnv1a64("hello"));
}

TEST(Hash, SeedChangesOutput) {
  EXPECT_NE(xxhash64("hello", 0), xxhash64("hello", 1));
  EXPECT_NE(xxhash64(u64{42}, 0), xxhash64(u64{42}, 1));
}

TEST(Hash, DistinctInputsRarelyCollide) {
  std::set<u64> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(xxhash64("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, AllLengthPathsCovered) {
  // Exercise the >=32, 8-, 4-, and 1-byte tails of xxhash64.
  std::set<u64> seen;
  std::string s;
  for (int len = 0; len <= 70; ++len) {
    seen.insert(xxhash64(s));
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
  EXPECT_EQ(seen.size(), 71u);
}

TEST(Hash, UniformityOfTopBit) {
  // Roughly half of hashed integers should set the top bit.
  int top = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (xxhash64(static_cast<u64>(i)) >> 63) ++top;
  }
  EXPECT_NEAR(static_cast<double>(top) / n, 0.5, 0.02);
}

TEST(Hash, SplitMix64Avalanches) {
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

}  // namespace
}  // namespace lht::common::hash
