// Batched multi-key rounds end to end: the batched range fan-out, bulk
// load, and repair sweep must return exactly what the sequential paths
// return at exactly the same DHT-lookup cost — only the critical path
// (rounds of simultaneously issued requests) shrinks. Verified against
// sequential twins and against the paper's range bound (<= B + 3 rounds).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dht/chord.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "net/sim_clock.h"
#include "net/sim_network.h"

namespace lht::core {
namespace {

std::vector<index::Record> distinctRecords(size_t n, common::u64 seed) {
  common::Pcg32 rng(seed);
  std::set<double> used;
  std::vector<index::Record> recs;
  while (recs.size() < n) {
    const double k = rng.nextDouble();
    if (k <= 0.0 || k >= 1.0 || !used.insert(k).second) continue;
    recs.push_back(index::Record{k, "p" + std::to_string(recs.size())});
  }
  return recs;
}

LhtIndex::Options opts(bool batched, common::u32 theta = 8) {
  LhtIndex::Options o;
  o.thetaSplit = theta;
  o.batchFanout = batched;
  return o;
}

std::map<std::string, std::vector<index::Record>> shapeOf(LhtIndex& idx) {
  std::map<std::string, std::vector<index::Record>> shape;
  idx.forEachBucket([&](const LeafBucket& b) {
    auto recs = b.records;
    std::sort(recs.begin(), recs.end(), index::recordLess);
    shape[b.label.str()] = std::move(recs);
  });
  return shape;
}

TEST(BatchedRange, MatchesSequentialRecordsAndLookupsExactly) {
  dht::LocalDht seqStore;
  dht::LocalDht batStore;
  LhtIndex seq(seqStore, opts(false));
  LhtIndex bat(batStore, opts(true));
  for (const auto& r : distinctRecords(300, 5)) {
    seq.insert(r);
    bat.insert(r);
  }

  common::Pcg32 rng(9);
  for (int trial = 0; trial < 60; ++trial) {
    const double a = rng.nextDouble();
    const double b = rng.nextDouble();
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    auto rs = seq.rangeQuery(lo, hi);
    auto rb = bat.rangeQuery(lo, hi);
    ASSERT_EQ(rb.records.size(), rs.records.size()) << "[" << lo << "," << hi << ")";
    for (size_t i = 0; i < rs.records.size(); ++i) {
      EXPECT_EQ(rb.records[i], rs.records[i]);
    }
    // Same bandwidth (the paper's cost unit), same critical path: lockstep
    // BFS rounds equal the longest dependent-fetch chain of the recursion.
    EXPECT_EQ(rb.stats.dhtLookups, rs.stats.dhtLookups);
    EXPECT_EQ(rb.stats.parallelSteps, rs.stats.parallelSteps);
    EXPECT_EQ(rb.stats.bucketsTouched, rs.stats.bucketsTouched);
  }
  EXPECT_GT(batStore.stats().batchRounds, 0u);
  EXPECT_EQ(seqStore.stats().batchRounds, 0u);
}

TEST(BatchedRange, RoundsStayWithinPaperBound) {
  dht::LocalDht store;
  LhtIndex idx(store, opts(true, 6));
  for (const auto& r : distinctRecords(400, 13)) idx.insert(r);

  common::Pcg32 rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    const double lo = rng.nextDouble() * 0.8;
    const double hi = lo + rng.nextDouble() * (1.0 - lo);
    if (hi <= lo) continue;
    auto rr = idx.rangeQuery(lo, hi);
    // Theorem/range bound: B buckets answered in at most B + 3 rounds
    // (parallelSteps counts the LCA entry fetch plus the fan-out rounds).
    EXPECT_LE(rr.stats.parallelSteps, rr.stats.bucketsTouched + 3)
        << "[" << lo << "," << hi << ")";
  }
}

TEST(BatchedInsertBatch, BuildsTheIdenticalTree) {
  const auto recs = distinctRecords(250, 17);
  dht::LocalDht seqStore;
  dht::LocalDht batStore;
  LhtIndex seq(seqStore, opts(false, 6));
  LhtIndex bat(batStore, opts(true, 6));

  auto rs = seq.insertBatch(recs);
  auto rb = bat.insertBatch(recs);
  EXPECT_TRUE(rs.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_EQ(rb.splitOrMerged, rs.splitOrMerged);

  const auto shapeSeq = shapeOf(seq);
  const auto shapeBat = shapeOf(bat);
  ASSERT_EQ(shapeBat.size(), shapeSeq.size());
  for (const auto& [label, records] : shapeSeq) {
    auto it = shapeBat.find(label);
    ASSERT_NE(it, shapeBat.end()) << "leaf " << label << " missing in batched tree";
    EXPECT_EQ(it->second, records) << "leaf " << label;
  }
  // All records land either way, findable afterwards.
  for (const auto& r : recs) {
    auto f = bat.find(r.key);
    ASSERT_TRUE(f.record.has_value());
    EXPECT_EQ(f.record->payload, r.payload);
  }
}

TEST(BatchedInsertBatch, ShipsGroupsAndChildrenInTwoRounds) {
  dht::LocalDht store;
  LhtIndex idx(store, opts(true, 6));
  auto result = idx.insertBatch(distinctRecords(120, 23));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.splitOrMerged);  // 120 records at theta 6 must split
  // One multiApply round for the groups, one for the split-off children.
  EXPECT_EQ(store.stats().batchRounds, 2u);
}

TEST(BatchedLatency, SimulatedTimeIsStepsTimesRoundTrip) {
  net::SimClock clock;
  dht::LocalDht store;
  dht::LatencyDht lat(store, clock, {.baseMs = 10, .jitterMs = 0, .seed = 1});
  LhtIndex idx(lat, opts(true));
  for (const auto& r : distinctRecords(200, 41)) idx.insert(r);

  common::Pcg32 rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const double lo = rng.nextDouble() * 0.7;
    const double hi = lo + 0.25;
    const common::u64 before = clock.nowMs();
    auto rr = idx.rangeQuery(lo, hi);
    const common::u64 elapsed = clock.nowMs() - before;
    // Every sequential probe costs one round-trip; every batch round costs
    // ONE round-trip no matter how many keys it carries. parallelSteps is
    // exactly the number of round-trips on the critical path.
    EXPECT_EQ(elapsed, 10u * rr.stats.parallelSteps)
        << "[" << lo << "," << hi << ")";
  }
}

TEST(BatchedRepairSweep, CleanTreeSweepsWithoutRepairs) {
  dht::LocalDht store;
  LhtIndex idx(store, opts(true, 6));
  for (const auto& r : distinctRecords(150, 53)) idx.insert(r);
  EXPECT_EQ(idx.repairSweep(), 0u);
  EXPECT_GT(store.stats().batchRounds, 0u);  // the sweep probed in rounds
}

TEST(BatchedSubstrate, ChordMultiGetChargesCriticalPathOnly) {
  net::SimNetwork net;
  net::SimClock clock;
  net.attachClock(&clock, /*perHopLatencyMs=*/5);
  dht::ChordDht::Options co;
  co.initialPeers = 16;
  co.seed = 3;
  dht::ChordDht chord(net, co);

  chord.put("alpha", "1");
  chord.put("beta", "2");

  // Per-key sequential cost first.
  common::u64 t0 = clock.nowMs();
  ASSERT_EQ(chord.get("alpha"), std::optional<dht::Value>("1"));
  const common::u64 costA = clock.nowMs() - t0;
  t0 = clock.nowMs();
  ASSERT_EQ(chord.get("beta"), std::optional<dht::Value>("2"));
  const common::u64 costB = clock.nowMs() - t0;
  ASSERT_GT(costA + costB, 0u);

  // The batched round returns the same values but advances simulated time
  // by the slowest entry, not the sum.
  t0 = clock.nowMs();
  auto out = chord.multiGet({"alpha", "beta"});
  const common::u64 costRound = clock.nowMs() - t0;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].ok);
  EXPECT_TRUE(out[1].ok);
  EXPECT_EQ(out[0].value, std::optional<dht::Value>("1"));
  EXPECT_EQ(out[1].value, std::optional<dht::Value>("2"));
  EXPECT_EQ(costRound, std::max(costA, costB));
}

}  // namespace
}  // namespace lht::core
