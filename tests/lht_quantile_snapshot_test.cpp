// Tests for quantile queries and LocalDht snapshot persistence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "workload/generators.h"

namespace lht::core {
namespace {

TEST(Quantile, MatchesSortedOracle) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Gaussian, 900, 1);
  for (const auto& r : data) idx.insert(r);
  std::sort(data.begin(), data.end(), index::recordLess);

  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    auto res = idx.quantileQuery(q);
    ASSERT_TRUE(res.record.has_value()) << q;
    const size_t rank = static_cast<size_t>(q * (data.size() - 1));
    EXPECT_DOUBLE_EQ(res.record->key, data[rank].key) << q;
  }
}

TEST(Quantile, CostIsProportionalToNearerEndDistance) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
  auto data = workload::makeDataset(workload::Distribution::Uniform, 4000, 2);
  for (const auto& r : data) idx.insert(r);
  // Extreme quantiles behave like min/max: a single lookup (plus possibly
  // a couple of neighbor hops).
  EXPECT_LE(idx.quantileQuery(0.0).stats.dhtLookups, 2u);
  EXPECT_LE(idx.quantileQuery(1.0).stats.dhtLookups, 2u);
  EXPECT_LE(idx.quantileQuery(0.01).stats.dhtLookups, 20u);
  // The median sweeps ~half the buckets — the documented honest cost.
  auto median = idx.quantileQuery(0.5);
  EXPECT_GT(median.stats.dhtLookups, 50u);
}

TEST(Quantile, EmptyAndSingle) {
  dht::LocalDht d;
  LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 20});
  EXPECT_FALSE(idx.quantileQuery(0.5).record.has_value());
  idx.insert({0.42, "only"});
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(idx.quantileQuery(q).record->key, 0.42);
  }
  EXPECT_THROW(idx.quantileQuery(1.5), common::InvariantError);
}

TEST(Snapshot, IndexSurvivesSaveAndLoad) {
  const std::string path = "/tmp/lht_snapshot_test.bin";
  auto data = workload::makeDataset(workload::Distribution::Uniform, 500, 3);

  dht::LocalDht d;
  {
    LhtIndex idx(d, {.thetaSplit = 8, .maxDepth = 24});
    for (const auto& r : data) idx.insert(r);
    ASSERT_TRUE(d.saveSnapshot(path));
  }

  // A fresh DHT loads the snapshot; a fresh index view over it answers
  // queries identically. (The index constructor seeds an empty root, which
  // the loaded snapshot immediately overwrites.)
  dht::LocalDht d2;
  LhtIndex idx2(d2, {.thetaSplit = 8, .maxDepth = 24});
  ASSERT_TRUE(d2.loadSnapshot(path));
  EXPECT_EQ(d2.size(), d.size());

  auto rr = idx2.rangeQuery(0.0, 1.0);
  EXPECT_EQ(rr.records.size(), data.size());
  auto mn = idx2.minRecord();
  ASSERT_TRUE(mn.record.has_value());
  const double trueMin =
      std::min_element(data.begin(), data.end(), index::recordLess)->key;
  EXPECT_DOUBLE_EQ(mn.record->key, trueMin);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadRejectsGarbageAndKeepsStore) {
  const std::string path = "/tmp/lht_snapshot_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot", f);
    std::fclose(f);
  }
  dht::LocalDht d;
  d.storeDirect("k", "v");
  EXPECT_FALSE(d.loadSnapshot(path));
  EXPECT_EQ(d.get("k"), "v");  // untouched on failure
  std::remove(path.c_str());
  EXPECT_FALSE(d.loadSnapshot(path));  // missing file
}

}  // namespace
}  // namespace lht::core
