// Cost-model conformance: the meters and the observability registry must
// agree with each other and with the closed-form per-split costs
// (Psi_LHT = 1/2 theta i + j, Psi_PHT = theta i + 4 j) across workload
// shapes and feature toggles (batching, caching, crash-consistent splits,
// injected faults).
#include <gtest/gtest.h>

#include <vector>

#include "cost/cost_model.h"
#include "dht/chord.h"
#include "dht/decorators.h"
#include "dht/local_dht.h"
#include "lht/lht_index.h"
#include "net/sim_network.h"
#include "obs/obs.h"
#include "pht/pht_index.h"
#include "workload/generators.h"

namespace lht {
namespace {

using common::u64;

constexpr common::u32 kTheta = 50;

std::vector<index::Record> dataset(size_t n, u64 seed = 11) {
  return workload::makeDataset(workload::Distribution::Uniform, n, seed);
}

/// Registry counters for the three cost categories must mirror the meters
/// exactly — they are written by the same charge helpers.
void expectObsMatchesMeters(const obs::MetricsRegistry& reg,
                            const cost::MeterSet& m) {
  EXPECT_EQ(reg.counterValue("lht.cost.insertion.dht_lookups"),
            m.insertion.dhtLookups);
  EXPECT_EQ(reg.counterValue("lht.cost.insertion.records_moved"),
            m.insertion.recordsMoved);
  EXPECT_EQ(reg.counterValue("lht.cost.maintenance.dht_lookups"),
            m.maintenance.dhtLookups);
  EXPECT_EQ(reg.counterValue("lht.cost.maintenance.records_moved"),
            m.maintenance.recordsMoved);
  EXPECT_EQ(reg.counterValue("lht.cost.maintenance.splits"),
            m.maintenance.splits);
  EXPECT_EQ(reg.counterValue("lht.cost.maintenance.merges"),
            m.maintenance.merges);
  EXPECT_EQ(reg.counterValue("lht.cost.query.dht_lookups"),
            m.query.dhtLookups);
}

// --- Shape 1: split-heavy uniform insert workload --------------------------

TEST(CostConformance, LhtMaintenancePerSplitMatchesPsiLht) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  core::LhtIndex idx(store, opts);
  for (const auto& r : dataset(4000)) idx.insert(r);

  const auto& m = idx.meters();
  ASSERT_GT(m.maintenance.splits, 30u);
  expectObsMatchesMeters(reg, m);

  const cost::CostModel model{1.0, 1.0, kTheta};
  const auto b = model.breakdown(m);
  // Insert-only workload: every maintenance unit was charged by a split, so
  // the measured per-split price is directly comparable to Eq. 1.
  EXPECT_NEAR(b.maintenancePerSplit, model.psiLht(), 0.10 * model.psiLht());
  // Each split costs exactly one DHT-put in the default (non-staged) path.
  EXPECT_EQ(m.maintenance.dhtLookups, m.maintenance.splits);
}

TEST(CostConformance, PhtMaintenancePerSplitMatchesPsiPht) {
  dht::LocalDht store;
  pht::PhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  pht::PhtIndex idx(store, opts);
  for (const auto& r : dataset(4000)) idx.insert(r);

  const auto& m = idx.meters();
  ASSERT_GT(m.maintenance.splits, 30u);
  const cost::CostModel model{1.0, 1.0, kTheta};
  const auto b = model.breakdown(m);
  EXPECT_NEAR(b.maintenancePerSplit, model.psiPht(), 0.10 * model.psiPht());
  // The paper's headline: LHT splits cost well under half of PHT's.
  EXPECT_LT(model.psiLht(), 0.55 * model.psiPht());
}

// --- Feature toggles must not change logical costs -------------------------

TEST(CostConformance, BatchingPreservesMeteredCosts) {
  auto records = dataset(3000, 23);

  cost::MeterSet plain;
  {
    dht::LocalDht store;
    core::LhtIndex::Options opts;
    opts.thetaSplit = kTheta;
    core::LhtIndex idx(store, opts);
    idx.insertBatch(records);
    plain = idx.meters();
  }

  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);
  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  opts.batchFanout = true;
  core::LhtIndex idx(store, opts);
  idx.insertBatch(records);

  // Batching rearranges rounds, not work: category meters are identical.
  EXPECT_EQ(idx.meters().insertion, plain.insertion);
  EXPECT_EQ(idx.meters().maintenance, plain.maintenance);
  expectObsMatchesMeters(reg, idx.meters());
  // ... and the batched side really did use multi-op rounds.
  EXPECT_GT(reg.counterValue("dht.round.count"), 0u);
}

TEST(CostConformance, LeafCachePreservesMaintenanceConformance) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);

  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  opts.useLeafCache = true;
  core::LhtIndex idx(store, opts);
  for (const auto& r : dataset(4000)) idx.insert(r);

  const cost::CostModel model{1.0, 1.0, kTheta};
  const auto b = model.breakdown(idx.meters());
  ASSERT_GT(idx.meters().maintenance.splits, 30u);
  EXPECT_NEAR(b.maintenancePerSplit, model.psiLht(), 0.10 * model.psiLht());
  expectObsMatchesMeters(reg, idx.meters());
}

TEST(CostConformance, CrashConsistentSplitsCostOneExtraLookupPerSplit) {
  auto records = dataset(3000, 31);

  cost::MeterSet plain;
  {
    dht::LocalDht store;
    core::LhtIndex::Options opts;
    opts.thetaSplit = kTheta;
    core::LhtIndex idx(store, opts);
    for (const auto& r : records) idx.insert(r);
    plain = idx.meters();
  }

  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  opts.crashConsistentSplits = true;
  core::LhtIndex idx(store, opts);
  for (const auto& r : records) idx.insert(r);
  const auto& staged = idx.meters();

  EXPECT_EQ(staged.maintenance.splits, plain.maintenance.splits);
  EXPECT_EQ(staged.maintenance.recordsMoved, plain.maintenance.recordsMoved);
  // The staged protocol (materialize child + clear intent) pays 2 lookups
  // per split where the direct path pays 1.
  EXPECT_EQ(plain.maintenance.dhtLookups, plain.maintenance.splits);
  EXPECT_EQ(staged.maintenance.dhtLookups, 2 * staged.maintenance.splits);
}

TEST(CostConformance, InjectedFaultsLeaveLogicalCostsUnchanged) {
  auto records = dataset(2000, 47);

  cost::MeterSet clean;
  {
    dht::LocalDht store;
    core::LhtIndex::Options opts;
    opts.thetaSplit = kTheta;
    core::LhtIndex idx(store, opts);
    for (const auto& r : records) idx.insert(r);
    for (int i = 0; i < 50; ++i) idx.find(records[static_cast<size_t>(i)].key);
    clean = idx.meters();
  }

  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);
  dht::LocalDht store;
  dht::LostReplyDht lossy(store, 0.10, /*seed=*/5);
  dht::RetryingDht retrying(lossy, /*maxAttempts=*/10);
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  core::LhtIndex idx(retrying, opts);
  for (const auto& r : records) idx.insert(r);
  for (int i = 0; i < 50; ++i) idx.find(records[static_cast<size_t>(i)].key);

  ASSERT_GT(lossy.injectedLostReplies(), 0u);
  // Retries are absorbed below the index: logical cost meters match the
  // fault-free run exactly.
  EXPECT_EQ(idx.meters().insertion, clean.insertion);
  EXPECT_EQ(idx.meters().maintenance, clean.maintenance);
  EXPECT_EQ(idx.meters().query, clean.query);
  // The physical ledger shows the extra work instead.
  EXPECT_GT(reg.counterValue("dht.apply.attempts"),
            reg.counterValue("dht.apply.logical"));
  EXPECT_EQ(reg.counterValue("dht.retries"),
            static_cast<u64>(retrying.retries()));
}

// --- Shape 2: range workload ------------------------------------------------

TEST(CostConformance, RangeWorkloadObsMatchesMetersAndBound) {
  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  core::LhtIndex idx(store, opts);
  for (const auto& r : dataset(2000, 7)) idx.insert(r);
  idx.resetMeters();

  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);
  common::Pcg32 rng(99);
  const size_t kQueries = 50;
  size_t buckets = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    auto spec = workload::makeRange(0.05, rng);
    auto res = idx.rangeQuery(spec.lo, spec.hi);
    buckets += res.stats.bucketsTouched;
    // Theorem 4 shape: lookups bounded by buckets visited plus the LCA
    // descent overhead (single-leaf ranges resolve via the binary search
    // instead, so the bound applies from two buckets up).
    if (res.stats.bucketsTouched >= 2) {
      EXPECT_LE(res.stats.dhtLookups, res.stats.bucketsTouched + 3) << q;
    }
  }
  ASSERT_GT(buckets, kQueries);  // ranges really spanned multiple leaves

  EXPECT_EQ(reg.counterValue("lht.cost.query.dht_lookups"),
            idx.meters().query.dhtLookups);
  EXPECT_EQ(reg.counterValue("lht.rangeQuery.count"), kQueries);
  const obs::Histogram* h = reg.findHistogram("lht.rangeQuery.dht_lookups");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), kQueries);
  EXPECT_DOUBLE_EQ(h->sum(),
                   static_cast<double>(idx.meters().query.dhtLookups));
}

// --- Shape 3: min/max workload ----------------------------------------------

TEST(CostConformance, MinMaxCostTheorem3) {
  dht::LocalDht store;
  core::LhtIndex::Options opts;
  opts.thetaSplit = kTheta;
  core::LhtIndex idx(store, opts);
  for (const auto& r : dataset(2000, 13)) idx.insert(r);
  idx.resetMeters();

  obs::MetricsRegistry reg;
  obs::ScopedObservability install(&reg, nullptr);
  // Theorem 3: min is one DHT-lookup ("#"); max probes "#0" (plus a "#"
  // fallback only on a single-leaf tree).
  auto mn = idx.minRecord();
  ASSERT_TRUE(mn.record.has_value());
  EXPECT_EQ(mn.stats.dhtLookups, 1u);
  auto mx = idx.maxRecord();
  ASSERT_TRUE(mx.record.has_value());
  EXPECT_LE(mx.stats.dhtLookups, 2u);
  EXPECT_LT(mn.record->key, mx.record->key);

  EXPECT_EQ(reg.counterValue("lht.cost.query.dht_lookups"),
            idx.meters().query.dhtLookups);
  EXPECT_EQ(idx.meters().query.dhtLookups,
            mn.stats.dhtLookups + mx.stats.dhtLookups);
  EXPECT_EQ(reg.counterValue("lht.minRecord.count"), 1u);
  EXPECT_EQ(reg.counterValue("lht.maxRecord.count"), 1u);
}

// --- Shape: leased replica reads --------------------------------------------

/// Lease-served reads are priced in Psi exactly like primary reads (one
/// query DHT-lookup each) and land in their own "dht.lease.*" ledger —
/// they must never inflate "dht.get.logical", which counts logical
/// primary gets only. Regression for the leased-read protocol's cost
/// accounting: the ON and OFF stacks run the identical read-only phase,
/// so logical(OFF) must equal logical(ON) + lease reads(ON) exactly.
TEST(CostConformance, LeaseReadsChargeLeaseLedgerNotLogical) {
  auto records = dataset(240, 61);
  constexpr size_t kReads = 200;

  struct Side {
    u64 getLogical = 0;
    u64 leaseReads = 0;
    u64 leaseGrants = 0;
    u64 leaseStale = 0;
    u64 queryLookups = 0;
    u64 queryMoved = 0;
  };
  const auto run = [&](bool leased) {
    net::SimNetwork net;
    dht::ChordDht::Options copts;
    copts.initialPeers = 8;
    copts.seed = 5;
    copts.replication = 2;  // fanout 1: rotation alternates replica/primary
    dht::ChordDht chord(net, copts);
    dht::RetryingDht retrying(chord, /*maxAttempts=*/4);
    core::LhtIndex::Options opts;
    opts.thetaSplit = kTheta;
    opts.useLeafCache = true;
    opts.leasedReads = leased;
    core::LhtIndex idx(retrying, opts);

    // Warm phase under a throwaway registry: grow the tree, warm the
    // location cache, and (ON side) grant leases via primary reads.
    {
      obs::MetricsRegistry warm;
      obs::ScopedObservability install(&warm, nullptr);
      for (const auto& r : records) idx.insert(r);
      for (size_t i = 0; i < 32; ++i) idx.find(records[i % records.size()].key);
    }

    // Measured phase: read-only, warm cache, fresh registry. No writes
    // means no epoch bumps, so every replica turn serves successfully.
    obs::MetricsRegistry reg;
    obs::ScopedObservability install(&reg, nullptr);
    const cost::MeterSet before = idx.meters();
    for (size_t i = 0; i < kReads; ++i) {
      auto r = idx.find(records[i % 16].key);  // hot subset
      EXPECT_TRUE(r.record.has_value());
    }
    Side s;
    s.getLogical = reg.counterValue("dht.get.logical");
    s.leaseReads = reg.counterValue("dht.lease.reads");
    s.leaseGrants = reg.counterValue("dht.lease.grants");
    s.leaseStale = reg.counterValue("dht.lease.stale") +
                   reg.counterValue("dht.lease.expired") +
                   reg.counterValue("dht.lease.drops");
    s.queryLookups = idx.meters().query.dhtLookups - before.query.dhtLookups;
    s.queryMoved = idx.meters().query.recordsMoved - before.query.recordsMoved;
    return s;
  };

  const Side on = run(true);
  const Side off = run(false);

  // The protocol actually ran on the ON side and only there.
  ASSERT_GT(on.leaseReads, 0u);
  EXPECT_GT(on.leaseGrants, 0u);
  EXPECT_EQ(on.leaseStale, 0u);  // read-only: nothing invalidates
  EXPECT_EQ(off.leaseReads, 0u);
  EXPECT_EQ(off.leaseGrants, 0u);

  // Ledger split: every read is either a logical primary get or a lease
  // read — lease reads never double-count into dht.get.logical.
  EXPECT_EQ(off.getLogical, static_cast<u64>(kReads));
  EXPECT_EQ(on.getLogical + on.leaseReads, static_cast<u64>(kReads));
  EXPECT_LT(on.getLogical, off.getLogical);

  // Psi pricing: a lease read costs exactly one query DHT-lookup, same
  // as the warm primary read it replaces — identical meters both sides.
  EXPECT_EQ(on.queryLookups, off.queryLookups);
  EXPECT_EQ(on.queryLookups, static_cast<u64>(kReads));
  EXPECT_EQ(on.queryMoved, off.queryMoved);
}

// --- Breakdown arithmetic ---------------------------------------------------

TEST(CostConformance, BreakdownPricesCategories) {
  cost::MeterSet m;
  m.insertion = {10, 5, 0, 0};     // 10 j + 5 i
  m.maintenance = {4, 100, 4, 0};  // 4 j + 100 i over 4 splits
  m.query = {7, 0, 0, 0};
  const cost::CostModel model{2.0, 3.0, kTheta};
  const auto b = model.breakdown(m);
  EXPECT_DOUBLE_EQ(b.insertion, 5 * 2.0 + 10 * 3.0);
  EXPECT_DOUBLE_EQ(b.maintenance, 100 * 2.0 + 4 * 3.0);
  EXPECT_DOUBLE_EQ(b.query, 7 * 3.0);
  EXPECT_DOUBLE_EQ(b.total, b.insertion + b.maintenance + b.query);
  EXPECT_DOUBLE_EQ(b.maintenancePerSplit, b.maintenance / 4.0);
}

}  // namespace
}  // namespace lht
