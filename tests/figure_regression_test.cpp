// Figure regression suite: miniature versions of every paper figure run in
// CI, asserting the *qualitative claims* (who wins, by roughly what factor)
// so a regression in any algorithm is caught without eyeballing bench
// output. The full-size sweeps live in bench/.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "sim/experiment.h"

namespace lht::sim {
namespace {

ExperimentConfig cfg(IndexKind kind, workload::Distribution dist, size_t n,
                     common::u32 theta = 100, common::u64 seed = 1) {
  ExperimentConfig c;
  c.kind = kind;
  c.dist = dist;
  c.dataSize = n;
  c.theta = theta;
  c.maxDepth = 22;
  c.seed = seed;
  return c;
}

TEST(FigureRegression, Fig6AlphaNearClosedForm) {
  Experiment e(cfg(IndexKind::Lht, workload::Distribution::Uniform, 6000, 40));
  e.build();
  EXPECT_NEAR(e.meters().alpha.mean(), 0.5 + 0.5 / 40.0, 0.04);
}

TEST(FigureRegression, Fig7MaintenanceRatios) {
  Experiment lht(cfg(IndexKind::Lht, workload::Distribution::Uniform, 8192));
  Experiment pht(cfg(IndexKind::PhtSequential, workload::Distribution::Uniform, 8192));
  lht.build();
  pht.build();
  const auto& ml = lht.meters().maintenance;
  const auto& mp = pht.meters().maintenance;
  // Fig. 7a: LHT moves ~1/2 the records.
  EXPECT_NEAR(static_cast<double>(ml.recordsMoved) /
                  static_cast<double>(mp.recordsMoved),
              0.5, 0.08);
  // Fig. 7b: LHT pays ~1/4 the lookups.
  EXPECT_NEAR(static_cast<double>(ml.dhtLookups) /
                  static_cast<double>(mp.dhtLookups),
              0.25, 0.06);
}

TEST(FigureRegression, Fig8LookupSaving) {
  // LHT's lookup must beat PHT's on average over a size sweep (individual
  // PHT valley points may win; the paper shows the same).
  double lhtTotal = 0, phtTotal = 0;
  for (size_t n : {2048u, 8192u, 32768u}) {
    Experiment lht(cfg(IndexKind::Lht, workload::Distribution::Gaussian, n));
    Experiment pht(cfg(IndexKind::PhtSequential, workload::Distribution::Gaussian, n));
    lht.build();
    pht.build();
    lhtTotal += lht.measureLookups(300).dhtLookups;
    phtTotal += pht.measureLookups(300).dhtLookups;
  }
  EXPECT_LT(lhtTotal, phtTotal);
  EXPECT_GT(1.0 - lhtTotal / phtTotal, 0.1);  // paper: ~20-30% saving
}

TEST(FigureRegression, Fig9BandwidthOrdering) {
  Experiment lht(cfg(IndexKind::Lht, workload::Distribution::Uniform, 8192));
  Experiment seq(cfg(IndexKind::PhtSequential, workload::Distribution::Uniform, 8192));
  Experiment par(cfg(IndexKind::PhtParallel, workload::Distribution::Uniform, 8192));
  lht.build();
  seq.build();
  par.build();
  const double l = lht.measureRanges(0.1, 60).dhtLookups;
  const double s = seq.measureRanges(0.1, 60).dhtLookups;
  const double p = par.measureRanges(0.1, 60).dhtLookups;
  // PHT(parallel) pays roughly double; LHT <= PHT(sequential).
  EXPECT_LE(l, s + 0.5);
  EXPECT_GT(p, 1.5 * l);
}

TEST(FigureRegression, Fig10LatencyOrdering) {
  for (auto dist : {workload::Distribution::Uniform, workload::Distribution::Gaussian}) {
    Experiment lht(cfg(IndexKind::Lht, dist, 8192));
    Experiment seq(cfg(IndexKind::PhtSequential, dist, 8192));
    Experiment par(cfg(IndexKind::PhtParallel, dist, 8192));
    lht.build();
    seq.build();
    par.build();
    const double l = lht.measureRanges(0.1, 60).parallelSteps;
    const double s = seq.measureRanges(0.1, 60).parallelSteps;
    const double p = par.measureRanges(0.1, 60).parallelSteps;
    // LHT fastest; PHT(sequential) a multiple of both (the gap widens with
    // data size — see bench/fig10 for the order-of-magnitude points).
    EXPECT_LT(l, p);
    EXPECT_GT(s, 2.0 * p);
    // Paper: ~18% below PHT(parallel); assert a conservative 8%+.
    EXPECT_GT(1.0 - l / p, 0.08) << workload::distributionName(dist);
  }
}

TEST(FigureRegression, Theorem3OneLookup) {
  Experiment e(cfg(IndexKind::Lht, workload::Distribution::Uniform, 4096));
  e.build();
  EXPECT_EQ(e.idx().minRecord().stats.dhtLookups, 1u);
  EXPECT_EQ(e.idx().maxRecord().stats.dhtLookups, 1u);
}

TEST(FigureRegression, Eq3SavingWithinBounds) {
  // Price the measured split counters at several gammas; every saving
  // ratio must land in the paper's (0.5, 0.75) band.
  Experiment lht(cfg(IndexKind::Lht, workload::Distribution::Uniform, 8192));
  Experiment pht(cfg(IndexKind::PhtSequential, workload::Distribution::Uniform, 8192));
  lht.build();
  pht.build();
  for (double gamma : {0.2, 2.0, 20.0, 200.0}) {
    cost::CostModel m;
    m.thetaSplit = 100;
    m.j = 1.0;
    m.i = gamma / 100.0;
    const double saving = 1.0 - m.price(lht.meters().maintenance) /
                                    m.price(pht.meters().maintenance);
    EXPECT_GT(saving, 0.45) << gamma;
    EXPECT_LT(saving, 0.78) << gamma;
  }
}

}  // namespace
}  // namespace lht::sim
