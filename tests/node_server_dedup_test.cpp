// NodeServer dedup-cache bounds: the at-most-once guarantee lives in a
// FIFO cache keyed (source host, source port, request id). These tests
// pin down its edges — eviction at capacity re-executes an old
// retransmit, request-id reuse from a different source incarnation is a
// distinct request, and ids are opaque u64s all the way to the top.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "rpc/node_server.h"
#include "rpc/wire.h"

namespace lht::rpc {
namespace {

std::string putBytes(u64 requestId, const std::string& key,
                     const std::string& value) {
  return wire::encodeRequest(requestId, wire::PutReq{key, value});
}

u64 putVersion(const std::string& replyBytes) {
  auto decoded = wire::decodeReply(replyBytes);
  EXPECT_TRUE(std::holds_alternative<wire::Reply>(decoded));
  return std::get<wire::PutRep>(std::get<wire::Reply>(decoded).body).version;
}

TEST(NodeServerDedup, ReplaysCachedBytesVerbatim) {
  NodeServer srv;
  const NetAddr from{1, 1000};
  const std::string first = srv.handle(from, putBytes(7, "k", "v"));
  const std::string replay = srv.handle(from, putBytes(7, "k", "v"));
  EXPECT_EQ(first, replay);  // byte-identical, not re-encoded
  EXPECT_EQ(srv.stats().dedupHits, 1u);
  EXPECT_EQ(srv.stats().requestsHandled, 1u);
  // The mutation ran once: version stayed 1.
  ASSERT_TRUE(srv.primaryRecord("k").has_value());
  EXPECT_EQ(srv.primaryRecord("k")->first, 1u);
}

TEST(NodeServerDedup, EvictionAtCapacityReExecutes) {
  NodeServer::Options opts;
  opts.dedupCapacity = 3;
  NodeServer srv(opts);
  const NetAddr from{1, 1000};

  const std::string r1 = srv.handle(from, putBytes(1, "k", "a"));
  EXPECT_EQ(putVersion(r1), 1u);
  // Three fresh ids fill the cache past capacity; id 1 is the FIFO head
  // and falls out.
  (void)srv.handle(from, putBytes(2, "x2", "b"));
  (void)srv.handle(from, putBytes(3, "x3", "c"));
  (void)srv.handle(from, putBytes(4, "x4", "d"));

  // Id 4 is still cached: replayed, no re-execution.
  const std::string r4 = srv.handle(from, putBytes(4, "x4", "d"));
  EXPECT_EQ(srv.stats().dedupHits, 1u);
  EXPECT_EQ(putVersion(r4), 1u);

  // Id 1 was evicted: the retransmit re-executes (the documented limit of
  // a bounded cache — visible here as the version bumping to 2).
  const std::string r1again = srv.handle(from, putBytes(1, "k", "a"));
  EXPECT_EQ(srv.stats().dedupHits, 1u);  // not a cache hit
  EXPECT_EQ(putVersion(r1again), 2u);
  EXPECT_EQ(srv.primaryRecord("k")->first, 2u);
}

TEST(NodeServerDedup, SameIdNewSourceIncarnationIsDistinct) {
  // A restarted client re-randomizes its id space, but the cache must be
  // safe even against an outright collision: the source (host, port) is
  // part of the key, so a different incarnation (different ephemeral
  // port) executes fresh instead of stealing the predecessor's reply.
  NodeServer srv;
  const NetAddr gen1{1, 1000};
  const NetAddr gen2{1, 2000};  // same host, new ephemeral port

  const std::string r1 = srv.handle(gen1, putBytes(42, "k", "first"));
  EXPECT_EQ(putVersion(r1), 1u);
  const std::string r2 = srv.handle(gen2, putBytes(42, "k", "second"));
  EXPECT_EQ(putVersion(r2), 2u);  // executed, not replayed
  EXPECT_EQ(srv.stats().dedupHits, 0u);
  EXPECT_EQ(srv.primaryValue("k").value(), "second");

  // Each incarnation's retransmit still replays its OWN reply: gen1 sees
  // version 1 even though the store has moved on.
  EXPECT_EQ(putVersion(srv.handle(gen1, putBytes(42, "k", "first"))), 1u);
  EXPECT_EQ(putVersion(srv.handle(gen2, putBytes(42, "k", "second"))), 2u);
  EXPECT_EQ(srv.stats().dedupHits, 2u);
  // A different host with the same port+id is yet another key.
  const NetAddr other{2, 1000};
  EXPECT_EQ(putVersion(srv.handle(other, putBytes(42, "k", "third"))), 3u);
}

TEST(NodeServerDedup, IdSpaceEdgesAreOpaque) {
  // Ids at the wraparound edges of u64 are nothing special: cached and
  // replayed like any other, and 0 does not collide with ~0.
  NodeServer srv;
  const NetAddr from{1, 1000};
  const u64 top = ~u64{0};
  EXPECT_EQ(putVersion(srv.handle(from, putBytes(top, "k", "v"))), 1u);
  EXPECT_EQ(putVersion(srv.handle(from, putBytes(0, "k", "v"))), 2u);
  // Both replay from cache independently.
  EXPECT_EQ(putVersion(srv.handle(from, putBytes(top, "k", "v"))), 1u);
  EXPECT_EQ(putVersion(srv.handle(from, putBytes(0, "k", "v"))), 2u);
  EXPECT_EQ(srv.stats().dedupHits, 2u);
}

TEST(NodeServerDedup, BadRequestsDoNotPolluteTheCache) {
  // Undecodable traffic is answered (or dropped) before the dedup lookup;
  // a later well-formed request under the same id must execute.
  NodeServer srv;
  const NetAddr from{1, 1000};
  std::string broken = putBytes(9, "k", "v");
  broken.resize(broken.size() - 2);  // truncate the body
  const std::string errReply = srv.handle(from, broken);
  EXPECT_FALSE(errReply.empty());  // header parsed: BadRequest, not silence
  EXPECT_EQ(srv.stats().badRequests, 1u);

  const std::string ok = srv.handle(from, putBytes(9, "k", "v"));
  EXPECT_EQ(putVersion(ok), 1u);
  EXPECT_EQ(srv.stats().dedupHits, 0u);
  EXPECT_TRUE(srv.primaryRecord("k").has_value());
}

}  // namespace
}  // namespace lht::rpc
