#include "dst/dst_index.h"

#include <algorithm>

#include "common/codec.h"
#include "common/types.h"

namespace lht::dst {

using common::checkInvariant;
using common::Interval;
using common::Label;
using common::u32;

namespace {

std::string serializeRecords(const std::vector<index::Record>& records) {
  common::Encoder enc;
  enc.putU32(static_cast<common::u32>(records.size()));
  for (const auto& r : records) {
    enc.putDouble(r.key);
    enc.putString(r.payload);
  }
  return std::move(enc).take();
}

std::vector<index::Record> deserializeRecords(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto count = dec.getU32();
  checkInvariant(count.has_value(), "DstIndex: corrupt node value");
  std::vector<index::Record> out;
  out.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto key = dec.getDouble();
    auto payload = dec.getString();
    checkInvariant(key && payload, "DstIndex: corrupt record");
    out.push_back(index::Record{*key, std::move(*payload)});
  }
  return out;
}

}  // namespace

DstIndex::DstIndex(dht::Dht& dht, Options options) : dht_(dht), opts_(options) {
  checkInvariant(opts_.depth >= 2 && opts_.depth <= Label::kMaxBits,
                 "DstIndex: bad depth");
}

index::UpdateResult DstIndex::insert(const index::Record& record) {
  checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                 "DstIndex::insert: key outside [0,1]");
  index::UpdateResult result;
  result.ok = true;
  const Label mu = Label::fromKey(record.key, opts_.depth);
  // Replicate the record on every node of the leaf cell's ancestor path.
  for (u32 len = 1; len <= opts_.depth; ++len) {
    dht_.apply(mu.prefix(len).str(), [&](std::optional<dht::Value>& v) {
      auto recs = v ? deserializeRecords(*v) : std::vector<index::Record>{};
      recs.push_back(record);
      v = serializeRecords(recs);
    });
    meters_.insertion.dhtLookups += 1;
    meters_.insertion.recordsMoved += 1;
  }
  result.stats.dhtLookups = opts_.depth;
  result.stats.parallelSteps = 1;  // the replica puts go out in parallel
  recordCount_ += 1;
  return result;
}

index::UpdateResult DstIndex::erase(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "DstIndex::erase: bad key");
  index::UpdateResult result;
  const Label mu = Label::fromKey(key, opts_.depth);
  size_t removed = 0;
  for (u32 len = 1; len <= opts_.depth; ++len) {
    dht_.apply(mu.prefix(len).str(), [&](std::optional<dht::Value>& v) {
      if (!v) return;
      auto recs = deserializeRecords(*v);
      auto it = std::remove_if(recs.begin(), recs.end(),
                               [&](const index::Record& r) { return r.key == key; });
      removed = static_cast<size_t>(recs.end() - it);  // same count per level
      recs.erase(it, recs.end());
      v = serializeRecords(recs);
    });
    meters_.insertion.dhtLookups += 1;
  }
  result.stats.dhtLookups = opts_.depth;
  result.stats.parallelSteps = 1;
  recordCount_ -= removed;
  result.ok = removed > 0;
  return result;
}

std::vector<index::Record> DstIndex::fetchRecords(const Label& node,
                                                  cost::OpStats& st) {
  st.dhtLookups += 1;
  auto v = dht_.get(node.str());
  if (!v) return {};
  return deserializeRecords(*v);
}

index::FindResult DstIndex::find(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "DstIndex::find: bad key");
  index::FindResult result;
  // One lookup of the deepest cell suffices: it replicates everything above.
  const Label cell = Label::fromKey(key, opts_.depth);
  auto recs = fetchRecords(cell, result.stats);
  for (const auto& r : recs) {
    if (r.key == key) {
      result.record = r;
      break;
    }
  }
  result.stats.parallelSteps = 1;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

void DstIndex::collectSegments(const Label& node, const Interval& range,
                               std::vector<Label>& out) const {
  const Interval iv = node.interval();
  if (!iv.overlaps(range)) return;
  if (iv.subsetOf(range) || node.length() == opts_.depth) {
    out.push_back(node);
    return;
  }
  collectSegments(node.child(0), range, out);
  collectSegments(node.child(1), range, out);
}

std::vector<Label> DstIndex::canonicalSegments(double lo, double hi) const {
  std::vector<Label> out;
  if (hi <= lo) return out;
  collectSegments(Label::root(), Interval{lo, hi}, out);
  return out;
}

index::RangeResult DstIndex::rangeQuery(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "DstIndex::rangeQuery: bad bounds");
  const Interval range{lo, hi};
  // The canonical cover is computed locally (intervals are globally known),
  // so all segment fetches go out in a single parallel step.
  for (const Label& seg : canonicalSegments(lo, hi)) {
    auto recs = fetchRecords(seg, result.stats);
    result.stats.bucketsTouched += 1;
    for (auto& r : recs) {
      if (range.contains(r.key)) result.records.push_back(std::move(r));
    }
  }
  result.stats.parallelSteps = 1;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

index::FindResult DstIndex::minRecord() {
  index::FindResult result;
  // The root replicates every record: one lookup, then a local scan.
  auto recs = fetchRecords(Label::root(), result.stats);
  const index::Record* best = nullptr;
  for (const auto& r : recs) {
    if (best == nullptr || r.key < best->key) best = &r;
  }
  if (best != nullptr) result.record = *best;
  result.stats.parallelSteps = 1;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult DstIndex::maxRecord() {
  index::FindResult result;
  auto recs = fetchRecords(Label::root(), result.stats);
  const index::Record* best = nullptr;
  for (const auto& r : recs) {
    if (best == nullptr || r.key > best->key) best = &r;
  }
  if (best != nullptr) result.record = *best;
  result.stats.parallelSteps = 1;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

}  // namespace lht::dst
