// DST — Distributed Segment Tree baseline (Zheng et al. [24]; paper Sec. 2).
//
// A static segment tree over the key space: every record is replicated on
// *all* of its leaf cell's ancestors, each tree node living in the DHT under
// its label. Range queries decompose locally into O(log) canonical disjoint
// segments and fetch them in one parallel step — excellent query latency —
// but every insert pays D DHT-lookups and D record copies, which is exactly
// the maintenance-inefficiency the paper contrasts LHT against. Included as
// an ablation baseline (bench/ablation_dst).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/label.h"
#include "dht/dht.h"
#include "index/ordered_index.h"

namespace lht::dst {

class DstIndex final : public index::OrderedIndex {
 public:
  struct Options {
    common::u32 depth = 12;  ///< levels of the static tree (leaf cells = 2^(depth-1))
  };

  DstIndex(dht::Dht& dht, Options options);

  index::UpdateResult insert(const index::Record& record) override;
  index::UpdateResult erase(double key) override;
  index::FindResult find(double key) override;
  index::RangeResult rangeQuery(double lo, double hi) override;
  index::FindResult minRecord() override;
  index::FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return recordCount_; }

  /// The canonical disjoint segment cover of [lo, hi) (exposed for tests).
  [[nodiscard]] std::vector<common::Label> canonicalSegments(double lo,
                                                             double hi) const;

 private:
  void collectSegments(const common::Label& node, const common::Interval& range,
                       std::vector<common::Label>& out) const;
  std::vector<index::Record> fetchRecords(const common::Label& node,
                                          cost::OpStats& st);

  dht::Dht& dht_;
  Options opts_;
  size_t recordCount_ = 0;
};

}  // namespace lht::dst
