// LHT — the Low-maintenance Hash Tree index (the paper's core contribution).
//
// The index runs entirely on top of a generic DHT's put/get/apply interface.
// State in the DHT: one entry per leaf bucket, keyed by name(label) (the
// naming function f_n). The empty index is a single leaf "#0" covering
// [0, 1), stored under "#".
//
// Operations (paper sections in brackets):
//  * lookup  [5, Alg. 2]  — binary search over candidate prefix names,
//    ~log(D/2) DHT-lookups; a linear-descent fallback is exposed for the
//    ablation bench.
//  * insert  [5]          — lookup + one DHT apply shipping the record; at
//    most one split per insert (Alg. 1): the split rewrites the bucket
//    locally and pushes exactly one remote child with one DHT-put.
//  * erase               — lookup + apply; may merge the leaf with its
//    sibling (the dual of a split: one child already has the parent's name).
//  * rangeQuery [6, Alg. 3/4] — LCA jump, then recursive parallel
//    forwarding along locally inferred branch nodes; <= B + 3 DHT-lookups
//    for B result buckets.
//  * min/max [7, Thm. 3]  — a single DHT-lookup of "#" resp. "#0".
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/label.h"
#include "common/random.h"
#include "dht/dht.h"
#include "index/ordered_index.h"
#include "lht/bucket.h"
#include "lht/leaf_cache.h"
#include "net/sim_clock.h"

namespace lht::core {

class LhtIndex final : public index::OrderedIndex {
 public:
  struct Options {
    /// Leaf split threshold theta_split: a leaf splits when its effective
    /// size (records, plus one slot for the label when countLabelSlot)
    /// reaches this value.
    common::u32 thetaSplit = 100;

    /// D: the a-priori maximum tree depth the binary-search lookup assumes
    /// (paper Sec. 5). Must be >= the depth the data actually produces.
    common::u32 maxDepth = 20;

    /// Paper Sec. 9.2 accounting: the leaf label occupies one record slot,
    /// which makes the measured average alpha = 1/2 + 1/(2 theta).
    bool countLabelSlot = true;

    /// Merge two sibling leaves when their combined effective size drops
    /// below this. 0 selects the paper's rule (< thetaSplit). Set
    /// enableMerge=false to disable structural shrinking entirely.
    common::u32 mergeThreshold = 0;
    bool enableMerge = true;

    /// Client-side optimization (off by default to keep the paper's
    /// figures faithful): probe the depth of the last successful lookup
    /// first. Tree depths concentrate around log(n/theta), so the first
    /// probe usually hits and a lookup costs ~1 DHT-lookup instead of
    /// ~log2(D/2). Falls back to the normal binary search on a miss; pure
    /// client state, nothing extra is maintained in the DHT.
    bool useDepthHint = false;

    /// The paper restricts each insertion to at most one split (Sec. 5),
    /// deferring residual overflow to later inserts. Enabling this lets an
    /// insert split recursively until no bucket is saturated — an ablation
    /// knob (bench/ablation_cascading) trading bounded per-insert cost for
    /// transient overflow. Alpha statistics are only recorded for
    /// single-split inserts, where the paper defines them.
    bool allowCascadingSplits = false;

    /// Crash-consistent structural changes (DESIGN.md "Failure model &
    /// recovery"). When enabled, splits and merges run as explicit state
    /// machines whose intermediate states are always recoverable: the
    /// records being moved are staged in an intent marker inside the
    /// bucket that keeps the parent's DHT key, so a client crash or lost
    /// reply at any step leaves enough state in the DHT for any later
    /// reader to finish the job (lookup-triggered repair). Costs one
    /// extra DHT-lookup per split (3 instead of 2 writes) and two extra
    /// per merge. Off by default to keep the paper's cost figures exact.
    bool crashConsistentSplits = false;

    /// Client-side leaf-location cache (off by default): remembers which
    /// leaf label last covered each key interval, validated by the fetched
    /// bucket itself, so a repeat lookup costs ~1 DHT-lookup instead of
    /// Algorithm 2's ~log2(D/2). Subsumes useDepthHint (the cache is
    /// consulted first; the hint still steers the fallback search).
    /// Stale entries are detected and invalidated, never trusted.
    bool useLeafCache = false;
    size_t leafCacheCapacity = 4096;

    /// Lease-based replicated reads (off by default; needs useLeafCache
    /// and a substrate with replicaFanout() >= 1). Every clean leaf
    /// observed by a primary read becomes a read lease: for leaseTtlMs on
    /// leaseClock, lookups covered by the cached entry rotate over the
    /// leaf's replica holders and its primary owner, and a replica bucket
    /// is served only when its epoch EQUALS the leased epoch. Any insert,
    /// split, or merge bumps the leaf epoch, so a lagging replica can
    /// never satisfy a lease — an epoch mismatch revokes the lease and
    /// the read re-anchors at the primary, which re-grants at the new
    /// epoch. Replica-read failures (dead holder) revoke the lease the
    /// same way dead-owner reads drop cached locations. Lease reads are
    /// priced like any other DHT-lookup in the Ψ meters but are surfaced
    /// under dht.lease.* — they never touch the dht.<op>.logical ledger
    /// (they route through getReplica, which the retry layer does not
    /// own; same rule as PR6 rescue reads).
    bool leasedReads = false;
    common::u64 leaseTtlMs = 200;
    /// Time source for lease expiry. nullptr pins "now" at 0: leases then
    /// never expire by time and only epoch validation bounds staleness
    /// (fine for single-clock tests; fleets wire the per-client clock).
    net::SimClock* leaseClock = nullptr;

    /// Access-frequency-adaptive splits (off by default): the client
    /// counts lookups per leaf (halved every 4096 to track the recent
    /// window); a leaf that has absorbed >= hotLeafReads of them is *hot*
    /// and splits at max(2, thetaSplit / hotSplitDivisor) instead of
    /// thetaSplit, so persistently hot leaves fragment earlier and their
    /// load spreads across more owners. Alpha statistics are not recorded
    /// for early (hot-triggered) splits — the paper defines them at
    /// theta-triggered splits only.
    bool adaptiveSplits = false;
    common::u32 hotLeafReads = 64;
    common::u32 hotSplitDivisor = 4;

    /// Issue range fan-out, bulk-load applies, and repair probes as
    /// multiGet/multiApply batch rounds (off by default). DHT-lookup
    /// counts are unchanged; the critical path drops to one round-trip
    /// per dependency level — the paper's parallel-forwarding model made
    /// operational.
    bool batchFanout = false;

    /// Cache decoded buckets client-side keyed by DHT key, revalidated by
    /// raw-bytes comparison (off by default). Removes the
    /// deserialize-per-read wall-clock cost; mutators copy-on-write.
    bool cacheDecodedBuckets = false;

    /// Reattach a client to an index that already lives in the DHT
    /// instead of bootstrapping a fresh root leaf. recordCount() is
    /// client-local and restarts at zero.
    bool attachExisting = false;

    /// Stream for this client's idempotence tokens. Two clients (or a
    /// client and its post-crash successor) must use different seeds so
    /// their tokens never collide inside a bucket's applied-op window.
    common::u64 clientSeed = 1;
  };

  /// The index takes a reference to its substrate; the caller owns the DHT.
  /// Seeds the root leaf via an unaccounted bootstrap write.
  LhtIndex(dht::Dht& dht, Options options);

  // OrderedIndex ------------------------------------------------------------
  index::UpdateResult insert(const index::Record& record) override;
  index::UpdateResult erase(double key) override;
  index::FindResult find(double key) override;
  index::RangeResult rangeQuery(double lo, double hi) override;
  index::FindResult minRecord() override;
  index::FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return recordCount_; }

  // Extensions beyond the paper's operation set -----------------------------

  /// Bulk loading: inserts a batch in one pass. Records are sorted and
  /// grouped by target leaf, so each touched leaf costs one lookup + one
  /// apply regardless of how many records land in it; saturated leaves
  /// split *recursively* on the storing peer (each produced remote bucket
  /// still costs exactly one DHT-put, preserving the Theorem 2 economy).
  /// Far cheaper than record-at-a-time insertion for large batches.
  index::UpdateResult insertBatch(std::vector<index::Record> records);

  /// The record with the smallest key >= `key` (nullopt if none). Costs a
  /// lookup plus one neighbor hop per empty leaf crossed.
  index::FindResult successorQuery(double key);

  /// The record with the largest key < `key` (nullopt if none).
  index::FindResult predecessorQuery(double key);

  /// The k smallest / largest records, ascending by key (fewer when the
  /// index holds fewer). Generalizes Theorem 3: the sweep starts at the
  /// one-lookup min/max bucket and only crosses as many neighbor subtrees
  /// as the answer spans.
  index::RangeResult topMin(size_t k);
  index::RangeResult topMax(size_t k);

  /// The record at rank floor(q * (n-1)) by key order (q in [0, 1]): an
  /// exact quantile. LHT keeps no rank information on internal nodes (they
  /// are never materialized), so this honestly costs one DHT-lookup per
  /// bucket crossed from the nearer end — O(min(q, 1-q) * B). nullopt on an
  /// empty index.
  index::FindResult quantileQuery(double q);

  // LHT-specific observability ----------------------------------------------
  struct LookupOutcome {
    std::optional<LeafBucket> bucket;  ///< the leaf covering the key
    std::string dhtKey;                ///< the name it is stored under
    cost::OpStats stats;
  };

  /// Algorithm 2: binary search on candidate prefix names.
  LookupOutcome lookup(double key);

  /// Ablation baseline: tries every distinct candidate name from the root
  /// down (O(D/2) DHT-lookups, always correct). Not used by the protocol.
  LookupOutcome lookupLinear(double key);

  /// Visits every leaf bucket left-to-right by chaining neighbor lookups
  /// (min bucket first). Intended for tests and diagnostics; does not
  /// touch the meters.
  void forEachBucket(const std::function<void(const LeafBucket&)>& fn);

  // Resilience --------------------------------------------------------------

  /// Repair accounting (see repairSweep / the intent machinery).
  struct RepairStats {
    common::u64 splitRepairs = 0;   ///< half-finished splits completed
    common::u64 mergeRepairs = 0;   ///< half-finished merges completed
    common::u64 holeProbes = 0;     ///< linear probes run for missing leaves
  };
  [[nodiscard]] const RepairStats& repairStats() const { return repairStats_; }

  /// Walks the whole key space with ordinary lookups, completing every
  /// half-finished split/merge encountered (lookup-triggered repair is
  /// also performed opportunistically by every normal operation; this
  /// sweep guarantees even regions holding no records converge). Returns
  /// the number of repairs completed.
  size_t repairSweep();

  /// Bounded, resumable slice of repairSweep for an anti-entropy scheduler:
  /// walks at most `maxBuckets` leaves forward from `cursor` (a key in
  /// [0, 1]), completing any half-finished split/merge encountered, and
  /// advances `cursor` to the upper bound of the last leaf visited. The
  /// sweep is complete once `cursor` reaches 1.0; restart it at 0.0.
  /// Returns the number of repairs completed in this slice.
  size_t repairSweepStep(double& cursor, size_t maxBuckets);

  [[nodiscard]] const Options& options() const { return opts_; }

  /// Client-side cache observability (tests, benches).
  [[nodiscard]] LeafCache& leafCache() { return leafCache_; }
  [[nodiscard]] const BucketStore& bucketStore() const { return store_; }

 private:
  using BucketRef = BucketStore::Ref;

  /// Internal lookup currency: a shared immutable view of the found
  /// bucket (no copy per probe). The public LookupOutcome copies once at
  /// the API boundary.
  struct LookupRef {
    BucketRef bucket;
    std::string dhtKey;
    cost::OpStats stats;
  };
  static LookupOutcome toOutcome(LookupRef&& ref);

  /// One accounted DHT get, decoding through the bucket store and noting
  /// observed clean leaves in the location cache.
  BucketRef getBucketRef(const std::string& key, cost::OpStats& st);

  /// A read-modify-write body over the *decoded* bucket. Returns whether
  /// it changed the bucket; false leaves the stored bytes untouched.
  /// Creation: engage the optional. Deletion: reset() it.
  using BucketMutator = std::function<bool(std::optional<LeafBucket>&)>;

  /// Wraps a BucketMutator into a dht::Mutator that decodes via the
  /// bucket store (copy-on-write), re-serializes on change, and keeps the
  /// store coherent. The single decode/serialize seam of the index.
  dht::Mutator makeBucketMutator(std::string key, BucketMutator fn);

  /// dht_.apply through makeBucketMutator. Returns whether the key
  /// existed before the call.
  bool applyBucket(const std::string& key, const BucketMutator& fn);

  /// Records an observed clean leaf in the location cache; with
  /// leasedReads this also grants/renews a read lease on the entry.
  void noteLeaf(const LeafBucket& bucket);
  /// Invalidates location-cache entries overlapping `iv` (after a
  /// split/merge whose old leaves covered it).
  void dropCached(const common::Interval& iv);

  /// "Now" on the lease clock (0 without one — leases never time out).
  [[nodiscard]] common::u64 leaseNowMs() const;
  /// Whether `e` authorizes a replica-served read right now. Expired
  /// leases are revoked (and counted) as a side effect.
  bool leaseUsable(const LeafCache::Entry& e);
  /// One turn of the lease protocol for the cached leaf stored under
  /// `nm`: rotates over the replica holders and the primary; on a replica
  /// turn issues one accounted getReplica and serves the bucket iff it is
  /// clean, covers `key`, and its epoch equals the leased epoch. Returns
  /// nullptr when the turn belongs to the primary or the lease died
  /// (stale epoch, dead holder) — the caller then reads the primary,
  /// which re-grants.
  BucketRef tryLeaseRead(const std::string& nm, const LeafCache::Entry& lease,
                         double key, cost::OpStats& st);

  /// Access-frequency tracking for adaptive splits: bumps the leaf's read
  /// count (halving all counts every 4096 to keep a recent window).
  void noteLeafRead(const std::string& dhtKey);
  [[nodiscard]] bool leafIsHot(const std::string& dhtKey) const;

  /// Shared walk for find/insert target resolution.
  LookupRef lookupInternal(double key);
  LookupRef lookupLinearRef(double key);

  /// One pending forward of Algorithm 3: a branch node to enter, the
  /// range clip to apply there, and whether the branch is fully covered
  /// (entry under name(branch), guaranteed to exist) or the final
  /// partially-covered branch (entry under the branch label itself, with
  /// one possible failed lookup).
  struct ForwardTarget {
    Label branch;
    common::Interval clip;
    bool covered = false;
  };

  /// The branch nodes a bucket forwards a range to (Alg. 3, both sweep
  /// directions). Pure local-tree computation, no DHT traffic; shared by
  /// the sequential recursion and the batched breadth-first fan-out.
  [[nodiscard]] std::vector<ForwardTarget> forwardTargets(
      const LeafBucket& bucket, const common::Interval& range) const;

  /// Recursive forwarding (Alg. 3, both sweep directions unified): collects
  /// bucket ∩ range, then covers the uncovered remainder left and right of
  /// the bucket through locally inferred branch nodes. Returns the latency
  /// (longest dependent DHT-lookup chain) of the subtree of forwards; adds
  /// all lookups to `st`.
  common::u64 forwardRange(const LeafBucket& bucket, const common::Interval& range,
                           std::vector<index::Record>& out, cost::OpStats& st);

  /// A ForwardTarget in flight in the batched fan-out; retryUnderName is
  /// set after a partial branch's primary probe missed (the branch is
  /// itself a leaf) and it must be re-fetched under name(branch) in the
  /// next round.
  struct FanoutTask {
    Label branch;
    common::Interval clip;
    bool covered = false;
    bool retryUnderName = false;
  };

  /// Collects bucket ∩ clip and enqueues the bucket's forward targets.
  void expandBucket(const LeafBucket& bucket, const common::Interval& clip,
                    std::vector<FanoutTask>& next,
                    std::vector<index::Record>& out, cost::OpStats& st);

  /// Batched Alg. 3: lockstep breadth-first rounds over the frontier, one
  /// multiGet per round. Same DHT-lookups as the sequential recursion
  /// (including the one failed probe per final branch, retried in the
  /// next round); returns the number of rounds — the critical path.
  common::u64 runFanoutRounds(std::vector<FanoutTask> frontier,
                              std::vector<index::Record>& out, cost::OpStats& st);

  /// expandBucket + runFanoutRounds from one entry bucket.
  common::u64 forwardRangeBatched(const LeafBucket& entry,
                                  const common::Interval& range,
                                  std::vector<index::Record>& out,
                                  cost::OpStats& st);

  /// Bulk-load fast path: sequential per-leaf lookups, then ONE
  /// multiApply round shipping every group and ONE more writing every
  /// split-off child.
  index::UpdateResult insertBatchBatched(std::vector<index::Record> records);

  /// Fetches the entry bucket for a branch/half label during range
  /// processing: tries the label as a key (leftmost/rightmost named leaf of
  /// that subtree), retrying name(label) when the label is itself a leaf
  /// (the paper's "at most one failed DHT-lookup"). Returns the sequential
  /// step count consumed (1 or 2).
  common::u64 fetchSubtreeEntry(const Label& branch, BucketRef& out,
                                cost::OpStats& st);

  /// Concurrency fallback for the range sweeps: when a branch's entry-leaf
  /// probe misses because another client split or merged it mid-query,
  /// re-resolves through the repairing lookup (which also finishes any
  /// half-done structural change in the way) and returns the leaf covering
  /// the clip's lower bound. Adds the lookup's critical path to `hops`.
  BucketRef resolveRangeEntry(const common::Interval& clip, common::u64& hops,
                              cost::OpStats& st);

  /// The longest dyadic label whose interval contains [range.lo, range.hi).
  [[nodiscard]] Label computeLca(const common::Interval& range) const;

  /// Effective-size split trigger (see Options::countLabelSlot).
  [[nodiscard]] bool shouldSplit(const LeafBucket& b) const;

  /// Attempts the sibling merge after an erase. `bucketLabel` is the leaf
  /// the erase landed in. Counted under meters_.maintenance.
  bool tryMerge(const Label& bucketLabel);

  /// A fresh, never-zero idempotence token from this client's stream.
  common::u64 newToken();

  // Single instrumentation path for the paper's cost categories: every
  // charge lands in meters_ AND mirrors into the ambient obs registry
  // under "lht.cost.<category>.<field>", so the closed-form Ψ can be
  // checked against either view. Splits/merges additionally emit trace
  // events.
  void chargeInsertion(common::u64 lookups, common::u64 recordsMoved);
  void chargeMaintenance(common::u64 lookups, common::u64 recordsMoved);
  void chargeQuery(common::u64 lookups);
  void noteSplit();
  void noteMerge();
  void recordAlpha(double alpha);
  /// Per-op metrics under `op` (e.g. "lht.find"): a ".count" counter and
  /// ".dht_lookups"/".rounds" histograms. No-op when metrics are off.
  void noteOp(const char* op, const cost::OpStats& st);

  /// Completes the split recorded in `intent` for the staying bucket
  /// stored under `stayingKey`: writes the moved child (create-if-absent,
  /// never clobbers), then clears the intent. Idempotent; safe to re-run
  /// after lost replies or by a different client. Lookups are counted
  /// into `st` and meters_.maintenance.
  void completeSplit(const std::string& stayingKey, const SplitIntent& intent,
                     cost::OpStats& st);

  /// Completes the merge recorded in the absorber stored under
  /// `absorberKey`: refreshes the staged copy from the donor if it still
  /// exists, deletes the donor, then commits the absorber as the parent
  /// leaf. Idempotent.
  void completeMerge(const std::string& absorberKey, const MergeIntent& intent,
                     cost::OpStats& st);

  /// Completes any intent carried by `bucket` (stored under `key`).
  /// Returns true when a repair ran.
  bool repairBucket(const std::string& key, const LeafBucket& bucket,
                    cost::OpStats& st);

  /// Last-resort repair discovery for a key the binary search could not
  /// place: probes every candidate prefix name of `key` and repairs any
  /// intent found. Returns true when something was repaired (the caller
  /// should restart its search).
  bool repairProbe(double key, cost::OpStats& st);

  dht::Dht& dht_;
  Options opts_;
  size_t recordCount_ = 0;
  common::u32 depthHint_ = 0;  ///< bit length of the last found leaf
  common::Pcg32 tokenRng_;
  RepairStats repairStats_;
  BucketStore store_;
  LeafCache leafCache_;
  /// Per-leaf lookup counts (adaptive splits), keyed by DHT key; halved
  /// wholesale every 4096 observations so heat tracks the recent window.
  std::unordered_map<std::string, common::u32> leafReads_;
  common::u64 leafReadsSinceDecay_ = 0;
};

}  // namespace lht::core
