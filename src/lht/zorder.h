// Multi-dimensional indexing on top of LHT via a space-filling curve.
//
// The paper (Sec. 3.1, footnote 1) notes that the one-dimensional LHT can
// serve as infrastructure for multi-dimensional indexing by applying an SFC,
// as PHT does in [4]. This module implements that extension for 2-D points:
// a Z-order (Morton) curve maps [0,1)^2 into the unit key space, a rectangle
// query decomposes into a small set of curve intervals, and each interval
// becomes one LHT range query.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "index/ordered_index.h"
#include "lht/lht_index.h"

namespace lht::core {

/// An axis-aligned query rectangle, half-open on both axes.
struct Rect {
  double xlo = 0.0, xhi = 0.0;
  double ylo = 0.0, yhi = 0.0;

  [[nodiscard]] bool contains(double x, double y) const {
    return x >= xlo && x < xhi && y >= ylo && y < yhi;
  }
};

/// Interleaves `bitsPerDim` bits of x and y (x contributes the higher bit of
/// each pair) into a Z-order key in [0, 1). Requires x, y in [0, 1].
double zEncode(double x, double y, common::u32 bitsPerDim);

/// Inverse of zEncode: the lower-left corner of the Morton cell containing z.
std::pair<double, double> zDecode(double z, common::u32 bitsPerDim);

/// Decomposes `rect` into disjoint Z-order key intervals that exactly cover
/// the Morton cells intersecting it, at `bitsPerDim` resolution. Recursion
/// stops early once `maxRanges` candidate ranges exist (trading extra
/// filtering for fewer range queries); adjacent ranges are merged.
std::vector<common::Interval> zRangesForRect(const Rect& rect,
                                             common::u32 bitsPerDim,
                                             size_t maxRanges = 64);

/// A 2-D point record.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
  std::string payload;
};

/// 2-D point index: LHT underneath, Z-order on top.
class Lht2dIndex {
 public:
  struct Options {
    LhtIndex::Options lht;
    common::u32 bitsPerDim = 10;  ///< Morton resolution per axis
    size_t maxRanges = 64;        ///< range-query decomposition budget
  };

  Lht2dIndex(dht::Dht& dht, Options options);

  /// Inserts a point (coordinates in [0,1]^2).
  index::UpdateResult insert(const Point2D& p);

  /// All points inside `rect`, plus aggregate query stats.
  struct RectResult {
    std::vector<Point2D> points;
    cost::OpStats stats;
    size_t curveRanges = 0;  ///< how many 1-D range queries were issued
  };
  RectResult rectQuery(const Rect& rect);

  /// The k points nearest (Euclidean) to (x, y), ascending by distance.
  /// Expanding-box search: rectangle queries of doubling radius until the
  /// k-th hit provably lies inside the searched box. `rounds` reports how
  /// many expansions were needed.
  struct KnnResult {
    std::vector<Point2D> points;
    cost::OpStats stats;
    size_t rounds = 0;
  };
  KnnResult knnQuery(double x, double y, size_t k);

  [[nodiscard]] const LhtIndex& underlying() const { return lht_; }

 private:
  Options opts_;
  LhtIndex lht_;
};

}  // namespace lht::core
