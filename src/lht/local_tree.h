// Local tree summarization (paper Sec. 3.3, Fig. 3).
//
// A leaf's label alone determines a *local view* of the partition tree: all
// of the leaf's ancestors (every proper prefix of the label) and every
// branch node hanging off that ancestor path (a prefix with its next bit
// flipped). The tree's fullness property guarantees every branch node
// really exists, each rooting a "neighboring tree" of unknown depth. The
// union of all leaves' local trees is the whole partition tree — which is
// why leaf buckets alone summarize the global structure.
//
// The query algorithms only ever need the f_rn/f_ln walk, but this explicit
// materialization backs tests, diagnostics and the worked examples.
#pragma once

#include <string>
#include <vector>

#include "common/label.h"

namespace lht::core {

using common::Label;

class LocalTree {
 public:
  /// Builds the local view of `leaf`'s label. Requires a real leaf
  /// (non-virtual-root label starting with the root edge 0).
  explicit LocalTree(Label leaf);

  [[nodiscard]] const Label& leaf() const { return leaf_; }

  /// Ancestors from the virtual root "#" down to the leaf's parent.
  [[nodiscard]] std::vector<Label> ancestors() const;

  /// Branch nodes (siblings of ancestors and of the leaf itself) whose
  /// subtrees lie right of the leaf, ordered nearest-first: beta_1 =
  /// rightNeighbor(leaf), beta_{i+1} = rightNeighbor(beta_i) (Fig. 5a).
  [[nodiscard]] std::vector<Label> rightBranches() const;

  /// Mirror image: branch nodes left of the leaf, nearest-first.
  [[nodiscard]] std::vector<Label> leftBranches() const;

  /// All labels inferable from the leaf label (ancestors + both branch
  /// lists + the leaf), sorted; the leaf's complete local knowledge.
  [[nodiscard]] std::vector<Label> allKnownNodes() const;

  /// Partition values pv_i (paper Fig. 5a): the interval boundaries of the
  /// right-branch subtrees, ascending, starting at the leaf's upper edge.
  [[nodiscard]] std::vector<double> rightPartitionValues() const;

  /// Multi-line ASCII rendering of the local view (for examples/debugging).
  [[nodiscard]] std::string render() const;

 private:
  Label leaf_;
};

}  // namespace lht::core
