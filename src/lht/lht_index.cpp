#include "lht/lht_index.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/types.h"
#include "lht/naming.h"
#include "obs/obs.h"

namespace lht::core {

using common::checkInvariant;
using common::Interval;
using common::Label;
using common::u32;
using common::u64;

LhtIndex::LhtIndex(dht::Dht& dht, Options options)
    : dht_(dht),
      opts_(options),
      tokenRng_(options.clientSeed, 0x70CE17u),
      store_(options.cacheDecodedBuckets,
             std::max<size_t>(1, options.leafCacheCapacity)),
      leafCache_(std::max<size_t>(1, options.leafCacheCapacity)) {
  checkInvariant(opts_.thetaSplit >= 2, "LhtIndex: thetaSplit must be >= 2");
  if (opts_.maxDepth > Label::kMaxBits) opts_.maxDepth = Label::kMaxBits;
  checkInvariant(opts_.maxDepth >= 2, "LhtIndex: maxDepth must be >= 2");
  if (opts_.mergeThreshold == 0) opts_.mergeThreshold = opts_.thetaSplit;
  if (!opts_.attachExisting) {
    // The empty index: a single leaf "#0" covering [0,1), named "#".
    LeafBucket root{Label::root(), {}};
    dht_.storeDirect(dhtKeyFor(root.label), root.serialize());
  }
}

u64 LhtIndex::newToken() {
  for (;;) {
    const u64 t = tokenRng_.next64();
    if (t != 0) return t;
  }
}

void LhtIndex::chargeInsertion(u64 lookups, u64 recordsMoved) {
  meters_.insertion.dhtLookups += lookups;
  meters_.insertion.recordsMoved += recordsMoved;
  if (obs::metrics() != nullptr) {
    if (lookups != 0) obs::count("lht.cost.insertion.dht_lookups", lookups);
    if (recordsMoved != 0) {
      obs::count("lht.cost.insertion.records_moved", recordsMoved);
    }
  }
}

void LhtIndex::chargeMaintenance(u64 lookups, u64 recordsMoved) {
  meters_.maintenance.dhtLookups += lookups;
  meters_.maintenance.recordsMoved += recordsMoved;
  if (obs::metrics() != nullptr) {
    if (lookups != 0) obs::count("lht.cost.maintenance.dht_lookups", lookups);
    if (recordsMoved != 0) {
      obs::count("lht.cost.maintenance.records_moved", recordsMoved);
    }
  }
}

void LhtIndex::chargeQuery(u64 lookups) {
  meters_.query.dhtLookups += lookups;
  if (lookups != 0) obs::count("lht.cost.query.dht_lookups", lookups);
}

void LhtIndex::noteSplit() {
  meters_.maintenance.splits += 1;
  obs::count("lht.cost.maintenance.splits");
  obs::instantEvent("lht.split", "lht");
}

void LhtIndex::noteMerge() {
  meters_.maintenance.merges += 1;
  obs::count("lht.cost.maintenance.merges");
  obs::instantEvent("lht.merge", "lht");
}

void LhtIndex::recordAlpha(double alpha) {
  meters_.alpha.record(alpha);
  obs::MetricsRegistry* m = obs::metrics();
  if (m != nullptr) {
    m->histogram("lht.alpha", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
        .observe(alpha);
  }
}

void LhtIndex::noteOp(const char* op, const cost::OpStats& st) {
  obs::MetricsRegistry* m = obs::metrics();
  if (m == nullptr) return;
  const std::string base(op);
  m->counter(base + ".count").add(1);
  m->histogram(base + ".dht_lookups").observe(static_cast<double>(st.dhtLookups));
  m->histogram(base + ".rounds").observe(static_cast<double>(st.parallelSteps));
}

LhtIndex::BucketRef LhtIndex::getBucketRef(const std::string& key,
                                           cost::OpStats& st) {
  st.dhtLookups += 1;
  auto v = dht_.get(key);
  if (!v) return nullptr;
  auto ref = store_.decode(key, *v);
  noteLeaf(*ref);
  return ref;
}

void LhtIndex::noteLeaf(const LeafBucket& bucket) {
  if (!opts_.useLeafCache || !bucket.clean()) return;
  u64 leaseExpiry = 0;
  if (opts_.leasedReads && dht_.replicaFanout() > 0) {
    // A primary observation of a clean leaf is a lease grant: for the TTL
    // the replica holders may serve this interval, validated by epoch
    // equality against the snapshot observed here.
    leaseExpiry = leaseNowMs() + std::max<u64>(1, opts_.leaseTtlMs);
    obs::count("dht.lease.grants");
  }
  leafCache_.note(bucket.label, bucket.epoch, leaseExpiry);
}

void LhtIndex::dropCached(const Interval& iv) {
  if (opts_.useLeafCache) leafCache_.invalidate(iv);
}

u64 LhtIndex::leaseNowMs() const {
  return opts_.leaseClock != nullptr ? opts_.leaseClock->nowMs() : 0;
}

bool LhtIndex::leaseUsable(const LeafCache::Entry& e) {
  if (!opts_.leasedReads || !e.leased() || dht_.replicaFanout() == 0) {
    return false;
  }
  if (leaseNowMs() >= e.leaseExpiresAtMs) {
    leafCache_.noteLeaseExpired();
    leafCache_.dropLease(e.label.interval());
    obs::count("dht.lease.expired");
    return false;
  }
  return true;
}

LhtIndex::BucketRef LhtIndex::tryLeaseRead(const std::string& nm,
                                           const LeafCache::Entry& lease,
                                           double key, cost::OpStats& st) {
  const size_t fanout = dht_.replicaFanout();
  // Rotate over fanout replica holders plus the primary, so the leaf's
  // read load spreads over its full replication set and the lease is
  // renewed (by the primary read) every fanout+1 turns.
  const size_t slot = leafCache_.bumpReplicaCursor(lease.label) % (fanout + 1);
  if (slot == fanout) return nullptr;  // the primary's turn
  std::optional<dht::Value> v;
  try {
    st.dhtLookups += 1;
    v = dht_.getReplica(nm, slot);
  } catch (const dht::DhtTimeoutError&) {
    // A real-network holder that never answers looks like this — not like
    // DhtPeerDownError, which only substrates with perfect failure
    // knowledge can throw. Same remedy (revoke the lease, keep the
    // location, let the primary read decide), separate ledger entry; and
    // because note() now preserves the rotation cursor across the
    // re-grant, the next lease read moves PAST the silent holder instead
    // of being pinned back onto it.
    leafCache_.noteLeaseTimeout();
    leafCache_.dropLease(lease.label.interval());
    obs::count("dht.lease.timeout_drops");
    obs::count("dht.lease.drops");
    return nullptr;
  } catch (const dht::DhtError&) {
    // The holder is unreachable. That says nothing about where the leaf
    // lives, so only the lease is revoked (PR6 drops *locations* for dead
    // owners; dead holders stop replica reads instead) and the primary
    // read below decides.
    leafCache_.dropLease(lease.label.interval());
    obs::count("dht.lease.drops");
    return nullptr;
  }
  if (v.has_value()) {
    auto ref = store_.decode(nm, *v);
    if (ref->clean() && ref->epoch == lease.epoch && ref->covers(key)) {
      leafCache_.noteLeaseServed();
      obs::count("dht.lease.reads");
      return ref;
    }
  }
  // The snapshot moved on — an insert/split/merge bumped the epoch (or
  // the copy predates the grant). The lease is dead; re-anchor at the
  // primary, which re-grants at the current epoch.
  leafCache_.noteLeaseStale();
  leafCache_.dropLease(lease.label.interval());
  obs::count("dht.lease.stale");
  return nullptr;
}

void LhtIndex::noteLeafRead(const std::string& dhtKey) {
  if (!opts_.adaptiveSplits) return;
  leafReads_[dhtKey] += 1;
  if (++leafReadsSinceDecay_ < 4096) return;
  leafReadsSinceDecay_ = 0;
  for (auto it = leafReads_.begin(); it != leafReads_.end();) {
    it->second /= 2;
    it = it->second == 0 ? leafReads_.erase(it) : std::next(it);
  }
}

bool LhtIndex::leafIsHot(const std::string& dhtKey) const {
  if (!opts_.adaptiveSplits) return false;
  auto it = leafReads_.find(dhtKey);
  return it != leafReads_.end() && it->second >= opts_.hotLeafReads;
}

dht::Mutator LhtIndex::makeBucketMutator(std::string key, BucketMutator fn) {
  return [this, key = std::move(key), fn = std::move(fn)](std::optional<dht::Value>& v) {
    std::optional<LeafBucket> b;
    if (v.has_value()) b = store_.decodeCopy(key, *v);
    if (!fn(b)) return;  // unchanged: the stored bytes stay as they are
    if (b.has_value()) {
      v = b->serialize();
      store_.note(key, *v, std::move(*b));
    } else {
      v.reset();
      store_.forget(key);
    }
  };
}

bool LhtIndex::applyBucket(const std::string& key, const BucketMutator& fn) {
  return dht_.apply(key, makeBucketMutator(key, fn));
}

LhtIndex::LookupOutcome LhtIndex::toOutcome(LookupRef&& ref) {
  LookupOutcome out;
  out.dhtKey = std::move(ref.dhtKey);
  out.stats = ref.stats;
  if (ref.bucket) out.bucket = *ref.bucket;  // one copy, at the API boundary
  return out;
}

bool LhtIndex::shouldSplit(const LeafBucket& b) const {
  u32 threshold = opts_.thetaSplit;
  if (opts_.adaptiveSplits && leafIsHot(dhtKeyFor(b.label))) {
    // A persistently hot leaf splits early so its read traffic spreads
    // over more owners; the floor keeps the split meaningful.
    threshold = std::max<u32>(2, opts_.thetaSplit / opts_.hotSplitDivisor);
  }
  if (b.effectiveSize(opts_.countLabelSlot) < threshold) return false;
  return b.label.length() < opts_.maxDepth;
}

// ---------------------------------------------------------------------------
// Lookup (Algorithm 2) + lookup-triggered repair
// ---------------------------------------------------------------------------

LhtIndex::LookupRef LhtIndex::lookupInternal(double key) {
  LookupRef out;
  key = common::clampToUnit(key);  // 1.0 belongs to the rightmost cell
  const Label mu = Label::fromKey(key, opts_.maxDepth);

  // The search restarts whenever a repair changes the tree under it. Any
  // single restart completes at least one pending intent, and only a
  // bounded number of intents can exist on a root-to-leaf path, so the
  // restart budget is generous rather than load-bearing.
  constexpr u32 kHoleRetries = 3;
  u32 holeRetries = 0;
  for (u32 attempt = 0; attempt <= 2 * opts_.maxDepth + 2; ++attempt) {
    bool restart = false;

    // Location-cache fast path: a remembered leaf costs one DHT-lookup.
    // The fetched bucket validates the entry (still covers the key, still
    // clean); anything stale is invalidated and the binary search below
    // takes over — the probe stays counted, correctness never depends on
    // cache freshness.
    if (opts_.useLeafCache) {
      if (auto cached = leafCache_.find(key)) {
        const std::string nm = dhtKeyFor(cached->label);
        BucketRef bucket;
        bool leaseServed = false;
        if (leaseUsable(*cached)) {
          // Lease protocol: serve the read from a replica holder while
          // the leased epoch still matches the stored snapshot. A failed
          // turn (primary's rotation slot, stale epoch, dead holder)
          // falls through to the primary read below.
          bucket = tryLeaseRead(nm, *cached, key, out.stats);
          leaseServed = bucket != nullptr;
        }
        if (!bucket) {
          try {
            bucket = getBucketRef(nm, out.stats);
          } catch (const dht::DhtError&) {
            // The peer holding the cached location is unreachable
            // (crashed and not yet repaired away). The leaf will move
            // during repair, so stop advertising the stale location
            // before the failure surfaces — the next lookup after
            // recovery re-resolves from the binary search instead of
            // probing the dead owner again.
            dropCached(cached->label.interval());
            throw;
          }
        }
        if (bucket && !bucket->clean()) {
          dropCached(bucket->label.interval());
          repairBucket(nm, *bucket, out.stats);
          continue;  // restart against the repaired tree
        }
        if (bucket && bucket->covers(key)) {
          if (!leaseServed) leafCache_.notePrimaryServed();
          depthHint_ = bucket->label.length();
          out.bucket = std::move(bucket);
          out.dhtKey = nm;
          break;
        }
        // The leaf moved (split/merge elsewhere): drop the entry and fall
        // back to the full search.
        dropCached(cached->label.interval());
      }
    }

    u32 shorter = 1;             // candidate leaf-label bit lengths
    u32 longer = opts_.maxDepth; // (paper lengths 2..D+1 count the '#')
    bool useHint = opts_.useDepthHint && depthHint_ != 0;
    while (shorter <= longer) {
      u32 mid = (shorter + longer) / 2;
      if (useHint) {
        // First probe at the last successful depth; leaf depths concentrate,
        // so this usually resolves the search in one DHT-lookup.
        mid = std::clamp(depthHint_, shorter, longer);
        useHint = false;
      }
      const Label x = mu.prefix(mid);
      const Label nm = name(x);
      auto bucket = getBucketRef(nm.str(), out.stats);
      if (!bucket) {
        // No leaf is named nm: every prefix longer than nm shares this name
        // (they all extend nm by a run of x's last bit), so only lengths up
        // to |nm| remain candidates.
        longer = nm.length();
        if (longer < shorter) break;
        continue;
      }
      if (!bucket->clean()) {
        // A structural change died between steps here. Finish it and
        // re-run the search against the repaired tree.
        repairBucket(nm.str(), *bucket, out.stats);
        restart = true;
        break;
      }
      if (bucket->covers(key)) {
        depthHint_ = bucket->label.length();
        out.bucket = std::move(bucket);
        out.dhtKey = nm.str();
        break;
      }
      // The name is taken by a different leaf, so x (and every shorter
      // prefix, all being that leaf's ancestors) is internal; skip forward
      // past all prefixes sharing x's name.
      auto nn = nextName(x, mu);
      if (!nn) break;  // D was too small for the actual tree
      shorter = nn->length();
    }
    if (restart) continue;
    if (!out.bucket) {
      // The binary search fell into a hole — a leaf that should cover the
      // key is missing. If a half-finished split/merge is responsible, the
      // bucket holding its intent sits under one of the key's candidate
      // prefix names; probe them all and retry. Even when nothing needed
      // repair the hole can be a concurrency artifact: the probes are not
      // a snapshot, so a split completed by another client *between* two
      // probes can make them collectively miss a leaf that every
      // instantaneous state contained. A bounded number of re-searches
      // separates that transient from a genuinely uncovered key.
      if (repairProbe(key, out.stats) || holeRetries++ < kHoleRetries) {
        continue;
      }
    }
    break;
  }
  out.stats.parallelSteps = out.stats.dhtLookups;  // strictly sequential
  if (out.bucket) {
    out.stats.bucketsTouched = 1;
    noteLeafRead(out.dhtKey);
  }
  return out;
}

bool LhtIndex::repairProbe(double key, cost::OpStats& st) {
  repairStats_.holeProbes += 1;
  key = common::clampToUnit(key);
  const Label mu = Label::fromKey(key, opts_.maxDepth);
  std::vector<std::string> names;
  std::string lastTried;
  for (u32 len = 1; len <= mu.length(); ++len) {
    const std::string nm = name(mu.prefix(len)).str();
    if (nm == lastTried) continue;
    lastTried = nm;
    names.push_back(nm);
  }
  bool repaired = false;
  if (opts_.batchFanout) {
    // All candidate prefix names in one round; the probe count is the same
    // as the sequential scan, the critical path is one round-trip.
    auto replies = dht_.multiGet(names);
    st.dhtLookups += names.size();
    for (size_t i = 0; i < names.size(); ++i) {
      if (!replies[i].ok) {
        // Entry failed inside the round: fall back to a sequential probe
        // of this name so injected faults degrade, not corrupt.
        auto bucket = getBucketRef(names[i], st);
        if (bucket && !bucket->clean()) repaired |= repairBucket(names[i], *bucket, st);
        continue;
      }
      if (!replies[i].value.has_value()) continue;
      auto bucket = store_.decode(names[i], *replies[i].value);
      noteLeaf(*bucket);
      if (!bucket->clean()) repaired |= repairBucket(names[i], *bucket, st);
    }
    return repaired;
  }
  for (const auto& nm : names) {
    auto bucket = getBucketRef(nm, st);
    if (bucket && !bucket->clean()) repaired |= repairBucket(nm, *bucket, st);
  }
  return repaired;
}

bool LhtIndex::repairBucket(const std::string& key, const LeafBucket& bucket,
                            cost::OpStats& st) {
  bool repaired = false;
  if (bucket.splitIntent) {
    completeSplit(key, *bucket.splitIntent, st);
    repairStats_.splitRepairs += 1;
    repaired = true;
  }
  if (bucket.mergeIntent) {
    completeMerge(key, *bucket.mergeIntent, st);
    repairStats_.mergeRepairs += 1;
    repaired = true;
  }
  return repaired;
}

void LhtIndex::completeSplit(const std::string& stayingKey,
                             const SplitIntent& intent, cost::OpStats& st) {
  // Step 2 of the split state machine: materialize the moved child under
  // its own key. Create-if-absent: if a bucket already lives there, a
  // previous attempt (possibly ours, its reply lost) already landed it —
  // and it may have absorbed newer inserts — so it is never overwritten.
  applyBucket(dhtKeyFor(intent.movedLabel), [&](std::optional<LeafBucket>& ob) {
    if (ob.has_value()) return false;
    LeafBucket moved{intent.movedLabel, intent.moving};
    moved.epoch = 1;
    moved.markApplied(intent.token);
    ob = std::move(moved);
    return true;
  });
  st.dhtLookups += 1;
  chargeMaintenance(1, 0);

  // Step 3: clear the intent from the staying child. Guarded by the
  // intent token so a stale retry cannot clear a newer intent.
  applyBucket(stayingKey, [&](std::optional<LeafBucket>& ob) {
    checkInvariant(ob.has_value(), "completeSplit: staying bucket vanished");
    if (ob->splitIntent && ob->splitIntent->token == intent.token) {
      ob->splitIntent.reset();
      ob->epoch += 1;
      return true;
    }
    return false;
  });
  st.dhtLookups += 1;
  chargeMaintenance(1, 0);
  dropCached(intent.movedLabel.parent().interval());
}

void LhtIndex::completeMerge(const std::string& absorberKey,
                             const MergeIntent& intent, cost::OpStats& st) {
  const std::string donorKey = dhtKeyFor(intent.donorLabel);

  // The staged copy may be stale: if the donor still exists it could have
  // absorbed writes after the intent was recorded (a crash between the
  // staging and the delete, followed by normal traffic). Refresh the copy
  // from the live donor before destroying anything.
  auto donorNow = getBucketRef(donorKey, st);
  chargeMaintenance(1, 0);
  u64 token = intent.token;
  if (donorNow && donorNow->label == intent.donorLabel) {
    if (donorNow->records != intent.moving) {
      token = newToken();
      applyBucket(absorberKey, [&](std::optional<LeafBucket>& ob) {
        checkInvariant(ob.has_value(), "completeMerge: absorber vanished");
        if (ob->mergeIntent && ob->mergeIntent->donorLabel == intent.donorLabel) {
          ob->mergeIntent->moving = donorNow->records;
          ob->mergeIntent->token = token;
          ob->epoch += 1;
          return true;
        }
        return false;
      });
      st.dhtLookups += 1;
      chargeMaintenance(1, 0);
    }
  }

  // Delete the donor (idempotent: only a bucket still carrying the donor
  // label is dropped; the staged copy is now authoritative).
  std::vector<index::Record> moving =
      donorNow && donorNow->label == intent.donorLabel ? donorNow->records
                                                       : intent.moving;
  applyBucket(donorKey, [&](std::optional<LeafBucket>& ob) {
    if (!ob.has_value()) return false;
    if (ob->label != intent.donorLabel) return false;
    ob.reset();  // erase
    return true;
  });
  st.dhtLookups += 1;
  chargeMaintenance(1, 0);

  // Commit: the absorber becomes the parent leaf and takes the records.
  applyBucket(absorberKey, [&](std::optional<LeafBucket>& ob) {
    checkInvariant(ob.has_value(), "completeMerge: absorber vanished");
    LeafBucket& b = *ob;
    if (b.mergeIntent && b.mergeIntent->donorLabel == intent.donorLabel) {
      b.label = intent.donorLabel.parent();
      b.records.insert(b.records.end(),
                       std::make_move_iterator(moving.begin()),
                       std::make_move_iterator(moving.end()));
      b.mergeIntent.reset();
      b.epoch += 1;
      return true;
    }
    return false;
  });
  st.dhtLookups += 1;
  chargeMaintenance(1, moving.size());
  dropCached(intent.donorLabel.parent().interval());
}

size_t LhtIndex::repairSweep() {
  const RepairStats before = repairStats_;
  cost::OpStats scratch;
  double cursor = 0.0;
  size_t guard = 0;
  while (cursor < 1.0) {
    checkInvariant(++guard < 1u << 22, "repairSweep: runaway walk");
    if (!opts_.batchFanout) {
      auto out = lookupInternal(cursor);
      checkInvariant(out.bucket != nullptr, "repairSweep: unrecoverable hole");
      scratch += out.stats;
      cursor = out.bucket->label.interval().hi;
      continue;
    }
    // Batched sweep step: every candidate prefix name of the cursor in ONE
    // round. The leaf covering the cursor is stored under one of these
    // names, and so is any intent-holder responsible for a hole there.
    const Label mu = Label::fromKey(common::clampToUnit(cursor), opts_.maxDepth);
    std::vector<std::string> names;
    std::string lastTried;
    for (u32 len = 1; len <= mu.length(); ++len) {
      const std::string nm = name(mu.prefix(len)).str();
      if (nm == lastTried) continue;
      lastTried = nm;
      names.push_back(nm);
    }
    auto replies = dht_.multiGet(names);
    scratch.dhtLookups += names.size();
    bool repairedAny = false;
    bool anyFailed = false;
    BucketRef covering;
    for (size_t i = 0; i < names.size(); ++i) {
      if (!replies[i].ok) {
        anyFailed = true;
        continue;
      }
      if (!replies[i].value.has_value()) continue;
      auto b = store_.decode(names[i], *replies[i].value);
      noteLeaf(*b);
      if (!b->clean()) {
        repairedAny |= repairBucket(names[i], *b, scratch);
        continue;
      }
      if (b->covers(common::clampToUnit(cursor))) covering = b;
    }
    if (repairedAny) continue;  // re-probe the same cursor post-repair
    if (anyFailed || !covering) {
      // Faulted round or no covering leaf surfaced: the sequential walker
      // (with its retry/repair loop) resolves this cursor.
      auto out = lookupInternal(cursor);
      checkInvariant(out.bucket != nullptr, "repairSweep: unrecoverable hole");
      scratch += out.stats;
      cursor = out.bucket->label.interval().hi;
      continue;
    }
    cursor = covering->label.interval().hi;
  }
  return static_cast<size_t>((repairStats_.splitRepairs - before.splitRepairs) +
                             (repairStats_.mergeRepairs - before.mergeRepairs));
}

size_t LhtIndex::repairSweepStep(double& cursor, size_t maxBuckets) {
  const RepairStats before = repairStats_;
  cost::OpStats scratch;
  size_t visited = 0;
  while (cursor < 1.0 && visited < maxBuckets) {
    auto out = lookupInternal(cursor);
    checkInvariant(out.bucket != nullptr, "repairSweepStep: unrecoverable hole");
    scratch += out.stats;
    cursor = out.bucket->label.interval().hi;
    ++visited;
  }
  return static_cast<size_t>((repairStats_.splitRepairs - before.splitRepairs) +
                             (repairStats_.mergeRepairs - before.mergeRepairs));
}

LhtIndex::LookupOutcome LhtIndex::lookup(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::lookup: key outside [0,1]");
  return toOutcome(lookupInternal(key));
}

LhtIndex::LookupRef LhtIndex::lookupLinearRef(double key) {
  LookupRef out;
  key = common::clampToUnit(key);
  const Label mu = Label::fromKey(key, opts_.maxDepth);
  std::string lastTried;
  for (u32 len = 1; len <= mu.length(); ++len) {
    const std::string nm = name(mu.prefix(len)).str();
    if (nm == lastTried) continue;  // same name as the previous prefix
    lastTried = nm;
    auto bucket = getBucketRef(nm, out.stats);
    if (bucket && bucket->covers(key)) {
      out.bucket = std::move(bucket);
      out.dhtKey = nm;
      break;
    }
  }
  out.stats.parallelSteps = out.stats.dhtLookups;
  if (out.bucket) out.stats.bucketsTouched = 1;
  return out;
}

LhtIndex::LookupOutcome LhtIndex::lookupLinear(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::lookupLinear: bad key");
  return toOutcome(lookupLinearRef(key));
}

// ---------------------------------------------------------------------------
// Insert (Sec. 5 + Algorithm 1)
// ---------------------------------------------------------------------------

index::UpdateResult LhtIndex::insert(const index::Record& record) {
  checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                 "LhtIndex::insert: key outside [0,1]");
  obs::SpanScope span("lht.insert", "lht");
  auto found = lookupInternal(record.key);
  if (!found.bucket) found = lookupLinearRef(record.key);  // defensive fallback
  checkInvariant(found.bucket != nullptr,
                 "LhtIndex::insert: tree does not cover the key (D too small?)");

  index::UpdateResult result;
  result.ok = true;
  result.stats = found.stats;
  chargeInsertion(found.stats.dhtLookups, 0);
  Interval preInterval = found.bucket->label.interval();

  // Ship the record to the bucket's peer (the paper's "DHT-put towards
  // kappa") and, when the leaf saturates, run Algorithm 1 right there: the
  // local child overwrites the stored bucket in place, each remote child
  // is handed back for a single DHT-put. At most one split per insert
  // unless cascading splits are enabled (an ablation option).
  //
  // The apply is stamped with an idempotence token: if the substrate loses
  // the *reply* and a retry layer re-executes the mutator, the second
  // execution sees the token already recorded and leaves the bucket alone
  // — the record lands exactly once.
  //
  // With crashConsistentSplits the split does not hand the moved child to
  // the client: it is staged as a SplitIntent inside the rewritten bucket
  // (step 1), then materialized (step 2) and acknowledged (step 3) by
  // completeSplit. A crash between any two steps leaves a state any
  // reader can finish.
  std::vector<LeafBucket> remotes;
  std::optional<SplitIntent> pendingSplit;
  bool earlySplit = false;  // hot-leaf split below theta: no alpha sample
  const u64 token = newToken();
  const u64 completionToken = newToken();
  // A concurrent client can split or merge the looked-up leaf between our
  // lookup and our apply; the mutator then reports staleness (the stored
  // bucket no longer covers the key, or vanished under a merge) instead
  // of applying, and the insert re-resolves the leaf. Every retry sees a
  // strictly newer state of that interval, so the depth budget bounds it.
  for (u32 attempt = 0;; ++attempt) {
    checkInvariant(attempt <= 2 * opts_.maxDepth + 2,
                   "LhtIndex::insert: leaf kept moving under the apply");
    bool stale = false;
    const bool existed = applyBucket(found.dhtKey, [&](std::optional<LeafBucket>& ob) {
      if (!ob.has_value()) {
        stale = true;
        return false;
      }
      LeafBucket& b = *ob;
      bool changed = false;
      // A lost reply makes a retry layer re-execute this mutator; the token
      // check turns the re-execution into a no-op, and the outputs captured
      // by the execution that actually applied stay valid. The staleness
      // check only runs on the applying execution: once the first
      // execution split the bucket, the staying child no longer needs to
      // cover the key.
      if (!b.hasApplied(token)) {
        if (!b.covers(common::clampToUnit(record.key))) {
          stale = true;
          return false;
        }
        remotes.clear();
        earlySplit = false;
        b.records.push_back(record);
        b.markApplied(token);
        b.epoch += 1;
        // A bucket still carrying an intent defers its split to a later
        // insert, mirroring the paper's one-split-per-insert deferral.
        if (b.clean() && shouldSplit(b)) {
          earlySplit =
              b.effectiveSize(opts_.countLabelSlot) < opts_.thetaSplit;
          if (opts_.allowCascadingSplits) {
            const SplitPolicy policy{opts_.thetaSplit, opts_.countLabelSlot,
                                     opts_.maxDepth};
            splitBucketRecursively(b, policy, remotes);
          } else if (opts_.crashConsistentSplits) {
            LeafBucket moved = splitBucket(b);
            b.splitIntent = SplitIntent{moved.label, std::move(moved.records),
                                        completionToken};
          } else {
            remotes.push_back(splitBucket(b));
          }
        }
        changed = true;
      }
      pendingSplit = b.splitIntent;
      return changed;
    });
    result.stats.dhtLookups += 1;
    result.stats.parallelSteps += 1;
    if (existed && !stale) {
      chargeInsertion(1, 1);
      break;
    }
    chargeInsertion(1, 0);
    dropCached(preInterval);
    found = lookupInternal(record.key);
    if (!found.bucket) found = lookupLinearRef(record.key);
    checkInvariant(found.bucket != nullptr,
                   "LhtIndex::insert: tree does not cover the key (D too small?)");
    chargeInsertion(found.stats.dhtLookups, 0);
    result.stats += found.stats;
    preInterval = found.bucket->label.interval();
  }
  recordCount_ += 1;

  for (const LeafBucket& remote : remotes) {
    // Theorem 2: each remote child is named exactly its pre-split label.
    dht_.put(dhtKeyFor(remote.label), remote.serialize());
    chargeMaintenance(1, remote.records.size());
    noteSplit();
    result.splitOrMerged = true;
  }
  if (!remotes.empty()) dropCached(preInterval);
  if (pendingSplit) {
    const size_t movedCount = pendingSplit->moving.size();
    completeSplit(found.dhtKey, *pendingSplit, result.stats);
    chargeMaintenance(0, movedCount);
    noteSplit();
    result.splitOrMerged = true;
    if (!earlySplit) {
      recordAlpha(
          static_cast<double>(movedCount + (opts_.countLabelSlot ? 1 : 0)) /
          static_cast<double>(opts_.thetaSplit));
    }
  }
  if (remotes.size() == 1 && !earlySplit) {
    const double remoteSize =
        static_cast<double>(remotes.front().effectiveSize(opts_.countLabelSlot));
    recordAlpha(remoteSize / static_cast<double>(opts_.thetaSplit));
  }
  noteOp("lht.insert", result.stats);
  span.arg("dht_lookups", result.stats.dhtLookups);
  return result;
}

index::UpdateResult LhtIndex::insertBatch(std::vector<index::Record> records) {
  index::UpdateResult result;
  result.ok = true;
  if (records.empty()) return result;
  for (const auto& r : records) {
    checkInvariant(r.key >= 0.0 && r.key <= 1.0,
                   "LhtIndex::insertBatch: key outside [0,1]");
  }
  std::sort(records.begin(), records.end(), index::recordLess);
  if (opts_.batchFanout) return insertBatchBatched(std::move(records));
  obs::SpanScope span("lht.insertBatch", "lht");
  span.arg("records", static_cast<u64>(records.size()));
  const SplitPolicy policy{opts_.thetaSplit, opts_.countLabelSlot, opts_.maxDepth};

  // One lookup + one apply per *touched leaf*: consecutive sorted records
  // that land in the same leaf ride along for free.
  size_t i = 0;
  while (i < records.size()) {
    auto found = lookupInternal(records[i].key);
    if (!found.bucket) found = lookupLinearRef(records[i].key);
    checkInvariant(found.bucket != nullptr, "LhtIndex::insertBatch: tree hole");
    chargeInsertion(found.stats.dhtLookups, 0);
    result.stats.dhtLookups += found.stats.dhtLookups;

    const Interval leafInterval = found.bucket->label.interval();
    const double leafHi = leafInterval.hi;
    size_t j = i;
    while (j < records.size() && common::clampToUnit(records[j].key) < leafHi) ++j;

    std::vector<LeafBucket> remotes;
    const u64 token = newToken();
    applyBucket(found.dhtKey, [&](std::optional<LeafBucket>& ob) {
      checkInvariant(ob.has_value(), "LhtIndex::insertBatch: bucket vanished");
      LeafBucket& b = *ob;
      if (b.hasApplied(token)) return false;
      remotes.clear();
      b.records.insert(
          b.records.end(),
          std::make_move_iterator(records.begin() + static_cast<long>(i)),
          std::make_move_iterator(records.begin() + static_cast<long>(j)));
      b.markApplied(token);
      b.epoch += 1;
      splitBucketRecursively(b, policy, remotes);
      return true;
    });
    chargeInsertion(1, j - i);
    result.stats.dhtLookups += 1;
    recordCount_ += j - i;

    for (const auto& rb : remotes) {
      dht_.put(dhtKeyFor(rb.label), rb.serialize());
      chargeMaintenance(1, rb.records.size());
      noteSplit();
      result.splitOrMerged = true;
    }
    if (!remotes.empty()) dropCached(leafInterval);
    i = j;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  noteOp("lht.insertBatch", result.stats);
  return result;
}

index::UpdateResult LhtIndex::insertBatchBatched(std::vector<index::Record> records) {
  index::UpdateResult result;
  result.ok = true;
  obs::SpanScope span("lht.insertBatch", "lht");
  span.arg("records", static_cast<u64>(records.size()));
  const SplitPolicy policy{opts_.thetaSplit, opts_.countLabelSlot, opts_.maxDepth};

  // Pass 1 (sequential, cache-accelerated): resolve the target leaf of each
  // sorted run. Groups are complete before any request captures a pointer
  // into the vector, so the pointers stay stable.
  struct Group {
    std::string dhtKey;
    Interval leafInterval;
    size_t begin = 0;
    size_t end = 0;
    u64 token = 0;
    std::vector<LeafBucket> remotes;
  };
  std::vector<Group> groups;
  size_t i = 0;
  while (i < records.size()) {
    auto found = lookupInternal(records[i].key);
    if (!found.bucket) found = lookupLinearRef(records[i].key);
    checkInvariant(found.bucket != nullptr, "LhtIndex::insertBatch: tree hole");
    chargeInsertion(found.stats.dhtLookups, 0);
    result.stats.dhtLookups += found.stats.dhtLookups;
    result.stats.parallelSteps += found.stats.parallelSteps;

    const double leafHi = found.bucket->label.interval().hi;
    size_t j = i;
    while (j < records.size() && common::clampToUnit(records[j].key) < leafHi) ++j;
    groups.push_back(Group{found.dhtKey, found.bucket->label.interval(), i, j,
                           newToken(), {}});
    i = j;
  }

  // Pass 2: ONE multiApply round ships every group to its leaf (splits run
  // inside the mutators, children handed back per group).
  std::vector<dht::ApplyRequest> reqs;
  reqs.reserve(groups.size());
  for (auto& g : groups) {
    Group* gp = &g;
    reqs.push_back(dht::ApplyRequest{
        g.dhtKey,
        makeBucketMutator(g.dhtKey, [this, gp, &records, policy](std::optional<LeafBucket>& ob) {
          checkInvariant(ob.has_value(), "LhtIndex::insertBatch: bucket vanished");
          LeafBucket& b = *ob;
          if (b.hasApplied(gp->token)) return false;
          gp->remotes.clear();
          b.records.insert(b.records.end(),
                           records.begin() + static_cast<long>(gp->begin),
                           records.begin() + static_cast<long>(gp->end));
          b.markApplied(gp->token);
          b.epoch += 1;
          splitBucketRecursively(b, policy, gp->remotes);
          return true;
        })});
  }
  auto applied = dht_.multiApply(reqs);
  if (!reqs.empty()) result.stats.parallelSteps += 1;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!applied[g].ok) {
      throw dht::DhtError("LhtIndex::insertBatch: apply round entry failed: " +
                          applied[g].error);
    }
    chargeInsertion(1, groups[g].end - groups[g].begin);
    result.stats.dhtLookups += 1;
    recordCount_ += groups[g].end - groups[g].begin;
  }

  // Pass 3: ONE more round writes every split-off child (Theorem 2 names
  // them; overwrite matches the sequential dht_.put).
  std::vector<dht::ApplyRequest> puts;
  for (auto& g : groups) {
    if (!g.remotes.empty()) dropCached(g.leafInterval);
    for (auto& rb : g.remotes) {
      const std::string key = dhtKeyFor(rb.label);
      const LeafBucket* rbp = &rb;
      puts.push_back(dht::ApplyRequest{
          key, makeBucketMutator(key, [rbp](std::optional<LeafBucket>& ob) {
            ob = *rbp;
            return true;
          })});
    }
  }
  if (!puts.empty()) {
    auto putOut = dht_.multiApply(puts);
    result.stats.parallelSteps += 1;
    size_t k = 0;
    for (const auto& g : groups) {
      for (const auto& rb : g.remotes) {
        if (!putOut[k].ok) {
          throw dht::DhtError("LhtIndex::insertBatch: split put failed: " +
                              putOut[k].error);
        }
        chargeMaintenance(1, rb.records.size());
        noteSplit();
        result.splitOrMerged = true;
        ++k;
      }
    }
  }
  noteOp("lht.insertBatch", result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Successor / predecessor queries (extension)
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::successorQuery(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::successorQuery: bad key");
  obs::SpanScope span("lht.successorQuery", "lht");
  auto found = lookupInternal(key);
  checkInvariant(found.bucket != nullptr, "successorQuery: tree hole");
  index::FindResult result;
  result.stats = found.stats;
  BucketRef bucket = std::move(found.bucket);
  while (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (r.key >= key && (best == nullptr || r.key < best->key)) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
    if (bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);  // leftmost leaf of the next subtree
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.successorQuery", result.stats);
  return result;
}

index::FindResult LhtIndex::predecessorQuery(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::predecessorQuery: bad key");
  obs::SpanScope span("lht.predecessorQuery", "lht");
  auto found = lookupInternal(key);
  checkInvariant(found.bucket != nullptr, "predecessorQuery: tree hole");
  index::FindResult result;
  result.stats = found.stats;
  BucketRef bucket = std::move(found.bucket);
  while (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (r.key < key && (best == nullptr || r.key > best->key)) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
    if (bucket->label.isLeftmostPath()) break;
    const Label beta = leftNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);  // rightmost leaf of the previous subtree
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.predecessorQuery", result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Erase + merge (the dual of split)
// ---------------------------------------------------------------------------

index::UpdateResult LhtIndex::erase(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::erase: key outside [0,1]");
  obs::SpanScope span("lht.erase", "lht");
  auto found = lookupInternal(key);
  if (!found.bucket) found = lookupLinearRef(key);
  checkInvariant(found.bucket != nullptr, "LhtIndex::erase: tree hole");

  index::UpdateResult result;
  result.stats = found.stats;
  chargeInsertion(found.stats.dhtLookups, 0);

  size_t removed = 0;
  size_t remainingEffective = 0;
  Label bucketLabel;
  const u64 token = newToken();
  // Same lookup-vs-apply race as insert: if a concurrent split/merge moved
  // the leaf out from under us, re-resolve and retry instead of removing
  // from (or reporting absence against) the wrong bucket.
  for (u32 attempt = 0;; ++attempt) {
    checkInvariant(attempt <= 2 * opts_.maxDepth + 2,
                   "LhtIndex::erase: leaf kept moving under the apply");
    bool stale = false;
    const bool existed = applyBucket(found.dhtKey, [&](std::optional<LeafBucket>& ob) {
      if (!ob.has_value()) {
        stale = true;
        return false;
      }
      LeafBucket& b = *ob;
      // Token-guarded like insert: a lost-reply retry must neither remove
      // twice (harmless here) nor clobber the outputs of the execution that
      // actually removed the records.
      if (b.hasApplied(token)) return false;
      if (!b.covers(common::clampToUnit(key))) {
        stale = true;
        return false;
      }
      auto it = std::remove_if(b.records.begin(), b.records.end(),
                               [&](const index::Record& r) { return r.key == key; });
      removed = static_cast<size_t>(b.records.end() - it);
      b.records.erase(it, b.records.end());
      b.markApplied(token);
      b.epoch += 1;
      remainingEffective = b.effectiveSize(opts_.countLabelSlot);
      bucketLabel = b.label;
      return true;
    });
    chargeInsertion(1, 0);
    result.stats.dhtLookups += 1;
    result.stats.parallelSteps += 1;
    if (existed && !stale) break;
    dropCached(found.bucket->label.interval());
    found = lookupInternal(key);
    if (!found.bucket) found = lookupLinearRef(key);
    checkInvariant(found.bucket != nullptr, "LhtIndex::erase: tree hole");
    chargeInsertion(found.stats.dhtLookups, 0);
    result.stats += found.stats;
  }
  recordCount_ -= std::min(removed, recordCount_);
  result.ok = removed > 0;

  if (result.ok && opts_.enableMerge && bucketLabel.length() >= 2 &&
      remainingEffective < opts_.mergeThreshold) {
    result.splitOrMerged = tryMerge(bucketLabel);
  }
  noteOp("lht.erase", result.stats);
  return result;
}

bool LhtIndex::tryMerge(const Label& bucketLabel) {
  const Label sib = bucketLabel.sibling();
  // The sibling participates only if it is itself a leaf, i.e. a bucket
  // labelled exactly `sib` sits under name(sib).
  cost::OpStats probe;
  auto sibBucket = getBucketRef(dhtKeyFor(sib), probe);
  chargeMaintenance(probe.dhtLookups, 0);
  if (!sibBucket || sibBucket->label != sib) return false;

  // Refresh our own bucket to get an exact combined size.
  cost::OpStats self;
  auto ownBucket = getBucketRef(dhtKeyFor(bucketLabel), self);
  chargeMaintenance(self.dhtLookups, 0);
  if (!ownBucket || ownBucket->label != bucketLabel) return false;

  const size_t combined = ownBucket->records.size() + sibBucket->records.size() +
                          (opts_.countLabelSlot ? 1 : 0);
  if (combined >= opts_.mergeThreshold) return false;

  // The merged leaf is the parent; one child's bucket already lives under
  // the parent's name (the reverse of Theorem 2) and absorbs; the other is
  // the donor and is dropped, its records moving over.
  const Label parent = bucketLabel.parent();
  const std::string parentKey = dhtKeyFor(parent);
  const bool ownIsAbsorber = dhtKeyFor(bucketLabel) == parentKey;
  const LeafBucket& donor = ownIsAbsorber ? *sibBucket : *ownBucket;
  const LeafBucket& absorber = ownIsAbsorber ? *ownBucket : *sibBucket;
  checkInvariant(dhtKeyFor(donor.label) != parentKey,
                 "LhtIndex::tryMerge: both children named to parent");

  if (opts_.crashConsistentSplits) {
    // Durable merge state machine: step 1 stages a copy of the donor's
    // records as a MergeIntent inside the absorber (the records are in the
    // DHT before anything is destroyed), steps 2–3 run in completeMerge
    // (delete donor, commit absorber as the parent leaf). A crash or lost
    // reply between any two steps is repaired by the next reader of the
    // absorber.
    if (!absorber.clean() || !donor.clean()) return false;
    MergeIntent intent{donor.label, donor.records, newToken()};
    bool staged = false;
    applyBucket(parentKey, [&](std::optional<LeafBucket>& ob) {
      checkInvariant(ob.has_value(), "LhtIndex::tryMerge: absorber vanished");
      LeafBucket& b = *ob;
      if (b.mergeIntent && b.mergeIntent->token == intent.token) {
        staged = true;  // lost-reply retry: our earlier execution landed
        return false;
      }
      staged = false;
      if (!b.clean() || b.label != absorber.label) return false;
      b.mergeIntent = intent;
      b.epoch += 1;
      staged = true;
      return true;
    });
    chargeMaintenance(1, 0);
    if (!staged) return false;
    cost::OpStats st;
    completeMerge(parentKey, intent, st);
    noteMerge();
    return true;
  }

  // Drop the donor (its peer ships the records), then rewrite the absorber
  // in place as the parent leaf.
  std::vector<index::Record> moving;
  applyBucket(dhtKeyFor(donor.label), [&](std::optional<LeafBucket>& ob) {
    checkInvariant(ob.has_value(), "LhtIndex::tryMerge: donor vanished");
    checkInvariant(ob->label == donor.label, "LhtIndex::tryMerge: donor stale");
    moving = std::move(ob->records);
    ob.reset();  // erase
    return true;
  });
  applyBucket(parentKey, [&](std::optional<LeafBucket>& ob) {
    checkInvariant(ob.has_value(), "LhtIndex::tryMerge: absorber vanished");
    ob->label = parent;
    ob->records.insert(ob->records.end(), std::make_move_iterator(moving.begin()),
                       std::make_move_iterator(moving.end()));
    return true;
  });
  chargeMaintenance(2, donor.records.size());
  noteMerge();
  dropCached(parent.interval());
  return true;
}

// ---------------------------------------------------------------------------
// Exact-match query
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::find(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::find: key outside [0,1]");
  obs::SpanScope span("lht.find", "lht");
  auto found = lookupInternal(key);
  if (!found.bucket) {
    // Same defensive fallback as insert: a null bucket here would read as
    // "key absent", which is an answer, not a shrug — so exhaust the
    // linear walk before claiming it.
    auto linear = lookupLinearRef(key);
    linear.stats += found.stats;
    found = std::move(linear);
  }
  index::FindResult result;
  result.stats = found.stats;
  chargeQuery(found.stats.dhtLookups);
  if (found.bucket) {
    for (const auto& r : found.bucket->records) {
      if (r.key == key) {
        result.record = r;
        break;
      }
    }
  }
  noteOp("lht.find", result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Range queries (Algorithms 3 and 4)
// ---------------------------------------------------------------------------

Label LhtIndex::computeLca(const Interval& range) const {
  Label node = Label::root();
  while (node.length() < opts_.maxDepth) {
    const Interval iv = node.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    if (range.hi <= mid) {
      node = node.child(0);
    } else if (range.lo >= mid) {
      node = node.child(1);
    } else {
      break;
    }
  }
  return node;
}

u64 LhtIndex::fetchSubtreeEntry(const Label& branch, BucketRef& out,
                                cost::OpStats& st) {
  // A lookup of the branch label itself reaches the subtree's entry leaf
  // when the branch is internal; when the branch is itself a leaf the
  // lookup fails — the paper's "at most one failed DHT-lookup" — and the
  // leaf sits under its own name instead.
  out = getBucketRef(branch.str(), st);
  if (out) return 1;
  out = getBucketRef(dhtKeyFor(branch), st);
  return 2;
}

std::vector<LhtIndex::ForwardTarget> LhtIndex::forwardTargets(
    const LeafBucket& bucket, const Interval& range) const {
  std::vector<ForwardTarget> targets;
  const Interval mine = bucket.label.interval();

  // Sweep right: cover (mine.hi, range.hi) through the right branch nodes
  // beta_1, beta_2, ... of the local tree. All fully covered branches are
  // forwarded in parallel (the local tree names them all at once); only the
  // final, partially covered branch may need the two-step entry.
  if (range.hi > mine.hi) {
    Label beta = bucket.label;
    while (!beta.isRightmostPath()) {
      beta = rightNeighbor(beta);
      const Interval inv = beta.interval();
      if (inv.lo >= range.hi) break;
      if (inv.hi <= range.hi) {
        targets.push_back(ForwardTarget{beta, inv, true});
      } else {
        targets.push_back(ForwardTarget{beta, inv.intersect(range), false});
        break;
      }
    }
  }

  // Sweep left: the mirror image via the left neighbor function.
  if (range.lo < mine.lo) {
    Label beta = bucket.label;
    while (!beta.isLeftmostPath()) {
      beta = leftNeighbor(beta);
      const Interval inv = beta.interval();
      if (inv.hi <= range.lo) break;
      if (inv.lo >= range.lo) {
        targets.push_back(ForwardTarget{beta, inv, true});
      } else {
        targets.push_back(ForwardTarget{beta, inv.intersect(range), false});
        break;
      }
    }
  }
  return targets;
}

u64 LhtIndex::forwardRange(const LeafBucket& bucket, const Interval& range,
                           std::vector<index::Record>& out, cost::OpStats& st) {
  st.bucketsTouched += 1;
  for (const auto& r : bucket.records) {
    if (range.contains(r.key)) out.push_back(r);
  }
  u64 steps = 0;
  for (const auto& t : forwardTargets(bucket, range)) {
    BucketRef nb;
    u64 hops = 0;
    if (t.covered) {
      // tau_i fully inside the range: one hop to its rightmost (resp.
      // leftmost) leaf, which is the leaf named name(beta). In a quiescent
      // tree this never fails.
      nb = getBucketRef(dhtKeyFor(t.branch), st);
      hops = 1;
    } else {
      // beta_k: partially covered; enter at its boundary leaf.
      hops = fetchSubtreeEntry(t.branch, nb, st);
    }
    if (!nb) {
      // A concurrent split/merge relocated the branch's entry leaf between
      // our read of `bucket` and this probe. Re-resolve through the
      // repairing lookup (it finishes any half-done structural change in
      // the way) and continue the sweep from whatever leaf covers the
      // clip's lower bound; collection stays filtered by the clip, so
      // nothing is double-counted.
      nb = resolveRangeEntry(t.clip, hops, st);
    }
    steps = std::max(steps, hops + forwardRange(*nb, t.clip, out, st));
  }
  return steps;
}

LhtIndex::BucketRef LhtIndex::resolveRangeEntry(const Interval& clip,
                                                u64& hops, cost::OpStats& st) {
  auto found = lookupInternal(clip.lo);
  checkInvariant(found.bucket != nullptr, "forwardRange: unresolvable branch");
  st.dhtLookups += found.stats.dhtLookups;
  hops += found.stats.parallelSteps;
  return std::move(found.bucket);
}

void LhtIndex::expandBucket(const LeafBucket& bucket, const Interval& clip,
                            std::vector<FanoutTask>& next,
                            std::vector<index::Record>& out, cost::OpStats& st) {
  st.bucketsTouched += 1;
  for (const auto& r : bucket.records) {
    if (clip.contains(r.key)) out.push_back(r);
  }
  for (const auto& t : forwardTargets(bucket, clip)) {
    next.push_back(FanoutTask{t.branch, t.clip, t.covered, false});
  }
}

u64 LhtIndex::runFanoutRounds(std::vector<FanoutTask> frontier,
                              std::vector<index::Record>& out,
                              cost::OpStats& st) {
  u64 rounds = 0;
  while (!frontier.empty()) {
    rounds += 1;
    std::vector<std::string> keys;
    keys.reserve(frontier.size());
    for (const auto& t : frontier) {
      keys.push_back(t.covered || t.retryUnderName ? dhtKeyFor(t.branch)
                                                   : t.branch.str());
    }
    auto replies = dht_.multiGet(keys);
    st.dhtLookups += keys.size();
    std::vector<FanoutTask> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      FanoutTask& t = frontier[i];
      auto& reply = replies[i];
      if (!reply.ok) {
        throw dht::DhtError("LhtIndex: range fan-out entry failed: " + reply.error);
      }
      if (!reply.value.has_value()) {
        if (t.covered || t.retryUnderName) {
          // A concurrent split/merge relocated this branch's entry leaf
          // mid-fan-out; re-resolve through the repairing lookup and
          // continue from the leaf covering the clip's lower bound.
          u64 hops = 0;
          auto nb = resolveRangeEntry(t.clip, hops, st);
          expandBucket(*nb, t.clip, next, out, st);
          continue;
        }
        // The partial branch is itself a leaf (the paper's one failed
        // DHT-lookup): re-fetch it under name(branch) next round. The
        // extra round mirrors the sequential path's extra hop.
        t.retryUnderName = true;
        next.push_back(t);
        continue;
      }
      auto bucket = store_.decode(keys[i], *reply.value);
      noteLeaf(*bucket);
      expandBucket(*bucket, t.clip, next, out, st);
    }
    frontier = std::move(next);
  }
  return rounds;
}

u64 LhtIndex::forwardRangeBatched(const LeafBucket& entry, const Interval& range,
                                  std::vector<index::Record>& out,
                                  cost::OpStats& st) {
  std::vector<FanoutTask> frontier;
  expandBucket(entry, range, frontier, out, st);
  return runFanoutRounds(std::move(frontier), out, st);
}

index::RangeResult LhtIndex::rangeQuery(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "LhtIndex::rangeQuery: bad bounds");
  obs::SpanScope span("lht.rangeQuery", "lht");
  span.arg("lo", lo);
  span.arg("hi", hi);
  const Interval range{lo, hi};

  // Algorithm 4: jump to the range's lowest common ancestor.
  const Label lca = computeLca(range);
  auto entry = getBucketRef(dhtKeyFor(lca), result.stats);
  u64 steps = 1;

  if (!entry) {
    // Case 1: the whole range lies inside a single leaf; resolve with an
    // exact lookup of the lower bound.
    auto found = lookupInternal(lo);
    checkInvariant(found.bucket != nullptr, "rangeQuery: tree hole");
    result.stats.dhtLookups += found.stats.dhtLookups;
    steps += found.stats.parallelSteps;
    result.stats.bucketsTouched += 1;
    for (const auto& r : found.bucket->records) {
      if (range.contains(r.key)) result.records.push_back(r);
    }
  } else if (entry->label.interval().overlaps(range)) {
    // Case 2: the entry leaf holds one of the range bounds; the recursive
    // forwarding strategy applies directly.
    steps += opts_.batchFanout
                 ? forwardRangeBatched(*entry, range, result.records, result.stats)
                 : forwardRange(*entry, range, result.records, result.stats);
  } else {
    // Case 3: the entry leaf lies outside the range; both halves of the
    // LCA contain part of it and are processed in parallel.
    const Interval iv = lca.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    if (opts_.batchFanout) {
      std::vector<FanoutTask> frontier;
      frontier.push_back(
          FanoutTask{lca.child(0), range.intersect({iv.lo, mid}), false, false});
      frontier.push_back(
          FanoutTask{lca.child(1), range.intersect({mid, iv.hi}), false, false});
      steps += runFanoutRounds(std::move(frontier), result.records, result.stats);
    } else {
      u64 half = 0;
      BucketRef nb;
      Interval clip = range.intersect({iv.lo, mid});
      u64 hops = fetchSubtreeEntry(lca.child(0), nb, result.stats);
      if (!nb) nb = resolveRangeEntry(clip, hops, result.stats);
      half = std::max(half, hops + forwardRange(*nb, clip, result.records,
                                                result.stats));
      clip = range.intersect({mid, iv.hi});
      hops = fetchSubtreeEntry(lca.child(1), nb, result.stats);
      if (!nb) nb = resolveRangeEntry(clip, hops, result.stats);
      half = std::max(half, hops + forwardRange(*nb, clip, result.records,
                                                result.stats));
      steps += half;
    }
  }

  result.stats.parallelSteps = steps;
  chargeQuery(result.stats.dhtLookups);
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  noteOp("lht.rangeQuery", result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Min/Max (Theorem 3)
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::minRecord() {
  index::FindResult result;
  obs::SpanScope span("lht.minRecord", "lht");
  // Theorem 3: the leaf holding the smallest key is labelled #00* and is
  // therefore named "#": one DHT-lookup.
  auto bucket = getBucketRef("#", result.stats);
  checkInvariant(bucket != nullptr, "minRecord: leftmost leaf missing");
  // Deletions may have emptied the leftmost leaf; sweep right (each hop one
  // further DHT-lookup) until a record shows up.
  while (bucket && bucket->records.empty() && !bucket->label.isRightmostPath()) {
    const Label beta = rightNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    bucket = std::move(nb);
  }
  if (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (best == nullptr || r.key < best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.minRecord", result.stats);
  return result;
}

index::FindResult LhtIndex::maxRecord() {
  index::FindResult result;
  obs::SpanScope span("lht.maxRecord", "lht");
  // Theorem 3: the leaf holding the largest key is labelled #01* and is
  // therefore named "#0". When the tree is a single leaf no node is named
  // "#0" and the root leaf (under "#") answers instead.
  auto bucket = getBucketRef("#0", result.stats);
  if (!bucket) bucket = getBucketRef("#", result.stats);
  checkInvariant(bucket != nullptr, "maxRecord: rightmost leaf missing");
  while (bucket && bucket->records.empty() && !bucket->label.isLeftmostPath()) {
    const Label beta = leftNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    bucket = std::move(nb);
  }
  if (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (best == nullptr || r.key > best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.maxRecord", result.stats);
  return result;
}

index::RangeResult LhtIndex::topMin(size_t k) {
  index::RangeResult result;
  if (k == 0) return result;
  obs::SpanScope span("lht.topMin", "lht");
  span.arg("k", static_cast<u64>(k));
  // Sweep leaves left to right: every record in a later bucket is larger
  // than every record in an earlier one, so we may stop as soon as k
  // records are collected.
  auto bucket = getBucketRef("#", result.stats);
  checkInvariant(bucket != nullptr, "topMin: leftmost leaf missing");
  for (;;) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : bucket->records) result.records.push_back(r);
    if (result.records.size() >= k || bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb != nullptr, "topMin: broken leaf chain");
    bucket = std::move(nb);
  }
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  if (result.records.size() > k) result.records.resize(k);
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.topMin", result.stats);
  return result;
}

index::RangeResult LhtIndex::topMax(size_t k) {
  index::RangeResult result;
  if (k == 0) return result;
  obs::SpanScope span("lht.topMax", "lht");
  span.arg("k", static_cast<u64>(k));
  auto bucket = getBucketRef("#0", result.stats);
  if (!bucket) bucket = getBucketRef("#", result.stats);  // single-leaf tree
  checkInvariant(bucket != nullptr, "topMax: rightmost leaf missing");
  for (;;) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : bucket->records) result.records.push_back(r);
    if (result.records.size() >= k || bucket->label.isLeftmostPath()) break;
    const Label beta = leftNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb != nullptr, "topMax: broken leaf chain");
    bucket = std::move(nb);
  }
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  if (result.records.size() > k) {
    result.records.erase(result.records.begin(),
                         result.records.end() - static_cast<long>(k));
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.topMax", result.stats);
  return result;
}

index::FindResult LhtIndex::quantileQuery(double q) {
  checkInvariant(q >= 0.0 && q <= 1.0, "LhtIndex::quantileQuery: q outside [0,1]");
  index::FindResult result;
  if (recordCount_ == 0) return result;
  obs::SpanScope span("lht.quantileQuery", "lht");
  span.arg("q", q);
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(recordCount_ - 1));

  // Sweep from whichever end is nearer to the target rank.
  const bool fromLeft = rank <= recordCount_ / 2;
  size_t remaining = fromLeft ? rank : recordCount_ - 1 - rank;

  auto bucket = fromLeft ? getBucketRef("#", result.stats)
                         : getBucketRef("#0", result.stats);
  if (!fromLeft && !bucket) bucket = getBucketRef("#", result.stats);
  checkInvariant(bucket != nullptr, "quantileQuery: end bucket missing");
  for (;;) {
    if (bucket->records.size() > remaining) {
      // The target rank lies in this bucket: order its records locally.
      std::vector<index::Record> recs = bucket->records;
      std::sort(recs.begin(), recs.end(), index::recordLess);
      result.record =
          fromLeft ? recs[remaining] : recs[recs.size() - 1 - remaining];
      break;
    }
    remaining -= bucket->records.size();
    const bool atEnd = fromLeft ? bucket->label.isRightmostPath()
                                : bucket->label.isLeftmostPath();
    checkInvariant(!atEnd, "quantileQuery: ran past the end (count drift)");
    const Label beta = fromLeft ? rightNeighbor(bucket->label)
                                : leftNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb != nullptr, "quantileQuery: broken leaf chain");
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  chargeQuery(result.stats.dhtLookups);
  noteOp("lht.quantileQuery", result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

void LhtIndex::forEachBucket(const std::function<void(const LeafBucket&)>& fn) {
  cost::OpStats scratch;
  auto bucket = getBucketRef("#", scratch);
  checkInvariant(bucket != nullptr, "forEachBucket: leftmost leaf missing");
  for (;;) {
    fn(*bucket);
    if (bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    BucketRef nb;
    fetchSubtreeEntry(beta, nb, scratch);
    checkInvariant(nb != nullptr, "forEachBucket: broken leaf chain");
    bucket = std::move(nb);
  }
}

}  // namespace lht::core
