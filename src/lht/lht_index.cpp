#include "lht/lht_index.h"

#include <algorithm>

#include "common/logging.h"
#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {

using common::checkInvariant;
using common::Interval;
using common::Label;
using common::u32;
using common::u64;

namespace {

/// Decodes a stored bucket, failing loudly on corruption: a malformed value
/// under an index key means the index layer itself wrote garbage.
LeafBucket decodeBucket(const dht::Value& v) {
  auto b = LeafBucket::deserialize(v);
  checkInvariant(b.has_value(), "LhtIndex: corrupt bucket value in DHT");
  return std::move(*b);
}

}  // namespace

LhtIndex::LhtIndex(dht::Dht& dht, Options options)
    : dht_(dht), opts_(options), tokenRng_(options.clientSeed, 0x70CE17u) {
  checkInvariant(opts_.thetaSplit >= 2, "LhtIndex: thetaSplit must be >= 2");
  if (opts_.maxDepth > Label::kMaxBits) opts_.maxDepth = Label::kMaxBits;
  checkInvariant(opts_.maxDepth >= 2, "LhtIndex: maxDepth must be >= 2");
  if (opts_.mergeThreshold == 0) opts_.mergeThreshold = opts_.thetaSplit;
  if (!opts_.attachExisting) {
    // The empty index: a single leaf "#0" covering [0,1), named "#".
    LeafBucket root{Label::root(), {}};
    dht_.storeDirect(dhtKeyFor(root.label), root.serialize());
  }
}

u64 LhtIndex::newToken() {
  for (;;) {
    const u64 t = tokenRng_.next64();
    if (t != 0) return t;
  }
}

std::optional<LeafBucket> LhtIndex::getBucket(const std::string& key,
                                              cost::OpStats& st) {
  st.dhtLookups += 1;
  auto v = dht_.get(key);
  if (!v) return std::nullopt;
  return decodeBucket(*v);
}

bool LhtIndex::shouldSplit(const LeafBucket& b) const {
  if (b.effectiveSize(opts_.countLabelSlot) < opts_.thetaSplit) return false;
  return b.label.length() < opts_.maxDepth;
}

// ---------------------------------------------------------------------------
// Lookup (Algorithm 2) + lookup-triggered repair
// ---------------------------------------------------------------------------

LhtIndex::LookupOutcome LhtIndex::lookupInternal(double key) {
  LookupOutcome out;
  key = common::clampToUnit(key);  // 1.0 belongs to the rightmost cell
  const Label mu = Label::fromKey(key, opts_.maxDepth);

  // The search restarts whenever a repair changes the tree under it. Any
  // single restart completes at least one pending intent, and only a
  // bounded number of intents can exist on a root-to-leaf path, so the
  // restart budget is generous rather than load-bearing.
  for (u32 attempt = 0; attempt <= 2 * opts_.maxDepth + 2; ++attempt) {
    bool restart = false;
    u32 shorter = 1;             // candidate leaf-label bit lengths
    u32 longer = opts_.maxDepth; // (paper lengths 2..D+1 count the '#')
    bool useHint = opts_.useDepthHint && depthHint_ != 0;
    while (shorter <= longer) {
      u32 mid = (shorter + longer) / 2;
      if (useHint) {
        // First probe at the last successful depth; leaf depths concentrate,
        // so this usually resolves the search in one DHT-lookup.
        mid = std::clamp(depthHint_, shorter, longer);
        useHint = false;
      }
      const Label x = mu.prefix(mid);
      const Label nm = name(x);
      auto bucket = getBucket(nm.str(), out.stats);
      if (!bucket) {
        // No leaf is named nm: every prefix longer than nm shares this name
        // (they all extend nm by a run of x's last bit), so only lengths up
        // to |nm| remain candidates.
        longer = nm.length();
        if (longer < shorter) break;
        continue;
      }
      if (!bucket->clean()) {
        // A structural change died between steps here. Finish it and
        // re-run the search against the repaired tree.
        repairBucket(nm.str(), *bucket, out.stats);
        restart = true;
        break;
      }
      if (bucket->covers(key)) {
        depthHint_ = bucket->label.length();
        out.bucket = std::move(bucket);
        out.dhtKey = nm.str();
        break;
      }
      // The name is taken by a different leaf, so x (and every shorter
      // prefix, all being that leaf's ancestors) is internal; skip forward
      // past all prefixes sharing x's name.
      auto nn = nextName(x, mu);
      if (!nn) break;  // D was too small for the actual tree
      shorter = nn->length();
    }
    if (restart) continue;
    if (!out.bucket) {
      // The binary search fell into a hole — a leaf that should cover the
      // key is missing. If a half-finished split/merge is responsible, the
      // bucket holding its intent sits under one of the key's candidate
      // prefix names; probe them all and retry.
      if (repairProbe(key, out.stats)) continue;
    }
    break;
  }
  out.stats.parallelSteps = out.stats.dhtLookups;  // strictly sequential
  if (out.bucket) out.stats.bucketsTouched = 1;
  return out;
}

bool LhtIndex::repairProbe(double key, cost::OpStats& st) {
  repairStats_.holeProbes += 1;
  key = common::clampToUnit(key);
  const Label mu = Label::fromKey(key, opts_.maxDepth);
  bool repaired = false;
  std::string lastTried;
  for (u32 len = 1; len <= mu.length(); ++len) {
    const std::string nm = name(mu.prefix(len)).str();
    if (nm == lastTried) continue;
    lastTried = nm;
    auto bucket = getBucket(nm, st);
    if (bucket && !bucket->clean()) repaired |= repairBucket(nm, *bucket, st);
  }
  return repaired;
}

bool LhtIndex::repairBucket(const std::string& key, const LeafBucket& bucket,
                            cost::OpStats& st) {
  bool repaired = false;
  if (bucket.splitIntent) {
    completeSplit(key, *bucket.splitIntent, st);
    repairStats_.splitRepairs += 1;
    repaired = true;
  }
  if (bucket.mergeIntent) {
    completeMerge(key, *bucket.mergeIntent, st);
    repairStats_.mergeRepairs += 1;
    repaired = true;
  }
  return repaired;
}

void LhtIndex::completeSplit(const std::string& stayingKey,
                             const SplitIntent& intent, cost::OpStats& st) {
  // Step 2 of the split state machine: materialize the moved child under
  // its own key. Create-if-absent: if a bucket already lives there, a
  // previous attempt (possibly ours, its reply lost) already landed it —
  // and it may have absorbed newer inserts — so it is never overwritten.
  dht_.apply(dhtKeyFor(intent.movedLabel), [&](std::optional<dht::Value>& v) {
    if (v.has_value()) return;
    LeafBucket moved{intent.movedLabel, intent.moving};
    moved.epoch = 1;
    moved.markApplied(intent.token);
    v = moved.serialize();
  });
  st.dhtLookups += 1;
  meters_.maintenance.dhtLookups += 1;

  // Step 3: clear the intent from the staying child. Guarded by the
  // intent token so a stale retry cannot clear a newer intent.
  dht_.apply(stayingKey, [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "completeSplit: staying bucket vanished");
    LeafBucket b = decodeBucket(*v);
    if (b.splitIntent && b.splitIntent->token == intent.token) {
      b.splitIntent.reset();
      b.epoch += 1;
    }
    v = b.serialize();
  });
  st.dhtLookups += 1;
  meters_.maintenance.dhtLookups += 1;
}

void LhtIndex::completeMerge(const std::string& absorberKey,
                             const MergeIntent& intent, cost::OpStats& st) {
  const std::string donorKey = dhtKeyFor(intent.donorLabel);

  // The staged copy may be stale: if the donor still exists it could have
  // absorbed writes after the intent was recorded (a crash between the
  // staging and the delete, followed by normal traffic). Refresh the copy
  // from the live donor before destroying anything.
  auto donorNow = getBucket(donorKey, st);
  meters_.maintenance.dhtLookups += 1;
  u64 token = intent.token;
  if (donorNow && donorNow->label == intent.donorLabel) {
    if (donorNow->records != intent.moving) {
      token = newToken();
      dht_.apply(absorberKey, [&](std::optional<dht::Value>& v) {
        checkInvariant(v.has_value(), "completeMerge: absorber vanished");
        LeafBucket b = decodeBucket(*v);
        if (b.mergeIntent && b.mergeIntent->donorLabel == intent.donorLabel) {
          b.mergeIntent->moving = donorNow->records;
          b.mergeIntent->token = token;
          b.epoch += 1;
        }
        v = b.serialize();
      });
      st.dhtLookups += 1;
      meters_.maintenance.dhtLookups += 1;
    }
  }

  // Delete the donor (idempotent: only a bucket still carrying the donor
  // label is dropped; the staged copy is now authoritative).
  std::vector<index::Record> moving =
      donorNow && donorNow->label == intent.donorLabel ? donorNow->records
                                                       : intent.moving;
  dht_.apply(donorKey, [&](std::optional<dht::Value>& v) {
    if (!v.has_value()) return;
    LeafBucket b = decodeBucket(*v);
    if (b.label == intent.donorLabel) v.reset();
  });
  st.dhtLookups += 1;
  meters_.maintenance.dhtLookups += 1;

  // Commit: the absorber becomes the parent leaf and takes the records.
  dht_.apply(absorberKey, [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "completeMerge: absorber vanished");
    LeafBucket b = decodeBucket(*v);
    if (b.mergeIntent && b.mergeIntent->donorLabel == intent.donorLabel) {
      b.label = intent.donorLabel.parent();
      b.records.insert(b.records.end(),
                       std::make_move_iterator(moving.begin()),
                       std::make_move_iterator(moving.end()));
      b.mergeIntent.reset();
      b.epoch += 1;
    }
    v = b.serialize();
  });
  st.dhtLookups += 1;
  meters_.maintenance.dhtLookups += 1;
  meters_.maintenance.recordsMoved += moving.size();
}

size_t LhtIndex::repairSweep() {
  const RepairStats before = repairStats_;
  cost::OpStats scratch;
  double cursor = 0.0;
  size_t guard = 0;
  while (cursor < 1.0) {
    checkInvariant(++guard < 1u << 22, "repairSweep: runaway walk");
    auto out = lookupInternal(cursor);
    checkInvariant(out.bucket.has_value(), "repairSweep: unrecoverable hole");
    scratch += out.stats;
    cursor = out.bucket->label.interval().hi;
  }
  return static_cast<size_t>((repairStats_.splitRepairs - before.splitRepairs) +
                             (repairStats_.mergeRepairs - before.mergeRepairs));
}

LhtIndex::LookupOutcome LhtIndex::lookup(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::lookup: key outside [0,1]");
  return lookupInternal(key);
}

LhtIndex::LookupOutcome LhtIndex::lookupLinear(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::lookupLinear: bad key");
  LookupOutcome out;
  key = common::clampToUnit(key);
  const Label mu = Label::fromKey(key, opts_.maxDepth);
  std::string lastTried;
  for (u32 len = 1; len <= mu.length(); ++len) {
    const std::string nm = name(mu.prefix(len)).str();
    if (nm == lastTried) continue;  // same name as the previous prefix
    lastTried = nm;
    auto bucket = getBucket(nm, out.stats);
    if (bucket && bucket->covers(key)) {
      out.bucket = std::move(bucket);
      out.dhtKey = nm;
      break;
    }
  }
  out.stats.parallelSteps = out.stats.dhtLookups;
  if (out.bucket) out.stats.bucketsTouched = 1;
  return out;
}

// ---------------------------------------------------------------------------
// Insert (Sec. 5 + Algorithm 1)
// ---------------------------------------------------------------------------

index::UpdateResult LhtIndex::insert(const index::Record& record) {
  checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                 "LhtIndex::insert: key outside [0,1]");
  auto found = lookupInternal(record.key);
  if (!found.bucket) found = lookupLinear(record.key);  // defensive fallback
  checkInvariant(found.bucket.has_value(),
                 "LhtIndex::insert: tree does not cover the key (D too small?)");

  index::UpdateResult result;
  result.ok = true;
  result.stats = found.stats;
  meters_.insertion.dhtLookups += found.stats.dhtLookups;

  // Ship the record to the bucket's peer (the paper's "DHT-put towards
  // kappa") and, when the leaf saturates, run Algorithm 1 right there: the
  // local child overwrites the stored bucket in place, each remote child
  // is handed back for a single DHT-put. At most one split per insert
  // unless cascading splits are enabled (an ablation option).
  //
  // The apply is stamped with an idempotence token: if the substrate loses
  // the *reply* and a retry layer re-executes the mutator, the second
  // execution sees the token already recorded and leaves the bucket alone
  // — the record lands exactly once.
  //
  // With crashConsistentSplits the split does not hand the moved child to
  // the client: it is staged as a SplitIntent inside the rewritten bucket
  // (step 1), then materialized (step 2) and acknowledged (step 3) by
  // completeSplit. A crash between any two steps leaves a state any
  // reader can finish.
  std::vector<LeafBucket> remotes;
  std::optional<SplitIntent> pendingSplit;
  const u64 token = newToken();
  const u64 completionToken = newToken();
  const bool existed = dht_.apply(found.dhtKey, [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "LhtIndex::insert: bucket vanished");
    LeafBucket b = decodeBucket(*v);
    // A lost reply makes a retry layer re-execute this mutator; the token
    // check turns the re-execution into a no-op, and the outputs captured
    // by the execution that actually applied stay valid. The staleness
    // invariant only holds on the applying execution: once the first
    // execution split the bucket, the staying child no longer needs to
    // cover the key.
    if (!b.hasApplied(token)) {
      checkInvariant(b.covers(common::clampToUnit(record.key)),
                     "LhtIndex::insert: stale bucket");
      remotes.clear();
      b.records.push_back(record);
      b.markApplied(token);
      b.epoch += 1;
      // A bucket still carrying an intent defers its split to a later
      // insert, mirroring the paper's one-split-per-insert deferral.
      if (b.clean() && shouldSplit(b)) {
        if (opts_.allowCascadingSplits) {
          const SplitPolicy policy{opts_.thetaSplit, opts_.countLabelSlot,
                                   opts_.maxDepth};
          splitBucketRecursively(b, policy, remotes);
        } else if (opts_.crashConsistentSplits) {
          LeafBucket moved = splitBucket(b);
          b.splitIntent = SplitIntent{moved.label, std::move(moved.records),
                                      completionToken};
        } else {
          remotes.push_back(splitBucket(b));
        }
      }
    }
    pendingSplit = b.splitIntent;
    v = b.serialize();
  });
  checkInvariant(existed, "LhtIndex::insert: apply on missing bucket");
  meters_.insertion.dhtLookups += 1;
  meters_.insertion.recordsMoved += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ += 1;

  for (const LeafBucket& remote : remotes) {
    // Theorem 2: each remote child is named exactly its pre-split label.
    dht_.put(dhtKeyFor(remote.label), remote.serialize());
    meters_.maintenance.dhtLookups += 1;
    meters_.maintenance.recordsMoved += remote.records.size();
    meters_.maintenance.splits += 1;
    result.splitOrMerged = true;
  }
  if (pendingSplit) {
    const size_t movedCount = pendingSplit->moving.size();
    completeSplit(found.dhtKey, *pendingSplit, result.stats);
    meters_.maintenance.recordsMoved += movedCount;
    meters_.maintenance.splits += 1;
    result.splitOrMerged = true;
    meters_.alpha.record(
        static_cast<double>(movedCount + (opts_.countLabelSlot ? 1 : 0)) /
        static_cast<double>(opts_.thetaSplit));
  }
  if (remotes.size() == 1) {
    const double remoteSize =
        static_cast<double>(remotes.front().effectiveSize(opts_.countLabelSlot));
    meters_.alpha.record(remoteSize / static_cast<double>(opts_.thetaSplit));
  }
  return result;
}

index::UpdateResult LhtIndex::insertBatch(std::vector<index::Record> records) {
  index::UpdateResult result;
  result.ok = true;
  if (records.empty()) return result;
  for (const auto& r : records) {
    checkInvariant(r.key >= 0.0 && r.key <= 1.0,
                   "LhtIndex::insertBatch: key outside [0,1]");
  }
  std::sort(records.begin(), records.end(), index::recordLess);
  const SplitPolicy policy{opts_.thetaSplit, opts_.countLabelSlot, opts_.maxDepth};

  // One lookup + one apply per *touched leaf*: consecutive sorted records
  // that land in the same leaf ride along for free.
  size_t i = 0;
  while (i < records.size()) {
    auto found = lookupInternal(records[i].key);
    if (!found.bucket) found = lookupLinear(records[i].key);
    checkInvariant(found.bucket.has_value(), "LhtIndex::insertBatch: tree hole");
    meters_.insertion.dhtLookups += found.stats.dhtLookups;
    result.stats.dhtLookups += found.stats.dhtLookups;

    const double leafHi = found.bucket->label.interval().hi;
    size_t j = i;
    while (j < records.size() && common::clampToUnit(records[j].key) < leafHi) ++j;

    std::vector<LeafBucket> remotes;
    const u64 token = newToken();
    dht_.apply(found.dhtKey, [&](std::optional<dht::Value>& v) {
      checkInvariant(v.has_value(), "LhtIndex::insertBatch: bucket vanished");
      LeafBucket b = decodeBucket(*v);
      if (!b.hasApplied(token)) {
        remotes.clear();
        b.records.insert(
            b.records.end(),
            std::make_move_iterator(records.begin() + static_cast<long>(i)),
            std::make_move_iterator(records.begin() + static_cast<long>(j)));
        b.markApplied(token);
        b.epoch += 1;
        splitBucketRecursively(b, policy, remotes);
        v = b.serialize();
      }
    });
    meters_.insertion.dhtLookups += 1;
    meters_.insertion.recordsMoved += j - i;
    result.stats.dhtLookups += 1;
    recordCount_ += j - i;

    for (const auto& rb : remotes) {
      dht_.put(dhtKeyFor(rb.label), rb.serialize());
      meters_.maintenance.dhtLookups += 1;
      meters_.maintenance.recordsMoved += rb.records.size();
      meters_.maintenance.splits += 1;
      result.splitOrMerged = true;
    }
    i = j;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  return result;
}

// ---------------------------------------------------------------------------
// Successor / predecessor queries (extension)
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::successorQuery(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::successorQuery: bad key");
  auto found = lookupInternal(key);
  checkInvariant(found.bucket.has_value(), "successorQuery: tree hole");
  index::FindResult result;
  result.stats = found.stats;
  std::optional<LeafBucket> bucket = std::move(found.bucket);
  while (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (r.key >= key && (best == nullptr || r.key < best->key)) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
    if (bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);  // leftmost leaf of the next subtree
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult LhtIndex::predecessorQuery(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::predecessorQuery: bad key");
  auto found = lookupInternal(key);
  checkInvariant(found.bucket.has_value(), "predecessorQuery: tree hole");
  index::FindResult result;
  result.stats = found.stats;
  std::optional<LeafBucket> bucket = std::move(found.bucket);
  while (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (r.key < key && (best == nullptr || r.key > best->key)) best = &r;
    }
    if (best != nullptr) {
      result.record = *best;
      break;
    }
    if (bucket->label.isLeftmostPath()) break;
    const Label beta = leftNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);  // rightmost leaf of the previous subtree
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

// ---------------------------------------------------------------------------
// Erase + merge (the dual of split)
// ---------------------------------------------------------------------------

index::UpdateResult LhtIndex::erase(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::erase: key outside [0,1]");
  auto found = lookupInternal(key);
  if (!found.bucket) found = lookupLinear(key);
  checkInvariant(found.bucket.has_value(), "LhtIndex::erase: tree hole");

  index::UpdateResult result;
  result.stats = found.stats;
  meters_.insertion.dhtLookups += found.stats.dhtLookups;

  size_t removed = 0;
  size_t remainingEffective = 0;
  Label bucketLabel;
  const u64 token = newToken();
  dht_.apply(found.dhtKey, [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "LhtIndex::erase: bucket vanished");
    LeafBucket b = decodeBucket(*v);
    // Token-guarded like insert: a lost-reply retry must neither remove
    // twice (harmless here) nor clobber the outputs of the execution that
    // actually removed the records.
    if (!b.hasApplied(token)) {
      auto it = std::remove_if(b.records.begin(), b.records.end(),
                               [&](const index::Record& r) { return r.key == key; });
      removed = static_cast<size_t>(b.records.end() - it);
      b.records.erase(it, b.records.end());
      b.markApplied(token);
      b.epoch += 1;
      remainingEffective = b.effectiveSize(opts_.countLabelSlot);
      bucketLabel = b.label;
      v = b.serialize();
    }
  });
  meters_.insertion.dhtLookups += 1;
  result.stats.dhtLookups += 1;
  result.stats.parallelSteps += 1;
  recordCount_ -= std::min(removed, recordCount_);
  result.ok = removed > 0;

  if (result.ok && opts_.enableMerge && bucketLabel.length() >= 2 &&
      remainingEffective < opts_.mergeThreshold) {
    result.splitOrMerged = tryMerge(bucketLabel);
  }
  return result;
}

bool LhtIndex::tryMerge(const Label& bucketLabel) {
  const Label sib = bucketLabel.sibling();
  // The sibling participates only if it is itself a leaf, i.e. a bucket
  // labelled exactly `sib` sits under name(sib).
  cost::OpStats probe;
  auto sibBucket = getBucket(dhtKeyFor(sib), probe);
  meters_.maintenance.dhtLookups += probe.dhtLookups;
  if (!sibBucket || sibBucket->label != sib) return false;

  // Refresh our own bucket to get an exact combined size.
  cost::OpStats self;
  auto ownBucket = getBucket(dhtKeyFor(bucketLabel), self);
  meters_.maintenance.dhtLookups += self.dhtLookups;
  if (!ownBucket || ownBucket->label != bucketLabel) return false;

  const size_t combined = ownBucket->records.size() + sibBucket->records.size() +
                          (opts_.countLabelSlot ? 1 : 0);
  if (combined >= opts_.mergeThreshold) return false;

  // The merged leaf is the parent; one child's bucket already lives under
  // the parent's name (the reverse of Theorem 2) and absorbs; the other is
  // the donor and is dropped, its records moving over.
  const Label parent = bucketLabel.parent();
  const std::string parentKey = dhtKeyFor(parent);
  const bool ownIsAbsorber = dhtKeyFor(bucketLabel) == parentKey;
  const LeafBucket& donor = ownIsAbsorber ? *sibBucket : *ownBucket;
  const LeafBucket& absorber = ownIsAbsorber ? *ownBucket : *sibBucket;
  checkInvariant(dhtKeyFor(donor.label) != parentKey,
                 "LhtIndex::tryMerge: both children named to parent");

  if (opts_.crashConsistentSplits) {
    // Durable merge state machine: step 1 stages a copy of the donor's
    // records as a MergeIntent inside the absorber (the records are in the
    // DHT before anything is destroyed), steps 2–3 run in completeMerge
    // (delete donor, commit absorber as the parent leaf). A crash or lost
    // reply between any two steps is repaired by the next reader of the
    // absorber.
    if (!absorber.clean() || !donor.clean()) return false;
    MergeIntent intent{donor.label, donor.records, newToken()};
    bool staged = false;
    dht_.apply(parentKey, [&](std::optional<dht::Value>& v) {
      checkInvariant(v.has_value(), "LhtIndex::tryMerge: absorber vanished");
      LeafBucket b = decodeBucket(*v);
      if (b.mergeIntent && b.mergeIntent->token == intent.token) {
        staged = true;  // lost-reply retry: our earlier execution landed
        return;
      }
      staged = false;
      if (!b.clean() || b.label != absorber.label) return;
      b.mergeIntent = intent;
      b.epoch += 1;
      v = b.serialize();
      staged = true;
    });
    meters_.maintenance.dhtLookups += 1;
    if (!staged) return false;
    cost::OpStats st;
    completeMerge(parentKey, intent, st);
    meters_.maintenance.merges += 1;
    return true;
  }

  // Drop the donor (its peer ships the records), then rewrite the absorber
  // in place as the parent leaf.
  std::vector<index::Record> moving;
  dht_.apply(dhtKeyFor(donor.label), [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "LhtIndex::tryMerge: donor vanished");
    LeafBucket b = decodeBucket(*v);
    checkInvariant(b.label == donor.label, "LhtIndex::tryMerge: donor stale");
    moving = std::move(b.records);
    v.reset();  // erase
  });
  dht_.apply(parentKey, [&](std::optional<dht::Value>& v) {
    checkInvariant(v.has_value(), "LhtIndex::tryMerge: absorber vanished");
    LeafBucket b = decodeBucket(*v);
    b.label = parent;
    b.records.insert(b.records.end(), std::make_move_iterator(moving.begin()),
                     std::make_move_iterator(moving.end()));
    v = b.serialize();
  });
  meters_.maintenance.dhtLookups += 2;
  meters_.maintenance.recordsMoved += donor.records.size();
  meters_.maintenance.merges += 1;
  return true;
}

// ---------------------------------------------------------------------------
// Exact-match query
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::find(double key) {
  checkInvariant(key >= 0.0 && key <= 1.0, "LhtIndex::find: key outside [0,1]");
  auto found = lookupInternal(key);
  index::FindResult result;
  result.stats = found.stats;
  meters_.query.dhtLookups += found.stats.dhtLookups;
  if (found.bucket) {
    for (const auto& r : found.bucket->records) {
      if (r.key == key) {
        result.record = r;
        break;
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Range queries (Algorithms 3 and 4)
// ---------------------------------------------------------------------------

Label LhtIndex::computeLca(const Interval& range) const {
  Label node = Label::root();
  while (node.length() < opts_.maxDepth) {
    const Interval iv = node.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    if (range.hi <= mid) {
      node = node.child(0);
    } else if (range.lo >= mid) {
      node = node.child(1);
    } else {
      break;
    }
  }
  return node;
}

u64 LhtIndex::fetchSubtreeEntry(const Label& branch, std::optional<LeafBucket>& out,
                                cost::OpStats& st) {
  // A lookup of the branch label itself reaches the subtree's entry leaf
  // when the branch is internal; when the branch is itself a leaf the
  // lookup fails — the paper's "at most one failed DHT-lookup" — and the
  // leaf sits under its own name instead.
  out = getBucket(branch.str(), st);
  if (out) return 1;
  out = getBucket(dhtKeyFor(branch), st);
  return 2;
}

u64 LhtIndex::forwardRange(const LeafBucket& bucket, const Interval& range,
                           std::vector<index::Record>& out, cost::OpStats& st) {
  st.bucketsTouched += 1;
  for (const auto& r : bucket.records) {
    if (range.contains(r.key)) out.push_back(r);
  }
  const Interval mine = bucket.label.interval();
  u64 steps = 0;

  // Sweep right: cover (mine.hi, range.hi) through the right branch nodes
  // beta_1, beta_2, ... of the local tree. All fully covered branches are
  // forwarded in parallel (the local tree names them all at once); only the
  // final, partially covered branch may need the two-step entry.
  if (range.hi > mine.hi) {
    Label beta = bucket.label;
    while (!beta.isRightmostPath()) {
      beta = rightNeighbor(beta);
      const Interval inv = beta.interval();
      if (inv.lo >= range.hi) break;
      if (inv.hi <= range.hi) {
        // tau_i fully inside the range: one hop to its rightmost leaf,
        // which is the leaf named name(beta). Never fails.
        auto nb = getBucket(dhtKeyFor(beta), st);
        checkInvariant(nb.has_value(), "forwardRange: missing covered branch");
        steps = std::max(steps, 1 + forwardRange(*nb, inv, out, st));
      } else {
        // beta_k: partially covered; enter at its leftmost leaf.
        std::optional<LeafBucket> nb;
        const u64 hops = fetchSubtreeEntry(beta, nb, st);
        checkInvariant(nb.has_value(), "forwardRange: missing final branch");
        steps = std::max(steps, hops + forwardRange(*nb, inv.intersect(range), out, st));
        break;
      }
    }
  }

  // Sweep left: the mirror image via the left neighbor function.
  if (range.lo < mine.lo) {
    Label beta = bucket.label;
    while (!beta.isLeftmostPath()) {
      beta = leftNeighbor(beta);
      const Interval inv = beta.interval();
      if (inv.hi <= range.lo) break;
      if (inv.lo >= range.lo) {
        // fully inside: one hop to the subtree's leftmost leaf, the leaf
        // named name(beta).
        auto nb = getBucket(dhtKeyFor(beta), st);
        checkInvariant(nb.has_value(), "forwardRange: missing covered branch");
        steps = std::max(steps, 1 + forwardRange(*nb, inv, out, st));
      } else {
        std::optional<LeafBucket> nb;
        const u64 hops = fetchSubtreeEntry(beta, nb, st);
        checkInvariant(nb.has_value(), "forwardRange: missing final branch");
        steps = std::max(steps, hops + forwardRange(*nb, inv.intersect(range), out, st));
        break;
      }
    }
  }
  return steps;
}

index::RangeResult LhtIndex::rangeQuery(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  checkInvariant(lo >= 0.0 && hi <= 1.0, "LhtIndex::rangeQuery: bad bounds");
  const Interval range{lo, hi};

  // Algorithm 4: jump to the range's lowest common ancestor.
  const Label lca = computeLca(range);
  auto entry = getBucket(dhtKeyFor(lca), result.stats);
  u64 steps = 1;

  if (!entry) {
    // Case 1: the whole range lies inside a single leaf; resolve with an
    // exact lookup of the lower bound.
    auto found = lookupInternal(lo);
    checkInvariant(found.bucket.has_value(), "rangeQuery: tree hole");
    result.stats.dhtLookups += found.stats.dhtLookups;
    steps += found.stats.parallelSteps;
    result.stats.bucketsTouched += 1;
    for (const auto& r : found.bucket->records) {
      if (range.contains(r.key)) result.records.push_back(r);
    }
  } else if (entry->label.interval().overlaps(range)) {
    // Case 2: the entry leaf holds one of the range bounds; the recursive
    // forwarding strategy applies directly.
    steps += forwardRange(*entry, range, result.records, result.stats);
  } else {
    // Case 3: the entry leaf lies outside the range; both halves of the
    // LCA contain part of it and are processed in parallel.
    const Interval iv = lca.interval();
    const double mid = 0.5 * (iv.lo + iv.hi);
    u64 half = 0;
    std::optional<LeafBucket> nb;
    u64 hops = fetchSubtreeEntry(lca.child(0), nb, result.stats);
    checkInvariant(nb.has_value(), "rangeQuery: missing left half");
    half = std::max(half, hops + forwardRange(*nb, range.intersect({iv.lo, mid}),
                                              result.records, result.stats));
    hops = fetchSubtreeEntry(lca.child(1), nb, result.stats);
    checkInvariant(nb.has_value(), "rangeQuery: missing right half");
    half = std::max(half, hops + forwardRange(*nb, range.intersect({mid, iv.hi}),
                                              result.records, result.stats));
    steps += half;
  }

  result.stats.parallelSteps = steps;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

// ---------------------------------------------------------------------------
// Min/Max (Theorem 3)
// ---------------------------------------------------------------------------

index::FindResult LhtIndex::minRecord() {
  index::FindResult result;
  // Theorem 3: the leaf holding the smallest key is labelled #00* and is
  // therefore named "#": one DHT-lookup.
  auto bucket = getBucket("#", result.stats);
  checkInvariant(bucket.has_value(), "minRecord: leftmost leaf missing");
  // Deletions may have emptied the leftmost leaf; sweep right (each hop one
  // further DHT-lookup) until a record shows up.
  while (bucket && bucket->records.empty() && !bucket->label.isRightmostPath()) {
    const Label beta = rightNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    bucket = std::move(nb);
  }
  if (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (best == nullptr || r.key < best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult LhtIndex::maxRecord() {
  index::FindResult result;
  // Theorem 3: the leaf holding the largest key is labelled #01* and is
  // therefore named "#0". When the tree is a single leaf no node is named
  // "#0" and the root leaf (under "#") answers instead.
  auto bucket = getBucket("#0", result.stats);
  if (!bucket) bucket = getBucket("#", result.stats);
  checkInvariant(bucket.has_value(), "maxRecord: rightmost leaf missing");
  while (bucket && bucket->records.empty() && !bucket->label.isLeftmostPath()) {
    const Label beta = leftNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    bucket = std::move(nb);
  }
  if (bucket) {
    const index::Record* best = nullptr;
    for (const auto& r : bucket->records) {
      if (best == nullptr || r.key > best->key) best = &r;
    }
    if (best != nullptr) result.record = *best;
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::RangeResult LhtIndex::topMin(size_t k) {
  index::RangeResult result;
  if (k == 0) return result;
  // Sweep leaves left to right: every record in a later bucket is larger
  // than every record in an earlier one, so we may stop as soon as k
  // records are collected.
  auto bucket = getBucket("#", result.stats);
  checkInvariant(bucket.has_value(), "topMin: leftmost leaf missing");
  for (;;) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : bucket->records) result.records.push_back(r);
    if (result.records.size() >= k || bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb.has_value(), "topMin: broken leaf chain");
    bucket = std::move(nb);
  }
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  if (result.records.size() > k) result.records.resize(k);
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::RangeResult LhtIndex::topMax(size_t k) {
  index::RangeResult result;
  if (k == 0) return result;
  auto bucket = getBucket("#0", result.stats);
  if (!bucket) bucket = getBucket("#", result.stats);  // single-leaf tree
  checkInvariant(bucket.has_value(), "topMax: rightmost leaf missing");
  for (;;) {
    result.stats.bucketsTouched += 1;
    for (const auto& r : bucket->records) result.records.push_back(r);
    if (result.records.size() >= k || bucket->label.isLeftmostPath()) break;
    const Label beta = leftNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb.has_value(), "topMax: broken leaf chain");
    bucket = std::move(nb);
  }
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  if (result.records.size() > k) {
    result.records.erase(result.records.begin(),
                         result.records.end() - static_cast<long>(k));
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult LhtIndex::quantileQuery(double q) {
  checkInvariant(q >= 0.0 && q <= 1.0, "LhtIndex::quantileQuery: q outside [0,1]");
  index::FindResult result;
  if (recordCount_ == 0) return result;
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(recordCount_ - 1));

  // Sweep from whichever end is nearer to the target rank.
  const bool fromLeft = rank <= recordCount_ / 2;
  size_t remaining = fromLeft ? rank : recordCount_ - 1 - rank;

  auto bucket = fromLeft ? getBucket("#", result.stats) : getBucket("#0", result.stats);
  if (!fromLeft && !bucket) bucket = getBucket("#", result.stats);
  checkInvariant(bucket.has_value(), "quantileQuery: end bucket missing");
  for (;;) {
    if (bucket->records.size() > remaining) {
      // The target rank lies in this bucket: order its records locally.
      std::vector<index::Record> recs = bucket->records;
      std::sort(recs.begin(), recs.end(), index::recordLess);
      result.record =
          fromLeft ? recs[remaining] : recs[recs.size() - 1 - remaining];
      break;
    }
    remaining -= bucket->records.size();
    const bool atEnd = fromLeft ? bucket->label.isRightmostPath()
                                : bucket->label.isLeftmostPath();
    checkInvariant(!atEnd, "quantileQuery: ran past the end (count drift)");
    const Label beta = fromLeft ? rightNeighbor(bucket->label)
                                : leftNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, result.stats);
    checkInvariant(nb.has_value(), "quantileQuery: broken leaf chain");
    bucket = std::move(nb);
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

void LhtIndex::forEachBucket(const std::function<void(const LeafBucket&)>& fn) {
  cost::OpStats scratch;
  auto bucket = getBucket("#", scratch);
  checkInvariant(bucket.has_value(), "forEachBucket: leftmost leaf missing");
  for (;;) {
    fn(*bucket);
    if (bucket->label.isRightmostPath()) break;
    const Label beta = rightNeighbor(bucket->label);
    std::optional<LeafBucket> nb;
    fetchSubtreeEntry(beta, nb, scratch);
    checkInvariant(nb.has_value(), "forEachBucket: broken leaf chain");
    bucket = std::move(nb);
  }
}

}  // namespace lht::core
