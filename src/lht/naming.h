// The LHT naming machinery (paper Definitions 1-3).
//
// These four pure functions on labels are the whole trick of LHT:
//
//  * name (f_n, Def. 1) strips the trailing run of equal bits from a leaf
//    label. Theorem 1: it is a *bijection* from leaf labels to internal-node
//    labels, so using name(leaf) as the DHT key organizes the partition
//    tree's internal structure in the DHT key space with no bookkeeping.
//    Theorem 2: when a leaf splits, one child keeps name(leaf) (it stays on
//    the same peer) and the other is named exactly leaf — which is why a
//    split costs a single DHT-lookup.
//
//  * nextName (f_nn, Def. 2) jumps past prefixes that share the current
//    prefix's name, powering the O(log(D/2)) binary-search lookup.
//
//  * rightNeighbor / leftNeighbor (f_rn / f_ln, Def. 3) walk the branch
//    nodes of a leaf's *local tree* — inferable from the leaf's own label —
//    powering near-optimal range queries with zero maintained links.
#pragma once

#include <optional>
#include <string>

#include "common/label.h"

namespace lht::core {

using common::Label;

/// f_n (Def. 1): strips the trailing run of identical bits. Examples:
/// f_n(#01100) = #011, f_n(#01011) = #010, f_n(#00) = #, f_n(#0) = #.
/// Requires a non-virtual-root label.
Label name(const Label& leaf);

/// The DHT key under which the bucket for `leaf` is stored: name(leaf)
/// rendered as text ("#011").
std::string dhtKeyFor(const Label& leaf);

/// f_nn (Def. 2): the shortest prefix of `mu` that is longer than `x` and
/// has a different name — i.e. extend x up to and including the first bit of
/// mu that differs from x's last bit. Example:
/// f_nn(#0011, #0011100) = #001110.
/// Requires x to be a non-empty proper prefix of mu. Returns nullopt when no
/// differing bit exists before mu ends (possible only when the search depth
/// D was chosen too small for the actual tree).
std::optional<Label> nextName(const Label& x, const Label& mu);

/// f_rn (Def. 3): the nearest branch node to the right. Maps p01* -> p1,
/// and the rightmost path #01* to itself (no right neighbor).
/// Requires a non-virtual-root label.
Label rightNeighbor(const Label& x);

/// Mirror of f_rn: maps p10* -> p0, and the leftmost path #00* to itself.
/// Requires a non-virtual-root label.
Label leftNeighbor(const Label& x);

/// The unique leaf label that f_n maps to the internal label `omega`
/// (the inverse bijection from Theorem 1's proof), assuming the subtree
/// under omega reaches depth `leafLen`:
///  - omega ending in 0  -> the rightmost leaf omega 11..1,
///  - omega ending in 1 (or "#") -> the leftmost leaf omega 00..0.
/// Exposed for tests and diagnostics; the protocol itself never needs it.
Label namedLeafAtDepth(const Label& omega, common::u32 leafLen);

}  // namespace lht::core
