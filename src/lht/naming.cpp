#include "lht/naming.h"

#include "common/types.h"

namespace lht::core {

using common::checkInvariant;
using common::u32;

Label name(const Label& leaf) {
  checkInvariant(!leaf.isVirtualRoot(), "name: virtual root is not a leaf");
  const u32 run = leaf.trailingRunLength();
  return leaf.prefix(leaf.length() - run);
}

std::string dhtKeyFor(const Label& leaf) { return name(leaf).str(); }

std::optional<Label> nextName(const Label& x, const Label& mu) {
  checkInvariant(!x.isVirtualRoot(), "nextName: x must be non-empty");
  checkInvariant(x.isPrefixOf(mu) && x.length() < mu.length(),
                 "nextName: x must be a proper prefix of mu");
  const int last = x.lastBit();
  for (u32 p = x.length(); p < mu.length(); ++p) {
    if (mu.bit(p) != last) return mu.prefix(p + 1);
  }
  return std::nullopt;
}

Label rightNeighbor(const Label& x) {
  checkInvariant(!x.isVirtualRoot(), "rightNeighbor: virtual root has none");
  if (x.isRightmostPath()) return x;
  // Strip the trailing 1s; the result ends in 0 and (because x is not on the
  // rightmost path) is at least 2 bits long, so it has a sibling.
  u32 ones = 0;
  while (ones < x.length() && x.bit(x.length() - 1 - ones) == 1) ++ones;
  Label p0 = x.prefix(x.length() - ones);
  return p0.sibling();  // p0 -> p1
}

Label leftNeighbor(const Label& x) {
  checkInvariant(!x.isVirtualRoot(), "leftNeighbor: virtual root has none");
  if (x.isLeftmostPath()) return x;
  u32 zeros = 0;
  while (zeros < x.length() && x.bit(x.length() - 1 - zeros) == 0) ++zeros;
  Label p1 = x.prefix(x.length() - zeros);
  return p1.sibling();  // p1 -> p0
}

Label namedLeafAtDepth(const Label& omega, u32 leafLen) {
  checkInvariant(leafLen > omega.length(), "namedLeafAtDepth: leaf not deeper");
  const int fill = (omega.isVirtualRoot() || omega.lastBit() == 1) ? 0 : 1;
  Label leaf = omega;
  while (leaf.length() < leafLen) leaf = leaf.child(fill);
  return leaf;
}

}  // namespace lht::core
