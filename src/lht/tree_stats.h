// Introspection over a live LHT: tree shape, bucket occupancy, and the
// distribution of buckets across DHT peers. Backs the load-balance
// experiments (the paper's intro claims DHT uniform hashing gives easy
// storage load balance) and general diagnostics.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "lht/lht_index.h"

namespace lht::core {

struct TreeStats {
  size_t leafCount = 0;
  size_t totalRecords = 0;
  common::u32 minDepth = 0;       ///< shortest leaf label (bits)
  common::u32 maxDepth = 0;       ///< deepest leaf label (bits)
  double meanDepth = 0.0;
  double meanOccupancy = 0.0;     ///< records per leaf
  size_t maxOccupancy = 0;
  size_t emptyLeaves = 0;
  size_t overfullLeaves = 0;      ///< leaves at/above the split threshold
  std::vector<size_t> depthHistogram;  ///< index = depth in bits

  /// Walks every leaf bucket of `index` (left to right) and aggregates.
  /// Read-only; does not touch the index meters.
  static TreeStats collect(LhtIndex& index);

  /// Multi-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace lht::core
