// Client-side read-path caches for the LHT index (both default-off).
//
// LeafCache — leaf *location* cache: maps a key interval to the label of
// the leaf last observed covering it. Because every leaf is stored under
// name(label), a cached entry turns Algorithm 2's binary search (~log D
// DHT-lookups) into a single get. Correctness never depends on freshness:
// a hit is validated by the fetched bucket itself (does it still cover the
// key? is it clean?), and a stale entry is simply invalidated and the
// lookup falls back to the full binary search. This is the PHT-style
// location cache subsuming the single-slot depth hint. Epochs (bucket wire
// format v2) are remembered so callers can observe how stale an entry was.
//
// Leases (DESIGN.md §13): an entry can additionally carry a time-bounded
// *read lease* over the epoch-stamped bucket snapshot. While the lease is
// unexpired, the index may serve lookups for the interval from the leaf's
// replica holders, accepting a replica bucket only when its epoch equals
// the leased epoch — any split/merge/insert bumps the epoch, so a stale
// replica can never satisfy a lease. The cache stores and rotates the
// lease state; the index drives the protocol and reports outcomes back
// through the note*() counters below, so hit accounting separates
// lease-served (replica) reads from primary reads.
//
// BucketStore — decoded-bucket cache: LHT stores buckets as opaque bytes,
// so every read pays a full deserialize even when the bytes have not
// changed. The store keys decoded buckets by DHT key and revalidates each
// hit by comparing the raw bytes (a memcmp, not a decode): unchanged bytes
// return the shared decoded value, changed bytes decode once and replace
// it. Mutators copy-on-write, so shared values are never modified in
// place.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/label.h"
#include "common/types.h"
#include "lht/bucket.h"

namespace lht::core {

class LeafCache {
 public:
  struct Entry {
    common::Label label;
    common::u64 epoch = 0;
    /// Lease expiry on the granting client's clock; 0 = no lease (the
    /// entry is a plain location, replica reads are not authorized).
    common::u64 leaseExpiresAtMs = 0;
    /// Rotation cursor over the leaf's read servers (replica holders plus
    /// the primary), advanced by bumpReplicaCursor.
    common::u32 replicaCursor = 0;
    [[nodiscard]] bool leased() const { return leaseExpiresAtMs != 0; }
  };

  explicit LeafCache(size_t capacity = 4096);

  /// Greatest cached leaf whose interval covers `key`, if any.
  [[nodiscard]] std::optional<Entry> find(double key);

  /// Records an observed clean leaf. Entries overlapping its interval are
  /// dropped first (sibling leaves that no longer exist after a merge).
  /// leaseExpiresAtMs != 0 grants (or renews) a read lease on the entry.
  void note(const common::Label& label, common::u64 epoch,
            common::u64 leaseExpiresAtMs = 0);

  /// Drops every entry overlapping `iv` (after an observed or performed
  /// split/merge whose old leaves covered `iv`).
  void invalidate(const common::Interval& iv);

  /// Revokes leases overlapping `iv` without dropping the locations: a
  /// dead or stale replica holder says nothing about where the leaf
  /// lives, only that replica reads must stop until a primary read
  /// re-grants. Counted under leaseDrops().
  void dropLease(const common::Interval& iv);

  /// Post-increments the rotation cursor of the entry for `label`
  /// (0 when the entry is gone — the caller's read then revalidates).
  common::u32 bumpReplicaCursor(const common::Label& label);

  void clear();

  [[nodiscard]] size_t size() const { return byLo_.size(); }
  [[nodiscard]] common::u64 hits() const { return hits_; }
  [[nodiscard]] common::u64 misses() const { return misses_; }
  [[nodiscard]] common::u64 invalidations() const { return invalidations_; }
  [[nodiscard]] common::u64 flushes() const { return flushes_; }

  // Served-read accounting, reported by the index so load-balancing can be
  // observed: a location hit (hits() above) resolves to either a
  // lease-served replica read or a primary read — the split the single
  // hit counter used to hide.
  void notePrimaryServed() { primaryHits_ += 1; }
  void noteLeaseServed() { leaseHits_ += 1; }
  void noteLeaseStale() { leaseStale_ += 1; }
  void noteLeaseExpired() { leaseExpired_ += 1; }
  /// A replica read hit a transport-level timeout (NetDht deadline, as
  /// opposed to a substrate that *knows* the peer is down and throws
  /// DhtPeerDownError). Counted apart from generic drops so a networked
  /// run can tell silent holders from stale ones.
  void noteLeaseTimeout() { leaseTimeouts_ += 1; }
  [[nodiscard]] common::u64 primaryHits() const { return primaryHits_; }
  [[nodiscard]] common::u64 leaseHits() const { return leaseHits_; }
  [[nodiscard]] common::u64 leaseStale() const { return leaseStale_; }
  [[nodiscard]] common::u64 leaseExpired() const { return leaseExpired_; }
  [[nodiscard]] common::u64 leaseDrops() const { return leaseDrops_; }
  [[nodiscard]] common::u64 leaseTimeouts() const { return leaseTimeouts_; }

 private:
  size_t capacity_;
  /// Leaf intervals partition [0, 1), so entries are ordered and
  /// non-overlapping: the covering candidate for a key is the greatest
  /// entry with lo <= key.
  std::map<double, Entry> byLo_;
  common::u64 hits_ = 0;
  common::u64 misses_ = 0;
  common::u64 invalidations_ = 0;
  common::u64 flushes_ = 0;
  common::u64 primaryHits_ = 0;
  common::u64 leaseHits_ = 0;
  common::u64 leaseStale_ = 0;
  common::u64 leaseExpired_ = 0;
  common::u64 leaseDrops_ = 0;
  common::u64 leaseTimeouts_ = 0;
};

class BucketStore {
 public:
  BucketStore(bool enabled, size_t capacity);

  using Ref = std::shared_ptr<const LeafBucket>;

  /// Decoded view of `raw` as stored under `dhtKey`. Hit: `raw` matches
  /// the cached bytes and the shared decoded value is returned without
  /// parsing. Miss: decodes (throwing InvariantError on corrupt bytes,
  /// like the index's decode path always has) and caches.
  Ref decode(const std::string& dhtKey, const std::string& raw);

  /// Mutable copy for read-modify-write (copy-on-write: the shared cached
  /// value is never mutated in place).
  [[nodiscard]] LeafBucket decodeCopy(const std::string& dhtKey,
                                      const std::string& raw);

  /// Records the post-image of a write: `raw` is what was stored under
  /// `dhtKey`, `bucket` its already-decoded form.
  void note(const std::string& dhtKey, std::string raw, LeafBucket bucket);

  /// Drops `dhtKey` (the stored value was erased).
  void forget(const std::string& dhtKey);

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] common::u64 hits() const { return hits_; }
  [[nodiscard]] common::u64 misses() const { return misses_; }

 private:
  struct Entry {
    std::string raw;
    Ref bucket;
  };

  bool enabled_;
  size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  common::u64 hits_ = 0;
  common::u64 misses_ = 0;
};

}  // namespace lht::core
