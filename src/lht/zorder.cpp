#include "lht/zorder.h"

#include <algorithm>
#include <cmath>

#include "common/codec.h"
#include "common/types.h"

namespace lht::core {

using common::checkInvariant;
using common::Interval;
using common::u32;
using common::u64;

namespace {

u64 clampedScale(double v, u32 bits) {
  checkInvariant(v >= 0.0 && v <= 1.0, "zorder: coordinate outside [0,1]");
  const double scaled = std::ldexp(v, static_cast<int>(bits));
  const double top = std::ldexp(1.0, static_cast<int>(bits));
  return scaled >= top ? (1ull << bits) - 1 : static_cast<u64>(scaled);
}

}  // namespace

double zEncode(double x, double y, u32 bitsPerDim) {
  checkInvariant(bitsPerDim >= 1 && bitsPerDim <= 26, "zEncode: bad resolution");
  const u64 xi = clampedScale(x, bitsPerDim);
  const u64 yi = clampedScale(y, bitsPerDim);
  u64 z = 0;
  for (u32 b = 0; b < bitsPerDim; ++b) {
    const u32 src = bitsPerDim - 1 - b;  // MSB first
    z = (z << 1) | ((xi >> src) & 1);
    z = (z << 1) | ((yi >> src) & 1);
  }
  return std::ldexp(static_cast<double>(z), -static_cast<int>(2 * bitsPerDim));
}

std::pair<double, double> zDecode(double z, u32 bitsPerDim) {
  checkInvariant(bitsPerDim >= 1 && bitsPerDim <= 26, "zDecode: bad resolution");
  const u64 zi = clampedScale(z, 2 * bitsPerDim);
  u64 xi = 0, yi = 0;
  for (u32 b = 0; b < bitsPerDim; ++b) {
    const u32 src = 2 * (bitsPerDim - 1 - b);
    xi = (xi << 1) | ((zi >> (src + 1)) & 1);
    yi = (yi << 1) | ((zi >> src) & 1);
  }
  return {std::ldexp(static_cast<double>(xi), -static_cast<int>(bitsPerDim)),
          std::ldexp(static_cast<double>(yi), -static_cast<int>(bitsPerDim))};
}

namespace {

struct RangeBuilder {
  const Rect& rect;
  u32 maxLevel;
  size_t maxRanges;
  std::vector<Interval> out;

  void visit(u32 level, double zlo, const Rect& cell) {
    const bool overlap = cell.xlo < rect.xhi && rect.xlo < cell.xhi &&
                         cell.ylo < rect.yhi && rect.ylo < cell.yhi;
    if (!overlap) return;
    const double cellSpan = std::ldexp(1.0, -static_cast<int>(2 * level));
    const bool inside = cell.xlo >= rect.xlo && cell.xhi <= rect.xhi &&
                        cell.ylo >= rect.ylo && cell.yhi <= rect.yhi;
    if (inside || level == maxLevel || out.size() >= maxRanges) {
      // Emit (merging with the previous range when contiguous).
      if (!out.empty() && out.back().hi == zlo) {
        out.back().hi = zlo + cellSpan;
      } else {
        out.push_back(Interval{zlo, zlo + cellSpan});
      }
      return;
    }
    const double xm = 0.5 * (cell.xlo + cell.xhi);
    const double ym = 0.5 * (cell.ylo + cell.yhi);
    const double q = cellSpan / 4.0;
    // Z-order of the quadrants: (x bit, y bit) = 00, 01, 10, 11.
    visit(level + 1, zlo + 0 * q, Rect{cell.xlo, xm, cell.ylo, ym});
    visit(level + 1, zlo + 1 * q, Rect{cell.xlo, xm, ym, cell.yhi});
    visit(level + 1, zlo + 2 * q, Rect{xm, cell.xhi, cell.ylo, ym});
    visit(level + 1, zlo + 3 * q, Rect{xm, cell.xhi, ym, cell.yhi});
  }
};

}  // namespace

std::vector<Interval> zRangesForRect(const Rect& rect, u32 bitsPerDim,
                                     size_t maxRanges) {
  checkInvariant(rect.xhi > rect.xlo && rect.yhi > rect.ylo,
                 "zRangesForRect: empty rectangle");
  RangeBuilder builder{rect, bitsPerDim, maxRanges, {}};
  builder.visit(0, 0.0, Rect{0.0, 1.0, 0.0, 1.0});
  return std::move(builder.out);
}

Lht2dIndex::Lht2dIndex(dht::Dht& dht, Options options)
    : opts_(options), lht_(dht, options.lht) {
  checkInvariant(opts_.bitsPerDim >= 1 && opts_.bitsPerDim <= 26,
                 "Lht2dIndex: bad resolution");
}

index::UpdateResult Lht2dIndex::insert(const Point2D& p) {
  common::Encoder enc;
  enc.putDouble(p.x);
  enc.putDouble(p.y);
  enc.putString(p.payload);
  return lht_.insert(
      index::Record{zEncode(p.x, p.y, opts_.bitsPerDim), std::move(enc).take()});
}

Lht2dIndex::RectResult Lht2dIndex::rectQuery(const Rect& rect) {
  RectResult result;
  const auto ranges = zRangesForRect(rect, opts_.bitsPerDim, opts_.maxRanges);
  result.curveRanges = ranges.size();
  u64 maxSteps = 0;
  for (const auto& iv : ranges) {
    auto rr = lht_.rangeQuery(iv.lo, iv.hi);
    result.stats.dhtLookups += rr.stats.dhtLookups;
    result.stats.bucketsTouched += rr.stats.bucketsTouched;
    maxSteps = std::max(maxSteps, rr.stats.parallelSteps);
    for (const auto& rec : rr.records) {
      common::Decoder dec(rec.payload);
      auto x = dec.getDouble();
      auto y = dec.getDouble();
      auto payload = dec.getString();
      checkInvariant(x && y && payload, "Lht2dIndex: corrupt point payload");
      if (rect.contains(*x, *y)) {
        result.points.push_back(Point2D{*x, *y, std::move(*payload)});
      }
    }
  }
  // The per-range queries are independent and issued in parallel.
  result.stats.parallelSteps = maxSteps;
  return result;
}

Lht2dIndex::KnnResult Lht2dIndex::knnQuery(double x, double y, size_t k) {
  checkInvariant(x >= 0.0 && x <= 1.0 && y >= 0.0 && y <= 1.0,
                 "Lht2dIndex::knnQuery: point outside [0,1]^2");
  KnnResult result;
  if (k == 0) return result;

  const auto dist2 = [&](const Point2D& p) {
    const double dx = p.x - x;
    const double dy = p.y - y;
    return dx * dx + dy * dy;
  };

  // Start at roughly one Morton cell and double until the k-th nearest hit
  // is closer than the box edge (so nothing outside can beat it), or the
  // box covers the whole space.
  double radius = std::ldexp(1.0, -static_cast<int>(opts_.bitsPerDim));
  for (;;) {
    result.rounds += 1;
    Rect box{std::max(0.0, x - radius), std::min(1.0, x + radius),
             std::max(0.0, y - radius), std::min(1.0, y + radius)};
    auto rr = rectQuery(box);
    result.stats += rr.stats;

    const bool wholeSpace =
        box.xlo == 0.0 && box.xhi == 1.0 && box.ylo == 0.0 && box.yhi == 1.0;
    if (rr.points.size() >= k) {
      std::sort(rr.points.begin(), rr.points.end(),
                [&](const Point2D& a, const Point2D& b) {
                  return dist2(a) < dist2(b);
                });
      rr.points.resize(k);
      const double worst = std::sqrt(dist2(rr.points.back()));
      if (worst <= radius || wholeSpace) {
        result.points = std::move(rr.points);
        return result;
      }
    } else if (wholeSpace) {
      std::sort(rr.points.begin(), rr.points.end(),
                [&](const Point2D& a, const Point2D& b) {
                  return dist2(a) < dist2(b);
                });
      result.points = std::move(rr.points);
      return result;
    }
    radius *= 2.0;
  }
}

}  // namespace lht::core
