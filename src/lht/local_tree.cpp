#include "lht/local_tree.h"

#include <algorithm>
#include <sstream>

#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {

LocalTree::LocalTree(Label leaf) : leaf_(leaf) {
  common::checkInvariant(!leaf.isVirtualRoot() && leaf.bit(0) == 0,
                         "LocalTree: label must start with the root edge 0");
}

std::vector<Label> LocalTree::ancestors() const {
  std::vector<Label> out;
  out.reserve(leaf_.length());
  for (common::u32 n = 0; n < leaf_.length(); ++n) out.push_back(leaf_.prefix(n));
  return out;
}

std::vector<Label> LocalTree::rightBranches() const {
  std::vector<Label> out;
  Label beta = leaf_;
  while (!beta.isRightmostPath()) {
    beta = rightNeighbor(beta);
    out.push_back(beta);
  }
  return out;
}

std::vector<Label> LocalTree::leftBranches() const {
  std::vector<Label> out;
  Label beta = leaf_;
  while (!beta.isLeftmostPath()) {
    beta = leftNeighbor(beta);
    out.push_back(beta);
  }
  return out;
}

std::vector<Label> LocalTree::allKnownNodes() const {
  std::vector<Label> out = ancestors();
  auto r = rightBranches();
  auto l = leftBranches();
  out.insert(out.end(), r.begin(), r.end());
  out.insert(out.end(), l.begin(), l.end());
  out.push_back(leaf_);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> LocalTree::rightPartitionValues() const {
  std::vector<double> out;
  out.push_back(leaf_.interval().hi);
  for (const Label& beta : rightBranches()) out.push_back(beta.interval().hi);
  return out;
}

std::string LocalTree::render() const {
  std::ostringstream os;
  os << "local tree of leaf " << leaf_.str() << "\n";
  os << "  ancestors:";
  for (const Label& a : ancestors()) os << " " << a.str();
  os << "\n  left branches (near->far):";
  for (const Label& b : leftBranches())
    os << " " << b.str() << b.interval().str();
  os << "\n  right branches (near->far):";
  for (const Label& b : rightBranches())
    os << " " << b.str() << b.interval().str();
  os << "\n";
  return os.str();
}

}  // namespace lht::core
