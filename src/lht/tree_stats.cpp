#include "lht/tree_stats.h"

#include <algorithm>
#include <sstream>

namespace lht::core {

TreeStats TreeStats::collect(LhtIndex& index) {
  TreeStats s;
  s.minDepth = ~0u;
  common::u64 depthSum = 0;
  index.forEachBucket([&](const LeafBucket& b) {
    const common::u32 depth = b.label.length();
    s.leafCount += 1;
    s.totalRecords += b.records.size();
    depthSum += depth;
    s.minDepth = std::min(s.minDepth, depth);
    s.maxDepth = std::max(s.maxDepth, depth);
    if (depth >= s.depthHistogram.size()) s.depthHistogram.resize(depth + 1);
    s.depthHistogram[depth] += 1;
    s.maxOccupancy = std::max(s.maxOccupancy, b.records.size());
    if (b.records.empty()) s.emptyLeaves += 1;
    if (b.effectiveSize(index.options().countLabelSlot) >=
        index.options().thetaSplit) {
      s.overfullLeaves += 1;
    }
  });
  if (s.leafCount > 0) {
    s.meanDepth = static_cast<double>(depthSum) / static_cast<double>(s.leafCount);
    s.meanOccupancy =
        static_cast<double>(s.totalRecords) / static_cast<double>(s.leafCount);
  }
  if (s.minDepth == ~0u) s.minDepth = 0;
  return s;
}

std::string TreeStats::summary() const {
  std::ostringstream os;
  os << "leaves=" << leafCount << " records=" << totalRecords
     << " depth[min/mean/max]=" << minDepth << "/" << meanDepth << "/" << maxDepth
     << " occupancy[mean/max]=" << meanOccupancy << "/" << maxOccupancy
     << " empty=" << emptyLeaves << " overfull=" << overfullLeaves << "\n";
  os << "depth histogram:";
  for (size_t d = 0; d < depthHistogram.size(); ++d) {
    if (depthHistogram[d] != 0) os << " " << d << ":" << depthHistogram[d];
  }
  os << "\n";
  return os.str();
}

}  // namespace lht::core
