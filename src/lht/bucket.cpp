#include "lht/bucket.h"

#include "common/codec.h"
#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {

std::string LeafBucket::serialize() const {
  common::Encoder enc;
  enc.putLabel(label);
  enc.putU32(static_cast<common::u32>(records.size()));
  for (const auto& r : records) {
    enc.putDouble(r.key);
    enc.putString(r.payload);
  }
  return std::move(enc).take();
}

std::optional<LeafBucket> LeafBucket::deserialize(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto label = dec.getLabel();
  auto count = dec.getU32();
  if (!label || !count) return std::nullopt;
  // Each record takes at least 12 bytes (key + payload length prefix); an
  // implausible count means a corrupt value — reject before reserving.
  if (*count > dec.remaining() / 12) return std::nullopt;
  LeafBucket b;
  b.label = *label;
  b.records.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto key = dec.getDouble();
    auto payload = dec.getString();
    if (!key || !payload) return std::nullopt;
    b.records.push_back(index::Record{*key, std::move(*payload)});
  }
  if (!dec.atEnd()) return std::nullopt;
  return b;
}

LeafBucket splitBucket(LeafBucket& bucket) {
  common::checkInvariant(bucket.label.length() >= 1, "splitBucket: bad label");
  common::checkInvariant(bucket.label.length() < Label::kMaxBits,
                         "splitBucket: label at maximum depth");
  const Label oldLabel = bucket.label;
  const double mid = 0.5 * (oldLabel.interval().lo + oldLabel.interval().hi);

  LeafBucket left{oldLabel.child(0), {}};
  LeafBucket right{oldLabel.child(1), {}};
  for (auto& r : bucket.records) {
    (r.key < mid ? left : right).records.push_back(std::move(r));
  }

  // Theorem 2: exactly one child is still named name(oldLabel) (stays on the
  // current peer); the other is named oldLabel (moves). If the old label
  // ends in 1, the local child is label·1; otherwise label·0.
  const bool localIsRight = oldLabel.lastBit() == 1;
  LeafBucket& local = localIsRight ? right : left;
  LeafBucket& remote = localIsRight ? left : right;
  common::checkInvariant(name(local.label) == name(oldLabel),
                         "splitBucket: local child changed name");
  common::checkInvariant(name(remote.label) == oldLabel,
                         "splitBucket: remote child not named to old label");

  LeafBucket out = std::move(remote);
  bucket = std::move(local);
  return out;
}

void splitBucketRecursively(LeafBucket& bucket, const SplitPolicy& policy,
                            std::vector<LeafBucket>& remotes) {
  if (!policy.shouldSplit(bucket)) return;
  LeafBucket remote = splitBucket(bucket);
  splitBucketRecursively(remote, policy, remotes);
  remotes.push_back(std::move(remote));
  splitBucketRecursively(bucket, policy, remotes);
}

}  // namespace lht::core
