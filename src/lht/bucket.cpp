#include "lht/bucket.h"

#include <algorithm>

#include "common/codec.h"
#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {

namespace {

// Wire format version. v2 added epoch, the applied-token window, and the
// split/merge intent markers.
constexpr common::u8 kBucketFormatVersion = 2;

// Intent presence flags.
constexpr common::u8 kHasSplitIntent = 1u << 0;
constexpr common::u8 kHasMergeIntent = 1u << 1;

size_t recordsSize(const std::vector<index::Record>& records) {
  size_t n = 4;  // count
  for (const auto& r : records) n += 8 + 4 + r.payload.size();
  return n;
}

void putRecords(common::Encoder& enc, const std::vector<index::Record>& records) {
  enc.putU32(static_cast<common::u32>(records.size()));
  for (const auto& r : records) {
    enc.putDouble(r.key);
    enc.putString(r.payload);
  }
}

BucketDecodeError getRecords(common::Decoder& dec,
                             std::vector<index::Record>& out) {
  auto count = dec.getU32();
  if (!count) return BucketDecodeError::Truncated;
  // Each record takes at least 12 bytes (key + payload length prefix); an
  // implausible count means a corrupt value — reject before reserving.
  if (*count > dec.remaining() / 12) return BucketDecodeError::BadRecordCount;
  out.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto key = dec.getDouble();
    auto payload = dec.getString();
    if (!key || !payload) return BucketDecodeError::Truncated;
    out.push_back(index::Record{*key, std::move(*payload)});
  }
  return BucketDecodeError::None;
}

/// getLabel() consumes a u32+u64 pair and then validates it; with the
/// bytes present, a failure means the pair itself was not a valid label.
BucketDecodeError classifyLabelFailure(size_t remainingBefore) {
  return remainingBefore >= 4 + 8 ? BucketDecodeError::BadLabel
                                  : BucketDecodeError::Truncated;
}

}  // namespace

const char* toString(BucketDecodeError e) {
  switch (e) {
    case BucketDecodeError::None: return "none";
    case BucketDecodeError::Truncated: return "truncated";
    case BucketDecodeError::BadVersion: return "bad_version";
    case BucketDecodeError::BadLabel: return "bad_label";
    case BucketDecodeError::TokenWindowOverflow: return "token_window_overflow";
    case BucketDecodeError::BadRecordCount: return "bad_record_count";
    case BucketDecodeError::BadIntentFlags: return "bad_intent_flags";
    case BucketDecodeError::TrailingBytes: return "trailing_bytes";
  }
  return "unknown";
}

bool LeafBucket::hasApplied(common::u64 token) const {
  if (token == 0) return false;
  return std::find(appliedOps.begin(), appliedOps.end(), token) !=
         appliedOps.end();
}

void LeafBucket::markApplied(common::u64 token) {
  if (token == 0) return;
  appliedOps.push_back(token);
  if (appliedOps.size() > kAppliedOpsWindow) {
    appliedOps.erase(appliedOps.begin(),
                     appliedOps.end() - static_cast<long>(kAppliedOpsWindow));
  }
}

size_t LeafBucket::serializedSize() const {
  constexpr size_t kLabelSize = 4 + 8;  // length (u32) + bits (u64)
  size_t n = 1;                         // format version
  n += kLabelSize;                      // label
  n += 8;                               // epoch
  n += 4 + 8 * appliedOps.size();       // token window
  n += recordsSize(records);
  n += 1;                               // intent flags
  if (splitIntent) n += kLabelSize + 8 + recordsSize(splitIntent->moving);
  if (mergeIntent) n += kLabelSize + 8 + recordsSize(mergeIntent->moving);
  return n;
}

std::string LeafBucket::serialize() const {
  common::Encoder enc(serializedSize());
  enc.putU8(kBucketFormatVersion);
  enc.putLabel(label);
  enc.putU64(epoch);
  enc.putU32(static_cast<common::u32>(appliedOps.size()));
  for (common::u64 t : appliedOps) enc.putU64(t);
  putRecords(enc, records);
  common::u8 flags = 0;
  if (splitIntent) flags |= kHasSplitIntent;
  if (mergeIntent) flags |= kHasMergeIntent;
  enc.putU8(flags);
  if (splitIntent) {
    enc.putLabel(splitIntent->movedLabel);
    enc.putU64(splitIntent->token);
    putRecords(enc, splitIntent->moving);
  }
  if (mergeIntent) {
    enc.putLabel(mergeIntent->donorLabel);
    enc.putU64(mergeIntent->token);
    putRecords(enc, mergeIntent->moving);
  }
  return std::move(enc).take();
}

std::optional<LeafBucket> LeafBucket::deserialize(std::string_view bytes) {
  return std::move(deserializeEx(bytes).bucket);
}

BucketDecodeResult LeafBucket::deserializeEx(std::string_view bytes) {
  const auto fail = [](BucketDecodeError e) {
    return BucketDecodeResult{std::nullopt, e};
  };
  common::Decoder dec(bytes);
  auto version = dec.getU8();
  if (!version) return fail(BucketDecodeError::Truncated);
  if (*version != kBucketFormatVersion) {
    return fail(BucketDecodeError::BadVersion);
  }
  size_t before = dec.remaining();
  auto label = dec.getLabel();
  if (!label) return fail(classifyLabelFailure(before));
  auto epoch = dec.getU64();
  auto tokenCount = dec.getU32();
  if (!epoch || !tokenCount) return fail(BucketDecodeError::Truncated);
  if (*tokenCount > kAppliedOpsWindow) {
    return fail(BucketDecodeError::TokenWindowOverflow);
  }
  LeafBucket b;
  b.label = *label;
  b.epoch = *epoch;
  b.appliedOps.reserve(*tokenCount);
  for (common::u32 i = 0; i < *tokenCount; ++i) {
    auto t = dec.getU64();
    if (!t) return fail(BucketDecodeError::Truncated);
    b.appliedOps.push_back(*t);
  }
  if (auto e = getRecords(dec, b.records); e != BucketDecodeError::None) {
    return fail(e);
  }
  auto flags = dec.getU8();
  if (!flags) return fail(BucketDecodeError::Truncated);
  if ((*flags & ~(kHasSplitIntent | kHasMergeIntent)) != 0) {
    return fail(BucketDecodeError::BadIntentFlags);
  }
  if (*flags & kHasSplitIntent) {
    SplitIntent si;
    before = dec.remaining();
    auto moved = dec.getLabel();
    if (!moved) return fail(classifyLabelFailure(before));
    auto token = dec.getU64();
    if (!token) return fail(BucketDecodeError::Truncated);
    si.movedLabel = *moved;
    si.token = *token;
    if (auto e = getRecords(dec, si.moving); e != BucketDecodeError::None) {
      return fail(e);
    }
    b.splitIntent = std::move(si);
  }
  if (*flags & kHasMergeIntent) {
    MergeIntent mi;
    before = dec.remaining();
    auto donor = dec.getLabel();
    if (!donor) return fail(classifyLabelFailure(before));
    auto token = dec.getU64();
    if (!token) return fail(BucketDecodeError::Truncated);
    mi.donorLabel = *donor;
    mi.token = *token;
    if (auto e = getRecords(dec, mi.moving); e != BucketDecodeError::None) {
      return fail(e);
    }
    b.mergeIntent = std::move(mi);
  }
  if (!dec.atEnd()) return fail(BucketDecodeError::TrailingBytes);
  return BucketDecodeResult{std::move(b), BucketDecodeError::None};
}

LeafBucket splitBucket(LeafBucket& bucket) {
  common::checkInvariant(bucket.label.length() >= 1, "splitBucket: bad label");
  common::checkInvariant(bucket.label.length() < Label::kMaxBits,
                         "splitBucket: label at maximum depth");
  common::checkInvariant(bucket.clean(),
                         "splitBucket: structural change already in flight");
  const Label oldLabel = bucket.label;
  const double mid = 0.5 * (oldLabel.interval().lo + oldLabel.interval().hi);

  LeafBucket left{oldLabel.child(0), {}};
  LeafBucket right{oldLabel.child(1), {}};
  for (auto& r : bucket.records) {
    (r.key < mid ? left : right).records.push_back(std::move(r));
  }

  // Theorem 2: exactly one child is still named name(oldLabel) (stays on the
  // current peer); the other is named oldLabel (moves). If the old label
  // ends in 1, the local child is label·1; otherwise label·0.
  const bool localIsRight = oldLabel.lastBit() == 1;
  LeafBucket& local = localIsRight ? right : left;
  LeafBucket& remote = localIsRight ? left : right;
  common::checkInvariant(name(local.label) == name(oldLabel),
                         "splitBucket: local child changed name");
  common::checkInvariant(name(remote.label) == oldLabel,
                         "splitBucket: remote child not named to old label");

  // The staying child inherits the stored bucket's identity (epoch and
  // token window continue); the shipped child starts a fresh history.
  local.epoch = bucket.epoch;
  local.appliedOps = std::move(bucket.appliedOps);

  LeafBucket out = std::move(remote);
  bucket = std::move(local);
  return out;
}

void splitBucketRecursively(LeafBucket& bucket, const SplitPolicy& policy,
                            std::vector<LeafBucket>& remotes) {
  if (!policy.shouldSplit(bucket)) return;
  LeafBucket remote = splitBucket(bucket);
  splitBucketRecursively(remote, policy, remotes);
  remotes.push_back(std::move(remote));
  splitBucketRecursively(bucket, policy, remotes);
}

}  // namespace lht::core
