#include "lht/bucket.h"

#include <algorithm>

#include "common/codec.h"
#include "common/types.h"
#include "lht/naming.h"

namespace lht::core {

namespace {

// Wire format version. v2 added epoch, the applied-token window, and the
// split/merge intent markers.
constexpr common::u8 kBucketFormatVersion = 2;

// Intent presence flags.
constexpr common::u8 kHasSplitIntent = 1u << 0;
constexpr common::u8 kHasMergeIntent = 1u << 1;

size_t recordsSize(const std::vector<index::Record>& records) {
  size_t n = 4;  // count
  for (const auto& r : records) n += 8 + 4 + r.payload.size();
  return n;
}

void putRecords(common::Encoder& enc, const std::vector<index::Record>& records) {
  enc.putU32(static_cast<common::u32>(records.size()));
  for (const auto& r : records) {
    enc.putDouble(r.key);
    enc.putString(r.payload);
  }
}

bool getRecords(common::Decoder& dec, std::vector<index::Record>& out) {
  auto count = dec.getU32();
  if (!count) return false;
  // Each record takes at least 12 bytes (key + payload length prefix); an
  // implausible count means a corrupt value — reject before reserving.
  if (*count > dec.remaining() / 12) return false;
  out.reserve(*count);
  for (common::u32 i = 0; i < *count; ++i) {
    auto key = dec.getDouble();
    auto payload = dec.getString();
    if (!key || !payload) return false;
    out.push_back(index::Record{*key, std::move(*payload)});
  }
  return true;
}

}  // namespace

bool LeafBucket::hasApplied(common::u64 token) const {
  if (token == 0) return false;
  return std::find(appliedOps.begin(), appliedOps.end(), token) !=
         appliedOps.end();
}

void LeafBucket::markApplied(common::u64 token) {
  if (token == 0) return;
  appliedOps.push_back(token);
  if (appliedOps.size() > kAppliedOpsWindow) {
    appliedOps.erase(appliedOps.begin(),
                     appliedOps.end() - static_cast<long>(kAppliedOpsWindow));
  }
}

size_t LeafBucket::serializedSize() const {
  constexpr size_t kLabelSize = 4 + 8;  // length (u32) + bits (u64)
  size_t n = 1;                         // format version
  n += kLabelSize;                      // label
  n += 8;                               // epoch
  n += 4 + 8 * appliedOps.size();       // token window
  n += recordsSize(records);
  n += 1;                               // intent flags
  if (splitIntent) n += kLabelSize + 8 + recordsSize(splitIntent->moving);
  if (mergeIntent) n += kLabelSize + 8 + recordsSize(mergeIntent->moving);
  return n;
}

std::string LeafBucket::serialize() const {
  common::Encoder enc(serializedSize());
  enc.putU8(kBucketFormatVersion);
  enc.putLabel(label);
  enc.putU64(epoch);
  enc.putU32(static_cast<common::u32>(appliedOps.size()));
  for (common::u64 t : appliedOps) enc.putU64(t);
  putRecords(enc, records);
  common::u8 flags = 0;
  if (splitIntent) flags |= kHasSplitIntent;
  if (mergeIntent) flags |= kHasMergeIntent;
  enc.putU8(flags);
  if (splitIntent) {
    enc.putLabel(splitIntent->movedLabel);
    enc.putU64(splitIntent->token);
    putRecords(enc, splitIntent->moving);
  }
  if (mergeIntent) {
    enc.putLabel(mergeIntent->donorLabel);
    enc.putU64(mergeIntent->token);
    putRecords(enc, mergeIntent->moving);
  }
  return std::move(enc).take();
}

std::optional<LeafBucket> LeafBucket::deserialize(std::string_view bytes) {
  common::Decoder dec(bytes);
  auto version = dec.getU8();
  if (!version || *version != kBucketFormatVersion) return std::nullopt;
  auto label = dec.getLabel();
  auto epoch = dec.getU64();
  auto tokenCount = dec.getU32();
  if (!label || !epoch || !tokenCount) return std::nullopt;
  if (*tokenCount > kAppliedOpsWindow) return std::nullopt;
  LeafBucket b;
  b.label = *label;
  b.epoch = *epoch;
  b.appliedOps.reserve(*tokenCount);
  for (common::u32 i = 0; i < *tokenCount; ++i) {
    auto t = dec.getU64();
    if (!t) return std::nullopt;
    b.appliedOps.push_back(*t);
  }
  if (!getRecords(dec, b.records)) return std::nullopt;
  auto flags = dec.getU8();
  if (!flags || (*flags & ~(kHasSplitIntent | kHasMergeIntent)) != 0) {
    return std::nullopt;
  }
  if (*flags & kHasSplitIntent) {
    SplitIntent si;
    auto moved = dec.getLabel();
    auto token = dec.getU64();
    if (!moved || !token) return std::nullopt;
    si.movedLabel = *moved;
    si.token = *token;
    if (!getRecords(dec, si.moving)) return std::nullopt;
    b.splitIntent = std::move(si);
  }
  if (*flags & kHasMergeIntent) {
    MergeIntent mi;
    auto donor = dec.getLabel();
    auto token = dec.getU64();
    if (!donor || !token) return std::nullopt;
    mi.donorLabel = *donor;
    mi.token = *token;
    if (!getRecords(dec, mi.moving)) return std::nullopt;
    b.mergeIntent = std::move(mi);
  }
  if (!dec.atEnd()) return std::nullopt;
  return b;
}

LeafBucket splitBucket(LeafBucket& bucket) {
  common::checkInvariant(bucket.label.length() >= 1, "splitBucket: bad label");
  common::checkInvariant(bucket.label.length() < Label::kMaxBits,
                         "splitBucket: label at maximum depth");
  common::checkInvariant(bucket.clean(),
                         "splitBucket: structural change already in flight");
  const Label oldLabel = bucket.label;
  const double mid = 0.5 * (oldLabel.interval().lo + oldLabel.interval().hi);

  LeafBucket left{oldLabel.child(0), {}};
  LeafBucket right{oldLabel.child(1), {}};
  for (auto& r : bucket.records) {
    (r.key < mid ? left : right).records.push_back(std::move(r));
  }

  // Theorem 2: exactly one child is still named name(oldLabel) (stays on the
  // current peer); the other is named oldLabel (moves). If the old label
  // ends in 1, the local child is label·1; otherwise label·0.
  const bool localIsRight = oldLabel.lastBit() == 1;
  LeafBucket& local = localIsRight ? right : left;
  LeafBucket& remote = localIsRight ? left : right;
  common::checkInvariant(name(local.label) == name(oldLabel),
                         "splitBucket: local child changed name");
  common::checkInvariant(name(remote.label) == oldLabel,
                         "splitBucket: remote child not named to old label");

  // The staying child inherits the stored bucket's identity (epoch and
  // token window continue); the shipped child starts a fresh history.
  local.epoch = bucket.epoch;
  local.appliedOps = std::move(bucket.appliedOps);

  LeafBucket out = std::move(remote);
  bucket = std::move(local);
  return out;
}

void splitBucketRecursively(LeafBucket& bucket, const SplitPolicy& policy,
                            std::vector<LeafBucket>& remotes) {
  if (!policy.shouldSplit(bucket)) return;
  LeafBucket remote = splitBucket(bucket);
  splitBucketRecursively(remote, policy, remotes);
  remotes.push_back(std::move(remote));
  splitBucketRecursively(bucket, policy, remotes);
}

}  // namespace lht::core
