// Leaf buckets (paper Sec. 3.3): the only materialized objects of LHT.
//
// A bucket stores its leaf label plus the data records whose keys fall in
// the leaf's interval. The label field is what makes the scheme work: it
// summarizes the peer's local view of the partition tree ("local tree"),
// so no structural links ever need maintaining.
//
// Beyond the paper, each bucket carries the crash-consistency state of the
// resilience layer:
//
//  * `epoch` counts every rewrite of the bucket (debugging / ordering aid).
//  * `appliedOps` is a bounded window of recently applied client operation
//    tokens. A client stamps each non-idempotent mutation (record insert)
//    with a fresh token; when a lost reply makes the client retry, the
//    re-executed mutator sees its token already recorded and becomes a
//    no-op — exactly-once effects over an at-least-once channel.
//  * `splitIntent` / `mergeIntent` are the write-ahead markers of the
//    crash-consistent split/merge state machines (lht_index.cpp). While an
//    intent is set, the records being moved live *inside the intent* (never
//    only in a client's memory), so any reader that stumbles on a
//    half-finished structural change has everything needed to complete it.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/label.h"
#include "index/record.h"

namespace lht::core {

using common::Label;

/// Write-ahead marker for a split in flight: the staying child records
/// which sibling must still be written, with the sibling's records kept
/// durable here until the write is known to have landed.
struct SplitIntent {
  Label movedLabel;                    ///< label of the child being shipped
  std::vector<index::Record> moving;   ///< its records, retained until done
  common::u64 token = 0;               ///< idempotence token of the completion

  friend bool operator==(const SplitIntent&, const SplitIntent&) = default;
};

/// Write-ahead marker for a merge in flight, held by the absorbing child
/// (the one already stored under the parent's name): a durable copy of the
/// donor's records, staged until the donor is deleted and the absorber is
/// committed as the parent leaf.
struct MergeIntent {
  Label donorLabel;                    ///< the sibling being drained
  std::vector<index::Record> moving;   ///< copy of the donor's records
  common::u64 token = 0;

  friend bool operator==(const MergeIntent&, const MergeIntent&) = default;
};

/// Why a bucket decode was rejected. Stored bucket bytes now survive
/// restarts (DESIGN.md §11), so a decode failure is a durability event that
/// callers may log or alert on — "which way were the bytes bad" matters,
/// not just that they were.
enum class BucketDecodeError : common::u8 {
  None = 0,            ///< decode succeeded
  Truncated,           ///< bytes ran out in the middle of a field
  BadVersion,          ///< unknown wire-format version byte
  BadLabel,            ///< label length/bits pair is not a valid label
  TokenWindowOverflow, ///< applied-op count exceeds the bounded window
  BadRecordCount,      ///< record count larger than the bytes could hold
  BadIntentFlags,      ///< unknown bits set in the intent presence byte
  TrailingBytes,       ///< a complete bucket followed by extra bytes
};

/// Stable diagnostic name ("truncated", "bad_version", ...).
[[nodiscard]] const char* toString(BucketDecodeError e);

struct BucketDecodeResult;

struct LeafBucket {
  Label label;
  std::vector<index::Record> records;
  common::u64 epoch = 0;
  std::vector<common::u64> appliedOps;  ///< newest last, bounded window
  std::optional<SplitIntent> splitIntent;
  std::optional<MergeIntent> mergeIntent;

  /// How many op tokens a bucket remembers. Wide enough that a client's
  /// retry horizon (one in-flight op at a time, bounded retry counts)
  /// can never outrun it.
  static constexpr size_t kAppliedOpsWindow = 32;

  /// Whether `token` is in the applied window (0 is never recorded).
  [[nodiscard]] bool hasApplied(common::u64 token) const;
  /// Records `token`, evicting the oldest entry beyond the window.
  void markApplied(common::u64 token);

  /// No structural change in flight.
  [[nodiscard]] bool clean() const { return !splitIntent && !mergeIntent; }

  /// Size in "record slots": the stored records plus, when
  /// `countLabelSlot`, one slot for the leaf label itself (the paper's
  /// Sec. 9.2 accounting that yields average alpha = 1/2 + 1/(2 theta)).
  [[nodiscard]] size_t effectiveSize(bool countLabelSlot) const {
    return records.size() + (countLabelSlot ? 1 : 0);
  }

  /// Whether `key` falls inside this leaf's interval.
  [[nodiscard]] bool covers(double key) const { return label.covers(key); }

  /// Exact size of serialize()'s output, computed without encoding.
  /// serialize() pre-sizes its buffer with this, so encoding a bucket
  /// never reallocates.
  [[nodiscard]] size_t serializedSize() const;

  /// Wire format for storage in the DHT (versioned; see bucket.cpp).
  [[nodiscard]] std::string serialize() const;
  static std::optional<LeafBucket> deserialize(std::string_view bytes);
  /// Like deserialize(), but reports *why* a decode was rejected.
  static BucketDecodeResult deserializeEx(std::string_view bytes);
};

struct BucketDecodeResult {
  std::optional<LeafBucket> bucket;  ///< set iff error == None
  BucketDecodeError error = BucketDecodeError::None;

  [[nodiscard]] explicit operator bool() const { return bucket.has_value(); }
};

/// Algorithm 1 (leaf split), the local part: splits `bucket` at its
/// interval's median into the child that keeps the bucket's current DHT key
/// (returned in-place in `bucket`) and the child that must be shipped to
/// the peer responsible for the *old* label (returned). Theorem 2
/// guarantees this assignment: if the old label ends in 1 the local child
/// is label·1, otherwise label·0. Requires a clean bucket (no intent).
LeafBucket splitBucket(LeafBucket& bucket);

/// Split-trigger policy shared by the index and the bulk loader.
struct SplitPolicy {
  common::u32 thetaSplit = 100;
  bool countLabelSlot = true;
  common::u32 maxDepth = 20;

  [[nodiscard]] bool shouldSplit(const LeafBucket& b) const {
    if (b.effectiveSize(countLabelSlot) < thetaSplit) return false;
    return b.label.length() < maxDepth;
  }
};

/// Bulk-loading helper: splits `bucket` repeatedly until no produced bucket
/// is saturated. The surviving local bucket stays in `bucket` (its DHT key
/// is unchanged per Theorem 2); every other produced leaf is appended to
/// `remotes`, each destined for exactly one DHT-put under its own name.
void splitBucketRecursively(LeafBucket& bucket, const SplitPolicy& policy,
                            std::vector<LeafBucket>& remotes);

}  // namespace lht::core
