// Leaf buckets (paper Sec. 3.3): the only materialized objects of LHT.
//
// A bucket stores its leaf label plus the data records whose keys fall in
// the leaf's interval. The label field is what makes the scheme work: it
// summarizes the peer's local view of the partition tree ("local tree"),
// so no structural links ever need maintaining.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/label.h"
#include "index/record.h"

namespace lht::core {

using common::Label;

struct LeafBucket {
  Label label;
  std::vector<index::Record> records;

  /// Size in "record slots": the stored records plus, when
  /// `countLabelSlot`, one slot for the leaf label itself (the paper's
  /// Sec. 9.2 accounting that yields average alpha = 1/2 + 1/(2 theta)).
  [[nodiscard]] size_t effectiveSize(bool countLabelSlot) const {
    return records.size() + (countLabelSlot ? 1 : 0);
  }

  /// Whether `key` falls inside this leaf's interval.
  [[nodiscard]] bool covers(double key) const { return label.covers(key); }

  /// Wire format for storage in the DHT.
  [[nodiscard]] std::string serialize() const;
  static std::optional<LeafBucket> deserialize(std::string_view bytes);
};

/// Algorithm 1 (leaf split), the local part: splits `bucket` at its
/// interval's median into the child that keeps the bucket's current DHT key
/// (returned in-place in `bucket`) and the child that must be shipped to
/// the peer responsible for the *old* label (returned). Theorem 2
/// guarantees this assignment: if the old label ends in 1 the local child
/// is label·1, otherwise label·0.
LeafBucket splitBucket(LeafBucket& bucket);

/// Split-trigger policy shared by the index and the bulk loader.
struct SplitPolicy {
  common::u32 thetaSplit = 100;
  bool countLabelSlot = true;
  common::u32 maxDepth = 20;

  [[nodiscard]] bool shouldSplit(const LeafBucket& b) const {
    if (b.effectiveSize(countLabelSlot) < thetaSplit) return false;
    return b.label.length() < maxDepth;
  }
};

/// Bulk-loading helper: splits `bucket` repeatedly until no produced bucket
/// is saturated. The surviving local bucket stays in `bucket` (its DHT key
/// is unchanged per Theorem 2); every other produced leaf is appended to
/// `remotes`, each destined for exactly one DHT-put under its own name.
void splitBucketRecursively(LeafBucket& bucket, const SplitPolicy& policy,
                            std::vector<LeafBucket>& remotes);

}  // namespace lht::core
