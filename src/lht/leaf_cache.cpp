#include "lht/leaf_cache.h"

#include <utility>

#include "common/types.h"

namespace lht::core {

// ---------------------------------------------------------------------------
// LeafCache
// ---------------------------------------------------------------------------

LeafCache::LeafCache(size_t capacity) : capacity_(capacity) {
  common::checkInvariant(capacity >= 1, "LeafCache: capacity must be >= 1");
}

std::optional<LeafCache::Entry> LeafCache::find(double key) {
  auto it = byLo_.upper_bound(key);
  if (it == byLo_.begin()) {
    misses_ += 1;
    return std::nullopt;
  }
  --it;
  if (!it->second.label.covers(key)) {
    misses_ += 1;
    return std::nullopt;
  }
  hits_ += 1;
  return it->second;
}

void LeafCache::note(const common::Label& label, common::u64 epoch,
                     common::u64 leaseExpiresAtMs) {
  // Re-noting the same leaf (every primary read does) must not restart
  // replica rotation: a reset cursor pins the next lease reads back onto
  // slot 0 — exactly the holder that may have just timed out. Carry the
  // cursor across the erase/re-insert.
  common::u32 cursor = 0;
  auto prev = byLo_.find(label.interval().lo);
  if (prev != byLo_.end() && prev->second.label == label) {
    cursor = prev->second.replicaCursor;
  }
  invalidate(label.interval());
  if (byLo_.size() >= capacity_) {
    // Cheap overflow policy: flush. Leaf counts in our workloads sit far
    // below any reasonable capacity, so this is a correctness valve, not a
    // steady-state path.
    byLo_.clear();
    flushes_ += 1;
  }
  byLo_[label.interval().lo] = Entry{label, epoch, leaseExpiresAtMs, cursor};
}

void LeafCache::invalidate(const common::Interval& iv) {
  auto it = byLo_.lower_bound(iv.lo);
  // The entry starting left of iv.lo may still reach into iv.
  if (it != byLo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.label.interval().hi > iv.lo) it = prev;
  }
  while (it != byLo_.end() && it->first < iv.hi) {
    if (!it->second.label.interval().overlaps(iv)) {
      ++it;
      continue;
    }
    it = byLo_.erase(it);
    invalidations_ += 1;
  }
}

void LeafCache::dropLease(const common::Interval& iv) {
  auto it = byLo_.lower_bound(iv.lo);
  if (it != byLo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.label.interval().hi > iv.lo) it = prev;
  }
  for (; it != byLo_.end() && it->first < iv.hi; ++it) {
    if (!it->second.label.interval().overlaps(iv)) continue;
    if (it->second.leaseExpiresAtMs != 0) {
      it->second.leaseExpiresAtMs = 0;
      leaseDrops_ += 1;
    }
  }
}

common::u32 LeafCache::bumpReplicaCursor(const common::Label& label) {
  auto it = byLo_.find(label.interval().lo);
  if (it == byLo_.end() || !(it->second.label == label)) return 0;
  return it->second.replicaCursor++;
}

void LeafCache::clear() { byLo_.clear(); }

// ---------------------------------------------------------------------------
// BucketStore
// ---------------------------------------------------------------------------

BucketStore::BucketStore(bool enabled, size_t capacity)
    : enabled_(enabled), capacity_(capacity) {
  common::checkInvariant(capacity >= 1, "BucketStore: capacity must be >= 1");
}

BucketStore::Ref BucketStore::decode(const std::string& dhtKey,
                                     const std::string& raw) {
  if (enabled_) {
    auto it = entries_.find(dhtKey);
    if (it != entries_.end() && it->second.raw == raw) {
      hits_ += 1;
      return it->second.bucket;
    }
  }
  misses_ += 1;
  auto parsed = LeafBucket::deserialize(raw);
  common::checkInvariant(parsed.has_value(),
                         "BucketStore: stored bucket failed to decode");
  auto ref = std::make_shared<const LeafBucket>(std::move(*parsed));
  if (enabled_) {
    if (entries_.size() >= capacity_ && entries_.find(dhtKey) == entries_.end()) {
      entries_.clear();
    }
    entries_[dhtKey] = Entry{raw, ref};
  }
  return ref;
}

LeafBucket BucketStore::decodeCopy(const std::string& dhtKey,
                                   const std::string& raw) {
  return *decode(dhtKey, raw);
}

void BucketStore::note(const std::string& dhtKey, std::string raw,
                       LeafBucket bucket) {
  if (!enabled_) return;
  if (entries_.size() >= capacity_ && entries_.find(dhtKey) == entries_.end()) {
    entries_.clear();
  }
  entries_[dhtKey] =
      Entry{std::move(raw), std::make_shared<const LeafBucket>(std::move(bucket))};
}

void BucketStore::forget(const std::string& dhtKey) { entries_.erase(dhtKey); }

}  // namespace lht::core
