#include "store/durable_engine.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/obs.h"
#include "store/snapshot.h"

namespace lht::store {

DurableEngine::DurableEngine(DurableOptions options)
    : options_(std::move(options)) {
  ensureDir(options_.dir);
  recover();
}

// Recovery -------------------------------------------------------------------

void DurableEngine::recover() {
  // Garbage from an interrupted compaction is never trusted.
  for (const auto& tmp : listFiles(options_.dir, "", ".tmp")) {
    removeFile(options_.dir + "/" + tmp);
  }

  auto storeRecovered = [&](std::string&& key, std::string&& value,
                            const std::string& file, u64 valueOffset) {
    Entry e;
    if (value.size() >= options_.spillValueBytes) {
      e.spilled = true;
      e.file = file;
      e.offset = valueOffset;
      e.len = value.size();
    } else {
      e.inlineValue = std::move(value);
    }
    shardFor(key).table[std::move(key)] = std::move(e);
  };

  // Newest readable snapshot wins; older ones are fallbacks for the case
  // where the newest was damaged but its WAL prefix still exists (e.g. a
  // crash landed between publishing a snapshot and deleting old files).
  u64 snapLsn = 0;
  auto snaps = listSnapshots(options_.dir);
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    try {
      snapLsn = loadSnapshot(
          options_.dir, *it,
          [&](std::string&& key, std::string&& value, u64 valueOffset) {
            storeRecovered(std::move(key), std::move(value), *it, valueOffset);
          });
      break;
    } catch (const StoreCorruptionError&) {
      for (auto& shard : shards_) shard.table.clear();
      recovery_.usedFallbackSnapshot = true;
      if (std::next(it) == snaps.rend()) throw;  // no snapshot left to try
    }
  }
  if (snaps.empty()) recovery_.usedFallbackSnapshot = false;

  const auto scan = scanWal(
      options_.dir, snapLsn, [&](const WalRecord& rec) {
        switch (rec.op) {
          case WalOp::Put:
            storeRecovered(std::string(rec.key), std::string(rec.value),
                           walSegmentName(rec.segmentSeq), rec.valueOffset);
            break;
          case WalOp::Erase:
            shardFor(rec.key).table.erase(rec.key);
            break;
          case WalOp::Clear:
            for (auto& shard : shards_) shard.table.clear();
            break;
        }
      });

  recovery_.snapshotLsn = snapLsn;
  recovery_.replayedRecords = scan.replayedRecords;
  recovery_.tornBytesTruncated = scan.tornBytesTruncated;
  recovery_.recoveredLsn = std::max(snapLsn, scan.lastLsn);

  WalWriter::Options wo;
  wo.dir = options_.dir;
  wo.segmentBytes = options_.segmentBytes;
  wo.bufferBytes = options_.walBufferBytes;
  wo.physicalFsync = options_.physicalFsync;
  wo.injector = options_.injector;
  wal_ = std::make_unique<WalWriter>(std::move(wo), scan.maxSegmentSeq + 1,
                                     recovery_.recoveredLsn + 1);
}

// Value representation -------------------------------------------------------

DurableEngine::Entry DurableEngine::makeEntry(Value&& value,
                                              const WalAppendResult& at) {
  Entry e;
  if (value.size() >= options_.spillValueBytes) {
    e.spilled = true;
    e.file = walSegmentName(at.segmentSeq);
    e.offset = at.valueOffset;
    e.len = at.valueLen;
    obs::count("store.engine.spilled_values");
  } else {
    e.inlineValue = std::move(value);
  }
  return e;
}

Value DurableEngine::materialize(const Entry& e) const {
  if (!e.spilled) return e.inlineValue;
  // The slot may still sit in the WAL's user-space log buffer; push it to
  // the OS (no fsync) so the mapping below can see it.
  wal_->ensureFileVisible(e.file);
  // Callers hold the entry's stripe lock, which excludes compaction — the
  // file cannot be deleted out from under the mapping.
  std::lock_guard lk(mmapMutex_);
  auto it = mmaps_.find(e.file);
  if (it == mmaps_.end()) {
    it = mmaps_.emplace(e.file, MmapFile::open(options_.dir + "/" + e.file))
             .first;
  }
  return Value(it->second.view(e.offset, e.len));
}

// StorageEngine interface ----------------------------------------------------

void DurableEngine::put(const Key& key, Value value) {
  u64 lsn = 0;
  {
    auto& shard = shardFor(key);
    std::lock_guard lk(shard.mutex);
    const auto at = wal_->append(WalOp::Put, key, value);
    lsn = at.lsn;
    shard.table[key] = makeEntry(std::move(value), at);
  }
  if (options_.syncEachCommit) wal_->waitDurable(lsn);
}

std::optional<Value> DurableEngine::get(const Key& key) const {
  const auto& shard = shardFor(key);
  std::lock_guard lk(shard.mutex);
  auto it = shard.table.find(key);
  if (it == shard.table.end()) return std::nullopt;
  return materialize(it->second);
}

bool DurableEngine::erase(const Key& key) {
  u64 lsn = 0;
  {
    auto& shard = shardFor(key);
    std::lock_guard lk(shard.mutex);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) return false;
    lsn = wal_->append(WalOp::Erase, key, {}).lsn;
    shard.table.erase(it);
  }
  if (options_.syncEachCommit) wal_->waitDurable(lsn);
  return true;
}

bool DurableEngine::apply(const Key& key, const Mutator& fn) {
  bool existed = false;
  u64 lsn = 0;  // 0: the mutator was a no-op, nothing logged
  {
    auto& shard = shardFor(key);
    std::lock_guard lk(shard.mutex);
    auto it = shard.table.find(key);
    existed = it != shard.table.end();
    std::optional<Value> v;
    if (existed) v = materialize(it->second);
    fn(v);
    if (v.has_value()) {
      const auto at = wal_->append(WalOp::Put, key, *v);
      lsn = at.lsn;
      shard.table[key] = makeEntry(std::move(*v), at);
    } else if (existed) {
      lsn = wal_->append(WalOp::Erase, key, {}).lsn;
      shard.table.erase(key);
    }
  }
  if (lsn != 0 && options_.syncEachCommit) wal_->waitDurable(lsn);
  return existed;
}

size_t DurableEngine::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard.mutex);
    n += shard.table.size();
  }
  return n;
}

size_t DurableEngine::spilledCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lk(shard.mutex);
    for (const auto& [k, e] : shard.table) n += e.spilled ? 1 : 0;
  }
  return n;
}

void DurableEngine::forEach(
    const std::function<void(const Key&, const Value&)>& fn) const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const auto& shard : shards_) locks.emplace_back(shard.mutex);
  for (const auto& shard : shards_) {
    for (const auto& [key, entry] : shard.table) {
      const Value v = materialize(entry);
      fn(key, v);
    }
  }
}

void DurableEngine::clear() {
  u64 lsn = 0;
  {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(kShards);
    for (auto& shard : shards_) locks.emplace_back(shard.mutex);
    lsn = wal_->append(WalOp::Clear, {}, {}).lsn;
    for (auto& shard : shards_) shard.table.clear();
  }
  if (options_.syncEachCommit) wal_->waitDurable(lsn);
}

void DurableEngine::sync() { wal_->waitDurable(wal_->appendedLsn()); }

void DurableEngine::compact() {
  const auto t0 = std::chrono::steady_clock::now();
  std::lock_guard compacting(compactMutex_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (auto& shard : shards_) locks.emplace_back(shard.mutex);

  // Seal the log: everything appended so far becomes durable in segments
  // <= sealedSeq; the writer moves on to a fresh segment whose records all
  // carry lsn > snapLsn.
  const u64 sealedSeq = wal_->rotate();
  const u64 snapLsn = wal_->appendedLsn();

  u64 count = 0;
  for (const auto& shard : shards_) count += shard.table.size();

  SnapshotWriter writer(options_.dir, snapLsn, count, options_.injector,
                        options_.physicalFsync);
  for (auto& shard : shards_) {
    for (auto& [key, entry] : shard.table) {
      const Value v = materialize(entry);
      const u64 valueOffset = writer.add(key, v);
      if (entry.spilled) {
        // Re-point the slot into the snapshot: its old home (a sealed
        // segment or an older snapshot) is deleted below.
        entry.file = snapshotName(snapLsn);
        entry.offset = valueOffset;
        entry.len = v.size();
      }
    }
  }
  const std::string published = writer.finish();

  // The snapshot now covers every sealed segment and supersedes every
  // older snapshot; delete both, and drop mappings of deleted files.
  {
    std::lock_guard lk(mmapMutex_);
    for (const auto& name : listFiles(options_.dir, "wal-", ".log")) {
      // Segment names sort by sequence; keep only the writer's current one.
      if (name < walSegmentName(sealedSeq + 1)) {
        mmaps_.erase(name);
        removeFile(options_.dir + "/" + name);
      }
    }
    for (const auto& name : listSnapshots(options_.dir)) {
      if (name != published) {
        mmaps_.erase(name);
        removeFile(options_.dir + "/" + name);
      }
    }
  }
  fsyncDir(options_.dir, options_.injector, options_.physicalFsync);

  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  obs::count("store.snapshot.count");
  obs::observeMs("store.snapshot.duration_ms", ms);
}

std::unique_ptr<StorageEngine> makeDurableEngine(DurableOptions options) {
  return std::make_unique<DurableEngine>(std::move(options));
}

}  // namespace lht::store
