// DurableEngine: the crash-surviving storage engine (DESIGN.md §11).
//
// Same sharded shape as MemEngine, with every mutation logged to a
// group-committed WAL before the in-memory table changes, periodic
// snapshot + log-truncation compaction, and values at or above a spill
// threshold kept on disk (served by reference through an mmap'd reader)
// instead of inline — the table then holds only keys and slot refs, so the
// store can exceed what the inline representation would fit in RAM.
//
// Construction IS recovery: open the directory, load the newest readable
// snapshot (falling back to an older one if the newest is damaged and the
// log still covers the difference), replay the WAL suffix with per-record
// checksum verification, truncate a torn tail, and start a fresh segment.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "store/engine.h"
#include "store/mmap_file.h"
#include "store/wal.h"

namespace lht::store {

struct DurableOptions {
  std::string dir;                 ///< storage directory (created on open)
  u64 segmentBytes = 4ull << 20;   ///< WAL segment rotation size
  u64 walBufferBytes = 256ull << 10;  ///< WAL log-buffer threshold (0: none)
  /// Wait for group commit (fsync) before each mutation returns. Off: the
  /// log is written eagerly but made durable only by sync()/compact()/
  /// rotation — the usual group-commit vs. buffered trade.
  bool syncEachCommit = false;
  /// False counts fsync boundaries without issuing the syscall — the
  /// restart campaign's speed knob (tearing happens at write boundaries,
  /// which are unaffected).
  bool physicalFsync = true;
  /// Values with size >= this stay on disk as slot refs (mmap-served).
  u64 spillValueBytes = u64(-1);
  CrashInjector* injector = nullptr;  ///< crash seam; nullptr in production
};

class DurableEngine final : public StorageEngine {
 public:
  /// Opens (and recovers) the store at options.dir. Throws
  /// StoreCorruptionError when the on-disk state is damaged beyond the
  /// documented torn-tail/fallback repairs.
  explicit DurableEngine(DurableOptions options);

  void put(const Key& key, Value value) override;
  [[nodiscard]] std::optional<Value> get(const Key& key) const override;
  bool erase(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  [[nodiscard]] size_t size() const override;
  void forEach(
      const std::function<void(const Key&, const Value&)>& fn) const override;
  void clear() override;
  void sync() override;
  void compact() override;
  [[nodiscard]] const char* name() const override { return "durable"; }

  struct RecoveryInfo {
    u64 snapshotLsn = 0;        ///< LSN of the snapshot recovery loaded
    u64 recoveredLsn = 0;       ///< LSN the store resumed at
    u64 replayedRecords = 0;    ///< WAL records applied on top
    u64 tornBytesTruncated = 0; ///< bytes cut off the torn tail
    bool usedFallbackSnapshot = false;  ///< newest snapshot was unreadable
  };
  [[nodiscard]] const RecoveryInfo& recoveryInfo() const { return recovery_; }

  [[nodiscard]] u64 appendedLsn() const { return wal_->appendedLsn(); }
  [[nodiscard]] u64 durableLsn() const { return wal_->durableLsn(); }
  /// Entries currently held as on-disk slot refs rather than inline.
  [[nodiscard]] size_t spilledCount() const;

  static constexpr size_t kShards = 64;  // power of two

 private:
  /// A stored value: inline bytes, or a reference into a WAL segment /
  /// snapshot file when it met the spill threshold.
  struct Entry {
    Value inlineValue;
    bool spilled = false;
    std::string file;  ///< segment/snapshot file name (spilled only)
    u64 offset = 0;
    u64 len = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry> table;
  };

  Shard& shardFor(const Key& key) {
    return shards_[std::hash<Key>{}(key) & (kShards - 1)];
  }
  const Shard& shardFor(const Key& key) const {
    return shards_[std::hash<Key>{}(key) & (kShards - 1)];
  }

  Entry makeEntry(Value&& value, const WalAppendResult& at);
  [[nodiscard]] Value materialize(const Entry& e) const;
  void recover();

  DurableOptions options_;
  std::array<Shard, kShards> shards_;
  std::unique_ptr<WalWriter> wal_;
  std::mutex compactMutex_;
  mutable std::mutex mmapMutex_;
  mutable std::unordered_map<std::string, MmapFile> mmaps_;
  RecoveryInfo recovery_;
};

std::unique_ptr<StorageEngine> makeDurableEngine(DurableOptions options);

}  // namespace lht::store
