#include "store/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lht::store {

namespace {

u64 statSize(int fd, const std::string& path) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    throw StoreIoError("fstat " + path + ": " + std::strerror(errno));
  }
  return static_cast<u64>(st.st_size);
}

}  // namespace

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      base_(std::exchange(other.base_, nullptr)),
      mapped_(std::exchange(other.mapped_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    base_ = std::exchange(other.base_, nullptr);
    mapped_ = std::exchange(other.mapped_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

MmapFile MmapFile::open(const std::string& path) {
  MmapFile f;
  f.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (f.fd_ < 0) {
    throw StoreIoError("open " + path + ": " + std::strerror(errno));
  }
  f.path_ = path;
  f.remap();
  return f;
}

void MmapFile::remap() {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_);
    base_ = nullptr;
    mapped_ = 0;
  }
  const u64 size = statSize(fd_, path_);
  if (size == 0) return;  // empty files map on first non-empty remap
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) {
    throw StoreIoError("mmap " + path_ + ": " + std::strerror(errno));
  }
  base_ = p;
  mapped_ = size;
}

std::string_view MmapFile::view(u64 offset, u64 len) {
  if (offset + len > mapped_) remap();
  if (offset + len > mapped_) {
    throw StoreCorruptionError("mmap range [" + std::to_string(offset) + ", +" +
                               std::to_string(len) + ") beyond " + path_ +
                               " (size " + std::to_string(mapped_) + ")");
  }
  return {static_cast<const char*>(base_) + offset, len};
}

void MmapFile::close() {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_);
    base_ = nullptr;
    mapped_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace lht::store
