// MemTable: the unsynchronized key/value core every in-memory store shares.
//
// This is the object that used to appear inline as a raw
// std::unordered_map<Key, Value> in every DHT substrate (one per LocalDht
// shard, one per overlay node). Extracting it into the store layer gives
// all of them one storage primitive with the same read-modify-write
// semantics as the full StorageEngine interface, so a substrate's per-node
// store and a peer's durable store speak the same contract.
//
// Not synchronized: callers own the locking, exactly as they owned it when
// the map was a bare member (LocalDht shard mutexes, the overlay
// substrates' striped store locks).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lht::store {

using Key = std::string;
using Value = std::string;

/// Read-modify-write body: sees the stored value (disengaged when absent)
/// and may create, rewrite, or erase it (reset() == erase). Structurally
/// identical to dht::Mutator; redeclared here so the store layer stays
/// below the DHT layer.
using Mutator = std::function<void(std::optional<Value>&)>;

class MemTable {
 public:
  void put(const Key& key, Value value) { map_[key] = std::move(value); }

  [[nodiscard]] std::optional<Value> get(const Key& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Borrowed view of a stored value (nullptr when absent). Valid until
  /// the next mutation; used where a copy per probe would hurt (replica
  /// pushes, consistency scans).
  [[nodiscard]] const Value* find(const Key& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool contains(const Key& key) const {
    return map_.find(key) != map_.end();
  }

  /// Removes `key`; returns whether it was present.
  bool erase(const Key& key) { return map_.erase(key) > 0; }

  /// Removes and returns `key`'s value (nullopt when absent). The
  /// key-handoff primitive of the overlay substrates' churn paths.
  std::optional<Value> take(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    Value v = std::move(it->second);
    map_.erase(it);
    return v;
  }

  /// Atomic-with-respect-to-the-caller's-lock read-modify-write; returns
  /// whether the key existed before the call.
  bool apply(const Key& key, const Mutator& fn) {
    auto it = map_.find(key);
    const bool existed = it != map_.end();
    std::optional<Value> v;
    if (existed) v = std::move(it->second);
    fn(v);
    if (v.has_value()) {
      map_[key] = std::move(*v);
    } else if (existed) {
      map_.erase(key);
    }
    return existed;
  }

  /// Drains the whole table into (key, value) pairs, leaving it empty.
  /// Used when a peer leaves and its keys must re-home.
  std::vector<std::pair<Key, Value>> drain() {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(map_.size());
    for (auto& [k, v] : map_) out.emplace_back(k, std::move(v));
    map_.clear();
    return out;
  }

  void forEach(const std::function<void(const Key&, const Value&)>& fn) const {
    for (const auto& [k, v] : map_) fn(k, v);
  }

  [[nodiscard]] size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

 private:
  std::unordered_map<Key, Value> map_;
};

}  // namespace lht::store
