#include "store/io_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace lht::store {

namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw StoreIoError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

// CrashInjector --------------------------------------------------------------

void CrashInjector::disarm() {
  armed_ = false;
  crashed_ = false;
}

void CrashInjector::arm(u64 crashAtEvent, double tornFraction) {
  armed_ = true;
  crashed_ = false;
  crashAtEvent_ = crashAtEvent;
  tornFraction_ = tornFraction;
}

bool CrashInjector::crashed() const { return crashed_; }

u64 CrashInjector::eventsObserved() const { return events_; }

size_t CrashInjector::admitWrite(size_t len) {
  if (crashed_) throw StoreCrashError("storage crashed (post-crash write)");
  const u64 event = events_++;
  if (!armed_ || event != crashAtEvent_) return len;
  if (tornFraction_ > 0.0 && len > 1) {
    auto prefix = static_cast<size_t>(static_cast<double>(len) * tornFraction_);
    prefix = std::min(prefix, len - 1);  // a *proper* prefix, never the whole
    if (prefix > 0) return prefix;      // caller persists it, then crashNow()
  }
  crashNow("injected crash at write boundary");
}

void CrashInjector::admitFsync() {
  if (crashed_) throw StoreCrashError("storage crashed (post-crash fsync)");
  const u64 event = events_++;
  if (armed_ && event == crashAtEvent_) {
    crashNow("injected crash at fsync boundary");
  }
}

void CrashInjector::crashNow(const std::string& what) {
  crashed_ = true;
  throw StoreCrashError(what);
}

// File -----------------------------------------------------------------------

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)),
      injector_(std::exchange(other.injector_, nullptr)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
    injector_ = std::exchange(other.injector_, nullptr);
  }
  return *this;
}

File File::create(const std::string& path, CrashInjector* injector) {
  File f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (f.fd_ < 0) throwErrno("create", path);
  f.path_ = path;
  f.injector_ = injector;
  return f;
}

File File::openAppend(const std::string& path, CrashInjector* injector) {
  File f;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (f.fd_ < 0) throwErrno("open", path);
  const auto size = fileSize(path);
  if (!size) throwErrno("stat", path);
  f.size_ = *size;
  f.path_ = path;
  f.injector_ = injector;
  return f;
}

void File::append(std::string_view bytes) {
  if (bytes.empty()) return;
  size_t allowed = bytes.size();
  bool crashAfter = false;
  if (injector_ != nullptr) {
    allowed = injector_->admitWrite(bytes.size());
    crashAfter = allowed < bytes.size();
  }
  size_t done = 0;
  while (done < allowed) {
    const ssize_t n = ::write(fd_, bytes.data() + done, allowed - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("write", path_);
    }
    done += static_cast<size_t>(n);
  }
  size_ += done;
  if (crashAfter) injector_->crashNow("injected torn write");
}

void File::sync(bool physical) {
  if (injector_ != nullptr) injector_->admitFsync();
  if (!physical) return;
  if (::fdatasync(fd_) != 0) throwErrno("fdatasync", path_);
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// Directory helpers ----------------------------------------------------------

void ensureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw StoreIoError("mkdir " + dir + ": " + ec.message());
}

std::vector<std::string> listFiles(const std::string& dir,
                                   std::string_view prefix,
                                   std::string_view suffix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    out.push_back(name);
  }
  if (ec) throw StoreIoError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

void removeFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) throw StoreIoError("remove " + path + ": " + ec.message());
}

void atomicRename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) throwErrno("rename", from);
}

void fsyncDir(const std::string& dir, CrashInjector* injector, bool physical) {
  if (injector != nullptr) injector->admitFsync();
  if (!physical) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throwErrno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throwErrno("fsync dir", dir);
}

void truncateFile(const std::string& path, u64 size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throwErrno("truncate", path);
  }
}

std::optional<u64> fileSize(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<u64>(n);
}

}  // namespace lht::store
