// Segmented, checksummed write-ahead log (DESIGN.md §11).
//
// Segment files are named wal-<seq>.log (seq zero-padded, monotone across
// the store's lifetime — a writer never reopens an old segment; restart
// always starts a fresh one). Each segment begins with a fixed header
//
//   [u32 magic "LWAL"] [u32 version] [u64 segmentSeq] [u64 firstLsn]
//
// followed by records
//
//   [u32 payloadLen] [u64 lsn] [u64 checksum] [payload]
//
// where checksum = xxhash64(payload, seed = lsn) — seeding with the LSN
// means a record blitted to the wrong position cannot masquerade as valid.
// Payload: [u8 op] then op-specific fields (Put: key, value; Erase: key;
// Clear: nothing), length-prefixed via the common codec.
//
// LSNs are assigned densely (+1 per record) across segments; a segment's
// first record carries exactly header.firstLsn. Recovery exploits both:
// any gap or reorder is corruption, and a malformed suffix of the *last*
// segment is a torn tail (truncated, expected after a crash) while damage
// anywhere else is real corruption (typed error, never silently dropped).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.h"
#include "store/io_file.h"

namespace lht::store {

using common::u32;

inline constexpr u32 kWalMagic = 0x4C57414C;  // "LWAL"
inline constexpr u32 kWalVersion = 1;
inline constexpr u64 kWalHeaderBytes = 4 + 4 + 8 + 8;
inline constexpr u64 kWalRecordHeaderBytes = 4 + 8 + 8;

enum class WalOp : common::u8 { Put = 1, Erase = 2, Clear = 3 };

/// Segment file name for `seq` ("wal-00000000000000000042.log").
std::string walSegmentName(u64 seq);

/// Where one append landed. valueOffset/valueLen locate the raw value
/// bytes inside the segment file (Put only) so large values can be served
/// from disk by reference instead of being kept inline.
struct WalAppendResult {
  u64 lsn = 0;
  u64 segmentSeq = 0;
  u64 valueOffset = 0;  ///< absolute file offset of the value bytes
  u64 valueLen = 0;
};

/// Appender with group commit. append() is cheap: serialize into a
/// user-space log buffer under a short internal lock, rotating segments as
/// they fill. The buffer reaches the OS (one write() covering many
/// records) on a durability barrier, on rotation, when it exceeds
/// bufferBytes, or when a spill reader needs the bytes mmap-visible —
/// a crash loses whatever was only buffered, which is exactly the
/// not-yet-durable window the contract already allows. waitDurable(lsn) is
/// the durability barrier: the first waiter becomes the flush leader and
/// issues one fsync covering every record appended so far, while later
/// waiters block on a condvar and are released by that same fsync — N
/// concurrent commits cost one fsync, not N.
class WalWriter {
 public:
  struct Options {
    std::string dir;
    u64 segmentBytes = 4ull << 20;  ///< rotate when a segment reaches this
    u64 bufferBytes = 256ull << 10; ///< log-buffer flush threshold (0: none)
    bool physicalFsync = true;      ///< false: count boundaries, skip syscall
    CrashInjector* injector = nullptr;
  };

  /// Opens a fresh segment with sequence `segmentSeq`; the first record
  /// will carry `nextLsn`.
  WalWriter(Options options, u64 segmentSeq, u64 nextLsn);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; assigns and returns its LSN. The bytes reach the
  /// OS (visible to mmap readers) before this returns, but are not durable
  /// until waitDurable() covers the LSN.
  WalAppendResult append(WalOp op, std::string_view key,
                         std::string_view value);

  /// Blocks until every record with lsn' <= lsn is on stable storage.
  void waitDurable(u64 lsn);

  /// Pushes any buffered records of segment `fileName` to the OS so mmap
  /// readers can see them. Not a durability barrier (no fsync). No-op for
  /// sealed segments — their bytes were flushed when the writer moved on.
  void ensureFileVisible(const std::string& fileName);

  /// Seals the current segment (fsync + close) and opens the next one.
  /// Everything appended so far becomes durable. Returns the sealed
  /// segment's sequence number.
  u64 rotate();

  [[nodiscard]] u64 appendedLsn() const;  ///< last LSN handed out (0: none)
  [[nodiscard]] u64 durableLsn() const;
  [[nodiscard]] u64 currentSegmentSeq() const;

 private:
  void openSegmentLocked();
  u64 rotateLocked();
  void flushBufferLocked();
  [[nodiscard]] u64 logicalSizeLocked() const {
    return file_.size() + buffer_.size();
  }

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  File file_;
  std::string buffer_;  ///< records accepted but not yet written to the OS
  u64 segmentSeq_ = 0;
  u64 appendedLsn_ = 0;  // last assigned
  u64 durableLsn_ = 0;
  bool flushInProgress_ = false;
  bool crashed_ = false;
};

/// One decoded record during recovery.
struct WalRecord {
  WalOp op = WalOp::Put;
  std::string key;
  std::string value;
  u64 lsn = 0;
  u64 segmentSeq = 0;
  u64 valueOffset = 0;  ///< absolute offset of value bytes in the segment
  u64 valueLen = 0;
};

struct WalScanResult {
  u64 lastLsn = 0;         ///< highest LSN seen (valid records only)
  u64 replayedRecords = 0; ///< records with lsn > snapLsn handed to apply
  u64 scannedRecords = 0;  ///< all valid records (checksums verified)
  u64 maxSegmentSeq = 0;   ///< highest segment seq on disk (0: no segments)
  u64 tornBytesTruncated = 0;
};

/// Replays every segment in `dir` in sequence order, verifying checksums
/// and LSN continuity. Records with lsn > snapLsn are handed to `apply`
/// (older ones are already covered by the snapshot but still verified).
/// A malformed suffix of the final segment is cut off with truncateFile;
/// malformation anywhere else throws StoreCorruptionError.
WalScanResult scanWal(const std::string& dir, u64 snapLsn,
                      const std::function<void(const WalRecord&)>& apply);

}  // namespace lht::store
