// Typed failure taxonomy of the durability layer.
//
// Storage faults are not DHT faults: a DhtError means a (simulated) network
// interaction went wrong and a retry may succeed, while a StoreError means
// the peer's own disk state is in trouble — retrying the same call cannot
// help, and no decorator may absorb it. Keeping the hierarchies disjoint is
// what lets the resilience stack (dht/decorators.h) retry network failures
// aggressively while storage corruption and injected storage crashes
// propagate straight to the harness.
#pragma once

#include <stdexcept>
#include <string>

namespace lht::store {

/// Base of every storage failure.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

/// An operating-system I/O call failed (open/write/fsync/mmap/rename).
class StoreIoError : public StoreError {
 public:
  explicit StoreIoError(const std::string& what) : StoreError(what) {}
};

/// On-disk bytes failed validation: bad magic, bad version, a checksum
/// mismatch outside the torn-tail window, or an impossible length. Raised
/// only where corruption is NOT survivable; torn log tails are silently
/// truncated by recovery instead (see wal.h).
class StoreCorruptionError : public StoreError {
 public:
  explicit StoreCorruptionError(const std::string& what) : StoreError(what) {}
};

/// An injected storage crash (restart fault campaign). Deliberately NOT a
/// StoreError subclass a retry layer might absorb by category — like
/// dht::CrashError it models the death of the process, so it gets its own
/// branch of the hierarchy and must reach the test harness.
class StoreCrashError : public std::runtime_error {
 public:
  explicit StoreCrashError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace lht::store
