#include "store/wal.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/codec.h"
#include "common/hash.h"
#include "obs/obs.h"

namespace lht::store {

namespace {

std::string encodePayload(WalOp op, std::string_view key,
                          std::string_view value) {
  common::Encoder enc(1 + 4 + key.size() + 4 + value.size());
  enc.putU8(static_cast<common::u8>(op));
  switch (op) {
    case WalOp::Put:
      enc.putString(key);
      enc.putString(value);
      break;
    case WalOp::Erase:
      enc.putString(key);
      break;
    case WalOp::Clear:
      break;
  }
  return std::move(enc).take();
}

}  // namespace

std::string walSegmentName(u64 seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

// WalWriter ------------------------------------------------------------------

WalWriter::WalWriter(Options options, u64 segmentSeq, u64 nextLsn)
    : options_(std::move(options)),
      segmentSeq_(segmentSeq),
      appendedLsn_(nextLsn == 0 ? 0 : nextLsn - 1),
      durableLsn_(appendedLsn_) {
  std::lock_guard lk(mutex_);
  openSegmentLocked();
}

WalWriter::~WalWriter() {
  // Best-effort seal; a crashed writer leaves the tail for recovery.
  if (crashed_ || !file_.isOpen()) return;
  try {
    flushBufferLocked();
    file_.sync(options_.physicalFsync);
  } catch (...) {
    // Destructor: the injector may fire here; recovery handles the rest.
  }
  file_.close();
}

void WalWriter::flushBufferLocked() {
  if (buffer_.empty()) return;
  file_.append(buffer_);
  buffer_.clear();
}

void WalWriter::openSegmentLocked() {
  const std::string path = options_.dir + "/" + walSegmentName(segmentSeq_);
  file_ = File::create(path, options_.injector);
  common::Encoder header(kWalHeaderBytes);
  header.putU32(kWalMagic);
  header.putU32(kWalVersion);
  header.putU64(segmentSeq_);
  header.putU64(appendedLsn_ + 1);  // firstLsn this segment can carry
  file_.append(header.buffer());
}

WalAppendResult WalWriter::append(WalOp op, std::string_view key,
                                  std::string_view value) {
  const std::string payload = encodePayload(op, key, value);

  std::unique_lock lk(mutex_);
  if (crashed_) throw StoreCrashError("wal writer crashed");
  // Rotate when full — but never while a flush leader holds the current
  // file unlocked in an fsync; the rotation simply happens on a later
  // append instead.
  if (logicalSizeLocked() >= options_.segmentBytes && !flushInProgress_) {
    try {
      rotateLocked();
    } catch (const StoreCrashError&) {
      crashed_ = true;
      cv_.notify_all();
      throw;
    }
  }
  const u64 lsn = ++appendedLsn_;
  common::Encoder rec(kWalRecordHeaderBytes + payload.size());
  rec.putU32(static_cast<u32>(payload.size()));
  rec.putU64(lsn);
  rec.putU64(common::hash::xxhash64(payload, lsn));
  const u64 recordOffset = logicalSizeLocked();
  WalAppendResult result;
  result.lsn = lsn;
  result.segmentSeq = segmentSeq_;
  result.valueLen = value.size();
  // Value bytes sit after the record header, op byte, key (with length
  // prefix) and the value's own length prefix.
  result.valueOffset =
      recordOffset + kWalRecordHeaderBytes + 1 + 4 + key.size() + 4;
  buffer_.append(rec.buffer());
  buffer_.append(payload);
  if (buffer_.size() >= std::max<u64>(options_.bufferBytes, 1)) {
    try {
      flushBufferLocked();
    } catch (const StoreCrashError&) {
      crashed_ = true;
      cv_.notify_all();
      throw;
    }
  }
  obs::count("store.wal.appended_records");
  obs::count("store.wal.appended_bytes",
             kWalRecordHeaderBytes + payload.size());
  return result;
}

void WalWriter::waitDurable(u64 lsn) {
  std::unique_lock lk(mutex_);
  while (true) {
    if (crashed_) throw StoreCrashError("wal writer crashed");
    if (durableLsn_ >= lsn) return;
    if (!flushInProgress_) break;  // become the flush leader
    cv_.wait(lk);
  }
  flushInProgress_ = true;
  const u64 target = appendedLsn_;
  try {
    flushBufferLocked();  // ordered with appends, so under the lock
  } catch (...) {
    crashed_ = true;
    flushInProgress_ = false;
    cv_.notify_all();
    throw;
  }
  lk.unlock();
  try {
    file_.sync(options_.physicalFsync);
  } catch (...) {
    lk.lock();
    crashed_ = true;
    flushInProgress_ = false;
    cv_.notify_all();
    throw;
  }
  lk.lock();
  if (durableLsn_ < target) durableLsn_ = target;
  flushInProgress_ = false;
  obs::count("store.wal.fsyncs");
  obs::count("store.wal.group_commits");
  cv_.notify_all();
}

u64 WalWriter::rotate() {
  std::unique_lock lk(mutex_);
  if (crashed_) throw StoreCrashError("wal writer crashed");
  while (flushInProgress_) cv_.wait(lk);
  if (crashed_) throw StoreCrashError("wal writer crashed");
  try {
    return rotateLocked();
  } catch (const StoreCrashError&) {
    crashed_ = true;
    cv_.notify_all();
    throw;
  }
}

void WalWriter::ensureFileVisible(const std::string& fileName) {
  std::unique_lock lk(mutex_);
  if (crashed_) throw StoreCrashError("wal writer crashed");
  if (buffer_.empty() || fileName != walSegmentName(segmentSeq_)) return;
  try {
    flushBufferLocked();
  } catch (const StoreCrashError&) {
    crashed_ = true;
    cv_.notify_all();
    throw;
  }
}

u64 WalWriter::rotateLocked() {
  const u64 sealed = segmentSeq_;
  flushBufferLocked();
  file_.sync(options_.physicalFsync);
  obs::count("store.wal.fsyncs");
  file_.close();
  durableLsn_ = appendedLsn_;
  ++segmentSeq_;
  openSegmentLocked();
  obs::count("store.wal.rotations");
  cv_.notify_all();
  return sealed;
}

u64 WalWriter::appendedLsn() const {
  std::lock_guard lk(mutex_);
  return appendedLsn_;
}

u64 WalWriter::durableLsn() const {
  std::lock_guard lk(mutex_);
  return durableLsn_;
}

u64 WalWriter::currentSegmentSeq() const {
  std::lock_guard lk(mutex_);
  return segmentSeq_;
}

// Recovery scan --------------------------------------------------------------

namespace {

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreIoError("open " + path + " for recovery scan");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

WalScanResult scanWal(const std::string& dir, u64 snapLsn,
                      const std::function<void(const WalRecord&)>& apply) {
  WalScanResult out;
  const auto names = listFiles(dir, "wal-", ".log");
  u64 expectLsn = 0;  // 0: take the first segment's firstLsn on faith
  for (size_t i = 0; i < names.size(); ++i) {
    const bool lastSegment = i + 1 == names.size();
    const std::string path = dir + "/" + names[i];
    const std::string bytes = readWholeFile(path);
    common::Decoder dec(bytes);
    auto magic = dec.getU32();
    auto version = dec.getU32();
    auto segmentSeq = dec.getU64();
    auto firstLsn = dec.getU64();
    if (!magic || *magic != kWalMagic || !version || *version != kWalVersion ||
        !segmentSeq || !firstLsn) {
      if (lastSegment) {
        // Crash during segment creation: header never completed. The
        // whole file is a torn tail.
        out.tornBytesTruncated += bytes.size();
        removeFile(path);
        break;
      }
      throw StoreCorruptionError("bad WAL segment header: " + path);
    }
    if (expectLsn != 0 && *firstLsn != expectLsn) {
      throw StoreCorruptionError(
          "WAL segment " + path + " firstLsn " + std::to_string(*firstLsn) +
          " != expected " + std::to_string(expectLsn));
    }
    if (expectLsn == 0) {
      // First readable segment. Everything up to snapLsn is covered by the
      // snapshot being recovered; records in (snapLsn, firstLsn) exist
      // nowhere — that snapshot cannot be recovered from this log.
      if (*firstLsn > snapLsn + 1) {
        throw StoreCorruptionError(
            "WAL gap: snapshot covers lsn <= " + std::to_string(snapLsn) +
            " but the oldest segment starts at lsn " +
            std::to_string(*firstLsn));
      }
      expectLsn = *firstLsn;
    }
    u64 recordStart = kWalHeaderBytes;
    while (!dec.atEnd()) {
      auto payloadLen = dec.getU32();
      auto lsn = dec.getU64();
      auto checksum = dec.getU64();
      bool torn = !payloadLen || !lsn || !checksum ||
                  dec.remaining() < *payloadLen;
      std::string_view payload;
      if (!torn) {
        payload = std::string_view(bytes).substr(
            recordStart + kWalRecordHeaderBytes, *payloadLen);
        // Advance the decoder past the payload by re-seating it.
        dec = common::Decoder(std::string_view(bytes).substr(
            recordStart + kWalRecordHeaderBytes + *payloadLen));
        torn = (expectLsn != 0 && *lsn != expectLsn) ||
               common::hash::xxhash64(payload, *lsn) != *checksum;
      }
      if (torn) {
        if (!lastSegment) {
          throw StoreCorruptionError("corrupt WAL record at " + path +
                                     " offset " + std::to_string(recordStart));
        }
        out.tornBytesTruncated += bytes.size() - recordStart;
        truncateFile(path, recordStart);
        dec = common::Decoder(std::string_view{});
        break;
      }
      // Decode the payload.
      common::Decoder pd(payload);
      auto opByte = pd.getU8();
      WalRecord rec;
      bool ok = opByte.has_value();
      if (ok) {
        switch (static_cast<WalOp>(*opByte)) {
          case WalOp::Put: {
            auto k = pd.getString();
            auto v = pd.getString();
            ok = k && v && pd.atEnd();
            if (ok) {
              rec.op = WalOp::Put;
              rec.key = std::move(*k);
              rec.value = std::move(*v);
              rec.valueOffset = recordStart + kWalRecordHeaderBytes + 1 + 4 +
                                rec.key.size() + 4;
              rec.valueLen = rec.value.size();
            }
            break;
          }
          case WalOp::Erase: {
            auto k = pd.getString();
            ok = k && pd.atEnd();
            if (ok) {
              rec.op = WalOp::Erase;
              rec.key = std::move(*k);
            }
            break;
          }
          case WalOp::Clear:
            ok = pd.atEnd();
            rec.op = WalOp::Clear;
            break;
          default:
            ok = false;
        }
      }
      if (!ok) {
        // The checksum matched, so these bytes are what was written — a
        // payload that does not decode is a writer bug or real corruption,
        // never a torn tail.
        throw StoreCorruptionError("undecodable WAL payload at " + path +
                                   " lsn " + std::to_string(*lsn));
      }
      rec.lsn = *lsn;
      rec.segmentSeq = *segmentSeq;
      out.lastLsn = *lsn;
      out.scannedRecords += 1;
      expectLsn = *lsn + 1;
      if (*lsn > snapLsn) {
        apply(rec);
        out.replayedRecords += 1;
      }
      recordStart += kWalRecordHeaderBytes + *payloadLen;
    }
    out.maxSegmentSeq = std::max(out.maxSegmentSeq, *segmentSeq);
  }
  obs::count("store.recovery.replayed_records", out.replayedRecords);
  return out;
}

}  // namespace lht::store
