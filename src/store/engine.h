// StorageEngine: the storage seam of a DHT peer.
//
// Every substrate used to hold its stored key/value pairs in ad-hoc
// unordered_maps; this interface extracts that into a swappable engine so
// the same substrate can run volatile (MemEngine — the old maps, verbatim)
// or durable (DurableEngine — a group-committed write-ahead log plus
// snapshots, surviving a process restart). LocalDht owns exactly one
// engine; the engine is what a "peer's disk" is in this codebase.
//
// Thread safety: engines are internally synchronized — concurrent calls
// from many client threads are safe, and apply() runs its mutator
// atomically per key (the "executes at the storing peer" contract the
// substrates rely on). forEach observes a consistent cut.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "store/mem_table.h"

namespace lht::store {

class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  /// Stores `value` under `key` (create or overwrite).
  virtual void put(const Key& key, Value value) = 0;

  /// The stored value, nullopt when absent.
  [[nodiscard]] virtual std::optional<Value> get(const Key& key) const = 0;

  /// Removes `key`; returns whether it was present.
  virtual bool erase(const Key& key) = 0;

  /// Atomic per-key read-modify-write; returns whether the key existed
  /// before the call. The mutator runs under the engine's per-key lock.
  virtual bool apply(const Key& key, const Mutator& fn) = 0;

  /// Key/value pairs currently stored.
  [[nodiscard]] virtual size_t size() const = 0;

  /// Visits every pair as one consistent cut (no concurrent mutation is
  /// interleaved). Administrative — snapshots, verification walks.
  virtual void forEach(
      const std::function<void(const Key&, const Value&)>& fn) const = 0;

  /// Drops everything (logged as a single record on durable engines).
  virtual void clear() = 0;

  /// Forces every acknowledged mutation onto stable storage. No-op on
  /// volatile engines.
  virtual void sync() {}

  /// Snapshot + log truncation on durable engines; no-op otherwise.
  virtual void compact() {}

  /// Engine kind for diagnostics ("mem", "durable").
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The default engine: the substrates' previous sharded in-memory map.
std::unique_ptr<StorageEngine> makeMemEngine();

}  // namespace lht::store
