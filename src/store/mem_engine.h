// MemEngine: the volatile storage engine, extracted from LocalDht.
//
// Structurally identical to LocalDht's previous inline storage: the key
// space is split into kShards stripes, each its own {mutex, MemTable}. An
// operation locks exactly the stripe its key hashes to, so disjoint keys
// proceed in parallel and apply() stays atomic per key. forEach/clear lock
// all stripes in index order (consistent cut, deadlock-free).
#pragma once

#include <array>
#include <mutex>

#include "store/engine.h"

namespace lht::store {

class MemEngine final : public StorageEngine {
 public:
  void put(const Key& key, Value value) override;
  [[nodiscard]] std::optional<Value> get(const Key& key) const override;
  bool erase(const Key& key) override;
  bool apply(const Key& key, const Mutator& fn) override;
  [[nodiscard]] size_t size() const override;
  void forEach(
      const std::function<void(const Key&, const Value&)>& fn) const override;
  void clear() override;
  [[nodiscard]] const char* name() const override { return "mem"; }

  static constexpr size_t kShards = 64;  // power of two

 private:
  struct Shard {
    mutable std::mutex mutex;
    MemTable table;
  };

  Shard& shardFor(const Key& key) {
    return shards_[std::hash<Key>{}(key) & (kShards - 1)];
  }
  const Shard& shardFor(const Key& key) const {
    return shards_[std::hash<Key>{}(key) & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace lht::store
