// Low-level file primitives of the durability layer, plus the crash
// injection seam the restart fault campaign drives.
//
// Every byte the WAL and snapshot writers persist goes through File, and
// every write()/fsync() boundary is announced to the attached CrashInjector
// first. The injector can kill the "process" at any such boundary —
// optionally persisting only a prefix of the crashing write (a torn write)
// — by throwing StoreCrashError, which no layer may absorb. Reopening the
// same directory afterwards exercises exactly the recovery path a real
// crash-restart would.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "store/store_error.h"

namespace lht::store {

using common::u64;

/// Deterministic crash scheduler. Counts I/O boundary events (each write()
/// and each fsync() the storage layer performs); when armed, the event with
/// index `crashAtEvent` does not complete: a write persists only
/// floor(len * tornFraction) bytes (0 with tornFraction <= 0), an fsync
/// persists nothing extra, and StoreCrashError is thrown. Once crashed,
/// every further I/O throws immediately — the engine is dead until the
/// harness reopens the directory with a fresh one.
class CrashInjector {
 public:
  /// Counts events without ever crashing (shadow pass).
  void disarm();
  /// Crash at 0-based event `crashAtEvent`; `tornFraction` in [0, 1) makes
  /// the crashing write torn (a proper prefix persists).
  void arm(u64 crashAtEvent, double tornFraction = -1.0);

  [[nodiscard]] bool crashed() const;
  /// Boundary events seen since construction (including the crashing one).
  [[nodiscard]] u64 eventsObserved() const;

  // Called by File on behalf of the storage layer ---------------------------
  /// Announces a write of `len` bytes. Returns the byte count actually
  /// allowed; a return < len means "persist that prefix, then crash" and
  /// the caller must invoke crashNow() after writing it. Throws
  /// StoreCrashError directly for clean (nothing-persists) crashes.
  size_t admitWrite(size_t len);
  /// Announces an fsync; throws StoreCrashError when it is the boundary.
  void admitFsync();
  [[noreturn]] void crashNow(const std::string& what);

 private:
  bool armed_ = false;
  bool crashed_ = false;
  u64 crashAtEvent_ = 0;
  double tornFraction_ = -1.0;
  u64 events_ = 0;
};

/// Append-oriented RAII fd wrapper. All failures throw StoreIoError; all
/// writes and syncs are announced to the injector when one is attached.
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Creates (or truncates) `path` for appending.
  static File create(const std::string& path, CrashInjector* injector);
  /// Opens an existing file for appending at `size`.
  static File openAppend(const std::string& path, CrashInjector* injector);

  /// Appends `bytes` at the end (through the injector). On a torn crash
  /// the allowed prefix is persisted before StoreCrashError propagates.
  void append(std::string_view bytes);
  /// fdatasync (through the injector). When `physical` is false the
  /// boundary is still announced but the syscall is skipped — the restart
  /// campaign's speed knob; torn-write coverage is unaffected because
  /// tearing happens at write boundaries.
  void sync(bool physical = true);

  void close();
  [[nodiscard]] bool isOpen() const { return fd_ >= 0; }
  /// Bytes appended so far (the file offset).
  [[nodiscard]] u64 size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  u64 size_ = 0;
  std::string path_;
  CrashInjector* injector_ = nullptr;
};

// Directory / path helpers (throw StoreIoError on failure) -----------------

/// mkdir -p.
void ensureDir(const std::string& dir);
/// Names (not paths) of regular files in `dir` matching prefix+suffix,
/// sorted ascending.
std::vector<std::string> listFiles(const std::string& dir,
                                   std::string_view prefix,
                                   std::string_view suffix);
void removeFile(const std::string& path);
/// rename(2): atomic replacement on the same filesystem.
void atomicRename(const std::string& from, const std::string& to);
/// fsync of the directory itself (makes renames/creates durable). The
/// injector counts it as an fsync boundary.
void fsyncDir(const std::string& dir, CrashInjector* injector,
              bool physical = true);
/// Truncates `path` to `size` bytes (recovery: cutting a torn tail).
void truncateFile(const std::string& path, u64 size);
/// Current size of `path`; nullopt when it does not exist.
std::optional<u64> fileSize(const std::string& path);

}  // namespace lht::store
