#include "store/mem_engine.h"

#include <vector>

namespace lht::store {

void MemEngine::put(const Key& key, Value value) {
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  s.table.put(key, std::move(value));
}

std::optional<Value> MemEngine::get(const Key& key) const {
  const Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  return s.table.get(key);
}

bool MemEngine::erase(const Key& key) {
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  return s.table.erase(key);
}

bool MemEngine::apply(const Key& key, const Mutator& fn) {
  Shard& s = shardFor(key);
  std::lock_guard lock(s.mutex);
  return s.table.apply(key, fn);
}

size_t MemEngine::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard lock(s.mutex);
    total += s.table.size();
  }
  return total;
}

void MemEngine::forEach(
    const std::function<void(const Key&, const Value&)>& fn) const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (const auto& s : shards_) locks.emplace_back(s.mutex);
  for (const auto& s : shards_) s.table.forEach(fn);
}

void MemEngine::clear() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kShards);
  for (auto& s : shards_) locks.emplace_back(s.mutex);
  for (auto& s : shards_) s.table.clear();
}

std::unique_ptr<StorageEngine> makeMemEngine() {
  return std::make_unique<MemEngine>();
}

}  // namespace lht::store
