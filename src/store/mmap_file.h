// Read-only memory mapping of a (possibly still growing) file.
//
// Spilled values live inside WAL segments and snapshot files; reading them
// back should not copy the whole file through a read() loop. MmapFile maps
// the file once and remaps lazily when a reader asks for bytes beyond the
// mapped length (the file grew since the map was taken). Views returned by
// view() are valid until the next remap()/close(), so callers copy out
// before releasing the lock that protects the mapping.
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"
#include "store/store_error.h"

namespace lht::store {

using common::u64;

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only at its current size. Throws StoreIoError.
  static MmapFile open(const std::string& path);

  /// `len` bytes starting at `offset`. Remaps when the current mapping is
  /// too short and the file has grown; throws StoreCorruptionError when the
  /// range lies beyond the file even after remapping.
  [[nodiscard]] std::string_view view(u64 offset, u64 len);

  /// Re-takes the mapping at the file's current size.
  void remap();

  void close();
  [[nodiscard]] bool isOpen() const { return base_ != nullptr || fd_ >= 0; }
  [[nodiscard]] u64 mappedSize() const { return mapped_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  void* base_ = nullptr;
  u64 mapped_ = 0;
  std::string path_;
};

}  // namespace lht::store
