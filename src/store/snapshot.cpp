#include "store/snapshot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/codec.h"
#include "common/hash.h"

namespace lht::store {

namespace {
constexpr u64 kSnapHeaderBytes = 4 + 4 + 8 + 8;
}  // namespace

std::string snapshotName(u64 lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.snap",
                static_cast<unsigned long long>(lsn));
  return buf;
}

std::vector<std::string> listSnapshots(const std::string& dir) {
  return listFiles(dir, "snap-", ".snap");
}

std::optional<u64> snapshotLsnFromName(std::string_view name) {
  constexpr std::string_view prefix = "snap-";
  constexpr std::string_view suffix = ".snap";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  const auto digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  u64 lsn = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    lsn = lsn * 10 + static_cast<u64>(c - '0');
  }
  return lsn;
}

// SnapshotWriter -------------------------------------------------------------

SnapshotWriter::SnapshotWriter(std::string dir, u64 snapLsn, u64 count,
                               CrashInjector* injector, bool physicalFsync)
    : dir_(std::move(dir)),
      finalName_(snapshotName(snapLsn)),
      snapLsn_(snapLsn),
      promised_(count),
      physicalFsync_(physicalFsync),
      injector_(injector) {
  file_ = File::create(dir_ + "/" + finalName_ + ".tmp", injector_);
  common::Encoder header(kSnapHeaderBytes);
  header.putU32(kSnapMagic);
  header.putU32(kSnapVersion);
  header.putU64(snapLsn_);
  header.putU64(promised_);
  file_.append(header.buffer());
}

u64 SnapshotWriter::add(std::string_view key, std::string_view value) {
  common::Encoder enc(4 + key.size() + 4 + value.size() + 8);
  enc.putString(key);
  enc.putString(value);
  enc.putU64(common::hash::xxhash64(enc.buffer(), snapLsn_));
  const u64 valueOffset = file_.size() + 4 + key.size() + 4;
  file_.append(enc.buffer());
  ++added_;
  return valueOffset;
}

std::string SnapshotWriter::finish() {
  common::checkInvariant(added_ == promised_,
                         "snapshot entry count != promised header count");
  file_.sync(physicalFsync_);
  file_.close();
  atomicRename(dir_ + "/" + finalName_ + ".tmp", dir_ + "/" + finalName_);
  fsyncDir(dir_, injector_, physicalFsync_);
  return finalName_;
}

// Reader ---------------------------------------------------------------------

u64 loadSnapshot(
    const std::string& dir, const std::string& fileName,
    const std::function<void(std::string&& key, std::string&& value,
                             u64 valueOffset)>& apply) {
  const std::string path = dir + "/" + fileName;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StoreIoError("open snapshot " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  common::Decoder dec(bytes);
  auto magic = dec.getU32();
  auto version = dec.getU32();
  auto snapLsn = dec.getU64();
  auto count = dec.getU64();
  if (!magic || *magic != kSnapMagic || !version || *version != kSnapVersion ||
      !snapLsn || !count) {
    throw StoreCorruptionError("bad snapshot header: " + path);
  }
  u64 offset = kSnapHeaderBytes;
  for (u64 i = 0; i < *count; ++i) {
    auto key = dec.getString();
    auto value = dec.getString();
    auto checksum = dec.getU64();
    if (!key || !value || !checksum) {
      throw StoreCorruptionError("truncated snapshot entry in " + path);
    }
    const u64 entryLen = 4 + key->size() + 4 + value->size();
    const auto entryBytes = std::string_view(bytes).substr(offset, entryLen);
    if (common::hash::xxhash64(entryBytes, *snapLsn) != *checksum) {
      throw StoreCorruptionError("snapshot entry checksum mismatch in " +
                                 path + " (entry " + std::to_string(i) + ")");
    }
    const u64 valueOffset = offset + 4 + key->size() + 4;
    offset += entryLen + 8;
    apply(std::move(*key), std::move(*value), valueOffset);
  }
  if (!dec.atEnd()) {
    throw StoreCorruptionError("trailing bytes after snapshot entries in " +
                               path);
  }
  return *snapLsn;
}

}  // namespace lht::store
