// Checkpoint files that let compaction truncate the WAL (DESIGN.md §11).
//
// A snapshot named snap-<lsn>.snap captures the entire table as of LSN
// `lsn`: every record with lsn' <= lsn is reflected, so recovery loads the
// newest readable snapshot and replays only the WAL suffix beyond it.
// Layout:
//
//   [u32 magic "LSNP"] [u32 version] [u64 snapLsn] [u64 count]
//   count x ( [u32 klen][key] [u32 vlen][value]
//             [u64 checksum = xxhash64(klen..value bytes, seed = snapLsn)] )
//
// Seeding the per-entry checksum with snapLsn ties entries to their file —
// bytes spliced in from another snapshot fail verification. Snapshots are
// written to a .tmp sibling, fsynced, atomically renamed into place, and
// the directory fsynced: a crash mid-write leaves only ignorable garbage,
// never a half-trusted snapshot.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "store/io_file.h"

namespace lht::store {

using common::u32;

inline constexpr u32 kSnapMagic = 0x4C534E50;  // "LSNP"
inline constexpr u32 kSnapVersion = 1;

/// Snapshot file name for `lsn` ("snap-00000000000000000042.snap").
std::string snapshotName(u64 lsn);

/// Names of all snapshot files in `dir`, sorted ascending by LSN.
std::vector<std::string> listSnapshots(const std::string& dir);

/// The LSN encoded in a snapshot file name; nullopt when it does not parse.
std::optional<u64> snapshotLsnFromName(std::string_view name);

/// Streams a snapshot to disk. `count` must be known up front (it lives in
/// the header); finish() verifies the promise, fsyncs, renames the .tmp
/// into place and fsyncs the directory.
class SnapshotWriter {
 public:
  SnapshotWriter(std::string dir, u64 snapLsn, u64 count,
                 CrashInjector* injector, bool physicalFsync);

  /// Appends one entry; returns the absolute offset of the value bytes in
  /// the final file (valid once finish() succeeds) for spill references.
  u64 add(std::string_view key, std::string_view value);

  /// Seals and publishes the snapshot; returns its file name.
  std::string finish();

 private:
  std::string dir_;
  std::string finalName_;
  u64 snapLsn_;
  u64 promised_;
  u64 added_ = 0;
  bool physicalFsync_;
  CrashInjector* injector_;
  File file_;
};

/// Reads `fileName` in `dir`, verifying magic/version/count and every
/// per-entry checksum; throws StoreCorruptionError on any damage.
/// `apply(key, value, valueOffset)` is invoked per entry with the value's
/// absolute offset in the file. Returns the snapshot's LSN.
u64 loadSnapshot(
    const std::string& dir, const std::string& fileName,
    const std::function<void(std::string&& key, std::string&& value,
                             u64 valueOffset)>& apply);

}  // namespace lht::store
