// Ambient observability: the thread-local installation point that lets
// every layer (index ops, decorators, substrates, SimNetwork) report into
// one MetricsRegistry/Tracer pair without plumbing sink pointers through
// every constructor.
//
// Usage at a measurement boundary (bench side, test, experiment run):
//
//   obs::MetricsRegistry reg;
//   obs::Tracer tracer;
//   obs::ScopedObservability install(&reg, &tracer);  // RAII
//   ... run the workload ...
//   tracer.writeChromeTrace(out);
//
// Inside instrumented code:
//
//   obs::SpanScope span("lht.insert", "lht");   // no-op when not installed
//   obs::count("lht.insert.count");
//   obs::observe("lht.insert.dht_lookups", n);
//
// When nothing is installed every helper reduces to a thread-local pointer
// load and a branch — that is the entire overhead on the hot path, keeping
// the disabled cost within the ≤2% budget on micro_primitives.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lht::obs {

namespace detail {
// Defined in obs.cpp; declared here so the inline fast paths below read the
// slots directly instead of paying a cross-TU call when disabled.
extern thread_local MetricsRegistry* tlsMetrics;
extern thread_local Tracer* tlsTracer;
extern thread_local u64 tlsCurrentSpan;
}  // namespace detail

/// Currently installed sinks for this thread; nullptr when disabled.
inline MetricsRegistry* metrics() { return detail::tlsMetrics; }
inline Tracer* tracer() { return detail::tlsTracer; }

/// Id of the innermost open SpanScope on this thread; 0 at the root.
inline u64 currentSpan() { return detail::tlsCurrentSpan; }

/// Installs sinks for the current thread for the scope's lifetime; nests
/// (the previous installation is restored on destruction). Pass nullptr for
/// either sink to disable that half.
class ScopedObservability {
 public:
  ScopedObservability(MetricsRegistry* m, Tracer* t);
  ~ScopedObservability();
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  MetricsRegistry* prevMetrics_;
  Tracer* prevTracer_;
  u64 prevSpan_;
};

/// RAII span parented under the innermost enclosing SpanScope. All methods
/// are no-ops when no tracer is installed.
class SpanScope {
 public:
  SpanScope(const char* name, const char* cat) {
    if (detail::tlsTracer != nullptr) open(name, cat);
  }
  ~SpanScope() {
    if (tracer_ != nullptr) close();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// 0 when tracing is disabled.
  [[nodiscard]] u64 id() const { return id_; }
  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }

  void arg(const char* key, u64 v) {
    if (tracer_ != nullptr) tracer_->addSpanArg(id_, obs::arg(key, v));
  }
  void arg(const char* key, double v) {
    if (tracer_ != nullptr) tracer_->addSpanArg(id_, obs::arg(key, v));
  }
  void arg(const char* key, std::string v) {
    if (tracer_ != nullptr) tracer_->addSpanArg(id_, obs::arg(key, std::move(v)));
  }

 private:
  void open(const char* name, const char* cat);
  void close();

  Tracer* tracer_ = nullptr;
  u64 id_ = 0;
  u64 prev_ = 0;
};

/// Bumps a counter on the installed registry (no-op when disabled).
inline void count(std::string_view name, u64 delta = 1) {
  if (detail::tlsMetrics != nullptr) detail::tlsMetrics->counter(name).add(delta);
}

inline void gaugeSet(std::string_view name, double v) {
  if (detail::tlsMetrics != nullptr) detail::tlsMetrics->gauge(name).set(v);
}

/// Records into a count-bounded histogram (see defaultCountBounds).
inline void observe(std::string_view name, double v) {
  if (detail::tlsMetrics != nullptr) detail::tlsMetrics->histogram(name).observe(v);
}

/// Records into a millisecond-bounded histogram.
inline void observeMs(std::string_view name, double v) {
  if (detail::tlsMetrics != nullptr) {
    detail::tlsMetrics->histogram(name, defaultLatencyBoundsMs()).observe(v);
  }
}

/// Emits an instant event parented under the current span (no-op when
/// tracing is disabled).
void instantEvent(const char* name, const char* cat,
                  std::initializer_list<TraceArg> args = {});

/// Declares a causal edge between two spans (no-op when disabled or when
/// either id is 0).
inline void flow(u64 fromSpan, u64 toSpan) {
  if (detail::tlsTracer != nullptr && fromSpan != 0 && toSpan != 0) {
    detail::tlsTracer->flow(fromSpan, toSpan);
  }
}

}  // namespace lht::obs
