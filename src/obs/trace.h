// Causal op-tracing: spans, instant events, and flow links.
//
// A span covers one operation at one layer (an LhtIndex op, a DHT round, a
// routed substrate op); parentage mirrors the call stack, and flow links
// connect the entries of a batched multiGet/multiApply round back to the
// round span even though they execute as one parallel step. Instant events
// mark point occurrences (a retry, a breaker trip, an injected fault).
//
// Exporters:
//   writeChromeTrace  Chrome trace-event JSON ({"traceEvents": [...]}) that
//                     loads directly in chrome://tracing and Perfetto; spans
//                     become "X" events, instants "i", flows "s"/"f" pairs.
//   writeCsv          one row per span via common::Table, for scripting.
//
// The tracer is append-only and not thread-safe; install one per measured
// scope with obs::ScopedObservability.
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace lht::obs {

using common::u64;

/// One key/value pair attached to a span or instant event. `quoted` selects
/// JSON string vs bare literal rendering of `value`.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

TraceArg arg(std::string key, std::string value);
TraceArg arg(std::string key, const char* value);
TraceArg arg(std::string key, u64 value);
TraceArg arg(std::string key, double value);

class Tracer {
 public:
  struct Span {
    u64 id = 0;
    u64 parent = 0;  ///< 0 = root
    std::string name;
    const char* cat = "";
    u64 startNs = 0;
    u64 endNs = 0;  ///< 0 while the span is open
    std::vector<TraceArg> args;
  };
  struct Instant {
    std::string name;
    const char* cat = "";
    u64 parent = 0;
    u64 tsNs = 0;
    std::vector<TraceArg> args;
  };
  struct Flow {
    u64 fromSpan = 0;
    u64 toSpan = 0;
  };

  Tracer();

  /// Opens a span; returns its id (never 0).
  u64 beginSpan(std::string name, const char* cat, u64 parent);
  void endSpan(u64 id);
  void addSpanArg(u64 id, TraceArg a);

  void instant(std::string name, const char* cat, u64 parent,
               std::vector<TraceArg> args = {});

  /// Declares a causal edge from one span to another (e.g. batch round ->
  /// entry). Both ids must come from beginSpan.
  void flow(u64 fromSpan, u64 toSpan);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }
  [[nodiscard]] const Span* findSpan(u64 id) const;
  [[nodiscard]] size_t openSpanCount() const { return openSpans_; }

  void writeChromeTrace(std::ostream& os) const;
  void writeCsv(std::ostream& os) const;

  /// Appends another tracer's spans/instants/flows into this one. Span ids
  /// are remapped into this tracer's id space (parent/flow edges follow),
  /// and timestamps are realigned from the other tracer's epoch to this
  /// one's, so a merged Chrome trace shows per-thread activity on a common
  /// timeline. `other` is left untouched.
  void mergeFrom(const Tracer& other);

  void clear();

 private:
  [[nodiscard]] u64 nowNs() const;

  std::chrono::steady_clock::time_point epoch_;
  u64 nextId_ = 1;
  size_t openSpans_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<u64, size_t> spanIndex_;
  std::vector<Instant> instants_;
  std::vector<Flow> flows_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string jsonEscape(const std::string& s);

}  // namespace lht::obs
