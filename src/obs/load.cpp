#include "obs/load.h"

#include <algorithm>

namespace lht::obs {

LoadSummary summarizeLoad(std::vector<common::u64> loads) {
  LoadSummary s;
  s.servers = loads.size();
  if (loads.empty()) return s;
  std::sort(loads.begin(), loads.end());
  for (common::u64 v : loads) s.total += v;
  s.max = loads.back();
  s.mean = static_cast<double>(s.total) / static_cast<double>(loads.size());
  // Nearest-rank p99: the smallest value with >= 99% of servers at or
  // below it (the max for vectors shorter than 100).
  const size_t rank =
      (loads.size() * 99 + 99) / 100;  // ceil(0.99 * n), 1-based
  s.p99 = static_cast<double>(loads[std::min(loads.size(), rank) - 1]);
  if (s.mean > 0.0) s.maxOverMean = static_cast<double>(s.max) / s.mean;
  return s;
}

void exportLoadSummary(MetricsRegistry& reg, const std::string& prefix,
                       const LoadSummary& s) {
  reg.gauge(prefix + ".servers").set(static_cast<double>(s.servers));
  reg.gauge(prefix + ".max").set(static_cast<double>(s.max));
  reg.gauge(prefix + ".mean").set(s.mean);
  reg.gauge(prefix + ".p99").set(s.p99);
  reg.gauge(prefix + ".max_over_mean").set(s.maxOverMean);
}

}  // namespace lht::obs
