// Load-vector summaries for skew experiments (DESIGN.md §13).
//
// A load vector is "work items served per server" — e.g. reads served per
// physical DHT peer (ChordDht::readLoadByPeer) or records read per leaf.
// The summary reduces it to the figures the load-balancing literature
// gates on: max, mean, p99, and the max/mean imbalance ratio (1.0 =
// perfectly balanced, N = one server does everything).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace lht::obs {

struct LoadSummary {
  size_t servers = 0;       ///< vector length (idle servers count)
  common::u64 total = 0;
  common::u64 max = 0;
  double mean = 0.0;
  double p99 = 0.0;         ///< nearest-rank 99th percentile
  /// Imbalance ratio max/mean; 0 when the vector is empty or all-zero.
  double maxOverMean = 0.0;
};

/// Summarizes `loads` (order irrelevant; copied because the percentile
/// needs a sort).
LoadSummary summarizeLoad(std::vector<common::u64> loads);

/// Publishes the summary as gauges "<prefix>.max" / ".mean" / ".p99" /
/// ".max_over_mean" / ".servers" on `reg`.
void exportLoadSummary(MetricsRegistry& reg, const std::string& prefix,
                       const LoadSummary& s);

}  // namespace lht::obs
