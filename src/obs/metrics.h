// Process-local metrics: named counters, gauges, and fixed-bucket
// histograms with quantile export.
//
// The registry is the single sink for cost attribution across the stack:
// LhtIndex ops, decorator retries/timeouts/breaker trips, substrate routing,
// and SimNetwork RTT charges all report here through the ambient helpers in
// obs/obs.h. Series are created lazily on first touch and live for the
// registry's lifetime, so exporters see a stable snapshot of everything the
// workload exercised.
//
// Exporters: common::Table (pretty/CSV) and a flat JSON object, both keyed
// by the dotted series name (naming scheme documented in DESIGN.md §9).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/types.h"

namespace lht::obs {

using common::u64;

/// Monotone event count.
struct Counter {
  u64 value = 0;
  void add(u64 delta = 1) { value += delta; }
};

/// Last-write-wins instantaneous value.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Fixed-bucket histogram. Buckets are defined by inclusive upper bounds
/// (ascending); one implicit overflow bucket catches everything above the
/// last bound. Quantiles are estimated as the upper bound of the bucket
/// where the cumulative count crosses q — exact for integer-valued series
/// whose bounds enumerate the small values, conservative otherwise.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);

  [[nodiscard]] u64 count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;  ///< 0 when empty
  [[nodiscard]] double max() const;  ///< 0 when empty
  [[nodiscard]] double mean() const;
  /// q in [0, 1]; returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<u64>& bucketCounts() const { return buckets_; }

  /// Bucket-wise accumulation of another histogram with identical bounds
  /// (invariant-checked). count/sum/min/max merge exactly; quantiles stay
  /// as accurate as a single histogram's.
  void mergeFrom(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<u64> buckets_;
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default bounds for small-integer series (DHT lookups per op, rounds,
/// hops): exact up to 32, geometric to 4096.
std::vector<double> defaultCountBounds();

/// Default bounds for millisecond-valued series (RTTs, round latencies).
std::vector<double> defaultLatencyBoundsMs();

/// Owns every metric series for one measurement scope (a benchmark side, a
/// test, an experiment run). Not thread-safe; each thread installs its own
/// registry via obs::ScopedObservability.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call fixes the bucket layout; later calls ignore `bounds`.
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Value of a counter, 0 when the series was never touched.
  [[nodiscard]] u64 counterValue(std::string_view name) const;
  [[nodiscard]] const Histogram* findHistogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  /// One row per series: name, kind, count, sum/value, p50, p95, p99.
  [[nodiscard]] common::Table toTable() const;
  void writeCsv(std::ostream& os) const;
  /// Flat JSON object: counters/gauges as numbers, histograms as
  /// {count, sum, mean, p50, p95, p99, max}. `indent` prefixes every line.
  void writeJson(std::ostream& os, const std::string& indent = "") const;

  /// Folds another registry into this one: counters add, gauges take the
  /// other's value (last-write-wins), histograms merge bucket-wise (series
  /// created here on demand with the other's bounds). Used by the exec
  /// fleet to combine per-thread registries at join; `other` is left
  /// untouched.
  void mergeFrom(const MetricsRegistry& other);

  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace lht::obs
