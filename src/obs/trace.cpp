#include "obs/trace.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/csv.h"

namespace lht::obs {

namespace {

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Chrome trace timestamps are microseconds; fractional values are allowed,
/// so we keep nanosecond precision.
double toUs(u64 ns) { return static_cast<double>(ns) / 1000.0; }

void writeArgs(std::ostream& os, const std::vector<TraceArg>& args) {
  os << "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) os << ",";
    os << "\"" << jsonEscape(args[i].key) << "\":";
    if (args[i].quoted) {
      os << "\"" << jsonEscape(args[i].value) << "\"";
    } else {
      os << args[i].value;
    }
  }
  os << "}";
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return {std::move(key), std::move(value), true};
}
TraceArg arg(std::string key, const char* value) {
  return {std::move(key), value, true};
}
TraceArg arg(std::string key, u64 value) {
  return {std::move(key), std::to_string(value), false};
}
TraceArg arg(std::string key, double value) {
  return {std::move(key), formatDouble(value), false};
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

u64 Tracer::nowNs() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

u64 Tracer::beginSpan(std::string name, const char* cat, u64 parent) {
  const u64 id = nextId_++;
  spanIndex_.emplace(id, spans_.size());
  Span s;
  s.id = id;
  s.parent = parent;
  s.name = std::move(name);
  s.cat = cat;
  s.startNs = nowNs();
  spans_.push_back(std::move(s));
  openSpans_ += 1;
  return id;
}

void Tracer::endSpan(u64 id) {
  const auto it = spanIndex_.find(id);
  if (it == spanIndex_.end()) return;
  Span& s = spans_[it->second];
  if (s.endNs != 0) return;
  s.endNs = nowNs();
  // Zero-duration spans are legal in the trace format but collapse to
  // invisible slivers; clamp to 1ns so every op stays selectable.
  if (s.endNs == s.startNs) s.endNs += 1;
  openSpans_ -= 1;
}

void Tracer::addSpanArg(u64 id, TraceArg a) {
  const auto it = spanIndex_.find(id);
  if (it == spanIndex_.end()) return;
  spans_[it->second].args.push_back(std::move(a));
}

void Tracer::instant(std::string name, const char* cat, u64 parent,
                     std::vector<TraceArg> args) {
  Instant i;
  i.name = std::move(name);
  i.cat = cat;
  i.parent = parent;
  i.tsNs = nowNs();
  i.args = std::move(args);
  instants_.push_back(std::move(i));
}

void Tracer::flow(u64 fromSpan, u64 toSpan) {
  flows_.push_back({fromSpan, toSpan});
}

void Tracer::mergeFrom(const Tracer& other) {
  // Timestamps are ns since each tracer's private epoch; put both on one
  // timeline by rebasing this tracer onto the EARLIER of the two epochs
  // (so no shifted stamp ever goes negative), then shifting the other's
  // stamps by the now-nonnegative epoch delta.
  if (other.epoch_ < epoch_) {
    const u64 back = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(epoch_ -
                                                             other.epoch_)
            .count());
    for (auto& s : spans_) {
      s.startNs += back;
      if (s.endNs != 0) s.endNs += back;
    }
    for (auto& i : instants_) i.tsNs += back;
    epoch_ = other.epoch_;
  }
  const u64 deltaNs = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(other.epoch_ -
                                                           epoch_)
          .count());
  const auto shift = [&](u64 ns) { return ns + deltaNs; };
  std::unordered_map<u64, u64> remap;
  remap.reserve(other.spans_.size());
  for (const auto& s : other.spans_) remap.emplace(s.id, nextId_++);
  const auto mapId = [&](u64 id) {
    const auto it = remap.find(id);
    return it == remap.end() ? u64{0} : it->second;
  };
  for (const auto& s : other.spans_) {
    Span copy = s;
    copy.id = mapId(s.id);
    copy.parent = mapId(s.parent);
    copy.startNs = shift(s.startNs);
    copy.endNs = s.endNs == 0 ? 0 : shift(s.endNs);
    spanIndex_.emplace(copy.id, spans_.size());
    spans_.push_back(std::move(copy));
  }
  openSpans_ += other.openSpans_;
  for (const auto& i : other.instants_) {
    Instant copy = i;
    copy.parent = mapId(i.parent);
    copy.tsNs = shift(i.tsNs);
    instants_.push_back(std::move(copy));
  }
  for (const auto& f : other.flows_) {
    flows_.push_back({mapId(f.fromSpan), mapId(f.toSpan)});
  }
}

const Tracer::Span* Tracer::findSpan(u64 id) const {
  const auto it = spanIndex_.find(id);
  return it == spanIndex_.end() ? nullptr : &spans_[it->second];
}

void Tracer::writeChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& s : spans_) {
    sep();
    const u64 endNs = s.endNs == 0 ? s.startNs + 1 : s.endNs;
    os << "{\"name\":\"" << jsonEscape(s.name) << "\",\"cat\":\"" << s.cat
       << "\",\"ph\":\"X\",\"ts\":" << formatDouble(toUs(s.startNs))
       << ",\"dur\":" << formatDouble(toUs(endNs - s.startNs))
       << ",\"pid\":1,\"tid\":1,";
    writeArgs(os, s.args);
    os << "}";
  }
  for (const auto& i : instants_) {
    sep();
    os << "{\"name\":\"" << jsonEscape(i.name) << "\",\"cat\":\"" << i.cat
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << formatDouble(toUs(i.tsNs))
       << ",\"pid\":1,\"tid\":1,";
    writeArgs(os, i.args);
    os << "}";
  }
  // A flow arrow is a "s"/"f" pair sharing an id; each endpoint binds to the
  // slice that starts at its ts, so we anchor both at span starts.
  u64 flowId = 0;
  for (const auto& f : flows_) {
    const Span* from = findSpan(f.fromSpan);
    const Span* to = findSpan(f.toSpan);
    if (from == nullptr || to == nullptr) continue;
    flowId += 1;
    sep();
    os << "{\"name\":\"link\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << flowId
       << ",\"ts\":" << formatDouble(toUs(from->startNs))
       << ",\"pid\":1,\"tid\":1,\"args\":{}}";
    sep();
    os << "{\"name\":\"link\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"id\":" << flowId
       << ",\"ts\":" << formatDouble(toUs(to->startNs))
       << ",\"pid\":1,\"tid\":1,\"args\":{}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::writeCsv(std::ostream& os) const {
  common::Table t({"id", "parent", "name", "cat", "start_us", "dur_us", "args"});
  for (const auto& s : spans_) {
    const u64 endNs = s.endNs == 0 ? s.startNs + 1 : s.endNs;
    std::ostringstream args;
    for (size_t i = 0; i < s.args.size(); ++i) {
      if (i) args << ";";
      args << s.args[i].key << "=" << s.args[i].value;
    }
    t.addRow({static_cast<common::i64>(s.id),
              static_cast<common::i64>(s.parent), s.name, std::string(s.cat),
              toUs(s.startNs), toUs(endNs - s.startNs), args.str()});
  }
  t.printCsv(os);
}

void Tracer::clear() {
  nextId_ = 1;
  openSpans_ = 0;
  spans_.clear();
  spanIndex_.clear();
  instants_.clear();
  flows_.clear();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace lht::obs
