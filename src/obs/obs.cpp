#include "obs/obs.h"

namespace lht::obs {

namespace detail {
thread_local MetricsRegistry* tlsMetrics = nullptr;
thread_local Tracer* tlsTracer = nullptr;
thread_local u64 tlsCurrentSpan = 0;
}  // namespace detail

ScopedObservability::ScopedObservability(MetricsRegistry* m, Tracer* t)
    : prevMetrics_(detail::tlsMetrics),
      prevTracer_(detail::tlsTracer),
      prevSpan_(detail::tlsCurrentSpan) {
  detail::tlsMetrics = m;
  detail::tlsTracer = t;
  detail::tlsCurrentSpan = 0;
}

ScopedObservability::~ScopedObservability() {
  detail::tlsMetrics = prevMetrics_;
  detail::tlsTracer = prevTracer_;
  detail::tlsCurrentSpan = prevSpan_;
}

void SpanScope::open(const char* name, const char* cat) {
  tracer_ = detail::tlsTracer;
  prev_ = detail::tlsCurrentSpan;
  id_ = tracer_->beginSpan(name, cat, prev_);
  detail::tlsCurrentSpan = id_;
}

void SpanScope::close() {
  tracer_->endSpan(id_);
  detail::tlsCurrentSpan = prev_;
}

void instantEvent(const char* name, const char* cat,
                  std::initializer_list<TraceArg> args) {
  Tracer* t = detail::tlsTracer;
  if (t == nullptr) return;
  t->instant(name, cat, detail::tlsCurrentSpan,
             std::vector<TraceArg>(args.begin(), args.end()));
}

}  // namespace lht::obs
