#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/types.h"

namespace lht::obs {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), buckets_(bounds_.size() + 1, 0) {
  common::checkInvariant(
      std::is_sorted(bounds_.begin(), bounds_.end()),
      "Histogram bounds must be ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  count_ += 1;
  sum_ += v;
}

void Histogram::mergeFrom(const Histogram& other) {
  common::checkInvariant(bounds_ == other.bounds_,
                         "Histogram::mergeFrom: bucket bounds differ");
  if (other.count_ == 0) return;
  for (size_t b = 0; b < buckets_.size(); ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th observation (1-based, ceil) in the sorted sample.
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(q * static_cast<double>(count_) + 0.9999999));
  u64 seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Overflow bucket has no upper bound; report the observed max.
      return b < bounds_.size() ? std::min(bounds_[b], max_) : max_;
    }
  }
  return max_;
}

std::vector<double> defaultCountBounds() {
  std::vector<double> b;
  for (int v = 0; v <= 32; ++v) b.push_back(static_cast<double>(v));
  for (double v = 48; v <= 4096; v *= 2) {
    b.push_back(v);
    b.push_back(v * 4.0 / 3.0);
  }
  std::sort(b.begin(), b.end());
  return b;
}

std::vector<double> defaultLatencyBoundsMs() {
  std::vector<double> b;
  for (double v = 0.25; v <= 32768; v *= 2) {
    b.push_back(v);
    b.push_back(v * 1.5);
  }
  std::sort(b.begin(), b.end());
  return b;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, defaultCountBounds());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

u64 MetricsRegistry::counterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

const Histogram* MetricsRegistry::findHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

common::Table MetricsRegistry::toTable() const {
  common::Table t({"series", "kind", "count", "value", "p50", "p95", "p99"});
  for (const auto& [name, c] : counters_) {
    t.addRow({name, "counter", static_cast<common::i64>(c.value),
              static_cast<common::i64>(c.value), "", "", ""});
  }
  for (const auto& [name, g] : gauges_) {
    t.addRow({name, "gauge", static_cast<common::i64>(1), g.value, "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    t.addRow({name, "histogram", static_cast<common::i64>(h.count()), h.sum(),
              h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)});
  }
  return t;
}

void MetricsRegistry::writeCsv(std::ostream& os) const { toTable().printCsv(os); }

void MetricsRegistry::writeJson(std::ostream& os,
                                const std::string& indent) const {
  os << indent << "{\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    sep();
    os << indent << "  \"" << name << "\": " << c.value;
  }
  for (const auto& [name, g] : gauges_) {
    sep();
    os << indent << "  \"" << name << "\": " << g.value;
  }
  for (const auto& [name, h] : histograms_) {
    sep();
    os << indent << "  \"" << name << "\": {\"count\": " << h.count()
       << ", \"sum\": " << h.sum() << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.quantile(0.50) << ", \"p95\": " << h.quantile(0.95)
       << ", \"p99\": " << h.quantile(0.99) << ", \"max\": " << h.max() << "}";
  }
  os << "\n" << indent << "}";
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value);
  for (const auto& [name, g] : other.gauges_) gauge(name).set(g.value);
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bounds()).mergeFrom(h);
  }
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace lht::obs
