// The paper's analytical maintenance cost model (Sec. 8).
//
// Moving one data record costs i units (record size); one DHT-lookup costs
// j units (grows with network scale, typically O(log N) physical hops).
// Per-split costs:  Psi_LHT = 1/2 theta i + 1 j   (Eq. 1)
//                   Psi_PHT =     theta i + 4 j   (Eq. 2)
// Saving ratio:     1 - Psi_LHT/Psi_PHT = (1/2 gamma + 3) / (gamma + 4),
// with gamma = theta i / j; it ranges in (50%, 75%) (Eq. 3).
#pragma once

#include "common/types.h"
#include "cost/meter.h"

namespace lht::cost {

struct CostModel {
  double i = 1.0;                ///< cost of moving one record
  double j = 1.0;                ///< cost of one DHT-lookup
  common::u32 thetaSplit = 100;  ///< leaf capacity threshold

  /// gamma = theta * i / j.
  [[nodiscard]] double gamma() const;

  /// Eq. 1: average LHT cost per leaf split.
  [[nodiscard]] double psiLht() const;

  /// Eq. 2: average PHT cost per leaf split.
  [[nodiscard]] double psiPht() const;

  /// Eq. 3: LHT's maintenance saving ratio vs PHT, in (0.5, 0.75).
  [[nodiscard]] double savingRatio() const;

  /// Prices a measured counter set under this model.
  [[nodiscard]] double price(const Counters& c) const;

  /// Per-category prices of a full meter set under this model, plus the
  /// measured per-split maintenance cost for direct comparison against the
  /// closed-form psiLht() / psiPht().
  struct Breakdown {
    double insertion = 0.0;
    double maintenance = 0.0;
    double query = 0.0;
    double total = 0.0;
    double maintenancePerSplit = 0.0;  ///< 0 when no splits occurred
  };
  [[nodiscard]] Breakdown breakdown(const MeterSet& m) const;
};

}  // namespace lht::cost
