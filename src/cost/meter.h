// Cost accounting for over-DHT index operations.
//
// The paper's cost model (Sec. 8.1) charges i units per data record moved
// and j units per DHT-lookup. Indexes meter the two quantities separately,
// split by operation category so Fig. 7 (maintenance only) and Fig. 8/9
// (query only) can each be read off directly.
#pragma once

#include "common/types.h"

namespace lht::cost {

using common::u64;

/// Raw counters for one operation category.
struct Counters {
  u64 dhtLookups = 0;    ///< routed DHT operations
  u64 recordsMoved = 0;  ///< records shipped between peers
  u64 splits = 0;        ///< leaf splits performed
  u64 merges = 0;        ///< leaf merges performed

  void reset() { *this = Counters{}; }
  Counters& operator+=(const Counters& o);
  friend Counters operator+(Counters a, const Counters& b) { return a += b; }
  friend bool operator==(const Counters&, const Counters&) = default;
};

/// Per-operation result statistics: bandwidth (DHT-lookups) and latency
/// (parallel steps — the longest chain of dependent DHT-lookups, paper
/// Sec. 9.4's "paralleled steps").
struct OpStats {
  u64 dhtLookups = 0;
  u64 parallelSteps = 0;
  u64 bucketsTouched = 0;

  OpStats& operator+=(const OpStats& o) {
    dhtLookups += o.dhtLookups;
    parallelSteps += o.parallelSteps;
    bucketsTouched += o.bucketsTouched;
    return *this;
  }
};

/// Running average of the split fraction alpha (paper Sec. 8.2 / Fig. 6):
/// the remote bucket's share of the splitting bucket's contents.
struct AlphaStats {
  u64 samples = 0;
  double sum = 0.0;

  void record(double alpha) {
    samples += 1;
    sum += alpha;
  }
  [[nodiscard]] double mean() const {
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
  }
  void reset() { *this = AlphaStats{}; }
};

/// The full meter set every index exposes.
struct MeterSet {
  Counters insertion;    ///< locating the target bucket + shipping the record
  Counters maintenance;  ///< structural adjustment: splits and merges
  Counters query;        ///< find / range / min / max
  AlphaStats alpha;

  void reset();
};

}  // namespace lht::cost
