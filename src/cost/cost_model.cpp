#include "cost/cost_model.h"

namespace lht::cost {

double CostModel::gamma() const {
  return static_cast<double>(thetaSplit) * i / j;
}

double CostModel::psiLht() const {
  return 0.5 * static_cast<double>(thetaSplit) * i + 1.0 * j;
}

double CostModel::psiPht() const {
  return static_cast<double>(thetaSplit) * i + 4.0 * j;
}

double CostModel::savingRatio() const {
  const double g = gamma();
  return (0.5 * g + 3.0) / (g + 4.0);
}

double CostModel::price(const Counters& c) const {
  return static_cast<double>(c.recordsMoved) * i +
         static_cast<double>(c.dhtLookups) * j;
}

CostModel::Breakdown CostModel::breakdown(const MeterSet& m) const {
  Breakdown b;
  b.insertion = price(m.insertion);
  b.maintenance = price(m.maintenance);
  b.query = price(m.query);
  b.total = b.insertion + b.maintenance + b.query;
  if (m.maintenance.splits > 0) {
    b.maintenancePerSplit =
        b.maintenance / static_cast<double>(m.maintenance.splits);
  }
  return b;
}

}  // namespace lht::cost
