#include "cost/meter.h"

namespace lht::cost {

Counters& Counters::operator+=(const Counters& o) {
  dhtLookups += o.dhtLookups;
  recordsMoved += o.recordsMoved;
  splits += o.splits;
  merges += o.merges;
  return *this;
}

void MeterSet::reset() {
  insertion.reset();
  maintenance.reset();
  query.reset();
  alpha.reset();
}

}  // namespace lht::cost
