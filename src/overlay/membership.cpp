#include "overlay/membership.h"

#include <algorithm>

#include "common/hash.h"

namespace lht::overlay {

using rpc::wire::NodeEntry;

const char* nodeStateName(NodeState s) {
  switch (s) {
    case NodeState::Alive: return "alive";
    case NodeState::Suspect: return "suspect";
    case NodeState::Dead: return "dead";
    case NodeState::Left: return "left";
  }
  return "?";
}

u64 nodeIdFor(const NetAddr& addr) {
  const u64 packed = (u64{addr.host} << 16) | addr.port;
  const u64 id = common::hash::xxhash64(packed, /*seed=*/0x1d7);
  return id == 0 ? 1 : id;
}

// --- MemberRing -------------------------------------------------------------

MemberRing::MemberRing(const std::vector<NodeEntry>& table,
                       size_t virtualNodes) {
  for (const NodeEntry& e : table) {
    if (e.state > static_cast<u8>(NodeState::Suspect)) continue;
    memberCount_ += 1;
    for (size_t v = 0; v < virtualNodes; ++v) {
      // Points derive from the entry's ringBase seed alone, so every
      // holder of an equal table computes the identical ring.
      const u64 h = common::hash::xxhash64(
          e.ringBase ^ (0x9E3779B97F4A7C15ull * (v + 1)), /*seed=*/0x1b8);
      points_.push_back(Point{h, e.id});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

size_t MemberRing::pointAtOrAfter(u64 h) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, u64 target) { return p.hash < target; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return static_cast<size_t>(it - points_.begin());
}

u64 MemberRing::owner(std::string_view key) const {
  if (points_.empty()) return 0;
  return points_[pointAtOrAfter(common::hash::xxhash64(key))].node;
}

u64 MemberRing::ownerExcluding(std::string_view key, u64 excludeId) const {
  if (points_.empty()) return 0;
  const size_t start = pointAtOrAfter(common::hash::xxhash64(key));
  for (size_t seen = 0; seen < points_.size(); ++seen) {
    const u64 node = points_[(start + seen) % points_.size()].node;
    if (node != excludeId) return node;
  }
  return 0;
}

std::vector<u64> MemberRing::holders(std::string_view key,
                                     size_t replicas) const {
  std::vector<u64> out;
  if (points_.empty()) return out;
  const size_t want = std::min(1 + replicas, memberCount_);
  out.reserve(want);
  const size_t start = pointAtOrAfter(common::hash::xxhash64(key));
  for (size_t seen = 0; seen < points_.size() && out.size() < want; ++seen) {
    const u64 node = points_[(start + seen) % points_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

// --- MembershipTable --------------------------------------------------------

namespace {

// Precedence at equal incarnations: the "worse" state wins, so rumors
// spread until refuted with a fresher incarnation.
int stateRank(u8 s) { return static_cast<int>(s); }

bool remoteWins(const NodeEntry& local, const NodeEntry& remote) {
  if (remote.incarnation != local.incarnation) {
    return remote.incarnation > local.incarnation;
  }
  return stateRank(remote.state) > stateRank(local.state);
}

}  // namespace

MembershipTable::MembershipTable(const NodeEntry& self, u64 incarnation)
    : selfId_(self.id) {
  common::checkInvariant(self.id != 0, "MembershipTable: self id must be nonzero");
  NodeEntry e = self;
  e.incarnation = incarnation;
  e.state = static_cast<u8>(NodeState::Alive);
  entries_.push_back(e);
}

NodeEntry* MembershipTable::findLocked(u64 id) {
  for (NodeEntry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

void MembershipTable::refuteLocked(u64 claimedIncarnation) {
  NodeEntry* self = findLocked(selfId_);
  self->incarnation = std::max(self->incarnation, claimedIncarnation) + 1;
  self->state = static_cast<u8>(NodeState::Alive);
  version_ += 1;
  refutations_ += 1;
}

bool MembershipTable::merge(const NodeEntry& remote) {
  if (remote.id == 0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (remote.id == selfId_) {
    NodeEntry* self = findLocked(selfId_);
    if (self->state == static_cast<u8>(NodeState::Left)) return false;
    // A rumor that we are gone — or an entry fresher than our own — must
    // be overridden, not adopted: jump past it and re-announce Alive.
    if (remote.incarnation > self->incarnation ||
        (remote.incarnation == self->incarnation &&
         remote.state != static_cast<u8>(NodeState::Alive))) {
      refuteLocked(remote.incarnation);
      return true;
    }
    return false;
  }
  NodeEntry* local = findLocked(remote.id);
  if (local == nullptr) {
    entries_.push_back(remote);
    version_ += 1;
    return true;
  }
  if (!remoteWins(*local, remote)) return false;
  *local = remote;
  version_ += 1;
  return true;
}

size_t MembershipTable::mergeAll(const std::vector<NodeEntry>& entries) {
  size_t changed = 0;
  for (const NodeEntry& e : entries) {
    if (merge(e)) changed += 1;
  }
  return changed;
}

bool MembershipTable::markSuspect(u64 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeEntry* e = findLocked(id);
  if (e == nullptr || id == selfId_) return false;
  if (e->state != static_cast<u8>(NodeState::Alive)) return false;
  e->state = static_cast<u8>(NodeState::Suspect);
  version_ += 1;
  return true;
}

bool MembershipTable::markDead(u64 id) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeEntry* e = findLocked(id);
  if (e == nullptr || id == selfId_) return false;
  if (e->state >= static_cast<u8>(NodeState::Dead)) return false;
  e->state = static_cast<u8>(NodeState::Dead);
  version_ += 1;
  return true;
}

bool MembershipTable::markLeft(u64 id, u64 incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeEntry* e = findLocked(id);
  if (e == nullptr || id == selfId_) return false;
  if (e->state == static_cast<u8>(NodeState::Left) &&
      e->incarnation >= incarnation) {
    return false;
  }
  e->state = static_cast<u8>(NodeState::Left);
  e->incarnation = std::max(e->incarnation, incarnation);
  version_ += 1;
  return true;
}

void MembershipTable::leaveSelf() {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeEntry* self = findLocked(selfId_);
  self->incarnation += 1;  // the Left rumor must beat any Alive entry
  self->state = static_cast<u8>(NodeState::Left);
  version_ += 1;
}

u64 MembershipTable::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

u64 MembershipTable::selfIncarnation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const NodeEntry& e : entries_) {
    if (e.id == selfId_) return e.incarnation;
  }
  return 0;
}

u64 MembershipTable::refutations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refutations_;
}

std::vector<NodeEntry> MembershipTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::optional<NodeEntry> MembershipTable::find(u64 id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const NodeEntry& e : entries_) {
    if (e.id == id) return e;
  }
  return std::nullopt;
}

size_t MembershipTable::knownCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t MembershipTable::ringMemberCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const NodeEntry& e : entries_) {
    if (e.state <= static_cast<u8>(NodeState::Suspect)) n += 1;
  }
  return n;
}

std::vector<u64> MembershipTable::peerIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<u64> out;
  for (const NodeEntry& e : entries_) {
    if (e.id == selfId_) continue;
    if (e.state <= static_cast<u8>(NodeState::Suspect)) out.push_back(e.id);
  }
  return out;
}

}  // namespace lht::overlay
