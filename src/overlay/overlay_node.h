// OverlayNode: a NodeServer that knows the ring (DESIGN.md §15).
//
// Wraps a plain rpc::NodeServer with the three things PR 9's cluster
// lacked:
//
//  * Membership — a gossiped MembershipTable. Every pumpOnce() the node
//    may start an anti-entropy round (push own table to a random peer,
//    merge what comes back); repeated round timeouts escalate a peer
//    Alive → Suspect → Dead. Every reply the node sends carries a gossip
//    hint trailer (own id + table version), so clients and peers notice
//    staleness for free.
//
//  * Server-side routing — a keyed request for a key this node does not
//    own is forwarded ONE hop to the owner (re-issued with the
//    no-forward bit; the reply is relayed back under the origin's
//    request id) or answered with Status::Redirect carrying the fresh
//    owner endpoint. Forwarding is loop-free by construction: a
//    no-forward request is always answered locally. Batched (Multi*) ops
//    are never forwarded, only redirected — the client regroups against
//    its refreshed table, keeping the batch packing owner-aligned.
//
//  * Elasticity — joinCluster() bootstraps from any live seed: pull the
//    table, announce via JoinReq to every member; each member streams
//    the keys the joiner now owns as Handoff batches (asynchronously,
//    without stalling its serve loop) and demotes them to replicas only
//    after the last batch is acknowledged, so no read window ever finds
//    the data nowhere. Until its streams land, the joiner answers a
//    primary miss by warm-fetching the key from the previous owner,
//    installing it, and only then executing the op locally — writes
//    during the transfer window therefore version-dominate the late
//    stream (max-version install) instead of being rolled back.
//    leaveGracefully() is the inverse: stream everything out, announce
//    Left. A crashed node is caught by the gossip failure detector;
//    survivors promote their replica copies of its range (the PR 6
//    repair model, server-side).
//
// Threading: the node is single-driver — pumpOnce()/serve()/join/leave
// must be called from one thread. That thread multiplexes the node's one
// transport between the server role and outgoing RPCs (forward, gossip,
// handoff): inbound replies are routed to the internal RpcClient, and
// every outgoing call is a *continuation* resolved on a later pump, so
// the serve loop never blocks on a remote — the property that keeps
// availability high mid-join and makes two nodes forwarding at each
// other deadlock-free. Storage (NodeServer) and the membership table
// have their own locks, so observers may read them from other threads.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "overlay/membership.h"
#include "rpc/node_server.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"

namespace lht::overlay {

class OverlayNode {
 public:
  struct Options {
    std::string name = "overlay";
    /// Ring points per member (must match across the cluster and its
    /// routed clients — the ring is a pure function of table+this).
    size_t virtualNodes = 32;
    /// Distinct successor holders promoted on crash repair; must match
    /// the clients' replication factor for crash-loss-free operation.
    size_t replication = 1;
    /// Forward single-key ops one hop (true) or always redirect (false).
    bool forwardData = true;
    u64 gossipIntervalMs = 250;
    /// Consecutive gossip-round timeouts before Suspect / Dead.
    size_t suspectAfterFailures = 2;
    size_t deadAfterFailures = 4;
    /// Warm window after joinCluster(): primary misses are fetched from
    /// the previous owner instead of answered absent.
    u64 warmupMs = 3000;
    /// Handoff batch packing (keys and soft bytes per datagram).
    size_t handoffBatchKeys = 32;
    size_t handoffBatchBytes = 48 * 1024;
    /// Bounded relay bookkeeping: in-flight/replayable forwarded
    /// requests per origin (at-most-once across the forwarding hop).
    size_t relayDedupCapacity = 1024;
    /// Deadline/backoff for the node's own outgoing calls. Kept tighter
    /// than the client default: a forward that cannot complete quickly
    /// should fail over to a redirect.
    rpc::RpcClient::Options rpc{/*initialRetransmitMs=*/40,
                                /*maxRetransmitMs=*/200,
                                /*requestDeadlineMs=*/800};
    rpc::NodeServer::Options server;
  };

  struct OverlayStats {
    common::RelaxedCounter forwards;          ///< relayed one hop
    common::RelaxedCounter forwardTimeouts;   ///< relay fell back to redirect
    common::RelaxedCounter redirects;         ///< Status::Redirect answers
    common::RelaxedCounter relayDedupHits;    ///< origin retransmits absorbed
    common::RelaxedCounter gossipRounds;
    common::RelaxedCounter gossipTimeouts;
    common::RelaxedCounter suspectsRaised;
    common::RelaxedCounter deadRaised;
    common::RelaxedCounter reconciles;        ///< ownership repair passes
    common::RelaxedCounter replicasPromoted;  ///< crash repair promotions
    common::RelaxedCounter replicaPushes;     ///< re-replication datagrams
    common::RelaxedCounter joinsServed;       ///< JoinReqs accepted
    common::RelaxedCounter handoffKeysSent;
    common::RelaxedCounter handoffBatchesSent;
    common::RelaxedCounter warmFetches;       ///< warm-window remote fills
  };

  /// `transport` is the node's bound endpoint; it must outlive the node.
  OverlayNode(Options options, rpc::Transport& transport);

  // --- Lifecycle ------------------------------------------------------------

  /// Installs a static launch-time membership (every daemon of a
  /// fixed-list cluster seeds the same table; gossip then only has to
  /// repair divergence). Entries for self are ignored.
  void seedMembership(const std::vector<rpc::wire::NodeEntry>& entries);

  /// Bootstraps into a live cluster from one seed endpoint: pulls the
  /// table, announces via JoinReq to every member, opens the warm
  /// window. Drives the transport until the announce round resolves or
  /// `deadlineMs` transport-time passes. Returns false when the seed
  /// never answered or every member refused.
  bool joinCluster(const NetAddr& seed, u64 deadlineMs);

  /// Streams every primary key to its post-departure owner, announces
  /// Left, and returns once the announcements resolve (or deadline).
  /// Returns the number of keys streamed out.
  size_t leaveGracefully(u64 deadlineMs);

  // --- Driving --------------------------------------------------------------

  /// One event-loop turn: receive (≤ `maxWaitMs`, bounded by the next
  /// internal timer), dispatch requests/replies, advance retransmits,
  /// resolve forward/handoff/gossip continuations, maybe start a gossip
  /// round. Returns the number of datagrams processed.
  size_t pumpOnce(u64 maxWaitMs);

  /// pumpOnce until `stop`.
  void serve(const std::atomic<bool>& stop);

  // --- Observation ----------------------------------------------------------

  [[nodiscard]] u64 selfId() const { return table_.selfId(); }
  [[nodiscard]] MembershipTable& membership() { return table_; }
  [[nodiscard]] const MembershipTable& membership() const { return table_; }
  [[nodiscard]] rpc::NodeServer& server() { return server_; }
  [[nodiscard]] const OverlayStats& overlayStats() const { return stats_; }
  [[nodiscard]] rpc::RpcClient& rpcClient() { return client_; }
  /// Streams still draining toward joiners/leavers (0 = quiescent).
  [[nodiscard]] size_t pendingHandoffJobs() const { return handoffJobs_.size(); }

 private:
  struct RelayKey {
    u32 host = 0;
    u16 port = 0;
    u64 requestId = 0;
    bool operator==(const RelayKey& o) const {
      return host == o.host && port == o.port && requestId == o.requestId;
    }
  };
  struct RelayKeyHash {
    size_t operator()(const RelayKey& k) const {
      u64 h = k.requestId * 0x9E3779B97F4A7C15ull;
      h ^= (u64(k.host) << 16) | k.port;
      h *= 0xFF51AFD7ED558CCDull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };
  /// One forwarded origin request: pending until the relayed call (or
  /// warm fetch set) resolves, then the cached reply bytes absorb origin
  /// retransmits.
  struct RelayState {
    bool done = false;
    std::string reply;  // valid when done
  };

  /// Continuations keyed by outgoing-call token.
  struct PendingRelay {
    NetAddr origin;
    u64 originId = 0;
    rpc::wire::Op op = rpc::wire::Op::Ping;
    u64 ownerId = 0;
  };
  struct PendingGossip {
    u64 peerId = 0;
  };
  struct WarmJob;
  struct PendingWarmFetch {
    std::shared_ptr<WarmJob> job;
    std::string key;
  };
  struct WarmJob {
    NetAddr origin;
    u64 originId = 0;
    std::string payload;  // original request datagram, re-dispatched last
    size_t outstanding = 0;
  };
  struct HandoffJob {
    NetAddr target;
    u64 targetNodeId = 0;
    std::vector<rpc::wire::HandoffEntry> entries;
    size_t cursor = 0;     // entries[0..cursor) acknowledged
    size_t lastBatch = 0;  // size of the in-flight batch
    size_t retries = 0;
    bool demoteOnDone = false;  // join streaming demotes; leave exits anyway
    bool inFlight = false;
    bool done = false;
  };
  struct PendingHandoff {
    std::shared_ptr<HandoffJob> job;
  };
  struct Pending {
    enum class Kind { Relay, Gossip, WarmFetch, Handoff, ReplicaPush } kind;
    PendingRelay relay;
    PendingGossip gossip;
    PendingWarmFetch warm;
    PendingHandoff handoff;
  };

  // Request path.
  std::string handleRequest(const NetAddr& from, std::string_view payload);
  std::string finishLocal(const NetAddr& from, std::string_view payload);
  std::string makeRedirect(u64 requestId, rpc::wire::Op op, u64 ownerId);
  void stampHint(std::string& reply);
  /// The key a single-key data op routes on; nullptr for everything else.
  static const std::string* routedKey(const rpc::wire::RequestBody& body);

  // Continuation resolution.
  void drainResolved();
  void resolveRelay(const PendingRelay& p, rpc::RpcClient::Result r);
  void resolveGossip(const PendingGossip& p, const rpc::RpcClient::Result& r);
  void resolveWarmFetch(const PendingWarmFetch& p,
                        const rpc::RpcClient::Result& r);
  void resolveHandoff(const PendingHandoff& p, const rpc::RpcClient::Result& r);

  // Membership machinery.
  void maybeGossip(u64 now);
  void refreshRing();
  void reconcileOwnership();
  void noteMembershipChanged();
  void startHandoffTo(const rpc::wire::NodeEntry& target,
                      std::vector<rpc::wire::HandoffEntry> entries,
                      bool demoteOnDone);
  void pumpHandoffJobs();
  /// Registers a relay key for at-most-once replay, FIFO-bounded.
  void trackRelay(const RelayKey& key);
  void finishRelay(const RelayKey& key, const NetAddr& origin,
                   std::string reply);
  [[nodiscard]] bool warming() const;

  Options opts_;
  rpc::Transport& transport_;
  rpc::NodeServer server_;
  MembershipTable table_;
  rpc::RpcClient client_;
  common::Pcg32 rng_;

  MemberRing ring_;
  u64 ringVersion_ = 0;
  u64 reconciledVersion_ = 0;

  u64 nextGossipAtMs_ = 0;
  u64 warmUntilMs_ = 0;
  std::unordered_map<u64, size_t> gossipFailures_;  // peerId -> consecutive

  std::unordered_map<rpc::RpcClient::Token, Pending> pending_;
  std::unordered_map<RelayKey, RelayState, RelayKeyHash> relays_;
  std::deque<RelayKey> relayOrder_;  // FIFO eviction
  std::vector<std::shared_ptr<HandoffJob>> handoffJobs_;
  std::vector<rpc::Datagram> batch_;
  OverlayStats stats_;
};

}  // namespace lht::overlay
