#include "overlay/overlay_node.h"

#include <algorithm>
#include <unordered_set>

#include "common/types.h"

namespace lht::overlay {

using namespace rpc::wire;  // NOLINT — implementation file for the protocol
using rpc::Datagram;
using rpc::RpcClient;

OverlayNode::OverlayNode(Options options, rpc::Transport& transport)
    : opts_(std::move(options)),
      transport_(transport),
      server_(opts_.server),
      table_(
          [&] {
            NodeEntry self;
            const NetAddr addr = transport.localAddr();
            self.id = nodeIdFor(addr);
            self.host = addr.host;
            self.port = addr.port;
            self.ringBase = self.id;
            return self;
          }(),
          /*incarnation=*/1),
      client_(transport, opts_.rpc),
      rng_(table_.selfId(), 0x5eed) {
  refreshRing();
}

// --- Request path -----------------------------------------------------------

void OverlayNode::stampHint(std::string& reply) {
  if (reply.empty()) return;
  appendGossipHint(reply, GossipHint{table_.selfId(), table_.version()});
}

std::string OverlayNode::finishLocal(const NetAddr& from,
                                     std::string_view payload) {
  std::string reply = server_.handle(from, payload);
  stampHint(reply);
  return reply;
}

std::string OverlayNode::makeRedirect(u64 requestId, Op op, u64 ownerId) {
  RedirectRep body;
  body.ownerId = ownerId;
  body.version = table_.version();
  if (auto entry = table_.find(ownerId)) {
    body.host = entry->host;
    body.port = entry->port;
  }
  stats_.redirects += 1;
  std::string reply = encodeReply(requestId, op, Status::Redirect, body);
  stampHint(reply);
  return reply;
}

const std::string* OverlayNode::routedKey(const RequestBody& body) {
  if (const auto* p = std::get_if<PutReq>(&body)) return &p->key;
  if (const auto* g = std::get_if<GetReq>(&body)) return &g->key;
  if (const auto* r = std::get_if<RemoveReq>(&body)) return &r->key;
  if (const auto* c = std::get_if<CasReq>(&body)) return &c->key;
  return nullptr;
}

bool OverlayNode::warming() const {
  return warmUntilMs_ != 0;  // cleared by pumpOnce when the window closes
}

std::string OverlayNode::handleRequest(const NetAddr& from,
                                       std::string_view payload) {
  auto decoded = decodeRequest(payload);
  if (std::holds_alternative<DecodeError>(decoded)) {
    // NodeServer owns the garbage policy (reply BadRequest/UnknownOp when
    // the header parsed, silence otherwise).
    return finishLocal(from, payload);
  }
  Request& req = std::get<Request>(decoded);
  const u64 reqId = req.header.requestId;

  // Overlay protocol ops.
  if (auto* gs = std::get_if<GossipSyncReq>(&req.body)) {
    if (gs->senderId != 0 && table_.mergeAll(gs->entries) > 0) {
      noteMembershipChanged();
    }
    GossipSyncRep rep;
    rep.version = table_.version();
    rep.entries = table_.snapshot();
    std::string reply = encodeReply(reqId, Op::GossipSync, Status::Ok, rep);
    stampHint(reply);
    return reply;
  }
  if (auto* join = std::get_if<JoinReq>(&req.body)) {
    // At-most-once across retransmits: announcing twice must not stream
    // the key range twice.
    const RelayKey rkey{from.host, from.port, reqId};
    if (auto it = relays_.find(rkey); it != relays_.end()) {
      stats_.relayDedupHits += 1;
      return it->second.done ? it->second.reply : std::string{};
    }
    JoinRep rep;
    if (join->joiner.id != 0 && join->joiner.id != table_.selfId()) {
      table_.merge(join->joiner);
      noteMembershipChanged();
      const u64 joinerId = join->joiner.id;
      auto toStream = server_.collectPrimary([&](const std::string& key) {
        return ring_.owner(key) == joinerId;
      });
      rep.accepted = true;
      rep.keysStreamed = toStream.size();
      stats_.joinsServed += 1;
      if (!toStream.empty()) {
        startHandoffTo(join->joiner, std::move(toStream),
                       /*demoteOnDone=*/true);
      }
    }
    rep.version = table_.version();
    rep.entries = table_.snapshot();
    std::string reply = encodeReply(reqId, Op::Join, Status::Ok, rep);
    stampHint(reply);
    trackRelay(rkey);
    finishRelay(rkey, from, reply);
    return {};  // finishRelay already sent it
  }
  if (auto* leave = std::get_if<LeaveReq>(&req.body)) {
    LeaveRep rep;
    rep.known = table_.find(leave->nodeId).has_value();
    if (table_.markLeft(leave->nodeId, leave->incarnation)) {
      noteMembershipChanged();
    }
    std::string reply = encodeReply(reqId, Op::Leave, Status::Ok, rep);
    stampHint(reply);
    return reply;
  }

  // Keyed data ops: route on the ring.
  refreshRing();
  if (const std::string* key = routedKey(req.body)) {
    const u64 owner = ring_.empty() ? 0 : ring_.owner(*key);
    if (owner != 0 && owner != table_.selfId()) {
      if (req.header.noForward) {
        // Forwarded here on a stale view (or we just demoted the key):
        // answer locally; a read can still be served from the demoted
        // replica copy.
        if (std::holds_alternative<GetReq>(req.body)) {
          if (!server_.primaryRecord(*key).has_value()) {
            if (auto rec = server_.replicaRecord(*key)) {
              GetRep rep;
              rep.present = true;
              rep.version = rec->first;
              rep.value = std::move(rec->second);
              std::string reply = encodeReply(reqId, Op::Get, Status::Ok, rep);
              stampHint(reply);
              return reply;
            }
          }
        }
        return finishLocal(from, payload);
      }
      auto entry = table_.find(owner);
      const bool ownerAlive =
          entry && entry->state == static_cast<u8>(NodeState::Alive);
      if (opts_.forwardData && ownerAlive) {
        const RelayKey rkey{from.host, from.port, reqId};
        if (auto it = relays_.find(rkey); it != relays_.end()) {
          stats_.relayDedupHits += 1;
          return it->second.done ? it->second.reply : std::string{};
        }
        PendingRelay relay;
        relay.origin = from;
        relay.originId = reqId;
        relay.op = req.header.op;
        relay.ownerId = owner;
        const RpcClient::Token t =
            client_.call(addrOf(*entry), std::move(req.body),
                         /*noForward=*/true);
        Pending p;
        p.kind = Pending::Kind::Relay;
        p.relay = std::move(relay);
        pending_.emplace(t, std::move(p));
        trackRelay(rkey);
        stats_.forwards += 1;
        return {};  // reply follows when the relayed call resolves
      }
      return makeRedirect(reqId, req.header.op, owner);
    }
    // We own the key (or the ring is unknown — stand-alone node).
    if (owner != 0 && warming() && !server_.primaryRecord(*key).has_value()) {
      const u64 prev = ring_.ownerExcluding(*key, table_.selfId());
      auto prevEntry = prev == 0 ? std::nullopt : table_.find(prev);
      if (prevEntry &&
          prevEntry->state <= static_cast<u8>(NodeState::Suspect)) {
        const RelayKey rkey{from.host, from.port, reqId};
        if (auto it = relays_.find(rkey); it != relays_.end()) {
          stats_.relayDedupHits += 1;
          return it->second.done ? it->second.reply : std::string{};
        }
        auto job = std::make_shared<WarmJob>();
        job->origin = from;
        job->originId = reqId;
        job->payload = std::string(payload);
        job->outstanding = 1;
        PendingWarmFetch fetch;
        fetch.job = job;
        fetch.key = *key;
        const RpcClient::Token t = client_.call(
            addrOf(*prevEntry), GetReq{*key}, /*noForward=*/true);
        Pending p;
        p.kind = Pending::Kind::WarmFetch;
        p.warm = std::move(fetch);
        pending_.emplace(t, std::move(p));
        trackRelay(rkey);
        stats_.warmFetches += 1;
        return {};  // reply follows once the previous owner answered
      }
    }
    return finishLocal(from, payload);
  }

  // Batched ops: never forwarded — a foreign key means the client's
  // grouping is stale, so redirect and let it regroup.
  const std::vector<GetReq>* multiGets = nullptr;
  const std::vector<CasReq>* multiCass = nullptr;
  if (const auto* mg = std::get_if<MultiGetReq>(&req.body)) {
    multiGets = &mg->entries;
  } else if (const auto* mc = std::get_if<MultiCasReq>(&req.body)) {
    multiCass = &mc->entries;
  }
  if ((multiGets != nullptr || multiCass != nullptr) && !ring_.empty() &&
      !req.header.noForward) {
    const size_t n = multiGets ? multiGets->size() : multiCass->size();
    for (size_t i = 0; i < n; ++i) {
      const std::string& key =
          multiGets ? (*multiGets)[i].key : (*multiCass)[i].key;
      const u64 owner = ring_.owner(key);
      if (owner != 0 && owner != table_.selfId()) {
        return makeRedirect(reqId, req.header.op, owner);
      }
    }
    // All ours. During the warm window, pre-fetch the misses before the
    // batch executes so the batch sees the transferred state.
    if (warming()) {
      auto job = std::make_shared<WarmJob>();
      for (size_t i = 0; i < n; ++i) {
        const std::string& key =
            multiGets ? (*multiGets)[i].key : (*multiCass)[i].key;
        if (server_.primaryRecord(key).has_value()) continue;
        const u64 prev = ring_.ownerExcluding(key, table_.selfId());
        auto prevEntry = prev == 0 ? std::nullopt : table_.find(prev);
        if (!prevEntry ||
            prevEntry->state > static_cast<u8>(NodeState::Suspect)) {
          continue;
        }
        if (job->outstanding == 0) {
          const RelayKey rkey{from.host, from.port, reqId};
          if (auto it = relays_.find(rkey); it != relays_.end()) {
            stats_.relayDedupHits += 1;
            return it->second.done ? it->second.reply : std::string{};
          }
          job->origin = from;
          job->originId = reqId;
          job->payload = std::string(payload);
          trackRelay(rkey);
        }
        PendingWarmFetch fetch;
        fetch.job = job;
        fetch.key = key;
        const RpcClient::Token t =
            client_.call(addrOf(*prevEntry), GetReq{key}, /*noForward=*/true);
        Pending p;
        p.kind = Pending::Kind::WarmFetch;
        p.warm = std::move(fetch);
        pending_.emplace(t, std::move(p));
        job->outstanding += 1;
        stats_.warmFetches += 1;
      }
      if (job->outstanding > 0) return {};
    }
  }

  // Everything else (Ping/Size/Sync/Compact, replica ops, Handoff) is
  // plain storage — the wrapped server executes it.
  return finishLocal(from, payload);
}

void OverlayNode::trackRelay(const RelayKey& key) {
  relays_.emplace(key, RelayState{});
  relayOrder_.push_back(key);
  while (relayOrder_.size() > opts_.relayDedupCapacity) {
    relays_.erase(relayOrder_.front());
    relayOrder_.pop_front();
  }
}

void OverlayNode::finishRelay(const RelayKey& key, const NetAddr& origin,
                              std::string reply) {
  if (auto it = relays_.find(key); it != relays_.end()) {
    it->second.done = true;
    it->second.reply = reply;
  }
  if (!reply.empty()) transport_.send(origin, reply);
}

// --- Continuation resolution ------------------------------------------------

void OverlayNode::drainResolved() {
  std::vector<RpcClient::Token> ready;
  for (const auto& [token, p] : pending_) {
    if (client_.resolved(token)) ready.push_back(token);
  }
  for (const RpcClient::Token token : ready) {
    auto it = pending_.find(token);
    Pending p = std::move(it->second);
    pending_.erase(it);
    RpcClient::Result r = client_.take(token);
    if (r.hint && r.hint->senderId != 0) {
      // Piggybacked freshness from the callee; a version we have not
      // seen will be pulled in on the next gossip round.
      if (auto peer = table_.find(r.hint->senderId);
          peer && gossipFailures_.count(peer->id)) {
        gossipFailures_[peer->id] = 0;  // it answered something, at least
      }
    }
    switch (p.kind) {
      case Pending::Kind::Relay: resolveRelay(p.relay, std::move(r)); break;
      case Pending::Kind::Gossip: resolveGossip(p.gossip, r); break;
      case Pending::Kind::WarmFetch: resolveWarmFetch(p.warm, r); break;
      case Pending::Kind::Handoff: resolveHandoff(p.handoff, r); break;
      case Pending::Kind::ReplicaPush: break;  // best-effort, like NetDht
    }
  }
}

void OverlayNode::resolveRelay(const PendingRelay& p, RpcClient::Result r) {
  const RelayKey rkey{p.origin.host, p.origin.port, p.originId};
  std::string reply;
  if (r.timedOut) {
    // The owner went quiet under us: hand the origin a redirect so it can
    // retry against its own (possibly fresher) view.
    stats_.forwardTimeouts += 1;
    reply = makeRedirect(p.originId, p.op, p.ownerId);
  } else {
    reply = encodeReply(p.originId, p.op, r.status, r.body);
    stampHint(reply);
  }
  finishRelay(rkey, p.origin, std::move(reply));
}

void OverlayNode::resolveGossip(const PendingGossip& p,
                                const RpcClient::Result& r) {
  if (r.timedOut) {
    stats_.gossipTimeouts += 1;
    const size_t fails = ++gossipFailures_[p.peerId];
    if (fails == opts_.suspectAfterFailures && table_.markSuspect(p.peerId)) {
      stats_.suspectsRaised += 1;
      noteMembershipChanged();
    }
    if (fails >= opts_.deadAfterFailures && table_.markDead(p.peerId)) {
      stats_.deadRaised += 1;
      noteMembershipChanged();
    }
    return;
  }
  gossipFailures_[p.peerId] = 0;
  if (const auto* rep = std::get_if<GossipSyncRep>(&r.body)) {
    if (table_.mergeAll(rep->entries) > 0) noteMembershipChanged();
  }
}

void OverlayNode::resolveWarmFetch(const PendingWarmFetch& p,
                                   const RpcClient::Result& r) {
  if (r.ok()) {
    if (const auto* rep = std::get_if<GetRep>(&r.body); rep && rep->present) {
      server_.installPrimary(p.key, rep->version, rep->value);
    }
  }
  // A timed-out fetch degrades to "absent here": the op proceeds on local
  // state; retries re-fetch.
  WarmJob& job = *p.job;
  common::checkInvariant(job.outstanding > 0,
                         "OverlayNode: warm job underflow");
  if (--job.outstanding > 0) return;
  const RelayKey rkey{job.origin.host, job.origin.port, job.originId};
  finishRelay(rkey, job.origin, finishLocal(job.origin, job.payload));
}

void OverlayNode::resolveHandoff(const PendingHandoff& p,
                                 const RpcClient::Result& r) {
  HandoffJob& job = *p.job;
  job.inFlight = false;
  if (r.ok()) {
    job.cursor += job.lastBatch;
    job.retries = 0;
    return;
  }
  job.retries += 1;
  if (job.retries > 3) {
    // The receiver is gone. Keep the keys — we stay primary for them, so
    // nothing is lost; a later reconcile settles ownership.
    job.done = true;
  }
}

// --- Membership machinery ---------------------------------------------------

void OverlayNode::refreshRing() {
  const u64 v = table_.version();
  if (v == ringVersion_) return;
  ring_ = MemberRing(table_.snapshot(), opts_.virtualNodes);
  ringVersion_ = v;
}

void OverlayNode::reconcileOwnership() {
  const u64 v = table_.version();
  if (v == reconciledVersion_) return;
  reconciledVersion_ = v;
  refreshRing();
  if (ring_.empty()) return;
  // Crash/leave repair: replica copies of ranges that now belong to us
  // become primaries (max-version, so a handoff that already delivered a
  // fresher copy wins). Demotion is NOT done here — a node only demotes
  // once a handoff it streamed has been fully acknowledged.
  const u64 self = table_.selfId();
  const size_t promoted = server_.promoteReplica(
      [&](const std::string& key) { return ring_.owner(key) == self; });
  stats_.replicasPromoted += promoted;
  stats_.reconciles += 1;

  // Re-replication: after any ring change, the successor set of a key can
  // move, leaving the old replica copies on non-owners — where a later
  // crash could not be repaired from. Re-push every owned record's
  // replicas to the CURRENT successors (idempotent version-stamped
  // ReplicaPut, fire-and-forget continuations), so the crash invariant
  // "each key's replicas sit on its ring successors" heals lazily.
  if (opts_.replication > 1 && ring_.memberCount() > 1) {
    const auto all =
        server_.collectPrimary([](const std::string&) { return true; });
    for (const HandoffEntry& e : all) {
      const auto holders = ring_.holders(e.key, opts_.replication - 1);
      for (size_t i = 1; i < holders.size(); ++i) {
        if (holders[i] == self) continue;
        auto entry = table_.find(holders[i]);
        if (!entry) continue;
        const RpcClient::Token t = client_.call(
            addrOf(*entry), ReplicaPutReq{e.key, e.value, e.version});
        Pending p;
        p.kind = Pending::Kind::ReplicaPush;
        pending_.emplace(t, std::move(p));
        stats_.replicaPushes += 1;
      }
    }
  }
}

void OverlayNode::noteMembershipChanged() {
  refreshRing();
  reconcileOwnership();
}

void OverlayNode::maybeGossip(u64 now) {
  if (now < nextGossipAtMs_) return;
  // Jittered cadence so a cluster started in lockstep doesn't synchronize
  // its rounds.
  nextGossipAtMs_ =
      now + opts_.gossipIntervalMs / 2 +
      rng_.below(static_cast<u32>(opts_.gossipIntervalMs) + 1);
  const std::vector<u64> peers = table_.peerIds();
  if (peers.empty()) return;
  const u64 peerId = peers[rng_.below(static_cast<u32>(peers.size()))];
  auto entry = table_.find(peerId);
  if (!entry) return;
  GossipSyncReq req;
  req.senderId = table_.selfId();
  req.version = table_.version();
  req.entries = table_.snapshot();
  const RpcClient::Token t = client_.call(addrOf(*entry), std::move(req));
  Pending p;
  p.kind = Pending::Kind::Gossip;
  p.gossip.peerId = peerId;
  pending_.emplace(t, std::move(p));
  stats_.gossipRounds += 1;
}

void OverlayNode::startHandoffTo(const NodeEntry& target,
                                 std::vector<HandoffEntry> entries,
                                 bool demoteOnDone) {
  auto job = std::make_shared<HandoffJob>();
  job->target = addrOf(target);
  job->targetNodeId = target.id;
  job->entries = std::move(entries);
  job->demoteOnDone = demoteOnDone;
  handoffJobs_.push_back(std::move(job));
}

void OverlayNode::pumpHandoffJobs() {
  for (auto& jobPtr : handoffJobs_) {
    HandoffJob& job = *jobPtr;
    if (job.done || job.inFlight) continue;
    if (job.cursor >= job.entries.size()) {
      if (job.demoteOnDone) {
        // Every batch acknowledged: the receiver has at least our
        // versions, so our copies step down to replicas.
        std::unordered_set<std::string> streamed;
        streamed.reserve(job.entries.size());
        for (const HandoffEntry& e : job.entries) streamed.insert(e.key);
        server_.demotePrimary([&](const std::string& key) {
          return streamed.count(key) > 0;
        });
      }
      job.done = true;
      continue;
    }
    HandoffReq req;
    size_t bytes = 0;
    size_t i = job.cursor;
    while (i < job.entries.size() &&
           req.entries.size() < opts_.handoffBatchKeys &&
           bytes < opts_.handoffBatchBytes) {
      bytes += job.entries[i].key.size() + job.entries[i].value.size() + 16;
      req.entries.push_back(job.entries[i]);
      i += 1;
    }
    job.lastBatch = req.entries.size();
    stats_.handoffBatchesSent += 1;
    stats_.handoffKeysSent += req.entries.size();
    const RpcClient::Token t = client_.call(job.target, std::move(req));
    Pending p;
    p.kind = Pending::Kind::Handoff;
    p.handoff.job = jobPtr;
    pending_.emplace(t, std::move(p));
    job.inFlight = true;
  }
  std::erase_if(handoffJobs_,
                [](const std::shared_ptr<HandoffJob>& j) { return j->done; });
}

// --- Driving ----------------------------------------------------------------

size_t OverlayNode::pumpOnce(u64 maxWaitMs) {
  refreshRing();
  u64 now = transport_.nowMs();
  if (nextGossipAtMs_ == 0) {
    nextGossipAtMs_ = now + rng_.below(
        static_cast<u32>(opts_.gossipIntervalMs) + 1);
  }
  if (warmUntilMs_ != 0 && now >= warmUntilMs_) warmUntilMs_ = 0;
  u64 wait = maxWaitMs;
  wait = std::min(wait, nextGossipAtMs_ > now ? nextGossipAtMs_ - now : 0);
  if (const u64 timer = client_.pump(now); timer > 0) {
    wait = std::min(wait, timer);
  }
  batch_.clear();
  transport_.receive(batch_, wait);
  for (const Datagram& d : batch_) {
    auto h = decodeHeader(d.payload);
    const bool isReply = std::holds_alternative<Header>(h) &&
                         std::get<Header>(h).isReply;
    if (isReply) {
      client_.deliver(d);
      continue;
    }
    std::string reply = handleRequest(d.from, d.payload);
    if (!reply.empty()) transport_.send(d.from, reply);
  }
  now = transport_.nowMs();
  client_.pump(now);
  drainResolved();
  pumpHandoffJobs();
  maybeGossip(now);
  return batch_.size();
}

void OverlayNode::serve(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    pumpOnce(200);
  }
}

// --- Lifecycle --------------------------------------------------------------

void OverlayNode::seedMembership(const std::vector<NodeEntry>& entries) {
  table_.mergeAll(entries);
  noteMembershipChanged();
  // Launch-time members do not warm-fetch: the cluster starts empty.
  reconciledVersion_ = table_.version();
}

bool OverlayNode::joinCluster(const NetAddr& seed, u64 deadlineMs) {
  const u64 deadline = transport_.nowMs() + deadlineMs;
  // Phase 1: pull the seed's table (retry fresh requests until answered —
  // the seed may still be binding).
  bool pulled = false;
  while (!pulled && transport_.nowMs() < deadline) {
    GossipSyncReq req;
    req.senderId = table_.selfId();
    req.version = table_.version();
    req.entries = table_.snapshot();
    const RpcClient::Token t = client_.call(seed, std::move(req));
    while (!client_.resolved(t) && transport_.nowMs() < deadline) {
      pumpOnce(50);
    }
    if (!client_.resolved(t)) {
      // Deadline passed mid-flight; settle the table entry.
      client_.pump(~u64{0});
    }
    RpcClient::Result r = client_.take(t);
    if (r.ok()) {
      if (const auto* rep = std::get_if<GossipSyncRep>(&r.body)) {
        if (!rep->entries.empty()) {
          table_.mergeAll(rep->entries);
          pulled = true;
        }
      }
    }
  }
  if (!pulled) return false;
  refreshRing();

  // Phase 2: announce to every member; each streams our future keys.
  NodeEntry self;
  if (auto e = table_.find(table_.selfId())) self = *e;
  std::vector<RpcClient::Token> tokens;
  for (const u64 peerId : table_.peerIds()) {
    auto entry = table_.find(peerId);
    if (!entry) continue;
    tokens.push_back(client_.call(addrOf(*entry), JoinReq{self}));
  }
  size_t accepted = 0;
  for (const RpcClient::Token t : tokens) {
    while (!client_.resolved(t) && transport_.nowMs() < deadline) {
      pumpOnce(50);
    }
    if (!client_.resolved(t)) client_.pump(~u64{0});
    RpcClient::Result r = client_.take(t);
    if (!r.ok()) continue;
    if (const auto* rep = std::get_if<JoinRep>(&r.body); rep && rep->accepted) {
      table_.mergeAll(rep->entries);
      accepted += 1;
    }
  }
  noteMembershipChanged();
  // The launch state (pre-join keys) must stay reachable while streams
  // drain: warm-fetch misses from the previous owner.
  warmUntilMs_ = transport_.nowMs() + opts_.warmupMs;
  reconciledVersion_ = table_.version();  // no replica promotion on join
  return accepted > 0;
}

size_t OverlayNode::leaveGracefully(u64 deadlineMs) {
  const u64 deadline = transport_.nowMs() + deadlineMs;
  refreshRing();
  const u64 self = table_.selfId();

  // Stream every primary record to its post-departure owner.
  auto all = server_.collectPrimary([](const std::string&) { return true; });
  size_t streamed = 0;
  std::unordered_map<u64, std::vector<HandoffEntry>> byOwner;
  for (HandoffEntry& e : all) {
    const u64 owner = ring_.ownerExcluding(e.key, self);
    if (owner == 0 || owner == self) continue;
    byOwner[owner].push_back(std::move(e));
  }
  for (auto& [ownerId, entries] : byOwner) {
    auto entry = table_.find(ownerId);
    if (!entry) continue;
    streamed += entries.size();
    startHandoffTo(*entry, std::move(entries), /*demoteOnDone=*/false);
  }
  pumpHandoffJobs();
  while (!handoffJobs_.empty() && transport_.nowMs() < deadline) {
    pumpOnce(20);
  }

  // Announce: the Left rumor carries a bumped incarnation, so it beats
  // every Alive entry in every table it reaches.
  table_.leaveSelf();
  const u64 incarnation = table_.selfIncarnation();
  std::vector<RpcClient::Token> tokens;
  for (const u64 peerId : table_.peerIds()) {
    auto entry = table_.find(peerId);
    if (!entry) continue;
    tokens.push_back(
        client_.call(addrOf(*entry), LeaveReq{self, incarnation}));
  }
  for (const RpcClient::Token t : tokens) {
    while (!client_.resolved(t) && transport_.nowMs() < deadline) {
      pumpOnce(20);
    }
    if (!client_.resolved(t)) client_.pump(~u64{0});
    client_.take(t);
  }
  return streamed;
}

}  // namespace lht::overlay
