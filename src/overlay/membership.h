// Versioned gossip membership: who is in the cluster, and the ring that
// follows from it (DESIGN.md §15).
//
// Every overlay node keeps a MembershipTable — one NodeEntry per known
// node (id, endpoint, incarnation, state, ring seed) plus a local version
// counter bumped on every structural change. Tables converge by pairwise
// merge (anti-entropy gossip, SWIM-style): for the same node id, the
// higher incarnation wins outright; at equal incarnations the "worse"
// state wins (Alive < Suspect < Dead < Left), so a suspicion spreads
// until the accused node refutes it by re-announcing itself with a higher
// incarnation. Merge is commutative/associative/idempotent, which is what
// lets deltas piggyback on any reply in any order.
//
// The ring is a pure function of the table: every member whose state is
// at most Suspect contributes `virtualNodes` points derived from its
// ringBase seed, so any two nodes (or clients) with equal tables compute
// the identical key→owner map — no coordination beyond gossip.
#pragma once

#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"

namespace lht::overlay {

using common::u32;
using common::u64;
using common::u8;
using rpc::NetAddr;
using rpc::u16;

/// Lifecycle of a member as this node believes it. Values are the wire
/// encoding (wire::NodeEntry::state).
enum class NodeState : u8 {
  Alive = 0,
  Suspect = 1,  ///< unresponsive; still owns its keys until Dead
  Dead = 2,     ///< failure detector gave up; ring excludes it
  Left = 3,     ///< graceful departure (terminal: never refuted)
};
[[nodiscard]] const char* nodeStateName(NodeState s);

[[nodiscard]] inline NetAddr addrOf(const rpc::wire::NodeEntry& e) {
  return NetAddr{e.host, e.port};
}

/// Stable node id derived from the listen endpoint — every participant
/// computes the same id for the same address, so the launch script never
/// has to hand out identities. Never returns 0 (0 = "no node": clients
/// gossip-pull with senderId 0, MemberRing uses 0 for "nobody").
[[nodiscard]] u64 nodeIdFor(const NetAddr& addr);

/// Consistent-hash ring over a membership snapshot. Members with state
/// Alive or Suspect own keys; Dead/Left contribute nothing.
class MemberRing {
 public:
  MemberRing() = default;
  MemberRing(const std::vector<rpc::wire::NodeEntry>& table,
             size_t virtualNodes);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] size_t memberCount() const { return memberCount_; }

  /// Node id owning `key`; 0 when the ring is empty.
  [[nodiscard]] u64 owner(std::string_view key) const;

  /// Owner as if `excludeId` were not a member — the previous owner of a
  /// key this node just acquired (warm-miss forwarding). 0 when nobody
  /// else is on the ring.
  [[nodiscard]] u64 ownerExcluding(std::string_view key, u64 excludeId) const;

  /// Owner + up to `replicas` distinct successors, ring order.
  [[nodiscard]] std::vector<u64> holders(std::string_view key,
                                         size_t replicas) const;

 private:
  struct Point {
    u64 hash;
    u64 node;
  };
  [[nodiscard]] size_t pointAtOrAfter(u64 h) const;

  size_t memberCount_ = 0;
  std::vector<Point> points_;  // sorted by hash
};

/// The table itself. Thread-safe: the overlay's serve loop mutates it
/// while a metrics dump or test observer reads it.
class MembershipTable {
 public:
  /// `self` is installed as Alive at `incarnation` and can never be
  /// removed — merge() refutes any claim that this node is gone.
  MembershipTable(const rpc::wire::NodeEntry& self, u64 incarnation = 1);

  /// Merges one remote entry (gossip receive). Returns true when the
  /// table changed (and bumps the version). A remote claim that SELF is
  /// Suspect/Dead — or carries a newer incarnation than ours — triggers
  /// refutation: own incarnation jumps past the claim, state back to
  /// Alive, so the next gossip round overrides the rumor.
  bool merge(const rpc::wire::NodeEntry& remote);

  /// Merges a whole snapshot; returns the number of entries that changed
  /// the table.
  size_t mergeAll(const std::vector<rpc::wire::NodeEntry>& entries);

  /// Local failure-detector transitions. Each returns true (and bumps the
  /// version) when the state actually changed. Self transitions are
  /// refused. Suspect/Dead keep the entry's incarnation — the accused can
  /// refute with a bump.
  bool markSuspect(u64 id);
  bool markDead(u64 id);
  /// Graceful departure: terminal at `incarnation`.
  bool markLeft(u64 id, u64 incarnation);

  /// Announces this node's own departure (leave path): self goes Left at
  /// a bumped incarnation so the rumor wins against any Alive entry.
  void leaveSelf();

  [[nodiscard]] u64 version() const;
  [[nodiscard]] u64 selfId() const { return selfId_; }
  [[nodiscard]] u64 selfIncarnation() const;
  [[nodiscard]] u64 refutations() const;

  [[nodiscard]] std::vector<rpc::wire::NodeEntry> snapshot() const;
  [[nodiscard]] std::optional<rpc::wire::NodeEntry> find(u64 id) const;
  /// Members (any state) / members with state <= Suspect (ring members).
  [[nodiscard]] size_t knownCount() const;
  [[nodiscard]] size_t ringMemberCount() const;
  /// Ids of ring members excluding self (gossip / join targets).
  [[nodiscard]] std::vector<u64> peerIds() const;

 private:
  [[nodiscard]] rpc::wire::NodeEntry* findLocked(u64 id);
  void refuteLocked(u64 claimedIncarnation);

  mutable std::mutex mutex_;
  u64 selfId_;
  u64 version_ = 1;
  u64 refutations_ = 0;
  std::vector<rpc::wire::NodeEntry> entries_;  // unsorted, small
};

}  // namespace lht::overlay
