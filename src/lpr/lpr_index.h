// LPR — a Locality-Preserving Ring index (the paper's Sec. 2 alternative
// paradigm: replace the uniform hash with a locality-sensitive mapping,
// as in [8, 11, 15]).
//
// Keys are placed on the ring *by value* instead of by hash: peer ids
// partition [0, 1) into arcs and a record lives on the peer whose arc
// contains its data key. Range queries become trivially cheap — locate the
// lower bound (one lookup) and walk successor peers — and no index tree is
// needed at all. The price is exactly what the paper says these schemes
// pay: "DHTs with LSH have to sacrifice their load balance" — skewed key
// distributions pile records onto the peers owning the dense arcs, and
// the scheme is substrate-dependent (it *is* its own overlay; it cannot be
// deployed over a generic DHT's put/get interface).
//
// Implemented as a self-contained overlay (per the paradigm) with the same
// OrderedIndex interface and cost accounting as the over-DHT schemes.
#pragma once

#include <map>
#include <vector>

#include "common/random.h"
#include "index/ordered_index.h"

namespace lht::lpr {

class LprIndex final : public index::OrderedIndex {
 public:
  struct Options {
    size_t peers = 32;
    common::u64 seed = 1;
  };

  explicit LprIndex(Options options);

  index::UpdateResult insert(const index::Record& record) override;
  index::UpdateResult erase(double key) override;
  index::FindResult find(double key) override;
  index::RangeResult rangeQuery(double lo, double hi) override;
  index::FindResult minRecord() override;
  index::FindResult maxRecord() override;
  [[nodiscard]] size_t recordCount() const override { return recordCount_; }

  /// Records held per peer, ascending by arc position (load-balance data).
  [[nodiscard]] std::vector<size_t> recordsPerPeer() const;
  /// Largest share of all records on one peer (1/peers would be perfect).
  [[nodiscard]] double maxPeerShare() const;

 private:
  struct Peer {
    double arcLo = 0.0;  ///< arc is [arcLo, next peer's arcLo)
    std::multimap<double, std::string> store;
  };

  /// Index of the peer whose arc contains `key`.
  [[nodiscard]] size_t peerFor(double key) const;

  Options opts_;
  std::vector<Peer> peers_;  // sorted by arcLo
  size_t recordCount_ = 0;
};

}  // namespace lht::lpr
