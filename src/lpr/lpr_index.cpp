#include "lpr/lpr_index.h"

#include <algorithm>

#include "common/interval.h"
#include "common/types.h"

namespace lht::lpr {

LprIndex::LprIndex(Options options) : opts_(options) {
  common::checkInvariant(opts_.peers >= 1, "LprIndex: need >= 1 peer");
  common::Pcg32 rng(opts_.seed, /*stream=*/0x1472u);
  std::vector<double> cuts;
  cuts.reserve(opts_.peers);
  cuts.push_back(0.0);  // one peer anchors the start of the space
  for (size_t i = 1; i < opts_.peers; ++i) cuts.push_back(rng.nextDouble());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  peers_.resize(cuts.size());
  for (size_t i = 0; i < cuts.size(); ++i) peers_[i].arcLo = cuts[i];
}

size_t LprIndex::peerFor(double key) const {
  const double k = common::clampToUnit(key);
  // Last peer whose arcLo <= k.
  size_t lo = 0, hi = peers_.size();
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (peers_[mid].arcLo <= k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

index::UpdateResult LprIndex::insert(const index::Record& record) {
  common::checkInvariant(record.key >= 0.0 && record.key <= 1.0,
                         "LprIndex::insert: key outside [0,1]");
  peers_[peerFor(record.key)].store.emplace(record.key, record.payload);
  recordCount_ += 1;
  index::UpdateResult result;
  result.ok = true;
  result.stats.dhtLookups = 1;  // route straight to the arc owner
  result.stats.parallelSteps = 1;
  meters_.insertion.dhtLookups += 1;
  meters_.insertion.recordsMoved += 1;
  return result;
}

index::UpdateResult LprIndex::erase(double key) {
  common::checkInvariant(key >= 0.0 && key <= 1.0, "LprIndex::erase: bad key");
  index::UpdateResult result;
  auto& store = peers_[peerFor(key)].store;
  const size_t removed = store.erase(key);
  recordCount_ -= removed;
  result.ok = removed > 0;
  result.stats.dhtLookups = 1;
  result.stats.parallelSteps = 1;
  meters_.insertion.dhtLookups += 1;
  return result;
}

index::FindResult LprIndex::find(double key) {
  common::checkInvariant(key >= 0.0 && key <= 1.0, "LprIndex::find: bad key");
  index::FindResult result;
  result.stats.dhtLookups = 1;
  result.stats.parallelSteps = 1;
  const auto& store = peers_[peerFor(key)].store;
  auto it = store.find(key);
  if (it != store.end()) result.record = index::Record{it->first, it->second};
  meters_.query.dhtLookups += 1;
  return result;
}

index::RangeResult LprIndex::rangeQuery(double lo, double hi) {
  index::RangeResult result;
  if (hi <= lo) return result;
  common::checkInvariant(lo >= 0.0 && hi <= 1.0, "LprIndex::rangeQuery: bad bounds");
  // Locate the peer holding the lower bound, then walk successor arcs —
  // locality preservation makes this the whole algorithm.
  for (size_t p = peerFor(lo); p < peers_.size(); ++p) {
    if (peers_[p].arcLo >= hi) break;
    result.stats.dhtLookups += 1;
    result.stats.bucketsTouched += 1;
    const auto& store = peers_[p].store;
    for (auto it = store.lower_bound(lo); it != store.end() && it->first < hi; ++it) {
      result.records.push_back(index::Record{it->first, it->second});
    }
  }
  // Arc walks are sequential peer-to-peer forwards.
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  std::sort(result.records.begin(), result.records.end(), index::recordLess);
  return result;
}

index::FindResult LprIndex::minRecord() {
  index::FindResult result;
  for (const auto& peer : peers_) {
    result.stats.dhtLookups += 1;
    if (!peer.store.empty()) {
      auto it = peer.store.begin();
      result.record = index::Record{it->first, it->second};
      break;
    }
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

index::FindResult LprIndex::maxRecord() {
  index::FindResult result;
  for (auto it = peers_.rbegin(); it != peers_.rend(); ++it) {
    result.stats.dhtLookups += 1;
    if (!it->store.empty()) {
      auto rec = std::prev(it->store.end());
      result.record = index::Record{rec->first, rec->second};
      break;
    }
  }
  result.stats.parallelSteps = result.stats.dhtLookups;
  meters_.query.dhtLookups += result.stats.dhtLookups;
  return result;
}

std::vector<size_t> LprIndex::recordsPerPeer() const {
  std::vector<size_t> out;
  out.reserve(peers_.size());
  for (const auto& p : peers_) out.push_back(p.store.size());
  return out;
}

double LprIndex::maxPeerShare() const {
  if (recordCount_ == 0) return 0.0;
  size_t best = 0;
  for (const auto& p : peers_) best = std::max(best, p.store.size());
  return static_cast<double>(best) / static_cast<double>(recordCount_);
}

}  // namespace lht::lpr
