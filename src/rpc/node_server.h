// The peer daemon's brain: a versioned KV store behind the wire protocol.
//
// A node is deliberately dumb — it knows nothing about the ring, other
// nodes, or LHT. It stores (key -> {version, value}) twice over: a
// primary map (keys this node owns) and a replica map (keys it holds for
// fanout reads), mirroring Chord's primary/replica split so getReplica
// and failover reads work identically over the network. All routing and
// replication intelligence stays in the client (NetDht) or in the
// OverlayNode wrapper (src/overlay), which is what keeps the node
// protocol flat. A plain NodeServer answers the overlay membership ops
// (GossipSync/Join/Leave) with inert refusals; Handoff it executes for
// real, since bulk key install is pure storage.
//
// Versioned CAS: every stored value carries a u64 version, bumped on each
// mutation. Dht::apply's read-modify-write becomes GET (value, version) →
// run mutator client-side → CAS(expectedVersion). A CAS against a stale
// version fails and returns the current (version, value) so the client
// retries the mutator without an extra round. expectedVersion 0 means
// "expect absent".
//
// At-most-once: retransmitted requests must not re-execute mutations
// (a retried CAS would spuriously conflict with its own first execution).
// A bounded FIFO cache keyed by (source host, port, requestId) replays
// the original reply bytes instead.
//
// handle() is the entire protocol; serve() is a convenience loop for the
// daemon. handle() is mutex-guarded and safe to call from many threads
// (the SimHub invokes it inline from concurrent fleet clients).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"

namespace lht::rpc {

class NodeServer {
 public:
  struct Options {
    std::string name = "node";
    size_t dedupCapacity = 4096;
  };

  struct Stats {
    common::RelaxedCounter requestsHandled;
    common::RelaxedCounter dedupHits;    ///< replayed cached replies
    common::RelaxedCounter badRequests;  ///< undecodable / rejected
    common::RelaxedCounter oversizedReplies;  ///< downgraded to TooLarge
  };

  NodeServer() : NodeServer(Options{}) {}
  explicit NodeServer(Options options);

  /// Processes one request datagram. Returns the encoded reply, or an
  /// empty string when the datagram must be dropped silently (bad magic /
  /// truncated garbage — replying to noise would amplify junk traffic).
  [[nodiscard]] std::string handle(const NetAddr& from,
                                   std::string_view payload);

  /// Pumps `transport` until `stop` becomes true: receive, handle, reply.
  void serve(Transport& transport, const std::atomic<bool>& stop);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] size_t primaryKeyCount() const;
  [[nodiscard]] size_t replicaKeyCount() const;
  [[nodiscard]] std::optional<std::string> primaryValue(
      const std::string& key) const;
  [[nodiscard]] std::optional<std::string> replicaValue(
      const std::string& key) const;
  /// Records with their versions — the overlay's warm-miss check and its
  /// read fallback for a key this node just demoted (a forwarded read
  /// racing the handoff).
  [[nodiscard]] std::optional<std::pair<u64, std::string>> primaryRecord(
      const std::string& key) const;
  [[nodiscard]] std::optional<std::pair<u64, std::string>> replicaRecord(
      const std::string& key) const;

  // --- Overlay storage primitives ------------------------------------------
  // OverlayNode (src/overlay) drives key movement during join/leave/repair
  // through these. Predicates are evaluated under the storage mutex and
  // must be pure key-classification functions (no blocking, no RPC).

  /// Snapshot of primary records whose key satisfies `pred`, in handoff
  /// wire form — the source side of join streaming and reconcile.
  [[nodiscard]] std::vector<wire::HandoffEntry> collectPrimary(
      const std::function<bool(const std::string&)>& pred) const;

  /// Installs a primary record iff `version` beats the stored one (handoff
  /// receive path; max-version keeps retransmitted batches idempotent and
  /// never rolls back a concurrent client write). Returns true if stored.
  bool installPrimary(const std::string& key, u64 version,
                      const std::string& value);

  /// Moves matching primary records into the replica table (this node just
  /// lost ownership of them). Max-version wins on collision. Returns the
  /// number of records moved.
  size_t demotePrimary(const std::function<bool(const std::string&)>& pred);

  /// Moves matching replica records into the primary table (this node just
  /// gained ownership; its replica copy seeds the primary). Max-version
  /// wins on collision. Returns the number of records moved.
  size_t promoteReplica(const std::function<bool(const std::string&)>& pred);

 private:
  struct Stored {
    u64 version = 0;
    std::string value;
  };
  struct DedupKey {
    u32 host = 0;
    u16 port = 0;
    u64 requestId = 0;
    bool operator==(const DedupKey& o) const {
      return host == o.host && port == o.port && requestId == o.requestId;
    }
  };
  struct DedupKeyHash {
    size_t operator()(const DedupKey& k) const {
      u64 h = k.requestId * 0x9E3779B97F4A7C15ull;
      h ^= (u64(k.host) << 16) | k.port;
      h *= 0xFF51AFD7ED558CCDull;
      return static_cast<size_t>(h ^ (h >> 33));
    }
  };

  wire::ReplyBody dispatch(const wire::RequestBody& req);
  wire::GetRep doGet(const std::string& key) const;
  wire::CasRep doCas(const wire::CasReq& entry);

  Options opts_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Stored> primary_;
  std::unordered_map<std::string, Stored> replica_;
  // Dedup: map for lookup + deque for FIFO eviction.
  std::unordered_map<DedupKey, std::string, DedupKeyHash> dedup_;
  std::deque<DedupKey> dedupOrder_;
  Stats stats_;
};

}  // namespace lht::rpc
