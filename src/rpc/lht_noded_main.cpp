// lht_noded: one storage peer of a networked LHT cluster.
//
// Binds a UDP port on localhost and answers the wire protocol
// (rpc/wire.h) until SIGTERM/SIGINT. Two personalities:
//
//  * Plain (default): a dumb versioned KV store; all routing lives in the
//    clients (NetDht). This is the PR 9 daemon, unchanged.
//  * Overlay (--overlay=true): wraps the store in an overlay::OverlayNode
//    — gossip membership, server-side forward/redirect for misrouted
//    ops, and live join/leave. Bootstrap either from a static peer list
//    (--peers=9301,9302,... — every daemon of a fixed launch seeds the
//    same table) or by joining a running cluster via any live member
//    (--seed-port=9301). SIGUSR1 triggers a graceful leave: stream every
//    key to its new owner, announce Left, exit 0.
//
//   lht_noded --port=9101 --name=node-1
//   lht_noded --port=0 --overlay=true --seed-port=9101 --port-file=/tmp/n2
//
// Prints exactly one line when it is ready to serve:
//   lht_noded: ready on 127.0.0.1:<port>
// and, when --port-file is given, writes the bound port (digits only) to
// that file — the race-free handshake run_cluster.sh relies on with
// ephemeral ports. Both are part of the daemon's contract.
//
// Exit codes: 0 clean shutdown (including leave), 1 bind/setup failure,
// 2 flag error, 3 join failed (seed never answered / all refused).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "overlay/overlay_node.h"
#include "rpc/node_server.h"
#include "rpc/udp_transport.h"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_leave{false};

void onSignal(int) { g_stop.store(true, std::memory_order_relaxed); }
void onLeave(int) { g_leave.store(true, std::memory_order_relaxed); }

std::vector<lht::rpc::u16> parsePorts(const std::string& csv) {
  std::vector<lht::rpc::u16> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(
        static_cast<lht::rpc::u16>(std::stoi(csv.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("lht_noded",
                      "networked LHT storage peer (UDP, localhost)");
  flags.define("port", "0", "UDP port to bind (0 = ephemeral)");
  flags.define("name", "node", "peer name reported by ping");
  flags.define("quiet", "false", "suppress the shutdown summary");
  flags.define("port-file", "",
               "write the bound port to this file once ready");
  flags.define("overlay", "false",
               "run the self-routing overlay (gossip + forwarding)");
  flags.define("peers", "",
               "overlay: comma-separated ports of the static launch set");
  flags.define("seed-port", "0",
               "overlay: join a live cluster via this member port");
  flags.define("join-deadline-ms", "10000", "overlay: join handshake budget");
  flags.define("leave-deadline-ms", "10000",
               "overlay: graceful-leave streaming budget");
  flags.define("virtual-nodes", "32", "overlay: ring points per member");
  flags.define("replication", "1", "overlay: copies per key (crash repair)");
  flags.define("gossip-interval-ms", "250", "overlay: anti-entropy cadence");
  if (!flags.parse(argc, argv)) return 2;

  // SIGTERM/SIGINT flip the stop flag; epoll_wait returns with EINTR and
  // the serve loop notices. No SA_RESTART, by design. SIGUSR1 asks an
  // overlay node to leave gracefully (plain nodes treat it as stop).
  struct sigaction sa{};
  sa.sa_handler = onSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  struct sigaction sl{};
  sl.sa_handler = onLeave;
  sigaction(SIGUSR1, &sl, nullptr);

  rpc::UdpTransport::Options topts;
  topts.bindPort = static_cast<rpc::u16>(flags.getInt("port"));
  std::unique_ptr<rpc::UdpTransport> transport;
  try {
    transport = std::make_unique<rpc::UdpTransport>(topts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lht_noded: %s\n", e.what());
    return 1;
  }

  const std::string name = flags.getString("name");
  const std::string portFile = flags.getString("port-file");
  auto announceReady = [&] {
    if (!portFile.empty()) {
      // Write to a temp name then rename: a reader never sees a partial
      // file, so "file exists" == "port is valid".
      const std::string tmp = portFile + ".tmp";
      if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
        std::fprintf(f, "%u\n", unsigned{transport->localAddr().port});
        std::fclose(f);
        std::rename(tmp.c_str(), portFile.c_str());
      } else {
        std::fprintf(stderr, "lht_noded: cannot write %s\n", portFile.c_str());
      }
    }
    std::printf("lht_noded: ready on %s\n",
                transport->localAddr().str().c_str());
    std::fflush(stdout);
  };

  if (!flags.getBool("overlay")) {
    rpc::NodeServer::Options nopts;
    nopts.name = name;
    rpc::NodeServer server(nopts);
    announceReady();
    server.serve(*transport, g_stop);
    if (!flags.getBool("quiet")) {
      std::fprintf(
          stderr,
          "lht_noded: %s stopping (handled=%llu dedup_hits=%llu "
          "bad=%llu primary_keys=%zu)\n",
          name.c_str(),
          static_cast<unsigned long long>(server.stats().requestsHandled),
          static_cast<unsigned long long>(server.stats().dedupHits),
          static_cast<unsigned long long>(server.stats().badRequests),
          server.primaryKeyCount());
    }
    return 0;
  }

  // Overlay personality.
  overlay::OverlayNode::Options oopts;
  oopts.name = name;
  oopts.server.name = name;
  oopts.virtualNodes = static_cast<size_t>(flags.getInt("virtual-nodes"));
  oopts.replication = static_cast<size_t>(flags.getInt("replication"));
  oopts.gossipIntervalMs =
      static_cast<common::u64>(flags.getInt("gossip-interval-ms"));
  overlay::OverlayNode node(oopts, *transport);

  const auto peerPorts = parsePorts(flags.getString("peers"));
  if (!peerPorts.empty()) {
    std::vector<rpc::wire::NodeEntry> entries;
    for (const rpc::u16 p : peerPorts) {
      rpc::wire::NodeEntry e;
      e.host = rpc::kLoopbackHost;
      e.port = p;
      e.id = overlay::nodeIdFor(rpc::NetAddr{e.host, e.port});
      e.ringBase = e.id;
      e.incarnation = 1;
      e.state = static_cast<common::u8>(overlay::NodeState::Alive);
      entries.push_back(e);
    }
    node.seedMembership(entries);
  }

  const int seedPort = flags.getInt("seed-port");
  if (seedPort != 0) {
    // Announce readiness BEFORE joining: the parent may gate the next
    // daemon's launch on this one's port file, and the join handshake
    // below already serves traffic (pumpOnce-driven).
    announceReady();
    const rpc::NetAddr seed{rpc::kLoopbackHost,
                            static_cast<rpc::u16>(seedPort)};
    if (!node.joinCluster(
            seed, static_cast<common::u64>(flags.getInt("join-deadline-ms")))) {
      std::fprintf(stderr, "lht_noded: %s failed to join via %s\n",
                   name.c_str(), seed.str().c_str());
      return 3;
    }
    std::fprintf(stderr, "lht_noded: %s joined (%zu members known)\n",
                 name.c_str(), node.membership().ringMemberCount());
  } else {
    announceReady();
  }

  size_t keysStreamedOut = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    node.pumpOnce(200);
    if (g_leave.load(std::memory_order_relaxed)) {
      keysStreamedOut = node.leaveGracefully(
          static_cast<common::u64>(flags.getInt("leave-deadline-ms")));
      break;
    }
  }

  if (!flags.getBool("quiet")) {
    const auto& st = node.overlayStats();
    std::fprintf(
        stderr,
        "lht_noded: %s stopping (handled=%llu forwards=%llu redirects=%llu "
        "gossip_rounds=%llu joins_served=%llu handoff_keys=%llu "
        "promoted=%llu left_streamed=%zu primary_keys=%zu)\n",
        name.c_str(),
        static_cast<unsigned long long>(node.server().stats().requestsHandled),
        static_cast<unsigned long long>(st.forwards),
        static_cast<unsigned long long>(st.redirects),
        static_cast<unsigned long long>(st.gossipRounds),
        static_cast<unsigned long long>(st.joinsServed),
        static_cast<unsigned long long>(st.handoffKeysSent),
        static_cast<unsigned long long>(st.replicasPromoted), keysStreamedOut,
        node.server().primaryKeyCount());
  }
  return 0;
}
