// lht_noded: one storage peer of a networked LHT cluster.
//
// Binds a UDP port on localhost, answers the 13-opcode wire protocol
// (rpc/wire.h) until SIGTERM/SIGINT. Deliberately tiny: all routing and
// index logic lives in the clients (NetDht); this process is a versioned
// KV store with a socket.
//
//   lht_noded --port=9101 --name=node-1
//   lht_noded --port=0          # ephemeral; reads the line it prints
//
// Prints exactly one line when it is ready to serve:
//   lht_noded: ready on 127.0.0.1:<port>
// Parents (run_cluster.sh, the loopback ctest, bench_net) parse that
// line, so it is part of the daemon's contract.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/flags.h"
#include "rpc/node_server.h"
#include "rpc/udp_transport.h"

namespace {

std::atomic<bool> g_stop{false};

void onSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  using namespace lht;
  common::Flags flags("lht_noded",
                      "networked LHT storage peer (UDP, localhost)");
  flags.define("port", "0", "UDP port to bind (0 = ephemeral)");
  flags.define("name", "node", "peer name reported by ping");
  flags.define("quiet", "false", "suppress the shutdown summary");
  if (!flags.parse(argc, argv)) return 2;

  // SIGTERM/SIGINT flip the stop flag; epoll_wait returns with EINTR and
  // the serve loop notices. No SA_RESTART, by design.
  struct sigaction sa{};
  sa.sa_handler = onSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  rpc::UdpTransport::Options topts;
  topts.bindPort = static_cast<rpc::u16>(flags.getInt("port"));
  std::unique_ptr<rpc::UdpTransport> transport;
  try {
    transport = std::make_unique<rpc::UdpTransport>(topts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lht_noded: %s\n", e.what());
    return 1;
  }

  rpc::NodeServer::Options nopts;
  nopts.name = flags.getString("name");
  rpc::NodeServer server(nopts);

  std::printf("lht_noded: ready on %s\n", transport->localAddr().str().c_str());
  std::fflush(stdout);

  server.serve(*transport, g_stop);

  if (!flags.getBool("quiet")) {
    std::fprintf(stderr,
                 "lht_noded: %s stopping (handled=%llu dedup_hits=%llu "
                 "bad=%llu primary_keys=%zu)\n",
                 nopts.name.c_str(),
                 static_cast<unsigned long long>(server.stats().requestsHandled),
                 static_cast<unsigned long long>(server.stats().dedupHits),
                 static_cast<unsigned long long>(server.stats().badRequests),
                 server.primaryKeyCount());
  }
  return 0;
}
