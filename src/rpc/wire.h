// RPC wire format: compact binary messages over unreliable datagrams.
//
// Every message is one datagram: a fixed 4-byte header (magic, version,
// opcode, status) followed by a ULEB128 request id and an op-specific
// body. Strings and list counts are varint-framed (common/varint.h), so a
// small GET is ~20 bytes on the wire. Replies echo the request's id and
// set the high bit of its opcode.
//
//   offset  field
//   0       magic   0xA7
//   1       version 1
//   2       opcode  (Op; replies: Op | 0x80)
//   3       status  (replies: Status in the low 7 bits, bit 7 = a gossip
//                    hint trailer follows the body; requests: flags —
//                    bit 0 = kNoForwardBit, all other bits must be 0)
//   4..     request id (varint)
//   ..      body
//   ..      gossip hint trailer (replies, only when bit 7 of status set):
//           sender node id (varint), membership version (varint)
//
// Decoding is total: any truncated, overlong, or type-violating input
// yields a typed DecodeError, never a crash or an over-read — these bytes
// arrive from the network, and the fuzz suite (rpc_wire_test) bit-flips
// and truncates every message kind under ASan to hold the codec to that.
//
// Payload values reuse the index layers' existing serialization (bucket
// wire-format-v2 bytes travel opaquely in `value` fields), so the codec
// composes with, and never re-interprets, what the DHT stores.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/codec.h"
#include "common/types.h"

namespace lht::rpc::wire {

using common::u8;
using common::u32;
using common::u64;
using u16 = std::uint16_t;

inline constexpr u8 kMagic = 0xA7;
inline constexpr u8 kVersion = 1;
inline constexpr u8 kReplyBit = 0x80;
/// Reply status byte, bit 7: a gossip hint trailer (sender node id +
/// membership version, both varints) follows the body. Overlay nodes set
/// it on every reply so clients learn about membership changes for free.
inline constexpr u8 kGossipHintBit = 0x80;
/// Request status byte, bit 0: this request was already forwarded once by
/// an overlay node — the receiver must answer locally or redirect, never
/// forward again (one-hop forwarding, loop-free by construction).
inline constexpr u8 kNoForwardBit = 0x01;

/// Request opcodes. Replica* ops address a holder's replica table (the
/// client routes them). GossipSync/Join/Leave/Handoff are the overlay
/// membership protocol (src/overlay): plain NodeServers answer them with
/// empty/refusal bodies, OverlayNode implements them for real.
enum class Op : u8 {
  Ping = 1,
  Put = 2,
  Get = 3,
  Remove = 4,
  Cas = 5,
  MultiGet = 6,
  MultiCas = 7,
  ReplicaPut = 8,
  ReplicaRemove = 9,
  ReplicaGet = 10,
  Size = 11,
  Sync = 12,
  Compact = 13,
  GossipSync = 14,  ///< anti-entropy membership exchange (push + pull)
  Join = 15,        ///< join handshake: stream my future keys to me
  Leave = 16,       ///< graceful departure announcement
  Handoff = 17,     ///< bulk key transfer (join streaming / reconcile)
};
[[nodiscard]] const char* opName(Op op);
[[nodiscard]] bool opKnown(u8 raw);

/// Reply status. In-band outcomes (key absent, CAS conflict) are NOT
/// errors — they live in the reply bodies; Status covers only requests the
/// server could not execute. Redirect is the overlay's routing outcome:
/// "not my key" plus the fresh owner endpoint in a RedirectRep body.
enum class Status : u8 {
  Ok = 0,
  BadRequest = 1,   ///< body failed to decode
  UnknownOp = 2,    ///< header parsed but the opcode is from a future protocol
  TooLarge = 3,     ///< message would exceed kMaxDatagramBytes (replies:
                    ///< server-side; requests: failed locally by RpcClient)
  Redirect = 4,     ///< wrong node for this key; body is a RedirectRep
};
[[nodiscard]] const char* statusName(Status s);

/// Why a datagram failed to decode (typed, for tests and metrics).
enum class DecodeError : u8 {
  Truncated = 1,     ///< ran out of bytes mid-field
  BadMagic = 2,      ///< first byte is not kMagic (not ours; drop silently)
  BadVersion = 3,
  BadOpcode = 4,
  BadField = 5,      ///< a field violates its invariant (flag byte > 1, …)
  TrailingBytes = 6, ///< body decoded but bytes remain
};
[[nodiscard]] const char* decodeErrorName(DecodeError e);

/// Decoded message header.
struct Header {
  Op op = Op::Ping;
  bool isReply = false;
  Status status = Status::Ok;
  u64 requestId = 0;
  bool noForward = false;   ///< requests: kNoForwardBit was set
  bool hasGossipHint = false;  ///< replies: a hint trailer follows the body
};

/// One membership table entry as it travels on the wire. `state` is the
/// overlay NodeState (0 alive, 1 suspect, 2 dead, 3 left); `ringBase` is
/// the node's ring position seed (virtual-node points derive from it), so
/// every participant computes the identical ring from the same table.
struct NodeEntry {
  u64 id = 0;
  u32 host = 0;
  u16 port = 0;
  u64 incarnation = 0;
  u8 state = 0;
  u64 ringBase = 0;

  friend bool operator==(const NodeEntry&, const NodeEntry&) = default;
};
inline constexpr u8 kMaxNodeState = 3;

/// Piggybacked membership freshness: appended to replies so clients and
/// peers notice a stale view without dedicated gossip traffic.
struct GossipHint {
  u64 senderId = 0;
  u64 version = 0;
};

// --- Request bodies --------------------------------------------------------

struct PingReq {};
struct PutReq {
  std::string key;
  std::string value;
};
struct GetReq {
  std::string key;
};
struct RemoveReq {
  std::string key;
};
/// Optimistic read-modify-write: applies iff the key's stored version
/// still equals expectedVersion (0 = expect absent). present=false erases.
struct CasReq {
  std::string key;
  u64 expectedVersion = 0;
  bool present = true;
  std::string value;
};
struct MultiGetReq {
  std::vector<GetReq> entries;
};
struct MultiCasReq {
  std::vector<CasReq> entries;
};
/// Replica copy install: carries the primary's version so a holder's copy
/// is identifiable with the snapshot it mirrors.
struct ReplicaPutReq {
  std::string key;
  std::string value;
  u64 version = 0;
};
struct ReplicaRemoveReq {
  std::string key;
};
struct ReplicaGetReq {
  std::string key;
};
struct SizeReq {};
struct SyncReq {};
struct CompactReq {};
/// Anti-entropy exchange: the sender pushes its table, the receiver merges
/// and answers with its own (post-merge) table. A client pulls by sending
/// senderId 0 with no entries.
struct GossipSyncReq {
  u64 senderId = 0;
  u64 version = 0;
  std::vector<NodeEntry> entries;
};
/// Join handshake, sent by the joiner to every current member: "stream the
/// primary keys I will own to my endpoint". The receiver streams via
/// Handoff batches before replying.
struct JoinReq {
  NodeEntry joiner;
};
struct LeaveReq {
  u64 nodeId = 0;
  u64 incarnation = 0;
};
/// One transferred record (primary copy with its version).
struct HandoffEntry {
  std::string key;
  u64 version = 0;
  std::string value;
};
struct HandoffReq {
  std::vector<HandoffEntry> entries;
};

// --- Reply bodies ----------------------------------------------------------

struct PingRep {
  std::string nodeName;
};
struct PutRep {
  u64 version = 0;  ///< version assigned to the stored value
};
struct GetRep {
  bool present = false;
  u64 version = 0;
  std::string value;
};
struct RemoveRep {
  bool existed = false;
};
struct CasRep {
  bool applied = false;
  bool existedBefore = false;
  /// Current state after (applied) or instead of (conflict) the write;
  /// on conflict the value rides along so the caller can re-run its
  /// mutator without another GET round.
  u64 currentVersion = 0;
  bool currentPresent = false;
  std::string currentValue;
};
struct MultiGetRep {
  std::vector<GetRep> entries;
};
struct MultiCasRep {
  std::vector<CasRep> entries;
};
struct ReplicaPutRep {};
struct ReplicaRemoveRep {
  bool existed = false;
};
struct SizeRep {
  u64 primaryKeys = 0;
};
struct SyncRep {};
struct CompactRep {};
struct GossipSyncRep {
  u64 version = 0;
  std::vector<NodeEntry> entries;
};
struct JoinRep {
  bool accepted = false;
  u64 keysStreamed = 0;
  u64 version = 0;
  std::vector<NodeEntry> entries;  ///< the member's current table
};
struct LeaveRep {
  bool known = false;
};
struct HandoffRep {
  u64 installed = 0;
};
/// Status::Redirect body: the receiver's idea of the key's owner, so the
/// client retries in one extra hop and knows its table (at `version`) is
/// stale.
struct RedirectRep {
  u64 ownerId = 0;
  u32 host = 0;
  u16 port = 0;
  u64 version = 0;
};
struct EmptyRep {};  ///< other non-Ok replies carry no body

using RequestBody =
    std::variant<PingReq, PutReq, GetReq, RemoveReq, CasReq, MultiGetReq,
                 MultiCasReq, ReplicaPutReq, ReplicaRemoveReq, ReplicaGetReq,
                 SizeReq, SyncReq, CompactReq, GossipSyncReq, JoinReq,
                 LeaveReq, HandoffReq>;
using ReplyBody =
    std::variant<EmptyRep, PingRep, PutRep, GetRep, RemoveRep, CasRep,
                 MultiGetRep, MultiCasRep, ReplicaPutRep, ReplicaRemoveRep,
                 SizeRep, SyncRep, CompactRep, GossipSyncRep, JoinRep,
                 LeaveRep, HandoffRep, RedirectRep>;

struct Request {
  Header header;
  RequestBody body;
};
struct Reply {
  Header header;
  ReplyBody body;
  std::optional<GossipHint> hint;  ///< piggybacked trailer, when present
};

/// The opcode a request body travels under.
[[nodiscard]] Op opOf(const RequestBody& body);

// --- Encode ----------------------------------------------------------------

[[nodiscard]] std::string encodeRequest(u64 requestId, const RequestBody& body,
                                        bool noForward = false);
[[nodiscard]] std::string encodeReply(u64 requestId, Op op, Status status,
                                      const ReplyBody& body);

/// Stamps a gossip hint onto an already-encoded reply in place: sets
/// kGossipHintBit in the status byte and appends the trailer. Lets the
/// overlay piggyback on NodeServer's (and its dedup cache's) reply bytes
/// without re-encoding the body.
void appendGossipHint(std::string& encodedReply, const GossipHint& hint);

// --- Decode ----------------------------------------------------------------

template <typename T>
using DecodeResult = std::variant<T, DecodeError>;

/// Decodes a request datagram (server side).
[[nodiscard]] DecodeResult<Request> decodeRequest(std::string_view datagram);

/// Decodes a reply datagram (client side). The body variant matches the
/// header's opcode; non-Ok statuses decode to EmptyRep.
[[nodiscard]] DecodeResult<Reply> decodeReply(std::string_view datagram);

/// Peeks at the header only (dispatch without full body decode). Unlike
/// the full decoders, an UNKNOWN opcode passes through (`op` then holds
/// the raw value) so a server can answer a future client's opcode with
/// Status::UnknownOp instead of silence — check opKnown() before
/// treating `op` as a member of the enum.
[[nodiscard]] DecodeResult<Header> decodeHeader(std::string_view datagram);

}  // namespace lht::rpc::wire
