// RPC wire format: compact binary messages over unreliable datagrams.
//
// Every message is one datagram: a fixed 4-byte header (magic, version,
// opcode, status) followed by a ULEB128 request id and an op-specific
// body. Strings and list counts are varint-framed (common/varint.h), so a
// small GET is ~20 bytes on the wire. Replies echo the request's id and
// set the high bit of its opcode.
//
//   offset  field
//   0       magic   0xA7
//   1       version 1
//   2       opcode  (Op; replies: Op | 0x80)
//   3       status  (Status; 0 on requests)
//   4..     request id (varint)
//   ..      body
//
// Decoding is total: any truncated, overlong, or type-violating input
// yields a typed DecodeError, never a crash or an over-read — these bytes
// arrive from the network, and the fuzz suite (rpc_wire_test) bit-flips
// and truncates every message kind under ASan to hold the codec to that.
//
// Payload values reuse the index layers' existing serialization (bucket
// wire-format-v2 bytes travel opaquely in `value` fields), so the codec
// composes with, and never re-interprets, what the DHT stores.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/codec.h"
#include "common/types.h"

namespace lht::rpc::wire {

using common::u8;
using common::u64;

inline constexpr u8 kMagic = 0xA7;
inline constexpr u8 kVersion = 1;
inline constexpr u8 kReplyBit = 0x80;

/// Request opcodes. Replica* ops address a holder's replica table (the
/// client routes them; the server never re-routes anything).
enum class Op : u8 {
  Ping = 1,
  Put = 2,
  Get = 3,
  Remove = 4,
  Cas = 5,
  MultiGet = 6,
  MultiCas = 7,
  ReplicaPut = 8,
  ReplicaRemove = 9,
  ReplicaGet = 10,
  Size = 11,
  Sync = 12,
  Compact = 13,
};
[[nodiscard]] const char* opName(Op op);
[[nodiscard]] bool opKnown(u8 raw);

/// Reply status. In-band outcomes (key absent, CAS conflict) are NOT
/// errors — they live in the reply bodies; Status covers only requests the
/// server could not execute.
enum class Status : u8 {
  Ok = 0,
  BadRequest = 1,   ///< body failed to decode
  UnknownOp = 2,    ///< header parsed but the opcode is from a future protocol
  TooLarge = 3,     ///< message would exceed kMaxDatagramBytes (replies:
                    ///< server-side; requests: failed locally by RpcClient)
};
[[nodiscard]] const char* statusName(Status s);

/// Why a datagram failed to decode (typed, for tests and metrics).
enum class DecodeError : u8 {
  Truncated = 1,     ///< ran out of bytes mid-field
  BadMagic = 2,      ///< first byte is not kMagic (not ours; drop silently)
  BadVersion = 3,
  BadOpcode = 4,
  BadField = 5,      ///< a field violates its invariant (flag byte > 1, …)
  TrailingBytes = 6, ///< body decoded but bytes remain
};
[[nodiscard]] const char* decodeErrorName(DecodeError e);

/// Decoded message header.
struct Header {
  Op op = Op::Ping;
  bool isReply = false;
  Status status = Status::Ok;
  u64 requestId = 0;
};

// --- Request bodies --------------------------------------------------------

struct PingReq {};
struct PutReq {
  std::string key;
  std::string value;
};
struct GetReq {
  std::string key;
};
struct RemoveReq {
  std::string key;
};
/// Optimistic read-modify-write: applies iff the key's stored version
/// still equals expectedVersion (0 = expect absent). present=false erases.
struct CasReq {
  std::string key;
  u64 expectedVersion = 0;
  bool present = true;
  std::string value;
};
struct MultiGetReq {
  std::vector<GetReq> entries;
};
struct MultiCasReq {
  std::vector<CasReq> entries;
};
/// Replica copy install: carries the primary's version so a holder's copy
/// is identifiable with the snapshot it mirrors.
struct ReplicaPutReq {
  std::string key;
  std::string value;
  u64 version = 0;
};
struct ReplicaRemoveReq {
  std::string key;
};
struct ReplicaGetReq {
  std::string key;
};
struct SizeReq {};
struct SyncReq {};
struct CompactReq {};

// --- Reply bodies ----------------------------------------------------------

struct PingRep {
  std::string nodeName;
};
struct PutRep {
  u64 version = 0;  ///< version assigned to the stored value
};
struct GetRep {
  bool present = false;
  u64 version = 0;
  std::string value;
};
struct RemoveRep {
  bool existed = false;
};
struct CasRep {
  bool applied = false;
  bool existedBefore = false;
  /// Current state after (applied) or instead of (conflict) the write;
  /// on conflict the value rides along so the caller can re-run its
  /// mutator without another GET round.
  u64 currentVersion = 0;
  bool currentPresent = false;
  std::string currentValue;
};
struct MultiGetRep {
  std::vector<GetRep> entries;
};
struct MultiCasRep {
  std::vector<CasRep> entries;
};
struct ReplicaPutRep {};
struct ReplicaRemoveRep {
  bool existed = false;
};
struct SizeRep {
  u64 primaryKeys = 0;
};
struct SyncRep {};
struct CompactRep {};
struct EmptyRep {};  ///< non-Ok replies carry no body

using RequestBody =
    std::variant<PingReq, PutReq, GetReq, RemoveReq, CasReq, MultiGetReq,
                 MultiCasReq, ReplicaPutReq, ReplicaRemoveReq, ReplicaGetReq,
                 SizeReq, SyncReq, CompactReq>;
using ReplyBody =
    std::variant<EmptyRep, PingRep, PutRep, GetRep, RemoveRep, CasRep,
                 MultiGetRep, MultiCasRep, ReplicaPutRep, ReplicaRemoveRep,
                 SizeRep, SyncRep, CompactRep>;

struct Request {
  Header header;
  RequestBody body;
};
struct Reply {
  Header header;
  ReplyBody body;
};

/// The opcode a request body travels under.
[[nodiscard]] Op opOf(const RequestBody& body);

// --- Encode ----------------------------------------------------------------

[[nodiscard]] std::string encodeRequest(u64 requestId, const RequestBody& body);
[[nodiscard]] std::string encodeReply(u64 requestId, Op op, Status status,
                                      const ReplyBody& body);

// --- Decode ----------------------------------------------------------------

template <typename T>
using DecodeResult = std::variant<T, DecodeError>;

/// Decodes a request datagram (server side).
[[nodiscard]] DecodeResult<Request> decodeRequest(std::string_view datagram);

/// Decodes a reply datagram (client side). The body variant matches the
/// header's opcode; non-Ok statuses decode to EmptyRep.
[[nodiscard]] DecodeResult<Reply> decodeReply(std::string_view datagram);

/// Peeks at the header only (dispatch without full body decode). Unlike
/// the full decoders, an UNKNOWN opcode passes through (`op` then holds
/// the raw value) so a server can answer a future client's opcode with
/// Status::UnknownOp instead of silence — check opKnown() before
/// treating `op` as a member of the enum.
[[nodiscard]] DecodeResult<Header> decodeHeader(std::string_view datagram);

}  // namespace lht::rpc::wire
