// lht_net_trace: drives a real LHT client fleet against a running
// lht_noded cluster and verifies the result against an oracle.
//
// The cluster is someone else's problem (run_cluster.sh / bench_net /
// bench_overlay fork the daemons); this binary is pure client: build a
// NetDht (static node list) or RoutedNetDht (--routed: one seed, ring
// learned via gossip pull + redirects) over UDP, preload one record per
// oracle cell through a loader index, run a mixed insert/find/range
// trace through a concurrent ClientFleet, then re-read every preloaded
// record through a fresh verifier client and compare payloads.
//
// --mode splits the phases so churn scripts can interleave topology
// changes between them:
//   run      preload + trace + verify (default, the PR 9 behavior)
//   preload  preload the oracle records, verify they read back, exit
//   verify   only re-read the oracle (reconstructed from --preload/--seed)
// A verify against a cluster mid-join/leave/repair sets --retry-for-ms:
// a missing or timed-out record is retried until the window closes, so
// transient unavailability is separated from actual data loss.
//
// Prints one JSON object on stdout. Exit codes: 0 ok, 3 cluster never
// came up, 4 trace ops failed, 5 oracle mismatch.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "dht/net_dht.h"
#include "dht/routed_net_dht.h"
#include "exec/client_fleet.h"
#include "exec/thread_pool.h"
#include "lht/lht_index.h"
#include "rpc/udp_transport.h"
#include "workload/trace.h"

namespace {

using namespace lht;

std::vector<rpc::NetAddr> parsePorts(const std::string& csv) {
  std::vector<rpc::NetAddr> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const int port = std::stoi(csv.substr(pos, comma - pos));
    out.push_back(rpc::NetAddr{rpc::kLoopbackHost,
                               static_cast<rpc::u16>(port)});
    pos = comma + 1;
  }
  return out;
}

double nowWallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("lht_net_trace",
                      "mixed-trace client fleet against an lht_noded cluster");
  flags.define("nodes", "", "comma-separated UDP ports of the cluster");
  flags.define("clients", "8", "concurrent fleet clients");
  flags.define("ops", "2000", "trace operations");
  flags.define("preload", "64", "oracle records preloaded before the trace");
  flags.define("replication", "2", "copies per key (primary + replicas)");
  flags.define("dist", "uniform", "key distribution: uniform|gaussian|zipf");
  flags.define("seed", "42", "workload seed");
  flags.define("ping-deadline-ms", "10000", "how long to wait for the cluster");
  flags.define("routed", "false",
               "use RoutedNetDht: bootstrap from the first --nodes port, "
               "learn the ring from gossip/redirects");
  flags.define("mode", "run", "run | preload | verify (see header comment)");
  flags.define("retry-for-ms", "0",
               "verify: retry a missing/timed-out oracle record this long");
  if (!flags.parse(argc, argv)) return 2;

  const auto nodes = parsePorts(flags.getString("nodes"));
  if (nodes.empty()) {
    std::fprintf(stderr, "lht_net_trace: --nodes is required\n");
    return 2;
  }
  const auto clients = static_cast<size_t>(flags.getInt("clients"));
  const auto ops = static_cast<size_t>(flags.getInt("ops"));
  const auto preload = static_cast<size_t>(flags.getInt("preload"));
  const common::u64 seed = static_cast<common::u64>(flags.getInt("seed"));
  const bool routed = flags.getBool("routed");
  const std::string mode = flags.getString("mode");
  const double retryForMs = static_cast<double>(flags.getInt("retry-for-ms"));
  if (mode != "run" && mode != "preload" && mode != "verify") {
    std::fprintf(stderr, "lht_net_trace: bad --mode=%s\n", mode.c_str());
    return 2;
  }

  auto makeTransport = [] {
    return std::make_unique<rpc::UdpTransport>(rpc::UdpTransport::Options{});
  };
  const auto pingDeadline =
      static_cast<common::u64>(flags.getInt("ping-deadline-ms"));

  std::unique_ptr<dht::NetDht> staticDht;
  std::unique_ptr<dht::RoutedNetDht> routedDht;
  dht::Dht* dhtPtr = nullptr;
  if (routed) {
    dht::RoutedNetDht::Options ro;
    ro.seed = nodes[0];
    ro.replication = static_cast<size_t>(flags.getInt("replication"));
    routedDht = std::make_unique<dht::RoutedNetDht>(ro, makeTransport);
    if (!routedDht->bootstrap(pingDeadline)) {
      std::fprintf(stderr,
                   "lht_net_trace: overlay seed %s never answered\n",
                   nodes[0].str().c_str());
      return 3;
    }
    dhtPtr = routedDht.get();
  } else {
    dht::NetDht::Options no;
    no.nodes = nodes;
    no.replication = static_cast<size_t>(flags.getInt("replication"));
    staticDht = std::make_unique<dht::NetDht>(no, makeTransport);
    if (!staticDht->pingAll(pingDeadline)) {
      std::fprintf(stderr, "lht_net_trace: cluster did not answer ping\n");
      return 3;
    }
    dhtPtr = staticDht.get();
  }
  dht::Dht& ndht = *dhtPtr;

  auto indexOptions = [&](common::u64 clientSeed, bool attach) {
    core::LhtIndex::Options io;
    io.useLeafCache = true;
    io.cacheDecodedBuckets = true;
    io.crashConsistentSplits = true;  // concurrent structural churn
    io.attachExisting = attach;
    io.clientSeed = clientSeed;
    return io;
  };

  // The oracle is a pure function of (preload, i): churn scripts rebuild
  // it in --mode=verify without any state carried between invocations.
  std::vector<index::Record> oracle;
  oracle.reserve(preload);
  for (size_t i = 0; i < preload; ++i) {
    index::Record r;
    r.key = (static_cast<double>(i) + 0.5) / static_cast<double>(preload);
    r.payload = "oracle-" + std::to_string(i);
    oracle.push_back(std::move(r));
  }

  // Preload doubles as the oracle (same pattern as the skew campaign):
  // the trace erases only keys it itself inserted, so these records must
  // all survive the run bit-for-bit.
  if (mode != "verify") {
    core::LhtIndex loader(ndht, indexOptions(seed * 131, false));
    for (const index::Record& r : oracle) loader.insert(r);
  }

  exec::FleetResult result;
  if (mode == "run") {
    const auto trace = workload::makeMixedTrace(
        workload::parseDistribution(flags.getString("dist")), ops,
        workload::TraceMix{}, seed * 7919);
    exec::FleetOptions fo;
    fo.clients = clients;
    fo.chunkSize = 16;
    fo.clientSeedBase = seed * 10'000;
    fo.index = indexOptions(/*per-client override*/ 1, true);
    exec::ClientFleet fleet(
        [&](size_t, net::SimClock&) {
          exec::ClientStack stack;
          stack.top = &ndht;  // straight onto the wire: no sim decorators
          return stack;
        },
        fo);
    exec::WorkStealingPool pool(4);
    result = fleet.run(trace, pool);
  }

  // Oracle pass through a fresh client (no cache warm-up from the run).
  // Under --retry-for-ms, misses and timeouts are retried: a cluster
  // mid-join/leave may be transiently unable to serve a key that is
  // nonetheless safe; only a record still missing when the window closes
  // counts as lost.
  size_t oracleMisses = 0;
  size_t verifyRetries = 0;
  {  // every mode ends with a verify pass
    core::LhtIndex verifier(ndht, indexOptions(seed * 4099, true));
    const double verifyDeadline = nowWallMs() + retryForMs;
    for (const index::Record& r : oracle) {
      bool ok = false;
      while (true) {
        try {
          auto found = verifier.find(r.key);
          ok = found.record.has_value() && found.record->payload == r.payload;
        } catch (const dht::DhtError&) {
          ok = false;  // timeout / redirect storm: retryable
        }
        if (ok || nowWallMs() >= verifyDeadline) break;
        verifyRetries += 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (!ok) oracleMisses += 1;
    }
  }

  const auto& ds = ndht.stats();
  const double meanHops =
      ds.lookups.load() == 0
          ? 0.0
          : static_cast<double>(ds.hops.load()) /
                static_cast<double>(ds.lookups.load());
  std::printf(
      "{\"mode\": \"%s\", \"routed\": %s, \"nodes\": %zu, \"clients\": %zu, "
      "\"ops\": %zu, \"ops_failed\": %zu, \"elapsed_wall_ms\": %.1f, "
      "\"oracle_records\": %zu, \"oracle_misses\": %zu, \"oracle_ok\": %s, "
      "\"verify_retries\": %zu, ",
      mode.c_str(), routed ? "true" : "false", nodes.size(), clients,
      result.opsTotal, result.opsFailed, result.elapsedWallMs, oracle.size(),
      oracleMisses, oracleMisses == 0 ? "true" : "false", verifyRetries);
  if (routed) {
    const auto rs = routedDht->routedStats();
    std::printf(
        "\"routed_stats\": {\"bootstraps\": %llu, \"refreshes\": %llu, "
        "\"redirects_followed\": %llu, \"stale_hints\": %llu, "
        "\"retries_after_timeout\": %llu, \"known_members\": %zu}, ",
        static_cast<unsigned long long>(rs.bootstraps),
        static_cast<unsigned long long>(rs.refreshes),
        static_cast<unsigned long long>(rs.redirectsFollowed),
        static_cast<unsigned long long>(rs.staleHints),
        static_cast<unsigned long long>(rs.retriesAfterTimeout),
        routedDht->knownMembers());
  } else {
    const auto ns = staticDht->netStats();
    std::printf(
        "\"net\": {\"datagrams_sent\": %llu, \"datagrams_received\": %llu, "
        "\"retransmits\": %llu, \"timeouts\": %llu, \"connections\": %llu}, ",
        static_cast<unsigned long long>(ns.datagramsSent),
        static_cast<unsigned long long>(ns.datagramsReceived),
        static_cast<unsigned long long>(ns.retransmits),
        static_cast<unsigned long long>(ns.timeouts),
        static_cast<unsigned long long>(ns.connections));
  }
  std::printf(
      "\"dht\": {\"lookups\": %llu, \"hops\": %llu, \"mean_hops\": %.3f, "
      "\"batch_rounds\": %llu}}\n",
      static_cast<unsigned long long>(ds.lookups.load()),
      static_cast<unsigned long long>(ds.hops.load()), meanHops,
      static_cast<unsigned long long>(ds.batchRounds.load()));
  if (result.opsFailed != 0) return 4;
  if (oracleMisses != 0) return 5;
  return 0;
}
