// lht_net_trace: drives a real LHT client fleet against a running
// lht_noded cluster and verifies the result against an oracle.
//
// The cluster is someone else's problem (run_cluster.sh / bench_net fork
// the daemons); this binary is pure client: build a NetDht over UDP,
// wait for every node to answer ping, preload one record per oracle
// cell through a loader index, run a mixed insert/find/range trace
// through a concurrent ClientFleet, then re-read every preloaded record
// through a fresh verifier client and compare payloads.
//
// Prints one JSON object on stdout. Exit codes: 0 ok, 3 cluster never
// came up, 4 trace ops failed, 5 oracle mismatch.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "dht/net_dht.h"
#include "exec/client_fleet.h"
#include "exec/thread_pool.h"
#include "lht/lht_index.h"
#include "rpc/udp_transport.h"
#include "workload/trace.h"

namespace {

using namespace lht;

std::vector<rpc::NetAddr> parsePorts(const std::string& csv) {
  std::vector<rpc::NetAddr> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const int port = std::stoi(csv.substr(pos, comma - pos));
    out.push_back(rpc::NetAddr{rpc::kLoopbackHost,
                               static_cast<rpc::u16>(port)});
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags("lht_net_trace",
                      "mixed-trace client fleet against an lht_noded cluster");
  flags.define("nodes", "", "comma-separated UDP ports of the cluster");
  flags.define("clients", "8", "concurrent fleet clients");
  flags.define("ops", "2000", "trace operations");
  flags.define("preload", "64", "oracle records preloaded before the trace");
  flags.define("replication", "2", "copies per key (primary + replicas)");
  flags.define("dist", "uniform", "key distribution: uniform|gaussian|zipf");
  flags.define("seed", "42", "workload seed");
  flags.define("ping-deadline-ms", "10000", "how long to wait for the cluster");
  if (!flags.parse(argc, argv)) return 2;

  const auto nodes = parsePorts(flags.getString("nodes"));
  if (nodes.empty()) {
    std::fprintf(stderr, "lht_net_trace: --nodes is required\n");
    return 2;
  }
  const auto clients = static_cast<size_t>(flags.getInt("clients"));
  const auto ops = static_cast<size_t>(flags.getInt("ops"));
  const auto preload = static_cast<size_t>(flags.getInt("preload"));
  const common::u64 seed = static_cast<common::u64>(flags.getInt("seed"));

  dht::NetDht::Options no;
  no.nodes = nodes;
  no.replication = static_cast<size_t>(flags.getInt("replication"));
  dht::NetDht ndht(no, [] {
    return std::make_unique<rpc::UdpTransport>(rpc::UdpTransport::Options{});
  });

  if (!ndht.pingAll(
          static_cast<common::u64>(flags.getInt("ping-deadline-ms")))) {
    std::fprintf(stderr, "lht_net_trace: cluster did not answer ping\n");
    return 3;
  }

  auto indexOptions = [&](common::u64 clientSeed, bool attach) {
    core::LhtIndex::Options io;
    io.useLeafCache = true;
    io.cacheDecodedBuckets = true;
    io.crashConsistentSplits = true;  // concurrent structural churn
    io.attachExisting = attach;
    io.clientSeed = clientSeed;
    return io;
  };

  // Preload doubles as the oracle (same pattern as the skew campaign):
  // trace erases only target keys the trace itself inserted, so these
  // records must all survive the run bit-for-bit.
  core::LhtIndex loader(ndht, indexOptions(seed * 131, false));
  std::vector<index::Record> oracle;
  oracle.reserve(preload);
  for (size_t i = 0; i < preload; ++i) {
    index::Record r;
    r.key = (static_cast<double>(i) + 0.5) / static_cast<double>(preload);
    r.payload = "oracle-" + std::to_string(i);
    loader.insert(r);
    oracle.push_back(std::move(r));
  }

  const auto trace = workload::makeMixedTrace(
      workload::parseDistribution(flags.getString("dist")), ops,
      workload::TraceMix{}, seed * 7919);

  exec::FleetOptions fo;
  fo.clients = clients;
  fo.chunkSize = 16;
  fo.clientSeedBase = seed * 10'000;
  fo.index = indexOptions(/*per-client override*/ 1, true);
  exec::ClientFleet fleet(
      [&](size_t, net::SimClock&) {
        exec::ClientStack stack;
        stack.top = &ndht;  // straight onto the wire: no sim decorators
        return stack;
      },
      fo);
  exec::WorkStealingPool pool(4);
  exec::FleetResult result = fleet.run(trace, pool);

  // Oracle pass through a fresh client (no cache warm-up from the run).
  core::LhtIndex verifier(ndht, indexOptions(seed * 4099, true));
  size_t oracleMisses = 0;
  for (const index::Record& r : oracle) {
    auto found = verifier.find(r.key);
    if (!found.record.has_value() || found.record->payload != r.payload) {
      oracleMisses += 1;
    }
  }

  const auto ns = ndht.netStats();
  std::printf(
      "{\"nodes\": %zu, \"clients\": %zu, \"ops\": %zu, \"ops_failed\": %zu, "
      "\"elapsed_wall_ms\": %.1f, \"oracle_records\": %zu, "
      "\"oracle_misses\": %zu, \"oracle_ok\": %s, "
      "\"net\": {\"datagrams_sent\": %llu, \"datagrams_received\": %llu, "
      "\"retransmits\": %llu, \"timeouts\": %llu, \"connections\": %llu}, "
      "\"dht\": {\"lookups\": %llu, \"batch_rounds\": %llu}}\n",
      nodes.size(), clients, result.opsTotal, result.opsFailed,
      result.elapsedWallMs, oracle.size(), oracleMisses,
      oracleMisses == 0 ? "true" : "false",
      static_cast<unsigned long long>(ns.datagramsSent),
      static_cast<unsigned long long>(ns.datagramsReceived),
      static_cast<unsigned long long>(ns.retransmits),
      static_cast<unsigned long long>(ns.timeouts),
      static_cast<unsigned long long>(ns.connections),
      static_cast<unsigned long long>(ndht.stats().lookups.load()),
      static_cast<unsigned long long>(ndht.stats().batchRounds.load()));
  if (result.opsFailed != 0) return 4;
  if (oracleMisses != 0) return 5;
  return 0;
}
