// Async request/reply layer over a datagram Transport.
//
// UDP gives us nothing: no delivery, no ordering, no dedup. This layer
// adds the client half of a classic at-most-once RPC (Birrell & Nelson):
// every request gets a fresh id, sits in a request table, and is
// retransmitted on a doubling backoff until a reply with that id arrives
// or the per-request deadline passes. Many requests can be in flight at
// once — NetDht leans on that to run a whole batched round (one datagram
// per node) as a single settle().
//
// Usage:
//   Token t1 = client.call(nodeA, GetReq{key1});
//   Token t2 = client.call(nodeB, GetReq{key2});
//   client.settle();                      // drives transport until done
//   Result r = client.take(t1);           // r.timedOut / r.status / r.body
//
// The server half (dedup cache keyed by (addr, requestId)) lives in
// NodeServer; together they make retransmitted non-idempotent ops safe.
#pragma once

#include <optional>
#include <unordered_map>

#include "rpc/transport.h"
#include "rpc/wire.h"

namespace lht::rpc {

// The RPC layer speaks the wire vocabulary natively.
using wire::Op;
using wire::ReplyBody;
using wire::RequestBody;
using wire::Status;

class RpcClient {
 public:
  struct Options {
    /// First retransmit fires this long after the initial send; doubles
    /// each time (capped) — classic exponential backoff.
    u64 initialRetransmitMs = 40;
    u64 maxRetransmitMs = 400;
    /// A request unanswered this long is resolved as timed out.
    u64 requestDeadlineMs = 2000;
  };

  struct Stats {
    common::RelaxedCounter requestsStarted;  ///< logical calls
    common::RelaxedCounter retransmits;      ///< extra datagrams beyond the first
    common::RelaxedCounter timeouts;
    /// Replies dropped unmatched: no pending request, wrong source
    /// address, or an op that is not the one the request was sent under.
    common::RelaxedCounter staleReplies;
    /// Requests too large for any datagram, failed locally (TooLarge)
    /// without ever touching the transport.
    common::RelaxedCounter oversized;
  };

  using Token = u64;

  struct Result {
    bool timedOut = false;
    Status status = Status::Ok;
    /// The op the request was sent under (set at call() time). A reply
    /// is only accepted if it echoes this op, so `body` always holds the
    /// variant alternative the op implies.
    Op op = Op::Ping;
    ReplyBody body;
    u32 sends = 0;  ///< datagrams spent on this request (1 = no retransmit)
    /// Piggybacked membership freshness, when the server attached one.
    std::optional<wire::GossipHint> hint;

    [[nodiscard]] bool ok() const { return !timedOut && status == Status::Ok; }
  };

  explicit RpcClient(Transport& transport) : RpcClient(transport, Options{}) {}
  RpcClient(Transport& transport, Options options);

  /// Starts a request: encodes, sends, registers in the table. The token
  /// stays valid until take()n. Does not block. `noForward` stamps
  /// wire::kNoForwardBit — set by overlay nodes when relaying a request
  /// one hop, so the receiver never forwards it again.
  Token call(const NetAddr& to, RequestBody body, bool noForward = false);

  /// Drives the transport (receive + retransmit + expire) until every
  /// pending request is resolved. Safe to call with none pending.
  void settle();

  /// Removes and returns a resolved request's outcome. checkInvariant
  /// fails on an unknown or still-pending token — settle() first.
  Result take(Token token);

  /// Convenience for the one-shot case.
  Result callOne(const NetAddr& to, RequestBody body);

  // --- Shared-transport driving ---------------------------------------------
  // An overlay node multiplexes one socket between its server role and its
  // outgoing calls, so it cannot let settle() own the transport's receive.
  // Instead its event loop routes inbound reply datagrams here and calls
  // pump() on its own cadence, polling resolved() per token.

  /// Feeds one inbound reply datagram to the request table. Garbage,
  /// duplicates, and unmatched replies are counted and dropped.
  void deliver(const Datagram& d) { handleDatagram(d); }

  /// Retransmits due requests and expires past-deadline ones. Returns the
  /// ms until the next timer fires (0 = nothing pending).
  u64 pump(u64 now);

  /// Whether take(token) would succeed. checkInvariant-fails on a token
  /// that was never issued or already taken.
  [[nodiscard]] bool resolved(Token token) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Transport& transport() { return transport_; }
  [[nodiscard]] size_t pendingCount() const { return pendingLive_; }

 private:
  struct Pending {
    NetAddr to;
    std::string wire;
    u64 deadlineAtMs = 0;
    u64 nextSendAtMs = 0;
    u64 backoffMs = 0;
    bool resolved = false;
    Result result;
  };

  void handleDatagram(const Datagram& d);

  Transport& transport_;
  Options opts_;
  Stats stats_;
  /// Randomized per incarnation (see constructor) so a restarted client
  /// cannot collide with its predecessor's ids in a server dedup cache.
  u64 nextId_ = 1;
  size_t pendingLive_ = 0;  ///< unresolved entries in requests_
  std::unordered_map<u64, Pending> requests_;
  std::vector<Datagram> rxBuf_;
};

}  // namespace lht::rpc
