#include "rpc/ring.h"

#include <algorithm>

#include "common/hash.h"

namespace lht::rpc {

using common::u64;

HashRing::HashRing(size_t nodeCount, size_t virtualNodes)
    : nodeCount_(nodeCount) {
  common::checkInvariant(nodeCount > 0, "HashRing: need at least one node");
  common::checkInvariant(virtualNodes > 0, "HashRing: need virtual nodes");
  points_.reserve(nodeCount * virtualNodes);
  for (size_t n = 0; n < nodeCount; ++n) {
    for (size_t v = 0; v < virtualNodes; ++v) {
      // Same derivation on every client — ring agreement needs nothing
      // but the node list.
      const u64 h = common::hash::xxhash64((u64(n) << 20) | u64(v),
                                           /*seed=*/0x1b7);
      points_.push_back(Point{h, n});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

size_t HashRing::pointAtOrAfter(u64 h) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, u64 target) { return p.hash < target; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return static_cast<size_t>(it - points_.begin());
}

size_t HashRing::ownerIndex(std::string_view key) const {
  return points_[pointAtOrAfter(common::hash::xxhash64(key))].node;
}

std::vector<size_t> HashRing::holders(std::string_view key,
                                      size_t replicas) const {
  const size_t want = std::min(1 + replicas, nodeCount_);
  std::vector<size_t> out;
  out.reserve(want);
  size_t i = pointAtOrAfter(common::hash::xxhash64(key));
  for (size_t seen = 0; seen < points_.size() && out.size() < want; ++seen) {
    const size_t node = points_[(i + seen) % points_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace lht::rpc
