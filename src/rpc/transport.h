// Datagram transport seam: the real network and its deterministic twin.
//
// Everything above this interface — the RPC client's request table, the
// node server, NetDht — is written against Transport, so the same code
// runs over real UDP sockets (UdpTransport, epoll event loop) and over the
// in-process SimHub (SimTransport, seeded loss/reorder injection, virtual
// time). That is the twin structure DESIGN.md §14 describes: ctest drives
// the full RPC stack deterministically without opening a socket, while
// lht_noded and the cluster bench run the identical bytes over localhost
// UDP.
//
// The model is unreliable datagrams: send() may silently lose the message
// (the receiver is gone, the queue is full, the simulator dropped it), and
// delivery order is not guaranteed. Reliability lives one layer up, in the
// RPC request table (retransmit + deadline).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/relaxed_counter.h"
#include "common/types.h"

namespace lht::rpc {

using common::u32;
using common::u64;
using u16 = std::uint16_t;

/// A peer address. Over UDP this is an IPv4 host (host byte order) and
/// port; the simulated hub uses host 0 and the endpoint's registered port.
struct NetAddr {
  u32 host = 0;
  u16 port = 0;

  friend bool operator==(const NetAddr&, const NetAddr&) = default;
  [[nodiscard]] std::string str() const;
};

/// 127.0.0.1 in host byte order (the deployment target is a localhost
/// multi-process cluster; remote hosts only need a different constant).
inline constexpr u32 kLoopbackHost = 0x7F000001;

/// One received datagram: payload plus the source address replies go to.
struct Datagram {
  NetAddr from;
  std::string payload;
};

/// Traffic counters every transport keeps (relaxed atomics: exact totals,
/// statistical cross-field snapshots — the DhtStats convention).
struct TransportStats {
  common::RelaxedCounter datagramsSent;
  common::RelaxedCounter datagramsReceived;
  common::RelaxedCounter bytesSent;
  common::RelaxedCounter bytesReceived;
  common::RelaxedCounter sendErrors;  ///< local send failures / drops
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one datagram. Returns false when the transport knows it was
  /// lost locally (unknown peer, oversized, socket error); true means
  /// handed to the network, NOT that it will arrive.
  virtual bool send(const NetAddr& to, std::string_view payload) = 0;

  /// Waits up to `timeoutMs` (0 = poll) for inbound datagrams and appends
  /// them to `out`. Returns the number appended. A simulated transport
  /// advances its virtual clock by the time "waited".
  virtual size_t receive(std::vector<Datagram>& out, u64 timeoutMs) = 0;

  /// Monotonic milliseconds on this transport's clock: CLOCK_MONOTONIC
  /// for UDP, the endpoint's virtual clock for the simulator. Deadlines
  /// and retransmit timers in the RPC layer are all measured on this.
  virtual u64 nowMs() = 0;

  /// The address peers reach this endpoint at (for UDP: the bound port,
  /// resolved after an ephemeral bind).
  [[nodiscard]] virtual NetAddr localAddr() const = 0;

  [[nodiscard]] const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

/// Largest payload the RPC layer will put in one datagram. Loopback UDP
/// carries up to ~65.5 KB; staying under 56 KB leaves header room and
/// keeps the simulated twin honest about what a real socket accepts.
inline constexpr size_t kMaxDatagramBytes = 56 * 1024;

}  // namespace lht::rpc
