#include "rpc/rpc_metrics.h"

#include "obs/metrics.h"

namespace lht::rpc {

void exportRpcClientMetrics(const RpcClient::Stats& stats,
                            obs::MetricsRegistry& registry) {
  registry.counter("rpc.client.requests_started").add(stats.requestsStarted);
  registry.counter("rpc.client.retransmits").add(stats.retransmits);
  registry.counter("rpc.client.timeouts").add(stats.timeouts);
  registry.counter("rpc.client.stale_replies").add(stats.staleReplies);
  registry.counter("rpc.client.oversized").add(stats.oversized);
}

void exportNodeServerMetrics(const NodeServer::Stats& stats,
                             obs::MetricsRegistry& registry) {
  registry.counter("rpc.server.requests_handled").add(stats.requestsHandled);
  registry.counter("rpc.server.dedup_hits").add(stats.dedupHits);
  registry.counter("rpc.server.bad_requests").add(stats.badRequests);
  registry.counter("rpc.server.oversized_replies").add(stats.oversizedReplies);
}

void exportTransportMetrics(const TransportStats& stats,
                            obs::MetricsRegistry& registry) {
  registry.counter("rpc.transport.datagrams_sent").add(stats.datagramsSent);
  registry.counter("rpc.transport.datagrams_received")
      .add(stats.datagramsReceived);
  registry.counter("rpc.transport.bytes_sent").add(stats.bytesSent);
  registry.counter("rpc.transport.bytes_received").add(stats.bytesReceived);
  registry.counter("rpc.transport.send_errors").add(stats.sendErrors);
}

}  // namespace lht::rpc
