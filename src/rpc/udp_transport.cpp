#include "rpc/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

namespace lht::rpc {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in toSockaddr(const NetAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.host);
  sa.sin_port = htons(a.port);
  return sa;
}

NetAddr fromSockaddr(const sockaddr_in& sa) {
  NetAddr a;
  a.host = ntohl(sa.sin_addr.s_addr);
  a.port = ntohs(sa.sin_port);
  return a;
}

}  // namespace

std::string NetAddr::str() const {
  char buf[32];
  const in_addr addr{htonl(host)};
  if (inet_ntop(AF_INET, &addr, buf, sizeof(buf)) == nullptr) buf[0] = '\0';
  return std::string(buf) + ":" + std::to_string(port);
}

UdpTransport::UdpTransport(Options options) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throwErrno("UdpTransport: socket");
  if (options.rcvbufBytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options.rcvbufBytes,
                 sizeof(options.rcvbufBytes));
  }
  sockaddr_in bindAddr = toSockaddr(NetAddr{options.bindHost, options.bindPort});
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&bindAddr), sizeof(bindAddr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throwErrno("UdpTransport: bind");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throwErrno("UdpTransport: getsockname");
  }
  local_ = fromSockaddr(actual);
  loop_.add(fd_, [] {});  // readiness only; receive() drains explicitly
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    loop_.remove(fd_);
    ::close(fd_);
  }
}

bool UdpTransport::send(const NetAddr& to, std::string_view payload) {
  if (payload.size() > kMaxDatagramBytes) {
    stats_.sendErrors += 1;
    return false;
  }
  sockaddr_in sa = toSockaddr(to);
  const ssize_t n =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n != static_cast<ssize_t>(payload.size())) {
    // ECONNREFUSED / ENOBUFS / EAGAIN: the datagram is gone either way;
    // the RPC layer's retransmit timer owns recovery.
    stats_.sendErrors += 1;
    return false;
  }
  stats_.datagramsSent += 1;
  stats_.bytesSent += payload.size();
  return true;
}

size_t UdpTransport::drain(std::vector<Datagram>& out) {
  size_t appended = 0;
  char buf[65536];
  for (;;) {
    sockaddr_in from{};
    socklen_t fromLen = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&from), &fromLen);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNREFUSED) {
        break;  // drained (ECONNREFUSED: a stale ICMP error, not data)
      }
      throwErrno("UdpTransport: recvfrom");
    }
    out.push_back(Datagram{fromSockaddr(from),
                           std::string(buf, static_cast<size_t>(n))});
    stats_.datagramsReceived += 1;
    stats_.bytesReceived += static_cast<u64>(n);
    appended += 1;
  }
  return appended;
}

size_t UdpTransport::receive(std::vector<Datagram>& out, u64 timeoutMs) {
  size_t appended = drain(out);
  if (appended > 0 || timeoutMs == 0) return appended;
  constexpr u64 kMaxWait = 1u << 30;
  loop_.runOnce(static_cast<int>(timeoutMs > kMaxWait ? kMaxWait : timeoutMs));
  return appended + drain(out);
}

u64 UdpTransport::nowMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<u64>(ts.tv_sec) * 1000u +
         static_cast<u64>(ts.tv_nsec) / 1'000'000u;
}

}  // namespace lht::rpc
