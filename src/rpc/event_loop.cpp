#include "rpc/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace lht::rpc {

namespace {
[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}
}  // namespace

EventLoop::EventLoop() {
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("EventLoop: epoll_create1");
}

EventLoop::~EventLoop() {
  if (epollFd_ >= 0) ::close(epollFd_);
}

void EventLoop::add(int fd, Callback onReadable) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throwErrno("EventLoop: epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::move(onReadable);
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EventLoop::runOnce(int timeoutMs) {
  constexpr int kMaxEvents = 16;
  epoll_event events[kMaxEvents];
  const int n = ::epoll_wait(epollFd_, events, kMaxEvents, timeoutMs);
  if (n < 0) {
    if (errno == EINTR) return 0;  // signal: let the caller re-check state
    throwErrno("EventLoop: epoll_wait");
  }
  for (int i = 0; i < n; ++i) {
    auto it = callbacks_.find(events[i].data.fd);
    if (it != callbacks_.end()) it->second();
  }
  return n;
}

}  // namespace lht::rpc
