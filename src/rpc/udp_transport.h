// Real-socket transport: one non-blocking UDP socket on an epoll loop.
//
// send() is a sendto(); receive() parks in epoll_wait up to the caller's
// timeout, then drains the socket without blocking. One UdpTransport is
// one endpoint: a daemon binds a fixed port, a client binds an ephemeral
// one (bindPort 0) and learns it from localAddr(). All RPC reliability
// (retransmit, deadlines, dedup) lives above, in rpc_client/node_server —
// this layer is datagrams in, datagrams out.
#pragma once

#include <memory>

#include "rpc/event_loop.h"
#include "rpc/transport.h"

namespace lht::rpc {

class UdpTransport final : public Transport {
 public:
  struct Options {
    u16 bindPort = 0;          ///< 0 = ephemeral
    u32 bindHost = kLoopbackHost;
    /// Kernel buffer request (SO_RCVBUF); bursts of batched replies from
    /// 8+ nodes can exceed the default on some systems.
    int rcvbufBytes = 1 << 20;
  };

  /// Binds the socket; throws std::system_error on failure (port in use).
  explicit UdpTransport(Options options);
  ~UdpTransport() override;

  bool send(const NetAddr& to, std::string_view payload) override;
  size_t receive(std::vector<Datagram>& out, u64 timeoutMs) override;
  u64 nowMs() override;
  [[nodiscard]] NetAddr localAddr() const override { return local_; }

  [[nodiscard]] int fd() const { return fd_; }
  /// The epoll loop the socket is registered on (the daemon shares it).
  [[nodiscard]] EventLoop& loop() { return loop_; }

  /// Drains every datagram currently readable (non-blocking) into `out`.
  /// Exposed so a serve loop driving its own epoll can pump the socket.
  size_t drain(std::vector<Datagram>& out);

 private:
  int fd_ = -1;
  NetAddr local_;
  EventLoop loop_;
};

}  // namespace lht::rpc
