// Exporters wiring the RPC layer's raw counters into a MetricsRegistry
// under the dotted naming scheme (DESIGN.md §9): rpc.client.* for
// RpcClient, rpc.server.* for NodeServer, rpc.transport.* for the
// datagram layer. The RPC structs are plain RelaxedCounters (hot-path
// cheap, no registry dependency); these helpers snapshot them into a
// registry at scope end, so bench/test JSON output carries the wire-level
// story (retransmits, dedup absorption, oversized downgrades) next to
// the index metrics.
//
// Each call ADDS the current totals to the registry's series — export a
// given stats object once per registry, at the end of the measurement.
#pragma once

#include "rpc/node_server.h"
#include "rpc/rpc_client.h"
#include "rpc/transport.h"

namespace lht::obs {
class MetricsRegistry;
}

namespace lht::rpc {

/// rpc.client.requests_started / retransmits / timeouts / stale_replies /
/// oversized.
void exportRpcClientMetrics(const RpcClient::Stats& stats,
                            obs::MetricsRegistry& registry);

/// rpc.server.requests_handled / dedup_hits / bad_requests /
/// oversized_replies.
void exportNodeServerMetrics(const NodeServer::Stats& stats,
                             obs::MetricsRegistry& registry);

/// rpc.transport.datagrams_sent / datagrams_received / bytes_sent /
/// bytes_received / send_errors.
void exportTransportMetrics(const TransportStats& stats,
                            obs::MetricsRegistry& registry);

}  // namespace lht::rpc
