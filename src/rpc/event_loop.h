// Thin epoll wrapper: level-triggered readiness dispatch for the UDP
// transport and the lht_noded serve loop.
//
// Deliberately minimal — register fds with a readable-callback, then pump
// runOnce() with a timeout. Signals interrupt epoll_wait (runOnce returns
// 0 on EINTR), which is how the daemon notices SIGTERM between batches of
// datagrams without a self-pipe.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/types.h"

namespace lht::rpc {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Throws std::system_error when epoll_create1 fails.
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (level-triggered, EPOLLIN); `onReadable` runs from
  /// runOnce() whenever the fd has data. Throws std::system_error on
  /// epoll_ctl failure.
  void add(int fd, Callback onReadable);
  void remove(int fd);

  /// Waits up to `timeoutMs` (-1 = forever, 0 = poll) and dispatches the
  /// ready callbacks. Returns the number of ready fds handled; 0 on
  /// timeout or signal interruption. Throws std::system_error on a real
  /// epoll_wait failure.
  int runOnce(int timeoutMs);

  [[nodiscard]] int fd() const { return epollFd_; }

 private:
  int epollFd_ = -1;
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace lht::rpc
