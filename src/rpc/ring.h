// Client-side consistent-hash ring over a fixed node list.
//
// NetDht routes every key in ONE hop: hash the key, binary-search the
// ring, talk straight to the owner. This is the client-routed single-hop
// design (vs Chord's O(log n) overlay routing) — viable here because the
// cluster membership is a static launch-time list, so every client can
// hold the whole ring. Virtual nodes (default 32 points per physical
// node) smooth the key distribution, same trick as ChordDht's ring.
//
// holders(key) returns the owner followed by its distinct successors —
// the replica set, mirroring ChordDht::successorsOf so getReplica and
// failover semantics carry over to the network unchanged.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace lht::rpc {

class HashRing {
 public:
  /// `nodeCount` physical nodes (identified by index 0..n-1, which NetDht
  /// maps to addresses). `virtualNodes` ring points per physical node.
  HashRing(size_t nodeCount, size_t virtualNodes = 32);

  /// Physical node owning `key` (first ring point at/after hash(key)).
  [[nodiscard]] size_t ownerIndex(std::string_view key) const;

  /// Owner + up to `replicas` DISTINCT successor nodes, in ring order.
  /// Size is min(1 + replicas, nodeCount).
  [[nodiscard]] std::vector<size_t> holders(std::string_view key,
                                            size_t replicas) const;

  [[nodiscard]] size_t nodeCount() const { return nodeCount_; }

 private:
  struct Point {
    common::u64 hash;
    size_t node;
  };
  [[nodiscard]] size_t pointAtOrAfter(common::u64 h) const;

  size_t nodeCount_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace lht::rpc
