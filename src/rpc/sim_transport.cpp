#include "rpc/sim_transport.h"

#include "common/types.h"

namespace lht::rpc {

SimHub::SimHub(Options options) : opts_(options), rng_(options.seed) {}

void SimHub::dropNext(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  forcedDrops_ += n;
}

void SimHub::setOnline(u16 port, bool online) {
  std::lock_guard<std::mutex> lock(mutex_);
  offline_[port] = !online;
}

void SimHub::registerHandler(u16 port, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  common::checkInvariant(queues_.find(port) == queues_.end(),
                         "SimHub: port already has a queue endpoint");
  handlers_[port] = std::move(handler);
}

void SimHub::unregisterHandler(u16 port) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_.erase(port);
}

std::unique_ptr<SimTransport> SimHub::makeEndpoint(u16 port) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (port == 0) port = nextAutoPort_++;
  common::checkInvariant(queues_.find(port) == queues_.end() &&
                             handlers_.find(port) == handlers_.end(),
                         "SimHub: port already registered");
  auto queue = std::make_shared<Queue>();
  queues_[port] = queue;
  return std::unique_ptr<SimTransport>(
      new SimTransport(*this, port, std::move(queue)));
}

bool SimHub::shouldDrop() {
  // Caller holds mutex_.
  if (forcedDrops_ > 0) {
    forcedDrops_ -= 1;
    return true;
  }
  return opts_.dropProbability > 0.0 &&
         rng_.nextDouble() < opts_.dropProbability;
}

bool SimHub::route(const NetAddr& from, u16 to, std::string_view payload) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto off = offline_.find(to);
    if ((off != offline_.end() && off->second) || shouldDrop()) {
      dropped_ += 1;
      return false;
    }
    const bool duplicate = opts_.duplicateProbability > 0.0 &&
                           rng_.nextDouble() < opts_.duplicateProbability;
    const bool reorder = opts_.reorderProbability > 0.0 &&
                         rng_.nextDouble() < opts_.reorderProbability;
    auto qit = queues_.find(to);
    if (qit != queues_.end()) {
      Datagram d{from, std::string(payload)};
      for (int copy = 0; copy < (duplicate ? 2 : 1); ++copy) {
        if (reorder) {
          qit->second->inbound.push_front(d);
        } else {
          qit->second->inbound.push_back(d);
        }
      }
      routed_ += 1;
      return true;
    }
    auto hit = handlers_.find(to);
    if (hit == handlers_.end()) {
      dropped_ += 1;
      return false;
    }
    handler = hit->second;  // invoke outside the hub lock (it will send)
  }
  Datagram d{from, std::string(payload)};
  const u16 handlerPort = to;
  const u16 replyPort = from.port;
  auto sendReply = [this, handlerPort, replyPort](std::string reply) {
    route(NetAddr{0, handlerPort}, replyPort, reply);
  };
  handler(d, sendReply);
  routed_ += 1;
  return true;
}

void SimHub::detach(u16 port) {
  std::lock_guard<std::mutex> lock(mutex_);
  queues_.erase(port);
  offline_.erase(port);
}

SimTransport::SimTransport(SimHub& hub, u16 port,
                           std::shared_ptr<SimHub::Queue> queue)
    : hub_(hub), port_(port), queue_(std::move(queue)) {}

SimTransport::~SimTransport() { hub_.detach(port_); }

bool SimTransport::send(const NetAddr& to, std::string_view payload) {
  if (payload.size() > kMaxDatagramBytes) {
    stats_.sendErrors += 1;
    return false;
  }
  stats_.datagramsSent += 1;
  stats_.bytesSent += payload.size();
  // Drops are indistinguishable from network loss on purpose: the real
  // socket reports success there too. Counted in the hub, not surfaced.
  hub_.route(localAddr(), to.port, payload);
  return true;
}

size_t SimTransport::receive(std::vector<Datagram>& out, u64 timeoutMs) {
  size_t appended = 0;
  {
    std::lock_guard<std::mutex> lock(hub_.mutex_);
    while (!queue_->inbound.empty()) {
      out.push_back(std::move(queue_->inbound.front()));
      queue_->inbound.pop_front();
      stats_.datagramsReceived += 1;
      stats_.bytesReceived += out.back().payload.size();
      appended += 1;
    }
  }
  if (appended == 0) {
    // Nothing buffered and (in this synchronous model) nothing in flight:
    // the wait would have run its full course. Charge it to virtual time.
    now_ += timeoutMs;
  }
  return appended;
}

}  // namespace lht::rpc
