// Deterministic in-process twin of the UDP transport (DESIGN.md §14).
//
// A SimHub is the "ether": endpoints register under a port, sends route
// through the hub, and the hub injects faults — seeded probabilistic
// drops, forced drops of the next N datagrams, reordering, dead endpoints
// — so the RPC layer's retransmit/deadline/dedup machinery is exercised
// byte-for-byte identically to the real network, but reproducibly and in
// ctest.
//
// Two endpoint flavors:
//  * queue endpoints (SimTransport): inbound datagrams buffer until
//    receive() is called — this is what RPC clients use.
//  * handler endpoints (registerHandler): delivery invokes the handler
//    inline on the SENDER's thread, and anything the handler sends routes
//    back through the hub before the sender's next receive(). This is how
//    NodeServers run "in" the hub with no threads of their own, keeping
//    tests single-threaded and deterministic. (Handlers must do their own
//    locking when a multi-threaded fleet drives the hub — NodeServer
//    does.)
//
// Time: each SimTransport keeps a private virtual clock. receive() with an
// empty queue advances it by the full timeout (simulated waiting), which
// is exactly what makes retransmit backoff and request deadlines testable
// without wall-clock sleeps.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/random.h"
#include "rpc/transport.h"

namespace lht::rpc {

class SimTransport;

class SimHub {
 public:
  struct Options {
    double dropProbability = 0.0;      ///< each datagram, independently
    double duplicateProbability = 0.0; ///< delivered twice
    /// Probability a delivered datagram is pushed to the FRONT of the
    /// destination queue (reordering past already-queued traffic).
    double reorderProbability = 0.0;
    common::u64 seed = 1;
  };

  SimHub() : SimHub(Options{}) {}
  explicit SimHub(Options options);

  /// Force-drops the next `n` datagrams entering the hub (deterministic
  /// loss for tests: lose exactly the first reply, etc.).
  void dropNext(size_t n);

  /// Marks an endpoint dead/alive: all traffic to a dead port vanishes
  /// (the node-crash model; senders see silence, then time out).
  void setOnline(u16 port, bool online);

  /// Registers an inline handler endpoint (a server living "in" the hub).
  /// The handler receives each datagram and a reply function that routes
  /// back through the hub (subject to the same fault injection).
  using Handler =
      std::function<void(const Datagram&, const std::function<void(std::string)>&)>;
  void registerHandler(u16 port, Handler handler);
  void unregisterHandler(u16 port);

  /// Creates a queue endpoint. port 0 auto-assigns from a private range.
  std::unique_ptr<SimTransport> makeEndpoint(u16 port = 0);

  [[nodiscard]] common::u64 datagramsRouted() const { return routed_; }
  [[nodiscard]] common::u64 datagramsDropped() const { return dropped_; }

 private:
  friend class SimTransport;
  struct Queue {
    std::deque<Datagram> inbound;
  };

  /// Routes one datagram from `from` to `to`. Returns false when dropped.
  bool route(const NetAddr& from, u16 to, std::string_view payload);
  void detach(u16 port);
  bool shouldDrop();

  Options opts_;
  std::mutex mutex_;
  common::Pcg32 rng_;
  size_t forcedDrops_ = 0;
  u16 nextAutoPort_ = 40000;
  std::unordered_map<u16, std::shared_ptr<Queue>> queues_;
  std::unordered_map<u16, Handler> handlers_;
  std::unordered_map<u16, bool> offline_;
  common::RelaxedCounter routed_;
  common::RelaxedCounter dropped_;
};

class SimTransport final : public Transport {
 public:
  ~SimTransport() override;

  bool send(const NetAddr& to, std::string_view payload) override;
  size_t receive(std::vector<Datagram>& out, u64 timeoutMs) override;
  /// Virtual time, private to this endpoint; advanced by empty waits.
  u64 nowMs() override { return now_; }
  [[nodiscard]] NetAddr localAddr() const override {
    return NetAddr{0, port_};
  }

 private:
  friend class SimHub;
  SimTransport(SimHub& hub, u16 port, std::shared_ptr<SimHub::Queue> queue);

  SimHub& hub_;
  u16 port_;
  std::shared_ptr<SimHub::Queue> queue_;
  u64 now_ = 0;
};

}  // namespace lht::rpc
