#include "rpc/node_server.h"

#include "common/types.h"

namespace lht::rpc {

using namespace wire;  // NOLINT — implementation file for the wire protocol

NodeServer::NodeServer(Options options) : opts_(std::move(options)) {}

size_t NodeServer::primaryKeyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return primary_.size();
}

size_t NodeServer::replicaKeyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replica_.size();
}

std::optional<std::string> NodeServer::primaryValue(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = primary_.find(key);
  if (it == primary_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::string> NodeServer::replicaValue(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = replica_.find(key);
  if (it == replica_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::pair<u64, std::string>> NodeServer::primaryRecord(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = primary_.find(key);
  if (it == primary_.end()) return std::nullopt;
  return std::make_pair(it->second.version, it->second.value);
}

std::optional<std::pair<u64, std::string>> NodeServer::replicaRecord(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = replica_.find(key);
  if (it == replica_.end()) return std::nullopt;
  return std::make_pair(it->second.version, it->second.value);
}

std::vector<HandoffEntry> NodeServer::collectPrimary(
    const std::function<bool(const std::string&)>& pred) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HandoffEntry> out;
  for (const auto& [key, stored] : primary_) {
    if (!pred(key)) continue;
    out.push_back(HandoffEntry{key, stored.version, stored.value});
  }
  return out;
}

bool NodeServer::installPrimary(const std::string& key, u64 version,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = primary_.find(key);
  if (it != primary_.end() && it->second.version >= version) return false;
  Stored& s = primary_[key];
  s.version = version;
  s.value = value;
  return true;
}

size_t NodeServer::demotePrimary(
    const std::function<bool(const std::string&)>& pred) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t moved = 0;
  for (auto it = primary_.begin(); it != primary_.end();) {
    if (!pred(it->first)) {
      ++it;
      continue;
    }
    auto rit = replica_.find(it->first);
    if (rit == replica_.end() || rit->second.version < it->second.version) {
      replica_[it->first] = std::move(it->second);
    }
    it = primary_.erase(it);
    moved += 1;
  }
  return moved;
}

size_t NodeServer::promoteReplica(
    const std::function<bool(const std::string&)>& pred) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t moved = 0;
  for (auto it = replica_.begin(); it != replica_.end();) {
    if (!pred(it->first)) {
      ++it;
      continue;
    }
    auto pit = primary_.find(it->first);
    if (pit == primary_.end() || pit->second.version < it->second.version) {
      primary_[it->first] = std::move(it->second);
    }
    it = replica_.erase(it);
    moved += 1;
  }
  return moved;
}

GetRep NodeServer::doGet(const std::string& key) const {
  // Caller holds mutex_.
  GetRep rep;
  auto it = primary_.find(key);
  if (it != primary_.end()) {
    rep.present = true;
    rep.version = it->second.version;
    rep.value = it->second.value;
  }
  return rep;
}

CasRep NodeServer::doCas(const CasReq& entry) {
  // Caller holds mutex_.
  CasRep rep;
  auto it = primary_.find(entry.key);
  const u64 storedVersion = (it == primary_.end()) ? 0 : it->second.version;
  rep.existedBefore = it != primary_.end();
  if (storedVersion != entry.expectedVersion) {
    // Conflict: ship back current state so the client can re-run its
    // mutator without another GET round.
    rep.applied = false;
    rep.currentVersion = storedVersion;
    if (it != primary_.end()) {
      rep.currentPresent = true;
      rep.currentValue = it->second.value;
    }
    return rep;
  }
  rep.applied = true;
  if (entry.present) {
    Stored& s = primary_[entry.key];
    s.version = storedVersion + 1;
    s.value = entry.value;
    rep.currentVersion = s.version;
    rep.currentPresent = true;
  } else {
    if (it != primary_.end()) primary_.erase(it);
    rep.currentVersion = storedVersion + 1;  // erases advance versions too
    rep.currentPresent = false;
  }
  return rep;
}

ReplyBody NodeServer::dispatch(const RequestBody& req) {
  // Caller holds mutex_.
  return std::visit(
      [this](const auto& body) -> ReplyBody {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, PingReq>) {
          return PingRep{opts_.name};
        } else if constexpr (std::is_same_v<T, PutReq>) {
          Stored& s = primary_[body.key];
          s.version += 1;
          s.value = body.value;
          return PutRep{s.version};
        } else if constexpr (std::is_same_v<T, GetReq>) {
          return doGet(body.key);
        } else if constexpr (std::is_same_v<T, RemoveReq>) {
          const bool existed = primary_.erase(body.key) > 0;
          return RemoveRep{existed};
        } else if constexpr (std::is_same_v<T, CasReq>) {
          return doCas(body);
        } else if constexpr (std::is_same_v<T, MultiGetReq>) {
          MultiGetRep rep;
          rep.entries.reserve(body.entries.size());
          for (const GetReq& g : body.entries) rep.entries.push_back(doGet(g.key));
          return rep;
        } else if constexpr (std::is_same_v<T, MultiCasReq>) {
          MultiCasRep rep;
          rep.entries.reserve(body.entries.size());
          for (const CasReq& c : body.entries) rep.entries.push_back(doCas(c));
          return rep;
        } else if constexpr (std::is_same_v<T, ReplicaPutReq>) {
          Stored& s = replica_[body.key];
          s.version = body.version;
          s.value = body.value;
          return ReplicaPutRep{};
        } else if constexpr (std::is_same_v<T, ReplicaRemoveReq>) {
          const bool existed = replica_.erase(body.key) > 0;
          return ReplicaRemoveRep{existed};
        } else if constexpr (std::is_same_v<T, ReplicaGetReq>) {
          GetRep rep;
          auto it = replica_.find(body.key);
          if (it != replica_.end()) {
            rep.present = true;
            rep.version = it->second.version;
            rep.value = it->second.value;
          }
          return rep;
        } else if constexpr (std::is_same_v<T, SizeReq>) {
          return SizeRep{primary_.size()};
        } else if constexpr (std::is_same_v<T, SyncReq>) {
          return SyncRep{};  // store is always in-memory-durable here
        } else if constexpr (std::is_same_v<T, CompactReq>) {
          return CompactRep{};
        } else if constexpr (std::is_same_v<T, HandoffReq>) {
          // Bulk key install (overlay join streaming / reconcile).
          // Max-version: a retransmitted batch is idempotent, and a client
          // write that raced ahead of the stream is never rolled back.
          HandoffRep rep;
          for (const HandoffEntry& h : body.entries) {
            auto it = primary_.find(h.key);
            if (it != primary_.end() && it->second.version >= h.version) {
              continue;
            }
            Stored& s = primary_[h.key];
            s.version = h.version;
            s.value = h.value;
            rep.installed += 1;
          }
          return rep;
        } else if constexpr (std::is_same_v<T, GossipSyncReq>) {
          // A plain node has no membership table; the empty reply tells an
          // overlay-aware caller this endpoint is not running the overlay.
          return GossipSyncRep{};
        } else if constexpr (std::is_same_v<T, JoinReq>) {
          return JoinRep{};  // accepted=false: plain nodes refuse joins
        } else {
          static_assert(std::is_same_v<T, LeaveReq>);
          return LeaveRep{};  // known=false
        }
      },
      req);
}

std::string NodeServer::handle(const NetAddr& from, std::string_view payload) {
  auto decoded = decodeRequest(payload);
  if (std::holds_alternative<DecodeError>(decoded)) {
    stats_.badRequests += 1;
    // Reply only when the header (magic, version, id) parsed cleanly:
    // then a future opcode earns an UnknownOp (echoing the raw opcode —
    // decodeHeader is lenient there) and a broken body a BadRequest, so
    // the client fails fast instead of retransmitting a poison request
    // until deadline. Anything less trustworthy — noise, foreign
    // traffic, truncated headers — is dropped silently to avoid
    // amplifying junk.
    auto h = decodeHeader(payload);
    if (std::holds_alternative<DecodeError>(h)) return {};
    const Header& hd = std::get<Header>(h);
    if (hd.isReply) return {};
    if (!opKnown(static_cast<u8>(hd.op))) {
      return encodeReply(hd.requestId, hd.op, Status::UnknownOp, EmptyRep{});
    }
    return encodeReply(hd.requestId, hd.op, Status::BadRequest, EmptyRep{});
  }

  const Request& req = std::get<Request>(decoded);
  const DedupKey dkey{from.host, from.port, req.header.requestId};
  std::lock_guard<std::mutex> lock(mutex_);
  auto cached = dedup_.find(dkey);
  if (cached != dedup_.end()) {
    stats_.dedupHits += 1;
    return cached->second;
  }
  const ReplyBody rep = dispatch(req.body);
  std::string encoded =
      encodeReply(req.header.requestId, req.header.op, Status::Ok, rep);
  if (encoded.size() > kMaxDatagramBytes) {
    encoded =
        encodeReply(req.header.requestId, req.header.op, Status::TooLarge,
                    EmptyRep{});
    stats_.oversizedReplies += 1;
  }
  dedup_.emplace(dkey, encoded);
  dedupOrder_.push_back(dkey);
  while (dedupOrder_.size() > opts_.dedupCapacity) {
    dedup_.erase(dedupOrder_.front());
    dedupOrder_.pop_front();
  }
  stats_.requestsHandled += 1;
  return encoded;
}

void NodeServer::serve(Transport& transport, const std::atomic<bool>& stop) {
  std::vector<Datagram> batch;
  while (!stop.load(std::memory_order_relaxed)) {
    batch.clear();
    transport.receive(batch, 200);  // short timeout: re-check stop flag
    for (const Datagram& d : batch) {
      std::string reply = handle(d.from, d.payload);
      if (!reply.empty()) transport.send(d.from, reply);
    }
  }
}

}  // namespace lht::rpc
