#include "rpc/node_server.h"

#include "common/types.h"

namespace lht::rpc {

using namespace wire;  // NOLINT — implementation file for the wire protocol

NodeServer::NodeServer(Options options) : opts_(std::move(options)) {}

size_t NodeServer::primaryKeyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return primary_.size();
}

size_t NodeServer::replicaKeyCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replica_.size();
}

std::optional<std::string> NodeServer::primaryValue(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = primary_.find(key);
  if (it == primary_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::string> NodeServer::replicaValue(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = replica_.find(key);
  if (it == replica_.end()) return std::nullopt;
  return it->second.value;
}

GetRep NodeServer::doGet(const std::string& key) const {
  // Caller holds mutex_.
  GetRep rep;
  auto it = primary_.find(key);
  if (it != primary_.end()) {
    rep.present = true;
    rep.version = it->second.version;
    rep.value = it->second.value;
  }
  return rep;
}

CasRep NodeServer::doCas(const CasReq& entry) {
  // Caller holds mutex_.
  CasRep rep;
  auto it = primary_.find(entry.key);
  const u64 storedVersion = (it == primary_.end()) ? 0 : it->second.version;
  rep.existedBefore = it != primary_.end();
  if (storedVersion != entry.expectedVersion) {
    // Conflict: ship back current state so the client can re-run its
    // mutator without another GET round.
    rep.applied = false;
    rep.currentVersion = storedVersion;
    if (it != primary_.end()) {
      rep.currentPresent = true;
      rep.currentValue = it->second.value;
    }
    return rep;
  }
  rep.applied = true;
  if (entry.present) {
    Stored& s = primary_[entry.key];
    s.version = storedVersion + 1;
    s.value = entry.value;
    rep.currentVersion = s.version;
    rep.currentPresent = true;
  } else {
    if (it != primary_.end()) primary_.erase(it);
    rep.currentVersion = storedVersion + 1;  // erases advance versions too
    rep.currentPresent = false;
  }
  return rep;
}

ReplyBody NodeServer::dispatch(const RequestBody& req) {
  // Caller holds mutex_.
  return std::visit(
      [this](const auto& body) -> ReplyBody {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, PingReq>) {
          return PingRep{opts_.name};
        } else if constexpr (std::is_same_v<T, PutReq>) {
          Stored& s = primary_[body.key];
          s.version += 1;
          s.value = body.value;
          return PutRep{s.version};
        } else if constexpr (std::is_same_v<T, GetReq>) {
          return doGet(body.key);
        } else if constexpr (std::is_same_v<T, RemoveReq>) {
          const bool existed = primary_.erase(body.key) > 0;
          return RemoveRep{existed};
        } else if constexpr (std::is_same_v<T, CasReq>) {
          return doCas(body);
        } else if constexpr (std::is_same_v<T, MultiGetReq>) {
          MultiGetRep rep;
          rep.entries.reserve(body.entries.size());
          for (const GetReq& g : body.entries) rep.entries.push_back(doGet(g.key));
          return rep;
        } else if constexpr (std::is_same_v<T, MultiCasReq>) {
          MultiCasRep rep;
          rep.entries.reserve(body.entries.size());
          for (const CasReq& c : body.entries) rep.entries.push_back(doCas(c));
          return rep;
        } else if constexpr (std::is_same_v<T, ReplicaPutReq>) {
          Stored& s = replica_[body.key];
          s.version = body.version;
          s.value = body.value;
          return ReplicaPutRep{};
        } else if constexpr (std::is_same_v<T, ReplicaRemoveReq>) {
          const bool existed = replica_.erase(body.key) > 0;
          return ReplicaRemoveRep{existed};
        } else if constexpr (std::is_same_v<T, ReplicaGetReq>) {
          GetRep rep;
          auto it = replica_.find(body.key);
          if (it != replica_.end()) {
            rep.present = true;
            rep.version = it->second.version;
            rep.value = it->second.value;
          }
          return rep;
        } else if constexpr (std::is_same_v<T, SizeReq>) {
          return SizeRep{primary_.size()};
        } else if constexpr (std::is_same_v<T, SyncReq>) {
          return SyncRep{};  // store is always in-memory-durable here
        } else {
          static_assert(std::is_same_v<T, CompactReq>);
          return CompactRep{};
        }
      },
      req);
}

std::string NodeServer::handle(const NetAddr& from, std::string_view payload) {
  auto decoded = decodeRequest(payload);
  if (std::holds_alternative<DecodeError>(decoded)) {
    stats_.badRequests += 1;
    // Reply only when the header (magic, version, id) parsed cleanly:
    // then a future opcode earns an UnknownOp (echoing the raw opcode —
    // decodeHeader is lenient there) and a broken body a BadRequest, so
    // the client fails fast instead of retransmitting a poison request
    // until deadline. Anything less trustworthy — noise, foreign
    // traffic, truncated headers — is dropped silently to avoid
    // amplifying junk.
    auto h = decodeHeader(payload);
    if (std::holds_alternative<DecodeError>(h)) return {};
    const Header& hd = std::get<Header>(h);
    if (hd.isReply) return {};
    if (!opKnown(static_cast<u8>(hd.op))) {
      return encodeReply(hd.requestId, hd.op, Status::UnknownOp, EmptyRep{});
    }
    return encodeReply(hd.requestId, hd.op, Status::BadRequest, EmptyRep{});
  }

  const Request& req = std::get<Request>(decoded);
  const DedupKey dkey{from.host, from.port, req.header.requestId};
  std::lock_guard<std::mutex> lock(mutex_);
  auto cached = dedup_.find(dkey);
  if (cached != dedup_.end()) {
    stats_.dedupHits += 1;
    return cached->second;
  }
  const ReplyBody rep = dispatch(req.body);
  std::string encoded =
      encodeReply(req.header.requestId, req.header.op, Status::Ok, rep);
  if (encoded.size() > kMaxDatagramBytes) {
    encoded =
        encodeReply(req.header.requestId, req.header.op, Status::TooLarge,
                    EmptyRep{});
  }
  dedup_.emplace(dkey, encoded);
  dedupOrder_.push_back(dkey);
  while (dedupOrder_.size() > opts_.dedupCapacity) {
    dedup_.erase(dedupOrder_.front());
    dedupOrder_.pop_front();
  }
  stats_.requestsHandled += 1;
  return encoded;
}

void NodeServer::serve(Transport& transport, const std::atomic<bool>& stop) {
  std::vector<Datagram> batch;
  while (!stop.load(std::memory_order_relaxed)) {
    batch.clear();
    transport.receive(batch, 200);  // short timeout: re-check stop flag
    for (const Datagram& d : batch) {
      std::string reply = handle(d.from, d.payload);
      if (!reply.empty()) transport.send(d.from, reply);
    }
  }
}

}  // namespace lht::rpc
