#include "rpc/rpc_client.h"

#include <algorithm>
#include <random>

#include "common/types.h"

namespace lht::rpc {

using wire::decodeReply;
using wire::DecodeError;
using wire::encodeRequest;
using wire::Reply;

RpcClient::RpcClient(Transport& transport, Options options)
    : transport_(transport), opts_(options) {
  // Start ids at a random point per incarnation: a restarted client that
  // inherits its predecessor's ephemeral port and restarts at id 1 would
  // otherwise match the server dedup cache's (host, port, requestId)
  // keys and be answered with replayed replies to someone else's calls.
  std::random_device rd;
  nextId_ = (u64{rd()} << 16) | 1;
}

RpcClient::Token RpcClient::call(const NetAddr& to, RequestBody body,
                                 bool noForward) {
  const u64 id = nextId_++;
  const u64 now = transport_.nowMs();
  Pending p;
  p.to = to;
  p.result.op = wire::opOf(body);
  p.wire = encodeRequest(id, body, noForward);
  stats_.requestsStarted += 1;
  if (p.wire.size() > kMaxDatagramBytes) {
    // No datagram transport will carry this; retransmitting it until the
    // deadline would only dress a deterministic local failure up as a
    // remote timeout 2 s later. Resolve immediately with an in-band
    // status instead (sends stays 0: nothing touched the wire).
    p.resolved = true;
    p.result.status = Status::TooLarge;
    stats_.oversized += 1;
    requests_.emplace(id, std::move(p));
    return id;
  }
  p.deadlineAtMs = now + opts_.requestDeadlineMs;
  p.backoffMs = opts_.initialRetransmitMs;
  p.nextSendAtMs = now + p.backoffMs;
  p.result.sends = 1;
  // A failed send here (or on retransmit) is treated like any lost
  // datagram — the retransmit timer is the recovery path. Only the
  // oversized case above fails deterministically on every attempt.
  transport_.send(to, p.wire);
  requests_.emplace(id, std::move(p));
  pendingLive_ += 1;
  return id;
}

void RpcClient::handleDatagram(const Datagram& d) {
  auto decoded = decodeReply(d.payload);
  if (std::holds_alternative<DecodeError>(decoded)) {
    stats_.staleReplies += 1;  // garbage or foreign traffic; drop
    return;
  }
  auto& reply = std::get<Reply>(decoded);
  auto it = requests_.find(reply.header.requestId);
  if (it == requests_.end() || it->second.resolved) {
    stats_.staleReplies += 1;  // late duplicate after resolution
    return;
  }
  // Paranoia: a reply must come from where the request went. A stale
  // datagram from a previous endpoint reusing our port could otherwise
  // be matched by id alone.
  if (!(d.from == it->second.to)) {
    stats_.staleReplies += 1;
    return;
  }
  Pending& p = it->second;
  // A reply must also echo the op the request went out under. A server
  // dedup cache keyed by (host, port, requestId) can replay a previous
  // incarnation's reply for a colliding id; accepting it would hand the
  // caller the wrong ReplyBody alternative (std::bad_variant_access in
  // NetDht). Id randomization makes collisions unlikely; this makes
  // them harmless.
  if (reply.header.op != p.result.op) {
    stats_.staleReplies += 1;
    return;
  }
  p.result.timedOut = false;
  p.result.status = reply.header.status;
  p.result.body = std::move(reply.body);
  p.result.hint = reply.hint;
  p.resolved = true;
  pendingLive_ -= 1;
}

u64 RpcClient::pump(u64 now) {
  u64 nextTimer = ~u64{0};
  for (auto& [id, p] : requests_) {
    if (p.resolved) continue;
    if (now >= p.deadlineAtMs) {
      p.result.timedOut = true;
      p.resolved = true;
      pendingLive_ -= 1;
      stats_.timeouts += 1;
      continue;
    }
    if (now >= p.nextSendAtMs) {
      transport_.send(p.to, p.wire);
      p.result.sends += 1;
      stats_.retransmits += 1;
      p.backoffMs = std::min(p.backoffMs * 2, opts_.maxRetransmitMs);
      p.nextSendAtMs = now + p.backoffMs;
    }
    nextTimer = std::min(nextTimer, std::min(p.nextSendAtMs, p.deadlineAtMs));
  }
  return nextTimer == ~u64{0} ? 0 : nextTimer - now;
}

void RpcClient::settle() {
  while (pendingLive_ > 0) {
    const u64 wait = pump(transport_.nowMs());
    if (pendingLive_ == 0) break;
    rxBuf_.clear();
    transport_.receive(rxBuf_, std::max<u64>(wait, 1));
    for (const Datagram& d : rxBuf_) handleDatagram(d);
  }
}

bool RpcClient::resolved(Token token) const {
  auto it = requests_.find(token);
  common::checkInvariant(it != requests_.end(),
                         "RpcClient::resolved: unknown token");
  return it->second.resolved;
}

RpcClient::Result RpcClient::take(Token token) {
  auto it = requests_.find(token);
  common::checkInvariant(it != requests_.end(), "RpcClient::take: unknown token");
  common::checkInvariant(it->second.resolved,
                         "RpcClient::take: request still pending (settle first)");
  Result r = std::move(it->second.result);
  requests_.erase(it);
  return r;
}

RpcClient::Result RpcClient::callOne(const NetAddr& to, RequestBody body) {
  const Token t = call(to, std::move(body));
  settle();
  return take(t);
}

}  // namespace lht::rpc
