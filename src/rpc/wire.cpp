#include "rpc/wire.h"

namespace lht::rpc::wire {

using common::Decoder;
using common::Encoder;

const char* opName(Op op) {
  switch (op) {
    case Op::Ping: return "ping";
    case Op::Put: return "put";
    case Op::Get: return "get";
    case Op::Remove: return "remove";
    case Op::Cas: return "cas";
    case Op::MultiGet: return "multi_get";
    case Op::MultiCas: return "multi_cas";
    case Op::ReplicaPut: return "replica_put";
    case Op::ReplicaRemove: return "replica_remove";
    case Op::ReplicaGet: return "replica_get";
    case Op::Size: return "size";
    case Op::Sync: return "sync";
    case Op::Compact: return "compact";
    case Op::GossipSync: return "gossip_sync";
    case Op::Join: return "join";
    case Op::Leave: return "leave";
    case Op::Handoff: return "handoff";
  }
  return "?";
}

bool opKnown(u8 raw) {
  return raw >= static_cast<u8>(Op::Ping) && raw <= static_cast<u8>(Op::Handoff);
}

const char* statusName(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::BadRequest: return "bad_request";
    case Status::UnknownOp: return "unknown_op";
    case Status::TooLarge: return "too_large";
    case Status::Redirect: return "redirect";
  }
  return "?";
}

const char* decodeErrorName(DecodeError e) {
  switch (e) {
    case DecodeError::Truncated: return "truncated";
    case DecodeError::BadMagic: return "bad_magic";
    case DecodeError::BadVersion: return "bad_version";
    case DecodeError::BadOpcode: return "bad_opcode";
    case DecodeError::BadField: return "bad_field";
    case DecodeError::TrailingBytes: return "trailing_bytes";
  }
  return "?";
}

namespace {

void putHeader(Encoder& e, u8 opByte, Status status, u64 requestId) {
  e.putU8(kMagic);
  e.putU8(kVersion);
  e.putU8(opByte);
  e.putU8(static_cast<u8>(status));
  e.putVarint(requestId);
}

// Flag bytes are strict booleans on the wire: 0 or 1, anything else is a
// BadField. (A lax decode would let bit-flipped datagrams pass as valid.)
std::optional<bool> getFlag(Decoder& d) {
  auto v = d.getU8();
  if (!v || *v > 1) return std::nullopt;
  return *v == 1;
}

void putCasEntry(Encoder& e, const CasReq& c) {
  e.putVarBytes(c.key);
  e.putVarint(c.expectedVersion);
  e.putU8(c.present ? 1 : 0);
  if (c.present) e.putVarBytes(c.value);
}

bool getCasEntry(Decoder& d, CasReq& out) {
  auto key = d.getVarBytes();
  auto ver = d.getVarint();
  if (!key || !ver) return false;
  auto present = getFlag(d);
  if (!present) return false;
  out.key = std::move(*key);
  out.expectedVersion = *ver;
  out.present = *present;
  if (out.present) {
    auto value = d.getVarBytes();
    if (!value) return false;
    out.value = std::move(*value);
  }
  return true;
}

void putGetRep(Encoder& e, const GetRep& g) {
  e.putU8(g.present ? 1 : 0);
  if (g.present) {
    e.putVarint(g.version);
    e.putVarBytes(g.value);
  }
}

bool getGetRep(Decoder& d, GetRep& out) {
  auto present = getFlag(d);
  if (!present) return false;
  out.present = *present;
  if (out.present) {
    auto ver = d.getVarint();
    if (!ver) return false;
    auto value = d.getVarBytes();
    if (!value) return false;
    out.version = *ver;
    out.value = std::move(*value);
  }
  return true;
}

void putCasRep(Encoder& e, const CasRep& c) {
  e.putU8(c.applied ? 1 : 0);
  e.putU8(c.existedBefore ? 1 : 0);
  e.putVarint(c.currentVersion);
  e.putU8(c.currentPresent ? 1 : 0);
  if (!c.applied && c.currentPresent) e.putVarBytes(c.currentValue);
}

bool getCasRep(Decoder& d, CasRep& out) {
  auto applied = getFlag(d);
  if (!applied) return false;
  auto existed = getFlag(d);
  if (!existed) return false;
  auto ver = d.getVarint();
  if (!ver) return false;
  auto present = getFlag(d);
  if (!present) return false;
  out.applied = *applied;
  out.existedBefore = *existed;
  out.currentVersion = *ver;
  out.currentPresent = *present;
  if (!out.applied && out.currentPresent) {
    auto value = d.getVarBytes();
    if (!value) return false;
    out.currentValue = std::move(*value);
  }
  return true;
}

// List counts are bounded by what can physically fit in the datagram that
// carried them, so a corrupt count cannot drive allocation.
std::optional<u64> getCount(Decoder& d) {
  auto n = d.getVarint();
  if (!n || *n > d.remaining()) return std::nullopt;
  return n;
}

void putNodeEntry(Encoder& e, const NodeEntry& n) {
  e.putVarint(n.id);
  e.putU32(n.host);
  e.putVarint(n.port);
  e.putVarint(n.incarnation);
  e.putU8(n.state);
  e.putVarint(n.ringBase);
}

bool getNodeEntry(Decoder& d, NodeEntry& out) {
  auto id = d.getVarint();
  if (!id) return false;
  auto host = d.getU32();
  if (!host) return false;
  auto port = d.getVarint();
  if (!port || *port > 65535) return false;
  auto inc = d.getVarint();
  if (!inc) return false;
  auto state = d.getU8();
  if (!state || *state > kMaxNodeState) return false;
  auto ring = d.getVarint();
  if (!ring) return false;
  out.id = *id;
  out.host = *host;
  out.port = static_cast<u16>(*port);
  out.incarnation = *inc;
  out.state = *state;
  out.ringBase = *ring;
  return true;
}

void putNodeEntries(Encoder& e, const std::vector<NodeEntry>& entries) {
  e.putVarint(entries.size());
  for (const NodeEntry& n : entries) putNodeEntry(e, n);
}

bool getNodeEntries(Decoder& d, std::vector<NodeEntry>& out) {
  auto n = getCount(d);
  if (!n) return false;
  out.reserve(*n);
  for (u64 i = 0; i < *n; ++i) {
    NodeEntry entry;
    if (!getNodeEntry(d, entry)) return false;
    out.push_back(entry);
  }
  return true;
}

}  // namespace

Op opOf(const RequestBody& body) {
  return std::visit(
      [](const auto& b) -> Op {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, PingReq>) return Op::Ping;
        else if constexpr (std::is_same_v<T, PutReq>) return Op::Put;
        else if constexpr (std::is_same_v<T, GetReq>) return Op::Get;
        else if constexpr (std::is_same_v<T, RemoveReq>) return Op::Remove;
        else if constexpr (std::is_same_v<T, CasReq>) return Op::Cas;
        else if constexpr (std::is_same_v<T, MultiGetReq>) return Op::MultiGet;
        else if constexpr (std::is_same_v<T, MultiCasReq>) return Op::MultiCas;
        else if constexpr (std::is_same_v<T, ReplicaPutReq>) return Op::ReplicaPut;
        else if constexpr (std::is_same_v<T, ReplicaRemoveReq>) return Op::ReplicaRemove;
        else if constexpr (std::is_same_v<T, ReplicaGetReq>) return Op::ReplicaGet;
        else if constexpr (std::is_same_v<T, SizeReq>) return Op::Size;
        else if constexpr (std::is_same_v<T, SyncReq>) return Op::Sync;
        else if constexpr (std::is_same_v<T, CompactReq>) return Op::Compact;
        else if constexpr (std::is_same_v<T, GossipSyncReq>) return Op::GossipSync;
        else if constexpr (std::is_same_v<T, JoinReq>) return Op::Join;
        else if constexpr (std::is_same_v<T, LeaveReq>) return Op::Leave;
        else return Op::Handoff;
      },
      body);
}

// --- Encode ----------------------------------------------------------------

std::string encodeRequest(u64 requestId, const RequestBody& body,
                          bool noForward) {
  Encoder e(64);
  e.putU8(kMagic);
  e.putU8(kVersion);
  e.putU8(static_cast<u8>(opOf(body)));
  e.putU8(noForward ? kNoForwardBit : 0);
  e.putVarint(requestId);
  std::visit(
      [&e](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, PutReq>) {
          e.putVarBytes(b.key);
          e.putVarBytes(b.value);
        } else if constexpr (std::is_same_v<T, GetReq> ||
                             std::is_same_v<T, RemoveReq> ||
                             std::is_same_v<T, ReplicaRemoveReq> ||
                             std::is_same_v<T, ReplicaGetReq>) {
          e.putVarBytes(b.key);
        } else if constexpr (std::is_same_v<T, CasReq>) {
          putCasEntry(e, b);
        } else if constexpr (std::is_same_v<T, MultiGetReq>) {
          e.putVarint(b.entries.size());
          for (const GetReq& g : b.entries) e.putVarBytes(g.key);
        } else if constexpr (std::is_same_v<T, MultiCasReq>) {
          e.putVarint(b.entries.size());
          for (const CasReq& c : b.entries) putCasEntry(e, c);
        } else if constexpr (std::is_same_v<T, ReplicaPutReq>) {
          e.putVarBytes(b.key);
          e.putVarBytes(b.value);
          e.putVarint(b.version);
        } else if constexpr (std::is_same_v<T, GossipSyncReq>) {
          e.putVarint(b.senderId);
          e.putVarint(b.version);
          putNodeEntries(e, b.entries);
        } else if constexpr (std::is_same_v<T, JoinReq>) {
          putNodeEntry(e, b.joiner);
        } else if constexpr (std::is_same_v<T, LeaveReq>) {
          e.putVarint(b.nodeId);
          e.putVarint(b.incarnation);
        } else if constexpr (std::is_same_v<T, HandoffReq>) {
          e.putVarint(b.entries.size());
          for (const HandoffEntry& h : b.entries) {
            e.putVarBytes(h.key);
            e.putVarint(h.version);
            e.putVarBytes(h.value);
          }
        }
        // Ping/Size/Sync/Compact: empty bodies.
      },
      body);
  return std::move(e).take();
}

std::string encodeReply(u64 requestId, Op op, Status status,
                        const ReplyBody& body) {
  Encoder e(64);
  putHeader(e, static_cast<u8>(op) | kReplyBit, status, requestId);
  std::visit(
      [&e](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, PingRep>) {
          e.putVarBytes(b.nodeName);
        } else if constexpr (std::is_same_v<T, PutRep>) {
          e.putVarint(b.version);
        } else if constexpr (std::is_same_v<T, GetRep>) {
          putGetRep(e, b);
        } else if constexpr (std::is_same_v<T, RemoveRep>) {
          e.putU8(b.existed ? 1 : 0);
        } else if constexpr (std::is_same_v<T, CasRep>) {
          putCasRep(e, b);
        } else if constexpr (std::is_same_v<T, MultiGetRep>) {
          e.putVarint(b.entries.size());
          for (const GetRep& g : b.entries) putGetRep(e, g);
        } else if constexpr (std::is_same_v<T, MultiCasRep>) {
          e.putVarint(b.entries.size());
          for (const CasRep& c : b.entries) putCasRep(e, c);
        } else if constexpr (std::is_same_v<T, ReplicaRemoveRep>) {
          e.putU8(b.existed ? 1 : 0);
        } else if constexpr (std::is_same_v<T, SizeRep>) {
          e.putVarint(b.primaryKeys);
        } else if constexpr (std::is_same_v<T, GossipSyncRep>) {
          e.putVarint(b.version);
          putNodeEntries(e, b.entries);
        } else if constexpr (std::is_same_v<T, JoinRep>) {
          e.putU8(b.accepted ? 1 : 0);
          e.putVarint(b.keysStreamed);
          e.putVarint(b.version);
          putNodeEntries(e, b.entries);
        } else if constexpr (std::is_same_v<T, LeaveRep>) {
          e.putU8(b.known ? 1 : 0);
        } else if constexpr (std::is_same_v<T, HandoffRep>) {
          e.putVarint(b.installed);
        } else if constexpr (std::is_same_v<T, RedirectRep>) {
          e.putVarint(b.ownerId);
          e.putU32(b.host);
          e.putVarint(b.port);
          e.putVarint(b.version);
        }
        // EmptyRep/ReplicaPutRep/SyncRep/CompactRep: empty bodies.
      },
      body);
  return std::move(e).take();
}

void appendGossipHint(std::string& encodedReply, const GossipHint& hint) {
  // Byte 3 is the status byte of every well-formed reply this code ever
  // produced; the trailer rides after the body, where only hint-aware
  // decoders look.
  common::checkInvariant(encodedReply.size() >= 4,
                         "appendGossipHint: not an encoded reply");
  encodedReply[3] = static_cast<char>(
      static_cast<u8>(encodedReply[3]) | kGossipHintBit);
  common::appendVarint(encodedReply, hint.senderId);
  common::appendVarint(encodedReply, hint.version);
}

// --- Decode ----------------------------------------------------------------

namespace {

DecodeResult<Header> decodeHeaderFrom(Decoder& d, bool requireKnownOp) {
  auto magic = d.getU8();
  if (!magic) return DecodeError::Truncated;
  if (*magic != kMagic) return DecodeError::BadMagic;
  auto version = d.getU8();
  if (!version) return DecodeError::Truncated;
  if (*version != kVersion) return DecodeError::BadVersion;
  auto opByte = d.getU8();
  auto statusByte = d.getU8();
  if (!opByte || !statusByte) return DecodeError::Truncated;
  if (requireKnownOp && !opKnown(*opByte & ~kReplyBit)) {
    return DecodeError::BadOpcode;
  }
  Header h;
  h.op = static_cast<Op>(*opByte & ~kReplyBit);
  h.isReply = (*opByte & kReplyBit) != 0;
  if (h.isReply) {
    // Replies: low 7 bits are the status, bit 7 flags a gossip trailer.
    const u8 status = *statusByte & static_cast<u8>(~kGossipHintBit);
    if (status > static_cast<u8>(Status::Redirect)) return DecodeError::BadField;
    h.status = static_cast<Status>(status);
    h.hasGossipHint = (*statusByte & kGossipHintBit) != 0;
  } else {
    // Requests: the byte is a flags field; only kNoForwardBit is defined.
    if ((*statusByte & static_cast<u8>(~kNoForwardBit)) != 0) {
      return DecodeError::BadField;
    }
    h.status = Status::Ok;
    h.noForward = (*statusByte & kNoForwardBit) != 0;
  }
  auto id = d.getVarint();
  if (!id) return DecodeError::Truncated;
  h.requestId = *id;
  return h;
}

DecodeResult<Reply> decodeGossipTrailer(Decoder& d, Reply rep) {
  if (rep.header.hasGossipHint) {
    auto sender = d.getVarint();
    if (!sender) return DecodeError::Truncated;
    auto version = d.getVarint();
    if (!version) return DecodeError::Truncated;
    rep.hint = GossipHint{*sender, *version};
  }
  if (!d.atEnd()) return DecodeError::TrailingBytes;
  return rep;
}

}  // namespace

DecodeResult<Header> decodeHeader(std::string_view datagram) {
  Decoder d(datagram);
  // Lenient about the opcode (see header comment): the op field carries
  // the raw value through so callers can answer unknown-op requests.
  return decodeHeaderFrom(d, /*requireKnownOp=*/false);
}

DecodeResult<Request> decodeRequest(std::string_view datagram) {
  Decoder d(datagram);
  auto h = decodeHeaderFrom(d, /*requireKnownOp=*/true);
  if (auto* err = std::get_if<DecodeError>(&h)) return *err;
  Request req;
  req.header = std::get<Header>(h);
  if (req.header.isReply) return DecodeError::BadOpcode;

  auto fail = [&]() -> DecodeError {
    return d.remaining() == 0 ? DecodeError::Truncated : DecodeError::BadField;
  };
  switch (req.header.op) {
    case Op::Ping: req.body = PingReq{}; break;
    case Op::Size: req.body = SizeReq{}; break;
    case Op::Sync: req.body = SyncReq{}; break;
    case Op::Compact: req.body = CompactReq{}; break;
    case Op::Put: {
      PutReq b;
      auto key = d.getVarBytes();
      if (!key) return fail();
      auto value = d.getVarBytes();
      if (!value) return fail();
      b.key = std::move(*key);
      b.value = std::move(*value);
      req.body = std::move(b);
      break;
    }
    case Op::Get: case Op::Remove: case Op::ReplicaRemove: case Op::ReplicaGet: {
      auto key = d.getVarBytes();
      if (!key) return fail();
      if (req.header.op == Op::Get) req.body = GetReq{std::move(*key)};
      else if (req.header.op == Op::Remove) req.body = RemoveReq{std::move(*key)};
      else if (req.header.op == Op::ReplicaRemove)
        req.body = ReplicaRemoveReq{std::move(*key)};
      else req.body = ReplicaGetReq{std::move(*key)};
      break;
    }
    case Op::Cas: {
      CasReq b;
      if (!getCasEntry(d, b)) return fail();
      req.body = std::move(b);
      break;
    }
    case Op::MultiGet: {
      auto n = getCount(d);
      if (!n) return fail();
      MultiGetReq b;
      b.entries.reserve(*n);
      for (u64 i = 0; i < *n; ++i) {
        auto key = d.getVarBytes();
        if (!key) return fail();
        b.entries.push_back(GetReq{std::move(*key)});
      }
      req.body = std::move(b);
      break;
    }
    case Op::MultiCas: {
      auto n = getCount(d);
      if (!n) return fail();
      MultiCasReq b;
      b.entries.reserve(*n);
      for (u64 i = 0; i < *n; ++i) {
        CasReq c;
        if (!getCasEntry(d, c)) return fail();
        b.entries.push_back(std::move(c));
      }
      req.body = std::move(b);
      break;
    }
    case Op::ReplicaPut: {
      ReplicaPutReq b;
      auto key = d.getVarBytes();
      if (!key) return fail();
      auto value = d.getVarBytes();
      if (!value) return fail();
      auto ver = d.getVarint();
      if (!ver) return fail();
      b.key = std::move(*key);
      b.value = std::move(*value);
      b.version = *ver;
      req.body = std::move(b);
      break;
    }
    case Op::GossipSync: {
      GossipSyncReq b;
      auto sender = d.getVarint();
      if (!sender) return fail();
      auto ver = d.getVarint();
      if (!ver) return fail();
      b.senderId = *sender;
      b.version = *ver;
      if (!getNodeEntries(d, b.entries)) return fail();
      req.body = std::move(b);
      break;
    }
    case Op::Join: {
      JoinReq b;
      if (!getNodeEntry(d, b.joiner)) return fail();
      req.body = std::move(b);
      break;
    }
    case Op::Leave: {
      LeaveReq b;
      auto id = d.getVarint();
      if (!id) return fail();
      auto inc = d.getVarint();
      if (!inc) return fail();
      b.nodeId = *id;
      b.incarnation = *inc;
      req.body = std::move(b);
      break;
    }
    case Op::Handoff: {
      auto n = getCount(d);
      if (!n) return fail();
      HandoffReq b;
      b.entries.reserve(*n);
      for (u64 i = 0; i < *n; ++i) {
        HandoffEntry h2;
        auto key = d.getVarBytes();
        if (!key) return fail();
        auto ver = d.getVarint();
        if (!ver) return fail();
        auto value = d.getVarBytes();
        if (!value) return fail();
        h2.key = std::move(*key);
        h2.version = *ver;
        h2.value = std::move(*value);
        b.entries.push_back(std::move(h2));
      }
      req.body = std::move(b);
      break;
    }
  }
  if (!d.atEnd()) return DecodeError::TrailingBytes;
  return req;
}

DecodeResult<Reply> decodeReply(std::string_view datagram) {
  Decoder d(datagram);
  auto h = decodeHeaderFrom(d, /*requireKnownOp=*/true);
  if (auto* err = std::get_if<DecodeError>(&h)) return *err;
  Reply rep;
  rep.header = std::get<Header>(h);
  if (!rep.header.isReply) return DecodeError::BadOpcode;
  auto fail = [&]() -> DecodeError {
    return d.remaining() == 0 ? DecodeError::Truncated : DecodeError::BadField;
  };
  if (rep.header.status == Status::Redirect) {
    RedirectRep b;
    auto owner = d.getVarint();
    if (!owner) return fail();
    auto host = d.getU32();
    if (!host) return fail();
    auto port = d.getVarint();
    if (!port || *port > 65535) return fail();
    auto ver = d.getVarint();
    if (!ver) return fail();
    b.ownerId = *owner;
    b.host = *host;
    b.port = static_cast<u16>(*port);
    b.version = *ver;
    rep.body = std::move(b);
    return decodeGossipTrailer(d, std::move(rep));
  }
  if (rep.header.status != Status::Ok) {
    rep.body = EmptyRep{};
    return decodeGossipTrailer(d, std::move(rep));
  }
  switch (rep.header.op) {
    case Op::Ping: {
      auto name = d.getVarBytes();
      if (!name) return fail();
      rep.body = PingRep{std::move(*name)};
      break;
    }
    case Op::Put: {
      auto ver = d.getVarint();
      if (!ver) return fail();
      rep.body = PutRep{*ver};
      break;
    }
    case Op::Get: case Op::ReplicaGet: {
      GetRep b;
      if (!getGetRep(d, b)) return fail();
      rep.body = std::move(b);
      break;
    }
    case Op::Remove: {
      auto existed = getFlag(d);
      if (!existed) return fail();
      rep.body = RemoveRep{*existed};
      break;
    }
    case Op::Cas: {
      CasRep b;
      if (!getCasRep(d, b)) return fail();
      rep.body = std::move(b);
      break;
    }
    case Op::MultiGet: {
      auto n = getCount(d);
      if (!n) return fail();
      MultiGetRep b;
      b.entries.reserve(*n);
      for (u64 i = 0; i < *n; ++i) {
        GetRep g;
        if (!getGetRep(d, g)) return fail();
        b.entries.push_back(std::move(g));
      }
      rep.body = std::move(b);
      break;
    }
    case Op::MultiCas: {
      auto n = getCount(d);
      if (!n) return fail();
      MultiCasRep b;
      b.entries.reserve(*n);
      for (u64 i = 0; i < *n; ++i) {
        CasRep c;
        if (!getCasRep(d, c)) return fail();
        b.entries.push_back(std::move(c));
      }
      rep.body = std::move(b);
      break;
    }
    case Op::ReplicaPut: rep.body = ReplicaPutRep{}; break;
    case Op::ReplicaRemove: {
      auto existed = getFlag(d);
      if (!existed) return fail();
      rep.body = ReplicaRemoveRep{*existed};
      break;
    }
    case Op::Size: {
      auto n = d.getVarint();
      if (!n) return fail();
      rep.body = SizeRep{*n};
      break;
    }
    case Op::Sync: rep.body = SyncRep{}; break;
    case Op::Compact: rep.body = CompactRep{}; break;
    case Op::GossipSync: {
      GossipSyncRep b;
      auto ver = d.getVarint();
      if (!ver) return fail();
      b.version = *ver;
      if (!getNodeEntries(d, b.entries)) return fail();
      rep.body = std::move(b);
      break;
    }
    case Op::Join: {
      JoinRep b;
      auto accepted = getFlag(d);
      if (!accepted) return fail();
      auto streamed = d.getVarint();
      if (!streamed) return fail();
      auto ver = d.getVarint();
      if (!ver) return fail();
      b.accepted = *accepted;
      b.keysStreamed = *streamed;
      b.version = *ver;
      if (!getNodeEntries(d, b.entries)) return fail();
      rep.body = std::move(b);
      break;
    }
    case Op::Leave: {
      auto known = getFlag(d);
      if (!known) return fail();
      rep.body = LeaveRep{*known};
      break;
    }
    case Op::Handoff: {
      auto installed = d.getVarint();
      if (!installed) return fail();
      rep.body = HandoffRep{*installed};
      break;
    }
  }
  return decodeGossipTrailer(d, std::move(rep));
}

}  // namespace lht::rpc::wire
