// History-based concurrency checkers (DESIGN.md §10).
//
// 1. checkLinearizableRegister / checkSingleKeyHistories — a Wing & Gong
//    style search deciding whether a history of Put/Get/Remove ops on one
//    DHT key is linearizable against a simple register: every Get must
//    return the value of the latest linearized write, and the linearization
//    order must respect real-time precedence (op A before op B whenever A
//    returned before B was invoked). Failed writes are *indeterminate* —
//    the search may linearize them at any point after their invocation or
//    drop them entirely (a lost reply whose effect never landed). Failed
//    reads carry no observation and are excluded up front.
//
// 2. checkGrowOnlySet — the LHT fleet checker for insert/find workloads:
//    a find that returns a record must be preceded-or-concurrent with an
//    insert of that record, and any find invoked after an insert's
//    successful return must see it (monotonic over real time: inserts are
//    never un-done in a grow-only run).
//
// 3. scanAtomicSplits — the post-run structural check: walks every leaf
//    bucket and verifies the leaves partition [0, 1) exactly with no
//    leftover split/merge intents (no torn buckets — a lookup during the
//    run could only ever see the pre-split parent or a post-split child),
//    and that the surviving record set is bracketed by the histories:
//    definite ⊆ scanned ⊆ definite ∪ maybe.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "exec/history.h"

namespace lht::core {
class LhtIndex;
}

namespace lht::exec {

struct CheckResult {
  bool ok = true;
  /// Human-readable account of the first violation (empty when ok).
  std::string explanation;
};

/// Decides linearizability of ops on ONE register (all records must share
/// the same dhtKey; kinds Put/Get/Remove). Histories beyond `maxOps`
/// (default 64, the memoization-mask width) fail loudly rather than
/// silently truncating.
CheckResult checkLinearizableRegister(std::vector<OpRecord> ops,
                                      size_t maxOps = 64);

/// Partitions a merged history by dhtKey and checks each key's sub-history
/// as an independent register.
CheckResult checkSingleKeyHistories(const std::vector<OpRecord>& merged,
                                    size_t maxOpsPerKey = 64);

/// Grow-only-set check over LHT Insert/Find records (ranges and erases are
/// rejected — use it on insert/lookup workloads only).
CheckResult checkGrowOnlySet(const std::vector<OpRecord>& merged);

/// Keys with a successful insert return (must be present afterwards).
std::set<double> definiteKeys(const std::vector<OpRecord>& merged);
/// Keys whose insert threw (lost reply / crash): may or may not be stored.
std::set<double> maybeKeys(const std::vector<OpRecord>& merged);

struct SplitScanResult {
  bool ok = true;
  std::string explanation;
  size_t leaves = 0;
  size_t records = 0;
};

/// Walks `index`'s buckets (forEachBucket) and verifies: leaf intervals
/// tile [0, 1) exactly in label order; no bucket carries a split/merge
/// intent; and definite ⊆ scanned ⊆ definite ∪ maybe over record keys.
SplitScanResult scanAtomicSplits(core::LhtIndex& index,
                                 const std::set<double>& definite,
                                 const std::set<double>& maybe);

}  // namespace lht::exec
