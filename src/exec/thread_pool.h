// Work-stealing thread pool — the execution substrate for the concurrent
// client fleet (DESIGN.md §10).
//
// Each worker owns a deque: it pushes and pops at the back (LIFO, cache-
// warm), and idle workers steal from the front of a victim's deque (FIFO,
// oldest task — the classic work-stealing discipline). Tasks submitted
// from a worker thread land on that worker's own deque, so a chunked
// self-resubmitting task (the fleet's per-client op stream) tends to stay
// on the thread that already has the client's state in cache; tasks
// submitted from outside are sprayed round-robin.
//
// Exceptions thrown by tasks are captured; the first one is rethrown from
// wait() (subsequent ones are dropped, their tasks still count as done).
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace lht::exec {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit WorkStealingPool(size_t threads);
  /// Waits for all submitted work, then joins the workers. Pending
  /// exceptions are swallowed here — call wait() first if you care.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (self-resubmission is the fleet's main pattern).
  void submit(Task task);

  /// Blocks until every submitted task (including ones submitted by
  /// running tasks) has finished. Rethrows the first task exception, if
  /// any (the exception slot is cleared, so the pool remains usable).
  void wait();

  [[nodiscard]] size_t threadCount() const { return workers_.size(); }
  /// Tasks executed by a worker that did not own their deque.
  [[nodiscard]] common::u64 stealCount() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;  // owner: back; thieves: front
  };

  void workerLoop(size_t self);
  /// Pops from own back, else steals from a victim's front. Null when
  /// every deque is empty.
  Task findTask(size_t self);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex controlMutex_;              // guards cv waits + exception_
  std::condition_variable workCv_;       // "a task was submitted"
  std::condition_variable idleCv_;       // "pending_ may have hit zero"
  std::exception_ptr exception_;

  std::atomic<size_t> pending_{0};  // submitted, not yet finished
  std::atomic<size_t> queued_{0};   // sitting in a deque right now
  std::atomic<bool> stop_{false};
  std::atomic<common::u64> steals_{0};
  std::atomic<size_t> nextQueue_{0};  // round-robin for external submits
};

}  // namespace lht::exec
