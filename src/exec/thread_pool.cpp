#include "exec/thread_pool.h"

#include <atomic>
#include <utility>

namespace lht::exec {

namespace {
// Index of the worker running on this thread, SIZE_MAX off-pool. Lets
// submit() route a worker's own submissions back onto its own deque.
thread_local size_t tlsWorkerIndex = static_cast<size_t>(-1);
}  // namespace

WorkStealingPool::WorkStealingPool(size_t threads) {
  const size_t n = threads == 0 ? 1 : threads;
  queues_.reserve(n);
  for (size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  try {
    wait();
  } catch (...) {
    // Destructor cannot propagate; callers who care call wait() first.
  }
  stop_.store(true, std::memory_order_release);
  workCv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkStealingPool::submit(Task task) {
  size_t target = tlsWorkerIndex;
  if (target >= queues_.size()) {
    target = nextQueue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->deque.push_back(std::move(task));
  }
  workCv_.notify_one();
}

WorkStealingPool::Task WorkStealingPool::findTask(size_t self) {
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      Task t = std::move(own.deque.back());
      own.deque.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return t;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    Worker& victim = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      Task t = std::move(victim.deque.front());
      victim.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void WorkStealingPool::workerLoop(size_t self) {
  tlsWorkerIndex = self;
  for (;;) {
    Task task = findTask(self);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(controlMutex_);
      workCv_.wait(lock, [&] {
        if (stop_.load(std::memory_order_acquire)) return true;
        // Wake only for tasks actually sitting in a deque (pending_ also
        // counts tasks mid-execution, which would make idle workers spin).
        // A submit may have raced the empty scan above; re-probing here
        // under the control lock closes that window. The deque mutexes
        // are never held here, so the lock order is control -> deque only.
        return queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_.load(std::memory_order_acquire)) return;
      continue;  // contend for the task
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(controlMutex_);
      if (exception_ == nullptr) exception_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idleCv_.notify_all();
    }
  }
}

void WorkStealingPool::wait() {
  std::unique_lock<std::mutex> lock(controlMutex_);
  idleCv_.wait(lock,
               [&] { return pending_.load(std::memory_order_acquire) == 0; });
  if (exception_ != nullptr) {
    std::exception_ptr e = std::exchange(exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace lht::exec
