#include "exec/client_fleet.h"

#include <chrono>
#include <utility>

#include "common/types.h"
#include "net/sim_network.h"

namespace lht::exec {

namespace {

const char* opMetricName(workload::Operation::Kind k) {
  using Kind = workload::Operation::Kind;
  switch (k) {
    case Kind::Insert:
      return "fleet.op.insert.sim_ms";
    case Kind::Erase:
      return "fleet.op.erase.sim_ms";
    case Kind::Find:
      return "fleet.op.find.sim_ms";
    case Kind::Range:
      return "fleet.op.range.sim_ms";
    case Kind::Min:
    case Kind::Max:
      return "fleet.op.minmax.sim_ms";
  }
  return "fleet.op.other.sim_ms";
}

OpKind historyKind(workload::Operation::Kind k) {
  using Kind = workload::Operation::Kind;
  switch (k) {
    case Kind::Insert:
      return OpKind::Insert;
    case Kind::Erase:
      return OpKind::Erase;
    case Kind::Find:
      return OpKind::Find;
    default:
      return OpKind::Range;  // range/min/max: not register-checked
  }
}

}  // namespace

ClientFleet::ClientFleet(StackFactory factory, FleetOptions options)
    : opts_(std::move(options)) {
  common::checkInvariant(opts_.clients >= 1, "ClientFleet: need >= 1 client");
  common::checkInvariant(opts_.chunkSize >= 1,
                         "ClientFleet: chunkSize must be >= 1");
  clients_.reserve(opts_.clients);
  for (size_t i = 0; i < opts_.clients; ++i) {
    auto c = std::make_unique<Client>();
    c->id = i;
    c->history = History(i);
    c->stack = factory(i, c->clock);
    common::checkInvariant(c->stack.top != nullptr,
                           "ClientFleet: StackFactory returned a null top");
    core::LhtIndex::Options io = opts_.index;
    // Client 0 bootstraps the root leaf — unless the caller attaches the
    // whole fleet to an index that already exists (e.g. querying a
    // preloaded tree mid-churn), in which case nobody may clobber it.
    io.attachExisting = opts_.index.attachExisting || i > 0;
    io.clientSeed = opts_.clientSeedBase + i;
    // Lease expiry must tick on the clock the client's latency decorators
    // advance, so each client's leases age with its own simulated time.
    if (io.leasedReads && io.leaseClock == nullptr) io.leaseClock = &c->clock;
    // Construction writes (the bootstrap put) charge this client's clock
    // and land in its private registry, same as its ops will.
    net::ThreadClockScope clockScope(c->clock);
    obs::ScopedObservability sinks(&c->metrics, &c->tracer);
    c->index = std::make_unique<core::LhtIndex>(*c->stack.top, io);
    clients_.push_back(std::move(c));
  }
}

ClientFleet::~ClientFleet() = default;

bool ClientFleet::runOp(Client& c, const workload::Operation& op) {
  using Kind = workload::Operation::Kind;
  OpRecord rec;
  rec.kind = historyKind(op.kind);
  rec.key = op.key;
  rec.hi = op.hi;
  rec.invokeMs = nextTick();
  const common::u64 simBefore = c.clock.nowMs();
  bool failed = false;
  try {
    switch (op.kind) {
      case Kind::Insert: {
        const auto r = c.index->insert({op.key, op.payload});
        rec.ok = r.ok;
        rec.value = op.payload;
        break;
      }
      case Kind::Erase: {
        const auto r = c.index->erase(op.key);
        rec.ok = r.ok;
        break;
      }
      case Kind::Find: {
        auto r = c.index->find(op.key);
        rec.ok = true;
        if (r.record) rec.value = r.record->payload;
        break;
      }
      case Kind::Range: {
        const auto r = c.index->rangeQuery(op.key, op.hi);
        rec.ok = true;
        rec.value = std::to_string(r.records.size());
        break;
      }
      case Kind::Min: {
        auto r = c.index->minRecord();
        rec.ok = true;
        if (r.record) rec.value = r.record->payload;
        break;
      }
      case Kind::Max: {
        auto r = c.index->maxRecord();
        rec.ok = true;
        if (r.record) rec.value = r.record->payload;
        break;
      }
    }
  } catch (const dht::DhtError&) {
    rec.ok = false;
    failed = true;
  } catch (const dht::CrashError&) {
    rec.ok = false;
    failed = true;
  }
  rec.returnMs = nextTick();
  obs::observeMs(opMetricName(op.kind),
                 static_cast<double>(c.clock.nowMs() - simBefore));
  if (failed) obs::count("fleet.op.failed");
  c.history.append(std::move(rec));
  return failed;
}

void ClientFleet::runChunk(Client& c, WorkStealingPool& pool) {
  net::ThreadClockScope clockScope(c.clock);
  obs::ScopedObservability sinks(&c.metrics, &c.tracer);
  const size_t end = std::min(c.cursor + opts_.chunkSize, c.ops.size());
  for (; c.cursor < end; ++c.cursor) {
    if (opts_.openLoopInterarrivalMs > 0) {
      c.clock.advanceTo(static_cast<common::u64>(c.cursor) *
                        opts_.openLoopInterarrivalMs);
    }
    runOp(c, c.ops[c.cursor]);
  }
  if (c.cursor < c.ops.size()) {
    pool.submit([this, &c, &pool] { runChunk(c, pool); });
  }
}

FleetResult ClientFleet::run(const std::vector<workload::Operation>& trace,
                             WorkStealingPool& pool) {
  for (auto& c : clients_) {
    c->ops.clear();
    c->cursor = 0;
  }
  for (size_t i = 0; i < trace.size(); ++i) {
    clients_[i % clients_.size()]->ops.push_back(trace[i]);
  }
  const auto wallStart = std::chrono::steady_clock::now();
  const common::u64 stealsBefore = pool.stealCount();
  for (auto& c : clients_) {
    if (c->ops.empty()) continue;
    Client* client = c.get();
    pool.submit([this, client, &pool] { runChunk(*client, pool); });
  }
  pool.wait();
  const auto wallEnd = std::chrono::steady_clock::now();

  FleetResult result;
  result.elapsedWallMs =
      std::chrono::duration<double, std::milli>(wallEnd - wallStart).count();
  result.steals = pool.stealCount() - stealsBefore;
  result.opsTotal = trace.size();
  for (auto& c : clients_) {
    result.metrics.mergeFrom(c->metrics);
    result.trace.mergeFrom(c->tracer);
    result.histories.push_back(c->history);
    result.elapsedSimMs = std::max(result.elapsedSimMs, c->clock.nowMs());
  }
  result.opsFailed =
      static_cast<size_t>(result.metrics.counterValue("fleet.op.failed"));
  return result;
}

}  // namespace lht::exec
